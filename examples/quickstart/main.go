// Quickstart: solve a nonsymmetric convection-diffusion system with
// CA-GMRES on three simulated GPUs and compare against plain GMRES.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cagmres"
)

func main() {
	// A 2D convection-diffusion problem: the 5-point Laplacian plus a
	// first-order convection term, which makes it nonsymmetric — the
	// textbook GMRES workload.
	a := cagmres.Laplace2D(120, 120, 0.4)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}

	// A node with three simulated M2090 GPUs.
	ctx := cagmres.NewContext(3)

	// Partition with the k-way partitioner and balance the matrix, the
	// configuration the paper uses for its irregular matrices.
	p, err := cagmres.NewProblem(ctx, a, b, cagmres.KWay, true)
	if err != nil {
		log.Fatal(err)
	}

	// CA-GMRES(10, 30) with the CholQR tall-skinny QR — the fastest
	// configuration of the paper.
	res, err := cagmres.CAGMRES(p, cagmres.Options{
		M: 30, S: 10, Tol: 1e-8, Ortho: "CholQR",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CA-GMRES(10,30): converged=%v restarts=%d iterations=%d\n",
		res.Converged, res.Restarts, res.Iters)
	fmt.Printf("  true relative residual: %.2e\n", cagmres.ResidualNorm(a, b, res.X))
	fmt.Printf("  modeled time: %.2f ms (%.3f ms per restart)\n",
		res.Stats.TotalTime()*1e3, res.Stats.TotalTime()/float64(res.Restarts)*1e3)

	// The same solve with standard GMRES for comparison.
	p2, err := cagmres.NewProblem(ctx, a, b, cagmres.KWay, true)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := cagmres.GMRES(p2, cagmres.Options{M: 30, Tol: 1e-8, Ortho: "CGS"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GMRES(30):       converged=%v restarts=%d iterations=%d\n",
		res2.Converged, res2.Restarts, res2.Iters)
	fmt.Printf("  modeled time: %.2f ms (%.3f ms per restart)\n",
		res2.Stats.TotalTime()*1e3, res2.Stats.TotalTime()/float64(res2.Restarts)*1e3)

	caPer := res.Stats.TotalTime() / float64(res.Restarts)
	gPer := res2.Stats.TotalTime() / float64(res2.Restarts)
	fmt.Printf("\nCA-GMRES speedup per restart cycle: %.2fx\n", gPer/caPer)
}
