// Circuit example: the paper's headline case. Solve a G3_circuit-like
// system (irregular circuit-simulation matrix, ~4.8 nonzeros per row) and
// reproduce two of its findings:
//
//  1. matrix reordering decides whether the matrix powers kernel is
//     viable at all on a matrix whose natural (netlist) ordering has no
//     locality, and
//
//  2. CA-GMRES(s, 30) with CholQR beats GMRES by ~2x per restart cycle
//     (the paper's best case for this matrix, Figure 14).
//
//     go run ./examples/circuit
package main

import (
	"fmt"
	"log"

	"cagmres"
)

func main() {
	a, err := cagmres.GenerateMatrix("G3_circuit", 0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("G3_circuit analogue: n=%d, nnz/row=%.1f\n",
		a.Rows, float64(a.NNZ())/float64(a.Rows))
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}

	ctx := cagmres.NewContext(3)

	// --- Finding 1: the ordering decides everything for this matrix. ---
	fmt.Println("\nGMRES(30) per-restart time by ordering (3 simulated GPUs):")
	for _, ord := range []cagmres.Ordering{cagmres.Natural, cagmres.RCM, cagmres.KWay} {
		p, err := cagmres.NewProblem(ctx, a, b, ord, true)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cagmres.GMRES(p, cagmres.Options{M: 30, Tol: 1e-4, MaxRestarts: 10, Ortho: "CGS"})
		if err != nil {
			log.Fatal(err)
		}
		spmv := res.Stats.Phase("spmv")
		fmt.Printf("  %-8s total %.3f ms/restart  (SpMV comm volume %d KB/restart)\n",
			ord, res.Stats.TotalTime()/float64(res.Restarts)*1e3,
			spmv.Bytes()/res.Restarts/1024)
	}

	// --- Finding 2: CA-GMRES vs GMRES with the k-way ordering. ---
	fmt.Println("\nCA-GMRES(10, 30) vs GMRES(30), k-way ordering:")
	pg, _ := cagmres.NewProblem(ctx, a, b, cagmres.KWay, true)
	rg, err := cagmres.GMRES(pg, cagmres.Options{M: 30, Tol: 1e-4, MaxRestarts: 40, Ortho: "CGS"})
	if err != nil {
		log.Fatal(err)
	}
	pc, _ := cagmres.NewProblem(ctx, a, b, cagmres.KWay, true)
	rc, err := cagmres.CAGMRES(pc, cagmres.Options{M: 30, S: 10, Tol: 1e-4, MaxRestarts: 40, Ortho: "CholQR"})
	if err != nil {
		log.Fatal(err)
	}
	gPer := rg.Stats.TotalTime() / float64(rg.Restarts) * 1e3
	cPer := rc.Stats.TotalTime() / float64(rc.Restarts) * 1e3
	fmt.Printf("  GMRES:    %3d restarts, %.3f ms/restart\n", rg.Restarts, gPer)
	fmt.Printf("  CA-GMRES: %3d restarts, %.3f ms/restart\n", rc.Restarts, cPer)
	fmt.Printf("  speedup:  %.2fx  (paper reports 1.76-2.03x for G3_circuit)\n", gPer/cPer)

	// Where did the time go? Orthogonalization rounds tell the story.
	fmt.Println("\ncommunication rounds per restart cycle:")
	fmt.Printf("  GMRES    orth: %d\n", rg.Stats.Phase("orth").Rounds/rg.Restarts)
	fmt.Printf("  CA-GMRES borth+tsqr: %d\n",
		(rc.Stats.Phase("borth").Rounds+rc.Stats.Phase("tsqr").Rounds)/rc.Restarts)
}
