// Cantilever example: a banded 3D FEM elasticity problem (the paper's
// "cant" matrix), the friendly case for the matrix powers kernel. Sweeps
// the CA step size s and shows
//
//   - how the basis-generation (MPK) communication time collapses once
//     s > 1 while its compute cost creeps up (Figure 8's trade-off), and
//
//   - why the Newton basis matters: at large s the monomial basis
//     condition number explodes and CholQR starts failing, while the
//     Leja-shifted Newton basis keeps the same configuration solvable.
//
//     go run ./examples/cantilever
package main

import (
	"fmt"
	"log"

	"cagmres"
)

func main() {
	a, err := cagmres.GenerateMatrix("cant", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cant analogue: n=%d, nnz/row=%.1f (banded elasticity)\n",
		a.Rows, float64(a.NNZ())/float64(a.Rows))
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	ctx := cagmres.NewContext(3)

	// --- Step-size sweep: basis generation cost per restart cycle. ---
	fmt.Println("\nCA-GMRES(s, 60) basis-generation cost (3 simulated GPUs, natural ordering):")
	fmt.Printf("%4s %14s %14s %14s\n", "s", "mpk+spmv ms", "ortho ms", "total ms")
	for _, s := range []int{1, 2, 5, 10, 15} {
		p, err := cagmres.NewProblem(ctx, a, b, cagmres.Natural, true)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cagmres.CAGMRES(p, cagmres.Options{
			M: 60, S: s, Tol: 1e-4, MaxRestarts: 8, Ortho: "2xCAQR",
		})
		if err != nil {
			log.Fatalf("s=%d: %v", s, err)
		}
		r := float64(res.Restarts)
		basis := (res.Stats.Phase("mpk").Total() + res.Stats.Phase("spmv").Total()) / r * 1e3
		orth := (res.Stats.Phase("borth").Total() + res.Stats.Phase("tsqr").Total() +
			res.Stats.Phase("orth").Total()) / r * 1e3
		fmt.Printf("%4d %14.3f %14.3f %14.3f\n", s, basis, orth, res.Stats.TotalTime()/r*1e3)
	}

	// --- Newton vs monomial at a large step size. ---
	fmt.Println("\nbasis stability at s=15 with CholQR (the fragile strategy):")
	for _, basis := range []string{"monomial", "newton"} {
		p, err := cagmres.NewProblem(ctx, a, b, cagmres.Natural, true)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cagmres.CAGMRES(p, cagmres.Options{
			M: 60, S: 15, Tol: 1e-4, MaxRestarts: 8, Ortho: "2xCholQR", Basis: basis,
		})
		if err != nil {
			fmt.Printf("  %-9s FAILED: %v\n", basis, err)
			continue
		}
		fmt.Printf("  %-9s converged=%v restarts=%d relres=%.2e\n",
			basis, res.Converged, res.Restarts, res.RelRes)
	}
}
