// Eigen example: the paper's closing claim — "our studies may have
// greater impact beyond GMRES" — made runnable. Approximates the extreme
// eigenvalues of a convection-diffusion operator with standard Arnoldi
// and with CA-Arnoldi (matrix powers + BOrth + TSQR) and compares both
// the answers and the communication bills.
//
//	go run ./examples/eigen
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cagmres"
)

func main() {
	// Nonsymmetric operator with a complex spectrum.
	a := cagmres.Laplace2D(80, 80, 0.6)
	n := a.Rows
	fmt.Printf("convection-diffusion operator: n=%d\n", n)

	rng := rand.New(rand.NewSource(7))
	start := make([]float64, n)
	for i := range start {
		start[i] = rng.NormFloat64()
	}

	for _, cfg := range []struct {
		name string
		s    int
	}{
		{"Arnoldi   (s=1)", 1},
		{"CA-Arnoldi (s=8)", 8},
	} {
		ctx := cagmres.NewContext(3)
		p, err := cagmres.NewProblem(ctx, a, make([]float64, n), cagmres.Natural, false)
		if err != nil {
			log.Fatal(err)
		}
		ritz, err := cagmres.RitzValues(p, cagmres.Options{M: 40, S: cfg.s, Ortho: "CholQR"}, start)
		if err != nil {
			log.Fatal(err)
		}
		rounds := 0
		for _, ph := range ctx.Stats().Phases() {
			rounds += ctx.Stats().Phase(ph).Rounds
		}
		fmt.Printf("\n%s — %d communication rounds, modeled %.3f ms\n",
			cfg.name, rounds, ctx.Stats().TotalTime()*1e3)
		fmt.Printf("  leading Ritz values: ")
		for i := 0; i < 4 && i < len(ritz); i++ {
			fmt.Printf("%.4f%+.4fi  ", real(ritz[i]), imag(ritz[i]))
		}
		fmt.Println()
	}
	fmt.Println("\nboth variants span the same Krylov subspace, so they find the same")
	fmt.Println("Ritz values; CA-Arnoldi sends an order of magnitude fewer messages.")
}
