// Scaling example: device-count and step-size scaling study — the
// "larger number of GPUs" direction the paper's conclusion points to.
// Sweeps 1..8 simulated GPUs for GMRES and CA-GMRES on a
// dielFilter-like system and shows where each solver's scaling saturates
// (GMRES hits the per-iteration latency floor much earlier).
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"cagmres"
)

func main() {
	a, err := cagmres.GenerateMatrix("dielFilterV2real", 0.03)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dielFilter analogue: n=%d, nnz/row=%.1f\n",
		a.Rows, float64(a.NNZ())/float64(a.Rows))
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}

	const m = 90
	fmt.Printf("\n%-4s %14s %14s %10s %14s\n", "ng", "GMRES ms/res", "CA ms/res", "CA spdup", "CA eff vs 1GPU")
	var gBase, cBase float64
	for ng := 1; ng <= 8; ng++ {
		ctx := cagmres.NewContext(ng)
		pg, err := cagmres.NewProblem(ctx, a, b, cagmres.KWay, true)
		if err != nil {
			log.Fatal(err)
		}
		rg, err := cagmres.GMRES(pg, cagmres.Options{M: m, Tol: 1e-4, MaxRestarts: 8, Ortho: "CGS"})
		if err != nil {
			log.Fatal(err)
		}
		gPer := rg.Stats.TotalTime() / float64(rg.Restarts) * 1e3

		pc, err := cagmres.NewProblem(ctx, a, b, cagmres.KWay, true)
		if err != nil {
			log.Fatal(err)
		}
		rc, err := cagmres.CAGMRES(pc, cagmres.Options{
			M: m, S: 15, Tol: 1e-4, MaxRestarts: 8, Ortho: "CholQR", AdaptiveS: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		cPer := rc.Stats.TotalTime() / float64(rc.Restarts) * 1e3

		if ng == 1 {
			gBase, cBase = gPer, cPer
		}
		eff := cBase / cPer / float64(ng) * 100
		fmt.Printf("%-4d %14.3f %14.3f %10.2f %13.1f%%\n", ng, gPer, cPer, gPer/cPer, eff)
		_ = gBase
	}
	fmt.Println("\nreading the table: both solvers scale, but GMRES's per-iteration")
	fmt.Println("reductions put a latency floor under its time that more devices")
	fmt.Println("cannot lower, while CA-GMRES keeps most of its advantage — the")
	fmt.Println("gap the paper expects to widen on multi-node systems.")
}
