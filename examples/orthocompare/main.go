// Orthocompare: a numerical-stability tour of the five TSQR strategies
// (Figure 10 / Figure 13 in miniature). Factors tall-skinny matrices with
// increasing condition numbers on three simulated GPUs and reports each
// strategy's orthogonality error, communication rounds, and failures.
//
//	go run ./examples/orthocompare
package main

import (
	"fmt"

	"cagmres"
)

func main() {
	const (
		n  = 60000
		c  = 20 // s+1 columns
		ng = 3
	)
	fmt.Printf("TSQR on a %d x %d window, %d simulated GPUs\n", n, c, ng)
	fmt.Println("orthogonality error ||I - Q'Q||_F by window condition number:")
	fmt.Printf("%-9s %10s", "strategy", "rounds")
	conds := []float64{1e2, 1e5, 1e8, 1e12}
	for _, k := range conds {
		fmt.Printf(" %12.0e", k)
	}
	fmt.Println()

	for _, strat := range cagmres.AllTSQR() {
		fmt.Printf("%-9s", strat.Name())
		roundsPrinted := false
		for _, kappa := range conds {
			v := cagmres.RandomTallSkinny(n, c, kappa, 42)
			ctx := cagmres.NewContext(ng)
			w := cagmres.SplitRows(v, ng)
			orig := cagmres.CloneWindow(w)
			r, err := strat.Factor(ctx, w, "tsqr")
			if !roundsPrinted {
				fmt.Printf(" %10d", ctx.Stats().Phase("tsqr").Rounds)
				roundsPrinted = true
			}
			if err != nil {
				fmt.Printf(" %12s", "FAILED")
				continue
			}
			e := cagmres.MeasureTSQR(w, orig, r)
			fmt.Printf(" %12.2e", e.Orthogonality)
		}
		fmt.Println()
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - CAQR stays at machine precision whatever the conditioning (O(eps)).")
	fmt.Println("  - MGS degrades linearly with kappa (O(eps*kappa)).")
	fmt.Println("  - CholQR/SVQR degrade with kappa^2 and fail outright near 1e8,")
	fmt.Println("    which is why CA-GMRES pairs them with reorthogonalization (2x).")
	fmt.Println("  - The communication column is Figure 10: MGS pays per dot product,")
	fmt.Println("    CGS per column, the BLAS-3 strategies exactly 2 transfers.")

	// The repair the paper applies: reorthogonalization.
	fmt.Println("\n2x reorthogonalization at kappa=1e8:")
	for _, name := range []string{"CGS", "2xCGS", "CholQR", "2xCholQR"} {
		strat, err := cagmres.TSQRByName(name)
		if err != nil {
			panic(err)
		}
		v := cagmres.RandomTallSkinny(n, c, 1e8, 42)
		ctx := cagmres.NewContext(ng)
		w := cagmres.SplitRows(v, ng)
		orig := cagmres.CloneWindow(w)
		r, err := strat.Factor(ctx, w, "tsqr")
		if err != nil {
			fmt.Printf("  %-9s FAILED (%v)\n", name, err)
			continue
		}
		e := cagmres.MeasureTSQR(w, orig, r)
		fmt.Printf("  %-9s ||I-Q'Q|| = %.2e\n", name, e.Orthogonality)
	}
}
