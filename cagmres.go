// Package cagmres is a pure-Go reproduction of "Improving the Performance
// of CA-GMRES on Multicores with Multiple GPUs" (Yamazaki, Anzt, Tomov,
// Hoemmen, Dongarra — IPDPS 2014).
//
// It provides restarted GMRES(m) and communication-avoiding CA-GMRES(s, m)
// solvers for sparse nonsymmetric linear systems, running on a simulated
// multi-GPU node: every device executes for real on its own goroutine
// (results are numerically exact), while CPU<->GPU communication and
// device kernel costs are charged to a ledger through a cost model
// calibrated to the paper's testbed (three NVIDIA M2090 GPUs on PCIe 2.0
// with two 8-core Sandy Bridge CPUs). The package re-exports the pieces a
// downstream user needs; the full machinery lives under internal/:
//
//	internal/la     dense kernels (BLAS-1/2/3, QR, Cholesky, SVD, Leja)
//	internal/sparse CSR + ELLPACK storage, SpMV, balancing, MatrixMarket
//	internal/graph  RCM ordering and k-way partitioning
//	internal/gpu    the simulated device runtime and cost ledger
//	internal/dist   distributed vectors/matrices and the matrix powers kernel
//	internal/ortho  the five TSQR strategies (MGS, CGS, CholQR, SVQR, CAQR)
//	internal/core   the GMRES and CA-GMRES solvers
//	internal/matgen synthetic analogues of the paper's test matrices
//	internal/bench  drivers that regenerate every figure of the evaluation
//
// Quick start:
//
//	ctx := cagmres.NewContext(3) // three simulated GPUs
//	A := cagmres.Laplace2D(100, 100, 0.3)
//	b := make([]float64, A.Rows)
//	for i := range b { b[i] = 1 }
//	p, _ := cagmres.NewProblem(ctx, A, b, cagmres.KWay, true)
//	res, _ := cagmres.CAGMRES(p, cagmres.Options{M: 60, S: 10, Ortho: "CholQR"})
//	fmt.Println(res.Converged, res.RelRes)
package cagmres

import (
	"io"

	"cagmres/internal/core"
	"cagmres/internal/gpu"
	"cagmres/internal/la"
	"cagmres/internal/matgen"
	"cagmres/internal/ortho"
	"cagmres/internal/profile"
	"cagmres/internal/sparse"
)

// Re-exported solver types. See internal/core for full documentation.
type (
	// Options configures GMRES and CA-GMRES (restart length M, CA step
	// S, tolerance, orthogonalization strategy, basis choice). Set
	// Options.Ctx to a context.Context to make the solve cancelable:
	// the solvers check it at every restart boundary and return the
	// best-so-far Result with Canceled set once it is done.
	Options = core.Options
	// Result reports a solve: solution, convergence, restart/iteration
	// counts, residual history, the modeled cost ledger, and whether
	// the solve was canceled via Options.Ctx.
	Result = core.Result
	// Problem is a prepared linear system (ordered, balanced,
	// distributed).
	Problem = core.Problem
	// Ordering selects the pre-distribution permutation.
	Ordering = core.Ordering
	// CostModel holds the simulated hardware constants.
	CostModel = gpu.CostModel
	// Profile is a full machine description: cost model plus interconnect
	// topology. Shipped profiles live in internal/profile (m2090,
	// a100-pcie, h100-nvlink); Options.Profile re-targets a solve.
	Profile = gpu.Profile
	// Topology describes the device-to-device fabric: a kind plus peer
	// link constants. Peer kinds route halo exchange device-to-device
	// instead of bouncing it through the host.
	Topology = gpu.Topology
	// TopoKind names an interconnect shape (host-hub, pcie-switch,
	// nvlink-ring, all-to-all).
	TopoKind = gpu.TopoKind
	// Cluster is the optional second tier of a Profile: devices grouped
	// into simulated compute nodes joined by an inter-node Fabric. The
	// zero value keeps the single-node machine.
	Cluster = gpu.Cluster
	// Fabric holds the inter-node interconnect constants (α/β of one
	// node uplink) of a clustered Profile.
	Fabric = gpu.Fabric
	// FabricKind names an inter-node interconnect generation (ib-hdr,
	// ib-edr, ethernet-100g, ethernet-25g).
	FabricKind = gpu.FabricKind
	// PrecisionReport summarizes what the mixed/adaptive precision
	// policy did during a solve (window counts per width, compressed
	// transfers, FP64 refinement steps). Result.Precision carries one
	// for narrow runs; nil for fp64.
	PrecisionReport = core.PrecisionReport
	// Context is the simulated multi-GPU node.
	Context = gpu.Context
	// Matrix is a sparse matrix in compressed sparse row form.
	Matrix = sparse.CSR
	// Coord is a coordinate-format entry for matrix assembly.
	Coord = sparse.Coord
)

// Ordering values: natural block rows, reverse Cuthill-McKee, or k-way
// graph partitioning (the paper's NAT / RCM / KWY configurations).
const (
	Natural    = core.Natural
	RCM        = core.RCM
	KWay       = core.KWay
	Hypergraph = core.Hypergraph
)

// Options.Precision values: the historical full-double pipeline, fixed
// fp32 basis generation with FP64 iterative refinement at restart
// boundaries, or the tighten-only adaptive schedule.
const (
	PrecisionFP64     = core.PrecisionFP64
	PrecisionMixed    = core.PrecisionMixed
	PrecisionAdaptive = core.PrecisionAdaptive
)

// NormalizePrecision canonicalizes an Options.Precision value: the
// empty string is fp64, known modes pass through, anything else errors.
func NormalizePrecision(p string) (string, error) { return core.NormalizePrecision(p) }

// NewContext creates a simulated node with ng GPUs using the calibrated
// M2090 cost model of the paper's testbed.
func NewContext(ng int) *Context { return gpu.NewContext(ng, gpu.M2090()) }

// NewContextWithModel creates a simulated node with a custom cost model.
func NewContextWithModel(ng int, model CostModel) *Context {
	return gpu.NewContext(ng, model)
}

// NewContextWithProfile creates a simulated node from a full machine
// description — cost model plus interconnect topology. Profiles with a
// peer-to-peer topology route device-to-device halo traffic over the
// fabric instead of bouncing it through the host.
func NewContextWithProfile(ng int, p Profile) *Context {
	return gpu.NewContextWithProfile(ng, p)
}

// MachineProfile resolves a shipped machine profile by name: "m2090"
// (the paper's testbed, host-hub PCIe 2.0), "a100-pcie" (PCIe-switch
// peer routing) or "h100-nvlink" (NVLink ring). Names are
// case-insensitive.
func MachineProfile(name string) (Profile, error) { return profile.ByName(name) }

// MachineProfiles lists the shipped machine profile names.
func MachineProfiles() []string { return profile.Names() }

// M2090Model returns the default cost model (NVIDIA M2090 on PCIe 2.0).
func M2090Model() CostModel { return gpu.M2090() }

// MultiNodeModel derives a clustered cost model: devicesPerNode GPUs per
// node joined by a network with the given latency (seconds) and bandwidth
// (bytes/second) — the configuration the paper's conclusion asks about.
func MultiNodeModel(base CostModel, devicesPerNode int, interLatency, interBandwidth float64) CostModel {
	return gpu.MultiNode(base, devicesPerNode, interLatency, interBandwidth)
}

// NewProblem prepares a linear system A x = b: applies the ordering,
// distributes block rows over the context's devices, and optionally
// balances the matrix (rows then columns scaled by their norms, as the
// paper does before iterating).
func NewProblem(ctx *Context, a *Matrix, b []float64, ordering Ordering, balance bool) (*Problem, error) {
	return core.NewProblem(ctx, a, b, ordering, balance)
}

// GMRES solves with restarted GMRES(m); Options.Ortho picks the Arnoldi
// orthogonalization ("MGS" or "CGS"). A non-nil Options.Ctx cancels the
// solve at the next restart boundary (Result.Canceled).
func GMRES(p *Problem, opts Options) (*Result, error) { return core.GMRES(p, opts) }

// CAGMRES solves with communication-avoiding GMRES(s, m); Options.Ortho
// picks the TSQR strategy ("MGS", "CGS", "CholQR", "SVQR", "CAQR",
// optionally "2x"-prefixed for reorthogonalization). A non-nil
// Options.Ctx cancels the solve at the next restart or matrix-powers
// window boundary (Result.Canceled).
func CAGMRES(p *Problem, opts Options) (*Result, error) { return core.CAGMRES(p, opts) }

// ResidualNorm computes ||b - A x|| / ||b|| host-side for verification.
func ResidualNorm(a *Matrix, b, x []float64) float64 { return core.ResidualNorm(a, b, x) }

// RitzValues approximates the extreme eigenvalues of the problem's matrix
// with an m-step Arnoldi process, built either one vector at a time
// (Options.S <= 1) or in communication-avoiding matrix-powers windows
// (Options.S > 1) — the same kernels as the linear solvers, applied to
// the eigenvalue problem.
func RitzValues(p *Problem, opts Options, start []float64) ([]complex128, error) {
	return core.RitzValues(p, opts, start)
}

// FromCoords assembles a CSR matrix from coordinate entries (duplicates
// are summed).
func FromCoords(rows, cols int, entries []Coord) *Matrix {
	return sparse.FromCoords(rows, cols, entries)
}

// ReadMatrixMarket parses a MatrixMarket coordinate file (the SuiteSparse
// distribution format).
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return sparse.ReadMatrixMarket(r) }

// WriteMatrixMarket writes a matrix in MatrixMarket coordinate format.
func WriteMatrixMarket(w io.Writer, a *Matrix) error { return sparse.WriteMatrixMarket(w, a) }

// Laplace2D builds the 5-point Laplacian on an nx x ny grid with an
// optional convection term (nonsymmetric when nonzero).
func Laplace2D(nx, ny int, convection float64) *Matrix {
	return matgen.Laplace2D(nx, ny, convection)
}

// Laplace3D builds the 7-point Laplacian on an nx x ny x nz grid.
func Laplace3D(nx, ny, nz int, convection float64) *Matrix {
	return matgen.Laplace3D(nx, ny, nz, convection)
}

// GenerateMatrix builds one of the paper's synthetic matrix analogues by
// name: "cant", "G3_circuit", "dielFilterV2real", or "nlpkkt120". Scale
// 1.0 reproduces the published dimensions.
func GenerateMatrix(name string, scale float64) (*Matrix, error) {
	m, err := matgen.ByName(name, scale)
	if err != nil {
		return nil, err
	}
	return m.A, nil
}

// TSQR is a tall-skinny QR strategy over a distributed window (one of
// the five the paper studies). Obtain instances with TSQRByName and plug
// them into Options.OrthoImpl, or use them directly through
// internal/ortho's Factor interface.
type TSQR = ortho.TSQR

// TSQRErrors holds the three error norms of Figure 13 for one
// factorization.
type TSQRErrors = ortho.Errors

// TSQRByName returns a TSQR strategy: MGS, CGS, CholQR, SVQR, CAQR,
// optionally prefixed with "2x" for reorthogonalization.
func TSQRByName(name string) (TSQR, error) { return ortho.ByName(name) }

// AllTSQR returns one instance of each base strategy in the paper's
// order.
func AllTSQR() []TSQR { return ortho.All() }

// MeasureTSQR computes the Figure-13 error norms of a factorization:
// q holds the per-device panels after Factor, orig the pre-factor copies
// (see CloneWindow), r the returned factor.
func MeasureTSQR(q, orig []*Dense, r *Dense2) TSQRErrors { return ortho.Measure(q, orig, r) }

// CloneWindow deep-copies a distributed window before factoring it, so
// the original is available for MeasureTSQR.
func CloneWindow(w []*Dense) []*Dense { return ortho.CloneWindow(w) }

// Dense is a column-major dense matrix (the per-device panel type).
type Dense = la.Dense

// Dense2 aliases Dense for the small square factors (R matrices).
type Dense2 = la.Dense

// RandomTallSkinny builds an n x c matrix with prescribed 2-norm
// condition number, the input of the TSQR stability studies.
func RandomTallSkinny(n, c int, cond float64, seed int64) *Dense {
	return matgen.RandomTallSkinny(n, c, cond, seed)
}

// SplitRows scatters a host matrix into ng per-device row panels, the
// shape the TSQR strategies consume. The split matches a Uniform layout.
func SplitRows(v *Dense, ng int) []*Dense {
	n := v.Rows
	base, rem := n/ng, n%ng
	out := make([]*Dense, ng)
	r0 := 0
	for d := 0; d < ng; d++ {
		rows := base
		if d < rem {
			rows++
		}
		p := la.NewDense(rows, v.Cols)
		for j := 0; j < v.Cols; j++ {
			copy(p.Col(j), v.Col(j)[r0:r0+rows])
		}
		out[d] = p
		r0 += rows
	}
	return out
}
