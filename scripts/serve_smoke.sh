#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the serving stack:
# start cagmresd on a free port, drive it with the closed-loop load
# generator, assert the exported metrics lint clean and declare every
# scheduler instrument, then shut the daemon down gracefully with
# SIGTERM and check it drains to a clean exit.
#
# Usage: scripts/serve_smoke.sh [workdir]   (default: $TMPDIR/cagmres-serve-smoke)
set -eu

GO="${GO:-go}"
DIR="${1:-${TMPDIR:-/tmp}/cagmres-serve-smoke}"
mkdir -p "$DIR"
rm -f "$DIR/cagmresd.port" "$DIR/cagmresd.log" "$DIR/metrics.prom"

"$GO" build -o "$DIR/cagmresd" ./cmd/cagmresd
"$GO" build -o "$DIR/loadgen" ./cmd/loadgen
"$GO" build -o "$DIR/obslint" ./cmd/obslint

"$DIR/cagmresd" -addr 127.0.0.1:0 -pool 2 -devices 2 -portfile "$DIR/cagmresd.port" \
    > "$DIR/cagmresd.log" 2>&1 &
DPID=$!
trap 'kill "$DPID" 2>/dev/null || true' EXIT

# Wait for the daemon to publish its bound address.
i=0
while [ ! -s "$DIR/cagmresd.port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: daemon never wrote its port file" >&2
        cat "$DIR/cagmresd.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "serve-smoke: cagmresd on $(cat "$DIR/cagmresd.port")"

# Closed-loop load: 4 concurrent clients, matching the issue's
# "at least 4 concurrent solves" bar, plus a /metrics snapshot.
"$DIR/loadgen" -mode live -portfile "$DIR/cagmresd.port" \
    -clients 4 -requests 3 -matrix laplace3d -scale 1e-4 -m 20 -s 5 \
    -metricsout "$DIR/metrics.prom"

# The exposition must lint clean and declare every scheduler family.
"$DIR/obslint" -prom "$DIR/metrics.prom" -require \
    sched_queue_depth,sched_pool_in_use,sched_pool_size,sched_queue_wait_seconds,sched_service_seconds,sched_batch_jobs,sched_rejections_total,sched_leases_total,sched_lease_seconds_total,sched_jobs_total

# Graceful drain: SIGTERM must produce a zero exit.
kill -TERM "$DPID"
wait "$DPID" || {
    echo "serve-smoke: daemon exited non-zero after SIGTERM" >&2
    cat "$DIR/cagmresd.log" >&2
    exit 1
}
trap - EXIT
grep -q "drained" "$DIR/cagmresd.log" || {
    echo "serve-smoke: daemon log missing drain confirmation" >&2
    cat "$DIR/cagmresd.log" >&2
    exit 1
}
echo "serve-smoke: ok (graceful drain confirmed)"
