#!/bin/sh
# precision_smoke.sh — end-to-end smoke test of the mixed-precision
# pipeline: start cagmresd on a bf16-capable profile with a daemon-wide
# default of -precision mixed, drive it with the load generator, assert
# a solve body that omits the field inherits the daemon default (and an
# explicit fp64 body overrides it), replay one mixed solve and check
# bit-identity, then lint the exported metrics for the precision
# instrument families and shut down gracefully.
#
# Usage: scripts/precision_smoke.sh [workdir]   (default: $TMPDIR/cagmres-precision-smoke)
set -eu

GO="${GO:-go}"
DIR="${1:-${TMPDIR:-/tmp}/cagmres-precision-smoke}"
mkdir -p "$DIR"
rm -f "$DIR/cagmresd.port" "$DIR/cagmresd.log" "$DIR/metrics.prom"

"$GO" build -o "$DIR/cagmresd" ./cmd/cagmresd
"$GO" build -o "$DIR/loadgen" ./cmd/loadgen
"$GO" build -o "$DIR/obslint" ./cmd/obslint

# a100-pcie puts the pooled devices behind a PCIe switch with
# bfloat16-capable transfer engines, so mixed solves compress halos.
"$DIR/cagmresd" -addr 127.0.0.1:0 -pool 2 -devices 2 \
    -profile a100-pcie -precision mixed -portfile "$DIR/cagmresd.port" \
    > "$DIR/cagmresd.log" 2>&1 &
DPID=$!
trap 'kill "$DPID" 2>/dev/null || true' EXIT

# Wait for the daemon to publish its bound address.
i=0
while [ ! -s "$DIR/cagmresd.port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "precision-smoke: daemon never wrote its port file" >&2
        cat "$DIR/cagmresd.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="$(cat "$DIR/cagmresd.port")"
echo "precision-smoke: cagmresd on $ADDR (default precision: mixed)"

get()  { curl -fsS "http://$ADDR$1"; }
post() { curl -fsS -X POST ${2:+-d "$2"} "http://$ADDR$1"; }

# Closed-loop mixed load so the precision counters accumulate.
"$DIR/loadgen" -mode live -portfile "$DIR/cagmresd.port" \
    -clients 4 -requests 2 -matrix laplace3d -scale 1e-4 -m 20 -s 5 \
    -precision mixed

# A body that omits the precision field inherits the daemon default,
# and the mode must be echoed in the job JSON.
SOLVE='{"matrix":{"name":"laplace3d","scale":1e-4},"m":20,"s":5,"tol":1e-8,"wait":true}'
OUT="$(post /solve "$SOLVE")"
echo "$OUT" | grep -q '"state":"done"' || {
    echo "precision-smoke: defaulted solve did not complete: $OUT" >&2
    exit 1
}
echo "$OUT" | grep -q '"mode":"mixed"' || {
    echo "precision-smoke: daemon default precision not echoed: $OUT" >&2
    exit 1
}
echo "precision-smoke: omitted field inherited the daemon default (mode mixed echoed)"

# An explicit fp64 body overrides the daemon default: pure-double
# solves carry no precision report at all.
FP64='{"matrix":{"name":"laplace3d","scale":1e-4},"m":20,"s":5,"tol":1e-8,"precision":"fp64","wait":true}'
OUT="$(post /solve "$FP64")"
echo "$OUT" | grep -q '"state":"done"' || {
    echo "precision-smoke: fp64 solve did not complete: $OUT" >&2
    exit 1
}
echo "$OUT" | grep -q '"mode":' && {
    echo "precision-smoke: explicit fp64 body still reported a narrowed mode: $OUT" >&2
    exit 1
}
echo "precision-smoke: explicit fp64 body overrode the daemon default"

# Replay bit-identity: the same mixed body twice must agree exactly on
# the residual and the modeled time — narrowing is deterministic.
MIXED='{"matrix":{"name":"laplace3d","scale":1e-4},"m":20,"s":5,"tol":1e-8,"precision":"mixed","wait":true}'
pick() { sed -n "s/.*\"$1\":\([^,}]*\).*/\1/p"; }
A="$(post /solve "$MIXED")"
B="$(post /solve "$MIXED")"
for field in relres modeled_seconds windows_fp64 windows_fp32 compressed_transfers; do
    VA="$(echo "$A" | pick "$field")"
    VB="$(echo "$B" | pick "$field")"
    if [ -z "$VA" ] || [ "$VA" != "$VB" ]; then
        echo "precision-smoke: replay mismatch on $field: '$VA' vs '$VB'" >&2
        echo "first:  $A" >&2
        echo "second: $B" >&2
        exit 1
    fi
done
echo "precision-smoke: mixed replay bit-identical (relres $(echo "$A" | pick relres))"

# The exposition must lint clean and declare the precision families.
get /metrics > "$DIR/metrics.prom"
"$DIR/obslint" -prom "$DIR/metrics.prom" -require \
    solver_precision_jobs_total,solver_precision_windows_total,solver_precision_compressed_transfers_total

# Graceful drain: SIGTERM must produce a zero exit.
kill -TERM "$DPID"
wait "$DPID" || {
    echo "precision-smoke: daemon exited non-zero after SIGTERM" >&2
    cat "$DIR/cagmresd.log" >&2
    exit 1
}
trap - EXIT
grep -q "drained" "$DIR/cagmresd.log" || {
    echo "precision-smoke: daemon log missing drain confirmation" >&2
    cat "$DIR/cagmresd.log" >&2
    exit 1
}
echo "precision-smoke: ok (default inherited, override honored, replay bit-identical)"
