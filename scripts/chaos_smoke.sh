#!/bin/sh
# chaos_smoke.sh — end-to-end smoke test of the fault-injection and
# self-healing stack, in two layers:
#
#  1. The in-process chaos harness (cmd/chaos) replays a seeded fault
#     plan — a device death mid-solve plus a low-probability transfer
#     fault stream — through the solver and the scheduler, asserting
#     every job terminates, the degraded 3→2-device solve converges,
#     and the replay is bit-identical on the virtual clock. Its metrics
#     exposition must lint clean and declare every fault/retry family.
#
#  2. The daemon path: cagmresd is started with chaos flags armed
#     (-chaos-kill, -chaos-xfer, -repair), driven by the closed-loop
#     load generator, and must keep answering solves, export the fault
#     families on /metrics, and still drain cleanly on SIGTERM.
#
# Usage: scripts/chaos_smoke.sh [workdir]   (default: $TMPDIR/cagmres-chaos-smoke)
set -eu

GO="${GO:-go}"
DIR="${1:-${TMPDIR:-/tmp}/cagmres-chaos-smoke}"
mkdir -p "$DIR"
rm -f "$DIR/cagmresd.port" "$DIR/cagmresd.log" "$DIR/metrics.prom" \
      "$DIR/chaos-metrics.prom" "$DIR/chaos-overlap-metrics.prom" "$DIR/bench.json"

"$GO" build -o "$DIR/chaos" ./cmd/chaos
"$GO" build -o "$DIR/cagmresd" ./cmd/cagmresd
"$GO" build -o "$DIR/loadgen" ./cmd/loadgen
"$GO" build -o "$DIR/obslint" ./cmd/obslint

FAULT_FAMILIES=sched_faults_injected_total,sched_transfer_retries_total,sched_context_evictions_total,sched_context_readmissions_total,sched_job_requeues_total,sched_repartitions_total,sched_checkpoint_restores_total,sched_lease_timeouts_total

# Layer 1: deterministic in-process replay (solver heal + scheduler
# survival), same configuration that produced the committed BENCH_pr4.
"$DIR/chaos" -pool 2 -devices 3 -jobs 8 -seed 7 -kill 0:1@0.9 -xferprob 0.02 \
    -repair -benchjson "$DIR/bench.json" -metricsout "$DIR/chaos-metrics.prom"
"$DIR/obslint" -prom "$DIR/chaos-metrics.prom" -require "$FAULT_FAMILIES"

# Same fault plan through the asynchronous stream engine: overlap
# reorders modeled time, not arithmetic, and faults fire on the stream
# clock — the degraded replay must stay bit-identical with streams on
# (the harness exits non-zero if it diverges).
"$DIR/chaos" -pool 2 -devices 3 -jobs 8 -seed 7 -kill 0:1@0.9 -xferprob 0.02 \
    -repair -overlap -metricsout "$DIR/chaos-overlap-metrics.prom"
"$DIR/obslint" -prom "$DIR/chaos-overlap-metrics.prom" -require "$FAULT_FAMILIES"

# Layer 2: the daemon with chaos armed must keep serving and drain clean.
"$DIR/cagmresd" -addr 127.0.0.1:0 -pool 2 -devices 3 -portfile "$DIR/cagmresd.port" \
    -chaos-seed 7 -chaos-kill 0:1@0.001 -chaos-xfer 0.02 -repair \
    > "$DIR/cagmresd.log" 2>&1 &
DPID=$!
trap 'kill "$DPID" 2>/dev/null || true' EXIT

i=0
while [ ! -s "$DIR/cagmresd.port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "chaos-smoke: daemon never wrote its port file" >&2
        cat "$DIR/cagmresd.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "chaos-smoke: cagmresd (chaos armed) on $(cat "$DIR/cagmresd.port")"

"$DIR/loadgen" -mode live -portfile "$DIR/cagmresd.port" \
    -clients 4 -requests 3 -matrix laplace3d -scale 1e-4 -m 20 -s 5 \
    -metricsout "$DIR/metrics.prom"

"$DIR/obslint" -prom "$DIR/metrics.prom" -require "$FAULT_FAMILIES"

kill -TERM "$DPID"
wait "$DPID" || {
    echo "chaos-smoke: daemon exited non-zero after SIGTERM" >&2
    cat "$DIR/cagmresd.log" >&2
    exit 1
}
trap - EXIT
grep -q "drained" "$DIR/cagmresd.log" || {
    echo "chaos-smoke: daemon log missing drain confirmation" >&2
    cat "$DIR/cagmresd.log" >&2
    exit 1
}
grep -q "chaos armed" "$DIR/cagmresd.log" || {
    echo "chaos-smoke: daemon log missing chaos-armed banner" >&2
    cat "$DIR/cagmresd.log" >&2
    exit 1
}
echo "chaos-smoke: ok (degraded daemon served load and drained cleanly)"
