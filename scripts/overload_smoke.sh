#!/bin/sh
# overload_smoke.sh — end-to-end smoke test of the overload-containment
# tier: start cagmres-router with 2 in-process nodes and the full
# containment stack armed (retry budget, circuit breakers, deadline
# propagation, SLO-driven brownout with an impossible latency target,
# deadline-infeasibility gate), then
#   1. solve with a client deadline stamped in the Solve-Control header
#      and check it completes,
#   2. check the impossible SLO tripped brownout on the loaded node
#      (healthz brownout_level, sched_shed_total{reason="brownout"})
#      while a priority-0 solve still completes on the clean survivor,
#   3. check a solve whose deadline cannot cover a typical service time
#      is rejected up front with the structured deadline_infeasible code,
#   4. check the router exports the resilience families and healthz
#      resilience block,
#   5. replay the deterministic retry-storm scenario (chaos -storm):
#      containment off collapses goodput, on holds it, bit-identically,
# and finally shut the router down gracefully with SIGTERM.
#
# Usage: scripts/overload_smoke.sh [workdir]   (default: $TMPDIR/cagmres-overload-smoke)
set -eu

GO="${GO:-go}"
DIR="${1:-${TMPDIR:-/tmp}/cagmres-overload-smoke}"
mkdir -p "$DIR"
rm -f "$DIR/router.port" "$DIR/router.log"

"$GO" build -o "$DIR/cagmres-router" ./cmd/cagmres-router
"$GO" build -o "$DIR/chaos" ./cmd/chaos

# An SLO no solve can meet (0.1 ms latency target) plus a one-rung
# brownout ladder: the first completed solve trips fast burn on its
# node, which then sheds priority < 1. The deadline margin of 1 arms
# the infeasibility gate against the rolling service estimate.
"$DIR/cagmres-router" -addr 127.0.0.1:0 -local 2 -devices 2 \
    -retry-budget 0.1 -retry-burst 5 -breaker-threshold 3 -breaker-cooldown 2 \
    -slo-target 'burn:*:0.0001:0.9' -brownout 1 -deadline-margin 1 \
    -portfile "$DIR/router.port" > "$DIR/router.log" 2>&1 &
RPID=$!
trap 'kill "$RPID" 2>/dev/null || true' EXIT

i=0
while [ ! -s "$DIR/router.port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "overload-smoke: router never wrote its port file" >&2
        cat "$DIR/router.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="$(cat "$DIR/router.port")"
echo "overload-smoke: cagmres-router on $ADDR"

get() { curl -fsS "http://$ADDR$1"; }
# solve POSTs a body with a Solve-Control header; -w '\n%{http_code}'
# lets callers read both the body and the status.
solve() { curl -sS -X POST -H "Solve-Control: $1" -d "$2" \
    -w '\n%{http_code}' "http://$ADDR/solve"; }
SOLVE='{"matrix":{"name":"laplace3d","scale":1e-3},"m":20,"s":4,"tol":1e-6,"wait":true}'

# Phase 1: a deadline-stamped solve must complete — the router
# decrements the deadline per hop and the backend honors the rest.
OUT="$(solve 'deadline-ms=60000' "$SOLVE")"
echo "$OUT" | grep -q '"state":"done"' || {
    echo "overload-smoke: deadline-stamped solve did not complete: $OUT" >&2
    exit 1
}
OWNER="$(echo "$OUT" | sed -n 's/.*"backend":"\([^"]*\)".*/\1/p')"
echo "overload-smoke: deadline-stamped solve done on $OWNER"

# Phase 2: that completion blew the impossible SLO target, so the
# owner's fast-burn window trips brownout level 1: the node itself now
# sheds priority 0 (visible in its healthz and shed counter), while the
# router re-routes the shed solve to the clean survivor.
OUT="$(solve 'deadline-ms=60000' "$SOLVE")"
echo "$OUT" | grep -q '"state":"done"' || {
    echo "overload-smoke: solve under brownout did not complete on the survivor: $OUT" >&2
    exit 1
}
echo "$OUT" | grep -q "\"backend\":\"$OWNER\"" && {
    echo "overload-smoke: brownout did not shed off the loaded node: $OUT" >&2
    exit 1
}
OWNER_HEALTH="$(get "/backends/$OWNER/healthz")"
echo "$OWNER_HEALTH" | grep -q '"brownout_level":1' || {
    echo "overload-smoke: $OWNER healthz does not show brownout level 1: $OWNER_HEALTH" >&2
    exit 1
}
get "/backends/$OWNER/metrics" > "$DIR/owner.prom"
grep -q 'sched_shed_total{reason="brownout"} [1-9]' "$DIR/owner.prom" || {
    echo "overload-smoke: $OWNER metrics missing brownout shed count" >&2
    exit 1
}
echo "overload-smoke: brownout tripped on $OWNER, solve shed to a survivor"

# Phase 3: a deadline below the service estimate is dead on arrival:
# the infeasibility gate rejects it up front as deadline_infeasible.
# Priority 1 clears the brownout rung, so the deadline gate is what
# answers. Both nodes now have a primed estimate (each served a solve).
BODY='{"matrix":{"name":"laplace3d","scale":1e-3},"m":20,"s":4,"tol":1e-6,"wait":true,"priority":1,"deadline_ms":1}'
OUT="$(solve 'deadline-ms=1' "$BODY")"
CODE="$(echo "$OUT" | tail -1)"
echo "$OUT" | grep -q 'deadline' || {
    echo "overload-smoke: infeasible deadline not rejected (status $CODE): $OUT" >&2
    exit 1
}
case "$CODE" in
  422|504) : ;;
  *) echo "overload-smoke: infeasible deadline got status $CODE, want 422 or 504: $OUT" >&2
     exit 1 ;;
esac
echo "overload-smoke: infeasible 1ms deadline rejected up front (status $CODE)"

# Phase 4: the router's own resilience surface — metric families and
# the healthz resilience block.
METRICS="$(get /metrics)"
for fam in router_retry_budget_tokens router_retry_budget_exhausted_total \
    router_breaker_skips_total router_breaker_open_total \
    router_hedges_total router_hedge_wins_total router_deadline_expired_total; do
    echo "$METRICS" | grep -q "^$fam" || {
        echo "overload-smoke: router /metrics missing $fam" >&2
        exit 1
    }
done
HEALTH="$(get /healthz)"
echo "$HEALTH" | grep -q '"resilience"' || {
    echo "overload-smoke: router healthz missing resilience block: $HEALTH" >&2
    exit 1
}
echo "overload-smoke: resilience families and healthz block present"

# Phase 5: the deterministic retry-storm scenario — containment off
# collapses goodput at 4x offered load, containment on holds it, and
# both arms replay bit-identically (including the breaker transition
# script on virtual time).
"$DIR/chaos" -storm

# Graceful drain: SIGTERM must produce a zero exit.
kill -TERM "$RPID"
wait "$RPID" || {
    echo "overload-smoke: router exited non-zero after SIGTERM" >&2
    cat "$DIR/router.log" >&2
    exit 1
}
trap - EXIT
grep -q "drained" "$DIR/router.log" || {
    echo "overload-smoke: router log missing drain confirmation" >&2
    cat "$DIR/router.log" >&2
    exit 1
}
echo "overload-smoke: ok (deadline propagation, brownout shed, infeasible reject, storm containment)"
