#!/bin/sh
# trace_smoke.sh — end-to-end smoke test of the request-tracing and SLO
# stack: start cagmresd, drive it with the load generator under a fixed
# W3C traceparent (loadgen itself asserts the daemon echoes the trace
# id on every response), then pull the first job's Chrome trace and
# span stream plus the /slo and /metrics reports and validate all four:
# the span stream must lint clean (single trace id, acyclic, nested),
# the Chrome export must carry request and device lanes, /slo must be a
# well-formed report, and /metrics must declare the slo_*/trace_*
# families. Finishes with a SIGTERM drain check like serve_smoke.sh.
#
# Usage: scripts/trace_smoke.sh [workdir]   (default: $TMPDIR/cagmres-trace-smoke)
set -eu

GO="${GO:-go}"
DIR="${1:-${TMPDIR:-/tmp}/cagmres-trace-smoke}"
mkdir -p "$DIR"
rm -f "$DIR/cagmresd.port" "$DIR/cagmresd.log" "$DIR/metrics.prom" \
    "$DIR/job.trace.json" "$DIR/job.spans.jsonl" "$DIR/slo.json"

"$GO" build -o "$DIR/cagmresd" ./cmd/cagmresd
"$GO" build -o "$DIR/loadgen" ./cmd/loadgen
"$GO" build -o "$DIR/obslint" ./cmd/obslint

TRACEPARENT="00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
TRACEID="0af7651916cd43dd8448eb211c80319c"

"$DIR/cagmresd" -addr 127.0.0.1:0 -pool 2 -devices 2 -portfile "$DIR/cagmresd.port" \
    > "$DIR/cagmresd.log" 2>&1 &
DPID=$!
trap 'kill "$DPID" 2>/dev/null || true' EXIT

i=0
while [ ! -s "$DIR/cagmresd.port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "trace-smoke: daemon never wrote its port file" >&2
        cat "$DIR/cagmresd.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "trace-smoke: cagmresd on $(cat "$DIR/cagmresd.port")"

# Traced load: loadgen fails if any response drops the trace id, and
# fetches the trace/span/SLO artifacts afterwards.
"$DIR/loadgen" -mode live -portfile "$DIR/cagmresd.port" \
    -clients 2 -requests 2 -matrix laplace3d -scale 1e-4 -m 20 -s 5 \
    -traceparent "$TRACEPARENT" \
    -traceout "$DIR/job.trace.json" -spansout "$DIR/job.spans.jsonl" \
    -sloout "$DIR/slo.json" -metricsout "$DIR/metrics.prom"

# The span stream lints clean and carries the adopted trace id.
"$DIR/obslint" -spans "$DIR/job.spans.jsonl"
grep -q "$TRACEID" "$DIR/job.spans.jsonl" || {
    echo "trace-smoke: span stream does not carry trace $TRACEID" >&2
    exit 1
}

# The Chrome export is a valid trace file with the stitched lanes.
"$DIR/obslint" -trace "$DIR/job.trace.json"
for lane in "device 0" "queue" "modeled time"; do
    grep -q "$lane" "$DIR/job.trace.json" || {
        echo "trace-smoke: trace.json missing \"$lane\" lane" >&2
        exit 1
    }
done

# /slo is a report with classes and budget numbers.
for field in '"classes"' '"error_budget_remaining"' '"burn_rate_fast"'; do
    grep -q "$field" "$DIR/slo.json" || {
        echo "trace-smoke: /slo report missing $field" >&2
        cat "$DIR/slo.json" >&2
        exit 1
    }
done

# /metrics declares the SLO and tracing families on top of linting clean.
"$DIR/obslint" -prom "$DIR/metrics.prom" -require \
    slo_requests_total,slo_latency_seconds,slo_latency_target_seconds,slo_objective,slo_error_budget_remaining,slo_burn_rate,trace_requests_total,trace_spans_total

# Graceful drain.
kill -TERM "$DPID"
wait "$DPID" || {
    echo "trace-smoke: daemon exited non-zero after SIGTERM" >&2
    cat "$DIR/cagmresd.log" >&2
    exit 1
}
trap - EXIT
echo "trace-smoke: ok (trace id round-tripped, spans lint, SLO families present)"
