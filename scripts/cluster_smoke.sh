#!/bin/sh
# cluster_smoke.sh — end-to-end smoke test of the cluster tier:
# start cagmres-router with 3 in-process backends, drive it with the
# load generator's cluster mode (shard spread + aggregated healthz),
# kill one node mid-run via the admin surface and check the cluster
# health degrades while a solve pinned to the dead node's shard still
# completes on a survivor, revive the node and check health recovers,
# then shut the router down gracefully with SIGTERM.
#
# Usage: scripts/cluster_smoke.sh [workdir]   (default: $TMPDIR/cagmres-cluster-smoke)
set -eu

GO="${GO:-go}"
DIR="${1:-${TMPDIR:-/tmp}/cagmres-cluster-smoke}"
mkdir -p "$DIR"
rm -f "$DIR/router.port" "$DIR/router.log"

"$GO" build -o "$DIR/cagmres-router" ./cmd/cagmres-router
"$GO" build -o "$DIR/loadgen" ./cmd/loadgen
"$GO" build -o "$DIR/chaos" ./cmd/chaos

"$DIR/cagmres-router" -addr 127.0.0.1:0 -local 3 -devices 2 \
    -portfile "$DIR/router.port" > "$DIR/router.log" 2>&1 &
RPID=$!
trap 'kill "$RPID" 2>/dev/null || true' EXIT

i=0
while [ ! -s "$DIR/router.port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "cluster-smoke: router never wrote its port file" >&2
        cat "$DIR/router.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="$(cat "$DIR/router.port")"
echo "cluster-smoke: cagmres-router on $ADDR"

get()  { curl -fsS "http://$ADDR$1"; }
post() { curl -fsS -X POST ${2:+-d "$2"} "http://$ADDR$1"; }
SOLVE='{"matrix":{"name":"laplace3d","scale":1e-5},"m":20,"s":4,"tol":1e-6,"wait":true}'

# Phase 1: closed-loop cluster load — shards must spread and the
# aggregated healthz must come back fully healthy.
"$DIR/loadgen" -mode cluster -portfile "$DIR/router.port" \
    -clients 4 -requests 2 -matrix laplace3d -scale 1e-5 -m 20 -s 4 -tol 1e-6

# Phase 2: learn which backend owns the smoke shard, then kill it.
OWNER="$(post /solve "$SOLVE" | sed -n 's/.*"backend":"\([^"]*\)".*/\1/p')"
if [ -z "$OWNER" ]; then
    echo "cluster-smoke: could not learn the shard owner" >&2
    exit 1
fi
echo "cluster-smoke: shard owner is $OWNER; killing it"
post "/admin/kill/$OWNER" > /dev/null

HEALTH="$(get /healthz)"
echo "$HEALTH" | grep -q '"degraded":true' || {
    echo "cluster-smoke: healthz not degraded after node kill: $HEALTH" >&2
    exit 1
}
echo "$HEALTH" | grep -q '"ok":true' || {
    echo "cluster-smoke: cluster lost availability with 2 survivors: $HEALTH" >&2
    exit 1
}

# Phase 3: a solve for the dead node's shard must complete on a
# survivor. The kill tripped the dead node's circuit breaker, so the
# router skips it without spending a forward: exactly one hop, and the
# breaker shows open in the aggregated healthz.
OUT="$(post /solve "$SOLVE")"
echo "$OUT" | grep -q '"state":"done"' || {
    echo "cluster-smoke: solve did not complete after node death: $OUT" >&2
    exit 1
}
echo "$OUT" | grep -q "\"backend\":\"$OWNER\"" && {
    echo "cluster-smoke: solve landed on the dead node: $OUT" >&2
    exit 1
}
echo "$OUT" | grep -q '"hops":1' || {
    echo "cluster-smoke: breaker skip should cost no hop: $OUT" >&2
    exit 1
}
echo "$HEALTH" | grep -q '"breaker":"open"' || {
    echo "cluster-smoke: killed node's breaker not open in healthz: $HEALTH" >&2
    exit 1
}
echo "cluster-smoke: solve re-routed off dead node $OWNER (breaker open, no wasted forward)"

# Phase 4: revive; the aggregated health must recover.
post "/admin/revive/$OWNER" > /dev/null
HEALTH="$(get /healthz)"
echo "$HEALTH" | grep -q '"degraded":false' || {
    echo "cluster-smoke: healthz still degraded after revive: $HEALTH" >&2
    exit 1
}
echo "cluster-smoke: $OWNER revived, cluster healthy"

# Phase 5: the chaos harness's cluster layer — whole-node death
# mid-solve with a bit-identical replay.
"$DIR/chaos" -cluster -nodes 3 -devices 2 -scale 1e-5 -m 20 -s 4 -tol 1e-6

# Graceful drain: SIGTERM must produce a zero exit.
kill -TERM "$RPID"
wait "$RPID" || {
    echo "cluster-smoke: router exited non-zero after SIGTERM" >&2
    cat "$DIR/router.log" >&2
    exit 1
}
trap - EXIT
grep -q "drained" "$DIR/router.log" || {
    echo "cluster-smoke: router log missing drain confirmation" >&2
    cat "$DIR/router.log" >&2
    exit 1
}
echo "cluster-smoke: ok (node death survived, graceful drain confirmed)"
