package cagmres

import (
	"bytes"
	"testing"
)

func TestPublicAPISolve(t *testing.T) {
	ctx := NewContext(2)
	a := Laplace2D(20, 20, 0.3)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	p, err := NewProblem(ctx, a, b, KWay, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CAGMRES(p, Options{M: 30, S: 6, Tol: 1e-6, Ortho: "CholQR"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence: %v", res.RelRes)
	}
	if rn := ResidualNorm(a, b, res.X); rn > 1e-3 {
		t.Fatalf("true residual %v", rn)
	}
}

func TestPublicAPIGMRES(t *testing.T) {
	ctx := NewContext(1)
	a := Laplace3D(8, 8, 8, 0.2)
	b := make([]float64, a.Rows)
	b[0] = 1
	p, err := NewProblem(ctx, a, b, Natural, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GMRES(p, Options{M: 25, Tol: 1e-8, Ortho: "MGS"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("GMRES did not converge")
	}
	// The ledger is exposed through the public API.
	if res.Stats.Phase("spmv").Rounds == 0 {
		t.Fatal("ledger empty")
	}
}

func TestPublicAPIMatrixRoundTrip(t *testing.T) {
	a := FromCoords(2, 2, []Coord{{Row: 0, Col: 0, Val: 2}, {Row: 1, Col: 1, Val: 3}, {Row: 0, Col: 1, Val: -1}})
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.At(0, 1) != -1 {
		t.Fatal("round trip lost entries")
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	for _, name := range []string{"cant", "G3_circuit", "dielFilterV2real", "nlpkkt120"} {
		a, err := GenerateMatrix(name, 0.002)
		if err != nil {
			t.Fatal(err)
		}
		if a.Rows == 0 || a.NNZ() == 0 {
			t.Fatalf("%s: empty matrix", name)
		}
	}
	if _, err := GenerateMatrix("nope", 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestPublicAPICustomModel(t *testing.T) {
	m := M2090Model()
	m.Latency *= 10 // a node with dreadful PCIe
	ctx := NewContextWithModel(3, m)
	a := Laplace2D(12, 12, 0)
	b := make([]float64, a.Rows)
	b[0] = 1
	p, err := NewProblem(ctx, a, b, Natural, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GMRES(p, Options{M: 10, Tol: 1e-6}); err != nil {
		t.Fatal(err)
	}
}
