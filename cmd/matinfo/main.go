// Command matinfo inspects a sparse matrix the way Section IV of the
// paper does: bandwidth under the natural and RCM orderings, partition
// quality (edge cut, balance) of the k-way partitioner, and the matrix
// powers kernel's surface-to-volume ratio and communication volume over a
// sweep of s — the per-matrix numbers behind Figures 6 and 7.
//
// Example:
//
//	matinfo -matrix cant -scale 0.05 -devices 3 -smax 10
package main

import (
	"flag"
	"fmt"
	"os"

	"cagmres/internal/dist"
	"cagmres/internal/gpu"
	"cagmres/internal/graph"
	"cagmres/internal/matgen"
	"cagmres/internal/sparse"
)

func main() {
	matrix := flag.String("matrix", "cant", "built-in matrix: cant, G3_circuit, dielFilterV2real, nlpkkt120")
	file := flag.String("file", "", "MatrixMarket file (overrides -matrix)")
	scale := flag.Float64("scale", 0.02, "built-in matrix scale")
	devices := flag.Int("devices", 3, "device count for partition analysis")
	smax := flag.Int("smax", 10, "largest MPK depth to analyze")
	flag.Parse()

	var a *sparse.CSR
	var name string
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		var rerr error
		a, rerr = sparse.ReadMatrixMarket(f)
		f.Close()
		if rerr != nil {
			fatal(rerr)
		}
		name = *file
	} else {
		m, err := matgen.ByName(*matrix, *scale)
		if err != nil {
			fatal(err)
		}
		a, name = m.A, m.Name
	}

	fmt.Printf("matrix %s: n=%d nnz=%d (%.1f per row)\n", name, a.Rows, a.NNZ(),
		float64(a.NNZ())/float64(a.Rows))

	g := graph.FromMatrix(a)
	fmt.Printf("graph: %d edges, natural bandwidth %d\n", g.NumEdges(), graph.Bandwidth(g))
	rcm := graph.RCM(g)
	fmt.Printf("RCM bandwidth: %d\n", graph.PermutedBandwidth(g, rcm))

	part := graph.KWay(g, *devices, 1)
	fmt.Printf("k-way partition (%d parts): edge cut %d, imbalance %.3f, sizes %v\n",
		*devices, graph.EdgeCut(g, part), part.Imbalance(), part.Sizes())

	ctx := gpu.NewContext(*devices, gpu.M2090())
	for _, ord := range []string{"NAT", "RCM", "KWY"} {
		work, layout := applyOrdering(a, ord, *devices)
		fmt.Printf("\nordering %s — MPK overhead sweep:\n", ord)
		fmt.Printf("%4s %14s %14s %14s %14s\n", "s", "max surf/vol", "halo elems", "gather", "scatter")
		for s := 1; s <= *smax; s++ {
			dm := dist.Distribute(ctx, work, layout, s)
			an := dist.Analyze(dm)
			halo := 0
			for _, h := range an.HaloSize {
				if h > halo {
					halo = h
				}
			}
			fmt.Printf("%4d %14.4f %14d %14d %14d\n",
				s, an.MaxSurfaceToVolume(), halo, an.GatherVolume, an.ScatterVolume)
		}
	}
}

func applyOrdering(a *sparse.CSR, name string, ng int) (*sparse.CSR, *dist.Layout) {
	switch name {
	case "NAT":
		return a, dist.Uniform(a.Rows, ng)
	case "RCM":
		g := graph.FromMatrix(a)
		return a.Permute(graph.RCM(g)), dist.Uniform(a.Rows, ng)
	default: // KWY
		g := graph.FromMatrix(a)
		part := graph.KWay(g, ng, 1)
		perm, bounds := part.Order()
		return a.Permute(perm), dist.NewLayout(a.Rows, bounds)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "matinfo:", err)
	os.Exit(1)
}
