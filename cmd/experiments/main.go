// Command experiments regenerates the tables and figures of the paper's
// evaluation section on the simulated multi-GPU runtime.
//
// Usage:
//
//	experiments [flags]
//
//	-fig string     which figure to run: 3, 6, 7, 8, 10, 11, 13, 14, 15,
//	                overlap, topology, cluster, overload, precision,
//	                ablation or "all" (default "all")
//	-scale float    matrix scale relative to the published sizes
//	                (default 0.02; 1.0 = paper-sized, slow)
//	-devices int    maximum simulated GPU count (default 3)
//	-restarts int   restart-loop cap per solve (default 40)
//	-measured       time the Figure 11(a,b) host kernels with the wall
//	                clock (warmup + best-of-5) instead of the
//	                deterministic cost model
//	-traceout file  dump a Chrome trace_event JSON of every simulated
//	                context (open in chrome://tracing or Perfetto)
//	-metrics file   write Prometheus text-format metrics aggregated over
//	                every simulated context
//	-serve addr     serve /metrics, /metrics.json, /trace.json and
//	                /debug/pprof; starts before the figures (so -measured
//	                runs can be profiled live) and blocks after them
//	-benchjson file write the overlapped-execution study (modeled sync vs
//	                stream schedule) plus a host GEMM wall-clock comparison
//	                as a JSON benchmark snapshot
//	-overlap        arm the asynchronous stream engine in the overlap
//	                study (default true); -overlap=off is the escape
//	                hatch that degenerates it to the barrier schedule
//	-overlapcheck   regression gate: exit 1 unless the stream schedule
//	                strictly beats the synchronous schedule on the full
//	                device count for every s in the overlap study
//	-profile name   machine profile for the figure drivers (m2090,
//	                a100-pcie, h100-nvlink); the classic figures were
//	                calibrated against m2090, so under another profile
//	                they answer "this figure, on that box"
//	-topology kind  override the profile's interconnect (host-hub,
//	                pcie-switch, nvlink-ring, all-to-all)
//	-topologyjson f write the interconnect-topology study (deterministic)
//	                as a JSON benchmark snapshot
//	-clusterjson f  write the multi-node cluster scaling study
//	                (deterministic) as a JSON benchmark snapshot
//	-overloadjson f write the overload-containment study (deterministic)
//	                as a JSON benchmark snapshot
//	-precisionjson f write the mixed-precision study (deterministic) as a
//	                JSON benchmark snapshot
//	-precision mode run every CA-GMRES arm under this precision mode
//	                (fp64, mixed, adaptive); the classic figures were
//	                calibrated at fp64, so a narrow mode answers "this
//	                figure, at that width"
//	-standingjson f write a rerun of the standing modeled studies
//	                (overlap + topology, deterministic) as one snapshot
//
// By default every figure is a pure function of the calibrated cost
// model: rerunning produces byte-identical numbers on any machine. Only
// -measured touches the wall clock.
//
// Absolute times come from the calibrated M2090/PCIe-2 cost model and are
// not expected to match the authors' testbed; the shapes (who wins, by
// what factor, where the crossovers fall) are the reproduction targets.
// See EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"cagmres/internal/bench"
	"cagmres/internal/core"
	"cagmres/internal/gpu"
	"cagmres/internal/measure"
	"cagmres/internal/obs"
	"cagmres/internal/profile"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (3,6,7,8,10,11,13,14,15,overlap,topology,cluster,overload,precision,ablation,all)")
	scale := flag.Float64("scale", 0.02, "matrix scale relative to published sizes")
	devices := flag.Int("devices", 3, "maximum simulated GPU count")
	restarts := flag.Int("restarts", 40, "restart cap per solve")
	csvDir := flag.String("csv", "", "also write each figure's rows as CSV files into this directory")
	measured := flag.Bool("measured", false, "time the Figure 11(a,b) host kernels with the wall clock (warmup + best-of-5) instead of the deterministic cost model")
	traceout := flag.String("traceout", "", "write a Chrome trace_event JSON of every simulated context to this file (open in chrome://tracing or Perfetto)")
	traceEvents := flag.Int("trace-events", bench.DefaultTraceEvents, "per-context event capacity for -traceout")
	metrics := flag.String("metrics", "", "write Prometheus text-format metrics aggregated over every simulated context to this file")
	serve := flag.String("serve", "", "serve /metrics, /trace.json and /debug/pprof on this address; starts before the figures run (profile -measured live) and blocks after them")
	benchJSON := flag.String("benchjson", "", "write the overlap study and host GEMM comparison as a JSON benchmark snapshot to this file")
	profName := flag.String("profile", "", "machine profile for the figure drivers (m2090, a100-pcie, h100-nvlink); empty keeps the paper's m2090")
	topoName := flag.String("topology", "", "override the profile's interconnect topology (host-hub, pcie-switch, nvlink-ring, all-to-all)")
	topoJSON := flag.String("topologyjson", "", "write the interconnect-topology study (deterministic) as a JSON benchmark snapshot to this file")
	clusterJSON := flag.String("clusterjson", "", "write the multi-node cluster scaling study (deterministic) as a JSON benchmark snapshot to this file")
	overloadJSON := flag.String("overloadjson", "", "write the overload-containment study (deterministic) as a JSON benchmark snapshot to this file")
	precisionJSON := flag.String("precisionjson", "", "write the mixed-precision study (deterministic) as a JSON benchmark snapshot to this file")
	precisionMode := flag.String("precision", "", "run every CA-GMRES arm under this precision mode (fp64, mixed, adaptive); empty keeps the calibrated full-double pipeline")
	standingJSON := flag.String("standingjson", "", "write a rerun of the standing modeled studies (overlap + topology, deterministic) as a JSON benchmark snapshot to this file")
	overlap := onOffFlag(true)
	flag.Var(&overlap, "overlap", "arm the asynchronous stream engine in the overlap study; -overlap=off degenerates it to the barrier schedule")
	overlapCheck := flag.Bool("overlapcheck", false, "exit 1 unless the stream schedule strictly beats the synchronous schedule on the full device count")
	flag.Parse()

	prof, err := profile.FromFlags(*profName, *topoName)
	if err != nil {
		fatalf("%v", err)
	}
	if _, err := core.NormalizePrecision(*precisionMode); err != nil {
		fatalf("%v", err)
	}
	cfg := bench.Config{
		Scale:       *scale,
		MaxDevices:  *devices,
		MaxRestarts: *restarts,
		Out:         os.Stdout,
		Overlap:     bool(overlap),
		Profile:     prof,
		Precision:   *precisionMode,
	}
	if prof != nil {
		cfg.Model = prof.Model
		fmt.Printf("machine profile: %s (topology %s)\n", prof.Name, prof.Topo.Kind)
	}
	if *measured {
		cfg.Timer = &measure.WallTimer{Warmup: 1, Reps: 5, Select: measure.SelectMin}
	}
	if *traceout != "" || *metrics != "" || *serve != "" {
		cfg.Trace = bench.NewTraceCollector(*traceEvents)
	}

	var reg *obs.Registry
	if *metrics != "" || *serve != "" {
		reg = obs.NewRegistry()
		// Every timed host kernel also lands in the registry's histograms.
		if cfg.Timer == nil {
			cfg.Timer = measure.NewModelTimer(gpu.M2090())
		}
		cfg.Timer = measure.Instrument(cfg.Timer, reg)
	}
	if *serve != "" {
		// Start before the figures so /debug/pprof can profile a live
		// -measured run; /metrics fills in as contexts are collected below.
		_, addr, err := obs.Serve(*serve, obs.Handler(reg, cfg.Trace.Traces))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serving /metrics, /metrics.json, /trace.json, /debug/pprof on http://%s\n", addr)
	}

	emit := func(name string, rows any) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, name+".csv")
		if err := bench.WriteCSV(path, rows); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", path, err)
			return
		}
		fmt.Printf("wrote %s\n", path)
	}
	drivers := []struct {
		name string
		run  func()
	}{
		{"3", func() { emit("fig3", bench.Fig3(cfg)) }},
		{"6", func() { emit("fig6", bench.Fig6(cfg).Rows) }},
		{"7", func() { emit("fig7", bench.Fig7(cfg).Rows) }},
		{"8", func() { emit("fig8", bench.Fig8(cfg).Rows) }},
		{"10", func() { emit("fig10", bench.Fig10(cfg)) }},
		{"11", func() {
			emit("fig11ab", bench.Fig11ab(cfg))
			emit("fig11c", bench.Fig11c(cfg))
		}},
		{"13", func() {
			r := bench.Fig13(cfg)
			emit("fig13_s20", r.Rows20)
			emit("fig13_s30", r.Rows30)
			emit("fig13_monomial", r.RowsMonomial)
		}},
		{"14", func() { emit("fig14", bench.Fig14(cfg)) }},
		{"15", func() { emit("fig15", bench.Fig15(cfg)) }},
		{"overlap", func() {
			rows := bench.FigOverlap(cfg)
			emit("figoverlap", rows)
			if *overlapCheck {
				if err := checkOverlap(rows, cfg.MaxDevices); err != nil {
					fatalf("%v", err)
				}
				fmt.Println("overlap regression gate: stream schedule strictly beats synchronous")
			}
		}},
		{"topology", func() { emit("figtopology", bench.FigTopology(cfg)) }},
		{"cluster", func() { emit("figcluster", bench.FigCluster(cfg)) }},
		{"overload", func() { emit("figoverload", bench.FigOverload(cfg)) }},
		{"precision", func() { emit("figprecision", bench.FigPrecision(cfg)) }},
		{"ablation", func() {
			emit("ablation_latency", bench.AblationLatency(cfg))
			emit("ablation_basis", bench.AblationBasis(cfg))
			emit("ablation_precision", bench.AblationPrecision(cfg))
			emit("ablation_fusedcgs", bench.AblationFusedCGS(cfg))
			emit("ablation_adaptive", bench.AblationAdaptive(cfg))
		}},
	}

	if *fig == "all" && !overlap {
		// The escape hatch applies to the overlap study itself; nothing
		// else consumes the engine, so "all" stays meaningful either way.
		fmt.Println("note: -overlap=off, the overlap study runs both arms synchronously")
	}
	want := strings.Split(*fig, ",")
	matched := false
	for _, d := range drivers {
		if *fig != "all" && !contains(want, d.name) {
			continue
		}
		matched = true
		start := time.Now()
		fmt.Printf("==== Figure %s (scale %g, %d devices) ====\n", d.name, cfg.Scale, cfg.MaxDevices)
		if cfg.Trace != nil {
			cfg.Trace.SetLabel("fig" + d.name)
		}
		d.run()
		fmt.Printf("---- %.1fs ----\n\n", time.Since(start).Seconds())
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "experiments: unknown -fig %q (want 3,6,7,8,10,11,13,14,15,overlap,topology,cluster,overload,precision,ablation or all)\n", *fig)
		os.Exit(2)
	}
	if *traceout != "" {
		f, err := os.Create(*traceout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := cfg.Trace.WriteChrome(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "experiments: writing trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d traced contexts)\n", *traceout, len(cfg.Trace.Traces()))
	}

	if reg != nil {
		// Fold every simulated context's ledger into the registry, then the
		// retained event rings into the size/duration histograms.
		for _, c := range cfg.Trace.Contexts() {
			obs.CollectStats(reg, c.Stats())
			obs.ObserveTrace(reg, c.Stats().Trace())
		}
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fatalf("%v", err)
		}
		err = reg.WritePrometheus(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatalf("writing %s: %v", *metrics, err)
		}
		fmt.Printf("wrote %s\n", *metrics)
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *scale, *devices); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	if *topoJSON != "" {
		if err := writeTopologyJSON(*topoJSON, *scale, *devices); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *topoJSON)
	}
	if *clusterJSON != "" {
		if err := writeClusterJSON(*clusterJSON, *scale); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *clusterJSON)
	}
	if *overloadJSON != "" {
		if err := writeOverloadJSON(*overloadJSON, *scale); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *overloadJSON)
	}
	if *precisionJSON != "" {
		if err := writePrecisionJSON(*precisionJSON, *scale); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *precisionJSON)
	}
	if *standingJSON != "" {
		if err := writeStandingJSON(*standingJSON, *scale, *devices); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *standingJSON)
	}

	if *serve != "" {
		fmt.Println("figures done; still serving (ctrl-C to stop)")
		select {}
	}
}

// onOffFlag is a boolean flag that also accepts on/off, so the
// documented -overlap=off escape hatch reads naturally alongside the
// standard boolean spellings.
type onOffFlag bool

func (f *onOffFlag) String() string {
	if f == nil || bool(*f) {
		return "on"
	}
	return "off"
}

func (f *onOffFlag) Set(s string) error {
	switch strings.ToLower(s) {
	case "on":
		*f = true
	case "off":
		*f = false
	default:
		v, err := strconv.ParseBool(s)
		if err != nil {
			return fmt.Errorf("want on, off, or a boolean")
		}
		*f = onOffFlag(v)
	}
	return nil
}

// IsBoolFlag lets a bare -overlap mean -overlap=on.
func (f *onOffFlag) IsBoolFlag() bool { return true }

// checkOverlap is the regression gate behind -overlapcheck: every row
// must satisfy overlap <= sync, and the full-device rows must win
// strictly for every basis depth.
func checkOverlap(rows []bench.OverlapRow, maxDevices int) error {
	for _, r := range rows {
		if r.OverlapSec > r.SyncSec {
			return fmt.Errorf("overlap regression: s=%d ng=%d stream %.6g s exceeds synchronous %.6g s",
				r.S, r.Devices, r.OverlapSec, r.SyncSec)
		}
		if r.Devices == maxDevices && r.OverlapSec >= r.SyncSec {
			return fmt.Errorf("overlap regression: s=%d ng=%d no strict win (stream %.6g s, synchronous %.6g s)",
				r.S, r.Devices, r.OverlapSec, r.SyncSec)
		}
	}
	return nil
}

// writeBenchJSON writes the PR's benchmark snapshot: the overlapped vs
// synchronous modeled solve times (deterministic — a pure function of
// the cost model) plus a wall-clock comparison of the column-sweep and
// cache-tiled host GEMM kernels (machine-dependent by nature; warmup +
// best-of-9).
func writeBenchJSON(path string, scale float64, devices int) error {
	cfg := bench.Config{Scale: scale, MaxDevices: devices, Overlap: true}
	cfg.Defaults()
	wall := &measure.WallTimer{Warmup: 2, Reps: 9, Select: measure.SelectMin}
	snap := struct {
		Name     string              `json:"name"`
		Scale    float64             `json:"scale"`
		Devices  int                 `json:"devices"`
		Overlap  []bench.OverlapRow  `json:"overlap"`
		HostGemm []bench.HostGemmRow `json:"host_gemm_wall"`
	}{
		Name:     "overlap-engine",
		Scale:    cfg.Scale,
		Devices:  cfg.MaxDevices,
		Overlap:  bench.FigOverlap(cfg),
		HostGemm: bench.HostGemmStudy(wall, 256),
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeTopologyJSON writes the interconnect-topology study as a JSON
// benchmark snapshot. The study is a pure function of the cost model —
// regenerating on any machine produces byte-identical numbers.
func writeTopologyJSON(path string, scale float64, devices int) error {
	cfg := bench.Config{Scale: scale, MaxDevices: devices}
	snap := struct {
		Name     string              `json:"name"`
		Scale    float64             `json:"scale"`
		Devices  int                 `json:"devices"`
		Topology []bench.TopologyRow `json:"topology"`
	}{
		Name:     "topology-study",
		Scale:    scale,
		Devices:  devices,
		Topology: bench.FigTopology(cfg),
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeClusterJSON writes the multi-node scaling study as a JSON
// benchmark snapshot. The study is a pure function of the cost model —
// regenerating on any machine produces byte-identical numbers.
func writeClusterJSON(path string, scale float64) error {
	cfg := bench.Config{Scale: scale}
	snap := struct {
		Name    string             `json:"name"`
		Scale   float64            `json:"scale"`
		Cluster []bench.ClusterRow `json:"cluster"`
	}{
		Name:    "cluster-study",
		Scale:   scale,
		Cluster: bench.FigCluster(cfg),
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeOverloadJSON writes the overload-containment study as a JSON
// benchmark snapshot. The study is a pure function of the cost model —
// regenerating on any machine produces byte-identical numbers.
func writeOverloadJSON(path string, scale float64) error {
	cfg := bench.Config{Scale: scale}
	snap := struct {
		Name     string              `json:"name"`
		Scale    float64             `json:"scale"`
		Overload []bench.OverloadRow `json:"overload"`
	}{
		Name:     "overload-study",
		Scale:    scale,
		Overload: bench.FigOverload(cfg),
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writePrecisionJSON writes the mixed-precision study as a JSON
// benchmark snapshot. The study is a pure function of the cost model —
// regenerating on any machine produces byte-identical numbers.
func writePrecisionJSON(path string, scale float64) error {
	cfg := bench.Config{Scale: scale, MaxRestarts: 400}
	snap := struct {
		Name      string               `json:"name"`
		Scale     float64              `json:"scale"`
		Precision []bench.PrecisionRow `json:"precision"`
	}{
		Name:      "precision-study",
		Scale:     scale,
		Precision: bench.FigPrecision(cfg),
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeStandingJSON reruns the standing modeled studies — the overlap
// engine and the interconnect-topology sweep — into one deterministic
// snapshot, so the perf trajectory stays dense across PRs that change
// the serving layer rather than the solver arithmetic.
func writeStandingJSON(path string, scale float64, devices int) error {
	cfg := bench.Config{Scale: scale, MaxDevices: devices, Overlap: true}
	snap := struct {
		Name     string              `json:"name"`
		Scale    float64             `json:"scale"`
		Devices  int                 `json:"devices"`
		Overlap  []bench.OverlapRow  `json:"overlap"`
		Topology []bench.TopologyRow `json:"topology"`
	}{
		Name:     "standing-figures-rerun",
		Scale:    scale,
		Devices:  devices,
		Overlap:  bench.FigOverlap(cfg),
		Topology: bench.FigTopology(bench.Config{Scale: scale, MaxDevices: devices}),
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
