// Command cagmres solves a sparse linear system A x = b with GMRES or
// CA-GMRES on the simulated multi-GPU runtime and prints the convergence
// history and the per-phase communication/compute ledger.
//
// The matrix comes either from one of the built-in paper analogues
// (-matrix cant|G3_circuit|dielFilterV2real|nlpkkt120, sized by -scale)
// or from a MatrixMarket file (-file path). The right-hand side is the
// all-ones vector unless -rhs random is given.
//
// Examples:
//
//	cagmres -matrix G3_circuit -scale 0.02 -solver ca -s 10 -m 30 -ortho CholQR -devices 3
//	cagmres -file matrix.mtx -solver gmres -m 60 -ortho MGS
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"cagmres/internal/core"
	"cagmres/internal/gpu"
	"cagmres/internal/matgen"
	"cagmres/internal/obs"
	"cagmres/internal/profile"
	"cagmres/internal/sparse"
)

func main() {
	matrix := flag.String("matrix", "G3_circuit", "built-in matrix: cant, G3_circuit, dielFilterV2real, nlpkkt120")
	file := flag.String("file", "", "MatrixMarket file (overrides -matrix)")
	scale := flag.Float64("scale", 0.02, "built-in matrix scale (1.0 = published size)")
	solver := flag.String("solver", "ca", "solver: gmres or ca")
	m := flag.Int("m", 30, "restart length")
	s := flag.Int("s", 10, "CA-GMRES step size")
	orth := flag.String("ortho", "CholQR", "orthogonalization: GMRES takes MGS|CGS; CA takes MGS|CGS|CholQR|SVQR|CAQR (2x prefix allowed)")
	borth := flag.String("borth", "CGS", "CA-GMRES block orthogonalization: CGS or MGS")
	basis := flag.String("basis", "newton", "CA-GMRES basis: newton or monomial")
	ordering := flag.String("ordering", "kway", "matrix ordering: natural, rcm, kway, hypergraph")
	devices := flag.Int("devices", 3, "simulated GPU count")
	tol := flag.Float64("tol", 1e-4, "relative residual tolerance")
	maxRestarts := flag.Int("max-restarts", 500, "restart cap")
	rhs := flag.String("rhs", "ones", "right-hand side: ones or random")
	balance := flag.Bool("balance", true, "balance the matrix before solving")
	fallback := flag.Bool("fallback", true, "on an ill-conditioned basis window, retry with 2x reorthogonalization and then 2xCAQR")
	jacobi := flag.Bool("jacobi", false, "right-precondition with the inverse diagonal (composes with MPK)")
	adaptive := flag.Bool("adaptive-s", false, "shrink the CA step size when a basis window goes rank deficient")
	precision := flag.String("precision", "", "CA-GMRES precision mode: fp64 (default), mixed (fp32 basis + FP64 refinement), or adaptive (tighten-only schedule)")
	trace := flag.Int("trace", 0, "print the last N ledger events (communication rounds and kernels)")
	traceout := flag.String("traceout", "", "write the solve's ledger events as a Chrome trace_event JSON to this file")
	telemetry := flag.String("telemetry", "", "write the solve's convergence telemetry as JSON lines to this file")
	metrics := flag.String("metrics", "", "write Prometheus text-format metrics (per-phase ledger, histograms, convergence) to this file")
	serve := flag.String("serve", "", "after solving, serve /metrics, /metrics.json, /trace.json and /debug/pprof on this address and block (e.g. :9090)")
	profName := flag.String("profile", "", "machine profile (m2090, a100-pcie, h100-nvlink); empty keeps the paper's m2090")
	topoName := flag.String("topology", "", "override the profile's interconnect topology (host-hub, pcie-switch, nvlink-ring, all-to-all)")
	traceparent := flag.String("traceparent", "", "adopt this W3C traceparent as the solve's trace context (a fresh trace id is minted when empty or invalid)")
	spansout := flag.String("spansout", "", "write the solve's request-trace span stream (root + solver phases) as JSON lines to this file")
	flag.Parse()

	a, name, err := loadMatrix(*file, *matrix, *scale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("matrix %s: n=%d, nnz=%d (%.1f per row)\n",
		name, a.Rows, a.NNZ(), float64(a.NNZ())/float64(a.Rows))

	b := make([]float64, a.Rows)
	switch *rhs {
	case "ones":
		for i := range b {
			b[i] = 1
		}
	case "random":
		rng := rand.New(rand.NewSource(1))
		for i := range b {
			b[i] = rng.NormFloat64()
		}
	default:
		fatal(fmt.Errorf("unknown -rhs %q", *rhs))
	}

	var ord core.Ordering
	switch *ordering {
	case "natural":
		ord = core.Natural
	case "rcm":
		ord = core.RCM
	case "kway":
		ord = core.KWay
	case "hypergraph":
		ord = core.Hypergraph
	default:
		fatal(fmt.Errorf("unknown -ordering %q", *ordering))
	}

	prof, err := profile.FromFlags(*profName, *topoName)
	if err != nil {
		fatal(err)
	}
	newCtx := func() *gpu.Context {
		if prof != nil {
			return gpu.NewContextWithProfile(*devices, *prof)
		}
		return gpu.NewContext(*devices, gpu.M2090())
	}
	ctx := newCtx()
	traceCap := *trace
	// The metrics histograms and the /trace.json endpoint are built from
	// the event ring, so -metrics and -serve imply tracing.
	if (*traceout != "" || *metrics != "" || *serve != "") && traceCap < 1<<14 {
		traceCap = 1 << 14
	}
	if traceCap > 0 {
		ctx.Stats().EnableTrace(traceCap)
	}
	p, err := core.NewProblem(ctx, a, b, ord, *balance)
	if err != nil {
		fatal(err)
	}
	if *jacobi {
		p.ApplyJacobi()
	}
	if _, err := core.NormalizePrecision(*precision); err != nil {
		fatal(err)
	}
	opts := core.Options{
		M: *m, S: *s, Tol: *tol, MaxRestarts: *maxRestarts,
		Ortho: *orth, BOrth: *borth, Basis: *basis, AdaptiveS: *adaptive,
		Precision: *precision,
	}

	// Observability: one registry for the whole run; telemetry buffers in
	// memory so a fallback retry starts the stream (and its monotone
	// modeled clock) over instead of appending a second solve's records.
	var reg *obs.Registry
	if *telemetry != "" || *metrics != "" || *serve != "" {
		reg = obs.NewRegistry()
	}
	// Request tracing: the CLI mints (or adopts, via -traceparent) one root
	// span for the whole solve; every fallback retry hangs its phase spans
	// under the same root as a new attempt.
	var tracer *obs.Tracer
	var jt *obs.JobTrace
	if *spansout != "" || *traceparent != "" {
		tracer = obs.NewTracer(reg)
		root := tracer.Root("cli solve", *traceparent)
		root.SetAttr("solver", *solver)
		root.SetAttr("matrix", name)
		jt = obs.NewJobTrace(tracer, root)
	}
	attempt := 0
	var telBuf bytes.Buffer
	attachTelemetry := func() {
		if reg == nil && jt == nil {
			return
		}
		telBuf.Reset()
		var next obs.Sink
		if *telemetry != "" {
			next = obs.NewJSONLSink(&telBuf)
		}
		if reg != nil {
			next = reg.ConvergenceSink(next)
		}
		if jt != nil {
			attempt++
			next = jt.SolverSink(tracer, jt.Root(), "cli", attempt, next)
		}
		opts.Telemetry = next
	}
	attachTelemetry()

	start := time.Now()
	var res *core.Result
	switch *solver {
	case "gmres":
		if opts.Ortho != "MGS" && opts.Ortho != "CGS" {
			opts.Ortho = "CGS"
		}
		res, err = core.GMRES(p, opts)
	case "ca":
		res, err = core.CAGMRES(p, opts)
		if err != nil && *fallback {
			// Stability ladder mirroring the paper's "2x" rows: the
			// requested strategy reorthogonalized, then the
			// unconditionally stable CAQR.
			for _, next := range []string{"2x" + opts.Ortho, "2xCAQR"} {
				if len(opts.Ortho) > 2 && opts.Ortho[:2] == "2x" && next == "2x"+opts.Ortho {
					continue
				}
				fmt.Printf("note: %s failed (%v); retrying with %s\n", opts.Ortho, err, next)
				opts.Ortho = next
				ctx = newCtx()
				if traceCap > 0 {
					ctx.Stats().EnableTrace(traceCap)
				}
				p, err = core.NewProblem(ctx, a, b, ord, *balance)
				if err != nil {
					break
				}
				if *jacobi {
					p.ApplyJacobi()
				}
				attachTelemetry()
				res, err = core.CAGMRES(p, opts)
				if err == nil {
					break
				}
			}
		}
	default:
		fatal(fmt.Errorf("unknown -solver %q", *solver))
	}
	wall := time.Since(start)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\nconverged: %v  restarts: %d  iterations: %d\n", res.Converged, res.Restarts, res.Iters)
	if rep := res.Precision; rep != nil {
		fmt.Printf("precision: %s (windows fp64/fp32: %d/%d, compressed halos: %d, refinements: %d, final level: %s)\n",
			rep.Mode, rep.WindowsFP64, rep.WindowsFP32, rep.CompressedTransfers, rep.Refinements, rep.FinalLevel)
	}
	fmt.Printf("relative residual (balanced system): %.3e\n", res.RelRes)
	fmt.Printf("true relative residual:              %.3e\n", core.ResidualNorm(a, b, res.X))
	fmt.Printf("wall time: %v   modeled device time: %.3f ms\n", wall, res.Stats.TotalTime()*1e3)
	if res.Restarts > 0 {
		fmt.Printf("modeled time per restart: %.3f ms\n", res.Stats.TotalTime()/float64(res.Restarts)*1e3)
	}
	fmt.Printf("\nper-phase ledger:\n%s", res.Stats.String())
	if res.Stats.TrackedDevices() > 1 {
		fmt.Printf("\nper-device ledger:\n%s", res.Stats.DeviceString())
	}

	if len(res.History) > 0 {
		fmt.Printf("\nresidual history (per restart):\n")
		for i, r := range res.History {
			fmt.Printf("  restart %3d: %.3e\n", i+1, r)
		}
	}

	if *trace > 0 {
		fmt.Printf("\nlast %d ledger events:\n", *trace)
		fmt.Printf("%8s %-8s %-10s %10s %12s\n", "seq", "phase", "kind", "bytes", "time (us)")
		for _, e := range res.Stats.Trace() {
			fmt.Printf("%8d %-8s %-10s %10d %12.2f\n", e.Seq, e.Phase, e.Kind, e.Bytes, e.Time*1e6)
		}
	}

	if *traceout != "" {
		f, err := os.Create(*traceout)
		if err != nil {
			fatal(err)
		}
		err = gpu.WriteChromeTrace(f, []gpu.Trace{res.Stats.TraceOf(*solver + "/" + name)})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *traceout)
	}

	if jt != nil {
		jt.AttachStats(res.Stats)
		jt.SetRootAttr("converged", fmt.Sprintf("%t", res.Converged))
		jt.SetRootAttr("restarts", fmt.Sprintf("%d", res.Restarts))
		jt.FinishRoot(float64(time.Now().UnixNano())/1e9, res.Stats.TotalTime())
		fmt.Printf("\ntraceparent: %s\n", jt.Root().Traceparent())
	}
	if *spansout != "" {
		f, err := os.Create(*spansout)
		if err != nil {
			fatal(err)
		}
		err = jt.WriteSpansJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *spansout)
	}

	if *telemetry != "" {
		if err := os.WriteFile(*telemetry, telBuf.Bytes(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *telemetry)
	}
	if reg != nil {
		obs.CollectStats(reg, res.Stats)
		obs.ObserveTrace(reg, res.Stats.Trace())
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fatal(err)
		}
		err = reg.WritePrometheus(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *metrics)
	}
	if *serve != "" {
		traces := func() []gpu.Trace {
			return []gpu.Trace{res.Stats.TraceOf(*solver + "/" + name)}
		}
		_, addr, err := obs.Serve(*serve, obs.Handler(reg, traces))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serving /metrics, /metrics.json, /trace.json, /debug/pprof on http://%s (ctrl-C to stop)\n", addr)
		select {}
	}
}

func loadMatrix(file, name string, scale float64) (*sparse.CSR, string, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		a, err := sparse.ReadMatrixMarket(f)
		if err != nil {
			return nil, "", err
		}
		return a, file, nil
	}
	m, err := matgen.ByName(name, scale)
	if err != nil {
		return nil, "", err
	}
	return m.A, m.Name, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cagmres:", err)
	os.Exit(1)
}
