// Command cagmres-router fronts a federation of cagmresd backends: it
// shards solve requests across nodes by matrix identity (rendezvous
// hashing, so every router instance agrees without coordination),
// forwards on backend overload or node death with a bounded hop budget,
// and aggregates the per-node health/SLO surfaces into cluster views.
//
// Two membership modes, composable:
//
//	cagmres-router -backends node0=http://h0:8080,node1=http://h1:8080
//	cagmres-router -local 3 -devices 2
//
// -local N boots N full in-process nodes (pool + scheduler + HTTP
// surface each), which is how the smoke tests and the chaos harness
// simulate a cluster in one process; -backends federates real daemons.
//
// POST /admin/kill/{name} simulates whole-node death at the router
// (requests stop reaching the backend); /admin/revive/{name} restores
// it. In-flight jobs on a killed node fail over to the shard's next
// rendezvous candidate, attempts preserved.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cagmres/internal/cluster"
	"cagmres/internal/gpu"
	"cagmres/internal/obs"
	"cagmres/internal/profile"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "listen address (\":0\" picks a free port)")
		portFile = flag.String("portfile", "", "write the bound address to this file once listening")

		backendsFlag = flag.String("backends", "", "comma-separated backend daemons, each name=url (or a bare url, auto-named nodeN)")
		localN       = flag.Int("local", 0, "boot this many in-process backends instead of (or in addition to) -backends")
		maxHops      = flag.Int("max-hops", 3, "forwarding hop budget per solve (candidates tried before rejecting)")
		shardMapPath = flag.String("shard-map", "", "JSON shard-map file: {\"assign\":{key:backend},\"weights\":{backend:w}}")

		poolSize       = flag.Int("pool", 1, "pooled device contexts per -local node")
		devices        = flag.Int("devices", 3, "simulated GPUs per context on -local nodes")
		queueDepth     = flag.Int("queue", 64, "admission queue depth per -local node")
		maxBatch       = flag.Int("batch", 8, "max batched jobs per lease on -local nodes")
		maxJobAttempts = flag.Int("max-job-attempts", 0, "attempt cap per job on -local nodes (0 keeps the sched default)")
		repair         = flag.Bool("repair", false, "repair contexts evicted after device death on -local nodes")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "grace period for -local nodes at shutdown")

		profName       = flag.String("profile", "", "machine profile for -local nodes (m2090, a100-pcie, h100-nvlink); empty keeps the paper's m2090")
		topoName       = flag.String("topology", "", "override the profile's node-local interconnect topology")
		devicesPerNode = flag.Int("devices-per-node", 0, "arm the two-tier interconnect: devices per simulated node (0 keeps flat single-node profiles)")
		fabricName     = flag.String("fabric", "", "inter-node fabric for the two-tier interconnect ("+strings.Join(profile.FabricNames(), ", ")+"); default "+profile.DefaultFabricName)

		chaosSeed = flag.Int64("chaos-seed", 0, "seed for -chaos-kill-node fault plans")
		chaosKill = flag.String("chaos-kill-node", "", "arm whole-node death on a -local node: name@seconds (virtual time) kills every device of that node's contexts, e.g. node0@0.001")
	)
	flag.Parse()
	if err := run(*addr, *portFile, *backendsFlag, *localN, *maxHops, *shardMapPath,
		*poolSize, *devices, *queueDepth, *maxBatch, *maxJobAttempts, *repair, *drainTimeout,
		*profName, *topoName, *devicesPerNode, *fabricName, *chaosSeed, *chaosKill); err != nil {
		fmt.Fprintln(os.Stderr, "cagmres-router:", err)
		os.Exit(1)
	}
}

// parseBackends turns the -backends flag into HTTP backends.
func parseBackends(spec string, startIdx int) ([]*cluster.Backend, error) {
	if spec == "" {
		return nil, nil
	}
	var out []*cluster.Backend
	for i, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, url, ok := strings.Cut(item, "=")
		if !ok {
			name, url = fmt.Sprintf("node%d", startIdx+i), item
		}
		b, err := cluster.NewHTTPBackend(name, url)
		if err != nil {
			return nil, fmt.Errorf("-backends %q: %w", item, err)
		}
		out = append(out, b)
	}
	return out, nil
}

// nodeDeathPlan arms the -chaos-kill-node flag: every device of every
// pooled context on the named node dies at the given virtual time, so
// the node's jobs fail terminally and the router must re-route them.
func nodeDeathPlan(spec string, poolSize, devices int, seed int64) (string, []gpu.FaultPlan, error) {
	if spec == "" {
		return "", nil, nil
	}
	name, at, ok := strings.Cut(spec, "@")
	if !ok || name == "" {
		return "", nil, fmt.Errorf("-chaos-kill-node %q: want name@seconds", spec)
	}
	var t float64
	if _, err := fmt.Sscanf(at, "%g", &t); err != nil || t < 0 {
		return "", nil, fmt.Errorf("-chaos-kill-node %q: bad virtual time %q", spec, at)
	}
	plans := make([]gpu.FaultPlan, poolSize)
	for i := range plans {
		plans[i].Seed = seed + int64(i)
		for d := 0; d < devices; d++ {
			plans[i].Deaths = append(plans[i].Deaths, gpu.DeviceDeath{Device: d, At: t})
		}
	}
	return name, plans, nil
}

func run(addr, portFile, backendsFlag string, localN, maxHops int, shardMapPath string,
	poolSize, devices, queueDepth, maxBatch, maxJobAttempts int, repair bool, drainTimeout time.Duration,
	profName, topoName string, devicesPerNode int, fabricName string, chaosSeed int64, chaosKill string) error {

	prof, err := profile.FromFlags(profName, topoName)
	if err != nil {
		return err
	}
	prof, err = profile.ClusterFromFlags(prof, devicesPerNode, fabricName)
	if err != nil {
		return err
	}

	var shardMap *cluster.ShardMap
	if shardMapPath != "" {
		data, err := os.ReadFile(shardMapPath)
		if err != nil {
			return err
		}
		if shardMap, err = cluster.DecodeShardMap(data); err != nil {
			return err
		}
	}

	remote, err := parseBackends(backendsFlag, localN)
	if err != nil {
		return err
	}
	doomed, plans, err := nodeDeathPlan(chaosKill, poolSize, devices, chaosSeed)
	if err != nil {
		return err
	}

	var nodes []*cluster.LocalNode
	var backends []*cluster.Backend
	for i := 0; i < localN; i++ {
		name := fmt.Sprintf("node%d", i)
		cfg := cluster.LocalNodeConfig{
			Name: name, PoolSize: poolSize, Devices: devices, Profile: prof,
			QueueDepth: queueDepth, MaxBatch: maxBatch,
			MaxJobAttempts: maxJobAttempts, Repair: repair,
		}
		if name == doomed {
			cfg.MaxJobAttempts = 1 // every retry lands on the same dead node
			cfg.FaultPlans = plans
		}
		n := cluster.NewLocalNode(cfg)
		nodes = append(nodes, n)
		backends = append(backends, n.Backend())
	}
	if doomed != "" && localN == 0 {
		return fmt.Errorf("-chaos-kill-node needs -local nodes")
	}
	backends = append(backends, remote...)
	if len(backends) == 0 {
		return fmt.Errorf("no backends: give -backends and/or -local")
	}

	router := cluster.New(cluster.Config{
		Backends: backends, MaxHops: maxHops, ShardMap: shardMap,
	})
	srv, bound, err := obs.Serve(addr, router)
	if err != nil {
		return err
	}
	fmt.Printf("cagmres-router: serving on %s (%d backends: %s; max hops %d)\n",
		bound, len(backends), strings.Join(router.Backends(), ", "), maxHops)
	if localN > 0 {
		fmt.Printf("cagmres-router: %d in-process nodes (pool %d×%d GPUs, profile %s)\n",
			localN, poolSize, devices, nodeProfileName(prof))
	}
	if doomed != "" {
		fmt.Printf("cagmres-router: chaos armed, whole-node death on %s\n", doomed)
	}
	if portFile != "" {
		if err := os.WriteFile(portFile, []byte(bound), 0o644); err != nil {
			return err
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("cagmres-router: %v, draining %d local nodes (timeout %v)\n", got, len(nodes), drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	for _, n := range nodes {
		if err := n.Drain(ctx); err != nil {
			fmt.Printf("cagmres-router: drain %s: %v\n", n.Name, err)
		}
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		_ = srv.Close()
	}
	solves, reroutes, rejects := router.Counts()
	fmt.Printf("cagmres-router: drained; routed=%d reroutes=%d rejects=%d\n", solves, reroutes, rejects)
	return nil
}

// nodeProfileName names the local nodes' profile for the banner.
func nodeProfileName(p *gpu.Profile) string {
	if p == nil {
		return "m2090"
	}
	return p.Name
}
