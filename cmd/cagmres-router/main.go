// Command cagmres-router fronts a federation of cagmresd backends: it
// shards solve requests across nodes by matrix identity (rendezvous
// hashing, so every router instance agrees without coordination),
// forwards on backend overload or node death with a bounded hop budget,
// and aggregates the per-node health/SLO surfaces into cluster views.
//
// Two membership modes, composable:
//
//	cagmres-router -backends node0=http://h0:8080,node1=http://h1:8080
//	cagmres-router -local 3 -devices 2
//
// -local N boots N full in-process nodes (pool + scheduler + HTTP
// surface each), which is how the smoke tests and the chaos harness
// simulate a cluster in one process; -backends federates real daemons.
//
// POST /admin/kill/{name} simulates whole-node death at the router
// (requests stop reaching the backend); /admin/revive/{name} restores
// it. In-flight jobs on a killed node fail over to the shard's next
// rendezvous candidate, attempts preserved.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cagmres/internal/cluster"
	"cagmres/internal/gpu"
	"cagmres/internal/obs"
	"cagmres/internal/profile"
	"cagmres/internal/sched"
)

// brownoutLadder parses the -brownout flag: a comma-separated list of
// minimum admitted priorities, one per brownout level (same grammar as
// cagmresd's flag). Empty input keeps brownout off.
func brownoutLadder(spec string) (*sched.BrownoutConfig, error) {
	if spec == "" {
		return nil, nil
	}
	var ladder []int
	for _, item := range strings.Split(spec, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(item))
		if err != nil {
			return nil, fmt.Errorf("ladder rung %q: %v", item, err)
		}
		ladder = append(ladder, p)
	}
	return &sched.BrownoutConfig{Ladder: ladder}, nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8090", "listen address (\":0\" picks a free port)")
		portFile = flag.String("portfile", "", "write the bound address to this file once listening")

		backendsFlag = flag.String("backends", "", "comma-separated backend daemons, each name=url (or a bare url, auto-named nodeN)")
		localN       = flag.Int("local", 0, "boot this many in-process backends instead of (or in addition to) -backends")
		maxHops      = flag.Int("max-hops", 3, "forwarding hop budget per solve (candidates tried before rejecting)")
		shardMapPath = flag.String("shard-map", "", "JSON shard-map file: {\"assign\":{key:backend},\"weights\":{backend:w}}")

		poolSize       = flag.Int("pool", 1, "pooled device contexts per -local node")
		devices        = flag.Int("devices", 3, "simulated GPUs per context on -local nodes")
		queueDepth     = flag.Int("queue", 64, "admission queue depth per -local node")
		maxBatch       = flag.Int("batch", 8, "max batched jobs per lease on -local nodes")
		maxJobAttempts = flag.Int("max-job-attempts", 0, "attempt cap per job on -local nodes (0 keeps the sched default)")
		repair         = flag.Bool("repair", false, "repair contexts evicted after device death on -local nodes")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "grace period for -local nodes at shutdown")

		profName       = flag.String("profile", "", "machine profile for -local nodes (m2090, a100-pcie, h100-nvlink); empty keeps the paper's m2090")
		topoName       = flag.String("topology", "", "override the profile's node-local interconnect topology")
		devicesPerNode = flag.Int("devices-per-node", 0, "arm the two-tier interconnect: devices per simulated node (0 keeps flat single-node profiles)")
		fabricName     = flag.String("fabric", "", "inter-node fabric for the two-tier interconnect ("+strings.Join(profile.FabricNames(), ", ")+"); default "+profile.DefaultFabricName)

		retryBudget      = flag.Float64("retry-budget", 0.1, "fraction of successful traffic spendable on reroutes and hedges (tokens earned per success)")
		retryBurst       = flag.Float64("retry-burst", 10, "retry-budget bucket capacity (the bucket starts full, so cold-start forwarding works)")
		breakerThreshold = flag.Int("breaker-threshold", 5, "consecutive backend failures that open its circuit breaker")
		breakerCooldown  = flag.Float64("breaker-cooldown", 5, "seconds an open breaker waits before admitting one half-open probe")
		hedgeAfter       = flag.Float64("hedge-after", 0, "hedge wait-solves after this many seconds without a response (rolling p95 once warmed; 0 disables)")

		sloTarget      = flag.String("slo-target", "", "SLO classes for -local nodes as name:minprio:latency:objective, comma-separated (minprio \"*\" catches all); empty keeps the defaults")
		brownoutFlag   = flag.String("brownout", "", "brownout ladder for -local nodes: comma-separated minimum admitted priorities per level (empty disables)")
		deadlineMargin = flag.Float64("deadline-margin", 0, "-local nodes reject submissions whose deadline is below this multiple of the service-time estimate (0 disables)")

		chaosSeed = flag.Int64("chaos-seed", 0, "seed for -chaos-kill-node fault plans")
		chaosKill = flag.String("chaos-kill-node", "", "arm whole-node death on a -local node: name@seconds (virtual time) kills every device of that node's contexts, e.g. node0@0.001")
	)
	flag.Parse()
	if err := run(routerConfig{
		addr: *addr, portFile: *portFile,
		backendsFlag: *backendsFlag, localN: *localN, maxHops: *maxHops, shardMapPath: *shardMapPath,
		poolSize: *poolSize, devices: *devices, queueDepth: *queueDepth, maxBatch: *maxBatch,
		maxJobAttempts: *maxJobAttempts, repair: *repair, drainTimeout: *drainTimeout,
		profName: *profName, topoName: *topoName, devicesPerNode: *devicesPerNode, fabricName: *fabricName,
		retryBudget: *retryBudget, retryBurst: *retryBurst,
		breakerThreshold: *breakerThreshold, breakerCooldown: *breakerCooldown, hedgeAfter: *hedgeAfter,
		sloTarget: *sloTarget, brownout: *brownoutFlag, deadlineMargin: *deadlineMargin,
		chaosSeed: *chaosSeed, chaosKill: *chaosKill,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "cagmres-router:", err)
		os.Exit(1)
	}
}

// routerConfig carries the parsed flags into run.
type routerConfig struct {
	addr, portFile string

	backendsFlag string
	localN       int
	maxHops      int
	shardMapPath string

	poolSize, devices       int
	queueDepth, maxBatch    int
	maxJobAttempts          int
	repair                  bool
	drainTimeout            time.Duration
	profName, topoName      string
	devicesPerNode          int
	fabricName              string
	retryBudget, retryBurst float64
	breakerThreshold        int
	breakerCooldown         float64
	hedgeAfter              float64
	sloTarget, brownout     string
	deadlineMargin          float64

	chaosSeed int64
	chaosKill string
}

// parseBackends turns the -backends flag into HTTP backends.
func parseBackends(spec string, startIdx int) ([]*cluster.Backend, error) {
	if spec == "" {
		return nil, nil
	}
	var out []*cluster.Backend
	for i, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, url, ok := strings.Cut(item, "=")
		if !ok {
			name, url = fmt.Sprintf("node%d", startIdx+i), item
		}
		b, err := cluster.NewHTTPBackend(name, url)
		if err != nil {
			return nil, fmt.Errorf("-backends %q: %w", item, err)
		}
		out = append(out, b)
	}
	return out, nil
}

// nodeDeathPlan arms the -chaos-kill-node flag: every device of every
// pooled context on the named node dies at the given virtual time, so
// the node's jobs fail terminally and the router must re-route them.
func nodeDeathPlan(spec string, poolSize, devices int, seed int64) (string, []gpu.FaultPlan, error) {
	if spec == "" {
		return "", nil, nil
	}
	name, at, ok := strings.Cut(spec, "@")
	if !ok || name == "" {
		return "", nil, fmt.Errorf("-chaos-kill-node %q: want name@seconds", spec)
	}
	var t float64
	if _, err := fmt.Sscanf(at, "%g", &t); err != nil || t < 0 {
		return "", nil, fmt.Errorf("-chaos-kill-node %q: bad virtual time %q", spec, at)
	}
	plans := make([]gpu.FaultPlan, poolSize)
	for i := range plans {
		plans[i].Seed = seed + int64(i)
		for d := 0; d < devices; d++ {
			plans[i].Deaths = append(plans[i].Deaths, gpu.DeviceDeath{Device: d, At: t})
		}
	}
	return name, plans, nil
}

func run(cfg routerConfig) error {
	prof, err := profile.FromFlags(cfg.profName, cfg.topoName)
	if err != nil {
		return err
	}
	prof, err = profile.ClusterFromFlags(prof, cfg.devicesPerNode, cfg.fabricName)
	if err != nil {
		return err
	}
	classes, err := obs.ParseSLOClasses(cfg.sloTarget)
	if err != nil {
		return fmt.Errorf("-slo-target: %w", err)
	}
	brownout, err := brownoutLadder(cfg.brownout)
	if err != nil {
		return fmt.Errorf("-brownout: %w", err)
	}

	var shardMap *cluster.ShardMap
	if cfg.shardMapPath != "" {
		data, err := os.ReadFile(cfg.shardMapPath)
		if err != nil {
			return err
		}
		if shardMap, err = cluster.DecodeShardMap(data); err != nil {
			return err
		}
	}

	remote, err := parseBackends(cfg.backendsFlag, cfg.localN)
	if err != nil {
		return err
	}
	doomed, plans, err := nodeDeathPlan(cfg.chaosKill, cfg.poolSize, cfg.devices, cfg.chaosSeed)
	if err != nil {
		return err
	}

	var nodes []*cluster.LocalNode
	var backends []*cluster.Backend
	for i := 0; i < cfg.localN; i++ {
		name := fmt.Sprintf("node%d", i)
		ncfg := cluster.LocalNodeConfig{
			Name: name, PoolSize: cfg.poolSize, Devices: cfg.devices, Profile: prof,
			QueueDepth: cfg.queueDepth, MaxBatch: cfg.maxBatch,
			MaxJobAttempts: cfg.maxJobAttempts, Repair: cfg.repair,
			SLO:            obs.SLOConfig{Classes: classes},
			Brownout:       brownout,
			DeadlineMargin: cfg.deadlineMargin,
		}
		if name == doomed {
			ncfg.MaxJobAttempts = 1 // every retry lands on the same dead node
			ncfg.FaultPlans = plans
		}
		n := cluster.NewLocalNode(ncfg)
		nodes = append(nodes, n)
		backends = append(backends, n.Backend())
	}
	if doomed != "" && cfg.localN == 0 {
		return fmt.Errorf("-chaos-kill-node needs -local nodes")
	}
	backends = append(backends, remote...)
	if len(backends) == 0 {
		return fmt.Errorf("no backends: give -backends and/or -local")
	}

	router := cluster.New(cluster.Config{
		Backends: backends, MaxHops: cfg.maxHops, ShardMap: shardMap,
		RetryBudgetRatio: cfg.retryBudget, RetryBudgetBurst: cfg.retryBurst,
		Breaker: cluster.BreakerConfig{
			Threshold: cfg.breakerThreshold,
			Cooldown:  cfg.breakerCooldown,
		},
		HedgeAfter: cfg.hedgeAfter,
	})
	srv, bound, err := obs.Serve(cfg.addr, router)
	if err != nil {
		return err
	}
	fmt.Printf("cagmres-router: serving on %s (%d backends: %s; max hops %d)\n",
		bound, len(backends), strings.Join(router.Backends(), ", "), cfg.maxHops)
	fmt.Printf("cagmres-router: containment armed (retry budget %.2f/%.0f, breaker %d@%.1fs, hedge-after %gs)\n",
		cfg.retryBudget, cfg.retryBurst, cfg.breakerThreshold, cfg.breakerCooldown, cfg.hedgeAfter)
	if cfg.localN > 0 {
		fmt.Printf("cagmres-router: %d in-process nodes (pool %d×%d GPUs, profile %s)\n",
			cfg.localN, cfg.poolSize, cfg.devices, nodeProfileName(prof))
	}
	if doomed != "" {
		fmt.Printf("cagmres-router: chaos armed, whole-node death on %s\n", doomed)
	}
	if cfg.portFile != "" {
		if err := os.WriteFile(cfg.portFile, []byte(bound), 0o644); err != nil {
			return err
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("cagmres-router: %v, draining %d local nodes (timeout %v)\n", got, len(nodes), cfg.drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	for _, n := range nodes {
		if err := n.Drain(ctx); err != nil {
			fmt.Printf("cagmres-router: drain %s: %v\n", n.Name, err)
		}
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		_ = srv.Close()
	}
	solves, reroutes, rejects := router.Counts()
	fmt.Printf("cagmres-router: drained; routed=%d reroutes=%d rejects=%d\n", solves, reroutes, rejects)
	return nil
}

// nodeProfileName names the local nodes' profile for the banner.
func nodeProfileName(p *gpu.Profile) string {
	if p == nil {
		return "m2090"
	}
	return p.Name
}
