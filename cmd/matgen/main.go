// Command matgen writes one of the synthetic paper-analogue matrices (or
// a generic generator) to a MatrixMarket file, so the workloads can be
// inspected with external tools or fed back through cagmres -file.
//
// Examples:
//
//	matgen -matrix cant -scale 0.05 -o cant_small.mtx
//	matgen -matrix laplace3d -nx 40 -ny 40 -nz 40 -convection 0.3 -o conv.mtx
package main

import (
	"flag"
	"fmt"
	"os"

	"cagmres/internal/matgen"
	"cagmres/internal/sparse"
)

func main() {
	matrix := flag.String("matrix", "cant", "generator: cant, G3_circuit, dielFilterV2real, nlpkkt120, laplace2d, laplace3d, diagdominant")
	scale := flag.Float64("scale", 0.02, "scale for the paper analogues")
	nx := flag.Int("nx", 32, "grid x dimension (laplace generators)")
	ny := flag.Int("ny", 32, "grid y dimension")
	nz := flag.Int("nz", 32, "grid z dimension (laplace3d)")
	convection := flag.Float64("convection", 0, "convection strength (laplace generators)")
	n := flag.Int("n", 1000, "dimension (diagdominant)")
	deg := flag.Int("deg", 8, "off-diagonals per row (diagdominant)")
	seed := flag.Int64("seed", 1, "seed (diagdominant)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var a *sparse.CSR
	switch *matrix {
	case "laplace2d":
		a = matgen.Laplace2D(*nx, *ny, *convection)
	case "laplace3d":
		a = matgen.Laplace3D(*nx, *ny, *nz, *convection)
	case "diagdominant":
		a = matgen.DiagDominant(*n, *deg, *seed)
	default:
		m, err := matgen.ByName(*matrix, *scale)
		if err != nil {
			fatal(err)
		}
		a = m.A
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := sparse.WriteMatrixMarket(w, a); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "matgen: wrote %dx%d matrix with %d nonzeros (%.1f per row)\n",
		a.Rows, a.Cols, a.NNZ(), float64(a.NNZ())/float64(a.Rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "matgen:", err)
	os.Exit(1)
}
