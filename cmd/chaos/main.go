// Command chaos is the deterministic chaos harness: it replays a seeded
// fault plan — device deaths at virtual times, transient transfer
// faults, stragglers — against the self-healing solver stack and checks
// that every solve still reaches a terminal state. Because faults fire
// on the modeled device clock and the transfer-fault stream is seeded,
// a chaos run is a pure function of its flags: the same command line
// produces byte-identical fault schedules, recovery actions, and
// modeled times on every machine.
//
// Two layers are exercised:
//
//   - Solver layer (-benchjson): one CA-GMRES solve on -devices GPUs is
//     run fault-free, then re-run with one device killed halfway through
//     the fault-free modeled time. The degraded solve must re-partition
//     onto the survivors, resume from its restart-boundary checkpoint,
//     and converge to the same tolerance. Both runs (and a repeat of the
//     degraded run, which must be bit-identical) are recorded to the
//     bench JSON.
//
//   - Scheduler layer: -jobs solves are pushed through a device pool
//     with fault plans armed on its contexts; the run asserts every job
//     terminates and prints the fault/recovery tallies. -metricsout
//     writes the Prometheus exposition for obslint.
//
// Example (the make chaos-smoke configuration):
//
//	chaos -pool 2 -devices 3 -jobs 8 -kill 0:1@0.5 -xferprob 0.02 \
//	      -seed 7 -repair -benchjson BENCH_pr4.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"reflect"
	"time"

	"cagmres/internal/bench"
	"cagmres/internal/cluster"
	"cagmres/internal/core"
	"cagmres/internal/gpu"
	"cagmres/internal/matgen"
	"cagmres/internal/obs"
	"cagmres/internal/profile"
	"cagmres/internal/sched"
)

func main() {
	var (
		poolSize   = flag.Int("pool", 2, "pooled device contexts for the scheduler replay")
		devices    = flag.Int("devices", 3, "simulated GPUs per context")
		jobs       = flag.Int("jobs", 8, "solve jobs pushed through the scheduler")
		seed       = flag.Int64("seed", 7, "seed for the transfer-fault streams")
		kill       = flag.String("kill", "0:1@0.5", "device death, ctx:dev@frac — frac is the fraction of the fault-free modeled solve time (empty disables)")
		xferProb   = flag.Float64("xferprob", 0.02, "per-transfer-round fault probability on every pooled context")
		maxXfer    = flag.Int("maxxfer", 0, "cap on injected transfer faults per context (0 = unlimited)")
		straggle   = flag.Float64("straggle", 0, "slowdown factor for device 0 of context 0 (0 disables)")
		matrix     = flag.String("matrix", "laplace3d", "generator matrix name")
		scale      = flag.Float64("scale", 1e-4, "generator scale")
		mFlag      = flag.Int("m", 20, "restart length")
		sFlag      = flag.Int("s", 5, "matrix-powers step")
		tol        = flag.Float64("tol", 1e-8, "convergence tolerance")
		repair     = flag.Bool("repair", true, "repair and readmit contexts evicted after a death")
		precFlag   = flag.String("precision", "", "precision mode for every scheduled solve: fp64, mixed, or adaptive (empty keeps fp64)")
		overlap    = flag.Bool("overlap", false, "schedule every solve through the asynchronous stream engine; faults fire on the stream clock and replays must stay bit-identical")
		benchJSON  = flag.String("benchjson", "", "write the degraded-mode solver bench here")
		metricsOut = flag.String("metricsout", "", "write the scheduler replay's Prometheus exposition here")
		profName   = flag.String("profile", "", "machine profile for every context (m2090, a100-pcie, h100-nvlink); empty keeps the paper's m2090")
		topoName   = flag.String("topology", "", "override the profile's interconnect topology (host-hub, pcie-switch, nvlink-ring, all-to-all)")

		clusterRun = flag.Bool("cluster", false, "cluster layer: federate -nodes in-process backends behind a router, kill the shard's whole first-choice node mid-solve, and require completion on a survivor plus a bit-identical replay")
		nodes      = flag.Int("nodes", 3, "in-process backends for -cluster")
		storm      = flag.Bool("storm", false, "retry-storm layer: replay the deterministic overload study (containment off vs on) and a circuit-breaker transition script on virtual time, asserting the containment shapes and bit-identical replays")
	)
	flag.Parse()
	prof, err := profile.FromFlags(*profName, *topoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	if _, err := core.NormalizePrecision(*precFlag); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	if *storm {
		if err := runStorm(); err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		return
	}
	if *clusterRun {
		if err := runCluster(*nodes, *devices, *seed, *matrix, *scale, *mFlag, *sFlag, *tol, prof, *precFlag); err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*poolSize, *devices, *jobs, *seed, *kill, *xferProb, *maxXfer, *straggle,
		*matrix, *scale, *mFlag, *sFlag, *tol, *repair, *overlap, *benchJSON, *metricsOut, prof, *precFlag); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

// clusterJob is the slice of a routed job's wire form the cluster layer
// compares across the degraded run and its replay.
type clusterJob struct {
	ID             string  `json:"id"`
	State          string  `json:"state"`
	Converged      bool    `json:"converged"`
	ModeledSeconds float64 `json:"modeled_seconds"`
	Iters          int     `json:"iters"`
	RelRes         float64 `json:"relres"`
	Attempts       int     `json:"attempts"`
	Backend        string  `json:"backend"`
	Hops           int     `json:"hops"`
	Error          string  `json:"error"`
}

// clusterSolve drives one waited solve through a router built over
// fresh in-process nodes; doomed (if non-empty) gets a whole-node death
// plan — every device of its context dies at killAt virtual seconds.
func clusterSolve(n, devices int, seed int64, doomed string, killAt float64,
	matrix string, scale float64, m, s int, tol float64, prof *gpu.Profile,
	precision string) (clusterJob, error) {
	var locals []*cluster.LocalNode
	var backends []*cluster.Backend
	for i := 0; i < n; i++ {
		cfg := cluster.LocalNodeConfig{Name: fmt.Sprintf("node%d", i), Devices: devices, Profile: prof}
		if cfg.Name == doomed {
			plan := gpu.FaultPlan{Seed: seed}
			for d := 0; d < devices; d++ {
				plan.Deaths = append(plan.Deaths, gpu.DeviceDeath{Device: d, At: killAt})
			}
			cfg.FaultPlans = []gpu.FaultPlan{plan}
			cfg.MaxJobAttempts = 1 // retries would land on the same dead node
		}
		node := cluster.NewLocalNode(cfg)
		locals = append(locals, node)
		backends = append(backends, node.Backend())
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, node := range locals {
			_ = node.Drain(ctx)
		}
	}()
	// The containment layer rides along armed: the reroute off the dead
	// node draws a token from the retry budget and records a breaker
	// failure, and the replay below must still be bit-identical. The
	// frozen virtual clock keeps breaker cooldowns out of the replay
	// (one node death never reaches the open threshold anyway).
	router := cluster.New(cluster.Config{
		Backends:         backends,
		MaxHops:          n,
		RetryBudgetRatio: 0.1,
		RetryBudgetBurst: 10,
		Breaker:          cluster.BreakerConfig{Threshold: 5, Cooldown: 5},
		Now:              func() float64 { return 0 },
	})
	req := map[string]any{
		"matrix": map[string]any{"name": matrix, "scale": scale},
		"m":      m, "s": s, "tol": tol, "ortho": "CholQR", "wait": true,
	}
	if precision != "" {
		req["precision"] = precision
	}
	body, _ := json.Marshal(req)
	rec := httptest.NewRecorder()
	router.ServeHTTP(rec, httptest.NewRequest("POST", "/solve", bytes.NewReader(body)))
	var job clusterJob
	if err := json.Unmarshal(rec.Body.Bytes(), &job); err != nil {
		return job, fmt.Errorf("routed solve: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Code != 200 {
		return job, fmt.Errorf("routed solve: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	return job, nil
}

// runCluster is the cluster chaos layer: a probe run on a healthy
// federation finds the shard's first-choice node and its fault-free
// modeled time, the degraded run kills that whole node (every device)
// halfway through the solve and must complete on a survivor with the
// burned attempt accounted, and a replay of the degraded run under the
// same seed must be bit-identical.
func runCluster(n, devices int, seed int64, matrix string, scale float64,
	m, s int, tol float64, prof *gpu.Profile, precision string) error {
	if n < 2 {
		return fmt.Errorf("-cluster needs at least 2 nodes, got %d", n)
	}
	probe, err := clusterSolve(n, devices, seed, "", 0, matrix, scale, m, s, tol, prof, precision)
	if err != nil {
		return err
	}
	if probe.State != "done" || !probe.Converged || probe.Hops != 1 {
		return fmt.Errorf("probe solve on healthy federation: %+v", probe)
	}
	fmt.Printf("chaos cluster: probe solve on %d nodes: shard owner %s, %.6fs modeled, %d iters\n",
		n, probe.Backend, probe.ModeledSeconds, probe.Iters)

	killAt := 0.5 * probe.ModeledSeconds
	deg, err := clusterSolve(n, devices, seed, probe.Backend, killAt, matrix, scale, m, s, tol, prof, precision)
	if err != nil {
		return err
	}
	if deg.State != "done" || !deg.Converged {
		return fmt.Errorf("degraded routed solve did not converge: %+v", deg)
	}
	if deg.Backend == probe.Backend {
		return fmt.Errorf("job stayed on the dead node %s: %+v", probe.Backend, deg)
	}
	if deg.Hops < 2 {
		return fmt.Errorf("node death did not force a reroute: %+v", deg)
	}
	if deg.Attempts < 2 {
		return fmt.Errorf("attempt burned on the dead node lost from the accounting: %+v", deg)
	}
	fmt.Printf("chaos cluster: node %s killed @ %.6fs (all %d devices): job rerouted to %s, hops=%d attempts=%d, %.6fs modeled, relres %.2e\n",
		probe.Backend, killAt, devices, deg.Backend, deg.Hops, deg.Attempts, deg.ModeledSeconds, deg.RelRes)

	deg2, err := clusterSolve(n, devices, seed, probe.Backend, killAt, matrix, scale, m, s, tol, prof, precision)
	if err != nil {
		return fmt.Errorf("degraded replay: %w", err)
	}
	if deg2.ModeledSeconds != deg.ModeledSeconds || deg2.Iters != deg.Iters ||
		deg2.RelRes != deg.RelRes || deg2.Backend != deg.Backend ||
		deg2.Hops != deg.Hops || deg2.Attempts != deg.Attempts {
		return fmt.Errorf("degraded cluster replay diverged:\n  run 1: %+v\n  run 2: %+v", deg, deg2)
	}
	fmt.Printf("chaos cluster: degraded replay bit-identical (%.9fs modeled, %d iters, relres %.17g)\n",
		deg2.ModeledSeconds, deg2.Iters, deg2.RelRes)
	fmt.Println("chaos: ok")
	return nil
}

// runStorm is the retry-storm chaos layer. It replays the overload
// study — a three-node federation at 1-4x capacity with the containment
// layer off and on — twice, requiring bit-identical rows and the
// containment shapes: without containment, reroutes per offered job
// grow superlinearly with load; with containment, reroutes stay inside
// the retry-budget bound and goodput holds >= 80% of capacity at 4x
// offered load. It then drives a circuit breaker through a scripted
// failure/cooldown/probe sequence on a virtual clock, twice, and
// requires identical transition traces.
func runStorm() error {
	run := func(out *os.File) []bench.OverloadRow {
		cfg := bench.Config{Scale: 0.02}
		if out != nil {
			cfg.Out = out
		}
		return bench.FigOverload(cfg)
	}
	rows := run(os.Stdout)
	replay := run(nil)
	if !reflect.DeepEqual(rows, replay) {
		return fmt.Errorf("overload study replay diverged:\n  run 1: %+v\n  run 2: %+v", rows, replay)
	}
	fmt.Println("chaos storm: overload study replay bit-identical")

	off := map[float64]bench.OverloadRow{}
	on := map[float64]bench.OverloadRow{}
	for _, r := range rows {
		if r.Containment {
			on[r.Load] = r
		} else {
			off[r.Load] = r
		}
	}
	rate := func(r bench.OverloadRow) float64 { return float64(r.Reroutes) / float64(r.Offered) }
	prev := -1.0
	for _, load := range []float64{1, 2, 3, 4} {
		r := off[load]
		if r.Offered == 0 {
			return fmt.Errorf("overload study missing uncontained %gx row", load)
		}
		if got := rate(r); got < prev {
			return fmt.Errorf("uncontained reroutes/offered fell from %.2f to %.2f at %gx", prev, got, load)
		} else {
			prev = got
		}
	}
	if r1, r4 := rate(off[1]), rate(off[4]); r4 <= 4*r1+1e-9 && r4 < 1 {
		return fmt.Errorf("uncontained reroutes/offered did not grow superlinearly: %.2f at 1x, %.2f at 4x", r1, r4)
	}
	fmt.Printf("chaos storm: containment off: reroutes/offered %.2f -> %.2f -> %.2f -> %.2f across 1-4x (superlinear)\n",
		rate(off[1]), rate(off[2]), rate(off[3]), rate(off[4]))
	r4 := on[4]
	if r4.GoodputFrac < 0.8 {
		return fmt.Errorf("contained goodput at 4x offered load = %.1f%%, want >= 80%%", 100*r4.GoodputFrac)
	}
	if bound := 0.1*float64(r4.Served+r4.Late) + 10; float64(r4.Reroutes) > bound {
		return fmt.Errorf("contained reroutes at 4x (%d) exceed retry-budget bound %.1f", r4.Reroutes, bound)
	}
	fmt.Printf("chaos storm: containment on: goodput %.1f%% of capacity at 4x, %d reroutes (budget-bounded), %d shed\n",
		100*r4.GoodputFrac, r4.Reroutes, r4.Shed)

	a := breakerScript()
	b := breakerScript()
	if !reflect.DeepEqual(a, b) {
		return fmt.Errorf("breaker transition replay diverged:\n  run 1: %v\n  run 2: %v", a, b)
	}
	want := []string{
		"closed", "closed", "open", // failures up to threshold
		"open",            // cooldown not yet elapsed: requests skipped
		"half-open:allow", // cooldown elapsed: exactly one probe admitted
		"half-open:skip",  // concurrent request skipped while probing
		"open",            // probe failed: re-open immediately
		"half-open:allow", // second cooldown, second probe
		"closed",          // probe succeeded: circuit closes
		"closed",          // healthy traffic flows again
	}
	if !reflect.DeepEqual(a, want) {
		return fmt.Errorf("breaker transition script:\n  got  %v\n  want %v", a, want)
	}
	fmt.Printf("chaos storm: breaker script replay bit-identical (%d transitions: closed -> open -> half-open -> open -> half-open -> closed)\n", len(a))
	fmt.Println("chaos: ok")
	return nil
}

// breakerScript drives one circuit breaker through a deterministic
// failure/cooldown/probe sequence on a virtual clock and returns the
// observed state trace.
func breakerScript() []string {
	clock := 0.0
	br := cluster.NewBreaker(cluster.BreakerConfig{
		Threshold: 3, Cooldown: 5, Now: func() float64 { return clock },
	})
	var trace []string
	step := func(s string) { trace = append(trace, s) }

	br.Failure()
	step(br.State()) // 1 failure: still closed
	br.Failure()
	step(br.State()) // 2 failures: still closed
	br.Failure()
	step(br.State()) // threshold: open
	clock = 3
	if !br.Allow() {
		step(br.State()) // inside cooldown: skipped, still open
	}
	clock = 6
	if br.Allow() {
		step(br.State() + ":allow") // cooldown elapsed: probe admitted
	}
	if !br.Allow() {
		step(br.State() + ":skip") // one probe at a time
	}
	br.Failure()
	step(br.State()) // probe failed: re-open
	clock = 12
	if br.Allow() {
		step(br.State() + ":allow") // second probe
	}
	br.Success()
	step(br.State()) // probe succeeded: closed
	if br.Allow() {
		step(br.State()) // traffic flows
	}
	return trace
}

// solveSnap is one solve's record in the bench JSON.
type solveSnap struct {
	Devices        int     `json:"devices"`
	ModeledSeconds float64 `json:"modeled_seconds"`
	Iters          int     `json:"iters"`
	Restarts       int     `json:"restarts"`
	RelRes         float64 `json:"relres"`
	Converged      bool    `json:"converged"`

	KillDevice         int     `json:"kill_device,omitempty"`
	KillAt             float64 `json:"kill_at_seconds,omitempty"`
	DevicesAfter       int     `json:"devices_after,omitempty"`
	Repartitions       int     `json:"repartitions,omitempty"`
	CheckpointRestores int     `json:"checkpoint_restores,omitempty"`
}

type benchOut struct {
	Name      string    `json:"name"`
	Matrix    string    `json:"matrix"`
	Scale     float64   `json:"scale"`
	M         int       `json:"m"`
	S         int       `json:"s"`
	Tol       float64   `json:"tol"`
	FaultFree solveSnap `json:"fault_free"`
	Degraded  solveSnap `json:"degraded"`
	Slowdown  float64   `json:"degraded_slowdown"`
	Identical bool      `json:"degraded_replay_identical"`
}

// newCtx builds one simulated context on the selected machine profile
// (nil keeps the paper's M2090 host-hub machine).
func newCtx(devices int, prof *gpu.Profile) *gpu.Context {
	if prof != nil {
		return gpu.NewContextWithProfile(devices, *prof)
	}
	return gpu.NewContext(devices, gpu.M2090())
}

func rhsFor(n, seed int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + 0.01*float64((i*131+seed*977)%67)
	}
	return b
}

func run(poolSize, devices, jobs int, seed int64, kill string, xferProb float64,
	maxXfer int, straggle float64, matrix string, scale float64, m, s int,
	tol float64, repair, overlap bool, benchJSON, metricsOut string, prof *gpu.Profile,
	precision string) error {
	gen, err := matgen.ByName(matrix, scale)
	if err != nil {
		return err
	}
	opts := core.Options{M: m, S: s, Tol: tol, Ortho: "CholQR", Overlap: overlap, Precision: precision}

	var killCtx, killDev int
	var killFrac float64
	haveKill := kill != ""
	if haveKill {
		if _, err := fmt.Sscanf(kill, "%d:%d@%f", &killCtx, &killDev, &killFrac); err != nil {
			return fmt.Errorf("-kill %q: want ctx:dev@frac: %v", kill, err)
		}
		if killCtx < 0 || killCtx >= poolSize || killDev < 0 || killDev >= devices {
			return fmt.Errorf("-kill %q outside pool %d×%d", kill, poolSize, devices)
		}
	}

	// --- Solver layer: fault-free baseline, then a mid-solve death. ---
	solve := func(plan *gpu.FaultPlan) (*core.Result, *gpu.Context, error) {
		ctx := newCtx(devices, prof)
		if plan != nil {
			ctx.InjectFaults(*plan)
		}
		prob, err := core.NewProblem(ctx, gen.A, rhsFor(gen.A.Rows, 1), core.KWay, true)
		if err != nil {
			return nil, nil, err
		}
		res, err := core.CAGMRES(prob, opts)
		return res, ctx, err
	}
	clean, cleanCtx, err := solve(nil)
	if err != nil {
		return fmt.Errorf("fault-free solve: %w", err)
	}
	if !clean.Converged {
		return fmt.Errorf("fault-free solve did not converge (relres %.2e)", clean.RelRes)
	}
	// The kill fraction is relative to the schedule the solve actually
	// runs: deaths fire on the stream clock under overlap, whose horizon
	// finishes earlier than the serialized ledger total — scaling the
	// fraction by the wrong clock would schedule the death after the
	// solve completes.
	cleanTime := clean.Stats.TotalTime()
	if overlap {
		cleanTime = cleanCtx.OverlappedTime()
	}
	fmt.Printf("chaos: fault-free %d-device solve: %.6fs modeled, %d iters, relres %.2e\n",
		devices, cleanTime, clean.Iters, clean.RelRes)

	var bench benchOut
	if haveKill {
		killAt := killFrac * cleanTime
		plan := gpu.FaultPlan{Seed: seed,
			Deaths: []gpu.DeviceDeath{{Device: killDev, At: killAt}}}
		deg, _, err := solve(&plan)
		if err != nil {
			return fmt.Errorf("degraded solve: %w", err)
		}
		if !deg.Converged {
			return fmt.Errorf("degraded solve did not converge (relres %.2e)", deg.RelRes)
		}
		if deg.Faults == nil || deg.Faults.Repartitions < 1 {
			return fmt.Errorf("degraded solve reported no repartition: %+v", deg.Faults)
		}
		// Replay: the virtual clock makes the degraded run reproducible.
		deg2, _, err := solve(&plan)
		if err != nil {
			return fmt.Errorf("degraded replay: %w", err)
		}
		identical := deg.Stats.TotalTime() == deg2.Stats.TotalTime() &&
			deg.Iters == deg2.Iters && deg.RelRes == deg2.RelRes
		if !identical {
			return fmt.Errorf("degraded replay diverged: %.9fs/%d vs %.9fs/%d",
				deg.Stats.TotalTime(), deg.Iters, deg2.Stats.TotalTime(), deg2.Iters)
		}
		fmt.Printf("chaos: degraded %d→%d-device solve (kill dev %d @ %.6fs): %.6fs modeled (%.2fx), %d iters, relres %.2e, repartitions=%d restores=%d\n",
			devices, devices-1, killDev, killAt, deg.Stats.TotalTime(),
			deg.Stats.TotalTime()/cleanTime, deg.Iters, deg.RelRes,
			deg.Faults.Repartitions, deg.Faults.CheckpointRestores)

		bench = benchOut{
			Name: "chaos-degraded-mode", Matrix: matrix, Scale: scale,
			M: m, S: s, Tol: tol,
			FaultFree: solveSnap{Devices: devices, ModeledSeconds: cleanTime,
				Iters: clean.Iters, Restarts: clean.Restarts,
				RelRes: clean.RelRes, Converged: true},
			Degraded: solveSnap{Devices: devices, ModeledSeconds: deg.Stats.TotalTime(),
				Iters: deg.Iters, Restarts: deg.Restarts,
				RelRes: deg.RelRes, Converged: true,
				KillDevice: killDev, KillAt: killAt, DevicesAfter: devices - 1,
				Repartitions:       deg.Faults.Repartitions,
				CheckpointRestores: deg.Faults.CheckpointRestores},
			Slowdown:  deg.Stats.TotalTime() / cleanTime,
			Identical: identical,
		}
		if benchJSON != "" {
			data, err := json.MarshalIndent(bench, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(benchJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("chaos: bench written to %s\n", benchJSON)
		}
	}

	// --- Scheduler layer: jobs through a pool with armed fault plans. ---
	plans := make([]gpu.FaultPlan, poolSize)
	for i := range plans {
		plans[i].Seed = seed + int64(i)
		plans[i].TransferFaultProb = xferProb
		plans[i].MaxTransferFaults = maxXfer
	}
	if haveKill {
		plans[killCtx].Deaths = []gpu.DeviceDeath{{Device: killDev, At: killFrac * cleanTime}}
	}
	if straggle > 0 {
		plans[0].Stragglers = []gpu.Straggler{{Device: 0, Factor: straggle}}
	}
	reg := obs.NewRegistry()
	pool := sched.NewPoolWithConfig(sched.PoolConfig{
		Size: poolSize, Devices: devices, Model: gpu.M2090(), Profile: prof,
		FaultPlans: plans, Repair: repair,
	})
	sc := sched.New(sched.Config{Pool: pool, QueueDepth: jobs + 1, MaxBatch: 4, Registry: reg})
	sc.Start()

	spec := sched.Spec{Solver: "ca", Matrix: gen.A, Ordering: core.KWay, Balance: true,
		MatrixKey: matrix, Opts: opts}
	submitted := make([]*sched.Job, 0, jobs)
	for i := 0; i < jobs; i++ {
		js := spec
		js.B = rhsFor(gen.A.Rows, i)
		j, err := sc.Submit(context.Background(), js, i%3, 0)
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		submitted = append(submitted, j)
	}
	done, failed := 0, 0
	for _, j := range submitted {
		select {
		case <-j.Done():
		case <-time.After(2 * time.Minute):
			return fmt.Errorf("job %s never terminated (state %s)", j.ID, j.State())
		}
		switch j.State() {
		case sched.StateDone:
			done++
		case sched.StateFailed, sched.StateCanceled:
			failed++
		default:
			return fmt.Errorf("job %s in non-terminal state %s", j.ID, j.State())
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sc.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	snap := sc.Snapshot()
	fmt.Printf("chaos: scheduler replay: %d/%d jobs done (%d failed); faults: deaths=%d transfers=%d retries=%d requeues=%d repartitions=%d restores=%d evictions=%d readmissions=%d\n",
		done, jobs, failed, snap.DevicesLost, snap.TransferFaults, snap.TransferRetries,
		snap.Requeues, snap.Repartitions, snap.Restores, snap.Evictions, snap.Readmissions)
	if done == 0 {
		return fmt.Errorf("no job survived the chaos plan")
	}
	if haveKill && snap.DevicesLost == 0 {
		return fmt.Errorf("kill plan armed but no device death observed")
	}

	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		if err := reg.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("chaos: metrics written to %s\n", metricsOut)
	}
	fmt.Println("chaos: ok")
	return nil
}
