// Command cagmresd is the solver daemon: a device-pool scheduler behind
// the internal/server HTTP JSON API. It leases simulated multi-GPU
// contexts to admitted jobs, batches compatible requests into shared
// leases, enforces deadlines and queue backpressure, and exports the
// scheduler's instruments on /metrics.
//
//	cagmresd -addr :8080 -pool 2 -devices 3
//
// SIGINT/SIGTERM trigger a graceful drain: admission stops (new solves
// get 503), queued and running jobs finish (bounded by -drain-timeout,
// after which they are canceled at the solvers' next restart boundary),
// then the listener shuts down.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cagmres/internal/gpu"
	"cagmres/internal/obs"
	"cagmres/internal/sched"
	"cagmres/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
		poolSize     = flag.Int("pool", 2, "number of pooled device contexts")
		devices      = flag.Int("devices", 3, "simulated GPUs per context")
		queueDepth   = flag.Int("queue", 64, "admission queue depth (full queue answers 429)")
		maxBatch     = flag.Int("batch", 8, "max compatible jobs coalesced into one lease (1 disables)")
		retain       = flag.Int("retain", 1024, "terminal jobs kept resolvable via /jobs/{id}")
		retryAfter   = flag.Duration("retry-after", time.Second, "backpressure hint on 429 responses")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period before shutdown cancels in-flight jobs")
		portFile     = flag.String("portfile", "", "write the bound address to this file once listening")
	)
	flag.Parse()
	if err := run(*addr, *poolSize, *devices, *queueDepth, *maxBatch, *retain,
		*retryAfter, *drainTimeout, *portFile); err != nil {
		fmt.Fprintln(os.Stderr, "cagmresd:", err)
		os.Exit(1)
	}
}

func run(addr string, poolSize, devices, queueDepth, maxBatch, retain int,
	retryAfter, drainTimeout time.Duration, portFile string) error {
	reg := obs.NewRegistry()
	pool := sched.NewPool(poolSize, devices, gpu.M2090())
	s := sched.New(sched.Config{
		Pool:       pool,
		QueueDepth: queueDepth,
		MaxBatch:   maxBatch,
		RetryAfter: retryAfter,
		RetainJobs: retain,
		Registry:   reg,
	})
	s.Start()

	srv, bound, err := obs.Serve(addr, server.New(s, reg))
	if err != nil {
		return err
	}
	fmt.Printf("cagmresd: serving on %s (pool %d×%d GPUs, queue %d, batch %d)\n",
		bound, poolSize, devices, queueDepth, maxBatch)
	if portFile != "" {
		if err := os.WriteFile(portFile, []byte(bound), 0o644); err != nil {
			return err
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("cagmresd: %v, draining (timeout %v)\n", got, drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		fmt.Printf("cagmresd: drain timeout, canceled in-flight jobs: %v\n", err)
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		_ = srv.Close()
	}
	snap := s.Snapshot()
	fmt.Printf("cagmresd: drained; dispatched=%d leases=%d batched=%d rejected=%d\n",
		snap.Dispatched, snap.Leases, snap.Batched, snap.Rejected)
	return nil
}
