// Command cagmresd is the solver daemon: a device-pool scheduler behind
// the internal/server HTTP JSON API. It leases simulated multi-GPU
// contexts to admitted jobs, batches compatible requests into shared
// leases, enforces deadlines and queue backpressure, and exports the
// scheduler's instruments on /metrics.
//
//	cagmresd -addr :8080 -pool 2 -devices 3
//
// SIGINT/SIGTERM trigger a graceful drain: admission stops (new solves
// get 503), queued and running jobs finish (bounded by -drain-timeout,
// after which they are canceled at the solvers' next restart boundary
// and given -drain-grace to unwind; jobs still wedged after the grace
// are abandoned and logged), then the listener shuts down.
//
// The -chaos-* flags arm deterministic fault plans on the pooled
// contexts — device deaths at virtual times, transient transfer faults,
// stragglers — so operators can rehearse degraded operation against the
// same self-healing paths the chaos tests pin down:
//
//	cagmresd -pool 1 -devices 3 -chaos-kill 0:1@0.002 -repair
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cagmres/internal/gpu"
	"cagmres/internal/obs"
	"cagmres/internal/profile"
	"cagmres/internal/sched"
	"cagmres/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
		poolSize     = flag.Int("pool", 2, "number of pooled device contexts")
		devices      = flag.Int("devices", 3, "simulated GPUs per context")
		queueDepth   = flag.Int("queue", 64, "admission queue depth (full queue answers 429)")
		maxBatch     = flag.Int("batch", 8, "max compatible jobs coalesced into one lease (1 disables)")
		retain       = flag.Int("retain", 1024, "terminal jobs kept resolvable via /jobs/{id}")
		retryAfter   = flag.Duration("retry-after", time.Second, "backpressure hint on 429 responses")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period before shutdown cancels in-flight jobs")
		drainGrace   = flag.Duration("drain-grace", 5*time.Second, "after cancellation, how long to wait for wedged leases before abandoning them (0 waits forever)")
		leaseTimeout = flag.Duration("lease-timeout", 0, "cancel any device lease older than this (0 disables)")
		portFile     = flag.String("portfile", "", "write the bound address to this file once listening")

		chaosSeed    = flag.Int64("chaos-seed", 0, "seed for the transfer-fault stream of every armed plan")
		chaosKill    = flag.String("chaos-kill", "", "comma-separated device deaths, each ctx:dev@seconds (virtual time), e.g. 0:1@0.002")
		chaosXfer    = flag.Float64("chaos-xfer", 0, "per-transfer-round fault probability armed on every pooled context")
		chaosMaxXfer = flag.Int("chaos-max-xfer", 0, "stop injecting transfer faults after this many (0 = unlimited)")
		chaosStrag   = flag.String("chaos-straggle", "", "comma-separated stragglers, each ctx:dev@factor, e.g. 0:2@3.0")
		repair       = flag.Bool("repair", false, "repair and readmit contexts evicted after a device death (driver reset) instead of shrinking the pool")

		profName  = flag.String("profile", "", "machine profile for the pooled contexts (m2090, a100-pcie, h100-nvlink); empty keeps the paper's m2090")
		precision = flag.String("precision", "", "default precision for solve bodies that omit the field: fp64, mixed, or adaptive (empty keeps fp64)")
		topoName  = flag.String("topology", "", "override the profile's interconnect topology (host-hub, pcie-switch, nvlink-ring, all-to-all)")

		sloTarget      = flag.String("slo-target", "", "SLO classes as name:minprio:latency:objective, comma-separated (minprio \"*\" catches all), e.g. interactive:1:1.0:0.99,standard:*:5.0:0.95; empty keeps the defaults")
		brownoutFlag   = flag.String("brownout", "", "SLO-driven brownout ladder: comma-separated minimum admitted priorities per level, e.g. 1,2 (empty disables)")
		deadlineMargin = flag.Float64("deadline-margin", 0, "reject submissions whose deadline is below this multiple of the rolling service-time estimate (0 disables)")
		traceEvents    = flag.Int("trace-events", 1<<14, "per-context event-trace ring capacity feeding /jobs/{id}/trace.json device lanes (0 disables)")
	)
	flag.Parse()
	prof, err := profile.FromFlags(*profName, *topoName)
	var classes []obs.SLOClass
	if err == nil {
		if classes, err = obs.ParseSLOClasses(*sloTarget); err != nil {
			err = fmt.Errorf("-slo-target: %w", err)
		}
	}
	var brownout *sched.BrownoutConfig
	if err == nil {
		if brownout, err = brownoutLadder(*brownoutFlag); err != nil {
			err = fmt.Errorf("-brownout: %w", err)
		}
	}
	var plans []gpu.FaultPlan
	if err == nil {
		plans, err = chaosPlans(*poolSize, *chaosSeed, *chaosKill, *chaosXfer, *chaosMaxXfer, *chaosStrag)
	}
	if err == nil {
		err = run(daemonConfig{
			addr: *addr, poolSize: *poolSize, devices: *devices,
			queueDepth: *queueDepth, maxBatch: *maxBatch, retain: *retain,
			retryAfter: *retryAfter, drainTimeout: *drainTimeout,
			drainGrace: *drainGrace, leaseTimeout: *leaseTimeout,
			portFile: *portFile, plans: plans, repair: *repair,
			prof: prof, sloClasses: classes, traceEvents: *traceEvents,
			brownout: brownout, deadlineMargin: *deadlineMargin,
			precision: *precision,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cagmresd:", err)
		os.Exit(1)
	}
}

type daemonConfig struct {
	addr                     string
	poolSize, devices        int
	queueDepth, maxBatch     int
	retain                   int
	retryAfter, drainTimeout time.Duration
	drainGrace, leaseTimeout time.Duration
	portFile                 string
	plans                    []gpu.FaultPlan
	repair                   bool
	prof                     *gpu.Profile
	sloClasses               []obs.SLOClass
	traceEvents              int
	brownout                 *sched.BrownoutConfig
	deadlineMargin           float64
	precision                string
}

// brownoutLadder parses the -brownout flag: a comma-separated list of
// minimum admitted priorities, one per brownout level. Empty input
// keeps brownout off.
func brownoutLadder(spec string) (*sched.BrownoutConfig, error) {
	if spec == "" {
		return nil, nil
	}
	var ladder []int
	for _, item := range strings.Split(spec, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(item))
		if err != nil {
			return nil, fmt.Errorf("ladder rung %q: %v", item, err)
		}
		ladder = append(ladder, p)
	}
	return &sched.BrownoutConfig{Ladder: ladder}, nil
}

// chaosPlans translates the -chaos-* flags into per-context fault plans.
// Every pooled context gets the transfer/seed settings; deaths and
// stragglers name their context explicitly.
func chaosPlans(poolSize int, seed int64, kill string, xfer float64, maxXfer int, strag string) ([]gpu.FaultPlan, error) {
	if kill == "" && xfer == 0 && strag == "" {
		return nil, nil
	}
	plans := make([]gpu.FaultPlan, poolSize)
	for i := range plans {
		plans[i].Seed = seed + int64(i)
		plans[i].TransferFaultProb = xfer
		plans[i].MaxTransferFaults = maxXfer
	}
	if err := eachSpec(kill, "chaos-kill", func(ctx, dev int, v float64) error {
		if ctx < 0 || ctx >= poolSize {
			return fmt.Errorf("context %d outside pool of %d", ctx, poolSize)
		}
		plans[ctx].Deaths = append(plans[ctx].Deaths, gpu.DeviceDeath{Device: dev, At: v})
		return nil
	}); err != nil {
		return nil, err
	}
	if err := eachSpec(strag, "chaos-straggle", func(ctx, dev int, v float64) error {
		if ctx < 0 || ctx >= poolSize {
			return fmt.Errorf("context %d outside pool of %d", ctx, poolSize)
		}
		plans[ctx].Stragglers = append(plans[ctx].Stragglers, gpu.Straggler{Device: dev, Factor: v})
		return nil
	}); err != nil {
		return nil, err
	}
	return plans, nil
}

// eachSpec parses a comma-separated list of ctx:dev@value entries.
func eachSpec(list, flagName string, f func(ctx, dev int, v float64) error) error {
	if list == "" {
		return nil
	}
	for _, item := range strings.Split(list, ",") {
		head, val, ok := strings.Cut(item, "@")
		cs, ds, ok2 := strings.Cut(head, ":")
		if !ok || !ok2 {
			return fmt.Errorf("-%s %q: want ctx:dev@value", flagName, item)
		}
		ctx, err := strconv.Atoi(cs)
		if err != nil {
			return fmt.Errorf("-%s %q: %v", flagName, item, err)
		}
		dev, err := strconv.Atoi(ds)
		if err != nil {
			return fmt.Errorf("-%s %q: %v", flagName, item, err)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("-%s %q: %v", flagName, item, err)
		}
		if err := f(ctx, dev, v); err != nil {
			return fmt.Errorf("-%s %q: %v", flagName, item, err)
		}
	}
	return nil
}

func run(cfg daemonConfig) error {
	reg := obs.NewRegistry()
	pool := sched.NewPoolWithConfig(sched.PoolConfig{
		Size: cfg.poolSize, Devices: cfg.devices, Model: gpu.M2090(),
		Profile: cfg.prof, FaultPlans: cfg.plans, Repair: cfg.repair,
		TraceEvents: cfg.traceEvents,
	})
	s := sched.New(sched.Config{
		Pool:           pool,
		QueueDepth:     cfg.queueDepth,
		MaxBatch:       cfg.maxBatch,
		RetryAfter:     cfg.retryAfter,
		RetainJobs:     cfg.retain,
		LeaseTimeout:   cfg.leaseTimeout,
		DrainGrace:     cfg.drainGrace,
		Registry:       reg,
		SLO:            obs.NewSLOEngine(reg, obs.SLOConfig{Classes: cfg.sloClasses}),
		Brownout:       cfg.brownout,
		DeadlineMargin: cfg.deadlineMargin,
	})
	s.Start()

	api := server.New(s, reg)
	if err := api.SetDefaultPrecision(cfg.precision); err != nil {
		return fmt.Errorf("-precision: %w", err)
	}
	srv, bound, err := obs.Serve(cfg.addr, api)
	if err != nil {
		return err
	}
	p := pool.Profile()
	fmt.Printf("cagmresd: serving on %s (pool %d×%d GPUs, profile %s/%s, queue %d, batch %d)\n",
		bound, cfg.poolSize, cfg.devices, p.Name, p.Topo.Kind, cfg.queueDepth, cfg.maxBatch)
	if len(cfg.plans) > 0 {
		fmt.Printf("cagmresd: chaos armed on %d contexts (repair=%t)\n", len(cfg.plans), cfg.repair)
	}
	if cfg.portFile != "" {
		if err := os.WriteFile(cfg.portFile, []byte(bound), 0o644); err != nil {
			return err
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("cagmresd: %v, draining (timeout %v, grace %v)\n", got, cfg.drainTimeout, cfg.drainGrace)

	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		var dt *sched.DrainTimeoutError
		if errors.As(err, &dt) {
			fmt.Printf("cagmresd: drain grace expired, abandoned %d wedged jobs: %s\n",
				len(dt.Abandoned), strings.Join(dt.Abandoned, ", "))
		} else {
			fmt.Printf("cagmresd: drain timeout, canceled in-flight jobs: %v\n", err)
		}
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		_ = srv.Close()
	}
	snap := s.Snapshot()
	fmt.Printf("cagmresd: drained; dispatched=%d leases=%d batched=%d rejected=%d\n",
		snap.Dispatched, snap.Leases, snap.Batched, snap.Rejected)
	if snap.DevicesLost > 0 || snap.TransferFaults > 0 || snap.Requeues > 0 {
		fmt.Printf("cagmresd: faults survived; devices_lost=%d transfer_faults=%d retries=%d requeues=%d repartitions=%d restores=%d evictions=%d readmissions=%d\n",
			snap.DevicesLost, snap.TransferFaults, snap.TransferRetries, snap.Requeues,
			snap.Repartitions, snap.Restores, snap.Evictions, snap.Readmissions)
	}
	return nil
}
