// Command obslint validates the observability artifacts the solvers and
// benchmark drivers emit:
//
//	obslint -prom out.prom        lint Prometheus text-format metrics
//	obslint -jsonl out.jsonl      lint a convergence-telemetry stream
//	obslint -trace out.trace.json validate a Chrome trace_event export
//	obslint -spans out.spans.jsonl validate a request-trace span stream
//	                               (required fields, unique ids, one
//	                               trace id, acyclic parentage, child
//	                               intervals nested in their parents)
//
// -require, combined with -prom, additionally demands that the named
// metric families are declared — how make serve-smoke asserts a running
// cagmresd exports the scheduler's queue/lease/latency instruments, and
// make trace-smoke the slo_*/trace_* families.
//
// Any combination of flags may be given; the command exits non-zero on
// the first failing artifact. make metrics-smoke runs a small solve and
// pushes the first three outputs through this command; make trace-smoke
// adds the span stream of a traced request.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cagmres/internal/obs"
)

func main() {
	prom := flag.String("prom", "", "Prometheus text-format file to lint")
	jsonl := flag.String("jsonl", "", "JSON-lines telemetry file to lint")
	trace := flag.String("trace", "", "Chrome trace_event JSON file to validate")
	spans := flag.String("spans", "", "JSON-lines span-stream file to validate")
	require := flag.String("require", "", "comma-separated metric families that -prom must declare")
	flag.Parse()
	if *prom == "" && *jsonl == "" && *trace == "" && *spans == "" {
		fmt.Fprintln(os.Stderr, "obslint: nothing to do (want -prom, -jsonl, -trace and/or -spans)")
		os.Exit(2)
	}
	if *require != "" && *prom == "" {
		fmt.Fprintln(os.Stderr, "obslint: -require needs -prom")
		os.Exit(2)
	}

	if *prom != "" {
		data := read(*prom)
		if err := obs.LintPrometheus(data); err != nil {
			fail(*prom, err)
		}
		if *require != "" {
			var families []string
			for _, f := range strings.Split(*require, ",") {
				if f = strings.TrimSpace(f); f != "" {
					families = append(families, f)
				}
			}
			if err := obs.RequireFamilies(data, families); err != nil {
				fail(*prom, err)
			}
			fmt.Printf("%s: ok (Prometheus text format, %d required families present)\n",
				*prom, len(families))
		} else {
			fmt.Printf("%s: ok (Prometheus text format)\n", *prom)
		}
	}
	if *jsonl != "" {
		data := read(*jsonl)
		recs, err := obs.LintTelemetry(data)
		if err != nil {
			fail(*jsonl, err)
		}
		fmt.Printf("%s: ok (%d telemetry records, monotone clock, ends with done)\n", *jsonl, len(recs))
	}
	if *trace != "" {
		data := read(*trace)
		var tf struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &tf); err != nil {
			fail(*trace, err)
		}
		if len(tf.TraceEvents) == 0 {
			fail(*trace, fmt.Errorf("no traceEvents"))
		}
		fmt.Printf("%s: ok (%d trace events)\n", *trace, len(tf.TraceEvents))
	}
	if *spans != "" {
		data := read(*spans)
		ss, err := obs.LintSpans(data)
		if err != nil {
			fail(*spans, err)
		}
		fmt.Printf("%s: ok (%d spans, trace %s, acyclic and nested)\n",
			*spans, len(ss), ss[0].TraceID)
	}
}

func read(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(path, err)
	}
	return data
}

func fail(path string, err error) {
	fmt.Fprintf(os.Stderr, "obslint: %s: %v\n", path, err)
	os.Exit(1)
}
