// Command loadgen is the deterministic closed-loop load generator for
// cagmresd. It has two modes sharing one workload definition (k clients,
// each issuing n solve requests back-to-back with distinct right-hand
// sides):
//
//	-mode live     drives a running daemon over HTTP (POST /solve?wait)
//	               and reports wall-clock and server-side modeled
//	               latency percentiles. -traceparent stamps every
//	               request with a caller trace context and asserts the
//	               daemon echoes the same trace id; -traceout /
//	               -spansout / -sloout fetch the first job's Chrome
//	               trace, its span stream, and the /slo report after
//	               the run. -deadline-ms stamps a client deadline on
//	               every request (job body and Solve-Control header);
//	               429/503 structured rejections are retried up to
//	               -retries times, honoring Retry-After with seeded
//	               jittered backoff. Used by make serve-smoke and
//	               make trace-smoke.
//
//	-mode virtual  runs no server at all: it computes each request's
//	               modeled service time by executing the solver on a
//	               simulated device context, charges per-request RPC
//	               overhead through the virtual-time measure.ModelTimer,
//	               and replays the closed loop as an event simulation
//	               over the -pool device contexts. The reported
//	               percentiles, queue waits, and SLO burn rates are a
//	               pure function of the cost model — byte-identical on
//	               every machine — so -sweep produces a reproducible
//	               concurrency-vs-latency curve (EXPERIMENTS.md) and
//	               -slojson a pinnable SLO report.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"math/rand"

	"cagmres/internal/core"
	"cagmres/internal/gpu"
	"cagmres/internal/matgen"
	"cagmres/internal/measure"
	"cagmres/internal/obs"
	"cagmres/internal/server"
)

// artifacts collects the optional outputs either mode can produce.
type artifacts struct {
	traceparent string // live: send on every request and assert the echoed trace id
	traceOut    string // live: write the first job's /jobs/{id}/trace.json here
	spansOut    string // live: write the first job's /jobs/{id}/spans.jsonl here
	sloOut      string // live: write the /slo report here
	metricsOut  string // live: write the /metrics scrape here
	sloJSON     string // virtual: write the last sweep point's SLO replay report here
	deadlineMS  int64  // live: client deadline stamped on every request
	retries     int    // live: retry cap for 429/503 structured rejections
	retrySeed   int64  // live: seed for the backoff jitter streams
	precision   string // precision mode stamped on every solve body
}

func main() {
	var (
		mode       = flag.String("mode", "virtual", "live (drive a daemon over HTTP), cluster (drive a cagmres-router: shard spread + per-backend stats), or virtual (deterministic replay)")
		addr       = flag.String("addr", "", "daemon address for -mode live (host:port)")
		portFile   = flag.String("portfile", "", "read the daemon address from this file (written by cagmresd -portfile)")
		clients    = flag.Int("clients", 4, "concurrent closed-loop clients")
		requests   = flag.Int("requests", 4, "requests per client")
		sweep      = flag.String("sweep", "", "comma-separated client counts to sweep (virtual mode), e.g. 1,2,4,8,16")
		pool       = flag.Int("pool", 2, "device contexts serving the virtual replay")
		devices    = flag.Int("devices", 3, "simulated GPUs per context")
		matrix     = flag.String("matrix", "laplace3d", "generator matrix name")
		scale      = flag.Float64("scale", 1e-4, "generator scale")
		mFlag      = flag.Int("m", 30, "restart length")
		sFlag      = flag.Int("s", 5, "matrix-powers step")
		tol        = flag.Float64("tol", 1e-8, "convergence tolerance")
		metricsOut = flag.String("metricsout", "", "live mode: fetch /metrics after the run and write it here")
		traceparnt = flag.String("traceparent", "", "live mode: send this W3C traceparent on every request and assert the daemon echoes its trace id")
		traceOut   = flag.String("traceout", "", "live mode: fetch the first job's /jobs/{id}/trace.json after the run and write it here")
		spansOut   = flag.String("spansout", "", "live mode: fetch the first job's /jobs/{id}/spans.jsonl after the run and write it here")
		sloOut     = flag.String("sloout", "", "live mode: fetch /slo after the run and write it here")
		sloJSON    = flag.String("slojson", "", "virtual mode: write the final sweep point's deterministic SLO replay report as JSON here")
		deadlineMS = flag.Int64("deadline-ms", 0, "live mode: stamp this client deadline on every request (job body and Solve-Control header); 0 sends none")
		retries    = flag.Int("retries", 3, "live mode: retry cap per request for 429/503 structured rejections (Retry-After honored with seeded jittered backoff)")
		retrySeed  = flag.Int64("retry-seed", 1, "live mode: seed for the per-client backoff jitter streams")
		precFlag   = flag.String("precision", "", "precision mode stamped on every solve: fp64, mixed, or adaptive (empty omits the field)")
	)
	flag.Parse()
	arts := artifacts{
		traceparent: *traceparnt, traceOut: *traceOut, spansOut: *spansOut,
		sloOut: *sloOut, metricsOut: *metricsOut, sloJSON: *sloJSON,
		deadlineMS: *deadlineMS, retries: *retries, retrySeed: *retrySeed,
		precision: *precFlag,
	}
	if _, err := core.NormalizePrecision(*precFlag); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if err := run(*mode, *addr, *portFile, *clients, *requests, *sweep, *pool, *devices,
		*matrix, *scale, *mFlag, *sFlag, *tol, arts); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(mode, addr, portFile string, clients, requests int, sweep string, pool, devices int,
	matrix string, scale float64, m, s int, tol float64, arts artifacts) error {
	switch mode {
	case "live", "cluster":
		if portFile != "" {
			data, err := os.ReadFile(portFile)
			if err != nil {
				return err
			}
			addr = strings.TrimSpace(string(data))
		}
		if addr == "" {
			return fmt.Errorf("%s mode needs -addr or -portfile", mode)
		}
		return runLive(addr, clients, requests, matrix, scale, m, s, tol, mode == "cluster", arts)
	case "virtual":
		counts := []int{clients}
		if sweep != "" {
			counts = counts[:0]
			for _, f := range strings.Split(sweep, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil || v < 1 {
					return fmt.Errorf("bad -sweep entry %q", f)
				}
				counts = append(counts, v)
			}
		}
		return runVirtual(counts, requests, pool, devices, matrix, scale, m, s, tol, arts.precision, arts.sloJSON)
	}
	return fmt.Errorf("unknown mode %q (want live, cluster, or virtual)", mode)
}

// rhsFor builds the deterministic per-request right-hand side; request
// identity (client, i) maps to a seed so live and virtual runs solve
// the same systems.
func rhsFor(n, seed int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + 0.01*float64((i*131+seed*977)%67)
	}
	return b
}

// ---------------------------------------------------------------------
// live mode

// runLive drives a daemon (or, with cluster set, a cagmres-router) with
// a closed loop of waited solves. Cluster mode jitters the matrix scale
// per client so the shard keys spread over the backends, tallies the
// per-backend routing, and checks the aggregated /healthz afterwards.
func runLive(addr string, clients, requests int, matrix string, scale float64,
	m, s int, tol float64, cluster bool, arts artifacts) error {
	base := "http://" + addr
	gen, err := matgen.ByName(matrix, scale)
	if err != nil {
		return err
	}
	n := gen.A.Rows

	wantTrace := ""
	if arts.traceparent != "" {
		tid, _, ok := obs.ParseTraceparent(arts.traceparent)
		if !ok {
			return fmt.Errorf("bad -traceparent %q", arts.traceparent)
		}
		wantTrace = tid
	}

	type sample struct {
		wall    float64 // client-observed seconds
		modeled float64 // server-reported device seconds
	}
	// Cluster mode jitters the scale per client: the shard key is derived
	// from the exact scale string, so distinct clients land on distinct
	// backends while the generated problem stays the same size.
	scaleFor := func(c int) float64 {
		if !cluster {
			return scale
		}
		return scale * (1 + 1e-9*float64(c))
	}

	samples := make([][]sample, clients)
	firstJob := make([]string, clients)
	viaBackend := make([]map[string]int, clients)
	hopTotal := make([]int, clients)
	retried := make([]int, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			viaBackend[c] = make(map[string]int)
			// Each client gets its own seeded jitter stream so retry
			// schedules are reproducible yet decorrelated across clients
			// (correlated backoff would re-synchronize the thundering herd
			// the budget is there to prevent).
			rng := rand.New(rand.NewSource(arts.retrySeed + int64(c)))
			nc := n
			if cluster {
				g, err := matgen.ByName(matrix, scaleFor(c))
				if err != nil {
					errs[c] = err
					return
				}
				nc = g.A.Rows
			}
			for i := 0; i < requests; i++ {
				seed := c*requests + i
				payload := map[string]any{
					"matrix": map[string]any{"name": matrix, "scale": scaleFor(c)},
					"m":      m, "s": s, "tol": tol, "ortho": "CholQR",
					"rhs":  rhsFor(nc, seed),
					"wait": true,
				}
				if arts.deadlineMS > 0 {
					payload["deadline_ms"] = arts.deadlineMS
				}
				if arts.precision != "" {
					payload["precision"] = arts.precision
				}
				body, _ := json.Marshal(payload)
				t0 := time.Now()
				var resp *http.Response
				var data []byte
				var echo string
				for attempt := 0; ; attempt++ {
					req, err := http.NewRequest("POST", base+"/solve", bytes.NewReader(body))
					if err != nil {
						errs[c] = err
						return
					}
					req.Header.Set("Content-Type", "application/json")
					if arts.deadlineMS > 0 {
						req.Header.Set(server.SolveControlHeader,
							server.SolveControl{DeadlineMS: arts.deadlineMS}.String())
					}
					if arts.traceparent != "" {
						req.Header.Set("traceparent", arts.traceparent)
					}
					resp, err = http.DefaultClient.Do(req)
					if err != nil {
						errs[c] = err
						return
					}
					echo = resp.Header.Get("traceparent")
					data, err = io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						errs[c] = err
						return
					}
					if (resp.StatusCode == http.StatusTooManyRequests ||
						resp.StatusCode == http.StatusServiceUnavailable) && attempt < arts.retries {
						retried[c]++
						time.Sleep(backoff(resp.Header.Get("Retry-After"), attempt, rng))
						continue
					}
					break
				}
				if resp.StatusCode != http.StatusOK {
					errs[c] = fmt.Errorf("client %d request %d: status %d: %s", c, i, resp.StatusCode, data)
					return
				}
				if wantTrace != "" {
					tid, _, ok := obs.ParseTraceparent(echo)
					if !ok || tid != wantTrace {
						errs[c] = fmt.Errorf("client %d request %d: traceparent not echoed (sent trace %s, got %q)",
							c, i, wantTrace, echo)
						return
					}
				}
				var job struct {
					ID             string  `json:"id"`
					State          string  `json:"state"`
					Converged      bool    `json:"converged"`
					ModeledSeconds float64 `json:"modeled_seconds"`
					Backend        string  `json:"backend"`
					Hops           int     `json:"hops"`
				}
				if err := json.Unmarshal(data, &job); err != nil {
					errs[c] = err
					return
				}
				if job.State != "done" || !job.Converged {
					errs[c] = fmt.Errorf("client %d request %d: state=%s converged=%t", c, i, job.State, job.Converged)
					return
				}
				if cluster {
					if job.Backend == "" {
						errs[c] = fmt.Errorf("client %d request %d: cluster response without a backend (is %s a router?)", c, i, addr)
						return
					}
					viaBackend[c][job.Backend]++
					hopTotal[c] += job.Hops
				}
				if firstJob[c] == "" {
					firstJob[c] = job.ID
				}
				samples[c] = append(samples[c], sample{wall: time.Since(t0).Seconds(), modeled: job.ModeledSeconds})
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	var wall, modeled []float64
	for _, cs := range samples {
		for _, sm := range cs {
			wall = append(wall, sm.wall)
			modeled = append(modeled, sm.modeled)
		}
	}
	total := len(wall)
	modeName := "live"
	if cluster {
		modeName = "cluster"
	}
	fmt.Printf("loadgen %s: %d clients × %d requests against %s (%s n=%d)\n",
		modeName, clients, requests, addr, matrix, n)
	fmt.Printf("  completed %d solves in %.3fs wall (%.1f solves/s)\n",
		total, elapsed, float64(total)/elapsed)
	if arts.deadlineMS > 0 {
		fmt.Printf("  client deadline %dms stamped on every request (body + %s header)\n",
			arts.deadlineMS, server.SolveControlHeader)
	}
	totalRetried := 0
	for _, r := range retried {
		totalRetried += r
	}
	if totalRetried > 0 {
		fmt.Printf("  %d structured rejections retried (Retry-After honored, seeded jittered backoff)\n", totalRetried)
	}
	if cluster {
		dist := make(map[string]int)
		hops := 0
		for c := range viaBackend {
			for name, k := range viaBackend[c] {
				dist[name] += k
			}
			hops += hopTotal[c]
		}
		names := make([]string, 0, len(dist))
		for name := range dist {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, name := range names {
			parts[i] = fmt.Sprintf("%s:%d", name, dist[name])
		}
		fmt.Printf("  sharded over %d backends (%s), %.2f hops/solve\n",
			len(dist), strings.Join(parts, " "), float64(hops)/float64(total))
		if err := checkClusterHealth(base); err != nil {
			return err
		}
	}
	if wantTrace != "" {
		fmt.Printf("  traceparent echoed on all %d responses (trace %s)\n", total, wantTrace)
	}
	printPercentiles("wall latency", wall)
	printPercentiles("modeled device seconds", modeled)

	fetch := func(path, out string) error {
		resp, err := http.Get(base + path)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, data)
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s (%d bytes)\n", out, len(data))
		return nil
	}
	if arts.traceOut != "" || arts.spansOut != "" {
		job := firstJob[0]
		if job == "" {
			return fmt.Errorf("no completed job to fetch a trace for")
		}
		if arts.traceOut != "" {
			if err := fetch("/jobs/"+job+"/trace.json", arts.traceOut); err != nil {
				return err
			}
		}
		if arts.spansOut != "" {
			if err := fetch("/jobs/"+job+"/spans.jsonl", arts.spansOut); err != nil {
				return err
			}
		}
	}
	if arts.sloOut != "" {
		if err := fetch("/slo", arts.sloOut); err != nil {
			return err
		}
	}
	if arts.metricsOut != "" {
		if err := fetch("/metrics", arts.metricsOut); err != nil {
			return err
		}
	}
	return nil
}

// backoff computes the sleep before retrying a 429/503 structured
// rejection. The server's Retry-After is the floor when present
// (otherwise a doubling 25ms base), plus up to 50% seeded jitter so
// many clients' retries spread out instead of re-synchronizing into the
// herd the server just shed.
func backoff(retryAfter string, attempt int, rng *rand.Rand) time.Duration {
	base := 0.025 * float64(uint(1)<<uint(attempt))
	if retryAfter != "" {
		if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
			base = float64(secs)
		}
	}
	return time.Duration((base + rng.Float64()*0.5*base) * float64(time.Second))
}

// checkClusterHealth asserts the router's aggregated health view after
// a cluster-mode run: the federation must report OK with at least one
// healthy backend.
func checkClusterHealth(base string) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /healthz: status %d: %s", resp.StatusCode, data)
	}
	var h struct {
		OK       bool `json:"ok"`
		Degraded bool `json:"degraded"`
		Backends int  `json:"backends"`
		Healthy  int  `json:"healthy"`
		Reroutes int  `json:"reroutes"`
	}
	if err := json.Unmarshal(data, &h); err != nil {
		return fmt.Errorf("GET /healthz: %v: %s", err, data)
	}
	if !h.OK || h.Healthy == 0 {
		return fmt.Errorf("cluster unhealthy after run: %s", data)
	}
	fmt.Printf("  cluster healthz: ok, %d/%d backends healthy, degraded=%t, reroutes=%d\n",
		h.Healthy, h.Backends, h.Degraded, h.Reroutes)
	return nil
}

// ---------------------------------------------------------------------
// virtual mode

// runVirtual replays the closed loop in virtual time: modeled service
// seconds per request from the solver's own cost ledger, per-request
// RPC overhead from the measure.ModelTimer, and an event simulation of
// k clients contending for c device contexts. The same per-request
// (submit, start, finish) stamps feed an obs.SLOEngine on the virtual
// clock, so queue waits and burn rates are deterministic too.
func runVirtual(counts []int, requests, pool, devices int, matrix string, scale float64,
	m, s int, tol float64, precision, sloJSON string) error {
	gen, err := matgen.ByName(matrix, scale)
	if err != nil {
		return err
	}
	a := gen.A
	n := a.Rows
	maxClients := 0
	for _, c := range counts {
		if c > maxClients {
			maxClients = c
		}
	}

	// Modeled service time per request: run the actual solver over a
	// simulated context, read its ledger. Deterministic per seed.
	ctx := gpu.NewContext(devices, gpu.M2090())
	service := make([]float64, maxClients*requests)
	for seed := range service {
		ctx.ResetStats()
		prob, err := core.NewProblem(ctx, a, rhsFor(n, seed), core.KWay, true)
		if err != nil {
			return err
		}
		res, err := core.CAGMRES(prob, core.Options{M: m, S: s, Tol: tol, Ortho: "CholQR", Precision: precision})
		if err != nil {
			return err
		}
		if !res.Converged {
			return fmt.Errorf("seed %d did not converge (relres %.2e)", seed, res.RelRes)
		}
		service[seed] = res.Stats.TotalTime()
	}

	// Per-request RPC overhead: JSON decode + admission + response,
	// charged as a host kernel through the virtual-time model.
	timer := measure.NewModelTimer(gpu.M2090())
	reqBytes := float64(16 * n) // rhs in + x out, 8 bytes each way
	overhead := timer.Seconds(measure.Kernel{
		Name: "rpc", Bytes: reqBytes, Parallelism: 1, Dispatches: 4,
	})

	fmt.Printf("loadgen virtual: %s n=%d, pool %d×%d GPUs, %d requests/client, rpc overhead %.1fus\n",
		matrix, n, pool, devices, requests, overhead*1e6)
	fmt.Printf("%8s %10s %10s %10s %10s %10s %12s %10s %10s\n",
		"clients", "p50", "p90", "p99", "max", "mean", "throughput/s", "wait p50", "wait p99")
	var lastReport *obs.SLOReport
	for _, k := range counts {
		rs, makespan := replay(k, requests, pool, service, overhead)
		lat := make([]float64, len(rs))
		wait := make([]float64, len(rs))
		for i, r := range rs {
			lat[i] = r.finish - r.submit
			wait[i] = r.start - r.submit
		}
		sort.Float64s(lat)
		sort.Float64s(wait)
		fmt.Printf("%8d %10.4f %10.4f %10.4f %10.4f %10.4f %12.2f %10.4f %10.4f\n",
			k, pct(lat, 50), pct(lat, 90), pct(lat, 99), lat[len(lat)-1],
			mean(lat), float64(k*requests)/makespan, pct(wait, 50), pct(wait, 99))

		// SLO replay: judge every request against the default classes on
		// the virtual clock (sorted by finish, the order a live daemon
		// would observe them).
		eng := obs.NewSLOEngine(nil, obs.SLOConfig{})
		ordered := append([]reqSample(nil), rs...)
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].finish < ordered[j].finish })
		for _, r := range ordered {
			eng.ObserveAt(r.finish, 0, r.finish-r.submit, false)
		}
		rep := eng.ReportAt(makespan)
		for _, cr := range rep.Classes {
			if cr.Requests == 0 {
				continue
			}
			fmt.Printf("         slo %s: %d/%d bad, budget %.4f, burn fast %.4f slow %.4f\n",
				cr.Name, cr.Bad, cr.Requests, cr.BudgetRemaining, cr.BurnFast, cr.BurnSlow)
		}
		lastReport = &rep
	}
	if sloJSON != "" && lastReport != nil {
		data, err := json.MarshalIndent(lastReport, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(sloJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", sloJSON)
	}
	return nil
}

// reqSample is one replayed request's life in virtual seconds.
type reqSample struct {
	submit, start, finish float64
}

// replay event-simulates the closed loop: each of k clients submits its
// next request the moment the previous one finishes; c servers take the
// earliest-submitted pending request (FIFO). Returns each request's
// (submit, start, finish) stamps and the makespan, all in virtual
// seconds; latency is finish-submit and queue wait start-submit.
func replay(k, requests, c int, service []float64, overhead float64) (rs []reqSample, makespan float64) {
	type client struct {
		nextSubmit float64
		issued     int
	}
	clients := make([]client, k)
	servers := make([]float64, c) // freeAt
	for done := 0; done < k*requests; done++ {
		// Earliest-submitted pending client; index tiebreak keeps the
		// replay deterministic.
		ci := -1
		for i := range clients {
			if clients[i].issued >= requests {
				continue
			}
			if ci < 0 || clients[i].nextSubmit < clients[ci].nextSubmit {
				ci = i
			}
		}
		// Earliest-free server.
		si := 0
		for i := 1; i < c; i++ {
			if servers[i] < servers[si] {
				si = i
			}
		}
		cl := &clients[ci]
		seed := ci*requests + cl.issued
		submit := cl.nextSubmit
		start := submit
		if servers[si] > start {
			start = servers[si]
		}
		finish := start + service[seed] + overhead
		servers[si] = finish
		rs = append(rs, reqSample{submit: submit, start: start, finish: finish})
		cl.nextSubmit = finish
		cl.issued++
		if finish > makespan {
			makespan = finish
		}
	}
	return rs, makespan
}

func pct(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted)-1)*p/100 + 0.5)
	return sorted[idx]
}

func mean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func printPercentiles(label string, xs []float64) {
	sort.Float64s(xs)
	fmt.Printf("  %-24s p50=%.4fs p90=%.4fs p99=%.4fs max=%.4fs\n",
		label, pct(xs, 50), pct(xs, 90), pct(xs, 99), xs[len(xs)-1])
}
