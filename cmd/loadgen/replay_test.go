package main

import (
	"math"
	"sort"
	"testing"

	"cagmres/internal/obs"
)

// TestReplayPinsQueueWaitAndBurnRates is the issue's deterministic load
// test: a fixed service-time table through the closed-loop replay must
// produce exactly the queue waits computed here by hand, and feeding the
// same (submit, finish) stamps into the SLO engine on the virtual clock
// must pin the burn-rate and budget numbers.
func TestReplayPinsQueueWaitAndBurnRates(t *testing.T) {
	// 2 clients × 2 requests on 1 server. Seed layout: client c request i
	// uses service[c*requests+i].
	service := []float64{0.001, 0.002, 0.003, 0.004}
	const overhead = 0.0001
	rs, makespan := replay(2, 2, 1, service, overhead)
	if len(rs) != 4 {
		t.Fatalf("%d samples, want 4", len(rs))
	}
	// Hand replay (client 0 wins index tiebreaks at t=0):
	//  1. c0r0: submit 0,       start 0,       finish 0.0011
	//  2. c1r0: submit 0,       start 0.0011,  finish 0.0011+0.003+overhead
	//  3. c0r1: submit 0.0011,  start at c1r0's finish, +0.002+overhead
	//  4. c1r1: submit = c1r0 finish, start = c0r1 finish, +0.004+overhead
	f1 := service[0] + overhead
	f2 := f1 + service[2] + overhead
	f3 := f2 + service[1] + overhead
	f4 := f3 + service[3] + overhead
	want := []reqSample{
		{submit: 0, start: 0, finish: f1},
		{submit: 0, start: f1, finish: f2},
		{submit: f1, start: f2, finish: f3},
		{submit: f2, start: f3, finish: f4},
	}
	for i, w := range want {
		if rs[i] != w {
			t.Errorf("sample %d = %+v, want %+v (exact)", i, rs[i], w)
		}
	}
	if makespan != f4 {
		t.Errorf("makespan %v, want %v", makespan, f4)
	}

	// Queue waits are start-submit; pinned exactly.
	wantWaits := []float64{0, f1, f2 - f1, f3 - f2}
	sort.Float64s(wantWaits)
	var waits []float64
	for _, r := range rs {
		waits = append(waits, r.start-r.submit)
	}
	sort.Float64s(waits)
	for i := range waits {
		if waits[i] != wantWaits[i] {
			t.Errorf("wait[%d] = %v, want %v", i, waits[i], wantWaits[i])
		}
	}

	// Fast path: every latency is far under the default standard target
	// (5s), so the budget is untouched and nothing burns.
	eng := obs.NewSLOEngine(nil, obs.SLOConfig{})
	for _, r := range rs {
		eng.ObserveAt(r.finish, 0, r.finish-r.submit, false)
	}
	rep := eng.ReportAt(makespan)
	std := findClass(t, rep, "standard")
	if std.Requests != 4 || std.Bad != 0 {
		t.Fatalf("standard = %d/%d, want 4 good", std.Bad, std.Requests)
	}
	if std.BudgetRemaining != 1 || std.BurnFast != 0 || std.BurnSlow != 0 {
		t.Fatalf("fast-path SLO not pristine: %+v", std)
	}
	if rep.Degraded {
		t.Fatal("fast path degraded")
	}

	// Slow path: 6s services blow the 5s target on every request — the
	// burn rate in both windows is exactly 1/(1-objective) and the budget
	// 1 - 1/(1-objective), computed with the engine's own arithmetic.
	slow := []float64{6, 6, 6, 6}
	rs2, makespan2 := replay(2, 2, 1, slow, 0)
	eng2 := obs.NewSLOEngine(nil, obs.SLOConfig{})
	ordered := append([]reqSample(nil), rs2...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].finish < ordered[j].finish })
	for _, r := range ordered {
		eng2.ObserveAt(r.finish, 0, r.finish-r.submit, false)
	}
	rep2 := eng2.ReportAt(makespan2)
	std2 := findClass(t, rep2, "standard")
	if std2.Requests != 4 || std2.Bad != 4 {
		t.Fatalf("slow path = %d/%d bad, want 4/4", std2.Bad, std2.Requests)
	}
	objective := std2.Objective
	wantBurn := 1.0 / (1 - objective)
	wantBudget := 1 - float64(4)/((1-objective)*4)
	if std2.BurnFast != wantBurn || std2.BurnSlow != wantBurn {
		t.Fatalf("burn = %v/%v, want %v exactly", std2.BurnFast, std2.BurnSlow, wantBurn)
	}
	if std2.BudgetRemaining != wantBudget {
		t.Fatalf("budget = %v, want %v exactly", std2.BudgetRemaining, wantBudget)
	}
	if !std2.Degraded || !rep2.Degraded {
		t.Fatal("all-bad slow path not degraded")
	}
	if math.IsInf(wantBurn, 0) {
		t.Fatal("degenerate objective in default classes")
	}
}

func findClass(t *testing.T, rep obs.SLOReport, name string) obs.SLOClassReport {
	t.Helper()
	for _, c := range rep.Classes {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no class %q in %+v", name, rep)
	return obs.SLOClassReport{}
}
