package cagmres_test

import (
	"fmt"

	"cagmres"
)

// ExampleCAGMRES solves a small convection-diffusion system with
// CA-GMRES(5, 20) on two simulated GPUs.
func ExampleCAGMRES() {
	a := cagmres.Laplace2D(30, 30, 0.3)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	ctx := cagmres.NewContext(2)
	p, err := cagmres.NewProblem(ctx, a, b, cagmres.KWay, true)
	if err != nil {
		panic(err)
	}
	res, err := cagmres.CAGMRES(p, cagmres.Options{M: 20, S: 5, Tol: 1e-8, Ortho: "CholQR"})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("residual below 1e-6:", cagmres.ResidualNorm(a, b, res.X) < 1e-6)
	// Output:
	// converged: true
	// residual below 1e-6: true
}

// ExampleGMRES runs the standard-GMRES baseline and inspects the
// communication ledger.
func ExampleGMRES() {
	a := cagmres.Laplace2D(20, 20, 0.2)
	b := make([]float64, a.Rows)
	b[0] = 1
	ctx := cagmres.NewContext(3)
	p, err := cagmres.NewProblem(ctx, a, b, cagmres.Natural, false)
	if err != nil {
		panic(err)
	}
	res, err := cagmres.GMRES(p, cagmres.Options{M: 30, Tol: 1e-8, Ortho: "MGS"})
	if err != nil {
		panic(err)
	}
	orth := res.Stats.Phase("orth")
	spmv := res.Stats.Phase("spmv")
	fmt.Println("converged:", res.Converged)
	fmt.Println("MGS communicates more than SpMV:", orth.Rounds > spmv.Rounds)
	// Output:
	// converged: true
	// MGS communicates more than SpMV: true
}

// ExampleTSQRByName factors a tall-skinny window directly with a chosen
// strategy and measures its quality.
func ExampleTSQRByName() {
	strat, err := cagmres.TSQRByName("CholQR")
	if err != nil {
		panic(err)
	}
	v := cagmres.RandomTallSkinny(2000, 10, 1e2, 42)
	ctx := cagmres.NewContext(2)
	w := cagmres.SplitRows(v, 2)
	orig := cagmres.CloneWindow(w)
	r, err := strat.Factor(ctx, w, "tsqr")
	if err != nil {
		panic(err)
	}
	e := cagmres.MeasureTSQR(w, orig, r)
	fmt.Println("transfers:", ctx.Stats().Phase("tsqr").Rounds)
	fmt.Println("orthogonal to 1e-10:", e.Orthogonality < 1e-10)
	// Output:
	// transfers: 2
	// orthogonal to 1e-10: true
}

// ExampleRitzValues approximates the dominant eigenvalue of an operator
// with CA-Arnoldi.
func ExampleRitzValues() {
	a := cagmres.Laplace2D(25, 25, 0) // symmetric: eigenvalues in (0, 8)
	ctx := cagmres.NewContext(2)
	p, err := cagmres.NewProblem(ctx, a, make([]float64, a.Rows), cagmres.Natural, false)
	if err != nil {
		panic(err)
	}
	start := make([]float64, a.Rows)
	for i := range start {
		start[i] = 1 + float64(i%3)
	}
	ritz, err := cagmres.RitzValues(p, cagmres.Options{M: 30, S: 6, Ortho: "CholQR"}, start)
	if err != nil {
		panic(err)
	}
	dominant := real(ritz[0])
	fmt.Println("dominant Ritz value near 8:", dominant > 7.5 && dominant < 8)
	// Output:
	// dominant Ritz value near 8: true
}
