# Repo gates. `make check` is the full pre-merge bar: vet, the race
# detector over the concurrency hot spots (gpu.RunAll and the Stats
# ledger, la's panel-parallel kernels, the ortho strategies on top of
# them), then the whole deterministic test suite.

GO ?= go

.PHONY: check build vet test race measured golden

check: vet race test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/gpu/... ./internal/la/... ./internal/ortho/...

# Opt-in wall-clock kernel comparison (needs an unloaded machine).
measured:
	$(GO) test ./internal/bench/ -run Measured -measured -count=1 -v

# Regenerate the golden report-format files after an intentional change.
golden:
	$(GO) test ./internal/gpu/ -run Golden -update -count=1
	$(GO) test ./internal/bench/ -run WriteCSV -update -count=1
