# Repo gates. `make check` is the full pre-merge bar: vet, staticcheck
# (when installed), the race detector over the concurrency hot spots
# (gpu.RunAll and the Stats ledger, la's panel-parallel kernels, the
# ortho strategies on top of them, and the sched/server serving stack),
# then the whole deterministic test suite, then the serving smoke test.
# `make metrics-smoke` exercises the observability surface end-to-end:
# a small solve with telemetry/metrics/trace output, each artifact
# validated by cmd/obslint. `make serve-smoke` boots cagmresd, drives
# it with the closed-loop load generator, lints the daemon's /metrics
# (required scheduler families included) and checks graceful SIGTERM
# drain. `make chaos-smoke` replays a seeded fault plan — device death
# mid-solve, transfer-fault stream — through the chaos harness and a
# chaos-armed daemon, requiring every fault/retry metric family and a
# clean drain from the degraded service. `make overlap-smoke` is the
# stream-engine regression gate: the overlapped schedule must strictly
# beat the synchronous one on the full device count. `make trace-smoke`
# drives a traced workload through the daemon and validates the
# request-tracing/SLO surface: traceparent round trip, span-stream lint,
# stitched Chrome trace, /slo report, and the slo_*/trace_* families.
# `make cluster-smoke` federates 3 in-process nodes behind
# cagmres-router, kills one mid-run, and requires re-routing, health
# degrade/recover, a bit-identical chaos replay, and a graceful drain.
# `make overload-smoke` arms the full containment stack (retry budget,
# breakers, deadline propagation, brownout) on a 2-node federation,
# checks every structured-rejection path end-to-end, and replays the
# deterministic retry-storm scenario (containment off collapses
# goodput, on holds it, bit-identically). `make precision-smoke` boots
# cagmresd on a bf16-capable profile with a mixed default, checks the
# daemon default/override semantics of the precision field over real
# HTTP, requires a bit-identical mixed replay and the
# solver_precision_* metric families, and drains cleanly.

GO ?= go

.PHONY: check build vet staticcheck test race measured golden metrics-smoke serve-smoke chaos-smoke overlap-smoke trace-smoke cluster-smoke overload-smoke precision-smoke fuzz-smoke cover-profile bench-snapshot

check: vet staticcheck race test fuzz-smoke cover-profile serve-smoke chaos-smoke overlap-smoke trace-smoke cluster-smoke overload-smoke precision-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when present, skip without
# failing when the host doesn't have it installed.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./internal/gpu/... ./internal/la/... ./internal/ortho/... ./internal/obs/... \
		./internal/sched/... ./internal/server/... ./internal/profile/... ./internal/dist/... \
		./internal/cluster/... ./cmd/loadgen/...

# Opt-in wall-clock kernel comparison (needs an unloaded machine).
measured:
	$(GO) test ./internal/bench/ -run Measured -measured -count=1 -v

# Regenerate the golden report-format files after an intentional change.
golden:
	$(GO) test ./internal/gpu/ -run Golden -update -count=1
	$(GO) test ./internal/bench/ -run WriteCSV -update -count=1

# End-to-end observability smoke test: solve a small generated problem
# with every artifact enabled, then validate the Prometheus exposition,
# the telemetry stream (monotone clock, trailing done record) and the
# Chrome trace with cmd/obslint.
SMOKEDIR := $(or $(TMPDIR),/tmp)/cagmres-smoke
metrics-smoke:
	mkdir -p $(SMOKEDIR)
	$(GO) run ./cmd/cagmres -matrix laplace3d -scale 0.001 -solver ca -s 5 -m 20 -tol 1e-6 \
		-telemetry $(SMOKEDIR)/out.jsonl -metrics $(SMOKEDIR)/out.prom \
		-traceout $(SMOKEDIR)/out.trace.json > $(SMOKEDIR)/solve.log
	$(GO) run ./cmd/obslint -prom $(SMOKEDIR)/out.prom -jsonl $(SMOKEDIR)/out.jsonl \
		-trace $(SMOKEDIR)/out.trace.json

# Serving smoke test: daemon + load generator + metrics lint + drain.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh

# Chaos smoke test: seeded fault plan through the in-process harness
# and a chaos-armed daemon; fault/retry metric families required.
chaos-smoke:
	GO="$(GO)" sh scripts/chaos_smoke.sh

# Tracing/SLO smoke test: traced load through the daemon, span-stream
# lint, stitched Chrome trace, /slo report, slo_*/trace_* families.
trace-smoke:
	GO="$(GO)" sh scripts/trace_smoke.sh

# Cluster smoke test: router + 3 in-process backends, cluster loadgen,
# kill a node mid-run (healthz degrades, solves re-route to survivors),
# revive (healthz recovers), chaos cluster replay, graceful drain.
cluster-smoke:
	GO="$(GO)" sh scripts/cluster_smoke.sh

# Overload-containment smoke test: deadline propagation, SLO-driven
# brownout, deadline-infeasibility rejection, resilience metric
# families, and the deterministic retry-storm replay.
overload-smoke:
	GO="$(GO)" sh scripts/overload_smoke.sh

# Mixed-precision smoke test: daemon default/override semantics of the
# precision field over real HTTP, bit-identical mixed replay, and the
# solver_precision_* metric families.
precision-smoke:
	GO="$(GO)" sh scripts/precision_smoke.sh

# Overlap regression smoke: the stream schedule must strictly beat the
# synchronous schedule on the full device count for every basis depth
# of the Figure 11 configuration (exit 1 on any regression).
overlap-smoke:
	$(GO) run ./cmd/experiments -fig overlap -overlapcheck > /dev/null

# Short-budget fuzz pass over the hostile-input surfaces: the
# MatrixMarket body of POST /solve, the machine-profile JSON decoder,
# the router's backend-response decoder, the Solve-Control header
# parser, and the precision field of the solve body. The committed
# corpora replay first, so regressions fail fast even when the random
# budget finds nothing new.
fuzz-smoke:
	$(GO) test ./internal/server/ -run '^$$' -fuzz FuzzMatrixMarketSpec -fuzztime 5s
	$(GO) test ./internal/server/ -run '^$$' -fuzz FuzzParseSolveControl -fuzztime 5s
	$(GO) test ./internal/server/ -run '^$$' -fuzz FuzzPrecisionField -fuzztime 5s
	$(GO) test ./internal/profile/ -run '^$$' -fuzz FuzzDecode -fuzztime 5s
	$(GO) test ./internal/cluster/ -run '^$$' -fuzz FuzzRouterDecode -fuzztime 5s

# Coverage floor for the machine-profile package: the conformance suite
# is the fence the profile refactor landed behind, so its coverage must
# not rot.
PROFILE_COVER_FLOOR := 90.0
cover-profile:
	@out=$$($(GO) test -cover ./internal/profile/ | tail -1); \
	echo "$$out"; \
	echo "$$out" | awk -v floor=$(PROFILE_COVER_FLOOR) '{ for (i = 1; i <= NF; i++) if ($$i ~ /%$$/) { sub(/%/, "", $$i); if ($$i + 0 < floor + 0) { printf "internal/profile coverage %s%% below floor %s%%\n", $$i, floor; exit 1 } } }'

# Refresh the committed benchmark snapshots: the modeled overlap study
# (deterministic) plus the host GEMM wall-clock comparison (machine-
# dependent by nature; warmup + best-of-5), the interconnect-topology
# study, the standing-figures rerun, the multi-node cluster scaling
# study, the overload-containment study, and the mixed-precision study
# (all deterministic).
bench-snapshot:
	$(GO) run ./cmd/experiments -fig overlap -benchjson BENCH_pr5.json > /dev/null
	$(GO) run ./cmd/experiments -fig topology -devices 4 -topologyjson BENCH_pr6.json > /dev/null
	$(GO) run ./cmd/experiments -fig overlap -devices 4 -standingjson BENCH_pr7.json > /dev/null
	$(GO) run ./cmd/experiments -fig cluster -clusterjson BENCH_pr8.json > /dev/null
	$(GO) run ./cmd/experiments -fig overload -overloadjson BENCH_pr9.json > /dev/null
	$(GO) run ./cmd/experiments -fig precision -precisionjson BENCH_pr10.json > /dev/null
