package cagmres

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation, each wrapping the corresponding driver in
// internal/bench at a laptop-sized scale. Run them all with
//
//	go test -bench=. -benchmem
//
// and regenerate the full printed tables with cmd/experiments. Per-kernel
// micro-benchmarks live next to their packages (internal/la,
// internal/sparse, internal/dist, internal/ortho).

import (
	"testing"

	"cagmres/internal/bench"
)

// benchConfig is the shared laptop-scale configuration.
func benchConfig() bench.Config {
	return bench.Config{Scale: 0.004, MaxDevices: 3, MaxRestarts: 4}
}

// BenchmarkFig3GMRESDevices times the GMRES platform comparison (CPU vs
// 1..3 simulated GPUs, Figure 3).
func BenchmarkFig3GMRESDevices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig3(benchConfig())
	}
}

// BenchmarkFig6SurfaceToVolume sweeps the MPK surface-to-volume ratios
// (Figure 6).
func BenchmarkFig6SurfaceToVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig6(benchConfig())
	}
}

// BenchmarkFig7CommVolume sweeps the MPK communication volumes (Figure 7).
func BenchmarkFig7CommVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig7(benchConfig())
	}
}

// BenchmarkFig8MPK times the matrix powers kernel generating 100 basis
// vectors across s = 1..10 (Figure 8).
func BenchmarkFig8MPK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig8(benchConfig())
	}
}

// BenchmarkFig10Properties regenerates the TSQR strategy property table
// with measured transfer counts (Figure 10).
func BenchmarkFig10Properties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig10(benchConfig())
	}
}

// BenchmarkFig11Kernels measures the tall-skinny GEMM/GEMV host kernels,
// serial vs batched (Figure 11a/b).
func BenchmarkFig11Kernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig11ab(benchConfig())
	}
}

// BenchmarkFig11TSQR measures TSQR effective throughput for all five
// strategies on 1..3 devices (Figure 11c).
func BenchmarkFig11TSQR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig11c(benchConfig())
	}
}

// BenchmarkFig13OrthoErrors runs the TSQR error study inside CA-GMRES
// (Figure 13).
func BenchmarkFig13OrthoErrors(b *testing.B) {
	cfg := benchConfig()
	cfg.MaxRestarts = 2
	for i := 0; i < b.N; i++ {
		bench.Fig13(cfg)
	}
}

// BenchmarkFig14CAGMRES regenerates the main CA-GMRES vs GMRES table
// (Figure 14).
func BenchmarkFig14CAGMRES(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 0.002
	for i := 0; i < b.N; i++ {
		bench.Fig14(cfg)
	}
}

// BenchmarkFig15Summary regenerates the normalized four-matrix summary
// (Figure 15).
func BenchmarkFig15Summary(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 0.002
	for i := 0; i < b.N; i++ {
		bench.Fig15(cfg)
	}
}
