package la

import "fmt"

// Gemv computes y := alpha*A*x + beta*y for a column-major Dense A.
// A is Rows x Cols, x has length Cols, y has length Rows.
//
// The loop is organized along columns (axpy form) so that each column of A
// is traversed contiguously, which is the cache-friendly direction for
// column-major tall-skinny matrices. The beta scaling is fused into the
// first contributing column update instead of a separate pass over y, so a
// beta != 1 call streams y through the cache one time fewer; y is scaled
// at the end only when no column contributes (alpha == 0 or all-zero x).
func Gemv(alpha float64, a *Dense, x []float64, beta float64, y []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("la: Gemv shape mismatch A=%dx%d x=%d y=%d", a.Rows, a.Cols, len(x), len(y)))
	}
	scaled := beta == 1
	for j := 0; j < a.Cols; j++ {
		axj := alpha * x[j]
		if axj == 0 {
			continue
		}
		col := a.Col(j)
		switch {
		case scaled:
			for i, v := range col {
				y[i] += axj * v
			}
		case beta == 0:
			for i, v := range col {
				y[i] = axj * v
			}
			scaled = true
		default:
			for i, v := range col {
				// Two statements so the compiler cannot contract the
				// scale and the update into one fused multiply-add,
				// keeping results bit-identical to the two-pass form.
				t := beta * y[i]
				y[i] = t + axj*v
			}
			scaled = true
		}
	}
	if !scaled {
		if beta == 0 {
			Zero(y)
		} else {
			Scal(beta, y)
		}
	}
}

// GemvT computes y := alpha*A'*x + beta*y. A is Rows x Cols, x has length
// Rows, y has length Cols. Each y[j] is a dot product of column j with x,
// again contiguous in column-major layout. This is the kernel behind the
// CGS projection r = V' v.
func GemvT(alpha float64, a *Dense, x []float64, beta float64, y []float64) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic(fmt.Sprintf("la: GemvT shape mismatch A=%dx%d x=%d y=%d", a.Rows, a.Cols, len(x), len(y)))
	}
	for j := 0; j < a.Cols; j++ {
		d := Dot(a.Col(j), x)
		if beta == 0 {
			y[j] = alpha * d
		} else {
			y[j] = alpha*d + beta*y[j]
		}
	}
}

// GemmNN computes C := alpha*A*B + beta*C with A (m x k), B (k x n),
// C (m x n). The kernel iterates B column-by-column and applies the axpy
// form of Gemv, keeping all accesses to A and C contiguous per column.
func GemmNN(alpha float64, a, b *Dense, beta float64, c *Dense) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("la: GemmNN shape mismatch A=%dx%d B=%dx%d C=%dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	if minDim3(a.Rows, a.Cols, b.Cols) >= gemmTileMin {
		gemmNNTiled(alpha, a, b, beta, c)
		return
	}
	for j := 0; j < b.Cols; j++ {
		Gemv(alpha, a, b.Col(j), beta, c.Col(j))
	}
}

// GemmTN computes C := alpha*A'*B + beta*C with A (k x m), B (k x n),
// C (m x n). With A and B tall-skinny this is the Gram-matrix kernel
// B := V'V of CholQR and SVQR.
func GemmTN(alpha float64, a, b *Dense, beta float64, c *Dense) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("la: GemmTN shape mismatch A=%dx%d B=%dx%d C=%dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	if minDim3(a.Rows, a.Cols, b.Cols) >= gemmTileMin {
		gemmTNTiled(alpha, a, b, beta, c)
		return
	}
	for j := 0; j < b.Cols; j++ {
		bj := b.Col(j)
		cj := c.Col(j)
		for i := 0; i < a.Cols; i++ {
			d := Dot(a.Col(i), bj)
			if beta == 0 {
				cj[i] = alpha * d
			} else {
				cj[i] = alpha*d + beta*cj[i]
			}
		}
	}
}

// Syrk computes the symmetric rank-k update C := A'*A for tall-skinny A,
// filling both triangles of the (A.Cols x A.Cols) result. Only the upper
// triangle is computed by dot products; the lower triangle is mirrored.
func Syrk(a *Dense, c *Dense) {
	n := a.Cols
	if c.Rows != n || c.Cols != n {
		panic(fmt.Sprintf("la: Syrk shape mismatch A=%dx%d C=%dx%d", a.Rows, a.Cols, c.Rows, c.Cols))
	}
	for j := 0; j < n; j++ {
		aj := a.Col(j)
		for i := 0; i <= j; i++ {
			d := Dot(a.Col(i), aj)
			c.Set(i, j, d)
			c.Set(j, i, d)
		}
	}
}

// TrsmRightUpper solves V := V * inv(R) in place for an upper-triangular
// R (n x n) and V (m x n). This is the final step of CholQR: the basis
// panel is multiplied by the inverse Cholesky factor column by column.
func TrsmRightUpper(v *Dense, r *Dense) {
	n := v.Cols
	if r.Rows != n || r.Cols != n {
		panic(fmt.Sprintf("la: TrsmRightUpper shape mismatch V=%dx%d R=%dx%d", v.Rows, v.Cols, r.Rows, r.Cols))
	}
	for j := 0; j < n; j++ {
		vj := v.Col(j)
		// v_j := (v_j - sum_{i<j} v_i * r_ij) / r_jj
		for i := 0; i < j; i++ {
			Axpy(-r.At(i, j), v.Col(i), vj)
		}
		d := r.At(j, j)
		if d == 0 {
			panic("la: TrsmRightUpper singular R")
		}
		Scal(1/d, vj)
	}
}

// TrmmRightUpper computes V := V * R in place for upper-triangular R.
// Columns are updated right-to-left so earlier columns are still the
// original values when consumed.
func TrmmRightUpper(v *Dense, r *Dense) {
	n := v.Cols
	if r.Rows != n || r.Cols != n {
		panic(fmt.Sprintf("la: TrmmRightUpper shape mismatch V=%dx%d R=%dx%d", v.Rows, v.Cols, r.Rows, r.Cols))
	}
	for j := n - 1; j >= 0; j-- {
		vj := v.Col(j)
		Scal(r.At(j, j), vj)
		for i := 0; i < j; i++ {
			Axpy(r.At(i, j), v.Col(i), vj)
		}
	}
}
