package la

import (
	"math/rand"
	"testing"
)

func TestBlockedQRMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	for _, tc := range []struct{ m, n, nb int }{
		{40, 12, 4}, // multiple full blocks
		{50, 13, 5}, // ragged last block
		{30, 7, 16}, // block bigger than n (degenerates to unblocked)
		{64, 20, 1}, // nb=1 (pure unblocked path through block code)
		{25, 25, 6}, // square
	} {
		a := randDense(rng, tc.m, tc.n)
		fb := BlockedQR(a, tc.nb)
		fu := HouseholderQR(a)

		rb, ru := fb.R(), fu.R()
		FixRSigns(nil, rb)
		FixRSigns(nil, ru)
		if !rb.Equalish(ru, 1e-10*(1+ru.MaxAbs())) {
			t.Fatalf("%+v: R factors disagree", tc)
		}

		// Q from the blocked factorization must be orthonormal and
		// reconstruct A.
		q := fb.FormQ()
		qtq := NewDense(tc.n, tc.n)
		GemmTN(1, q, q, 0, qtq)
		if !qtq.Equalish(Eye(tc.n), 1e-11) {
			t.Fatalf("%+v: blocked Q not orthonormal", tc)
		}
		qr := NewDense(tc.m, tc.n)
		GemmNN(1, q, fb.R(), 0, qr)
		if !qr.Equalish(a, 1e-10*(1+a.MaxAbs())) {
			t.Fatalf("%+v: blocked QR != A", tc)
		}
	}
}

func TestBlockedQRApplyQT(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	a := randDense(rng, 60, 18)
	f := BlockedQR(a, 6)
	x := randVec(rng, 60)
	x2 := append([]float64(nil), x...)
	f.ApplyQT(x)
	q := f.FormQ()
	want := make([]float64, 18)
	GemvT(1, q, x2, 0, want)
	for j := range want {
		if !almostEq(x[j], want[j], 1e-10) {
			t.Fatalf("ApplyQT[%d] = %v, want %v", j, x[j], want[j])
		}
	}
}

func TestBlockedQRZeroColumn(t *testing.T) {
	a := NewDense(20, 6)
	rng := rand.New(rand.NewSource(602))
	for j := 0; j < 6; j++ {
		if j == 3 {
			continue // column 3 stays zero
		}
		col := a.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	f := BlockedQR(a, 4)
	q := f.FormQ()
	for j := 0; j < 6; j++ {
		for _, v := range q.Col(j) {
			if v != v { // NaN check
				t.Fatal("NaN in blocked Q with zero column")
			}
		}
	}
}

func TestBlockedQRDefaultBlockSize(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	a := randDense(rng, 30, 10)
	f := BlockedQR(a, 0) // defaults internally
	r := f.R()
	for j := 0; j < 10; j++ {
		for i := j + 1; i < 10; i++ {
			if r.At(i, j) != 0 {
				t.Fatal("R not triangular")
			}
		}
	}
}

func BenchmarkHouseholderQRWide(b *testing.B) {
	rng := rand.New(rand.NewSource(604))
	a := randDense(rng, 4096, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = HouseholderQR(a)
	}
}

func BenchmarkBlockedQRWide(b *testing.B) {
	rng := rand.New(rand.NewSource(605))
	a := randDense(rng, 4096, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BlockedQR(a, 16)
	}
}
