package la

import (
	"fmt"
	"math"
)

// QRCPFactor holds a Householder QR factorization with column pivoting,
// A*P = Q*R, the building block of the rank-revealing orthogonalization
// the paper lists as future work (Demmel, Grigori, Gu, Xiang — its
// reference [10]). Perm maps output column j to original column Perm[j].
type QRCPFactor struct {
	QR   *Dense
	Tau  []float64
	Perm []int
}

// QRCP computes the column-pivoted QR factorization of a copy of A
// (m >= n): at each step the remaining column with the largest partial
// norm is swapped to the front, so R's diagonal is non-increasing in
// magnitude and reveals the numerical rank.
func QRCP(a *Dense) *QRCPFactor {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("la: QRCP needs rows >= cols, got %dx%d", m, n))
	}
	qr := a.Clone()
	tau := make([]float64, n)
	perm := make([]int, n)
	for j := range perm {
		perm[j] = j
	}
	// Partial column norms, updated (and occasionally recomputed for
	// accuracy) after each reflector, LAPACK dgeqp3-style.
	colNorm := make([]float64, n)
	colNormRef := make([]float64, n)
	for j := 0; j < n; j++ {
		colNorm[j] = Nrm2(qr.Col(j))
		colNormRef[j] = colNorm[j]
	}
	for k := 0; k < n; k++ {
		// Pivot: remaining column with the largest partial norm.
		best := k
		for j := k + 1; j < n; j++ {
			if colNorm[j] > colNorm[best] {
				best = j
			}
		}
		if best != k {
			swapCols(qr, k, best)
			perm[k], perm[best] = perm[best], perm[k]
			colNorm[k], colNorm[best] = colNorm[best], colNorm[k]
			colNormRef[k], colNormRef[best] = colNormRef[best], colNormRef[k]
		}
		// Householder reflector for column k (as in HouseholderQR).
		col := qr.Col(k)
		alpha := col[k]
		norm := Nrm2(col[k:])
		if norm == 0 {
			tau[k] = 0
			continue
		}
		beta := -math.Copysign(norm, alpha)
		tau[k] = (beta - alpha) / beta
		scale := 1 / (alpha - beta)
		for i := k + 1; i < m; i++ {
			col[i] *= scale
		}
		col[k] = beta
		for j := k + 1; j < n; j++ {
			cj := qr.Col(j)
			w := cj[k]
			for i := k + 1; i < m; i++ {
				w += col[i] * cj[i]
			}
			w *= tau[k]
			cj[k] -= w
			for i := k + 1; i < m; i++ {
				cj[i] -= w * col[i]
			}
			// Downdate the partial norm; recompute when cancellation
			// makes the running value unreliable.
			if colNorm[j] != 0 {
				t := math.Abs(cj[k]) / colNorm[j]
				f := math.Max(0, 1-t*t)
				if f*(colNorm[j]/colNormRef[j])*(colNorm[j]/colNormRef[j]) < 1e-14 {
					colNorm[j] = Nrm2(cj[k+1:])
					colNormRef[j] = colNorm[j]
				} else {
					colNorm[j] *= math.Sqrt(f)
				}
			}
		}
	}
	return &QRCPFactor{QR: qr, Tau: tau, Perm: perm}
}

func swapCols(a *Dense, i, j int) {
	ci, cj := a.Col(i), a.Col(j)
	for k := range ci {
		ci[k], cj[k] = cj[k], ci[k]
	}
}

// R returns the n x n upper-triangular factor (of the pivoted matrix).
func (f *QRCPFactor) R() *Dense {
	n := f.QR.Cols
	r := NewDense(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j && i < f.QR.Rows; i++ {
			r.Set(i, j, f.QR.At(i, j))
		}
	}
	return r
}

// FormQ materializes the thin Q factor.
func (f *QRCPFactor) FormQ() *Dense {
	h := &QRFactor{QR: f.QR, Tau: f.Tau}
	return h.FormQ()
}

// Rank estimates the numerical rank: the number of leading diagonal
// entries of R with |r_kk| > tol * |r_00|. With tol <= 0 a default of
// n * eps is used.
func (f *QRCPFactor) Rank(tol float64) int {
	n := f.QR.Cols
	if n == 0 {
		return 0
	}
	if tol <= 0 {
		tol = float64(n) * 2.220446049250313e-16
	}
	r00 := math.Abs(f.QR.At(0, 0))
	if r00 == 0 {
		return 0
	}
	rank := 0
	for k := 0; k < n && k < f.QR.Rows; k++ {
		if math.Abs(f.QR.At(k, k)) > tol*r00 {
			rank++
		} else {
			break
		}
	}
	return rank
}

// PermMatrix returns the n x n permutation matrix P with A*P = Q*R.
func (f *QRCPFactor) PermMatrix() *Dense {
	n := len(f.Perm)
	p := NewDense(n, n)
	for j, src := range f.Perm {
		p.Set(src, j, 1)
	}
	return p
}
