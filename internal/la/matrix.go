package la

import (
	"fmt"
	"math"
)

// Dense is a column-major dense matrix. Column-major layout is chosen
// because the solver manipulates tall-skinny basis matrices
// V = [v_1 v_2 ... v_{s+1}] whose columns must be cheap to address as
// contiguous vectors: Col(j) is a zero-copy slice.
//
// Stride is the distance in elements between the starts of consecutive
// columns; it is at least Rows and allows views of larger allocations
// (the paper pads the leading dimension of V to a multiple of the panel
// height for the batched GEMM — we support the same pattern).
type Dense struct {
	Rows   int
	Cols   int
	Stride int
	Data   []float64
}

// NewDense allocates a Rows x Cols zero matrix with Stride == Rows.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("la: NewDense negative dimension %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Stride: rows, Data: make([]float64, rows*cols)}
}

// NewDenseStride allocates a Rows x Cols zero matrix with the given
// column stride (>= rows). Padding rows are kept at zero.
func NewDenseStride(rows, cols, stride int) *Dense {
	if stride < rows {
		panic(fmt.Sprintf("la: NewDenseStride stride %d < rows %d", stride, rows))
	}
	return &Dense{Rows: rows, Cols: cols, Stride: stride, Data: make([]float64, stride*cols)}
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[j*m.Stride+i] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[j*m.Stride+i] = v }

// Col returns column j as a zero-copy slice of length Rows.
func (m *Dense) Col(j int) []float64 {
	return m.Data[j*m.Stride : j*m.Stride+m.Rows]
}

// ColView returns a Dense view of columns [j0, j1) sharing storage with m.
func (m *Dense) ColView(j0, j1 int) *Dense {
	if j0 < 0 || j1 < j0 || j1 > m.Cols {
		panic(fmt.Sprintf("la: ColView [%d,%d) out of range with %d cols", j0, j1, m.Cols))
	}
	return &Dense{
		Rows:   m.Rows,
		Cols:   j1 - j0,
		Stride: m.Stride,
		Data:   m.Data[j0*m.Stride : j0*m.Stride+(j1-j0)*m.Stride],
	}
}

// RowView returns a Dense view of rows [i0, i1) sharing storage with m.
// The view keeps m's stride.
func (m *Dense) RowView(i0, i1 int) *Dense {
	if i0 < 0 || i1 < i0 || i1 > m.Rows {
		panic(fmt.Sprintf("la: RowView [%d,%d) out of range with %d rows", i0, i1, m.Rows))
	}
	n := len(m.Data) - i0
	if m.Cols == 0 {
		n = 0
	}
	return &Dense{Rows: i1 - i0, Cols: m.Cols, Stride: m.Stride, Data: m.Data[i0 : i0+n]}
}

// Clone returns a deep copy of m with a compact stride.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		copy(c.Col(j), m.Col(j))
	}
	return c
}

// CopyFrom copies the contents of src into m. Shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("la: CopyFrom shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for j := 0; j < m.Cols; j++ {
		copy(m.Col(j), src.Col(j))
	}
}

// Zero sets all elements (including any stride padding rows inside the
// column span) to zero.
func (m *Dense) Zero() {
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for i := range col {
			col[i] = 0
		}
	}
}

// Eye returns the n x n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Transpose returns a newly allocated transpose of m.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i, v := range col {
			t.Set(j, i, v)
		}
	}
	return t
}

// FrobNorm returns the Frobenius norm of m.
func (m *Dense) FrobNorm() float64 {
	var scale, ssq float64
	ssq = 1
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			if v == 0 {
				continue
			}
			a := math.Abs(v)
			if scale < a {
				r := scale / a
				ssq = 1 + ssq*r*r
				scale = a
			} else {
				r := a / scale
				ssq += r * r
			}
		}
	}
	return scale * math.Sqrt(ssq)
}

// MaxAbs returns the largest absolute element of m.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			if a := math.Abs(v); a > mx {
				mx = a
			}
		}
	}
	return mx
}

// Equalish reports whether m and b have the same shape and agree
// element-wise within tol.
func (m *Dense) Equalish(b *Dense, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for j := 0; j < m.Cols; j++ {
		mc, bc := m.Col(j), b.Col(j)
		for i := range mc {
			if math.Abs(mc[i]-bc[i]) > tol {
				return false
			}
		}
	}
	return true
}

// String renders small matrices for debugging; large matrices are
// summarized by shape only.
func (m *Dense) String() string {
	if m.Rows > 12 || m.Cols > 12 {
		return fmt.Sprintf("Dense{%dx%d}", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("% .4e ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
