package la

import (
	"fmt"
	"math"
	"sync"
)

// This file holds the reduced-precision variants of the hot kernels and
// the width-narrowing helpers behind Options.Precision. The discipline
// mirrors GramF32: inputs are narrowed element by element at the kernel
// boundary, arithmetic accumulates in float32, and the result is widened
// back exactly once — so the roundoff floor is eps_32 ~ 6e-8 while the
// caller keeps working in []float64 storage. bfloat16 is a pure
// storage/transfer format (float32's exponent range, 8-bit mantissa);
// no kernel computes at that width, values are widened before use.

// BF16 rounds x to the nearest bfloat16 value (round-to-nearest-even on
// the top 16 bits of the float32 representation) and widens it back.
func BF16(x float64) float64 {
	f := float32(x)
	if f != f {
		// NaN: the carry trick below could walk the payload into the
		// infinity encoding; keep the quiet NaN as-is.
		return float64(f)
	}
	b := math.Float32bits(f)
	b += 0x7FFF + (b>>16)&1
	b &= 0xFFFF0000
	return float64(math.Float32frombits(b))
}

// RoundF32 narrows every element of x in place to its nearest float32
// value. This is the storage-rounding step of the fp32 basis pipeline:
// the slice stays []float64 but carries no more information than a
// float32 array would.
func RoundF32(x []float64) {
	for i, v := range x {
		x[i] = float64(float32(v))
	}
}

// RoundBF16 narrows every element of x in place to its nearest bfloat16
// value — the storage/transfer rounding behind compressed halos.
func RoundBF16(x []float64) {
	for i, v := range x {
		x[i] = BF16(v)
	}
}

// f32Pool recycles the float32 accumulation buffers of the
// single-precision kernels (the cycleScratch discipline applied to width
// conversion): after warm-up a narrow/compute/widen round-trip allocates
// nothing. Buffers are held behind a pointer so Put does not box a slice
// header on every call.
var f32Pool = sync.Pool{New: func() any { return new([]float32) }}

// getF32 fetches a pooled float32 buffer of length n (contents
// unspecified). Return it with putF32 when the kernel is done.
func getF32(n int) *[]float32 {
	p := f32Pool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

func putF32(p *[]float32) { f32Pool.Put(p) }

// AxpyF32 computes y := y + alpha*x with float32 arithmetic: both
// operands are narrowed per element, the update happens in single
// precision, and the sum is widened back into y.
func AxpyF32(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("la: AxpyF32 length mismatch %d vs %d", len(x), len(y)))
	}
	af := float32(alpha)
	for i, v := range x {
		y[i] = float64(float32(y[i]) + af*float32(v))
	}
}

// GemvF32 computes y := alpha*A*x + beta*y in single precision. The
// axpy-form column sweep of Gemv is kept, but the running y is held in a
// pooled float32 buffer: A and x are narrowed on the fly, every
// accumulation is float32, and y is widened back once at the end.
func GemvF32(alpha float64, a *Dense, x []float64, beta float64, y []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("la: GemvF32 shape mismatch A=%dx%d x=%d y=%d", a.Rows, a.Cols, len(x), len(y)))
	}
	acc := getF32(a.Rows)
	defer putF32(acc)
	gemvF32(float32(alpha), a, x, float32(beta), y, *acc)
}

// gemvF32 is the buffer-supplied core of GemvF32, shared with GemmNNF32
// so a whole GEMM reuses one accumulator.
func gemvF32(alpha float32, a *Dense, x []float64, beta float32, y []float64, acc []float32) {
	if beta == 0 {
		for i := range acc {
			acc[i] = 0
		}
	} else {
		for i, v := range y {
			acc[i] = beta * float32(v)
		}
	}
	for j := 0; j < a.Cols; j++ {
		axj := alpha * float32(x[j])
		if axj == 0 {
			continue
		}
		for i, v := range a.Col(j) {
			acc[i] += axj * float32(v)
		}
	}
	for i, v := range acc {
		y[i] = float64(v)
	}
}

// GemmNNF32 computes C := alpha*A*B + beta*C in single precision, column
// by column through the shared float32 accumulator. This is the fp32
// basis-update kernel (V := V - V_prev*R) of the mixed pipeline.
func GemmNNF32(alpha float64, a, b *Dense, beta float64, c *Dense) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("la: GemmNNF32 shape mismatch A=%dx%d B=%dx%d C=%dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	acc := getF32(a.Rows)
	defer putF32(acc)
	af, bf := float32(alpha), float32(beta)
	for j := 0; j < b.Cols; j++ {
		gemvF32(af, a, b.Col(j), bf, c.Col(j), *acc)
	}
}

// GemmTNF32 computes C := alpha*A'*B + beta*C in single precision: each
// entry is a float32 dot product of narrowed columns. With A and B
// tall-skinny this is the fp32 projection kernel (R := V_prev'V_new) of
// block orthogonalization, the two-operand sibling of GramF32.
func GemmTNF32(alpha float64, a, b *Dense, beta float64, c *Dense) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("la: GemmTNF32 shape mismatch A=%dx%d B=%dx%d C=%dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	af, bf := float32(alpha), float32(beta)
	for j := 0; j < b.Cols; j++ {
		bj := b.Col(j)
		cj := c.Col(j)
		for i := 0; i < a.Cols; i++ {
			var s float32
			for k, v := range a.Col(i) {
				s += float32(v) * float32(bj[k])
			}
			if bf == 0 {
				cj[i] = float64(af * s)
			} else {
				cj[i] = float64(af*s + bf*float32(cj[i]))
			}
		}
	}
}
