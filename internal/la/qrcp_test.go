package la

import (
	"math"
	"math/rand"
	"testing"
)

func TestQRCPReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	for _, shape := range [][2]int{{10, 4}, {50, 12}, {30, 30}} {
		a := randDense(rng, shape[0], shape[1])
		f := QRCP(a)
		q := f.FormQ()
		r := f.R()
		// Q R == A P
		qr := NewDense(shape[0], shape[1])
		GemmNN(1, q, r, 0, qr)
		ap := NewDense(shape[0], shape[1])
		for j, src := range f.Perm {
			copy(ap.Col(j), a.Col(src))
		}
		if !qr.Equalish(ap, 1e-11*(1+a.MaxAbs())) {
			t.Fatalf("%v: QR != AP", shape)
		}
		// Q orthonormal.
		qtq := NewDense(shape[1], shape[1])
		GemmTN(1, q, q, 0, qtq)
		if !qtq.Equalish(Eye(shape[1]), 1e-12) {
			t.Fatalf("%v: Q not orthonormal", shape)
		}
	}
}

func TestQRCPDiagonalNonIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	a := randDense(rng, 60, 10)
	// Scale columns so pivoting has work to do.
	for j := 0; j < 10; j++ {
		Scal(math.Pow(10, float64(j%5)-2), a.Col(j))
	}
	f := QRCP(a)
	for k := 1; k < 10; k++ {
		if math.Abs(f.QR.At(k, k)) > math.Abs(f.QR.At(k-1, k-1))*(1+1e-10) {
			t.Fatalf("R diagonal not non-increasing at %d", k)
		}
	}
}

func TestQRCPPermIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	a := randDense(rng, 20, 8)
	f := QRCP(a)
	seen := make([]bool, 8)
	for _, p := range f.Perm {
		if p < 0 || p >= 8 || seen[p] {
			t.Fatalf("perm = %v", f.Perm)
		}
		seen[p] = true
	}
	// PermMatrix consistency: A*P == columns in pivot order.
	pm := f.PermMatrix()
	ap := NewDense(20, 8)
	GemmNN(1, a, pm, 0, ap)
	for j, src := range f.Perm {
		for i := 0; i < 20; i++ {
			if ap.At(i, j) != a.At(i, src) {
				t.Fatal("PermMatrix inconsistent with Perm")
			}
		}
	}
}

func TestQRCPRankDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	// Build a 40x8 matrix of exact rank 5.
	left := randDense(rng, 40, 5)
	right := randDense(rng, 5, 8)
	a := NewDense(40, 8)
	GemmNN(1, left, right, 0, a)
	f := QRCP(a)
	if rank := f.Rank(1e-10); rank != 5 {
		t.Fatalf("rank = %d, want 5", rank)
	}
	// Full-rank matrix.
	b := randDense(rng, 40, 8)
	if rank := QRCP(b).Rank(0); rank != 8 {
		t.Fatalf("full-rank detection failed: %d", rank)
	}
	// Zero matrix.
	if rank := QRCP(NewDense(10, 3)).Rank(0); rank != 0 {
		t.Fatalf("zero matrix rank = %d", rank)
	}
}

func TestQRCPMatchesQRForWellScaled(t *testing.T) {
	// On a matrix whose column norms are already decreasing, pivoting is
	// (nearly) the identity and R matches plain QR up to signs.
	rng := rand.New(rand.NewSource(404))
	a := randDense(rng, 50, 6)
	for j := 0; j < 6; j++ {
		Scal(math.Pow(2, float64(-j)), a.Col(j))
	}
	f := QRCP(a)
	identity := true
	for j, p := range f.Perm {
		if p != j {
			identity = false
		}
	}
	if !identity {
		t.Skip("pivoting moved columns on this seed; norms too close")
	}
	r1 := f.R()
	r2 := HouseholderQR(a).R()
	FixRSigns(nil, r1)
	FixRSigns(nil, r2)
	if !r1.Equalish(r2, 1e-10*(1+r2.MaxAbs())) {
		t.Fatal("QRCP with identity pivoting disagrees with QR")
	}
}
