package la

import (
	"math/rand"
	"testing"
)

// naiveGemmNN is the pre-dispatch column-sweep reference: one fused Gemv
// per column of B.
func naiveGemmNN(alpha float64, a, b *Dense, beta float64, c *Dense) {
	for j := 0; j < b.Cols; j++ {
		Gemv(alpha, a, b.Col(j), beta, c.Col(j))
	}
}

// naiveGemmTN is the pre-dispatch dot-sweep reference.
func naiveGemmTN(alpha float64, a, b *Dense, beta float64, c *Dense) {
	for j := 0; j < b.Cols; j++ {
		bj := b.Col(j)
		cj := c.Col(j)
		for i := 0; i < a.Cols; i++ {
			d := Dot(a.Col(i), bj)
			if beta == 0 {
				cj[i] = alpha * d
			} else {
				cj[i] = alpha*d + beta*cj[i]
			}
		}
	}
}

func randTileDense(rng *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// sprinkleZeros zeroes a fraction of entries so the axj == 0 skip path is
// exercised on both sides of the comparison.
func sprinkleZeros(rng *rand.Rand, m *Dense) {
	for i := range m.Data {
		if rng.Intn(4) == 0 {
			m.Data[i] = 0
		}
	}
}

// TestTiledGemmNNBitIdentical: the tiled path must reproduce the
// column-sweep path bit for bit — beta fused into the first contributing
// update, k-ascending accumulation, zeros skipped — for every beta class.
func TestTiledGemmNNBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{64, 64, 64}, {100, 70, 65}, {200, 128, 96}, {65, 300, 64}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTileDense(rng, m, k)
		b := randTileDense(rng, k, n)
		sprinkleZeros(rng, b)
		for _, beta := range []float64{0, 1, -0.5} {
			c0 := randTileDense(rng, m, n)
			c1 := c0.Clone()
			naiveGemmNN(1.25, a, b, beta, c0)
			gemmNNTiled(1.25, a, b, beta, c1)
			for i := range c0.Data {
				if c0.Data[i] != c1.Data[i] {
					t.Fatalf("dims %v beta %v: element %d tiled %v != naive %v",
						dims, beta, i, c1.Data[i], c0.Data[i])
				}
			}
		}
	}
}

// TestTiledGemmTNBitIdentical: same contract for the transpose kernel.
func TestTiledGemmTNBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, dims := range [][3]int{{64, 64, 64}, {500, 64, 80}, {97, 130, 66}} {
		k, m, n := dims[0], dims[1], dims[2]
		a := randTileDense(rng, k, m)
		b := randTileDense(rng, k, n)
		for _, beta := range []float64{0, 1, 2.5} {
			c0 := randTileDense(rng, m, n)
			c1 := c0.Clone()
			naiveGemmTN(-0.75, a, b, beta, c0)
			gemmTNTiled(-0.75, a, b, beta, c1)
			for i := range c0.Data {
				if c0.Data[i] != c1.Data[i] {
					t.Fatalf("dims %v beta %v: element %d tiled %v != naive %v",
						dims, beta, i, c1.Data[i], c0.Data[i])
				}
			}
		}
	}
}

// TestGemmDispatchThreshold: the exported entry points must route large
// squarish products through the tiled kernels and still agree with the
// naive sweep exactly (which doubles as a dispatch-correctness check).
func TestGemmDispatchThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randTileDense(rng, 96, 96)
	b := randTileDense(rng, 96, 96)
	c0 := randTileDense(rng, 96, 96)
	c1 := c0.Clone()
	naiveGemmNN(1, a, b, 1, c0)
	GemmNN(1, a, b, 1, c1)
	for i := range c0.Data {
		if c0.Data[i] != c1.Data[i] {
			t.Fatalf("GemmNN dispatch changed element %d", i)
		}
	}
	c0 = randTileDense(rng, 96, 96)
	c1 = c0.Clone()
	naiveGemmTN(1, a, b, 0, c0)
	GemmTN(1, a, b, 0, c1)
	for i := range c0.Data {
		if c0.Data[i] != c1.Data[i] {
			t.Fatalf("GemmTN dispatch changed element %d", i)
		}
	}
}

// TestGemvBetaFusion: the fused-beta Gemv must match the two-pass
// (scale-then-accumulate) reference exactly, including the all-zero-x
// case where the deferred scaling is the only work.
func TestGemvBetaFusion(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randTileDense(rng, 40, 7)
	x := make([]float64, 7)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	x[0], x[3] = 0, 0 // leading zero: fusion lands on a later column
	for _, beta := range []float64{0, 1, -1.5} {
		y0 := make([]float64, 40)
		y1 := make([]float64, 40)
		for i := range y0 {
			y0[i] = rng.NormFloat64()
			y1[i] = y0[i]
		}
		// Two-pass reference.
		if beta == 0 {
			Zero(y0)
		} else if beta != 1 {
			Scal(beta, y0)
		}
		for j := 0; j < a.Cols; j++ {
			axj := 2 * x[j]
			if axj == 0 {
				continue
			}
			for i, v := range a.Col(j) {
				t := y0[i]
				y0[i] = t + axj*v
			}
		}
		Gemv(2, a, x, beta, y1)
		for i := range y0 {
			if y0[i] != y1[i] {
				t.Fatalf("beta %v: y[%d] fused %v != reference %v", beta, i, y1[i], y0[i])
			}
		}
	}
	// All contributions skipped: beta still applies.
	y := []float64{3, -4}
	Gemv(5, NewDense(2, 3), []float64{1, 2, 3}, 0.5, y)
	if y[0] != 1.5 || y[1] != -2 {
		t.Fatalf("zero-matrix Gemv left y = %v", y)
	}
}

func benchGemmPair(b *testing.B, n int, f func(alpha float64, a, bb *Dense, beta float64, c *Dense)) {
	rng := rand.New(rand.NewSource(11))
	a := randTileDense(rng, n, n)
	bb := randTileDense(rng, n, n)
	c := NewDense(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(1, a, bb, 0, c)
	}
}

func BenchmarkGemmNNNaive256(b *testing.B) { benchGemmPair(b, 256, naiveGemmNN) }
func BenchmarkGemmNNTiled256(b *testing.B) { benchGemmPair(b, 256, gemmNNTiled) }
func BenchmarkGemmTNNaive256(b *testing.B) { benchGemmPair(b, 256, naiveGemmTN) }
func BenchmarkGemmTNTiled256(b *testing.B) { benchGemmPair(b, 256, gemmTNTiled) }
