package la

import (
	"math/rand"
	"testing"
)

// naiveGemm is the reference triple loop used to validate every GEMM path.
func naiveGemm(transA bool, alpha float64, a, b *Dense) *Dense {
	var m, k int
	if transA {
		m, k = a.Cols, a.Rows
	} else {
		m, k = a.Rows, a.Cols
	}
	n := b.Cols
	c := NewDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for l := 0; l < k; l++ {
				var av float64
				if transA {
					av = a.At(l, i)
				} else {
					av = a.At(i, l)
				}
				s += av * b.At(l, j)
			}
			c.Set(i, j, alpha*s)
		}
	}
	return c
}

func TestGemvAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, shape := range [][2]int{{1, 1}, {5, 3}, {3, 5}, {40, 7}, {7, 40}} {
		a := randDense(rng, shape[0], shape[1])
		x := randVec(rng, shape[1])
		y := randVec(rng, shape[0])
		y2 := make([]float64, len(y))
		copy(y2, y)
		Gemv(1.5, a, x, 0.5, y)
		// reference
		for i := 0; i < a.Rows; i++ {
			var s float64
			for j := 0; j < a.Cols; j++ {
				s += a.At(i, j) * x[j]
			}
			y2[i] = 1.5*s + 0.5*y2[i]
		}
		for i := range y {
			if !almostEq(y[i], y2[i], 1e-12) {
				t.Fatalf("Gemv %v mismatch at %d: %v vs %v", shape, i, y[i], y2[i])
			}
		}
	}
}

func TestGemvBetaZeroIgnoresNaN(t *testing.T) {
	a := Eye(2)
	x := []float64{1, 2}
	y := []float64{0, 0}
	// beta=0 must overwrite y regardless of prior content.
	y[0] = 1e300
	Gemv(1, a, x, 0, y)
	if y[0] != 1 || y[1] != 2 {
		t.Fatalf("Gemv beta=0 got %v", y)
	}
}

func TestGemvT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randDense(rng, 30, 6)
	x := randVec(rng, 30)
	y := make([]float64, 6)
	GemvT(1, a, x, 0, y)
	for j := 0; j < 6; j++ {
		if !almostEq(y[j], Dot(a.Col(j), x), 1e-13) {
			t.Fatalf("GemvT mismatch at %d", j)
		}
	}
	// beta accumulation path
	y2 := make([]float64, 6)
	for i := range y2 {
		y2[i] = 1
	}
	GemvT(2, a, x, 3, y2)
	for j := 0; j < 6; j++ {
		want := 2*Dot(a.Col(j), x) + 3
		if !almostEq(y2[j], want, 1e-12) {
			t.Fatalf("GemvT beta path mismatch at %d", j)
		}
	}
}

func TestGemmNN(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randDense(rng, 8, 5)
	b := randDense(rng, 5, 4)
	c := NewDense(8, 4)
	GemmNN(2, a, b, 0, c)
	want := naiveGemm(false, 2, a, b)
	if !c.Equalish(want, 1e-12) {
		t.Fatal("GemmNN mismatch")
	}
}

func TestGemmTN(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randDense(rng, 20, 4)
	b := randDense(rng, 20, 3)
	c := NewDense(4, 3)
	GemmTN(1, a, b, 0, c)
	want := naiveGemm(true, 1, a, b)
	if !c.Equalish(want, 1e-12) {
		t.Fatal("GemmTN mismatch")
	}
}

func TestSyrkSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randDense(rng, 50, 6)
	c := NewDense(6, 6)
	Syrk(a, c)
	want := naiveGemm(true, 1, a, a)
	if !c.Equalish(want, 1e-12) {
		t.Fatal("Syrk mismatch vs naive A'A")
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if c.At(i, j) != c.At(j, i) {
				t.Fatal("Syrk result not exactly symmetric")
			}
		}
	}
}

func TestTrsmTrmmRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	// Build a well-conditioned upper-triangular R.
	n := 7
	r := NewDense(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			r.Set(i, j, 0.3*rng.NormFloat64())
		}
		r.Set(j, j, 1+rng.Float64())
	}
	v := randDense(rng, 40, n)
	orig := v.Clone()
	TrmmRightUpper(v, r) // V := V R
	TrsmRightUpper(v, r) // V := V R^{-1}
	if !v.Equalish(orig, 1e-10) {
		t.Fatal("Trmm/Trsm round trip failed")
	}
}

func TestTrsmMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	n := 5
	r := NewDense(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			r.Set(i, j, rng.NormFloat64())
		}
		r.Set(j, j, 2+rng.Float64())
	}
	v := randDense(rng, 12, n)
	v2 := v.Clone()
	TrsmRightUpper(v, r)
	inv := InvertUpper(r)
	want := NewDense(12, n)
	GemmNN(1, v2, inv, 0, want)
	if !v.Equalish(want, 1e-10) {
		t.Fatal("TrsmRightUpper disagrees with explicit inverse")
	}
}

func TestTrsmSingularPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on singular R")
		}
	}()
	r := NewDense(2, 2)
	r.Set(0, 0, 1) // r_11 = 0
	v := NewDense(3, 2)
	TrsmRightUpper(v, r)
}

func TestGemmShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	GemmNN(1, NewDense(2, 3), NewDense(4, 2), 0, NewDense(2, 2))
}
