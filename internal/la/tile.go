package la

import (
	"runtime"
	"sync"
)

// Cache-tiled, worker-parallel GEMM fallbacks.
//
// The column-sweep GemmNN/GemmTN kernels stream all of A once per column
// of B; for the squarish host-side products (basis assembly in matgen,
// reference checks, the host fallback when no accelerator library is
// present) that wastes memory bandwidth badly. The tiled kernels below
// block the operands so a tile of A stays cache-resident while every
// column of B is applied to it, and split the rows of C across workers.
//
// Bit-exactness contract: for every element c[i,j] the tiled kernels
// perform the same floating-point operations in the same order as the
// column-sweep path (beta fused into the first contributing update,
// k-ascending accumulation, zero coefficients skipped), so dispatching on
// size never changes results — only wall-clock time.

const (
	// gemmTileMin is the dispatch threshold: the tiled path runs only
	// when all three dimensions reach it. Below that, the tall-skinny
	// column-sweep kernels win (and the row-panel drivers in parallel.go,
	// whose panels have at most a few dozen columns, never re-enter the
	// worker pool from inside their own workers).
	gemmTileMin = 64
	// gemmTileRows x gemmTileK doubles is the A-tile kept hot while all
	// columns of B stream past: 128*64*8 = 64 KiB, half a typical L2.
	gemmTileRows = 128
	gemmTileK    = 64
)

func minDim3(a, b, c int) int {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// gemmBlocks partitions n rows into worker block ranges of height at
// least tile, at most ceil(n/workers) rounded up to a tile multiple.
func gemmBlocks(n, tile, workers int) [][2]int {
	per := (n + workers - 1) / workers
	per = ((per + tile - 1) / tile) * tile
	blocks := make([][2]int, 0, workers)
	for i0 := 0; i0 < n; i0 += per {
		i1 := i0 + per
		if i1 > n {
			i1 = n
		}
		blocks = append(blocks, [2]int{i0, i1})
	}
	return blocks
}

// gemmNNTiled computes C := alpha*A*B + beta*C, bit-identical to the
// column-sweep GemmNN (see the exactness contract above). Workers own
// disjoint row blocks of C; inside a block the k dimension is tiled so
// the A tile is reused across every column of B before being evicted.
func gemmNNTiled(alpha float64, a, b *Dense, beta float64, c *Dense) {
	m, k, n := a.Rows, a.Cols, b.Cols
	workers := runtime.GOMAXPROCS(0)
	if max := (m + gemmTileRows - 1) / gemmTileRows; workers > max {
		workers = max
	}
	blocks := gemmBlocks(m, gemmTileRows, workers)
	var wg sync.WaitGroup
	for _, blk := range blocks {
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			// scaled[j] records whether c[:,j] in this row block has
			// absorbed its beta scaling (fused into the first nonzero
			// column update, exactly like Gemv).
			scaled := make([]bool, n)
			if beta == 1 {
				for j := range scaled {
					scaled[j] = true
				}
			}
			for k0 := 0; k0 < k; k0 += gemmTileK {
				k1 := k0 + gemmTileK
				if k1 > k {
					k1 = k
				}
				for j := 0; j < n; j++ {
					cj := c.Col(j)[i0:i1]
					bj := b.Col(j)
					for kk := k0; kk < k1; kk++ {
						axj := alpha * bj[kk]
						if axj == 0 {
							continue
						}
						ak := a.Col(kk)[i0:i1]
						switch {
						case scaled[j]:
							for i, v := range ak {
								cj[i] += axj * v
							}
						case beta == 0:
							for i, v := range ak {
								cj[i] = axj * v
							}
							scaled[j] = true
						default:
							for i, v := range ak {
								// Two statements: no FMA contraction of
								// scale+update (see Gemv).
								t := beta * cj[i]
								cj[i] = t + axj*v
							}
							scaled[j] = true
						}
					}
				}
			}
			if beta != 1 {
				for j := 0; j < n; j++ {
					if scaled[j] {
						continue
					}
					cj := c.Col(j)[i0:i1]
					if beta == 0 {
						Zero(cj)
					} else {
						Scal(beta, cj)
					}
				}
			}
		}(blk[0], blk[1])
	}
	wg.Wait()
}

// gemmTNTiled computes C := alpha*A'*B + beta*C, bit-identical to the
// dot-sweep GemmTN: each output element is still one full-length Dot, so
// only the parallel decomposition changes. Workers own disjoint column
// blocks of C; within a block each B column being dotted stays
// cache-resident across the whole sweep of A's columns.
func gemmTNTiled(alpha float64, a, b *Dense, beta float64, c *Dense) {
	m, n := a.Cols, b.Cols
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	blocks := gemmBlocks(n, 8, workers)
	var wg sync.WaitGroup
	for _, blk := range blocks {
		wg.Add(1)
		go func(j0, j1 int) {
			defer wg.Done()
			for j := j0; j < j1; j++ {
				bj := b.Col(j)
				cj := c.Col(j)
				for i := 0; i < m; i++ {
					d := Dot(a.Col(i), bj)
					if beta == 0 {
						cj[i] = alpha * d
					} else {
						cj[i] = alpha*d + beta*cj[i]
					}
				}
			}
		}(blk[0], blk[1])
	}
	wg.Wait()
}
