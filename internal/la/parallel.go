package la

import (
	"runtime"
	"sync"
)

// PanelRows is the default row-panel height for the batched tall-skinny
// kernels. Yamazaki et al. round the panel height up to a multiple of 32 to
// align memory access inside each batched DGEMM; we keep the same discipline
// so the padded-stride code path stays exercised.
const PanelRows = 4096

// roundUp32 rounds n up to the next multiple of 32.
func roundUp32(n int) int { return (n + 31) &^ 31 }

// numWorkers returns the worker count for an n-row tall-skinny kernel:
// enough panels to keep the cores busy without oversubscribing tiny inputs.
func numWorkers(rows, panel int) int {
	w := (rows + panel - 1) / panel
	if p := runtime.GOMAXPROCS(0); w > p {
		w = p
	}
	if w < 1 {
		w = 1
	}
	return w
}

// BatchedGram computes the Gram matrix C := A'*A for a tall-skinny A using
// the batched-GEMM strategy of the paper (Section V-F): A is split into
// row panels of height h (rounded up to a multiple of 32), each panel's
// small Gram matrix is computed independently in parallel, and the partial
// results are summed. C must be A.Cols x A.Cols.
func BatchedGram(a *Dense, c *Dense) {
	n := a.Cols
	if c.Rows != n || c.Cols != n {
		panic("la: BatchedGram shape mismatch")
	}
	h := roundUp32(PanelRows)
	npanels := (a.Rows + h - 1) / h
	if npanels <= 1 {
		Syrk(a, c)
		return
	}
	workers := numWorkers(a.Rows, h)
	partials := make([]*Dense, npanels)
	var wg sync.WaitGroup
	panelCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range panelCh {
				i0 := p * h
				i1 := i0 + h
				if i1 > a.Rows {
					i1 = a.Rows
				}
				part := NewDense(n, n)
				Syrk(a.RowView(i0, i1), part)
				partials[p] = part
			}
		}()
	}
	for p := 0; p < npanels; p++ {
		panelCh <- p
	}
	close(panelCh)
	wg.Wait()
	c.Zero()
	for _, part := range partials {
		for j := 0; j < n; j++ {
			Axpy(1, part.Col(j), c.Col(j))
		}
	}
}

// BatchedGemmTN computes C := A'*B for tall-skinny A (k x m) and B (k x n)
// by row panels in parallel with a final reduction, the same schedule as
// BatchedGram but for two distinct operands (used by block
// orthogonalization, R := V_prev' V_new).
func BatchedGemmTN(a, b *Dense, c *Dense) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic("la: BatchedGemmTN shape mismatch")
	}
	h := roundUp32(PanelRows)
	npanels := (a.Rows + h - 1) / h
	if npanels <= 1 {
		GemmTN(1, a, b, 0, c)
		return
	}
	workers := numWorkers(a.Rows, h)
	partials := make([]*Dense, npanels)
	var wg sync.WaitGroup
	panelCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range panelCh {
				i0 := p * h
				i1 := i0 + h
				if i1 > a.Rows {
					i1 = a.Rows
				}
				part := NewDense(c.Rows, c.Cols)
				GemmTN(1, a.RowView(i0, i1), b.RowView(i0, i1), 0, part)
				partials[p] = part
			}
		}()
	}
	for p := 0; p < npanels; p++ {
		panelCh <- p
	}
	close(panelCh)
	wg.Wait()
	c.Zero()
	for _, part := range partials {
		for j := 0; j < c.Cols; j++ {
			Axpy(1, part.Col(j), c.Col(j))
		}
	}
}

// GramF32 computes the Gram matrix C := A'*A with single-precision
// accumulation, emulating the mixed-precision orthogonalization kernel of
// Yamazaki et al. (VECPAR 2014): inputs are rounded to float32, dot
// products accumulate in float32, and the result is widened back. The
// roundoff floor is eps_32 ~ 6e-8 instead of eps_64.
func GramF32(a *Dense, c *Dense) {
	n := a.Cols
	if c.Rows != n || c.Cols != n {
		panic("la: GramF32 shape mismatch")
	}
	// Panel-parallel like BatchedGram, with float32 partial sums.
	h := roundUp32(PanelRows)
	npanels := (a.Rows + h - 1) / h
	partials := make([][]float32, npanels)
	workers := numWorkers(a.Rows, h)
	var wg sync.WaitGroup
	panelCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range panelCh {
				i0 := p * h
				i1 := i0 + h
				if i1 > a.Rows {
					i1 = a.Rows
				}
				sums := make([]float32, n*n)
				for j := 0; j < n; j++ {
					cj := a.Col(j)[i0:i1]
					for i := 0; i <= j; i++ {
						ci := a.Col(i)[i0:i1]
						var s float32
						for k := range cj {
							s += float32(ci[k]) * float32(cj[k])
						}
						sums[j*n+i] = s
					}
				}
				partials[p] = sums
			}
		}()
	}
	for p := 0; p < npanels; p++ {
		panelCh <- p
	}
	close(panelCh)
	wg.Wait()
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			var s float32
			for _, part := range partials {
				s += part[j*n+i]
			}
			c.Set(i, j, float64(s))
			c.Set(j, i, float64(s))
		}
	}
}

// ParallelGemvT computes y := A'*x for tall-skinny A with one goroutine
// per block of columns, reproducing the optimized MAGMA DGEMV of the paper
// where each thread block owns the dot product of one column with x.
func ParallelGemvT(a *Dense, x []float64, y []float64) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic("la: ParallelGemvT shape mismatch")
	}
	cols := a.Cols
	workers := runtime.GOMAXPROCS(0)
	if workers > cols {
		workers = cols
	}
	if workers <= 1 || a.Rows*cols < 1<<15 {
		GemvT(1, a, x, 0, y)
		return
	}
	var wg sync.WaitGroup
	chunk := (cols + workers - 1) / workers
	for w := 0; w < workers; w++ {
		j0 := w * chunk
		if j0 >= cols {
			break
		}
		j1 := j0 + chunk
		if j1 > cols {
			j1 = cols
		}
		wg.Add(1)
		go func(j0, j1 int) {
			defer wg.Done()
			for j := j0; j < j1; j++ {
				y[j] = Dot(a.Col(j), x)
			}
		}(j0, j1)
	}
	wg.Wait()
}

// ParallelGemmNN computes C := A*B for tall-skinny A (m x k) and small B
// (k x n) by splitting A and C into row panels. This is the update kernel
// V := V - V_prev*R and the Q-assembly kernel of CAQR.
func ParallelGemmNN(alpha float64, a, b *Dense, beta float64, c *Dense) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("la: ParallelGemmNN shape mismatch")
	}
	h := roundUp32(PanelRows)
	npanels := (a.Rows + h - 1) / h
	if npanels <= 1 {
		GemmNN(alpha, a, b, beta, c)
		return
	}
	workers := numWorkers(a.Rows, h)
	var wg sync.WaitGroup
	panelCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range panelCh {
				i0 := p * h
				i1 := i0 + h
				if i1 > a.Rows {
					i1 = a.Rows
				}
				GemmNN(alpha, a.RowView(i0, i1), b, beta, c.RowView(i0, i1))
			}
		}()
	}
	for p := 0; p < npanels; p++ {
		panelCh <- p
	}
	close(panelCh)
	wg.Wait()
}
