package la

import (
	"fmt"
	"math"
)

// HessenbergLS solves the small least-squares problem
//
//	y := argmin_z || c - H z ||_2
//
// for an (k+1) x k upper Hessenberg H, the problem GMRES solves at the end
// of every restart cycle (about 3(m+1)^2 flops, done on the CPU in the
// paper). It applies a sequence of Givens rotations that reduce H to upper
// triangular form while transforming the right-hand side, then
// back-substitutes. Returns the solution y and the residual norm
// |c~_{k+1}|, which equals the GMRES residual norm when c = beta*e_1.
func HessenbergLS(h *Dense, c []float64) (y []float64, resNorm float64) {
	k := h.Cols
	if h.Rows != k+1 {
		panic(fmt.Sprintf("la: HessenbergLS needs (k+1)xk, got %dx%d", h.Rows, h.Cols))
	}
	if len(c) != k+1 {
		panic(fmt.Sprintf("la: HessenbergLS rhs length %d, want %d", len(c), k+1))
	}
	r := h.Clone()
	g := make([]float64, k+1)
	copy(g, c)
	for j := 0; j < k; j++ {
		// Rotation eliminating r[j+1][j].
		cs, sn := givensR(r.At(j, j), r.At(j+1, j))
		for col := j; col < k; col++ {
			a, b := r.At(j, col), r.At(j+1, col)
			r.Set(j, col, cs*a+sn*b)
			r.Set(j+1, col, -sn*a+cs*b)
		}
		gj, gj1 := g[j], g[j+1]
		g[j] = cs*gj + sn*gj1
		g[j+1] = -sn*gj + cs*gj1
	}
	resNorm = math.Abs(g[k])
	y = make([]float64, k)
	copy(y, g[:k])
	UpperSolve(r.RowView(0, k).ColView(0, k), y)
	return y, resNorm
}

// givensR computes a real Givens rotation (cs, sn) such that
// [cs sn; -sn cs] [a; b] = [r; 0].
func givensR(a, b float64) (cs, sn float64) {
	if b == 0 {
		return 1, 0
	}
	if a == 0 {
		return 0, 1
	}
	r := math.Hypot(a, b)
	return a / r, b / r
}

// GivensQR maintains a progressively-built QR factorization of a growing
// Hessenberg matrix, the standard incremental machinery inside a GMRES
// iteration: after column j is appended, the rotations so far are applied,
// a new rotation is generated, and the running residual norm is available
// in O(j) work per step.
type GivensQR struct {
	cs, sn []float64 // accumulated rotations
	r      *Dense    // triangularized columns
	g      []float64 // transformed right-hand side
	k      int       // columns absorbed so far
}

// NewGivensQR prepares an incremental solver for up to m columns with
// initial residual beta (the right-hand side is beta*e_1).
func NewGivensQR(m int, beta float64) *GivensQR {
	q := &GivensQR{
		cs: make([]float64, m),
		sn: make([]float64, m),
		r:  NewDense(m+1, m),
		g:  make([]float64, m+1),
	}
	q.g[0] = beta
	return q
}

// Size returns the maximum column count the solver was allocated for.
func (q *GivensQR) Size() int { return len(q.cs) }

// Reset rewinds the solver for a fresh system with initial residual beta
// (right-hand side beta*e_1), reusing every allocation. Only the
// transformed right-hand side needs clearing: Append fully overwrites the
// rotation entries and the column prefix it reads, and Solve only touches
// the leading k x k block written this cycle, so stale factor data is
// never observed.
func (q *GivensQR) Reset(beta float64) {
	for i := range q.g {
		q.g[i] = 0
	}
	q.g[0] = beta
	q.k = 0
}

// Append absorbs Hessenberg column h (length k+2 for the k-th column,
// 0-indexed: entries h[0..k+1]) and returns the updated residual norm.
func (q *GivensQR) Append(h []float64) float64 {
	k := q.k
	if len(h) != k+2 {
		panic(fmt.Sprintf("la: GivensQR.Append column length %d, want %d", len(h), k+2))
	}
	col := q.r.Col(k)
	copy(col[:k+2], h)
	// Apply previous rotations to the new column.
	for i := 0; i < k; i++ {
		a, b := col[i], col[i+1]
		col[i] = q.cs[i]*a + q.sn[i]*b
		col[i+1] = -q.sn[i]*a + q.cs[i]*b
	}
	// New rotation to kill the subdiagonal entry.
	cs, sn := givensR(col[k], col[k+1])
	q.cs[k], q.sn[k] = cs, sn
	col[k] = cs*col[k] + sn*col[k+1]
	col[k+1] = 0
	gk, gk1 := q.g[k], q.g[k+1]
	q.g[k] = cs*gk + sn*gk1
	q.g[k+1] = -sn*gk + cs*gk1
	q.k++
	return math.Abs(q.g[q.k])
}

// ResidualNorm returns the current least-squares residual norm.
func (q *GivensQR) ResidualNorm() float64 { return math.Abs(q.g[q.k]) }

// Solve back-substitutes for the current minimizer y of length k.
func (q *GivensQR) Solve() []float64 {
	k := q.k
	y := make([]float64, k)
	copy(y, q.g[:k])
	UpperSolve(q.r.RowView(0, k).ColView(0, k), y)
	return y
}
