package la

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// JacobiEig computes the full eigendecomposition B = U diag(w) U' of a
// symmetric matrix using the cyclic Jacobi rotation method. It returns the
// eigenvalues in descending order with matching eigenvector columns.
// Jacobi is slow for large matrices but bitwise-robust for the small
// (s+1)x(s+1) Gram matrices SVQR factors, which is exactly where the
// paper uses the SVD.
func JacobiEig(b *Dense) (w []float64, u *Dense) {
	n := b.Rows
	if b.Cols != n {
		panic(fmt.Sprintf("la: JacobiEig non-square %dx%d", b.Rows, b.Cols))
	}
	a := b.Clone()
	u = Eye(n)
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm for convergence.
		var off float64
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ {
				off += a.At(i, j) * a.At(i, j)
			}
		}
		if off <= 1e-30*a.FrobNorm()*a.FrobNorm()+1e-300 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				// Rotation angle that annihilates a_pq.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// A := J' A J for rows/cols p and q.
				for k := 0; k < n; k++ {
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := a.At(p, k), a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					ukp, ukq := u.At(k, p), u.At(k, q)
					u.Set(k, p, c*ukp-s*ukq)
					u.Set(k, q, s*ukp+c*ukq)
				}
			}
		}
	}
	w = make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = a.At(i, i)
	}
	// Sort descending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return w[idx[i]] > w[idx[j]] })
	ws := make([]float64, n)
	us := NewDense(n, n)
	for j, k := range idx {
		ws[j] = w[k]
		copy(us.Col(j), u.Col(k))
	}
	return ws, us
}

// SymCond2 returns the 2-norm condition number of a symmetric
// positive-semidefinite matrix from its Jacobi eigenvalues. A zero or
// negative smallest eigenvalue yields +Inf.
func SymCond2(b *Dense) float64 {
	w, _ := JacobiEig(b)
	if len(w) == 0 {
		return 1
	}
	max, min := w[0], w[len(w)-1]
	if min <= 0 {
		return math.Inf(1)
	}
	return max / min
}

// GramCond2 estimates the 2-norm condition number of a tall-skinny V from
// its Gram matrix: kappa_2(V) = sqrt(kappa_2(V'V)).
func GramCond2(v *Dense) float64 {
	g := NewDense(v.Cols, v.Cols)
	BatchedGram(v, g)
	return math.Sqrt(SymCond2(g))
}

// HessenbergEigenvalues returns all eigenvalues of an upper Hessenberg
// matrix using a shifted QR iteration in complex arithmetic with Givens
// rotations and Wilkinson shifts. In CA-GMRES these are the Ritz values of
// A harvested from the first restart cycle; they become the Newton-basis
// shifts (Bai, Hu, Reichel 1994).
func HessenbergEigenvalues(h *Dense) []complex128 {
	n := h.Rows
	if h.Cols != n {
		panic(fmt.Sprintf("la: HessenbergEigenvalues non-square %dx%d", h.Rows, h.Cols))
	}
	if n == 0 {
		return nil
	}
	// Complex working copy, row-major for cache-friendly row ops.
	a := make([][]complex128, n)
	for i := range a {
		a[i] = make([]complex128, n)
		lo := i - 1
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < n; j++ {
			a[i][j] = complex(h.At(i, j), 0)
		}
	}
	eig := make([]complex128, 0, n)
	hi := n
	iterSinceDeflate := 0
	const maxIter = 120
	for hi > 0 {
		if hi == 1 {
			eig = append(eig, a[0][0])
			hi--
			continue
		}
		// Deflate a negligible trailing subdiagonal.
		tail := cmplx.Abs(a[hi-1][hi-2])
		ref := cmplx.Abs(a[hi-1][hi-1]) + cmplx.Abs(a[hi-2][hi-2])
		if ref == 0 {
			ref = 1
		}
		if tail <= 1e-14*ref {
			eig = append(eig, a[hi-1][hi-1])
			hi--
			iterSinceDeflate = 0
			continue
		}
		// Find the start of the active unreduced block.
		lo := hi - 1
		for lo > 0 {
			sub := cmplx.Abs(a[lo][lo-1])
			r := cmplx.Abs(a[lo][lo]) + cmplx.Abs(a[lo-1][lo-1])
			if r == 0 {
				r = 1
			}
			if sub <= 1e-14*r {
				a[lo][lo-1] = 0
				break
			}
			lo--
		}
		// Wilkinson shift from the trailing 2x2 of the active block;
		// fall back to an exceptional shift if we stall.
		var mu complex128
		if iterSinceDeflate > 0 && iterSinceDeflate%24 == 0 {
			// Exceptional shift to break symmetric stalls, per EISPACK HQR.
			ex := cmplx.Abs(a[hi-1][hi-2])
			if hi >= 3 {
				ex += cmplx.Abs(a[hi-2][hi-3])
			}
			mu = complex(ex, 0)
		} else {
			p := a[hi-2][hi-2]
			q := a[hi-2][hi-1]
			r := a[hi-1][hi-2]
			s := a[hi-1][hi-1]
			tr := p + s
			det := p*s - q*r
			disc := cmplx.Sqrt(tr*tr - 4*det)
			mu1 := (tr + disc) / 2
			mu2 := (tr - disc) / 2
			if cmplx.Abs(mu1-s) < cmplx.Abs(mu2-s) {
				mu = mu1
			} else {
				mu = mu2
			}
		}
		qrStepHessenberg(a, lo, hi, mu)
		iterSinceDeflate++
		if iterSinceDeflate > maxIter {
			// Give up on further refinement of this block: harvest the
			// diagonal. For shift selection a crude Ritz value is still
			// usable, and this keeps the solver total.
			for i := lo; i < hi; i++ {
				eig = append(eig, a[i][i])
			}
			hi = lo
			iterSinceDeflate = 0
		}
	}
	return eig
}

// qrStepHessenberg performs one implicit shifted QR sweep A := Q'(A-muI)Q
// restricted to the active block [lo,hi) of a complex Hessenberg matrix.
func qrStepHessenberg(a [][]complex128, lo, hi int, mu complex128) {
	n := hi
	type rot struct {
		c float64
		s complex128
	}
	rots := make([]rot, 0, hi-lo)
	for i := lo; i < hi; i++ {
		a[i][i] -= mu
	}
	// Left Givens sweep: zero the subdiagonal.
	for k := lo; k < hi-1; k++ {
		x, y := a[k][k], a[k+1][k]
		c, s := givensC(x, y)
		rots = append(rots, rot{c, s})
		for j := k; j < n; j++ {
			akj, ak1j := a[k][j], a[k+1][j]
			a[k][j] = complex(c, 0)*akj + s*ak1j
			a[k+1][j] = -cmplx.Conj(s)*akj + complex(c, 0)*ak1j
		}
	}
	// Right sweep: apply the conjugate rotations to columns, restoring
	// Hessenberg form.
	for k := lo; k < hi-1; k++ {
		r := rots[k-lo]
		iMax := k + 2
		if iMax > hi {
			iMax = hi
		}
		for i := lo; i < iMax; i++ {
			aik, aik1 := a[i][k], a[i][k+1]
			a[i][k] = complex(r.c, 0)*aik + cmplx.Conj(r.s)*aik1
			a[i][k+1] = -r.s*aik + complex(r.c, 0)*aik1
		}
	}
	for i := lo; i < hi; i++ {
		a[i][i] += mu
	}
}

// givensC computes a complex Givens rotation G = [[c, s], [-conj(s), c]]
// with real c such that G [x; y]' has a zero second component.
func givensC(x, y complex128) (float64, complex128) {
	ax, ay := cmplx.Abs(x), cmplx.Abs(y)
	if ay == 0 {
		return 1, 0
	}
	if ax == 0 {
		return 0, 1
	}
	r := math.Hypot(ax, ay)
	c := ax / r
	s := x * cmplx.Conj(y) / complex(ax*r, 0)
	return c, s
}
