package la

import (
	"math/rand"
	"testing"
)

func TestBatchedGramMatchesSyrk(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, rows := range []int{10, PanelRows - 1, PanelRows, PanelRows + 1, 3*PanelRows + 17} {
		a := randDense(rng, rows, 5)
		want := NewDense(5, 5)
		Syrk(a, want)
		got := NewDense(5, 5)
		BatchedGram(a, got)
		if !got.Equalish(want, 1e-10*(1+want.MaxAbs())) {
			t.Fatalf("rows=%d: BatchedGram mismatch", rows)
		}
	}
}

func TestBatchedGramPaddedStride(t *testing.T) {
	// The paper pads the leading dimension so every batched panel has the
	// same size; verify a strided view computes the same Gram matrix.
	rng := rand.New(rand.NewSource(41))
	rows, cols := 2*PanelRows+100, 4
	padded := NewDenseStride(rows, cols, roundUp32(rows)+32)
	for j := 0; j < cols; j++ {
		col := padded.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	want := NewDense(cols, cols)
	Syrk(padded, want)
	got := NewDense(cols, cols)
	BatchedGram(padded, got)
	if !got.Equalish(want, 1e-10*(1+want.MaxAbs())) {
		t.Fatal("BatchedGram on padded stride mismatch")
	}
}

func TestBatchedGemmTNMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randDense(rng, 2*PanelRows+3, 6)
	b := randDense(rng, 2*PanelRows+3, 4)
	want := NewDense(6, 4)
	GemmTN(1, a, b, 0, want)
	got := NewDense(6, 4)
	BatchedGemmTN(a, b, got)
	if !got.Equalish(want, 1e-10*(1+want.MaxAbs())) {
		t.Fatal("BatchedGemmTN mismatch")
	}
}

func TestParallelGemvTMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, shape := range [][2]int{{100, 3}, {50000, 29}} {
		a := randDense(rng, shape[0], shape[1])
		x := randVec(rng, shape[0])
		want := make([]float64, shape[1])
		GemvT(1, a, x, 0, want)
		got := make([]float64, shape[1])
		ParallelGemvT(a, x, got)
		for j := range want {
			if !almostEq(got[j], want[j], 1e-11) {
				t.Fatalf("%v: ParallelGemvT[%d] mismatch", shape, j)
			}
		}
	}
}

func TestParallelGemmNNMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randDense(rng, PanelRows+513, 7)
	b := randDense(rng, 7, 5)
	want := randDense(rng, PanelRows+513, 5)
	got := want.Clone()
	GemmNN(2, a, b, 0.5, want)
	ParallelGemmNN(2, a, b, 0.5, got)
	if !got.Equalish(want, 1e-10*(1+want.MaxAbs())) {
		t.Fatal("ParallelGemmNN mismatch")
	}
}

func TestRoundUp32(t *testing.T) {
	cases := map[int]int{0: 0, 1: 32, 31: 32, 32: 32, 33: 64, 100: 128}
	for in, want := range cases {
		if got := roundUp32(in); got != want {
			t.Fatalf("roundUp32(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestNumWorkersBounds(t *testing.T) {
	if w := numWorkers(1, PanelRows); w != 1 {
		t.Fatalf("numWorkers tiny = %d", w)
	}
	if w := numWorkers(100*PanelRows, PanelRows); w < 1 {
		t.Fatalf("numWorkers large = %d", w)
	}
}
