package la

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the dense kernels that dominate the
// orthogonalization strategies (run with go test -bench=. -benchmem).

func benchMatrix(rows, cols int) *Dense {
	rng := rand.New(rand.NewSource(1))
	return randDense(rng, rows, cols)
}

func BenchmarkDot(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := randVec(rng, 1<<16)
	y := randVec(rng, 1<<16)
	b.SetBytes(int64(len(x)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkGemvT(b *testing.B) {
	a := benchMatrix(1<<16, 30)
	rng := rand.New(rand.NewSource(3))
	x := randVec(rng, 1<<16)
	y := make([]float64, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemvT(1, a, x, 0, y)
	}
}

func BenchmarkParallelGemvT(b *testing.B) {
	a := benchMatrix(1<<16, 30)
	rng := rand.New(rand.NewSource(4))
	x := randVec(rng, 1<<16)
	y := make([]float64, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelGemvT(a, x, y)
	}
}

func BenchmarkSyrkGram(b *testing.B) {
	a := benchMatrix(1<<16, 30)
	c := NewDense(30, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Syrk(a, c)
	}
}

func BenchmarkBatchedGram(b *testing.B) {
	a := benchMatrix(1<<16, 30)
	c := NewDense(30, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BatchedGram(a, c)
	}
}

func BenchmarkHouseholderQRTall(b *testing.B) {
	a := benchMatrix(1<<13, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = HouseholderQR(a)
	}
}

func BenchmarkCholesky30(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := spdMatrix(rng, 30, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJacobiEig30(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := spdMatrix(rng, 30, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JacobiEig(g)
	}
}

func BenchmarkHessenbergEigenvalues60(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 60
	h := NewDense(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j+1 && i < n; i++ {
			h.Set(i, j, rng.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = HessenbergEigenvalues(h)
	}
}

func BenchmarkHessenbergLS(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	k := 60
	h := NewDense(k+1, k)
	for j := 0; j < k; j++ {
		for i := 0; i <= j+1; i++ {
			h.Set(i, j, rng.NormFloat64())
		}
	}
	c := randVec(rng, k+1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HessenbergLS(h, c)
	}
}

func BenchmarkLejaOrder60(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	shifts := make([]complex128, 60)
	for i := range shifts {
		shifts[i] = complex(rng.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LejaOrder(shifts)
	}
}
