package la

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestLejaOrderStartsAtMaxModulus(t *testing.T) {
	in := []complex128{1, 5, 3, -2}
	out := LejaOrder(in)
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0] != 5 {
		t.Fatalf("first = %v, want 5", out[0])
	}
}

func TestLejaOrderIsPermutation(t *testing.T) {
	in := []complex128{1, -3, 2.5, 0.5, 4}
	out := LejaOrder(in)
	if len(out) != len(in) {
		t.Fatalf("length changed: %d", len(out))
	}
	used := make([]bool, len(in))
	for _, z := range out {
		found := false
		for i, w := range in {
			if !used[i] && cmplx.Abs(z-w) < 1e-12 {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("output %v not in input", z)
		}
	}
}

func TestLejaOrderConjugatePairsAdjacent(t *testing.T) {
	in := []complex128{
		complex(1, 2), complex(1, -2),
		complex(3, 0),
		complex(-2, 1), complex(-2, -1),
	}
	out := LejaOrder(in)
	if len(out) != 5 {
		t.Fatalf("len = %d", len(out))
	}
	for i := 0; i < len(out); i++ {
		if imag(out[i]) > 1e-12 {
			// positive-imag member must be immediately followed by its conjugate
			if i+1 >= len(out) || cmplx.Abs(out[i+1]-cmplx.Conj(out[i])) > 1e-10 {
				t.Fatalf("pair not adjacent at %d: %v", i, out)
			}
			i++ // skip the conjugate
		} else if imag(out[i]) < -1e-12 {
			t.Fatalf("negative-imag member leads at %d: %v", i, out)
		}
	}
}

func TestLejaOrderSecondMaximizesDistance(t *testing.T) {
	// Points on a line: after choosing 10, the farthest is -9.
	in := []complex128{10, 9, 0, -9}
	out := LejaOrder(in)
	if out[0] != 10 || out[1] != -9 {
		t.Fatalf("order = %v", out)
	}
}

func TestLejaOrderDegenerate(t *testing.T) {
	if out := LejaOrder(nil); out != nil {
		t.Fatal("nil input should return nil")
	}
	out := LejaOrder([]complex128{7})
	if len(out) != 1 || out[0] != 7 {
		t.Fatalf("singleton = %v", out)
	}
	// Repeated points must not blow up the log-product.
	out = LejaOrder([]complex128{2, 2, 2})
	if len(out) != 3 {
		t.Fatalf("repeated = %v", out)
	}
	for _, z := range out {
		if z != 2 {
			t.Fatalf("repeated = %v", out)
		}
	}
}

func TestLejaOrderLargeSetNoOverflow(t *testing.T) {
	// 60 well-spread points: products of distances overflow naive
	// accumulation; log-space must stay finite and produce a permutation.
	in := make([]complex128, 60)
	for i := range in {
		in[i] = complex(float64(i)*1e3, 0)
	}
	out := LejaOrder(in)
	if len(out) != 60 {
		t.Fatalf("len = %d", len(out))
	}
	seen := map[float64]bool{}
	for _, z := range out {
		if math.IsNaN(real(z)) || math.IsInf(real(z), 0) {
			t.Fatal("non-finite output")
		}
		seen[real(z)] = true
	}
	if len(seen) != 60 {
		t.Fatalf("only %d distinct outputs", len(seen))
	}
}
