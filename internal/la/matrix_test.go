package la

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestDenseAtSetCol(t *testing.T) {
	m := NewDense(3, 2)
	m.Set(1, 0, 5)
	m.Set(2, 1, -3)
	if m.At(1, 0) != 5 || m.At(2, 1) != -3 {
		t.Fatal("At/Set roundtrip failed")
	}
	col := m.Col(1)
	if len(col) != 3 || col[2] != -3 {
		t.Fatalf("Col = %v", col)
	}
	col[0] = 9 // Col is a view
	if m.At(0, 1) != 9 {
		t.Fatal("Col must alias matrix storage")
	}
}

func TestDenseStridePadding(t *testing.T) {
	m := NewDenseStride(3, 2, 5)
	for j := 0; j < 2; j++ {
		for i := 0; i < 3; i++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	if m.At(2, 1) != 21 {
		t.Fatalf("strided At = %v", m.At(2, 1))
	}
	// Padding must stay zero and not leak into Col.
	if len(m.Col(0)) != 3 {
		t.Fatalf("Col length = %d with stride", len(m.Col(0)))
	}
}

func TestColView(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randDense(rng, 4, 5)
	v := m.ColView(1, 4)
	if v.Rows != 4 || v.Cols != 3 {
		t.Fatalf("ColView shape %dx%d", v.Rows, v.Cols)
	}
	for j := 0; j < 3; j++ {
		for i := 0; i < 4; i++ {
			if v.At(i, j) != m.At(i, j+1) {
				t.Fatal("ColView content mismatch")
			}
		}
	}
	v.Set(0, 0, 99)
	if m.At(0, 1) != 99 {
		t.Fatal("ColView must alias")
	}
}

func TestRowView(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randDense(rng, 6, 3)
	v := m.RowView(2, 5)
	if v.Rows != 3 || v.Cols != 3 {
		t.Fatalf("RowView shape %dx%d", v.Rows, v.Cols)
	}
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			if v.At(i, j) != m.At(i+2, j) {
				t.Fatal("RowView content mismatch")
			}
		}
	}
	v.Set(0, 1, -42)
	if m.At(2, 1) != -42 {
		t.Fatal("RowView must alias")
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randDense(rng, 4, 4)
	c := m.Clone()
	c.Set(0, 0, 1234)
	if m.At(0, 0) == 1234 {
		t.Fatal("Clone must not alias")
	}
	if !m.Equalish(m.Clone(), 0) {
		t.Fatal("Clone content mismatch")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDense(2, 3)
	k := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, k)
			k++
		}
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("Transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if tr.At(j, i) != m.At(i, j) {
				t.Fatal("Transpose content mismatch")
			}
		}
	}
}

func TestEye(t *testing.T) {
	e := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Fatal("Eye wrong")
			}
		}
	}
}

func TestFrobNorm(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 3)
	m.Set(1, 1, 4)
	if got := m.FrobNorm(); !almostEq(got, 5, 1e-15) {
		t.Fatalf("FrobNorm = %v, want 5", got)
	}
	if got := NewDense(0, 0).FrobNorm(); got != 0 {
		t.Fatalf("FrobNorm empty = %v", got)
	}
}

func TestMaxAbs(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(1, 0, -9)
	m.Set(0, 1, 4)
	if got := m.MaxAbs(); got != 9 {
		t.Fatalf("MaxAbs = %v", got)
	}
}

func TestEqualish(t *testing.T) {
	a := NewDense(2, 2)
	b := NewDense(2, 2)
	b.Set(1, 1, 1e-12)
	if !a.Equalish(b, 1e-10) {
		t.Fatal("Equalish should tolerate 1e-12")
	}
	if a.Equalish(b, 1e-14) {
		t.Fatal("Equalish should reject at tight tol")
	}
	if a.Equalish(NewDense(2, 3), 1) {
		t.Fatal("Equalish must reject shape mismatch")
	}
}

func TestZeroRespectsViews(t *testing.T) {
	m := NewDense(4, 4)
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			m.Set(i, j, 1)
		}
	}
	m.ColView(1, 3).Zero()
	for i := 0; i < 4; i++ {
		if m.At(i, 0) != 1 || m.At(i, 3) != 1 {
			t.Fatal("Zero leaked outside view")
		}
		if m.At(i, 1) != 0 || m.At(i, 2) != 0 {
			t.Fatal("Zero missed view content")
		}
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := Eye(2)
	if s := small.String(); !strings.Contains(s, "1.0000e") {
		t.Fatalf("small String = %q", s)
	}
	big := NewDense(100, 100)
	if s := big.String(); !strings.Contains(s, "100x100") {
		t.Fatalf("large String = %q", s)
	}
}

func TestCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := randDense(rng, 3, 3)
	dst := NewDense(3, 3)
	dst.CopyFrom(src)
	if !dst.Equalish(src, 0) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(-1, 2)
}

func TestFrobNormNoOverflow(t *testing.T) {
	m := NewDense(2, 1)
	m.Set(0, 0, math.MaxFloat64/4)
	m.Set(1, 0, math.MaxFloat64/4)
	got := m.FrobNorm()
	if math.IsInf(got, 0) {
		t.Fatal("FrobNorm overflowed")
	}
}
