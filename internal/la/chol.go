package la

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when a non-positive pivot
// is encountered. In CA-GMRES this is the signature of an ill-conditioned
// Krylov basis panel: the Gram matrix V'V has condition number kappa(V)^2
// and its trailing block can lose positive definiteness in floating point.
var ErrNotPositiveDefinite = errors.New("la: matrix is not positive definite")

// Cholesky computes the upper-triangular factor R of B = R'R for a
// symmetric positive-definite B, writing R into a new matrix. B is not
// modified. The factorization proceeds from the top-left to the
// bottom-right, so — as the paper observes in Section V-D — error
// introduced while factoring the trailing submatrix stays localized there,
// which is why CholQR sometimes survives ill-conditioning that defeats
// SVQR.
func Cholesky(b *Dense) (*Dense, error) {
	n := b.Rows
	if b.Cols != n {
		panic(fmt.Sprintf("la: Cholesky non-square %dx%d", b.Rows, b.Cols))
	}
	r := NewDense(n, n)
	for j := 0; j < n; j++ {
		// diagonal: r_jj = sqrt(b_jj - sum_{k<j} r_kj^2)
		d := b.At(j, j)
		for k := 0; k < j; k++ {
			rkj := r.At(k, j)
			d -= rkj * rkj
		}
		// Fail only on mathematically invalid pivots. A tiny positive
		// pivot is allowed through: the Gram matrices CA-GMRES feeds to
		// CholQR have condition numbers up to ~1/eps (the paper reports
		// kappa(B)=3.3e16 for cant, Figure 12) and still factorize
		// usefully because they are graded and Cholesky's errors stay
		// localized (Section V-D). Tightening this check would reject
		// exactly the windows the paper shows 2xCholQR handling.
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (pivot %d: %g)", ErrNotPositiveDefinite, j, d)
		}
		rjj := math.Sqrt(d)
		r.Set(j, j, rjj)
		// row j of R beyond the diagonal
		for c := j + 1; c < n; c++ {
			s := b.At(j, c)
			for k := 0; k < j; k++ {
				s -= r.At(k, j) * r.At(k, c)
			}
			r.Set(j, c, s/rjj)
		}
	}
	return r, nil
}

// CholeskySolve solves B x = y given the upper-triangular Cholesky factor
// R (B = R'R): first R' z = y by forward substitution, then R x = z by
// back substitution. y is overwritten with the solution.
func CholeskySolve(r *Dense, y []float64) {
	n := r.Rows
	if len(y) != n {
		panic("la: CholeskySolve length mismatch")
	}
	// forward: R' z = y
	for i := 0; i < n; i++ {
		s := y[i]
		for k := 0; k < i; k++ {
			s -= r.At(k, i) * y[k]
		}
		y[i] = s / r.At(i, i)
	}
	// backward: R x = z
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= r.At(i, k) * y[k]
		}
		y[i] = s / r.At(i, i)
	}
}

// UpperSolve solves R x = y in place for upper-triangular R.
func UpperSolve(r *Dense, y []float64) {
	n := r.Rows
	if len(y) != n {
		panic("la: UpperSolve length mismatch")
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= r.At(i, k) * y[k]
		}
		d := r.At(i, i)
		if d == 0 {
			panic("la: UpperSolve singular R")
		}
		y[i] = s / d
	}
}

// InvertUpper returns the inverse of an upper-triangular matrix R.
func InvertUpper(r *Dense) *Dense {
	n := r.Rows
	inv := Eye(n)
	for j := 0; j < n; j++ {
		UpperSolve(r, inv.Col(j))
	}
	return inv
}
