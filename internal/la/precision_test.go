package la

import (
	"math"
	"math/rand"
	"testing"
)

func TestBF16Rounding(t *testing.T) {
	// Values exactly representable in bfloat16 survive the round-trip;
	// everything else lands on one of the two neighbouring bf16 values
	// with ties to even.
	exact := []float64{0, 1, -1, 0.5, 2, -3, 1.5, 256, 1.0 / 1024}
	for _, v := range exact {
		if got := BF16(v); got != v {
			t.Fatalf("BF16(%v) = %v, want exact round-trip", v, got)
		}
	}
	// 1 + 2^-9 is exactly halfway between bf16 neighbours 1 and 1+2^-8:
	// round-to-even picks 1.
	if got := BF16(1 + 1.0/512); got != 1 {
		t.Fatalf("BF16(1+2^-9) = %v, want 1 (ties to even)", got)
	}
	// 1 + 3*2^-9 is halfway between 1+2^-8 and 1+2^-7: even mantissa is
	// 1+2^-7.
	if got := BF16(1 + 3.0/512); got != 1+1.0/128 {
		t.Fatalf("BF16(1+3*2^-9) = %v, want 1+2^-7 (ties to even)", got)
	}
	// Specials survive.
	if got := BF16(math.Inf(1)); !math.IsInf(got, 1) {
		t.Fatalf("BF16(+Inf) = %v", got)
	}
	if got := BF16(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("BF16(NaN) = %v", got)
	}
	// Idempotent: a bf16 value rounds to itself.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := BF16(rng.NormFloat64() * math.Pow(2, float64(rng.Intn(40)-20)))
		if BF16(v) != v {
			t.Fatalf("BF16 not idempotent at %v", v)
		}
		// Relative error bound: 8-bit mantissa gives eps = 2^-8.
		x := rng.NormFloat64()
		if e := math.Abs(BF16(x)-x) / math.Abs(x); e > 1.0/256 {
			t.Fatalf("BF16(%v) relative error %v > 2^-8", x, e)
		}
	}
}

func TestRoundSliceWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 257)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	f := append([]float64(nil), x...)
	RoundF32(f)
	for i := range f {
		if f[i] != float64(float32(x[i])) {
			t.Fatalf("RoundF32[%d] = %v, want %v", i, f[i], float64(float32(x[i])))
		}
	}
	RoundF32(f) // idempotent
	b := append([]float64(nil), x...)
	RoundBF16(b)
	for i := range b {
		if b[i] != BF16(x[i]) {
			t.Fatalf("RoundBF16[%d] = %v, want %v", i, b[i], BF16(x[i]))
		}
		if BF16(b[i]) != b[i] {
			t.Fatalf("RoundBF16 not idempotent at %d", i)
		}
	}
}

func TestF32KernelsMatchFP64WithinSingle(t *testing.T) {
	// The fp32 kernels agree with their double-precision siblings to a
	// single-precision tolerance, and their results carry no more than
	// float32 information (every output survives a float32 round-trip).
	const rows, k, n = 300, 7, 5
	a := randDense(rand.New(rand.NewSource(1)), rows, k)
	bm := randDense(rand.New(rand.NewSource(2)), k, n)
	tall := randDense(rand.New(rand.NewSource(9)), rows, n)

	c64 := NewDense(rows, n)
	c32 := NewDense(rows, n)
	GemmNN(1, a, bm, 0, c64)
	GemmNNF32(1, a, bm, 0, c32)
	for j := 0; j < n; j++ {
		for i := 0; i < rows; i++ {
			d := math.Abs(c64.At(i, j) - c32.At(i, j))
			if d > 1e-4 {
				t.Fatalf("GemmNNF32 deviates at (%d,%d): %v", i, j, d)
			}
			if v := c32.At(i, j); v != float64(float32(v)) {
				t.Fatalf("GemmNNF32 output not float32-representable at (%d,%d)", i, j)
			}
		}
	}

	g64 := NewDense(n, n)
	g32 := NewDense(n, n)
	GemmTN(1, tall, tall, 0, g64)
	GemmTNF32(1, tall, tall, 0, g32)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if d := math.Abs(g64.At(i, j) - g32.At(i, j)); d > 1e-3 {
				t.Fatalf("GemmTNF32 deviates at (%d,%d): %v", i, j, d)
			}
		}
	}

	x := make([]float64, k)
	for i := range x {
		x[i] = float64(i) - 2.5
	}
	y64 := make([]float64, rows)
	y32 := make([]float64, rows)
	Gemv(1, a, x, 0, y64)
	GemvF32(1, a, x, 0, y32)
	for i := range y64 {
		if d := math.Abs(y64[i] - y32[i]); d > 1e-4 {
			t.Fatalf("GemvF32 deviates at %d: %v", i, d)
		}
	}

	ax := append([]float64(nil), y64...)
	ay := append([]float64(nil), y32...)
	Axpy(0.25, y32, ax)
	AxpyF32(0.25, y64, ay)
	for i := range ax {
		if d := math.Abs(ax[i] - ay[i]); d > 1e-4 {
			t.Fatalf("AxpyF32 deviates at %d: %v", i, d)
		}
	}
}

func TestPrecisionKernelsAllocFree(t *testing.T) {
	// The pooled conversion buffers keep the narrow/compute/widen
	// round-trip alloc-free after warm-up.
	const rows, k, n = 512, 6, 4
	a := randDense(rand.New(rand.NewSource(11)), rows, k)
	bm := randDense(rand.New(rand.NewSource(12)), k, n)
	c := NewDense(rows, n)
	x := make([]float64, k)
	y := make([]float64, rows)
	GemmNNF32(1, a, bm, 0, c) // warm the pool
	GemvF32(1, a, x, 0, y)
	if allocs := testing.AllocsPerRun(20, func() {
		GemmNNF32(1, a, bm, 0, c)
		GemvF32(1, a, x, 0, y)
		RoundF32(y)
		RoundBF16(y)
	}); allocs > 0 {
		t.Fatalf("precision round-trip allocates %v per run, want 0", allocs)
	}
}

// BenchmarkPrecisionAllocs reports allocs/op for one widen/narrow
// round-trip of the fp32 basis-update kernel — the restart-path figure
// the conversion-buffer pool keeps at zero (compare BenchmarkRestartAllocs
// in internal/core).
func BenchmarkPrecisionAllocs(b *testing.B) {
	const rows, k, n = 4096, 10, 10
	a := randDense(rand.New(rand.NewSource(21)), rows, k)
	bm := randDense(rand.New(rand.NewSource(22)), k, n)
	c := randDense(rand.New(rand.NewSource(23)), rows, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmNNF32(-1, a, bm, 1, c)
		RoundF32(c.Col(i % n))
	}
}
