// Package la provides the dense linear-algebra substrate used by the
// CA-GMRES reproduction: BLAS-1/2/3 style kernels, Householder QR,
// Cholesky and eigenvalue/SVD factorizations of small matrices, Givens
// least-squares solves for Hessenberg systems, and the Leja ordering of
// shifts used by the Newton-basis matrix powers kernel.
//
// The package is pure Go and depends only on the standard library. Kernels
// come in a serial form and, where it matters for tall-skinny workloads
// (GEMM/GEMV on matrices with hundreds of thousands of rows and tens of
// columns), a parallel blocked form. The parallel forms mirror the batched
// DGEMM optimization of Yamazaki et al. (IPDPS 2014, Section V-F): the tall
// matrix is cut into row panels, each panel product is computed
// independently, and a final reduction sums the partial Gram matrices.
package la

import (
	"fmt"
	"math"
)

// Dot returns the inner product x'y. It panics if the lengths differ.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("la: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("la: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal scales x by alpha in place.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Nrm2 returns the Euclidean norm of x. It guards against overflow and
// underflow by scaling, following the classic LAPACK dnrm2 approach.
func Nrm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Copy copies src into dst. It panics if the lengths differ.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("la: Copy length mismatch %d vs %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Zero sets every element of x to zero.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// AbsMax returns the maximum absolute value in x, or 0 for an empty slice.
func AbsMax(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sub computes z = x - y element-wise, storing into z.
func Sub(z, x, y []float64) {
	if len(x) != len(y) || len(z) != len(x) {
		panic("la: Sub length mismatch")
	}
	for i := range z {
		z[i] = x[i] - y[i]
	}
}

// Add computes z = x + y element-wise, storing into z.
func Add(z, x, y []float64) {
	if len(x) != len(y) || len(z) != len(x) {
		panic("la: Add length mismatch")
	}
	for i := range z {
		z[i] = x[i] + y[i]
	}
}
