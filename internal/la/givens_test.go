package la

import (
	"math"
	"math/rand"
	"testing"
)

func TestHessenbergLSMatchesQR(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, k := range []int{1, 3, 8, 20} {
		h := NewDense(k+1, k)
		for j := 0; j < k; j++ {
			for i := 0; i <= j+1; i++ {
				h.Set(i, j, rng.NormFloat64())
			}
		}
		c := randVec(rng, k+1)
		y, res := HessenbergLS(h, c)
		// Compare with dense QR least squares.
		want := QRLeastSquares(h, c)
		for i := range want {
			if !almostEq(y[i], want[i], 1e-9) {
				t.Fatalf("k=%d: y[%d] = %v, want %v", k, i, y[i], want[i])
			}
		}
		// Residual must match ||c - H y||.
		r := make([]float64, k+1)
		Gemv(1, h, y, 0, r)
		Sub(r, c, r)
		if !almostEq(res, Nrm2(r), 1e-9) {
			t.Fatalf("k=%d: residual %v, want %v", k, res, Nrm2(r))
		}
	}
}

func TestGivensQRIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := 15
	beta := 2.5
	h := NewDense(m+1, m)
	for j := 0; j < m; j++ {
		for i := 0; i <= j+1; i++ {
			h.Set(i, j, rng.NormFloat64())
		}
	}
	inc := NewGivensQR(m, beta)
	var lastRes float64
	for j := 0; j < m; j++ {
		col := make([]float64, j+2)
		for i := 0; i <= j+1; i++ {
			col[i] = h.At(i, j)
		}
		lastRes = inc.Append(col)
	}
	c := make([]float64, m+1)
	c[0] = beta
	yBatch, resBatch := HessenbergLS(h, c)
	if !almostEq(lastRes, resBatch, 1e-9) {
		t.Fatalf("incremental residual %v, batch %v", lastRes, resBatch)
	}
	y := inc.Solve()
	for i := range yBatch {
		if !almostEq(y[i], yBatch[i], 1e-9) {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], yBatch[i])
		}
	}
	if !almostEq(inc.ResidualNorm(), resBatch, 1e-9) {
		t.Fatal("ResidualNorm mismatch")
	}
}

func TestGivensQRResidualMonotone(t *testing.T) {
	// GMRES guarantee: the residual norm is non-increasing as columns are
	// appended. Verify on random Hessenberg data.
	rng := rand.New(rand.NewSource(32))
	m := 25
	inc := NewGivensQR(m, 1)
	prev := 1.0
	for j := 0; j < m; j++ {
		col := randVec(rng, j+2)
		res := inc.Append(col)
		if res > prev+1e-12 {
			t.Fatalf("residual increased at step %d: %v > %v", j, res, prev)
		}
		prev = res
	}
}

func TestGivensRZeroCases(t *testing.T) {
	cs, sn := givensR(0, 0)
	if cs != 1 || sn != 0 {
		t.Fatal("givensR(0,0) should be identity")
	}
	cs, sn = givensR(0, 5)
	if cs != 0 || sn != 1 {
		t.Fatal("givensR(0,b) should swap")
	}
	cs, sn = givensR(3, 4)
	if !almostEq(cs, 0.6, 1e-15) || !almostEq(sn, 0.8, 1e-15) {
		t.Fatalf("givensR(3,4) = %v,%v", cs, sn)
	}
	if r := cs*3 + sn*4; !almostEq(r, 5, 1e-15) {
		t.Fatalf("rotation r = %v", r)
	}
	if z := -sn*3 + cs*4; math.Abs(z) > 1e-15 {
		t.Fatalf("rotation failed to zero: %v", z)
	}
}

func TestUpperSolve(t *testing.T) {
	r := NewDense(3, 3)
	r.Set(0, 0, 2)
	r.Set(0, 1, 1)
	r.Set(0, 2, 3)
	r.Set(1, 1, 4)
	r.Set(1, 2, -1)
	r.Set(2, 2, 5)
	x := []float64{1, 2, 3}
	rhs := make([]float64, 3)
	Gemv(1, r, x, 0, rhs)
	UpperSolve(r, rhs)
	for i := range x {
		if !almostEq(rhs[i], x[i], 1e-12) {
			t.Fatalf("UpperSolve = %v", rhs)
		}
	}
}

func TestInvertUpper(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 6
	r := NewDense(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			r.Set(i, j, rng.NormFloat64())
		}
		r.Set(j, j, 1+rng.Float64())
	}
	inv := InvertUpper(r)
	prod := NewDense(n, n)
	GemmNN(1, r, inv, 0, prod)
	if !prod.Equalish(Eye(n), 1e-10) {
		t.Fatal("R * inv(R) != I")
	}
}
