package la

import "testing"

// Degenerate-shape coverage: every BLAS entry point must accept empty
// operands (zero rows and/or zero columns) without panicking, and the
// beta handling of the multiply kernels must still reach y / C.

func TestGemvZeroDims(t *testing.T) {
	// Zero columns: y := beta*y is all that remains.
	y := []float64{2, 4}
	Gemv(3, NewDense(2, 0), nil, 0.5, y)
	if y[0] != 1 || y[1] != 2 {
		t.Fatalf("0-col Gemv y = %v", y)
	}
	// Zero rows: nothing to write, must not panic.
	Gemv(3, NewDense(0, 4), []float64{1, 2, 3, 4}, 2, []float64{})
	// Zero both.
	Gemv(1, NewDense(0, 0), nil, 0, nil)
}

func TestGemvTZeroDims(t *testing.T) {
	// Zero rows: every dot is empty, y := beta*y (+ alpha*0).
	y := []float64{1, 1, 1}
	GemvT(2, NewDense(0, 3), []float64{}, 3, y)
	if y[0] != 3 || y[1] != 3 || y[2] != 3 {
		t.Fatalf("0-row GemvT y = %v", y)
	}
	// Zero cols: empty y, must not panic.
	GemvT(2, NewDense(5, 0), make([]float64, 5), 0, nil)
}

func TestGemmNNZeroDims(t *testing.T) {
	// Inner dimension zero: C := beta*C.
	c := NewDense(2, 2)
	c.Set(0, 0, 4)
	GemmNN(1, NewDense(2, 0), NewDense(0, 2), 0.5, c)
	if c.At(0, 0) != 2 {
		t.Fatalf("0-inner GemmNN C[0,0] = %v", c.At(0, 0))
	}
	// Zero output rows / cols.
	GemmNN(1, NewDense(0, 3), NewDense(3, 2), 0, NewDense(0, 2))
	GemmNN(1, NewDense(2, 3), NewDense(3, 0), 1, NewDense(2, 0))
}

func TestGemmTNZeroDims(t *testing.T) {
	// Inner (shared row) dimension zero: C := beta*C + alpha*0.
	c := NewDense(2, 2)
	c.Set(1, 1, 6)
	GemmTN(1, NewDense(0, 2), NewDense(0, 2), 0.5, c)
	if c.At(1, 1) != 3 {
		t.Fatalf("0-inner GemmTN C[1,1] = %v", c.At(1, 1))
	}
	GemmTN(1, NewDense(4, 0), NewDense(4, 2), 0, NewDense(0, 2))
	GemmTN(1, NewDense(4, 2), NewDense(4, 0), 1, NewDense(2, 0))
}

func TestSyrkZeroDims(t *testing.T) {
	Syrk(NewDense(0, 0), NewDense(0, 0))
	// Zero rows, nonzero cols: Gram matrix of empty columns is zero.
	c := NewDense(2, 2)
	c.Set(0, 1, 9)
	Syrk(NewDense(0, 2), c)
	if c.At(0, 1) != 0 || c.At(1, 0) != 0 {
		t.Fatalf("0-row Syrk C = %v", c)
	}
	Syrk(NewDense(5, 0), NewDense(0, 0))
}

func TestTrsmTrmmZeroDims(t *testing.T) {
	// Zero columns: nothing to solve or multiply.
	TrsmRightUpper(NewDense(3, 0), NewDense(0, 0))
	TrmmRightUpper(NewDense(3, 0), NewDense(0, 0))
	// Zero rows with nonzero triangular size: column slices are empty.
	r := Eye(2)
	TrsmRightUpper(NewDense(0, 2), r)
	TrmmRightUpper(NewDense(0, 2), r)
}
