package la

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// spdMatrix builds a random symmetric positive-definite matrix A'A + d*I.
func spdMatrix(rng *rand.Rand, n int, shift float64) *Dense {
	a := randDense(rng, n+3, n)
	c := NewDense(n, n)
	Syrk(a, c)
	for i := 0; i < n; i++ {
		c.Set(i, i, c.At(i, i)+shift)
	}
	return c
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{1, 2, 5, 12, 31} {
		b := spdMatrix(rng, n, 0.5)
		r, err := Cholesky(b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// R'R must reproduce B.
		rt := r.Transpose()
		got := NewDense(n, n)
		GemmNN(1, rt, r, 0, got)
		if !got.Equalish(b, 1e-10*b.MaxAbs()) {
			t.Fatalf("n=%d: R'R != B", n)
		}
		// R upper triangular with positive diagonal.
		for j := 0; j < n; j++ {
			if r.At(j, j) <= 0 {
				t.Fatal("non-positive diagonal")
			}
			for i := j + 1; i < n; i++ {
				if r.At(i, j) != 0 {
					t.Fatal("R not upper triangular")
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	b := NewDense(2, 2)
	b.Set(0, 0, 1)
	b.Set(1, 1, -1)
	if _, err := Cholesky(b); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	// Rank-deficient Gram matrix of duplicated columns.
	g := NewDense(2, 2)
	g.Set(0, 0, 1)
	g.Set(0, 1, 1)
	g.Set(1, 0, 1)
	g.Set(1, 1, 1)
	// Exactly singular: pivot 2 becomes 0.
	if _, err := Cholesky(g); err == nil {
		t.Fatal("expected failure on singular Gram matrix")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 9
	b := spdMatrix(rng, n, 1)
	r, err := Cholesky(b)
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(rng, n)
	rhs := make([]float64, n)
	Gemv(1, b, x, 0, rhs)
	CholeskySolve(r, rhs)
	for i := range x {
		if !almostEq(rhs[i], x[i], 1e-9) {
			t.Fatalf("CholeskySolve x[%d] = %v, want %v", i, rhs[i], x[i])
		}
	}
}

func TestHouseholderQRProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, shape := range [][2]int{{1, 1}, {5, 5}, {20, 6}, {100, 30}, {64, 1}} {
		m, n := shape[0], shape[1]
		a := randDense(rng, m, n)
		f := HouseholderQR(a)
		q := f.FormQ()
		r := f.R()
		// Q'Q = I
		qtq := NewDense(n, n)
		GemmTN(1, q, q, 0, qtq)
		if !qtq.Equalish(Eye(n), 1e-12) {
			t.Fatalf("%v: Q not orthonormal", shape)
		}
		// QR = A
		qr := NewDense(m, n)
		GemmNN(1, q, r, 0, qr)
		if !qr.Equalish(a, 1e-11*(1+a.MaxAbs())) {
			t.Fatalf("%v: QR != A", shape)
		}
		// R upper triangular
		for j := 0; j < n; j++ {
			for i := j + 1; i < n; i++ {
				if r.At(i, j) != 0 {
					t.Fatalf("%v: R not triangular", shape)
				}
			}
		}
	}
}

func TestQROrthonormalQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 10 + r.Intn(60)
		n := 1 + r.Intn(10)
		a := randDense(r, m, n)
		q := HouseholderQR(a).FormQ()
		qtq := NewDense(n, n)
		GemmTN(1, q, q, 0, qtq)
		return qtq.Equalish(Eye(n), 1e-12)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestApplyQTMatchesFormQ(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randDense(rng, 30, 8)
	f := HouseholderQR(a)
	x := randVec(rng, 30)
	x2 := make([]float64, 30)
	copy(x2, x)
	f.ApplyQT(x)
	q := f.FormQ()
	want := make([]float64, 8)
	GemvT(1, q, x2, 0, want)
	for j := 0; j < 8; j++ {
		if !almostEq(x[j], want[j], 1e-11) {
			t.Fatalf("ApplyQT[%d] = %v, want %v", j, x[j], want[j])
		}
	}
}

func TestQRLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	a := randDense(rng, 40, 6)
	xTrue := randVec(rng, 6)
	b := make([]float64, 40)
	Gemv(1, a, xTrue, 0, b)
	x := QRLeastSquares(a, b)
	for i := range xTrue {
		if !almostEq(x[i], xTrue[i], 1e-10) {
			t.Fatalf("LS x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestQRRankDeficientZeroColumn(t *testing.T) {
	a := NewDense(5, 2)
	for i := 0; i < 5; i++ {
		a.Set(i, 0, float64(i+1))
	}
	// Second column identically zero: tau must be 0, no NaNs.
	f := HouseholderQR(a)
	q := f.FormQ()
	for j := 0; j < 2; j++ {
		for _, v := range q.Col(j) {
			if math.IsNaN(v) {
				t.Fatal("NaN in Q for rank-deficient input")
			}
		}
	}
}

func TestFixRSigns(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	a := randDense(rng, 20, 5)
	f := HouseholderQR(a)
	q, r := f.FormQ(), f.R()
	FixRSigns(q, r)
	for i := 0; i < 5; i++ {
		if r.At(i, i) < 0 {
			t.Fatal("negative diagonal after FixRSigns")
		}
	}
	// QR must still equal A.
	qr := NewDense(20, 5)
	GemmNN(1, q, r, 0, qr)
	if !qr.Equalish(a, 1e-11) {
		t.Fatal("FixRSigns broke the factorization")
	}
}

func TestJacobiEig(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	n := 8
	b := spdMatrix(rng, n, 0.1)
	w, u := JacobiEig(b)
	// Eigenvalues descending.
	for i := 1; i < n; i++ {
		if w[i] > w[i-1]+1e-12 {
			t.Fatal("eigenvalues not sorted descending")
		}
	}
	// U orthonormal.
	utu := NewDense(n, n)
	GemmTN(1, u, u, 0, utu)
	if !utu.Equalish(Eye(n), 1e-10) {
		t.Fatal("U not orthonormal")
	}
	// B u_i = w_i u_i
	for i := 0; i < n; i++ {
		bu := make([]float64, n)
		Gemv(1, b, u.Col(i), 0, bu)
		for k := 0; k < n; k++ {
			if !almostEq(bu[k], w[i]*u.At(k, i), 1e-8*(1+math.Abs(w[0]))) {
				t.Fatalf("eigenpair %d violated", i)
			}
		}
	}
}

func TestJacobiEigDiagonal(t *testing.T) {
	d := NewDense(3, 3)
	d.Set(0, 0, 3)
	d.Set(1, 1, 1)
	d.Set(2, 2, 2)
	w, _ := JacobiEig(d)
	want := []float64{3, 2, 1}
	for i := range want {
		if !almostEq(w[i], want[i], 1e-14) {
			t.Fatalf("w = %v", w)
		}
	}
}

func TestSymCond2(t *testing.T) {
	d := NewDense(2, 2)
	d.Set(0, 0, 100)
	d.Set(1, 1, 4)
	if got := SymCond2(d); !almostEq(got, 25, 1e-12) {
		t.Fatalf("SymCond2 = %v, want 25", got)
	}
	s := NewDense(2, 2)
	s.Set(0, 0, 1) // second eigenvalue 0
	if got := SymCond2(s); !math.IsInf(got, 1) {
		t.Fatalf("SymCond2 singular = %v, want +Inf", got)
	}
}

func TestGramCond2(t *testing.T) {
	// Orthonormal columns: condition number 1.
	rng := rand.New(rand.NewSource(28))
	q := HouseholderQR(randDense(rng, 50, 5)).FormQ()
	if got := GramCond2(q); !almostEq(got, 1, 1e-6) {
		t.Fatalf("GramCond2(Q) = %v, want 1", got)
	}
}

func TestHessenbergEigenvaluesKnown(t *testing.T) {
	// Companion-style Hessenberg of polynomial (x-1)(x-2)(x-3).
	h := NewDense(3, 3)
	// Use an upper Hessenberg with known spectrum: triangular case.
	h.Set(0, 0, 1)
	h.Set(1, 1, 2)
	h.Set(2, 2, 3)
	h.Set(0, 1, 5)
	h.Set(1, 2, -4)
	eig := HessenbergEigenvalues(h)
	re := make([]float64, len(eig))
	for i, z := range eig {
		if math.Abs(imag(z)) > 1e-10 {
			t.Fatalf("unexpected complex eigenvalue %v", z)
		}
		re[i] = real(z)
	}
	sort.Float64s(re)
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEq(re[i], want[i], 1e-10) {
			t.Fatalf("eigs = %v", re)
		}
	}
}

func TestHessenbergEigenvaluesComplexPair(t *testing.T) {
	// [[0 -1],[1 0]] has eigenvalues ±i.
	h := NewDense(2, 2)
	h.Set(0, 1, -1)
	h.Set(1, 0, 1)
	eig := HessenbergEigenvalues(h)
	if len(eig) != 2 {
		t.Fatalf("got %d eigenvalues", len(eig))
	}
	for _, z := range eig {
		if !almostEq(cmplx.Abs(z), 1, 1e-10) || !almostEq(math.Abs(imag(z)), 1, 1e-10) {
			t.Fatalf("eig = %v, want ±i", eig)
		}
	}
}

func TestHessenbergEigenvaluesRandomTrace(t *testing.T) {
	// Eigenvalue sum must equal the trace; product magnitudes must match
	// the determinant for a random Hessenberg matrix.
	rng := rand.New(rand.NewSource(29))
	n := 12
	h := NewDense(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j+1 && i < n; i++ {
			h.Set(i, j, rng.NormFloat64())
		}
	}
	eig := HessenbergEigenvalues(h)
	if len(eig) != n {
		t.Fatalf("got %d eigenvalues, want %d", len(eig), n)
	}
	var sum complex128
	for _, z := range eig {
		sum += z
	}
	var tr float64
	for i := 0; i < n; i++ {
		tr += h.At(i, i)
	}
	if !almostEq(real(sum), tr, 1e-8) || math.Abs(imag(sum)) > 1e-8 {
		t.Fatalf("sum(eig) = %v, trace = %v", sum, tr)
	}
}

func TestHessenbergEigenvaluesEmpty(t *testing.T) {
	if got := HessenbergEigenvalues(NewDense(0, 0)); len(got) != 0 {
		t.Fatal("empty matrix should have no eigenvalues")
	}
	one := NewDense(1, 1)
	one.Set(0, 0, 7)
	eig := HessenbergEigenvalues(one)
	if len(eig) != 1 || !almostEq(real(eig[0]), 7, 1e-15) {
		t.Fatalf("1x1 eig = %v", eig)
	}
}
