package la

import (
	"math"
	"math/cmplx"
)

// LejaOrder orders a set of (possibly complex) shifts in the modified Leja
// ordering used by the Newton-basis matrix powers kernel: the first point
// has maximal modulus, and each subsequent point maximizes the product of
// distances to all previously chosen points. Products are accumulated in
// log space to avoid overflow for large shift sets.
//
// For real matrices the shifts arrive in complex-conjugate pairs; the
// modified ordering keeps each pair adjacent with the positive-imaginary
// member first, so the real-arithmetic two-step recurrence of Hoemmen's
// thesis (Section 7.3.2) can consume them pairwise.
func LejaOrder(shifts []complex128) []complex128 {
	n := len(shifts)
	if n == 0 {
		return nil
	}
	pts := make([]complex128, n)
	copy(pts, shifts)
	// Canonicalize conjugate pairs: positive imaginary part first.
	// Collapse each conjugate pair into a single candidate marked as a pair.
	type cand struct {
		z      complex128
		isPair bool
	}
	const imTol = 1e-12
	used := make([]bool, n)
	var cands []cand
	for i := 0; i < n; i++ {
		if used[i] {
			continue
		}
		z := pts[i]
		if math.Abs(imag(z)) <= imTol*(1+cmplx.Abs(z)) {
			cands = append(cands, cand{complex(real(z), 0), false})
			used[i] = true
			continue
		}
		// Find the conjugate partner.
		partner := -1
		for j := i + 1; j < n; j++ {
			if used[j] {
				continue
			}
			if cmplx.Abs(pts[j]-cmplx.Conj(z)) <= 1e-8*(1+cmplx.Abs(z)) {
				partner = j
				break
			}
		}
		zc := z
		if imag(zc) < 0 {
			zc = cmplx.Conj(zc)
		}
		if partner >= 0 {
			used[partner] = true
			cands = append(cands, cand{zc, true})
		} else {
			// Unpaired complex Ritz value (can happen with inexact
			// eigensolves): treat it as a pair so real arithmetic still
			// works downstream.
			cands = append(cands, cand{zc, true})
		}
		used[i] = true
	}
	// Greedy Leja selection over the collapsed candidates.
	m := len(cands)
	chosen := make([]bool, m)
	order := make([]int, 0, m)
	// Start with the candidate of maximum modulus.
	best, bestAbs := 0, -1.0
	for i, c := range cands {
		if a := cmplx.Abs(c.z); a > bestAbs {
			best, bestAbs = i, a
		}
	}
	order = append(order, best)
	chosen[best] = true
	for len(order) < m {
		best, bestVal := -1, math.Inf(-1)
		for i, c := range cands {
			if chosen[i] {
				continue
			}
			// log prod |z_i - z_k| over chosen points (counting the
			// conjugate of a chosen pair as a point too).
			v := 0.0
			for _, k := range order {
				zk := cands[k].z
				v += logDist(c.z, zk)
				if cands[k].isPair {
					v += logDist(c.z, cmplx.Conj(zk))
				}
			}
			if v > bestVal {
				best, bestVal = i, v
			}
		}
		order = append(order, best)
		chosen[best] = true
	}
	// Expand pairs back out: z followed by conj(z).
	out := make([]complex128, 0, n)
	for _, i := range order {
		c := cands[i]
		out = append(out, c.z)
		if c.isPair {
			out = append(out, cmplx.Conj(c.z))
		}
	}
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func logDist(a, b complex128) float64 {
	d := cmplx.Abs(a - b)
	if d <= 0 {
		return -745 // log of smallest normal float64, effectively -inf
	}
	return math.Log(d)
}
