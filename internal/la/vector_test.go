package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 12 {
		t.Fatalf("Dot = %v, want 12", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	// alpha = 0 must leave y untouched.
	Axpy(0, x, y)
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy(0) modified y")
		}
	}
}

func TestScal(t *testing.T) {
	x := []float64{1, -2, 4}
	Scal(-0.5, x)
	want := []float64{-0.5, 1, -2}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("Scal x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestNrm2(t *testing.T) {
	if got := Nrm2([]float64{3, 4}); !almostEq(got, 5, 1e-15) {
		t.Fatalf("Nrm2 = %v, want 5", got)
	}
	if got := Nrm2(nil); got != 0 {
		t.Fatalf("Nrm2(nil) = %v, want 0", got)
	}
	// Overflow guard: components near sqrt(MaxFloat64).
	big := math.MaxFloat64 / 4
	got := Nrm2([]float64{big, big})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Nrm2 overflowed: %v", got)
	}
	if !almostEq(got, big*math.Sqrt2, 1e-14) {
		t.Fatalf("Nrm2 big = %v", got)
	}
	// Underflow guard.
	small := math.SmallestNonzeroFloat64 * 4
	got = Nrm2([]float64{small, small})
	if got == 0 {
		t.Fatalf("Nrm2 underflowed to zero")
	}
}

func TestNrm2MatchesDot(t *testing.T) {
	f := func(xs []float64) bool {
		// Keep magnitudes sane for the naive comparison.
		for i := range xs {
			xs[i] = math.Mod(xs[i], 1e6)
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		naive := math.Sqrt(Dot(xs, xs))
		return almostEq(Nrm2(xs), naive, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSubAdd(t *testing.T) {
	x := []float64{5, 6}
	y := []float64{1, 2}
	z := make([]float64, 2)
	Sub(z, x, y)
	if z[0] != 4 || z[1] != 4 {
		t.Fatalf("Sub = %v", z)
	}
	Add(z, z, y)
	if z[0] != 5 || z[1] != 6 {
		t.Fatalf("Add = %v", z)
	}
}

func TestAbsMax(t *testing.T) {
	if got := AbsMax([]float64{-7, 3, 5}); got != 7 {
		t.Fatalf("AbsMax = %v, want 7", got)
	}
	if got := AbsMax(nil); got != 0 {
		t.Fatalf("AbsMax(nil) = %v, want 0", got)
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func randDense(rng *rand.Rand, m, n int) *Dense {
	a := NewDense(m, n)
	for j := 0; j < n; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	return a
}
