package la

import (
	"fmt"
	"math"
)

// QRFactor holds a compact Householder QR factorization of an m x n matrix
// (m >= n): the factored matrix (R in the upper triangle, Householder
// vectors below the diagonal) and the tau coefficients. This mirrors
// LAPACK's GEQRF storage so Q can be applied without forming it, or
// materialized with FormQ (the paper's implementation explicitly forms Q;
// both paths are provided and tested).
type QRFactor struct {
	QR  *Dense
	Tau []float64
}

// HouseholderQR computes the QR factorization of a copy of A. A itself is
// untouched. It panics if A has more columns than rows.
func HouseholderQR(a *Dense) *QRFactor {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("la: HouseholderQR needs rows >= cols, got %dx%d", m, n))
	}
	qr := a.Clone()
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		col := qr.Col(k)
		// Householder vector for col[k:m].
		alpha := col[k]
		norm := Nrm2(col[k:])
		if norm == 0 {
			tau[k] = 0
			continue
		}
		beta := -math.Copysign(norm, alpha)
		tau[k] = (beta - alpha) / beta
		scale := 1 / (alpha - beta)
		for i := k + 1; i < m; i++ {
			col[i] *= scale
		}
		col[k] = beta
		// Apply H_k = I - tau v v' to the trailing columns.
		for j := k + 1; j < n; j++ {
			cj := qr.Col(j)
			// w = v' c_j with v = [1; col[k+1:m]]
			w := cj[k]
			for i := k + 1; i < m; i++ {
				w += col[i] * cj[i]
			}
			w *= tau[k]
			cj[k] -= w
			for i := k + 1; i < m; i++ {
				cj[i] -= w * col[i]
			}
		}
	}
	return &QRFactor{QR: qr, Tau: tau}
}

// R returns the n x n upper-triangular factor.
func (f *QRFactor) R() *Dense {
	n := f.QR.Cols
	r := NewDense(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j && i < f.QR.Rows; i++ {
			r.Set(i, j, f.QR.At(i, j))
		}
	}
	return r
}

// FormQ materializes the thin Q factor (m x n) by accumulating the
// Householder reflectors against the identity, mirroring LAPACK ORGQR.
func (f *QRFactor) FormQ() *Dense {
	m, n := f.QR.Rows, f.QR.Cols
	q := NewDense(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		if f.Tau[k] == 0 {
			continue
		}
		v := f.QR.Col(k)
		for j := 0; j < n; j++ {
			cj := q.Col(j)
			w := cj[k]
			for i := k + 1; i < m; i++ {
				w += v[i] * cj[i]
			}
			w *= f.Tau[k]
			cj[k] -= w
			for i := k + 1; i < m; i++ {
				cj[i] -= w * v[i]
			}
		}
	}
	return q
}

// ApplyQT overwrites x (length m) with Q'*x using the stored reflectors.
func (f *QRFactor) ApplyQT(x []float64) {
	m, n := f.QR.Rows, f.QR.Cols
	if len(x) != m {
		panic("la: ApplyQT length mismatch")
	}
	for k := 0; k < n; k++ {
		if f.Tau[k] == 0 {
			continue
		}
		v := f.QR.Col(k)
		w := x[k]
		for i := k + 1; i < m; i++ {
			w += v[i] * x[i]
		}
		w *= f.Tau[k]
		x[k] -= w
		for i := k + 1; i < m; i++ {
			x[i] -= w * v[i]
		}
	}
}

// QRLeastSquares solves min ||b - A x||_2 for full-column-rank A (m >= n)
// via Householder QR. Returns the solution of length n.
func QRLeastSquares(a *Dense, b []float64) []float64 {
	f := HouseholderQR(a)
	rhs := make([]float64, len(b))
	copy(rhs, b)
	f.ApplyQT(rhs)
	x := rhs[:a.Cols]
	r := f.R()
	sol := make([]float64, a.Cols)
	copy(sol, x)
	UpperSolve(r, sol)
	return sol
}

// FixRSigns flips the signs of R's rows (and correspondingly Q's columns,
// if q is non-nil) so that R has a non-negative diagonal. TSQR tree
// reductions produce R factors with arbitrary diagonal signs; normalizing
// makes results comparable across strategies and device counts.
func FixRSigns(q, r *Dense) {
	for i := 0; i < r.Rows; i++ {
		if r.At(i, i) >= 0 {
			continue
		}
		for j := i; j < r.Cols; j++ {
			r.Set(i, j, -r.At(i, j))
		}
		if q != nil {
			Scal(-1, q.Col(i))
		}
	}
}
