package la

import "fmt"

// BlockedQR computes the same Householder QR factorization as
// HouseholderQR but with the compact-WY blocked algorithm (LAPACK
// GEQRT-style): columns are factored in panels of nb, and each panel's nb
// reflectors are applied to the trailing matrix as one block reflector
//
//	Q_panel' = I - V T' V'
//
// through two matrix-matrix products instead of nb rank-1 sweeps. This is
// the "effects of blocking" the paper's footnote 6 defers to Hoemmen's
// hybrid CAQR work: identical flops, BLAS-3 instead of BLAS-2 memory
// traffic on the trailing update. The returned factorization is storage-
// compatible with HouseholderQR (R in the upper triangle, reflectors
// below, tau coefficients), so FormQ/ApplyQT/R work unchanged.
func BlockedQR(a *Dense, nb int) *QRFactor {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("la: BlockedQR needs rows >= cols, got %dx%d", m, n))
	}
	if nb < 1 {
		nb = 8
	}
	qr := a.Clone()
	tau := make([]float64, n)
	for k0 := 0; k0 < n; k0 += nb {
		k1 := k0 + nb
		if k1 > n {
			k1 = n
		}
		panelQR(qr, tau, k0, k1)
		if k1 < n {
			t := larft(qr, tau, k0, k1)
			applyBlockReflectorT(qr, t, k0, k1, n)
		}
	}
	return &QRFactor{QR: qr, Tau: tau}
}

// panelQR factors columns [k0, k1) with plain Householder reflectors,
// applying each reflector only within the panel.
func panelQR(qr *Dense, tau []float64, k0, k1 int) {
	m := qr.Rows
	for k := k0; k < k1; k++ {
		col := qr.Col(k)
		alpha := col[k]
		norm := Nrm2(col[k:])
		if norm == 0 {
			tau[k] = 0
			continue
		}
		beta := alpha
		if alpha >= 0 {
			beta = -norm
		} else {
			beta = norm
		}
		tau[k] = (beta - alpha) / beta
		scale := 1 / (alpha - beta)
		for i := k + 1; i < m; i++ {
			col[i] *= scale
		}
		col[k] = beta
		for j := k + 1; j < k1; j++ {
			cj := qr.Col(j)
			w := cj[k]
			for i := k + 1; i < m; i++ {
				w += col[i] * cj[i]
			}
			w *= tau[k]
			cj[k] -= w
			for i := k + 1; i < m; i++ {
				cj[i] -= w * col[i]
			}
		}
	}
}

// larft builds the nb x nb upper-triangular T of the forward columnwise
// compact-WY representation H_{k0} H_{k0+1} ... H_{k1-1} = I - V T V',
// where column j of V is [0...0, 1, qr[j+1:m, j]]'.
func larft(qr *Dense, tau []float64, k0, k1 int) *Dense {
	m := qr.Rows
	nb := k1 - k0
	t := NewDense(nb, nb)
	for j := 0; j < nb; j++ {
		tj := tau[k0+j]
		if tj == 0 {
			continue
		}
		// w = V[:, 0:j]' * v_j. Column i of V is zero above row k0+i,
		// one at k0+i, and qr[r, k0+i] below; v_j is zero above row
		// k0+j, one there, and qr[r, k0+j] below. Their overlap starts
		// at r = k0+j (i < j), where v_j = 1 and v_i = qr[k0+j, k0+i]:
		//
		//	w = qr[k0+j, k0+i] + sum_{r > k0+j} qr[r, k0+i]*qr[r, k0+j]
		vj := qr.Col(k0 + j)
		for i := 0; i < j; i++ {
			vi := qr.Col(k0 + i)
			w := vi[k0+j]
			for r := k0 + j + 1; r < m; r++ {
				w += vi[r] * vj[r]
			}
			t.Set(i, j, w)
		}
		// T[0:j, j] = -tau_j * T[0:j,0:j] * w
		if j > 0 {
			col := make([]float64, j)
			for i := 0; i < j; i++ {
				var s float64
				for k := i; k < j; k++ {
					s += t.At(i, k) * t.At(k, j)
				}
				col[i] = -tj * s
			}
			for i := 0; i < j; i++ {
				t.Set(i, j, col[i])
			}
		}
		t.Set(j, j, tj)
	}
	return t
}

// applyBlockReflectorT applies Q_panel' = I - V T' V' to the trailing
// columns [c0, n) of qr, with V the reflectors of columns [k0, c0).
func applyBlockReflectorT(qr *Dense, t *Dense, k0, c0, n int) {
	m := qr.Rows
	nb := c0 - k0
	nc := n - c0
	// W = V' * C  (nb x nc), exploiting V's unit-lower-trapezoidal shape.
	w := NewDense(nb, nc)
	for j := 0; j < nc; j++ {
		cj := qr.Col(c0 + j)
		for i := 0; i < nb; i++ {
			vi := qr.Col(k0 + i)
			s := cj[k0+i] // unit diagonal
			for r := k0 + i + 1; r < m; r++ {
				s += vi[r] * cj[r]
			}
			w.Set(i, j, s)
		}
	}
	// W := T' * W (T upper triangular => T' lower triangular).
	for j := 0; j < nc; j++ {
		wj := w.Col(j)
		for i := nb - 1; i >= 0; i-- {
			var s float64
			for k := 0; k <= i; k++ {
				s += t.At(k, i) * wj[k]
			}
			wj[i] = s
		}
	}
	// C := C - V * W.
	for j := 0; j < nc; j++ {
		cj := qr.Col(c0 + j)
		wj := w.Col(j)
		for i := 0; i < nb; i++ {
			vi := qr.Col(k0 + i)
			wij := wj[i]
			if wij == 0 {
				continue
			}
			cj[k0+i] -= wij // unit diagonal
			for r := k0 + i + 1; r < m; r++ {
				cj[r] -= wij * vi[r]
			}
		}
	}
}
