package obs

import (
	"bytes"
	"errors"
	"testing"
)

func TestJSONLSinkAndLintTelemetry(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	recs := []Record{
		{Kind: "step", Solver: "gmres", Restart: 0, Step: 1, Clock: 0.1, RelRes: 0.5},
		{Kind: "step", Solver: "gmres", Restart: 0, Step: 2, Clock: 0.2, RelRes: 0.25},
		{Kind: "restart", Solver: "gmres", Restart: 0, Step: 2, Clock: 0.2, RelRes: 0.25},
		{Kind: "done", Solver: "gmres", Restart: 1, Step: 4, Clock: 0.4, RelRes: 1e-9, OrthoLoss: 2e-15},
	}
	for _, r := range recs {
		s.Emit(r)
	}
	if s.Records() != len(recs) || s.Err() != nil || s.Close() != nil {
		t.Fatalf("sink state: n=%d err=%v", s.Records(), s.Err())
	}
	got, err := LintTelemetry(buf.Bytes())
	if err != nil {
		t.Fatalf("lint rejected own stream: %v\n%s", err, buf.String())
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %d != %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestLintTelemetryRejects(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"not json":        "hello\n",
		"missing kind":    `{"solver":"gmres","clock":1}` + "\n",
		"clock backwards": `{"kind":"step","clock":2}` + "\n" + `{"kind":"done","clock":1}` + "\n",
		"no done":         `{"kind":"step","clock":1}` + "\n",
	}
	for name, in := range cases {
		if _, err := LintTelemetry([]byte(in)); err == nil {
			t.Fatalf("%s: lint accepted %q", name, in)
		}
	}
}

type failWriter struct{ after int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, errors.New("disk full")
	}
	w.after--
	return len(p), nil
}

func TestJSONLSinkStickyError(t *testing.T) {
	s := NewJSONLSink(&failWriter{after: 1})
	s.Emit(Record{Kind: "step"})
	s.Emit(Record{Kind: "step"}) // fails
	s.Emit(Record{Kind: "done"}) // dropped, no panic
	if s.Records() != 1 {
		t.Fatalf("records = %d, want 1", s.Records())
	}
	if s.Err() == nil {
		t.Fatal("sticky error lost")
	}
}

func TestMultiSinkSkipsNil(t *testing.T) {
	var a, b []Record
	m := MultiSink(
		SinkFunc(func(r Record) { a = append(a, r) }),
		nil,
		SinkFunc(func(r Record) { b = append(b, r) }),
	)
	m.Emit(Record{Kind: "done", Step: 3})
	if len(a) != 1 || len(b) != 1 || a[0].Step != 3 {
		t.Fatalf("fan-out failed: a=%v b=%v", a, b)
	}
}

func TestConvergenceSink(t *testing.T) {
	r := NewRegistry()
	var forwarded []Record
	sink := r.ConvergenceSink(SinkFunc(func(rec Record) { forwarded = append(forwarded, rec) }))

	sink.Emit(Record{Kind: "step", Solver: "gmres", Restart: 0, Step: 1, Clock: 0.1, RelRes: 0.5})
	sink.Emit(Record{Kind: "window", Solver: "cagmres", Restart: 1, Step: 5, Clock: 0.3, RelRes: 0.1, OrthoLoss: 3e-14, TSQR: "tsqr"})
	sink.Emit(Record{Kind: "done", Solver: "cagmres", Restart: 2, Step: 42, Clock: 0.9, RelRes: 1e-10})

	if len(forwarded) != 3 {
		t.Fatalf("forwarded %d records", len(forwarded))
	}
	if v := r.CounterL("solver_telemetry_records_total", "", L("kind", "step", "solver", "gmres")).Value(); v != 1 {
		t.Fatalf("step counter = %v", v)
	}
	if v := r.Gauge("solver_relres", "").Value(); v != 1e-10 {
		t.Fatalf("relres gauge = %v", v)
	}
	if v := r.Gauge("solver_modeled_seconds", "").Value(); v != 0.9 {
		t.Fatalf("clock gauge = %v", v)
	}
	if v := r.Gauge("solver_ortho_loss", "").Value(); v != 3e-14 {
		t.Fatalf("ortho gauge = %v", v)
	}
	if v := r.Gauge("solver_iterations", "").Value(); v != 42 {
		t.Fatalf("iterations gauge = %v", v)
	}
	if n := r.Histogram("solver_ortho_loss_hist", "", nil).Count(); n != 1 {
		t.Fatalf("ortho histogram count = %d", n)
	}
	// A registry fed only through the sink still exports lintable text.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(buf.Bytes()); err != nil {
		t.Fatalf("lint: %v\n%s", err, buf.String())
	}
	// Nil next must not panic.
	r.ConvergenceSink(nil).Emit(Record{Kind: "done"})
}
