package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Record is one convergence-telemetry event. The solvers emit a stream
// of these through a Sink: per inner step (GMRES) or per matrix-powers
// window (CA-GMRES), per restart, and one final "done" record whose
// RelRes matches the returned Result. Clock is the modeled wall clock of
// the solve so far — the ledger's TotalTime at emission, monotone by
// construction.
type Record struct {
	// Kind is "step" (one Arnoldi iteration), "window" (one CA
	// matrix-powers window), "cycle" (end of a restart cycle's basis
	// build), "restart" (true residual at a restart boundary), or "done".
	Kind string `json:"kind"`
	// Solver is "gmres" or "cagmres".
	Solver string `json:"solver"`
	// Restart is the restart cycle index (0-based).
	Restart int `json:"restart"`
	// Step is the inner position: the Arnoldi step, or the number of
	// basis vectors completed after a CA window.
	Step int `json:"step"`
	// Clock is the modeled seconds charged to the ledger so far.
	Clock float64 `json:"clock"`
	// RelRes is the relative residual (estimate for step/window records,
	// true residual for restart/done records).
	RelRes float64 `json:"relres"`
	// OrthoLoss is ||I - Q'Q||_F of the relevant basis or window, when
	// the emitter measured it (0 otherwise).
	OrthoLoss float64 `json:"ortho_loss,omitempty"`
	// TSQR names the factorization strategy of a CA window.
	TSQR string `json:"tsqr,omitempty"`
	// Precision names the precision level active when the record was
	// emitted ("fp64", "fp32", "fp32+bf16"). Empty for solvers and
	// record kinds that predate the precision policy, keeping fp64
	// streams byte-identical to earlier releases.
	Precision string `json:"precision,omitempty"`
	// TraceID, JobID and Attempt correlate the record with the request
	// trace that owns the solve: chaos re-runs and healed retries of the
	// same job are distinguishable by attempt. All three are absent from
	// records emitted outside the serving stack, keeping standalone
	// telemetry streams byte-identical to earlier releases.
	TraceID string `json:"trace_id,omitempty"`
	JobID   string `json:"job_id,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
}

// Sink consumes telemetry records. Implementations must be safe for use
// from a single solver goroutine; they need not be concurrency-safe
// unless documented. A nil Sink disables telemetry.
type Sink interface {
	Emit(Record)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Record)

// Emit implements Sink.
func (f SinkFunc) Emit(r Record) { f(r) }

// MultiSink fans one record out to several sinks (nils are skipped).
func MultiSink(sinks ...Sink) Sink {
	live := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	return SinkFunc(func(r Record) {
		for _, s := range live {
			s.Emit(r)
		}
	})
}

// JSONLSink writes records as JSON lines. Safe for concurrent use. The
// first write error sticks and is reported by Err/Close; later Emits are
// dropped (telemetry must never fail a solve).
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
	n   int
}

// NewJSONLSink wraps a writer. The caller owns the writer's lifetime;
// Close only reports the sticky error (it does not close the writer).
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		s.err = err
		return
	}
	b = append(b, '\n')
	if _, err := s.w.Write(b); err != nil {
		s.err = err
		return
	}
	s.n++
}

// Records returns how many records were written successfully.
func (s *JSONLSink) Records() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err returns the sticky write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close reports the sticky error (the underlying writer is not closed).
func (s *JSONLSink) Close() error { return s.Err() }

// Buckets for the convergence metrics: orthogonality loss spans machine
// epsilon to O(1) breakdown.
var orthoLossBuckets = ExpBuckets(1e-16, 10, 17)

// ConvergenceSink returns a Sink that folds every record into the
// registry's convergence metrics — record counters by kind, the latest
// relative residual and orthogonality loss, restart/iteration gauges,
// and an orthogonality-loss histogram — and then forwards to next (which
// may be nil).
func (r *Registry) ConvergenceSink(next Sink) Sink {
	return SinkFunc(func(rec Record) {
		r.CounterL("solver_telemetry_records_total",
			"Telemetry records emitted by the solver, by kind.",
			L("kind", rec.Kind, "solver", rec.Solver)).Inc()
		r.Gauge("solver_relres",
			"Latest relative residual reported by the solver.").Set(rec.RelRes)
		r.Gauge("solver_modeled_seconds",
			"Modeled solve clock at the latest telemetry record.").Set(rec.Clock)
		r.Gauge("solver_restarts",
			"Restart cycle index of the latest telemetry record.").Set(float64(rec.Restart))
		if rec.OrthoLoss > 0 {
			r.Gauge("solver_ortho_loss",
				"Latest measured orthogonality loss ||I - Q'Q||_F.").Set(rec.OrthoLoss)
			r.Histogram("solver_ortho_loss_hist",
				"Distribution of measured orthogonality losses.",
				orthoLossBuckets).Observe(rec.OrthoLoss)
		}
		if rec.Precision != "" && rec.Kind == "window" {
			r.CounterL("solver_precision_windows_total",
				"CA matrix-powers windows generated, by precision level.",
				L("width", rec.Precision)).Inc()
		}
		if rec.Kind == "done" {
			r.Gauge("solver_iterations",
				"Total inner iterations of the finished solve.").Set(float64(rec.Step))
		}
		if next != nil {
			next.Emit(rec)
		}
	})
}
