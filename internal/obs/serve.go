package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"

	"cagmres/internal/gpu"
)

// WriteError writes the structured error body shared with
// internal/server: {"code","error"} JSON with the right Content-Type, so
// a client can branch on code without parsing prose regardless of which
// layer of the stack rejected the request.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Code  string `json:"code"`
		Error string `json:"error"`
	}{Code: code, Error: msg})
}

// Handler returns an http.Handler exposing the observability surface:
//
//	/metrics       Prometheus text format
//	/metrics.json  the same registry as JSON
//	/trace.json    Chrome trace_event export of traces() (404 when nil)
//	/debug/pprof/  the standard Go profiling endpoints, so -measured
//	               wall-clock runs can be profiled while they execute
//
// traces is called per request, so a long-running process serves its
// current state. Error paths return the structured {"code","error"}
// JSON convention of internal/server.
func Handler(r *Registry, traces func() []gpu.Trace) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, req *http.Request) {
		if traces == nil {
			WriteError(w, http.StatusNotFound, "not_found", "tracing not enabled")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = gpu.WriteChromeTrace(w, traces())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr (":0" picks a free port) and serves h in a
// background goroutine. It returns the server and the bound address;
// callers shut down with srv.Close.
func Serve(addr string, h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
