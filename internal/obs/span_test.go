package obs

import (
	"context"
	"strings"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	const tid = "0af7651916cd43dd8448eb211c80319c"
	const sid = "b7ad6b7169203331"
	cases := []struct {
		in      string
		ok      bool
		wantTID string
		wantSID string
	}{
		{"00-" + tid + "-" + sid + "-01", true, tid, sid},
		{"  00-" + tid + "-" + sid + "-01  ", true, tid, sid}, // whitespace tolerated
		{"cc-" + tid + "-" + sid + "-00", true, tid, sid},     // unknown version accepted
		{"ff-" + tid + "-" + sid + "-01", false, "", ""},      // reserved version
		{"00-" + strings.Repeat("0", 32) + "-" + sid + "-01", false, "", ""}, // zero trace id
		{"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", false, "", ""}, // zero span id
		{"00-" + tid[:31] + "-" + sid + "-01", false, "", ""},                // short trace id
		{"00-" + strings.ToUpper(tid) + "-" + sid + "-01", false, "", ""},    // uppercase hex
		{"", false, "", ""},
		{"garbage", false, "", ""},
	}
	for _, c := range cases {
		gotTID, gotSID, ok := ParseTraceparent(c.in)
		if ok != c.ok || gotTID != c.wantTID || gotSID != c.wantSID {
			t.Errorf("ParseTraceparent(%q) = (%q, %q, %t), want (%q, %q, %t)",
				c.in, gotTID, gotSID, ok, c.wantTID, c.wantSID, c.ok)
		}
	}
}

func TestRootAdoptsTraceparent(t *testing.T) {
	tr := NewTracerSeeded(nil, 1)
	const tp = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	root := tr.Root("solve", tp)
	if root.TraceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("adopted trace id %q", root.TraceID)
	}
	if root.Parent != "b7ad6b7169203331" {
		t.Fatalf("caller span not adopted as parent: %q", root.Parent)
	}
	if root.SpanID == "" || root.SpanID == root.Parent {
		t.Fatalf("root span id %q", root.SpanID)
	}
	// Round trip: the echoed header carries the adopted trace id and the
	// new span id.
	tid, sid, ok := ParseTraceparent(root.Traceparent())
	if !ok || tid != root.TraceID || sid != root.SpanID {
		t.Fatalf("echo %q does not round-trip (%q, %q, %t)", root.Traceparent(), tid, sid, ok)
	}

	// An unusable header mints a fresh trace instead.
	minted := tr.Root("solve", "bogus")
	if minted.TraceID == "" || minted.TraceID == root.TraceID || minted.Parent != "" {
		t.Fatalf("minted root = %+v", minted)
	}

	child := tr.Child(root, "lease attempt 1", KindLease)
	if child.TraceID != root.TraceID || child.Parent != root.SpanID {
		t.Fatalf("child does not inherit: %+v", child)
	}
}

func TestTracerSeededDeterministic(t *testing.T) {
	a := NewTracerSeeded(nil, 42)
	b := NewTracerSeeded(nil, 42)
	for i := 0; i < 4; i++ {
		if at, bt := a.NewTraceID(), b.NewTraceID(); at != bt {
			t.Fatalf("draw %d: %q != %q", i, at, bt)
		}
	}
	if a.NewSpanID() == a.NewSpanID() {
		t.Fatal("consecutive span ids collided")
	}
}

func TestSpanContextPropagation(t *testing.T) {
	tr := NewTracerSeeded(nil, 7)
	root := tr.Root("solve", "")
	ctx := ContextWithSpan(context.Background(), root)
	got, ok := SpanFromContext(ctx)
	if !ok || got.TraceID != root.TraceID || got.SpanID != root.SpanID {
		t.Fatalf("SpanFromContext = (%+v, %t)", got, ok)
	}
	if _, ok := SpanFromContext(context.Background()); ok {
		t.Fatal("empty context yielded a span")
	}
}

func TestTracerMetrics(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracerSeeded(reg, 3)
	tr.Root("solve", "") // generated
	tr.Root("solve", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	tr.CountSpan()
	var w writeBuf
	if err := reg.WritePrometheus(&w); err != nil {
		t.Fatal(err)
	}
	if err := RequireFamilies(w.b, []string{"trace_spans_total", "trace_requests_total"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`trace_requests_total{source="generated"} 1`,
		`trace_requests_total{source="traceparent"} 1`,
		`trace_spans_total 1`,
	} {
		if !strings.Contains(string(w.b), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

type writeBuf struct{ b []byte }

func (w *writeBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
