package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.CounterL("requests_total", "Requests.", L("code", "200"))
	c.Add(2)
	c.Inc()
	if c.Value() != 3 {
		t.Fatalf("counter = %v", c.Value())
	}
	g := r.Gauge("temperature", "Degrees.")
	g.Set(12.5)
	g.Set(-3)
	if g.Value() != -3 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	if h.Sum() != 5.555 {
		t.Fatalf("histogram sum = %v", h.Sum())
	}
}

func TestCounterPanicsOnDecrease(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	r.Counter("c", "").Add(-1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("redeclaring a counter as gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestSameSeriesSharedAcrossHandles(t *testing.T) {
	r := NewRegistry()
	r.CounterL("hits_total", "", L("phase", "spmv")).Add(1)
	r.CounterL("hits_total", "", L("phase", "spmv")).Add(2)
	if v := r.CounterL("hits_total", "", L("phase", "spmv")).Value(); v != 3 {
		t.Fatalf("series not shared: %v", v)
	}
	if v := r.CounterL("hits_total", "", L("phase", "mpk")).Value(); v != 0 {
		t.Fatalf("distinct labels leaked: %v", v)
	}
}

func TestWritePrometheusFormatAndLint(t *testing.T) {
	r := NewRegistry()
	r.CounterL("phase_bytes_total", "Bytes per phase.", L("phase", "spmv", "dir", "d2h")).Add(4096)
	r.CounterL("phase_bytes_total", "Bytes per phase.", L("phase", "tsqr", "dir", "h2d")).Add(128)
	r.Gauge("relres", "Relative residual.").Set(3.5e-5)
	h := r.HistogramL("kernel_seconds", "Kernel durations.", []float64{1e-6, 1e-3}, L("phase", "spmv"))
	h.Observe(5e-7)
	h.Observe(5e-4)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE phase_bytes_total counter",
		`phase_bytes_total{dir="d2h",phase="spmv"} 4096`,
		"# TYPE relres gauge",
		"relres 3.5e-05",
		"# TYPE kernel_seconds histogram",
		`kernel_seconds_bucket{le="+Inf",phase="spmv"} 3`,
		`kernel_seconds_count{phase="spmv"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Buckets are cumulative.
	if !strings.Contains(out, `kernel_seconds_bucket{le="1e-06",phase="spmv"} 1`) ||
		!strings.Contains(out, `kernel_seconds_bucket{le="0.001",phase="spmv"} 2`) {
		t.Fatalf("buckets not cumulative:\n%s", out)
	}
	// Our own lint accepts our own output.
	if err := LintPrometheus(buf.Bytes()); err != nil {
		t.Fatalf("lint rejected own output: %v\n%s", err, out)
	}
	// Output is deterministic.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Fatal("WritePrometheus is not deterministic")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Add(7)
	h := r.Histogram("h", "H.", []float64{1, 2})
	h.Observe(1.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var metrics []JSONMetric
	if err := json.Unmarshal(buf.Bytes(), &metrics); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(metrics) != 2 {
		t.Fatalf("got %d families", len(metrics))
	}
	if metrics[0].Name != "a_total" || *metrics[0].Series[0].Value != 7 {
		t.Fatalf("counter lost: %+v", metrics[0])
	}
	hj := metrics[1]
	if hj.Type != "histogram" || *hj.Series[0].Count != 1 || hj.Series[0].Counts[1] != 1 {
		t.Fatalf("histogram lost: %+v", hj)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.CounterL("c_total", "", L("w", "x")).Inc()
				r.Histogram("h", "", []float64{1, 10}).Observe(float64(j % 20))
				var buf bytes.Buffer
				_ = r.WritePrometheus(&buf)
			}
		}()
	}
	wg.Wait()
	if v := r.CounterL("c_total", "", L("w", "x")).Value(); v != 4000 {
		t.Fatalf("lost increments: %v", v)
	}
	if n := r.Histogram("h", "", nil).Count(); n != 4000 {
		t.Fatalf("lost observations: %d", n)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v", b)
		}
	}
}

func TestLintPrometheusRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"no families":      "",
		"missing type":     "foo 1\n",
		"bad value":        "# TYPE foo counter\nfoo abc\n",
		"bad name":         "# TYPE 9foo counter\n9foo 1\n",
		"unquoted label":   "# TYPE foo counter\nfoo{a=b} 1\n",
		"bad type keyword": "# TYPE foo banana\nfoo 1\n",
		"no inf bucket":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative":   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
	}
	for name, in := range cases {
		if err := LintPrometheus([]byte(in)); err == nil {
			t.Fatalf("%s: lint accepted %q", name, in)
		}
	}
	good := "# HELP foo Something.\n# TYPE foo counter\nfoo{a=\"b\"} 12 1712000000\n"
	if err := LintPrometheus([]byte(good)); err != nil {
		t.Fatalf("lint rejected valid input: %v", err)
	}
}
