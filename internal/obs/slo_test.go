package obs

import (
	"math"
	"strings"
	"testing"
)

// testSLOCfg: one catch-all class with power-of-two objective so every
// budget/burn number below is exact in float64, over small windows that
// make expiry easy to exercise.
func testSLOCfg() SLOConfig {
	return SLOConfig{
		Classes: []SLOClass{
			{Name: "t", MinPriority: math.MinInt32, LatencyTarget: 1.0, Objective: 0.5},
		},
		BudgetWindow: 100, FastWindow: 10, SlowWindow: 100, DegradeThreshold: 1.0,
		Now: func() float64 { return 0 },
	}
}

func TestSLOBudgetAndBurnExact(t *testing.T) {
	e := NewSLOEngine(nil, testSLOCfg())
	// 9 good early, 3 bad late (latency over the 1s target).
	for i := 0; i < 9; i++ {
		e.ObserveAt(float64(1+i), 0, 0.5, false)
	}
	for i := 0; i < 3; i++ {
		e.ObserveAt(float64(95+i), 0, 2.0, false)
	}
	rep := e.ReportAt(100)
	if len(rep.Classes) != 1 {
		t.Fatalf("classes = %d", len(rep.Classes))
	}
	c := rep.Classes[0]
	// Budget window (0,100]: 12 requests, 3 bad, allowed 0.5*12=6 → 0.5 left.
	if c.Requests != 12 || c.Bad != 3 {
		t.Fatalf("requests/bad = %d/%d, want 12/3", c.Requests, c.Bad)
	}
	if c.BudgetRemaining != 0.5 {
		t.Fatalf("budget = %v, want 0.5 exactly", c.BudgetRemaining)
	}
	// Fast window (90,100]: 3/3 bad → burn (1)/(0.5) = 2; slow window is
	// the whole stream → (3/12)/0.5 = 0.5. Only one window burns, so the
	// class is not degraded.
	if c.BurnFast != 2.0 || c.BurnSlow != 0.5 {
		t.Fatalf("burn fast/slow = %v/%v, want 2/0.5 exactly", c.BurnFast, c.BurnSlow)
	}
	if c.Degraded || rep.Degraded {
		t.Fatalf("degraded with only the fast window burning: %+v", c)
	}

	// Everything expires out of the windows: a later report is pristine.
	rep = e.ReportAt(300)
	c = rep.Classes[0]
	if c.Requests != 0 || c.Bad != 0 || c.BudgetRemaining != 1 || c.BurnFast != 0 || c.BurnSlow != 0 {
		t.Fatalf("expired windows not pristine: %+v", c)
	}

	// One bad request alone in both windows burns 2.0 in each → degraded,
	// with the budget overspent (1 - 1/0.5 = -1).
	e.ObserveAt(295, 0, 0.2, true) // failed: bad regardless of latency
	rep = e.ReportAt(300)
	c = rep.Classes[0]
	if c.BurnFast != 2.0 || c.BurnSlow != 2.0 || !c.Degraded || !rep.Degraded {
		t.Fatalf("lone failure not degrading both windows: %+v", c)
	}
	if c.BudgetRemaining != -1.0 {
		t.Fatalf("budget = %v, want -1 exactly", c.BudgetRemaining)
	}
}

func TestSLOClassMatching(t *testing.T) {
	cfg := testSLOCfg()
	cfg.Classes = []SLOClass{
		{Name: "standard", MinPriority: math.MinInt32, LatencyTarget: 5, Objective: 0.5},
		{Name: "interactive", MinPriority: 1, LatencyTarget: 1, Objective: 0.75},
	}
	e := NewSLOEngine(nil, cfg)
	e.ObserveAt(1, 0, 2.0, false) // standard: 2s < 5s target → good
	e.ObserveAt(2, 1, 2.0, false) // interactive: 2s > 1s target → bad
	e.ObserveAt(3, 7, 0.5, false) // interactive: good
	rep := e.ReportAt(10)
	got := map[string][2]int{}
	for _, c := range rep.Classes {
		got[c.Name] = [2]int{c.Requests, c.Bad}
	}
	if got["standard"] != [2]int{1, 0} {
		t.Fatalf("standard = %v, want {1 0}", got["standard"])
	}
	if got["interactive"] != [2]int{2, 1} {
		t.Fatalf("interactive = %v, want {2 1}", got["interactive"])
	}

	// Every class above the priority: fall back to the loosest class
	// rather than dropping the sample.
	cfg.Classes = []SLOClass{{Name: "high", MinPriority: 5, LatencyTarget: 1, Objective: 0.5}}
	e = NewSLOEngine(nil, cfg)
	e.ObserveAt(1, 0, 0.1, false)
	if rep := e.ReportAt(2); rep.Classes[0].Requests != 1 {
		t.Fatalf("fallback class did not absorb the sample: %+v", rep.Classes[0])
	}
}

func TestSLOObserveClampsBackward(t *testing.T) {
	e := NewSLOEngine(nil, testSLOCfg())
	e.ObserveAt(100, 0, 0.1, false)
	e.ObserveAt(50, 0, 0.1, false) // clamped forward to 100
	rep := e.ReportAt(100)
	// Fast window (90,100] must hold both samples; un-clamped, the second
	// would sit at 50 outside it.
	if total := rep.Classes[0].Requests; total != 2 {
		t.Fatalf("budget window total = %d, want 2", total)
	}
	if rep.Classes[0].BurnFast != 0 {
		t.Fatalf("burn fast = %v, want 0", rep.Classes[0].BurnFast)
	}
}

func TestSLOMetricsEager(t *testing.T) {
	reg := NewRegistry()
	e := NewSLOEngine(reg, SLOConfig{})
	var w writeBuf
	if err := reg.WritePrometheus(&w); err != nil {
		t.Fatal(err)
	}
	// Before any traffic: every family declared, budgets at 1.
	if err := RequireFamilies(w.b, []string{
		"slo_requests_total", "slo_latency_seconds", "slo_latency_target_seconds",
		"slo_objective", "slo_error_budget_remaining", "slo_burn_rate",
	}); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(w.b); err != nil {
		t.Fatal(err)
	}

	e.Observe(1, 0.1, false)
	e.Observe(0, 9.0, false) // over the standard 5s target → bad
	e.Report()
	w = writeBuf{}
	if err := reg.WritePrometheus(&w); err != nil {
		t.Fatal(err)
	}
	out := string(w.b)
	for _, want := range []string{
		`slo_requests_total{class="interactive",result="good"} 1`,
		`slo_requests_total{class="standard",result="bad"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
