package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseSLOClasses parses an SLO policy spec: comma-separated
// name:minprio:latencySeconds:objective entries, where minprio "*"
// marks the catch-all class (priority math.MinInt32). Empty input
// returns nil, which callers treat as "keep the default policy". Both
// cagmresd and cagmres-router accept this format on their -slo-target
// flags, so one parser defines the grammar.
func ParseSLOClasses(spec string) ([]SLOClass, error) {
	if spec == "" {
		return nil, nil
	}
	var out []SLOClass
	for _, item := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("slo class %q: want name:minprio:latency:objective", item)
		}
		c := SLOClass{Name: parts[0]}
		if c.Name == "" {
			return nil, fmt.Errorf("slo class %q: empty class name", item)
		}
		if parts[1] == "*" {
			c.MinPriority = math.MinInt32
		} else {
			p, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("slo class %q: minprio: %v", item, err)
			}
			c.MinPriority = p
		}
		lat, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || lat <= 0 {
			return nil, fmt.Errorf("slo class %q: latency must be positive seconds", item)
		}
		c.LatencyTarget = lat
		obj, err := strconv.ParseFloat(parts[3], 64)
		if err != nil || obj <= 0 || obj >= 1 {
			return nil, fmt.Errorf("slo class %q: objective must be in (0,1)", item)
		}
		c.Objective = obj
		out = append(out, c)
	}
	return out, nil
}
