package obs

import (
	"strings"
	"testing"
)

const spanTID = "0af7651916cd43dd8448eb211c80319c"

// spanLine builds one JSONL span line from raw fields.
func spanLine(parts ...string) string {
	return "{" + strings.Join(parts, ",") + "}"
}

func TestLintSpansValid(t *testing.T) {
	stream := strings.Join([]string{
		spanLine(`"trace_id":"`+spanTID+`"`, `"span_id":"aaaaaaaaaaaaaaaa"`, `"name":"solve"`,
			`"kind":"request"`, `"start_unix":100`, `"end_unix":110`, `"virtual":true`, `"vstart":0`, `"vend":2.5`),
		spanLine(`"trace_id":"`+spanTID+`"`, `"span_id":"bbbbbbbbbbbbbbbb"`, `"parent_id":"aaaaaaaaaaaaaaaa"`,
			`"name":"queue"`, `"kind":"queue"`, `"start_unix":100`, `"end_unix":101`),
		spanLine(`"trace_id":"`+spanTID+`"`, `"span_id":"cccccccccccccccc"`, `"parent_id":"aaaaaaaaaaaaaaaa"`,
			`"name":"restart 0"`, `"kind":"solver"`, `"virtual":true`, `"vstart":0`, `"vend":1.5`),
		// Parent outside the stream: a second root, legal (trace continues upstream).
		spanLine(`"trace_id":"`+spanTID+`"`, `"span_id":"dddddddddddddddd"`, `"parent_id":"ffffffffffffffff"`,
			`"name":"upstream child"`),
		"", // blank lines tolerated
	}, "\n")
	spans, err := LintSpans([]byte(stream))
	if err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	if len(spans) != 4 {
		t.Fatalf("parsed %d spans, want 4", len(spans))
	}
}

func TestLintSpansRejects(t *testing.T) {
	root := spanLine(`"trace_id":"`+spanTID+`"`, `"span_id":"aaaaaaaaaaaaaaaa"`, `"name":"solve"`,
		`"start_unix":100`, `"end_unix":110`, `"virtual":true`, `"vstart":0`, `"vend":2`)
	cases := []struct {
		name   string
		stream string
		want   string
	}{
		{"empty", "\n\n", "empty span stream"},
		{"no trace id", spanLine(`"span_id":"aaaaaaaaaaaaaaaa"`, `"name":"x"`), "without trace_id"},
		{"no span id", spanLine(`"trace_id":"` + spanTID + `"`, `"name":"x"`), "without span_id"},
		{"no name", spanLine(`"trace_id":"`+spanTID+`"`, `"span_id":"aaaaaaaaaaaaaaaa"`), "without name"},
		{"mixed trace ids", root + "\n" +
			spanLine(`"trace_id":"ffffffffffffffffffffffffffffffff"`, `"span_id":"bbbbbbbbbbbbbbbb"`, `"name":"y"`),
			"has trace"},
		{"duplicate span id", root + "\n" +
			spanLine(`"trace_id":"`+spanTID+`"`, `"span_id":"aaaaaaaaaaaaaaaa"`, `"name":"dup"`),
			"duplicate span id"},
		{"wall end before start", spanLine(`"trace_id":"`+spanTID+`"`, `"span_id":"aaaaaaaaaaaaaaaa"`,
			`"name":"x"`, `"start_unix":10`, `"end_unix":5`), "wall end before start"},
		{"virtual end before start", spanLine(`"trace_id":"`+spanTID+`"`, `"span_id":"aaaaaaaaaaaaaaaa"`,
			`"name":"x"`, `"virtual":true`, `"vstart":2`, `"vend":1`), "virtual end before start"},
		{"all parents resolve", spanLine(`"trace_id":"`+spanTID+`"`, `"span_id":"aaaaaaaaaaaaaaaa"`, `"parent_id":"bbbbbbbbbbbbbbbb"`, `"name":"a"`) + "\n" +
			spanLine(`"trace_id":"`+spanTID+`"`, `"span_id":"bbbbbbbbbbbbbbbb"`, `"parent_id":"aaaaaaaaaaaaaaaa"`, `"name":"b"`),
			"no root"},
		{"cycle below a root", root + "\n" +
			spanLine(`"trace_id":"`+spanTID+`"`, `"span_id":"bbbbbbbbbbbbbbbb"`, `"parent_id":"cccccccccccccccc"`, `"name":"b"`) + "\n" +
			spanLine(`"trace_id":"`+spanTID+`"`, `"span_id":"cccccccccccccccc"`, `"parent_id":"bbbbbbbbbbbbbbbb"`, `"name":"c"`),
			"cyclic parentage"},
		{"wall child escapes parent", root + "\n" +
			spanLine(`"trace_id":"`+spanTID+`"`, `"span_id":"bbbbbbbbbbbbbbbb"`, `"parent_id":"aaaaaaaaaaaaaaaa"`,
				`"name":"late"`, `"start_unix":105`, `"end_unix":120`),
			"not nested in wall parent"},
		{"virtual child escapes parent", root + "\n" +
			spanLine(`"trace_id":"`+spanTID+`"`, `"span_id":"bbbbbbbbbbbbbbbb"`, `"parent_id":"aaaaaaaaaaaaaaaa"`,
				`"name":"long"`, `"virtual":true`, `"vstart":0`, `"vend":3`),
			"not nested in virtual parent"},
	}
	for _, c := range cases {
		if _, err := LintSpans([]byte(c.stream)); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}
