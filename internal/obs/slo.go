package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// SLO engine: per-priority latency/error objectives with rolling error
// budgets and multi-window burn rates — the Google SRE-workbook alerting
// shape (fast window catches cliffs, slow window catches slow leaks; the
// service is degraded only when both burn). Requests are classified by
// scheduler priority, judged good or bad (bad = failed, or finished over
// the class's latency target), and folded into per-class rolling windows.
//
// Burn rate is (bad fraction over a window) / (1 - objective): 1.0 means
// the class is consuming budget exactly as fast as the objective allows;
// anything sustained above that exhausts the budget early. The remaining
// error budget is measured over BudgetWindow.
//
// The clock is injectable (Now) so the loadgen replay tests drive the
// engine on deterministic virtual time and pin the numbers exactly.

// SLOClass is one objective: requests with Priority >= MinPriority (and
// not claimed by a stricter class) belong to it.
type SLOClass struct {
	// Name labels the class in metrics and reports ("interactive").
	Name string `json:"name"`
	// MinPriority is the lowest scheduler priority in the class. Classes
	// are matched highest MinPriority first.
	MinPriority int `json:"min_priority"`
	// LatencyTarget is the good/bad latency threshold in seconds.
	LatencyTarget float64 `json:"latency_target_seconds"`
	// Objective is the target good fraction (0.99 = "99% of requests
	// finish, within target, without error").
	Objective float64 `json:"objective"`
}

// DefaultSLOClasses is the shipped two-tier policy: priority >= 1 is
// interactive (1s @ 99%), everything else standard (5s @ 95%).
func DefaultSLOClasses() []SLOClass {
	return []SLOClass{
		{Name: "interactive", MinPriority: 1, LatencyTarget: 1.0, Objective: 0.99},
		{Name: "standard", MinPriority: math.MinInt32, LatencyTarget: 5.0, Objective: 0.95},
	}
}

// SLOConfig parameterizes the engine. Zero values take defaults.
type SLOConfig struct {
	Classes []SLOClass
	// BudgetWindow is the error-budget horizon in seconds (default 3600).
	BudgetWindow float64
	// FastWindow / SlowWindow are the burn-rate horizons in seconds
	// (defaults 300 / 3600).
	FastWindow float64
	SlowWindow float64
	// DegradeThreshold: degraded when BOTH window burn rates reach it
	// for any class (default 1.0).
	DegradeThreshold float64
	// Now supplies the engine clock as float seconds; defaults to wall
	// Unix time. Tests inject a virtual clock here.
	Now func() float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if len(c.Classes) == 0 {
		c.Classes = DefaultSLOClasses()
	}
	if c.BudgetWindow <= 0 {
		c.BudgetWindow = 3600
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 300
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 3600
	}
	if c.DegradeThreshold <= 0 {
		c.DegradeThreshold = 1.0
	}
	if c.Now == nil {
		c.Now = func() float64 { return float64(time.Now().UnixNano()) / 1e9 }
	}
	return c
}

// sloSample is one observed request.
type sloSample struct {
	t   float64 // engine clock at observation
	bad bool
}

// classState is one class's rolling sample window.
type classState struct {
	class   SLOClass
	samples []sloSample // ascending t
	low     int         // index of the oldest retained sample

	good Counter
	bad  Counter
	lat  Histogram
}

// SLOEngine folds request outcomes into rolling windows and exports the
// slo_* metric families. Safe for concurrent use.
type SLOEngine struct {
	mu      sync.Mutex
	cfg     SLOConfig
	classes []classState // sorted by MinPriority descending (strictest first)
	lastT   float64

	budgetGauge map[string]Gauge
	burnFast    map[string]Gauge
	burnSlow    map[string]Gauge
}

var sloLatencyBuckets = ExpBuckets(0.001, 2, 24) // 1ms .. ~2.3h

// NewSLOEngine builds the engine and eagerly registers every slo_*
// family (reg may be nil for tests), so a fresh daemon's /metrics
// already shows the objectives before any traffic arrives.
func NewSLOEngine(reg *Registry, cfg SLOConfig) *SLOEngine {
	cfg = cfg.withDefaults()
	e := &SLOEngine{cfg: cfg,
		budgetGauge: map[string]Gauge{},
		burnFast:    map[string]Gauge{},
		burnSlow:    map[string]Gauge{},
	}
	classes := append([]SLOClass(nil), cfg.Classes...)
	sort.SliceStable(classes, func(i, j int) bool {
		return classes[i].MinPriority > classes[j].MinPriority
	})
	for _, c := range classes {
		cs := classState{class: c}
		if reg != nil {
			cs.good = reg.CounterL("slo_requests_total",
				"Requests judged against the SLO, by class and result.",
				L("class", c.Name, "result", "good"))
			cs.bad = reg.CounterL("slo_requests_total",
				"Requests judged against the SLO, by class and result.",
				L("class", c.Name, "result", "bad"))
			cs.lat = reg.HistogramL("slo_latency_seconds",
				"End-to-end request latency judged against the SLO.",
				sloLatencyBuckets, L("class", c.Name))
			reg.GaugeL("slo_latency_target_seconds",
				"Latency good/bad threshold per class.",
				L("class", c.Name)).Set(c.LatencyTarget)
			reg.GaugeL("slo_objective",
				"Target good fraction per class.",
				L("class", c.Name)).Set(c.Objective)
			e.budgetGauge[c.Name] = reg.GaugeL("slo_error_budget_remaining",
				"Fraction of the rolling error budget left (1 = untouched, <0 = overspent).",
				L("class", c.Name))
			e.budgetGauge[c.Name].Set(1)
			e.burnFast[c.Name] = reg.GaugeL("slo_burn_rate",
				"Error-budget burn rate over the fast/slow windows (1.0 = exactly on budget).",
				L("class", c.Name, "window", "fast"))
			e.burnSlow[c.Name] = reg.GaugeL("slo_burn_rate",
				"Error-budget burn rate over the fast/slow windows (1.0 = exactly on budget).",
				L("class", c.Name, "window", "slow"))
		}
		e.classes = append(e.classes, cs)
	}
	return e
}

// Config returns the effective (defaulted) configuration.
func (e *SLOEngine) Config() SLOConfig { return e.cfg }

// classFor picks the strictest class matching the priority. With the
// default classes every priority matches the catch-all; a custom config
// whose classes all have MinPriority > p falls back to the last
// (loosest) class rather than dropping the sample.
func (e *SLOEngine) classFor(p int) *classState {
	for i := range e.classes {
		if p >= e.classes[i].class.MinPriority {
			return &e.classes[i]
		}
	}
	return &e.classes[len(e.classes)-1]
}

// Observe records one finished request at the engine clock's now.
func (e *SLOEngine) Observe(priority int, latency float64, failed bool) {
	e.ObserveAt(e.cfg.Now(), priority, latency, failed)
}

// ObserveAt records one finished request at clock t. Out-of-order times
// are clamped forward to the engine's high-water mark so the windows
// stay sorted (the serving path is effectively monotone; replay feeds
// sorted samples).
func (e *SLOEngine) ObserveAt(t float64, priority int, latency float64, failed bool) {
	e.mu.Lock()
	if t < e.lastT {
		t = e.lastT
	}
	e.lastT = t
	cs := e.classFor(priority)
	bad := failed || latency > cs.class.LatencyTarget
	cs.samples = append(cs.samples, sloSample{t: t, bad: bad})
	// Compact: drop samples older than the widest window once the dead
	// prefix dominates, keeping Observe amortized O(1).
	widest := e.cfg.BudgetWindow
	if e.cfg.SlowWindow > widest {
		widest = e.cfg.SlowWindow
	}
	for cs.low < len(cs.samples) && cs.samples[cs.low].t < t-widest {
		cs.low++
	}
	if cs.low > 1024 && cs.low > len(cs.samples)/2 {
		cs.samples = append([]sloSample(nil), cs.samples[cs.low:]...)
		cs.low = 0
	}
	e.mu.Unlock()

	if cs.good != (Counter{}) {
		if bad {
			cs.bad.Inc()
		} else {
			cs.good.Inc()
		}
		cs.lat.Observe(latency)
	}
}

// window counts the (total, bad) samples of cs in (t-w, t].
func (cs *classState) window(t, w float64) (total, bad int) {
	lo := sort.Search(len(cs.samples), func(i int) bool {
		return cs.samples[i].t > t-w
	})
	if lo < cs.low {
		lo = cs.low
	}
	for _, s := range cs.samples[lo:] {
		if s.t > t {
			break
		}
		total++
		if s.bad {
			bad++
		}
	}
	return total, bad
}

// burn computes the burn rate over window w at time t: the bad fraction
// divided by the allowed bad fraction. An empty window burns nothing.
func (cs *classState) burn(t, w float64) float64 {
	total, bad := cs.window(t, w)
	if total == 0 {
		return 0
	}
	allowed := 1 - cs.class.Objective
	if allowed <= 0 {
		if bad > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return (float64(bad) / float64(total)) / allowed
}

// SLOClassReport is one class's current standing.
type SLOClassReport struct {
	Name          string  `json:"name"`
	MinPriority   int     `json:"min_priority"`
	LatencyTarget float64 `json:"latency_target_seconds"`
	Objective     float64 `json:"objective"`
	// Requests/Bad count the budget window.
	Requests int `json:"requests"`
	Bad      int `json:"bad"`
	// BudgetRemaining is the fraction of the rolling error budget left
	// (1 = untouched, 0 = spent, negative = overspent).
	BudgetRemaining float64 `json:"error_budget_remaining"`
	BurnFast        float64 `json:"burn_rate_fast"`
	BurnSlow        float64 `json:"burn_rate_slow"`
	Degraded        bool    `json:"degraded"`
}

// SLOReport is the /slo endpoint body.
type SLOReport struct {
	Time             float64          `json:"time"`
	BudgetWindow     float64          `json:"budget_window_seconds"`
	FastWindow       float64          `json:"fast_window_seconds"`
	SlowWindow       float64          `json:"slow_window_seconds"`
	DegradeThreshold float64          `json:"degrade_threshold"`
	Classes          []SLOClassReport `json:"classes"`
	Degraded         bool             `json:"degraded"`
}

// Report evaluates every class at the engine clock's now.
func (e *SLOEngine) Report() SLOReport {
	return e.ReportAt(e.cfg.Now())
}

// ReportAt evaluates every class at clock t and refreshes the slo_*
// gauges (budget remaining, burn rates) as a side effect, so scraping
// /metrics after /slo sees consistent numbers.
func (e *SLOEngine) ReportAt(t float64) SLOReport {
	e.mu.Lock()
	if t < e.lastT {
		t = e.lastT
	}
	rep := SLOReport{
		Time:             t,
		BudgetWindow:     e.cfg.BudgetWindow,
		FastWindow:       e.cfg.FastWindow,
		SlowWindow:       e.cfg.SlowWindow,
		DegradeThreshold: e.cfg.DegradeThreshold,
	}
	type gaugeSet struct {
		name               string
		budget, fast, slow float64
	}
	var sets []gaugeSet
	for i := range e.classes {
		cs := &e.classes[i]
		total, bad := cs.window(t, e.cfg.BudgetWindow)
		allowed := (1 - cs.class.Objective) * float64(total)
		budget := 1.0
		if allowed > 0 {
			budget = 1 - float64(bad)/allowed
		} else if bad > 0 {
			budget = math.Inf(-1)
		}
		cr := SLOClassReport{
			Name:            cs.class.Name,
			MinPriority:     cs.class.MinPriority,
			LatencyTarget:   cs.class.LatencyTarget,
			Objective:       cs.class.Objective,
			Requests:        total,
			Bad:             bad,
			BudgetRemaining: budget,
			BurnFast:        cs.burn(t, e.cfg.FastWindow),
			BurnSlow:        cs.burn(t, e.cfg.SlowWindow),
		}
		cr.Degraded = cr.BurnFast >= e.cfg.DegradeThreshold &&
			cr.BurnSlow >= e.cfg.DegradeThreshold
		if cr.Degraded {
			rep.Degraded = true
		}
		rep.Classes = append(rep.Classes, cr)
		sets = append(sets, gaugeSet{cs.class.Name, budget, cr.BurnFast, cr.BurnSlow})
	}
	e.mu.Unlock()

	for _, s := range sets {
		if g, ok := e.budgetGauge[s.name]; ok {
			g.Set(s.budget)
			e.burnFast[s.name].Set(s.fast)
			e.burnSlow[s.name].Set(s.slow)
		}
	}
	return rep
}
