package obs

import (
	"strconv"

	"cagmres/internal/gpu"
)

// Histogram layouts for the ledger-derived distributions: transfer sizes
// span one scalar to a gigabyte, kernel durations one nanosecond of
// modeled time to ten seconds.
var (
	transferBuckets = ExpBuckets(8, 4, 14)     // 8 B .. ~512 MB
	durationBuckets = ExpBuckets(1e-9, 10, 10) // 1 ns .. 10 s
)

// CollectStats folds a gpu.Stats ledger into the registry: per-phase
// time/byte/round counters and the per-device breakdowns. Calling it
// again with the same ledger would double-count — collect once per
// solve, or merge ledgers first.
func CollectStats(r *Registry, s *gpu.Stats) {
	for _, name := range s.Phases() {
		p := s.Phase(name)
		l := L("phase", name)
		r.CounterL("gpu_phase_comm_seconds_total", "Modeled communication seconds per phase.", l).Add(p.CommTime)
		r.CounterL("gpu_phase_device_seconds_total", "Modeled device-compute seconds per phase (critical path).", l).Add(p.DeviceTime)
		r.CounterL("gpu_phase_host_seconds_total", "Modeled host-compute seconds per phase.", l).Add(p.HostTime)
		r.CounterL("gpu_phase_rounds_total", "Communication rounds per phase.", l).Add(float64(p.Rounds))
		r.CounterL("gpu_phase_messages_total", "Per-device messages per phase.", l).Add(float64(p.Messages))
		r.CounterL("gpu_phase_kernels_total", "Device kernel launches per phase.", l).Add(float64(p.Kernels))
		r.CounterL("gpu_phase_device_flops_total", "Device flops per phase, summed over devices.", l).Add(p.DeviceFlops)
		r.CounterL("gpu_phase_bytes_total", "Transferred bytes per phase and direction.",
			L("phase", name, "dir", "d2h")).Add(float64(p.BytesD2H))
		r.CounterL("gpu_phase_bytes_total", "Transferred bytes per phase and direction.",
			L("phase", name, "dir", "h2d")).Add(float64(p.BytesH2D))
	}
	for d := 0; d < s.TrackedDevices(); d++ {
		dev := strconv.Itoa(d)
		for _, name := range s.Phases() {
			p := s.DevicePhase(d, name)
			if p == (gpu.PhaseStats{}) {
				continue
			}
			l := L("device", dev, "phase", name)
			r.CounterL("gpu_device_seconds_total", "Per-device busy seconds per phase.", l).Add(p.DeviceTime + p.CommTime)
			r.CounterL("gpu_device_kernel_seconds_total", "Per-device kernel seconds per phase.", l).Add(p.DeviceTime)
			r.CounterL("gpu_device_flops_total", "Per-device flops per phase.", l).Add(p.DeviceFlops)
			r.CounterL("gpu_device_kernels_total", "Per-device kernel executions per phase.", l).Add(float64(p.Kernels))
			r.CounterL("gpu_device_bytes_total", "Per-device transferred bytes per phase.", l).Add(float64(p.Bytes()))
		}
	}
}

// ObserveTrace folds a recorded event trace into the registry's
// distribution metrics: transfer-size and kernel-duration histograms.
// Use the same ledger's Trace() that CollectStats summarized; if the
// ring wrapped, the histograms cover the retained tail.
func ObserveTrace(r *Registry, events []gpu.Event) {
	for _, e := range events {
		switch e.Kind {
		case "reduce", "broadcast":
			r.HistogramL("gpu_transfer_bytes", "Per-round transfer sizes.",
				transferBuckets, L("dir", dirLabel(e.Kind))).Observe(float64(e.Bytes))
		case "kernel":
			r.Histogram("gpu_kernel_seconds", "Per-device modeled kernel durations.",
				durationBuckets).Observe(e.Time)
		}
	}
}

func dirLabel(kind string) string {
	if kind == "reduce" {
		return "d2h"
	}
	return "h2d"
}

// ObserveKernel implements the measure package's Observer interface
// without importing it: instrumented benchmark timers report every host
// kernel sample here, feeding a per-kernel duration histogram and a
// modeled/measured sample counter.
func (r *Registry) ObserveKernel(name string, seconds float64, modeled bool) {
	mode := "measured"
	if modeled {
		mode = "modeled"
	}
	r.HistogramL("host_kernel_seconds", "Host benchmark kernel durations.",
		durationBuckets, L("kernel", name)).Observe(seconds)
	r.CounterL("host_kernel_samples_total", "Host benchmark kernel samples, by clock source.",
		L("kernel", name, "mode", mode)).Inc()
}
