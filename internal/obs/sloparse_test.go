package obs

import (
	"math"
	"strings"
	"testing"
)

func TestParseSLOClasses(t *testing.T) {
	got, err := ParseSLOClasses("interactive:1:1.0:0.99, standard:*:5.0:0.95")
	if err != nil {
		t.Fatal(err)
	}
	want := []SLOClass{
		{Name: "interactive", MinPriority: 1, LatencyTarget: 1.0, Objective: 0.99},
		{Name: "standard", MinPriority: math.MinInt32, LatencyTarget: 5.0, Objective: 0.95},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d classes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("class %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	if got, err := ParseSLOClasses(""); got != nil || err != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", got, err)
	}

	for _, bad := range []string{
		"noparts",
		"a:b:c",                // too few fields
		":1:1.0:0.99",          // empty name
		"x:zero:1.0:0.99",      // bad minprio
		"x:1:-2:0.99",          // non-positive latency
		"x:1:1.0:1.5",          // objective outside (0,1)
		"x:1:1.0:0.99,y:*:0:0", // second entry invalid
	} {
		if _, err := ParseSLOClasses(bad); err == nil {
			t.Fatalf("spec %q parsed, want error", bad)
		} else if !strings.Contains(err.Error(), "slo class") {
			t.Fatalf("spec %q: error %v does not name the class", bad, err)
		}
	}
}
