package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheus validates Prometheus text exposition data: every sample
// line must parse (metric name, optional label set, float value), every
// sampled family must carry a TYPE declaration, HELP/TYPE comments must
// be well formed, and histogram series must have cumulative,
// non-decreasing _bucket counts ending in a le="+Inf" bucket that equals
// _count. It returns nil when the input passes, or an error naming the
// first offending line. make metrics-smoke runs this over the CLI's
// -metrics output.
func LintPrometheus(data []byte) error {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	types := map[string]string{}           // family -> declared type
	sampled := map[string]bool{}           // family (base name) -> saw a sample
	bucketCums := map[string][]bucketSam{} // histogram series (name+labels sans le) -> buckets
	counts := map[string]float64{}         // histogram series -> _count value
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, types); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := baseName(name, types)
		sampled[base] = true
		if _, ok := types[base]; !ok {
			return fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		if types[base] == "histogram" && strings.HasSuffix(name, "_bucket") {
			le, rest, err := splitLE(labels)
			if err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			key := strings.TrimSuffix(name, "_bucket") + rest
			bucketCums[key] = append(bucketCums[key], bucketSam{le: le, cum: value})
		}
		if types[base] == "histogram" && strings.HasSuffix(name, "_count") {
			counts[strings.TrimSuffix(name, "_count")+labels] = value
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(types) == 0 {
		return fmt.Errorf("no metric families found")
	}
	// Histogram invariants per series.
	for key, buckets := range bucketCums {
		sort.SliceStable(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
		last := -1.0
		hasInf := false
		var infCum float64
		for _, b := range buckets {
			if b.cum < last {
				return fmt.Errorf("histogram %s: bucket counts not cumulative", key)
			}
			last = b.cum
			if b.le == infLE {
				hasInf = true
				infCum = b.cum
			}
		}
		if !hasInf {
			return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", key)
		}
		if c, ok := counts[key]; ok && c != infCum {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", key, c, infCum)
		}
	}
	return nil
}

// RequireFamilies checks that the Prometheus exposition declares every
// named metric family (a TYPE line), reporting all missing ones in one
// error. It is how the serve smoke test asserts a running cagmresd
// exports the scheduler's queue/lease/latency instruments
// (cmd/obslint -require).
func RequireFamilies(data []byte, families []string) error {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	declared := map[string]bool{}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 4 && fields[0] == "#" && fields[1] == "TYPE" {
			declared[fields[2]] = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	var missing []string
	for _, f := range families {
		if !declared[f] {
			missing = append(missing, f)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("missing required metric families: %s", strings.Join(missing, ", "))
	}
	return nil
}

// infLE is the sort key of the le="+Inf" bucket.
var infLE = math.Inf(1)

// baseName strips the histogram sample suffixes so _bucket/_sum/_count
// samples resolve to their declared family.
func baseName(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// parseValue parses a sample value, accepting the exposition format's
// +Inf/-Inf/NaN spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// LintTelemetry validates a JSON-lines telemetry stream: every line must
// be a valid JSON Record, the modeled clock must be monotone
// non-decreasing, and the stream must end with a "done" record. It
// returns the parsed records on success.
func LintTelemetry(data []byte) ([]Record, error) {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var out []Record
	lineNo := 0
	clock := 0.0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("line %d: invalid JSON: %w", lineNo, err)
		}
		if rec.Kind == "" {
			return nil, fmt.Errorf("line %d: record without kind", lineNo)
		}
		if rec.Clock < clock {
			return nil, fmt.Errorf("line %d: clock went backwards (%v after %v)", lineNo, rec.Clock, clock)
		}
		clock = rec.Clock
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty telemetry stream")
	}
	if out[len(out)-1].Kind != "done" {
		return nil, fmt.Errorf("stream does not end with a done record (got %q)", out[len(out)-1].Kind)
	}
	return out, nil
}

// LintSpans validates a JSON-lines span stream (the
// /jobs/{id}/spans.jsonl body, or a CLI -spansout file): every line must
// be a valid JSON Span carrying trace_id, span_id and name; span ids must
// be unique and share one trace id; parent references must be acyclic
// with at least one root (an empty parent, or a parent outside the
// stream — the upstream caller's span when a traceparent was adopted);
// intervals must be well-formed (end >= start in each clock domain); and
// every child must nest inside its resolved parent in whichever clock
// domain the two spans share (wall when both carry wall stamps, virtual
// when both are virtual). Returns the parsed spans on success.
func LintSpans(data []byte) ([]Span, error) {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var spans []Span
	byID := map[string]int{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var s Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			return nil, fmt.Errorf("line %d: invalid JSON: %w", lineNo, err)
		}
		switch {
		case s.TraceID == "":
			return nil, fmt.Errorf("line %d: span without trace_id", lineNo)
		case s.SpanID == "":
			return nil, fmt.Errorf("line %d: span without span_id", lineNo)
		case s.Name == "":
			return nil, fmt.Errorf("line %d: span without name", lineNo)
		}
		if len(spans) > 0 && s.TraceID != spans[0].TraceID {
			return nil, fmt.Errorf("line %d: span %s has trace %s, stream is %s",
				lineNo, s.SpanID, s.TraceID, spans[0].TraceID)
		}
		if _, dup := byID[s.SpanID]; dup {
			return nil, fmt.Errorf("line %d: duplicate span id %s", lineNo, s.SpanID)
		}
		if s.Start != 0 && s.End != 0 && s.End < s.Start {
			return nil, fmt.Errorf("line %d: span %s wall end before start", lineNo, s.SpanID)
		}
		if s.Virtual && s.VEnd < s.VStart {
			return nil, fmt.Errorf("line %d: span %s virtual end before start", lineNo, s.SpanID)
		}
		byID[s.SpanID] = len(spans)
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(spans) == 0 {
		return nil, fmt.Errorf("empty span stream")
	}
	// Parentage: acyclic, with at least one root. A parent id absent from
	// the stream marks a root (the trace continues upstream).
	roots := 0
	for i := range spans {
		if spans[i].Parent == "" {
			roots++
			continue
		}
		if _, ok := byID[spans[i].Parent]; !ok {
			roots++
		}
	}
	if roots == 0 {
		return nil, fmt.Errorf("span stream has no root (every parent resolves in-stream)")
	}
	for i := range spans {
		seen := map[int]bool{i: true}
		at := i
		for {
			pi, ok := byID[spans[at].Parent]
			if spans[at].Parent == "" || !ok {
				break
			}
			if seen[pi] {
				return nil, fmt.Errorf("span %s: cyclic parentage", spans[i].SpanID)
			}
			seen[pi] = true
			at = pi
		}
	}
	// Nesting per shared clock domain.
	for _, s := range spans {
		pi, ok := byID[s.Parent]
		if s.Parent == "" || !ok {
			continue
		}
		p := spans[pi]
		if s.Start != 0 && p.Start != 0 {
			if s.Start < p.Start || s.End > p.End {
				return nil, fmt.Errorf("span %s [%v,%v] not nested in wall parent %s [%v,%v]",
					s.SpanID, s.Start, s.End, p.SpanID, p.Start, p.End)
			}
		}
		if s.Virtual && p.Virtual {
			if s.VStart < p.VStart || s.VEnd > p.VEnd {
				return nil, fmt.Errorf("span %s [%v,%v] not nested in virtual parent %s [%v,%v]",
					s.SpanID, s.VStart, s.VEnd, p.SpanID, p.VStart, p.VEnd)
			}
		}
	}
	return spans, nil
}

type bucketSam struct {
	le  float64
	cum float64
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// lintComment validates a # HELP/# TYPE line and records declared types.
func lintComment(line string, types map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment, allowed
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		name, typ := fields[2], fields[3]
		if !nameRe.MatchString(name) {
			return fmt.Errorf("invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if prev, ok := types[name]; ok && prev != typ {
			return fmt.Errorf("metric %q re-declared as %s (was %s)", name, typ, prev)
		}
		types[name] = typ
	case "HELP":
		if len(fields) < 3 || !nameRe.MatchString(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	}
	return nil
}

// parseSample splits "name{labels} value [timestamp]".
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i : j+1]
		if err := lintLabels(labels); err != nil {
			return "", "", 0, err
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !nameRe.MatchString(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", "", 0, fmt.Errorf("bad timestamp in %q", line)
		}
	}
	return name, labels, value, nil
}

var labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// lintLabels validates a {k="v",...} block.
func lintLabels(block string) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return nil
	}
	for _, pair := range splitLabelPairs(inner) {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair %q", pair)
		}
		k, v := pair[:eq], pair[eq+1:]
		if !labelRe.MatchString(k) {
			return fmt.Errorf("invalid label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label %q value not quoted", k)
		}
	}
	return nil
}

// splitLabelPairs splits on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	inQ := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			inQ = !inQ
		case ',':
			if !inQ {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// splitLE extracts the le label value of a _bucket sample and returns
// the series key without it.
func splitLE(labels string) (le float64, rest string, err error) {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	found := false
	for _, pair := range splitLabelPairs(inner) {
		if strings.HasPrefix(pair, "le=") {
			found = true
			v := strings.Trim(pair[3:], `"`)
			if v == "+Inf" {
				le = infLE
				continue
			}
			le, err = strconv.ParseFloat(v, 64)
			if err != nil {
				return 0, "", fmt.Errorf("bad le %q", v)
			}
			continue
		}
		kept = append(kept, pair)
	}
	if !found {
		return 0, "", fmt.Errorf("_bucket sample without le label: %s", labels)
	}
	if len(kept) == 0 {
		return le, "", nil
	}
	return le, "{" + strings.Join(kept, ",") + "}", nil
}
