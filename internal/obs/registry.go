// Package obs is the solver-wide observability layer: a metrics registry
// (counters, gauges, fixed-bucket histograms) with Prometheus text-format
// and JSON export, a JSON-lines convergence-telemetry stream the solvers
// emit through an injectable Sink, bridges that populate the registry
// from the gpu.Stats ledger and its event trace, and an HTTP handler
// exposing /metrics, /trace.json and net/http/pprof.
//
// The paper's entire argument is about where time goes — per-phase
// CPU<->GPU communication vs. device compute vs. host compute, and how
// the balance shifts with the CA parameter s. The ledger answers those
// questions programmatically; this package makes them observable: a
// Prometheus scrape, a Perfetto timeline with one lane per device, and a
// per-restart convergence log any external tool can tail.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind discriminates the three metric families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Labels is one metric series' label set.
type Labels map[string]string

// key renders the canonical, sorted label serialization used both as the
// series map key and in the Prometheus exposition.
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	names := make([]string, 0, len(l))
	for n := range l {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, l[n])
	}
	b.WriteByte('}')
	return b.String()
}

// L is a convenience constructor: L("phase", "spmv", "dir", "d2h").
// Panics on an odd argument count — a programming error.
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("obs: L wants key/value pairs")
	}
	l := make(Labels, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		l[kv[i]] = kv[i+1]
	}
	return l
}

// series is one (labels, value) sample of a family. Histograms use the
// bucket fields instead of value.
type series struct {
	labels Labels
	key    string

	value float64 // counter/gauge

	buckets []float64 // histogram upper bounds (ascending, no +Inf)
	counts  []uint64  // per-bucket counts, len(buckets)+1 (last is +Inf)
	sum     float64
	count   uint64
}

// family is all series of one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histogram families share one bucket layout
	series  map[string]*series
}

func (f *family) get(l Labels) *series {
	k := l.key()
	s, ok := f.series[k]
	if !ok {
		cp := make(Labels, len(l))
		for n, v := range l {
			cp[n] = v
		}
		s = &series{labels: cp, key: k}
		if f.kind == kindHistogram {
			s.buckets = f.buckets
			s.counts = make([]uint64, len(f.buckets)+1)
		}
		f.series[k] = s
	}
	return s
}

// Registry holds named metric families. Safe for concurrent use; the
// zero value is not usable — construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets,
			series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q redeclared as %v (was %v)", name, kind, f.kind))
	}
	return f
}

// Counter is a monotonically increasing series.
type Counter struct {
	r *Registry
	s *series
}

// Add increments the counter by v (negative deltas are a programming
// error and panic).
func (c Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decreased")
	}
	c.r.mu.Lock()
	c.s.value += v
	c.r.mu.Unlock()
}

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c Counter) Value() float64 {
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	return c.s.value
}

// Counter registers (or fetches) the named counter family and returns
// its unlabeled series; use CounterL for a labeled series.
func (r *Registry) Counter(name, help string) Counter {
	return r.CounterL(name, help, nil)
}

// CounterL returns the counter series with the given labels.
func (r *Registry) CounterL(name, help string, l Labels) Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Counter{r: r, s: r.family(name, help, kindCounter, nil).get(l)}
}

// Gauge is a series that can go up and down.
type Gauge struct {
	r *Registry
	s *series
}

// Set replaces the gauge value.
func (g Gauge) Set(v float64) {
	g.r.mu.Lock()
	g.s.value = v
	g.r.mu.Unlock()
}

// Value returns the current value.
func (g Gauge) Value() float64 {
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	return g.s.value
}

// Gauge registers (or fetches) the named gauge family and returns its
// unlabeled series; use GaugeL for a labeled series.
func (r *Registry) Gauge(name, help string) Gauge {
	return r.GaugeL(name, help, nil)
}

// GaugeL returns the gauge series with the given labels.
func (r *Registry) GaugeL(name, help string, l Labels) Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Gauge{r: r, s: r.family(name, help, kindGauge, nil).get(l)}
}

// Histogram is a fixed-bucket distribution.
type Histogram struct {
	r *Registry
	s *series
}

// Observe records one sample.
func (h Histogram) Observe(v float64) {
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	i := sort.SearchFloat64s(h.s.buckets, v) // first bucket with bound >= v
	h.s.counts[i]++
	h.s.sum += v
	h.s.count++
}

// Count returns the number of observations.
func (h Histogram) Count() uint64 {
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.s.count
}

// Sum returns the sum of observations.
func (h Histogram) Sum() float64 {
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.s.sum
}

// Histogram registers (or fetches) the named histogram family with the
// given bucket upper bounds (sorted ascending; +Inf is implicit) and
// returns its unlabeled series. The bucket layout is fixed at first
// registration; later calls may pass nil.
func (r *Registry) Histogram(name, help string, buckets []float64) Histogram {
	return r.HistogramL(name, help, buckets, nil)
}

// HistogramL returns the histogram series with the given labels.
func (r *Registry) HistogramL(name, help string, buckets []float64, l Labels) Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
	}
	return Histogram{r: r, s: r.family(name, help, kindHistogram, buckets).get(l)}
}

// ExpBuckets returns n exponential bucket bounds starting at start and
// multiplying by factor (the usual layout for durations and sizes).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// sortedFamilies returns the families sorted by name (caller holds the
// registry lock; used by the exporters).
func (r *Registry) sortedFamilies() []*family {
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedSeries returns a family's series sorted by label key (caller
// holds the registry lock).
func (f *family) sortedSeries() []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// formatFloat renders a sample value in the Prometheus exposition style.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
