package obs

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// This file is the request-scoped half of the observability layer: a
// Span model with W3C trace-context identifiers, a Tracer that mints
// them, and context.Context propagation so a trace id received on
// POST /solve travels server → sched → solver telemetry without any of
// those layers knowing about HTTP headers. Spans carry two clocks —
// wall time for the serving path (queue wait, lease tenure) and the
// modeled virtual clock for solver phases (the ledger's TotalTime at
// emission) — because the question "what happened to job X" spans both:
// how long it waited is a wall-clock fact, where its device time went is
// a modeled-time fact.

// Span kinds used by the serving stack. Kind is advisory — exporters
// group lanes by it — but LintSpans accepts any value.
const (
	KindRequest = "request" // root: one HTTP request or CLI solve
	KindQueue   = "queue"   // admission-queue wait
	KindLease   = "lease"   // one solve attempt on a device lease
	KindSolver  = "solver"  // restart / window / cycle / step phases
	KindHeal    = "heal"    // checkpoint, repartition, fault recovery
)

// Span is one node of a request's trace tree. TraceID and SpanID use the
// W3C trace-context wire widths (16 and 8 bytes, lowercase hex). Start
// and End are wall-clock Unix seconds; VStart and VEnd are modeled
// seconds on the solve's virtual clock, meaningful only when Virtual is
// set. A span may carry either clock or both (the root carries both, so
// wall-only and virtual-only children each nest under it).
type Span struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// Parent is the parent span id; empty marks a root.
	Parent string `json:"parent_id,omitempty"`
	Name   string `json:"name"`
	Kind   string `json:"kind,omitempty"`
	// Start and End are wall-clock Unix seconds (0 = no wall stamps).
	Start float64 `json:"start_unix,omitempty"`
	End   float64 `json:"end_unix,omitempty"`
	// VStart and VEnd are modeled seconds since the solve's ledger reset;
	// valid only when Virtual is true (VStart 0 is a legal stamp).
	VStart  float64 `json:"vstart,omitempty"`
	VEnd    float64 `json:"vend,omitempty"`
	Virtual bool    `json:"virtual,omitempty"`
	// Attrs are free-form key/value annotations (job id, attempt,
	// relres, TSQR strategy, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// SetAttr sets one annotation, allocating the map on first use.
func (s *Span) SetAttr(k, v string) {
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[k] = v
}

// Traceparent renders the span's W3C traceparent header value
// (version 00, sampled flag set), the form echoed in HTTP responses and
// accepted on POST /solve.
func (s Span) Traceparent() string {
	return FormatTraceparent(s.TraceID, s.SpanID)
}

// FormatTraceparent renders a version-00 traceparent header value.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex>-<16 hex>-<2 hex>"). It accepts any known-width version
// byte, per the spec's forward-compatibility rule, and rejects all-zero
// ids. Returns the trace id, the caller's span id, and whether the
// header was usable.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 {
		return "", "", false
	}
	ver, tid, sid, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || !isHex(ver) || ver == "ff" {
		return "", "", false
	}
	if len(tid) != 32 || !isHex(tid) || allZero(tid) {
		return "", "", false
	}
	if len(sid) != 16 || !isHex(sid) || allZero(sid) {
		return "", "", false
	}
	if len(flags) != 2 || !isHex(flags) {
		return "", "", false
	}
	return tid, sid, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// Tracer mints trace and span identifiers and keeps the trace_* metric
// families. A nil registry disables the instruments but not the ids, so
// tracing works in registry-free embedders (tests, the facade).
type Tracer struct {
	mu  sync.Mutex
	rng *rand.Rand

	spans    Counter // trace_spans_total
	adopted  Counter // trace_requests_total{source="traceparent"}
	minted   Counter // trace_requests_total{source="generated"}
	hasReg   bool
}

// NewTracer builds a tracer with a time-seeded id stream and registers
// the trace_* families eagerly (when reg is non-nil), so a freshly
// started daemon already exports them.
func NewTracer(reg *Registry) *Tracer {
	return NewTracerSeeded(reg, time.Now().UnixNano())
}

// NewTracerSeeded builds a tracer whose id stream is deterministic for a
// fixed seed — what the replay tests use to pin trace ids.
func NewTracerSeeded(reg *Registry, seed int64) *Tracer {
	t := &Tracer{rng: rand.New(rand.NewSource(seed))}
	if reg != nil {
		t.hasReg = true
		t.spans = reg.Counter("trace_spans_total",
			"Spans recorded into request traces.")
		t.adopted = reg.CounterL("trace_requests_total",
			"Root spans minted, by trace-id source.", L("source", "traceparent"))
		t.minted = reg.CounterL("trace_requests_total",
			"Root spans minted, by trace-id source.", L("source", "generated"))
	}
	return t
}

// hex mints n random bytes as lowercase hex, never all-zero (the W3C
// formats reserve the zero id as invalid).
func (t *Tracer) hex(n int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		b := make([]byte, n)
		t.rng.Read(b)
		zero := true
		for _, c := range b {
			if c != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue
		}
		return fmt.Sprintf("%0*x", 2*n, b)
	}
}

// NewTraceID mints a 16-byte trace id.
func (t *Tracer) NewTraceID() string { return t.hex(16) }

// NewSpanID mints an 8-byte span id.
func (t *Tracer) NewSpanID() string { return t.hex(8) }

// Root mints a request root span: the trace id comes from the
// traceparent header when one parses (the upstream caller's span becomes
// our parent), otherwise a fresh trace is started. The span starts now
// on the wall clock and owns the virtual clock from zero.
func (t *Tracer) Root(name, traceparent string) Span {
	sp := Span{Name: name, Kind: KindRequest, Start: unixNow(), Virtual: true}
	if tid, sid, ok := ParseTraceparent(traceparent); ok {
		sp.TraceID, sp.Parent = tid, sid
		t.count(t.adopted)
	} else {
		sp.TraceID = t.NewTraceID()
		t.count(t.minted)
	}
	sp.SpanID = t.NewSpanID()
	return sp
}

// Child mints a child span of parent, inheriting the trace id.
func (t *Tracer) Child(parent Span, name, kind string) Span {
	return Span{
		TraceID: parent.TraceID, SpanID: t.NewSpanID(), Parent: parent.SpanID,
		Name: name, Kind: kind,
	}
}

// CountSpan bumps trace_spans_total (called by JobTrace.Add).
func (t *Tracer) CountSpan() { t.count(t.spans) }

func (t *Tracer) count(c Counter) {
	if t != nil && t.hasReg {
		c.Inc()
	}
}

func unixNow() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// spanCtxKey carries the active span through context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying the span; SpanFromContext
// recovers it. This is how the HTTP layer hands the request root to the
// scheduler without the scheduler knowing about headers.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span stored by ContextWithSpan.
func SpanFromContext(ctx context.Context) (Span, bool) {
	if ctx == nil {
		return Span{}, false
	}
	s, ok := ctx.Value(spanCtxKey{}).(Span)
	return s, ok
}
