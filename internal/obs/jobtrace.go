package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"cagmres/internal/gpu"
)

// JobTrace collects one request's span tree — the root request span, the
// queue/lease/heal spans the scheduler records, the solver-phase spans
// derived from telemetry — plus the job's gpu.Stats ledger, and renders
// them as a spans JSONL stream or as one self-contained Chrome trace
// whose device lanes reconcile exactly with the ledger.
//
// The ledger arrives by reference, not copy: Pool.Release swaps a fresh
// Stats into the context (ResetStats), so the pointer captured at job
// completion is an immutable per-job record.
type JobTrace struct {
	mu      sync.Mutex
	root    Span
	spans   []Span // children, in Add order
	dropped int
	stats   *gpu.Stats
	tracer  *Tracer
}

// maxJobSpans bounds a single job's span list so a pathological solve
// (millions of steps) cannot hold the server's memory hostage. Drops are
// counted and surfaced as a root attribute.
const maxJobSpans = 4096

// NewJobTrace starts a trace owned by the given root span. The tracer is
// retained only for span accounting (trace_spans_total); it may be nil.
func NewJobTrace(t *Tracer, root Span) *JobTrace {
	return &JobTrace{root: root, tracer: t}
}

// Root returns the root span as currently recorded.
func (jt *JobTrace) Root() Span {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	return jt.root
}

// TraceID returns the trace id shared by every span of the job.
func (jt *JobTrace) TraceID() string { return jt.Root().TraceID }

// Add records one finished child span. Spans past the cap are dropped
// (counted), never reordered.
func (jt *JobTrace) Add(s Span) {
	jt.mu.Lock()
	if len(jt.spans) >= maxJobSpans {
		jt.dropped++
		jt.mu.Unlock()
		return
	}
	jt.spans = append(jt.spans, s)
	jt.mu.Unlock()
	if jt.tracer != nil {
		jt.tracer.CountSpan()
	}
}

// SetRootAttr annotates the root span.
func (jt *JobTrace) SetRootAttr(k, v string) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	jt.root.SetAttr(k, v)
}

// AttachStats binds the job's per-solve ledger (captured from
// Result.Stats after the finishing attempt). The ledger supplies the
// device lanes of the Chrome export and the root span's virtual extent.
func (jt *JobTrace) AttachStats(s *gpu.Stats) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	jt.stats = s
}

// Stats returns the attached ledger (nil until the job finishes).
func (jt *JobTrace) Stats() *gpu.Stats {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	return jt.stats
}

// FinishRoot closes the root span: end is the wall-clock Unix time, vend
// the modeled duration of the finishing solve (0 when the job never ran).
// The root is widened to cover every direct child, so the nesting
// invariant LintSpans enforces holds structurally even when the wall
// clock wobbles between stamps.
func (jt *JobTrace) FinishRoot(end, vend float64) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	jt.root.End = end
	jt.root.VEnd = vend
	for _, s := range jt.spans {
		if s.End > jt.root.End {
			jt.root.End = s.End
		}
		if s.Start != 0 && s.Start < jt.root.Start {
			jt.root.Start = s.Start
		}
		if s.Virtual && s.VEnd > jt.root.VEnd {
			jt.root.VEnd = s.VEnd
		}
	}
	if jt.dropped > 0 {
		jt.root.SetAttr("spans_dropped", fmt.Sprintf("%d", jt.dropped))
	}
}

// Spans returns the full tree, root first, as one flat slice.
func (jt *JobTrace) Spans() []Span {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	out := make([]Span, 0, len(jt.spans)+1)
	out = append(out, jt.root)
	out = append(out, jt.spans...)
	return out
}

// WriteSpansJSONL writes the span tree as JSON lines, root first — the
// stream cmd/obslint -spans validates.
func (jt *JobTrace) WriteSpansJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range jt.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// Chrome-export pids: the wall-clock serving lanes and the modeled-time
// solver/device lanes are separate processes because their x-axes are
// different clocks.
const (
	requestPid = 0 // wall time, relative to the root span start
	modeledPid = 1 // modeled seconds of the finishing solve's ledger
)

// Lane tids inside the modeled-time process. Solver-phase spans get one
// row; the ledger replay reuses gpu.EventLane's layout (comm 0, host 1,
// device d at 2+d) shifted up by one so nothing collides.
const (
	solverLane    = 0
	ledgerLaneOff = 1
)

// WriteChromeTrace renders the stitched request trace: pid 0 carries the
// wall-clock spans (request root, queue, lease, heal) with timestamps
// relative to the root start; pid 1 carries the modeled-time story — the
// solver-phase spans from telemetry on one lane and the job ledger's
// event trace replayed onto comm/host/device lanes with the same
// launch-group cumulative clock as gpu.WriteChromeTrace, so the
// per-(device,phase) slice durations sum to Stats.DevicePhase exactly.
func (jt *JobTrace) WriteChromeTrace(w io.Writer) error {
	jt.mu.Lock()
	root := jt.root
	spans := append([]Span(nil), jt.spans...)
	stats := jt.stats
	jt.mu.Unlock()

	file := struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}{DisplayTimeUnit: "ms", TraceEvents: []map[string]any{}}

	meta := func(pid, tid int, key, name string) {
		file.TraceEvents = append(file.TraceEvents, map[string]any{
			"name": key, "ph": "M", "pid": pid, "tid": tid,
			"args": map[string]any{"name": name},
		})
	}
	slice := func(pid, tid int, name, cat string, ts, dur float64, args map[string]any) {
		ev := map[string]any{
			"name": name, "cat": cat, "ph": "X",
			"ts": ts * 1e6, "dur": dur * 1e6, "pid": pid, "tid": tid,
		}
		if len(args) > 0 {
			ev["args"] = args
		}
		file.TraceEvents = append(file.TraceEvents, ev)
	}

	// --- pid 0: wall-clock serving lanes -------------------------------
	meta(requestPid, 0, "process_name", "request "+root.TraceID)
	meta(requestPid, 0, "thread_name", "request")
	spanArgs := func(s Span) map[string]any {
		a := map[string]any{"span_id": s.SpanID}
		for k, v := range s.Attrs {
			a[k] = v
		}
		return a
	}
	rootEnd := root.End
	if rootEnd < root.Start {
		rootEnd = root.Start
	}
	slice(requestPid, 0, root.Name, root.Kind, 0, rootEnd-root.Start, spanArgs(root))
	for _, s := range spans {
		if s.Start == 0 { // virtual-only span; rendered on pid 1
			continue
		}
		end := s.End
		if end < s.Start {
			end = s.Start
		}
		ts := s.Start - root.Start
		if ts < 0 {
			ts = 0
		}
		slice(requestPid, 0, s.Name, s.Kind, ts, end-s.Start, spanArgs(s))
	}

	// --- pid 1: modeled-time solver + device lanes ---------------------
	meta(modeledPid, 0, "process_name", "modeled time")
	meta(modeledPid, solverLane, "thread_name", "solver phases")
	vend := root.VEnd
	if root.Virtual {
		slice(modeledPid, solverLane, root.Name, root.Kind, 0, vend, spanArgs(root))
	}
	for _, s := range spans {
		if !s.Virtual {
			continue
		}
		ve := s.VEnd
		if ve < s.VStart {
			ve = s.VStart
		}
		slice(modeledPid, solverLane, s.Name, s.Kind, s.VStart, ve-s.VStart, spanArgs(s))
	}

	// Ledger replay: identical clocking to gpu.WriteChromeTrace — launch
	// groups (events sharing a Step) start together, the clock advances by
	// the group max — with slice names set to the event phase so summing a
	// device lane by name reproduces Stats.DevicePhase term for term.
	if stats != nil {
		events := stats.Trace()
		lanes := map[int]bool{}
		clock := 0.0
		for i := 0; i < len(events); {
			j := i
			var groupDur float64
			for j < len(events) && events[j].Step == events[i].Step {
				if t := events[j].Time; t > groupDur {
					groupDur = t
				}
				j++
			}
			for _, e := range events[i:j] {
				lane, laneName := gpu.EventLane(e)
				tid := ledgerLaneOff + lane
				if !lanes[tid] {
					lanes[tid] = true
					meta(modeledPid, tid, "thread_name", laneName)
				}
				args := map[string]any{"seq": e.Seq, "bytes": e.Bytes}
				if e.Device >= 0 {
					args["device"] = e.Device
				}
				slice(modeledPid, tid, e.Phase, e.Kind, clock, e.Time, args)
			}
			clock += groupDur
			i = j
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// SolverSink adapts the solver's telemetry stream into trace spans: each
// record is stamped with the trace/job/attempt correlation fields and
// forwarded to next (which may be nil), and the stream's clock deltas
// become solver-phase spans — one per restart cycle (parenting its
// window/step spans) and instantaneous heal marks for checkpoint and
// repartition records. All spans are virtual-clock only; the record clock
// is the ledger's TotalTime, monotone by construction.
//
// The returned sink is used from a single solver goroutine, matching the
// Sink contract; the spans land in jt under its own lock.
func (jt *JobTrace) SolverSink(t *Tracer, parent Span, jobID string, attempt int, next Sink) Sink {
	type state struct {
		restart     int
		restartSpan Span
		open        bool
		phaseStart  float64 // clock at the previous record
	}
	st := &state{restart: -1}

	closeRestart := func(end float64) {
		if st.open {
			st.restartSpan.VEnd = end
			jt.Add(st.restartSpan)
			st.open = false
		}
	}

	return SinkFunc(func(rec Record) {
		rec.TraceID = parent.TraceID
		rec.JobID = jobID
		rec.Attempt = attempt

		mkChild := func(name, kind string) Span {
			s := t.Child(parent, name, kind)
			s.Virtual = true
			return s
		}

		switch rec.Kind {
		case "step", "window", "cycle":
			if rec.Restart != st.restart || !st.open {
				closeRestart(st.phaseStart)
				st.restart = rec.Restart
				st.restartSpan = mkChild(fmt.Sprintf("restart %d", rec.Restart), KindSolver)
				st.restartSpan.VStart = st.phaseStart
				st.restartSpan.SetAttr("restart", fmt.Sprintf("%d", rec.Restart))
				st.open = true
			}
			s := t.Child(st.restartSpan, fmt.Sprintf("%s %d", rec.Kind, rec.Step), KindSolver)
			s.Virtual = true
			s.VStart, s.VEnd = st.phaseStart, rec.Clock
			s.SetAttr("relres", fmt.Sprintf("%g", rec.RelRes))
			if rec.TSQR != "" {
				s.SetAttr("tsqr", rec.TSQR)
			}
			if rec.OrthoLoss > 0 {
				s.SetAttr("ortho_loss", fmt.Sprintf("%g", rec.OrthoLoss))
			}
			jt.Add(s)
			st.phaseStart = rec.Clock
		case "restart":
			closeRestart(rec.Clock)
			s := mkChild(fmt.Sprintf("restart %d boundary", rec.Restart), KindSolver)
			s.VStart, s.VEnd = st.phaseStart, rec.Clock
			s.SetAttr("relres", fmt.Sprintf("%g", rec.RelRes))
			jt.Add(s)
			st.phaseStart = rec.Clock
		case "checkpoint", "repartition":
			s := mkChild(rec.Kind, KindHeal)
			s.VStart, s.VEnd = rec.Clock, rec.Clock
			s.SetAttr("restart", fmt.Sprintf("%d", rec.Restart))
			if rec.Kind == "repartition" {
				s.SetAttr("survivors", fmt.Sprintf("%d", rec.Step))
			}
			jt.Add(s)
		case "done":
			closeRestart(rec.Clock)
			st.phaseStart = rec.Clock
		}

		if next != nil {
			next.Emit(rec)
		}
	})
}

// ReconcileDeviceLanes checks the stitched trace invariant directly from
// a span tree's attached ledger: for every tracked device and phase, the
// sum of that device's kernel-event durations with that phase name equals
// DevicePhase(d, phase).DeviceTime. The sums share accumulation order
// with the ledger, so equality is exact in float64, not approximate.
// Returns a non-nil error naming the first mismatched (device, phase).
func ReconcileDeviceLanes(stats *gpu.Stats) error {
	if stats == nil {
		return fmt.Errorf("obs: no ledger attached")
	}
	type key struct {
		dev   int
		phase string
	}
	sums := map[key]float64{}
	for _, e := range stats.Trace() {
		if e.Kind != "kernel" || e.Device < 0 {
			continue
		}
		sums[key{e.Device, e.Phase}] += e.Time
	}
	keys := make([]key, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dev != keys[j].dev {
			return keys[i].dev < keys[j].dev
		}
		return keys[i].phase < keys[j].phase
	})
	for _, k := range keys {
		want := stats.DevicePhase(k.dev, k.phase).DeviceTime
		if got := sums[k]; got != want {
			return fmt.Errorf("obs: device %d phase %q lane sum %.17g != ledger %.17g",
				k.dev, k.phase, got, want)
		}
	}
	return nil
}
