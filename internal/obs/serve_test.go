package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"cagmres/internal/gpu"
)

// ledgerWorkload drives a small mixed workload through a traced context
// so the bridge tests have a realistic Stats + event trace to fold in.
func ledgerWorkload(t *testing.T) *gpu.Context {
	t.Helper()
	ctx := gpu.NewContext(2, gpu.M2090())
	ctx.Stats().EnableTrace(1 << 8)
	ctx.UniformKernel("spmv", gpu.Work{Flops: 2e6, Bytes: 1e6})
	ctx.DeviceKernel("tsqr", []gpu.Work{{Flops: 3e6, Bytes: 5e5}, {Flops: 1e6, Bytes: 2e5}})
	ctx.ReduceRound("orth", []int{4096, 8192})
	ctx.BroadcastRound("orth", []int{1024, 1024})
	ctx.HostCompute("lsq", 1e5)
	return ctx
}

func TestCollectStats(t *testing.T) {
	ctx := ledgerWorkload(t)
	s := ctx.Stats()
	r := NewRegistry()
	CollectStats(r, s)

	spmv := s.Phase("spmv")
	if v := r.CounterL("gpu_phase_device_seconds_total", "", L("phase", "spmv")).Value(); v != spmv.DeviceTime {
		t.Fatalf("spmv device seconds %v != ledger %v", v, spmv.DeviceTime)
	}
	orth := s.Phase("orth")
	if v := r.CounterL("gpu_phase_bytes_total", "", L("phase", "orth", "dir", "d2h")).Value(); v != float64(orth.BytesD2H) {
		t.Fatalf("orth d2h bytes %v != ledger %d", v, orth.BytesD2H)
	}
	if v := r.CounterL("gpu_phase_kernels_total", "", L("phase", "tsqr")).Value(); v != 1 {
		t.Fatalf("tsqr kernels = %v, want 1 launch", v)
	}
	// Per-device kernel seconds must reproduce DevicePhase exactly, and
	// sum over devices must cover at least the critical path.
	for d := 0; d < s.TrackedDevices(); d++ {
		for _, ph := range []string{"spmv", "tsqr"} {
			want := s.DevicePhase(d, ph).DeviceTime
			got := r.CounterL("gpu_device_kernel_seconds_total", "",
				L("device", devLabel(d), "phase", ph)).Value()
			if got != want {
				t.Fatalf("device %d %s: %v != %v", d, ph, got, want)
			}
		}
	}
	perDev := 0.0
	for d := 0; d < s.TrackedDevices(); d++ {
		perDev = math.Max(perDev, s.DevicePhase(d, "tsqr").DeviceTime)
	}
	if perDev != s.Phase("tsqr").DeviceTime {
		t.Fatalf("max per-device %v != aggregate critical path %v", perDev, s.Phase("tsqr").DeviceTime)
	}
	// Output still lints.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(buf.Bytes()); err != nil {
		t.Fatalf("lint: %v\n%s", err, buf.String())
	}
}

func devLabel(d int) string { return string(rune('0' + d)) }

func TestObserveTrace(t *testing.T) {
	ctx := ledgerWorkload(t)
	r := NewRegistry()
	ObserveTrace(r, ctx.Stats().Trace())

	// 2 launches x 2 devices = 4 kernel events.
	h := r.Histogram("gpu_kernel_seconds", "", nil)
	if h.Count() != 4 {
		t.Fatalf("kernel samples = %d, want 4", h.Count())
	}
	d2h := r.HistogramL("gpu_transfer_bytes", "", nil, L("dir", "d2h"))
	if d2h.Count() != 1 || d2h.Sum() != 4096+8192 {
		t.Fatalf("d2h transfers: count=%d sum=%v", d2h.Count(), d2h.Sum())
	}
	h2d := r.HistogramL("gpu_transfer_bytes", "", nil, L("dir", "h2d"))
	if h2d.Count() != 1 || h2d.Sum() != 2048 {
		t.Fatalf("h2d transfers: count=%d sum=%v", h2d.Count(), h2d.Sum())
	}
}

func TestObserveKernel(t *testing.T) {
	r := NewRegistry()
	r.ObserveKernel("tsqr", 1.5e-3, true)
	r.ObserveKernel("tsqr", 2.5e-3, true)
	r.ObserveKernel("spmv", 1e-4, false)
	if n := r.HistogramL("host_kernel_seconds", "", nil, L("kernel", "tsqr")).Count(); n != 2 {
		t.Fatalf("tsqr samples = %d", n)
	}
	if v := r.CounterL("host_kernel_samples_total", "", L("kernel", "spmv", "mode", "measured")).Value(); v != 1 {
		t.Fatalf("measured counter = %v", v)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	ctx := ledgerWorkload(t)
	r := NewRegistry()
	CollectStats(r, ctx.Stats())
	traces := func() []gpu.Trace {
		return []gpu.Trace{ctx.Stats().TraceOf("solve")}
	}
	srv := httptest.NewServer(Handler(r, traces))
	defer srv.Close()

	get := func(path string) (int, string, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), body
	}

	code, ct, body := get("/metrics")
	if code != http.StatusOK || ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics: code=%d content-type=%q", code, ct)
	}
	if err := LintPrometheus(body); err != nil {
		t.Fatalf("/metrics does not lint: %v", err)
	}

	code, _, body = get("/metrics.json")
	if code != http.StatusOK || !json.Valid(body) {
		t.Fatalf("/metrics.json: code=%d valid=%v", code, json.Valid(body))
	}

	code, _, body = get("/trace.json")
	if code != http.StatusOK || !json.Valid(body) {
		t.Fatalf("/trace.json: code=%d valid=%v", code, json.Valid(body))
	}
	if !bytes.Contains(body, []byte("traceEvents")) {
		t.Fatalf("/trace.json missing traceEvents: %s", body[:min(len(body), 200)])
	}

	code, _, _ = get("/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: code=%d", code)
	}
}

func TestHandlerTraceDisabled(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/trace.json with tracing off: code=%d, want 404", resp.StatusCode)
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", Handler(NewRegistry(), nil))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("serve /metrics: code=%d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
