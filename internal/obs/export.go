package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): HELP and TYPE comments followed by
// one sample line per series, histograms expanded into cumulative
// _bucket/_sum/_count samples. Families and series are emitted in sorted
// order, so the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.sortedSeries() {
			switch f.kind {
			case kindHistogram:
				cum := uint64(0)
				for i, bound := range s.buckets {
					cum += s.counts[i]
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, withLE(s.labels, formatFloat(bound)), cum)
				}
				cum += s.counts[len(s.buckets)]
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, withLE(s.labels, "+Inf"), cum)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, s.key, formatFloat(s.sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, s.key, s.count)
			default:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, s.key, formatFloat(s.value))
			}
		}
	}
	return bw.Flush()
}

// withLE renders a label set with the histogram le label appended.
func withLE(l Labels, le string) string {
	merged := make(Labels, len(l)+1)
	for k, v := range l {
		merged[k] = v
	}
	merged["le"] = le
	return merged.key()
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// JSONMetric is one family in the JSON export.
type JSONMetric struct {
	Name   string       `json:"name"`
	Type   string       `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []JSONSeries `json:"series"`
}

// JSONSeries is one series of a family in the JSON export.
type JSONSeries struct {
	Labels Labels `json:"labels,omitempty"`
	// Value is set for counters and gauges.
	Value *float64 `json:"value,omitempty"`
	// Histogram fields.
	Buckets []float64 `json:"buckets,omitempty"` // upper bounds
	Counts  []uint64  `json:"counts,omitempty"`  // per-bucket (non-cumulative), +Inf last
	Sum     *float64  `json:"sum,omitempty"`
	Count   *uint64   `json:"count,omitempty"`
}

// Snapshot returns the registry contents as exportable values, sorted by
// family name and series labels.
func (r *Registry) Snapshot() []JSONMetric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JSONMetric, 0, len(r.families))
	for _, f := range r.sortedFamilies() {
		m := JSONMetric{Name: f.name, Type: f.kind.String(), Help: f.help}
		for _, s := range f.sortedSeries() {
			js := JSONSeries{Labels: s.labels}
			if len(js.Labels) == 0 {
				js.Labels = nil
			}
			if f.kind == kindHistogram {
				js.Buckets = append([]float64(nil), s.buckets...)
				js.Counts = append([]uint64(nil), s.counts...)
				sum, count := s.sum, s.count
				js.Sum, js.Count = &sum, &count
			} else {
				v := s.value
				js.Value = &v
			}
			m.Series = append(m.Series, js)
		}
		out = append(out, m)
	}
	return out
}

// WriteJSON renders the registry as indented JSON (an array of families).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
