package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// skewedRows builds a matrix with a power-law-ish row length profile: a
// few very long rows amid short ones, ELLPACK's worst case.
func skewedRows(n int, rng *rand.Rand) *CSR {
	entries := make([]Coord, 0, 8*n)
	for i := 0; i < n; i++ {
		entries = append(entries, Coord{i, i, 4})
		deg := 2
		if i%37 == 0 {
			deg = 60
		}
		for d := 0; d < deg; d++ {
			entries = append(entries, Coord{i, rng.Intn(n), rng.NormFloat64()})
		}
	}
	return FromCoords(n, n, entries)
}

func TestSELLMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	for _, tc := range []struct{ n, c, sigma int }{
		{100, 8, 1},  // no sorting
		{100, 8, 64}, // sorted windows
		{97, 4, 32},  // n not multiple of c
		{1, 8, 8},    // single row
		{300, 16, 256},
	} {
		a := skewedRows(tc.n, rng)
		s := ToSELL(a, tc.c, tc.sigma)
		if s.NNZ() != a.NNZ() {
			t.Fatalf("%+v: nnz %d -> %d", tc, a.NNZ(), s.NNZ())
		}
		x := make([]float64, tc.n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, tc.n)
		got := make([]float64, tc.n)
		a.MulVec(want, x)
		s.MulVec(got, x)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("%+v: SpMV mismatch at row %d", tc, i)
			}
		}
	}
}

func TestSELLSortingReducesPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	a := skewedRows(500, rng)
	ell := ToELL(a)
	unsorted := ToSELL(a, 8, 1)
	sorted := ToSELL(a, 8, 256)
	// Chunked padding beats global padding, and sigma-sorting beats
	// unsorted chunking.
	if unsorted.PadRatio() >= ell.PadRatio() {
		t.Fatalf("SELL pad %v not below ELLPACK %v", unsorted.PadRatio(), ell.PadRatio())
	}
	if sorted.PadRatio() >= unsorted.PadRatio() {
		t.Fatalf("sorted pad %v not below unsorted %v", sorted.PadRatio(), unsorted.PadRatio())
	}
	// For this profile the win is large.
	if sorted.PadRatio() > ell.PadRatio()/2 {
		t.Fatalf("sigma-sort should at least halve ELLPACK padding: %v vs %v",
			sorted.PadRatio(), ell.PadRatio())
	}
}

func TestSELLUniformRowsNoPadding(t *testing.T) {
	// Tridiagonal interior rows all length 3: chunks of interior rows
	// pad only at the matrix ends.
	n := 64
	entries := make([]Coord, 0, 3*n)
	for i := 0; i < n; i++ {
		entries = append(entries, Coord{i, i, 2})
		if i > 0 {
			entries = append(entries, Coord{i, i - 1, -1})
		}
		if i+1 < n {
			entries = append(entries, Coord{i, i + 1, -1})
		}
	}
	a := FromCoords(n, n, entries)
	s := ToSELL(a, 8, 1)
	if pr := s.PadRatio(); pr > 1.02 {
		t.Fatalf("near-uniform rows should not pad: %v", pr)
	}
}

func TestSELLEmptyRows(t *testing.T) {
	a := FromCoords(10, 10, []Coord{{0, 0, 1}, {9, 9, 2}})
	s := ToSELL(a, 4, 8)
	x := make([]float64, 10)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, 10)
	s.MulVec(y, x)
	if y[0] != 1 || y[9] != 2 {
		t.Fatalf("y = %v", y)
	}
	for i := 1; i < 9; i++ {
		if y[i] != 0 {
			t.Fatalf("empty row %d produced %v", i, y[i])
		}
	}
}

func BenchmarkSELLSpMV(b *testing.B) {
	rng := rand.New(rand.NewSource(702))
	a := skewedRows(1<<15, rng)
	s := ToSELL(a, 8, 256)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 / float64(i+1)
	}
	y := make([]float64, a.Rows)
	b.SetBytes(int64(a.NNZ() * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MulVec(y, x)
	}
}

func BenchmarkELLSpMVSkewed(b *testing.B) {
	rng := rand.New(rand.NewSource(703))
	a := skewedRows(1<<15, rng)
	e := ToELL(a)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 / float64(i+1)
	}
	y := make([]float64, a.Rows)
	b.SetBytes(int64(a.NNZ() * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MulVec(y, x)
	}
}
