package sparse

import (
	"fmt"
	"sort"
)

// SELL is the sliced ELLPACK format (SELL-C-sigma, Kreutzer et al.):
// rows are grouped into chunks of C, each chunk padded only to its own
// widest row rather than the global maximum, and rows are pre-sorted by
// length within windows of Sigma rows so chunk members have similar
// lengths. It keeps ELLPACK's coalesced slot-major access while taming
// its padding blow-up on matrices with skewed row lengths (a power-law
// row in plain ELLPACK pads every other row to its width). Included as a
// kernel-optimization study companion to the paper's ELLPACK choice.
type SELL struct {
	Rows, Cols int
	C          int // chunk height
	Sigma      int // sorting window (multiple of C; 1 disables sorting)
	// ChunkPtr[k] is the offset of chunk k's slots in ColIdx/Val; chunk k
	// holds ChunkWidth[k]*C slots laid out slot-major within the chunk.
	ChunkPtr   []int
	ChunkWidth []int
	ColIdx     []int32
	Val        []float64
	// RowOf maps packed row position (chunk*C + lane) to the original
	// row index, undoing the sigma-sort during MulVec.
	RowOf []int
}

// ToSELL converts a CSR matrix. c is the chunk height (default 8 if < 1);
// sigma the sorting window in rows (rounded up to a multiple of c;
// sigma <= 1 disables sorting).
func ToSELL(a *CSR, c, sigma int) *SELL {
	if c < 1 {
		c = 8
	}
	if sigma < 1 {
		sigma = 1
	}
	if sigma > 1 && sigma%c != 0 {
		sigma = ((sigma + c - 1) / c) * c
	}
	n := a.Rows
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if sigma > 1 {
		for w0 := 0; w0 < n; w0 += sigma {
			w1 := w0 + sigma
			if w1 > n {
				w1 = n
			}
			win := order[w0:w1]
			sort.SliceStable(win, func(x, y int) bool {
				lx := a.RowPtr[win[x]+1] - a.RowPtr[win[x]]
				ly := a.RowPtr[win[y]+1] - a.RowPtr[win[y]]
				return lx > ly
			})
		}
	}
	nchunks := (n + c - 1) / c
	s := &SELL{
		Rows: n, Cols: a.Cols, C: c, Sigma: sigma,
		ChunkPtr:   make([]int, nchunks+1),
		ChunkWidth: make([]int, nchunks),
		RowOf:      make([]int, nchunks*c),
	}
	for i := range s.RowOf {
		s.RowOf[i] = -1
	}
	// Pass 1: widths.
	for k := 0; k < nchunks; k++ {
		w := 0
		for lane := 0; lane < c; lane++ {
			pos := k*c + lane
			if pos >= n {
				break
			}
			row := order[pos]
			if l := a.RowPtr[row+1] - a.RowPtr[row]; l > w {
				w = l
			}
		}
		s.ChunkWidth[k] = w
		s.ChunkPtr[k+1] = s.ChunkPtr[k] + w*c
	}
	s.ColIdx = make([]int32, s.ChunkPtr[nchunks])
	s.Val = make([]float64, s.ChunkPtr[nchunks])
	for i := range s.ColIdx {
		s.ColIdx[i] = -1
	}
	// Pass 2: fill, slot-major within each chunk.
	for k := 0; k < nchunks; k++ {
		base := s.ChunkPtr[k]
		for lane := 0; lane < c; lane++ {
			pos := k*c + lane
			if pos >= n {
				break
			}
			row := order[pos]
			s.RowOf[pos] = row
			lo, hi := a.RowPtr[row], a.RowPtr[row+1]
			for slot := 0; slot < hi-lo; slot++ {
				idx := base + slot*c + lane
				s.ColIdx[idx] = int32(a.ColIdx[lo+slot])
				s.Val[idx] = a.Val[lo+slot]
			}
		}
	}
	return s
}

// NNZ returns the number of non-padding entries.
func (s *SELL) NNZ() int {
	n := 0
	for _, c := range s.ColIdx {
		if c >= 0 {
			n++
		}
	}
	return n
}

// PadRatio returns stored slots / nnz (1.0 = no padding).
func (s *SELL) PadRatio() float64 {
	nnz := s.NNZ()
	if nnz == 0 {
		return 1
	}
	return float64(len(s.Val)) / float64(nnz)
}

// MulVecPrefix computes y[0:rows] := (A x)[0:rows] for the leading rows.
// It requires Sigma == 1 (no row reordering), the configuration the
// matrix powers kernel needs: its extended rows are sorted by halo
// distance and each MPK step multiplies a distance prefix.
func (s *SELL) MulVecPrefix(y, x []float64, rows int) {
	if s.Sigma != 1 {
		panic("sparse: SELL MulVecPrefix requires Sigma == 1 (row order preserved)")
	}
	if rows > s.Rows || len(y) < rows {
		panic(fmt.Sprintf("sparse: SELL MulVecPrefix rows=%d of %d, len(y)=%d", rows, s.Rows, len(y)))
	}
	nchunks := (rows + s.C - 1) / s.C
	for k := 0; k < nchunks; k++ {
		base := s.ChunkPtr[k]
		w := s.ChunkWidth[k]
		lanes := s.C
		if k*s.C+lanes > rows {
			lanes = rows - k*s.C
		}
		for lane := 0; lane < lanes; lane++ {
			y[k*s.C+lane] = 0
		}
		for slot := 0; slot < w; slot++ {
			off := base + slot*s.C
			for lane := 0; lane < lanes; lane++ {
				c := s.ColIdx[off+lane]
				if c < 0 {
					continue
				}
				y[k*s.C+lane] += s.Val[off+lane] * x[c]
			}
		}
	}
}

// MulVec computes y := A x, writing results in the ORIGINAL row order.
func (s *SELL) MulVec(y, x []float64) {
	if len(x) != s.Cols || len(y) != s.Rows {
		panic(fmt.Sprintf("sparse: SELL MulVec shape mismatch A=%dx%d x=%d y=%d", s.Rows, s.Cols, len(x), len(y)))
	}
	nchunks := len(s.ChunkWidth)
	acc := make([]float64, s.C)
	for k := 0; k < nchunks; k++ {
		base := s.ChunkPtr[k]
		w := s.ChunkWidth[k]
		for lane := range acc {
			acc[lane] = 0
		}
		for slot := 0; slot < w; slot++ {
			off := base + slot*s.C
			for lane := 0; lane < s.C; lane++ {
				c := s.ColIdx[off+lane]
				if c < 0 {
					continue
				}
				acc[lane] += s.Val[off+lane] * x[c]
			}
		}
		for lane := 0; lane < s.C; lane++ {
			row := s.RowOf[k*s.C+lane]
			if row >= 0 {
				y[row] = acc[lane]
			}
		}
	}
}
