package sparse

import (
	"runtime"
	"sync"
)

// MulVecParallel computes y := A x with row blocks distributed over
// GOMAXPROCS goroutines — the threaded-MKL-style CPU SpMV the paper uses
// as its CPU reference point (Figure 3). Row blocks are sized by nnz, not
// row count, so matrices with skewed row lengths stay balanced.
func (a *CSR) MulVecParallel(y, x []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic("sparse: MulVecParallel shape mismatch")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || a.NNZ() < 1<<14 {
		a.MulVec(y, x)
		return
	}
	bounds := nnzBalancedBlocks(a, workers)
	var wg sync.WaitGroup
	for w := 0; w+1 < len(bounds); w++ {
		r0, r1 := bounds[w], bounds[w+1]
		if r0 == r1 {
			continue
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			for i := r0; i < r1; i++ {
				var s float64
				for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
					s += a.Val[k] * x[a.ColIdx[k]]
				}
				y[i] = s
			}
		}(r0, r1)
	}
	wg.Wait()
}

// nnzBalancedBlocks returns nparts+1 row boundaries that split the rows
// into contiguous blocks with roughly equal nonzero counts.
func nnzBalancedBlocks(a *CSR, nparts int) []int {
	bounds := make([]int, nparts+1)
	total := a.NNZ()
	target := (total + nparts - 1) / nparts
	row := 0
	for p := 1; p < nparts; p++ {
		want := p * target
		for row < a.Rows && a.RowPtr[row+1] < want {
			row++
		}
		bounds[p] = row
	}
	bounds[nparts] = a.Rows
	// Enforce monotonicity in degenerate cases (e.g. empty matrix).
	for p := 1; p <= nparts; p++ {
		if bounds[p] < bounds[p-1] {
			bounds[p] = bounds[p-1]
		}
	}
	return bounds
}

// RowBlocks splits the rows into nparts contiguous blocks with roughly
// equal numbers of rows, the "natural" block-row distribution used when
// the matrix keeps its original (or RCM) ordering.
func RowBlocks(rows, nparts int) []int {
	bounds := make([]int, nparts+1)
	base, rem := rows/nparts, rows%nparts
	for p := 0; p < nparts; p++ {
		bounds[p+1] = bounds[p] + base
		if p < rem {
			bounds[p+1]++
		}
	}
	return bounds
}
