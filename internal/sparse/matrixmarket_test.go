package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	a := randCSR(rng, 30, 4)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows != a.Rows || b.Cols != a.Cols || b.NNZ() != a.NNZ() {
		t.Fatalf("shape/nnz changed: %dx%d/%d", b.Rows, b.Cols, b.NNZ())
	}
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if b.At(i, j) != vals[k] {
				t.Fatalf("value changed at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 3 1.5
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != -1 || a.At(1, 0) != -1 {
		t.Fatal("symmetric entry not mirrored")
	}
	if a.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5", a.NNZ())
	}
}

func TestMatrixMarketSkewSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(1, 0) != 3 || a.At(0, 1) != -3 {
		t.Fatalf("skew mirror wrong: %v %v", a.At(1, 0), a.At(0, 1))
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 || a.At(1, 1) != 1 {
		t.Fatal("pattern entries should be 1")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"not a header\n1 1 0\n",
		"%%MatrixMarket matrix array real general\n1 1\n0.5\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 5\n", // truncated
		"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 xyz\n",
	}
	for i, src := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestMatrixMarketSkipsBlankAndComments(t *testing.T) {
	src := "%%MatrixMarket matrix coordinate real general\n% c1\n\n% c2\n2 2 1\n\n% mid\n1 2 7.5\n"
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != 7.5 {
		t.Fatal("entry lost among comments")
	}
}
