package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestMulVecParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for _, n := range []int{10, 5000, 40000} {
		a := randCSR(rng, n, 8)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		a.MulVec(y1, x)
		a.MulVecParallel(y2, x)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-13*(1+math.Abs(y1[i])) {
				t.Fatalf("n=%d: parallel SpMV mismatch at row %d", n, i)
			}
		}
	}
}

func TestNnzBalancedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	a := randCSR(rng, 1000, 6)
	for _, p := range []int{1, 2, 3, 7, 16} {
		b := nnzBalancedBlocks(a, p)
		if len(b) != p+1 || b[0] != 0 || b[p] != a.Rows {
			t.Fatalf("p=%d: bounds %v", p, b)
		}
		for i := 1; i <= p; i++ {
			if b[i] < b[i-1] {
				t.Fatalf("p=%d: non-monotone bounds %v", p, b)
			}
		}
		// nnz per block within 2x of average for this uniform matrix
		avg := a.NNZ() / p
		for i := 0; i < p; i++ {
			nnz := a.RowPtr[b[i+1]] - a.RowPtr[b[i]]
			if p > 1 && nnz > 2*avg+50 {
				t.Fatalf("p=%d block %d has %d nnz, avg %d", p, i, nnz, avg)
			}
		}
	}
}

func TestNnzBalancedBlocksEmpty(t *testing.T) {
	a := NewCSR(0, 0, 0)
	b := nnzBalancedBlocks(a, 4)
	for _, v := range b {
		if v != 0 {
			t.Fatalf("bounds %v for empty matrix", b)
		}
	}
}

func TestRowBlocks(t *testing.T) {
	b := RowBlocks(10, 3)
	want := []int{0, 4, 7, 10}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("RowBlocks = %v", b)
		}
	}
	b = RowBlocks(2, 3) // more parts than rows
	if b[3] != 2 {
		t.Fatalf("RowBlocks small = %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			t.Fatalf("non-monotone %v", b)
		}
	}
}
