package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestELLRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	a := randCSR(rng, 100, 5)
	e := ToELL(a)
	back := e.ToCSR()
	if back.NNZ() != a.NNZ() {
		t.Fatalf("nnz %d -> %d", a.NNZ(), back.NNZ())
	}
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		bcols, bvals := back.Row(i)
		if len(cols) != len(bcols) {
			t.Fatalf("row %d length changed", i)
		}
		for k := range cols {
			if cols[k] != bcols[k] || vals[k] != bvals[k] {
				t.Fatalf("row %d entry %d changed", i, k)
			}
		}
	}
}

func TestELLMulVecMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, n := range []int{1, 17, 300} {
		a := randCSR(rng, n, 6)
		e := ToELL(a)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		a.MulVec(y1, x)
		e.MulVec(y2, x)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-12*(1+math.Abs(y1[i])) {
				t.Fatalf("n=%d: ELL SpMV mismatch at %d", n, i)
			}
		}
	}
}

func TestELLWidthAndPad(t *testing.T) {
	// A matrix with one dense row forces heavy padding.
	entries := []Coord{{0, 0, 1}}
	n := 10
	for j := 0; j < n; j++ {
		entries = append(entries, Coord{1, j, 1})
	}
	for i := 2; i < n; i++ {
		entries = append(entries, Coord{i, i, 1})
	}
	a := FromCoords(n, n, entries)
	e := ToELL(a)
	if e.Width != n {
		t.Fatalf("Width = %d, want %d", e.Width, n)
	}
	if pr := e.PadRatio(); pr < 4 {
		t.Fatalf("PadRatio = %v, want heavy padding", pr)
	}
	// Banded matrix: no padding at all.
	b := ToELL(FromCoords(3, 3, []Coord{{0, 0, 1}, {1, 1, 1}, {2, 2, 1}}))
	if b.PadRatio() != 1 {
		t.Fatalf("diagonal PadRatio = %v", b.PadRatio())
	}
}

func TestELLEmptyRow(t *testing.T) {
	a := FromCoords(3, 3, []Coord{{0, 0, 2}, {2, 2, 3}}) // row 1 empty
	e := ToELL(a)
	x := []float64{1, 1, 1}
	y := make([]float64, 3)
	e.MulVec(y, x)
	if y[0] != 2 || y[1] != 0 || y[2] != 3 {
		t.Fatalf("y = %v", y)
	}
}
