package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestBalanceRowNormsUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	a := randCSR(rng, 50, 4)
	// Mangle scales badly.
	for i := 0; i < a.Rows; i++ {
		s := math.Pow(10, float64(i%7)-3)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			a.Val[k] *= s
		}
	}
	Balance(a)
	// After the column pass, column norms are exactly 1...
	csq := make([]float64, a.Cols)
	for k, c := range a.ColIdx {
		csq[c] += a.Val[k] * a.Val[k]
	}
	for j, v := range csq {
		if v == 0 {
			continue
		}
		if math.Abs(math.Sqrt(v)-1) > 1e-12 {
			t.Fatalf("column %d norm %v after balance", j, math.Sqrt(v))
		}
	}
	// ...and row norms are within a modest factor of 1 (the column pass
	// perturbs them but cannot blow them up arbitrarily for this class).
	for i, rn := range RowNorms(a) {
		if rn == 0 {
			continue
		}
		if rn > 10 || rn < 1e-3 {
			t.Fatalf("row %d norm %v far from 1 after balance", i, rn)
		}
	}
}

func TestBalanceSolutionMapping(t *testing.T) {
	// Solving the balanced system must recover the original solution:
	// (Dr A Dc)(Dc^-1 x) = Dr b.
	rng := rand.New(rand.NewSource(71))
	n := 40
	a := randCSR(rng, n, 3)
	orig := a.Clone()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	orig.MulVec(b, x)

	rs, cs := Balance(a)
	// Balanced RHS.
	bb := append([]float64(nil), b...)
	ApplyRowScale(rs, bb)
	// Balanced solution xb = Dc^{-1} x.
	xb := make([]float64, n)
	for i := range xb {
		xb[i] = x[i] / cs[i]
	}
	got := make([]float64, n)
	a.MulVec(got, xb)
	for i := range got {
		if math.Abs(got[i]-bb[i]) > 1e-10*(1+math.Abs(bb[i])) {
			t.Fatalf("balanced system inconsistent at %d: %v vs %v", i, got[i], bb[i])
		}
	}
	// And UnscaleSolution maps xb back to x.
	UnscaleSolution(cs, xb)
	for i := range x {
		if math.Abs(xb[i]-x[i]) > 1e-12*(1+math.Abs(x[i])) {
			t.Fatal("UnscaleSolution failed")
		}
	}
}

func TestBalanceZeroRow(t *testing.T) {
	a := FromCoords(3, 3, []Coord{{0, 0, 5}, {2, 2, 1}})
	rs, cs := Balance(a)
	if rs[1] != 1 || cs[1] != 1 {
		t.Fatal("zero row/col should get scale 1")
	}
	if math.IsNaN(a.At(0, 0)) || a.At(0, 0) == 0 {
		t.Fatal("balance corrupted values")
	}
}

func TestFrobNorm(t *testing.T) {
	a := FromCoords(2, 2, []Coord{{0, 0, 3}, {1, 1, 4}})
	if got := FrobNorm(a); math.Abs(got-5) > 1e-15 {
		t.Fatalf("FrobNorm = %v", got)
	}
}

func TestRowNorms(t *testing.T) {
	a := FromCoords(2, 2, []Coord{{0, 0, 3}, {0, 1, 4}, {1, 1, 2}})
	norms := RowNorms(a)
	if math.Abs(norms[0]-5) > 1e-15 || math.Abs(norms[1]-2) > 1e-15 {
		t.Fatalf("RowNorms = %v", norms)
	}
}
