package sparse

import "math"

// Balance scales the matrix in place the way the paper preconditions its
// test systems (Section VI): rows are first scaled by their 2-norms, then
// columns by theirs. It returns the row and column scale vectors
// (rs, cs) so a solve of the balanced system can be mapped back:
//
//	A x = b  with  Ab = Dr A Dc,  xb = Dc^{-1} x,  bb = Dr b,
//
// where Dr = diag(rs) and Dc = diag(cs). Zero rows/columns get scale 1.
func Balance(a *CSR) (rowScale, colScale []float64) {
	rowScale = make([]float64, a.Rows)
	colScale = make([]float64, a.Cols)

	// Row pass: rs_i = 1/||a_i,:||_2.
	for i := 0; i < a.Rows; i++ {
		var ssq float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			ssq += a.Val[k] * a.Val[k]
		}
		if ssq == 0 {
			rowScale[i] = 1
			continue
		}
		rowScale[i] = 1 / math.Sqrt(ssq)
	}
	for i := 0; i < a.Rows; i++ {
		s := rowScale[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			a.Val[k] *= s
		}
	}

	// Column pass on the row-scaled values.
	csq := make([]float64, a.Cols)
	for k, c := range a.ColIdx {
		csq[c] += a.Val[k] * a.Val[k]
	}
	for j := 0; j < a.Cols; j++ {
		if csq[j] == 0 {
			colScale[j] = 1
		} else {
			colScale[j] = 1 / math.Sqrt(csq[j])
		}
	}
	for k, c := range a.ColIdx {
		a.Val[k] *= colScale[c]
	}
	return rowScale, colScale
}

// ApplyRowScale computes b_balanced[i] = rowScale[i]*b[i] in place.
func ApplyRowScale(rowScale, b []float64) {
	for i := range b {
		b[i] *= rowScale[i]
	}
}

// UnscaleSolution maps the solution of the balanced system back to the
// original variables: x = Dc * xb, in place.
func UnscaleSolution(colScale, x []float64) {
	for i := range x {
		x[i] *= colScale[i]
	}
}

// RowNorms returns the 2-norm of every row.
func RowNorms(a *CSR) []float64 {
	norms := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		var ssq float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			ssq += a.Val[k] * a.Val[k]
		}
		norms[i] = math.Sqrt(ssq)
	}
	return norms
}

// FrobNorm returns the Frobenius norm of the matrix.
func FrobNorm(a *CSR) float64 {
	var ssq float64
	for _, v := range a.Val {
		ssq += v * v
	}
	return math.Sqrt(ssq)
}
