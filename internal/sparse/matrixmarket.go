package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a MatrixMarket coordinate file (the distribution
// format of the University of Florida / SuiteSparse collection, where the
// paper's test matrices live). Supported qualifiers: real/integer/pattern
// values, general/symmetric/skew-symmetric storage. Pattern entries get
// value 1. Symmetric storage is expanded to full storage.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("sparse: reading MatrixMarket header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
		return nil, fmt.Errorf("sparse: not a MatrixMarket matrix header: %q", strings.TrimSpace(header))
	}
	if fields[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: only coordinate format supported, got %q", fields[2])
	}
	valType := fields[3] // real | integer | pattern | complex
	symmetry := fields[4]
	switch valType {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported value type %q", valType)
	}
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", symmetry)
	}

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: missing size line: %w", err)
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %w", line, err)
		}
		break
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: negative size %d %d %d", rows, cols, nnz)
	}

	// Preallocation is capped: nnz comes straight from untrusted input,
	// and an absurd claim must not allocate before the entries exist.
	capHint := nnz * 2
	if capHint > 1<<20 || capHint < 0 {
		capHint = 1 << 20
	}
	entries := make([]Coord, 0, capHint)
	for read := 0; read < nnz; {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: truncated file at entry %d/%d: %w", read, nnz, err)
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %w", f[0], err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col index %q: %w", f[1], err)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", i, j, rows, cols)
		}
		v := 1.0
		if valType != "pattern" {
			if len(f) < 3 {
				return nil, fmt.Errorf("sparse: missing value on line %q", line)
			}
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %w", f[2], err)
			}
		}
		entries = append(entries, Coord{Row: i - 1, Col: j - 1, Val: v})
		if i != j {
			switch symmetry {
			case "symmetric":
				entries = append(entries, Coord{Row: j - 1, Col: i - 1, Val: v})
			case "skew-symmetric":
				entries = append(entries, Coord{Row: j - 1, Col: i - 1, Val: -v})
			}
		}
		read++
	}
	return FromCoords(rows, cols, entries), nil
}

// WriteMatrixMarket writes the matrix in general real coordinate format.
func WriteMatrixMarket(w io.Writer, a *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		a.Rows, a.Cols, a.NNZ()); err != nil {
		return err
	}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, a.ColIdx[k]+1, a.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
