package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testMatrix builds the 4x4 example
//
//	[ 2 -1  0  0 ]
//	[-1  2 -1  0 ]
//	[ 0 -1  2 -1 ]
//	[ 0  0 -1  2 ]
func testMatrix() *CSR {
	return FromCoords(4, 4, []Coord{
		{0, 0, 2}, {0, 1, -1},
		{1, 0, -1}, {1, 1, 2}, {1, 2, -1},
		{2, 1, -1}, {2, 2, 2}, {2, 3, -1},
		{3, 2, -1}, {3, 3, 2},
	})
}

// randCSR builds a random sparse square matrix with a guaranteed nonzero
// diagonal and ~deg off-diagonal entries per row.
func randCSR(rng *rand.Rand, n, deg int) *CSR {
	entries := make([]Coord, 0, n*(deg+1))
	for i := 0; i < n; i++ {
		entries = append(entries, Coord{i, i, 4 + rng.Float64()})
		for d := 0; d < deg; d++ {
			j := rng.Intn(n)
			entries = append(entries, Coord{i, j, rng.NormFloat64()})
		}
	}
	return FromCoords(n, n, entries)
}

func TestFromCoordsBasics(t *testing.T) {
	a := testMatrix()
	if a.Rows != 4 || a.Cols != 4 || a.NNZ() != 10 {
		t.Fatalf("shape %dx%d nnz %d", a.Rows, a.Cols, a.NNZ())
	}
	if a.At(0, 0) != 2 || a.At(1, 2) != -1 || a.At(0, 3) != 0 {
		t.Fatal("At values wrong")
	}
	cols, vals := a.Row(1)
	if len(cols) != 3 || cols[0] != 0 || cols[1] != 1 || cols[2] != 2 {
		t.Fatalf("Row(1) cols = %v", cols)
	}
	if vals[1] != 2 {
		t.Fatalf("Row(1) vals = %v", vals)
	}
}

func TestFromCoordsSumsDuplicates(t *testing.T) {
	a := FromCoords(2, 2, []Coord{{0, 0, 1}, {0, 0, 2.5}, {1, 1, 1}})
	if a.NNZ() != 2 {
		t.Fatalf("nnz = %d, want duplicates merged", a.NNZ())
	}
	if a.At(0, 0) != 3.5 {
		t.Fatalf("summed value = %v", a.At(0, 0))
	}
}

func TestFromCoordsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromCoords(2, 2, []Coord{{2, 0, 1}})
}

func TestMulVec(t *testing.T) {
	a := testMatrix()
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	a.MulVec(y, x)
	want := []float64{0, 0, 0, 5}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-15 {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestMulVecLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	a := randCSR(rng, 200, 5)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x1 := make([]float64, 200)
		x2 := make([]float64, 200)
		for i := range x1 {
			x1[i] = r.NormFloat64()
			x2[i] = r.NormFloat64()
		}
		alpha := r.NormFloat64()
		// A(x1 + alpha x2) == A x1 + alpha A x2
		sum := make([]float64, 200)
		for i := range sum {
			sum[i] = x1[i] + alpha*x2[i]
		}
		y1 := make([]float64, 200)
		y2 := make([]float64, 200)
		ys := make([]float64, 200)
		a.MulVec(y1, x1)
		a.MulVec(y2, x2)
		a.MulVec(ys, sum)
		for i := range ys {
			want := y1[i] + alpha*y2[i]
			if math.Abs(ys[i]-want) > 1e-10*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	a := randCSR(rng, 50, 4)
	at := a.Transpose()
	for i := 0; i < 50; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if at.At(j, i) != vals[k] {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if at.NNZ() != a.NNZ() {
		t.Fatal("transpose changed nnz")
	}
	// (A')' == A
	att := at.Transpose()
	for i := 0; i <= a.Rows; i++ {
		if att.RowPtr[i] != a.RowPtr[i] {
			t.Fatal("double transpose rowptr mismatch")
		}
	}
	for k := range a.Val {
		if att.ColIdx[k] != a.ColIdx[k] || att.Val[k] != a.Val[k] {
			t.Fatal("double transpose entries mismatch")
		}
	}
}

func TestTransposeMulVec(t *testing.T) {
	// y'Ax == x'A'y for random vectors (adjoint identity).
	rng := rand.New(rand.NewSource(52))
	a := randCSR(rng, 80, 6)
	at := a.Transpose()
	x := make([]float64, 80)
	y := make([]float64, 80)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	ax := make([]float64, 80)
	aty := make([]float64, 80)
	a.MulVec(ax, x)
	at.MulVec(aty, y)
	var lhs, rhs float64
	for i := range x {
		lhs += y[i] * ax[i]
		rhs += x[i] * aty[i]
	}
	if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestExtractRows(t *testing.T) {
	a := testMatrix()
	s := a.ExtractRows([]int{2, 0})
	if s.Rows != 2 || s.Cols != 4 {
		t.Fatalf("shape %dx%d", s.Rows, s.Cols)
	}
	if s.At(0, 1) != -1 || s.At(0, 2) != 2 || s.At(0, 3) != -1 {
		t.Fatal("row 0 should be old row 2")
	}
	if s.At(1, 0) != 2 || s.At(1, 1) != -1 {
		t.Fatal("row 1 should be old row 0")
	}
	empty := a.ExtractRows(nil)
	if empty.Rows != 0 || empty.NNZ() != 0 {
		t.Fatal("empty extraction")
	}
}

func TestRelabelCols(t *testing.T) {
	a := FromCoords(2, 4, []Coord{{0, 3, 1}, {0, 1, 2}, {1, 2, 3}})
	// keep only columns {1,2,3} -> {0,1,2}
	m := []int{-1, 0, 1, 2}
	a.RelabelCols(m, 3)
	if a.Cols != 3 {
		t.Fatalf("cols = %d", a.Cols)
	}
	if a.At(0, 2) != 1 || a.At(0, 0) != 2 || a.At(1, 1) != 3 {
		t.Fatal("relabel values wrong")
	}
	// rows re-sorted ascending
	cols, _ := a.Row(0)
	if cols[0] != 0 || cols[1] != 2 {
		t.Fatalf("row not sorted: %v", cols)
	}
}

func TestRelabelColsIncompletePanics(t *testing.T) {
	a := FromCoords(1, 2, []Coord{{0, 1, 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.RelabelCols([]int{0, -1}, 1)
}

func TestPermuteIdentity(t *testing.T) {
	a := testMatrix()
	p := a.Permute([]int{0, 1, 2, 3})
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if p.At(i, j) != a.At(i, j) {
				t.Fatal("identity permutation changed matrix")
			}
		}
	}
}

func TestPermuteReversal(t *testing.T) {
	a := testMatrix()
	perm := []int{3, 2, 1, 0}
	p := a.Permute(perm)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if p.At(i, j) != a.At(perm[i], perm[j]) {
				t.Fatalf("permute mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestPermutePreservesSpMV(t *testing.T) {
	// (PAP')(Px) == P(Ax): SpMV commutes with symmetric permutation.
	rng := rand.New(rand.NewSource(53))
	n := 60
	a := randCSR(rng, n, 4)
	perm := rng.Perm(n)
	p := a.Permute(perm)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	px := make([]float64, n)
	for newIdx, old := range perm {
		px[newIdx] = x[old]
	}
	ax := make([]float64, n)
	a.MulVec(ax, x)
	pax := make([]float64, n)
	p.MulVec(pax, px)
	for newIdx, old := range perm {
		if math.Abs(pax[newIdx]-ax[old]) > 1e-12*(1+math.Abs(ax[old])) {
			t.Fatal("permutation does not commute with SpMV")
		}
	}
}

func TestMaxRowNNZ(t *testing.T) {
	a := testMatrix()
	if got := a.MaxRowNNZ(); got != 3 {
		t.Fatalf("MaxRowNNZ = %d", got)
	}
	if got := NewCSR(3, 3, 0).MaxRowNNZ(); got != 0 {
		t.Fatalf("empty MaxRowNNZ = %d", got)
	}
}

func TestClone(t *testing.T) {
	a := testMatrix()
	c := a.Clone()
	c.Val[0] = 99
	if a.Val[0] == 99 {
		t.Fatal("Clone aliases")
	}
}

func TestMulVecSub(t *testing.T) {
	a := testMatrix()
	x := []float64{1, 2, 3, 4}
	full := make([]float64, 4)
	a.MulVec(full, x)
	part := make([]float64, 2)
	a.MulVecSub(part, x, 1, 3)
	if part[0] != full[1] || part[1] != full[2] {
		t.Fatalf("MulVecSub = %v, want %v", part, full[1:3])
	}
}
