// Package sparse implements the sparse-matrix substrate of the CA-GMRES
// reproduction: CSR and ELLPACK storage, sparse matrix-vector products
// (the paper uses CSR on the CPU and ELLPACK on the GPUs), coordinate
// assembly, row/column balancing, permutation, submatrix extraction by row
// sets (the building block of the matrix powers kernel), and MatrixMarket
// I/O for interoperability with the University of Florida collection.
package sparse

import (
	"fmt"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row format. RowPtr has
// length Rows+1; the column indices and values of row i occupy
// ColIdx[RowPtr[i]:RowPtr[i+1]] and Val[RowPtr[i]:RowPtr[i+1]].
// Column indices within each row are kept sorted ascending.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Val) }

// NewCSR allocates an empty matrix with the given shape and capacity.
func NewCSR(rows, cols, nnzCap int) *CSR {
	return &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int, rows+1),
		ColIdx: make([]int, 0, nnzCap),
		Val:    make([]float64, 0, nnzCap),
	}
}

// Coord is a coordinate-format entry used during assembly.
type Coord struct {
	Row, Col int
	Val      float64
}

// FromCoords assembles a CSR matrix from coordinate entries. Duplicate
// (row, col) pairs are summed, the FEM assembly convention. Entries with
// value exactly zero after summation are retained (they still shape the
// sparsity graph, matching the behaviour of file-based matrices).
func FromCoords(rows, cols int, entries []Coord) *CSR {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic(fmt.Sprintf("sparse: coordinate (%d,%d) out of %dx%d", e.Row, e.Col, rows, cols))
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Row != entries[j].Row {
			return entries[i].Row < entries[j].Row
		}
		return entries[i].Col < entries[j].Col
	})
	a := NewCSR(rows, cols, len(entries))
	for i := 0; i < len(entries); {
		j := i + 1
		v := entries[i].Val
		for j < len(entries) && entries[j].Row == entries[i].Row && entries[j].Col == entries[i].Col {
			v += entries[j].Val
			j++
		}
		a.ColIdx = append(a.ColIdx, entries[i].Col)
		a.Val = append(a.Val, v)
		a.RowPtr[entries[i].Row+1]++
		i = j
	}
	for i := 0; i < rows; i++ {
		a.RowPtr[i+1] += a.RowPtr[i]
	}
	return a
}

// At returns the (i, j) element (zero if not stored). Binary search over
// the sorted row keeps this O(log nnz(row)); it is a convenience for tests
// and small inspections, not a kernel.
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	idx := sort.SearchInts(a.ColIdx[lo:hi], j) + lo
	if idx < hi && a.ColIdx[idx] == j {
		return a.Val[idx]
	}
	return 0
}

// Row returns the column indices and values of row i as views.
func (a *CSR) Row(i int) ([]int, []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColIdx[lo:hi], a.Val[lo:hi]
}

// MulVec computes y := A x. Lengths must match the matrix shape.
func (a *CSR) MulVec(y, x []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: MulVec shape mismatch A=%dx%d x=%d y=%d", a.Rows, a.Cols, len(x), len(y)))
	}
	for i := 0; i < a.Rows; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.ColIdx[k]]
		}
		y[i] = s
	}
}

// MulVecSub computes y := A x restricted to rows [r0, r1), writing into
// y[0:r1-r0]. Used by row-partitioned parallel SpMV.
func (a *CSR) MulVecSub(y, x []float64, r0, r1 int) {
	for i := r0; i < r1; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.ColIdx[k]]
		}
		y[i-r0] = s
	}
}

// Transpose returns A' in CSR form.
func (a *CSR) Transpose() *CSR {
	t := NewCSR(a.Cols, a.Rows, a.NNZ())
	counts := make([]int, a.Cols+1)
	for _, c := range a.ColIdx {
		counts[c+1]++
	}
	for i := 0; i < a.Cols; i++ {
		counts[i+1] += counts[i]
	}
	copy(t.RowPtr, counts)
	t.ColIdx = make([]int, a.NNZ())
	t.Val = make([]float64, a.NNZ())
	next := make([]int, a.Cols)
	copy(next, counts[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := a.ColIdx[k]
			p := next[c]
			t.ColIdx[p] = i
			t.Val[p] = a.Val[k]
			next[c]++
		}
	}
	return t
}

// Clone returns a deep copy.
func (a *CSR) Clone() *CSR {
	c := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: append([]int(nil), a.ColIdx...),
		Val:    append([]float64(nil), a.Val...),
	}
	return c
}

// ExtractRows returns the submatrix A(rows, :) — the rows listed in the
// index set, in that order, with the full column dimension. This is the
// operation that builds the boundary submatrices A(delta^(d,k), :) of the
// matrix powers kernel.
func (a *CSR) ExtractRows(rows []int) *CSR {
	nnz := 0
	for _, i := range rows {
		nnz += a.RowPtr[i+1] - a.RowPtr[i]
	}
	s := NewCSR(len(rows), a.Cols, nnz)
	for out, i := range rows {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		s.ColIdx = append(s.ColIdx, a.ColIdx[lo:hi]...)
		s.Val = append(s.Val, a.Val[lo:hi]...)
		s.RowPtr[out+1] = s.RowPtr[out] + (hi - lo)
	}
	return s
}

// RelabelCols rewrites every stored column index through the map newOf
// (newOf[old] = new) and sets the new column dimension. Indices mapping to
// -1 are an error: the caller must supply a complete map for the stored
// pattern. Rows are re-sorted by the new indices.
func (a *CSR) RelabelCols(newOf []int, newCols int) {
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			nc := newOf[a.ColIdx[k]]
			if nc < 0 || nc >= newCols {
				panic(fmt.Sprintf("sparse: RelabelCols incomplete map for column %d", a.ColIdx[k]))
			}
			a.ColIdx[k] = nc
		}
		sortRow(a.ColIdx[lo:hi], a.Val[lo:hi])
	}
	a.Cols = newCols
}

// Permute returns P A P' for the permutation perm, where perm[new] = old:
// row/column new of the result is row/column perm[new] of A. Applying the
// orderings produced by the graph package (RCM, partition orderings) is
// exactly this symmetric permutation.
func (a *CSR) Permute(perm []int) *CSR {
	n := a.Rows
	if len(perm) != n || a.Cols != n {
		panic("sparse: Permute needs a square matrix and a full permutation")
	}
	inv := make([]int, n)
	for newIdx, old := range perm {
		inv[old] = newIdx
	}
	p := NewCSR(n, n, a.NNZ())
	for newRow := 0; newRow < n; newRow++ {
		old := perm[newRow]
		lo, hi := a.RowPtr[old], a.RowPtr[old+1]
		start := len(p.ColIdx)
		for k := lo; k < hi; k++ {
			p.ColIdx = append(p.ColIdx, inv[a.ColIdx[k]])
			p.Val = append(p.Val, a.Val[k])
		}
		sortRow(p.ColIdx[start:], p.Val[start:])
		p.RowPtr[newRow+1] = len(p.ColIdx)
	}
	return p
}

// sortRow sorts a row's (colidx, val) pairs by column index.
func sortRow(cols []int, vals []float64) {
	if sort.IntsAreSorted(cols) {
		return
	}
	idx := make([]int, len(cols))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cols[idx[a]] < cols[idx[b]] })
	c2 := append([]int(nil), cols...)
	v2 := append([]float64(nil), vals...)
	for i, k := range idx {
		cols[i] = c2[k]
		vals[i] = v2[k]
	}
}

// MaxRowNNZ returns the largest row length, the ELLPACK width.
func (a *CSR) MaxRowNNZ() int {
	m := 0
	for i := 0; i < a.Rows; i++ {
		if l := a.RowPtr[i+1] - a.RowPtr[i]; l > m {
			m = l
		}
	}
	return m
}
