package sparse

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the sparse kernels: CSR vs ELLPACK SpMV (the
// paper's CPU vs GPU formats) and the conversion/permutation machinery.

func benchCSR(n, deg int) *CSR {
	rng := rand.New(rand.NewSource(1))
	return randCSR(rng, n, deg)
}

func BenchmarkCSRSpMV(b *testing.B) {
	a := benchCSR(1<<16, 8)
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = 1 / float64(i+1)
	}
	b.SetBytes(int64(a.NNZ() * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(y, x)
	}
}

func BenchmarkCSRSpMVParallel(b *testing.B) {
	a := benchCSR(1<<16, 8)
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = 1 / float64(i+1)
	}
	b.SetBytes(int64(a.NNZ() * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVecParallel(y, x)
	}
}

func BenchmarkELLSpMV(b *testing.B) {
	a := benchCSR(1<<16, 8)
	e := ToELL(a)
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = 1 / float64(i+1)
	}
	b.SetBytes(int64(a.NNZ() * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MulVec(y, x)
	}
}

func BenchmarkToELL(b *testing.B) {
	a := benchCSR(1<<14, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ToELL(a)
	}
}

func BenchmarkPermute(b *testing.B) {
	a := benchCSR(1<<14, 8)
	rng := rand.New(rand.NewSource(2))
	perm := rng.Perm(a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Permute(perm)
	}
}

func BenchmarkBalance(b *testing.B) {
	a := benchCSR(1<<14, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := a.Clone()
		b.StartTimer()
		Balance(c)
	}
}
