package sparse

import "fmt"

// ELL is the ELLPACK sparse format the paper uses on the GPUs: every row
// stores exactly Width (column, value) slots, padded with a sentinel
// column of -1 and zero value. The format is laid out column-major across
// slots (slot-major): slot k of all rows is contiguous, matching the
// coalesced-access layout GPU SpMV kernels want and giving regular,
// vectorizable inner loops on CPUs.
type ELL struct {
	Rows, Cols int
	Width      int
	// ColIdx and Val have length Rows*Width; entry (row i, slot k) lives
	// at k*Rows + i.
	ColIdx []int32
	Val    []float64
}

// ToELL converts a CSR matrix to ELLPACK. The padding overhead is
// (Width*Rows - nnz) slots; for the banded FEM matrices of the paper the
// overhead is small, for power-law rows it can be large — PadRatio reports
// it so benchmarks can show the trade-off.
func ToELL(a *CSR) *ELL {
	w := a.MaxRowNNZ()
	e := &ELL{
		Rows:   a.Rows,
		Cols:   a.Cols,
		Width:  w,
		ColIdx: make([]int32, a.Rows*w),
		Val:    make([]float64, a.Rows*w),
	}
	for i := range e.ColIdx {
		e.ColIdx[i] = -1
	}
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			slot := k - lo
			e.ColIdx[slot*a.Rows+i] = int32(a.ColIdx[k])
			e.Val[slot*a.Rows+i] = a.Val[k]
		}
	}
	return e
}

// ToCSR converts back to CSR, dropping padding.
func (e *ELL) ToCSR() *CSR {
	a := NewCSR(e.Rows, e.Cols, e.NNZ())
	for i := 0; i < e.Rows; i++ {
		for k := 0; k < e.Width; k++ {
			c := e.ColIdx[k*e.Rows+i]
			if c < 0 {
				continue
			}
			a.ColIdx = append(a.ColIdx, int(c))
			a.Val = append(a.Val, e.Val[k*e.Rows+i])
		}
		a.RowPtr[i+1] = len(a.ColIdx)
		sortRow(a.ColIdx[a.RowPtr[i]:], a.Val[a.RowPtr[i]:])
	}
	return a
}

// NNZ returns the number of non-padding entries.
func (e *ELL) NNZ() int {
	n := 0
	for _, c := range e.ColIdx {
		if c >= 0 {
			n++
		}
	}
	return n
}

// PadRatio returns (stored slots) / nnz, a measure of ELLPACK padding
// waste; 1.0 means no padding.
func (e *ELL) PadRatio() float64 {
	nnz := e.NNZ()
	if nnz == 0 {
		return 1
	}
	return float64(e.Rows*e.Width) / float64(nnz)
}

// MulVecPrefix computes y[0:rows] := (A x)[0:rows] for the leading rows
// of the matrix — the per-step kernel of the matrix powers kernel, where
// step k multiplies only the rows within distance s-k of the owned set
// (a prefix, because extended rows are sorted by distance).
func (e *ELL) MulVecPrefix(y, x []float64, rows int) {
	if rows > e.Rows || len(y) < rows {
		panic(fmt.Sprintf("sparse: MulVecPrefix rows=%d of %d, len(y)=%d", rows, e.Rows, len(y)))
	}
	for i := 0; i < rows; i++ {
		y[i] = 0
	}
	for k := 0; k < e.Width; k++ {
		cols := e.ColIdx[k*e.Rows : k*e.Rows+rows]
		vals := e.Val[k*e.Rows : k*e.Rows+rows]
		for i := 0; i < rows; i++ {
			c := cols[i]
			if c < 0 {
				continue
			}
			y[i] += vals[i] * x[c]
		}
	}
}

// MulVec computes y := A x in the slot-major order: the outer loop walks
// slots so each pass reads a contiguous stripe of ColIdx/Val, the access
// pattern that coalesces on GPUs.
func (e *ELL) MulVec(y, x []float64) {
	if len(x) != e.Cols || len(y) != e.Rows {
		panic(fmt.Sprintf("sparse: ELL MulVec shape mismatch A=%dx%d x=%d y=%d", e.Rows, e.Cols, len(x), len(y)))
	}
	for i := range y {
		y[i] = 0
	}
	for k := 0; k < e.Width; k++ {
		cols := e.ColIdx[k*e.Rows : (k+1)*e.Rows]
		vals := e.Val[k*e.Rows : (k+1)*e.Rows]
		for i := 0; i < e.Rows; i++ {
			c := cols[i]
			if c < 0 {
				continue
			}
			y[i] += vals[i] * x[c]
		}
	}
}
