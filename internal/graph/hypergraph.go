package graph

import (
	"math/rand"

	"cagmres/internal/sparse"
)

// Hypergraph partitioning — the alternative the paper's conclusion
// singles out ("we also plan to study other partitioning algorithms
// (e.g., hypergraph partitioning)"). For a block-row distribution the
// natural column-net model applies: every matrix column j induces a net
// (hyperedge) containing the owners of the rows with a nonzero in column
// j. A net spanning lambda parts forces its column's vector entry to be
// shipped to lambda-1 extra devices, so the connectivity-minus-one metric
//
//	sum_over_nets (lambda(net) - 1)
//
// counts the SpMV communication volume EXACTLY, where the graph edge cut
// only approximates it (a vertex with many cut edges is double-counted by
// edge cut but shipped once in reality).
type Hypergraph struct {
	// Vertices are matrix rows; nets are matrix columns. NetPtr/NetVert
	// store, per net, the vertices (rows) whose row has a nonzero in
	// that column, in CSR-like layout.
	N       int // vertices (rows)
	Nets    int // nets (columns)
	NetPtr  []int
	NetVert []int
	// VertPtr/VertNet is the transpose: the nets touching each vertex.
	VertPtr []int
	VertNet []int
}

// ColumnNetHypergraph builds the column-net hypergraph of a square sparse
// matrix.
func ColumnNetHypergraph(a *sparse.CSR) *Hypergraph {
	n := a.Rows
	h := &Hypergraph{N: n, Nets: a.Cols}
	// Count vertices per net (nonzeros per column).
	counts := make([]int, a.Cols+1)
	for _, c := range a.ColIdx {
		counts[c+1]++
	}
	h.NetPtr = make([]int, a.Cols+1)
	for j := 0; j < a.Cols; j++ {
		h.NetPtr[j+1] = h.NetPtr[j] + counts[j+1]
	}
	h.NetVert = make([]int, a.NNZ())
	next := append([]int(nil), h.NetPtr[:a.Cols]...)
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := a.ColIdx[k]
			h.NetVert[next[c]] = i
			next[c]++
		}
	}
	// Transpose: nets per vertex (this is just the row pattern).
	h.VertPtr = append([]int(nil), a.RowPtr...)
	h.VertNet = append([]int(nil), a.ColIdx...)
	return h
}

// Connectivity returns the (lambda - 1) communication metric of a
// partition: the exact number of vector elements shipped between parts
// per SpMV.
func (h *Hypergraph) Connectivity(p *Partition) int {
	seen := make([]int, p.K)
	for i := range seen {
		seen[i] = -1
	}
	total := 0
	for net := 0; net < h.Nets; net++ {
		lambda := 0
		for k := h.NetPtr[net]; k < h.NetPtr[net+1]; k++ {
			d := p.Part[h.NetVert[k]]
			if seen[d] != net {
				seen[d] = net
				lambda++
			}
		}
		if lambda > 1 {
			total += lambda - 1
		}
	}
	return total
}

// PartitionHypergraph computes a k-way partition minimizing the
// connectivity-minus-one metric: greedy BFS-style growing (seeded like
// KWay) followed by FM-style single-vertex moves evaluated on the true
// hypergraph gain. It is slower per refinement pass than the graph
// partitioner but optimizes the quantity the distributed SpMV actually
// pays for.
func PartitionHypergraph(a *sparse.CSR, k int, seed int64) *Partition {
	g := FromMatrix(a)
	// Start from the graph partitioner's output: a good initial guess.
	p := KWay(g, k, seed)
	if k == 1 {
		return p
	}
	h := ColumnNetHypergraph(a)
	refineHypergraph(h, p, 4, seed)
	return p
}

// refineHypergraph performs passes of greedy moves that reduce the
// connectivity metric while respecting a 10% balance cap.
func refineHypergraph(h *Hypergraph, p *Partition, passes int, seed int64) {
	n := h.N
	k := p.K
	size := make([]int, k)
	for _, d := range p.Part {
		size[d]++
	}
	maxSize := (n*110)/(100*k) + 1
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(n)

	// pins[net][part] counts would be memory-hungry; recompute per-net
	// pin counts lazily for the nets touching a candidate vertex.
	pinCount := func(net, part int) int {
		c := 0
		for kk := h.NetPtr[net]; kk < h.NetPtr[net+1]; kk++ {
			if p.Part[h.NetVert[kk]] == part {
				c++
			}
		}
		return c
	}
	// moveGain computes the change in the connectivity metric if vertex
	// v moves from its home to part dst (positive = improvement).
	moveGain := func(v, dst int) int {
		home := p.Part[v]
		gain := 0
		for kk := h.VertPtr[v]; kk < h.VertPtr[v+1]; kk++ {
			net := h.VertNet[kk]
			homePins := pinCount(net, home)
			dstPins := pinCount(net, dst)
			// Leaving home: if v was the last home pin, lambda drops.
			if homePins == 1 {
				gain++
			}
			// Arriving at dst: if dst had no pins, lambda grows.
			if dstPins == 0 {
				gain--
			}
		}
		return gain
	}

	for pass := 0; pass < passes; pass++ {
		moved := 0
		for _, v := range order {
			home := p.Part[v]
			if size[home] <= 1 {
				continue
			}
			// Candidate destinations: parts of neighboring pins.
			cand := map[int]bool{}
			for kk := h.VertPtr[v]; kk < h.VertPtr[v+1]; kk++ {
				net := h.VertNet[kk]
				for nn := h.NetPtr[net]; nn < h.NetPtr[net+1]; nn++ {
					cand[p.Part[h.NetVert[nn]]] = true
				}
			}
			best, bestGain := home, 0
			for dst := range cand {
				if dst == home || size[dst] >= maxSize {
					continue
				}
				if g := moveGain(v, dst); g > bestGain {
					best, bestGain = dst, g
				}
			}
			if best != home {
				p.Part[v] = best
				size[home]--
				size[best]++
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
