package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cagmres/internal/sparse"
)

// path builds the adjacency matrix of a path graph 0-1-2-...-n-1.
func pathMatrix(n int) *sparse.CSR {
	entries := make([]sparse.Coord, 0, 3*n)
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{Row: i, Col: i, Val: 2})
		if i+1 < n {
			entries = append(entries, sparse.Coord{Row: i, Col: i + 1, Val: -1})
			entries = append(entries, sparse.Coord{Row: i + 1, Col: i, Val: -1})
		}
	}
	return sparse.FromCoords(n, n, entries)
}

// grid2D builds the 5-point Laplacian structure of an nx x ny grid.
func grid2D(nx, ny int) *sparse.CSR {
	n := nx * ny
	id := func(x, y int) int { return y*nx + x }
	entries := make([]sparse.Coord, 0, 5*n)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			entries = append(entries, sparse.Coord{Row: i, Col: i, Val: 4})
			if x > 0 {
				entries = append(entries, sparse.Coord{Row: i, Col: id(x-1, y), Val: -1})
			}
			if x+1 < nx {
				entries = append(entries, sparse.Coord{Row: i, Col: id(x+1, y), Val: -1})
			}
			if y > 0 {
				entries = append(entries, sparse.Coord{Row: i, Col: id(x, y-1), Val: -1})
			}
			if y+1 < ny {
				entries = append(entries, sparse.Coord{Row: i, Col: id(x, y+1), Val: -1})
			}
		}
	}
	return sparse.FromCoords(n, n, entries)
}

func TestFromMatrixPath(t *testing.T) {
	g := FromMatrix(pathMatrix(5))
	if g.N != 5 || g.NumEdges() != 4 {
		t.Fatalf("N=%d edges=%d", g.N, g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatal("degrees wrong")
	}
	nb := g.Neighbors(2)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 3 {
		t.Fatalf("Neighbors(2) = %v", nb)
	}
}

func TestFromMatrixSymmetrizes(t *testing.T) {
	// Nonsymmetric structure: edge stored only one way must still appear.
	a := sparse.FromCoords(3, 3, []sparse.Coord{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 2, Val: 5}, {Row: 1, Col: 1, Val: 1}, {Row: 2, Col: 2, Val: 1},
	})
	g := FromMatrix(a)
	if g.Degree(2) != 1 || g.Neighbors(2)[0] != 0 {
		t.Fatal("symmetrization failed")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestFromMatrixDropsDuplicateEdges(t *testing.T) {
	// Both a_01 and a_10 stored: only one undirected edge.
	a := sparse.FromCoords(2, 2, []sparse.Coord{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 2},
	})
	g := FromMatrix(a)
	if g.NumEdges() != 1 || g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("edges=%d deg0=%d", g.NumEdges(), g.Degree(0))
	}
}

func TestBFSLevelsPath(t *testing.T) {
	g := FromMatrix(pathMatrix(6))
	level, nl := g.BFSLevels(0)
	if nl != 6 {
		t.Fatalf("nlevels = %d", nl)
	}
	for i := 0; i < 6; i++ {
		if level[i] != i {
			t.Fatalf("level[%d] = %d", i, level[i])
		}
	}
	// Multi-root BFS from both ends meets in the middle.
	level, nl = g.BFSLevels(0, 5)
	if nl != 3 {
		t.Fatalf("two-root nlevels = %d", nl)
	}
	if level[2] != 2 || level[3] != 2 {
		t.Fatalf("levels %v", level)
	}
}

func TestBFSUnreachable(t *testing.T) {
	// Two disconnected vertices.
	a := sparse.FromCoords(2, 2, []sparse.Coord{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}})
	g := FromMatrix(a)
	level, _ := g.BFSLevels(0)
	if level[1] != -1 {
		t.Fatal("unreachable vertex should be -1")
	}
}

func TestPseudoPeripheralPath(t *testing.T) {
	g := FromMatrix(pathMatrix(9))
	pp := g.PseudoPeripheral(4)
	if pp != 0 && pp != 8 {
		t.Fatalf("pseudo-peripheral = %d, want an endpoint", pp)
	}
}

func TestComponents(t *testing.T) {
	a := sparse.FromCoords(4, 4, []sparse.Coord{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 2, Col: 3, Val: 1}, {Row: 3, Col: 2, Val: 1},
	})
	g := FromMatrix(a)
	comp, nc := g.Components()
	if nc != 2 {
		t.Fatalf("nc = %d", nc)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Fatalf("comp = %v", comp)
	}
}

func TestRCMIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		entries := make([]sparse.Coord, 0, n*4)
		for i := 0; i < n; i++ {
			entries = append(entries, sparse.Coord{Row: i, Col: i, Val: 1})
			for d := 0; d < 3; d++ {
				j := rng.Intn(n)
				entries = append(entries, sparse.Coord{Row: i, Col: j, Val: 1})
			}
		}
		g := FromMatrix(sparse.FromCoords(n, n, entries))
		return IsPermutation(RCM(g), n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRCMReducesGridBandwidth(t *testing.T) {
	// A shuffled 2D grid has terrible bandwidth; RCM must restore
	// something close to the grid's natural bandwidth (nx).
	nx, ny := 12, 12
	a := grid2D(nx, ny)
	rng := rand.New(rand.NewSource(7))
	shuffle := rng.Perm(nx * ny)
	shuffled := a.Permute(shuffle)
	g := FromMatrix(shuffled)
	before := Bandwidth(g)
	perm := RCM(g)
	after := PermutedBandwidth(g, perm)
	if after >= before {
		t.Fatalf("RCM did not reduce bandwidth: %d -> %d", before, after)
	}
	if after > 3*nx {
		t.Fatalf("RCM bandwidth %d too large for %dx%d grid", after, nx, ny)
	}
}

func TestRCMHandlesDisconnected(t *testing.T) {
	a := sparse.FromCoords(4, 4, []sparse.Coord{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 2, Col: 2, Val: 1}, {Row: 3, Col: 3, Val: 1},
	})
	g := FromMatrix(a)
	perm := RCM(g)
	if !IsPermutation(perm, 4) {
		t.Fatalf("perm = %v", perm)
	}
}

func TestBandwidthPath(t *testing.T) {
	g := FromMatrix(pathMatrix(10))
	if bw := Bandwidth(g); bw != 1 {
		t.Fatalf("path bandwidth = %d", bw)
	}
}
