package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cagmres/internal/sparse"
)

func TestNaturalPartition(t *testing.T) {
	p := Natural(10, 3)
	sizes := p.Sizes()
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	// contiguity
	for i := 1; i < 10; i++ {
		if p.Part[i] < p.Part[i-1] {
			t.Fatal("natural partition not contiguous")
		}
	}
}

func TestKWayCoversAndBalances(t *testing.T) {
	a := grid2D(20, 20)
	g := FromMatrix(a)
	for _, k := range []int{2, 3, 4, 7} {
		p := KWay(g, k, 1)
		if p.K != k || len(p.Part) != g.N {
			t.Fatalf("k=%d: bad shape", k)
		}
		sizes := p.Sizes()
		for d, s := range sizes {
			if s == 0 {
				t.Fatalf("k=%d: part %d empty", k, d)
			}
		}
		if imb := p.Imbalance(); imb > 1.25 {
			t.Fatalf("k=%d: imbalance %v", k, imb)
		}
	}
}

func TestKWayBeatsRandomCut(t *testing.T) {
	// On a grid, the k-way partitioner must produce a dramatically
	// smaller edge cut than a random assignment.
	a := grid2D(30, 30)
	g := FromMatrix(a)
	k := 3
	p := KWay(g, k, 42)
	cut := EdgeCut(g, p)

	rng := rand.New(rand.NewSource(99))
	randP := &Partition{K: k, Part: make([]int, g.N)}
	for i := range randP.Part {
		randP.Part[i] = rng.Intn(k)
	}
	randCut := EdgeCut(g, randP)
	if cut*4 > randCut {
		t.Fatalf("KWay cut %d not clearly better than random %d", cut, randCut)
	}
	// A 30x30 grid split into 3 slabs has cut ~30-60; allow slack but
	// require the same order of magnitude.
	if cut > 200 {
		t.Fatalf("KWay cut %d too large for a 30x30 grid", cut)
	}
}

func TestKWaySinglePart(t *testing.T) {
	g := FromMatrix(grid2D(5, 5))
	p := KWay(g, 1, 0)
	for _, d := range p.Part {
		if d != 0 {
			t.Fatal("k=1 must place everything in part 0")
		}
	}
	if EdgeCut(g, p) != 0 {
		t.Fatal("k=1 cut must be 0")
	}
}

func TestKWayDisconnected(t *testing.T) {
	// Two disjoint grids; partitioner must still cover everything.
	nx, ny := 6, 6
	a := grid2D(nx, ny)
	n := nx * ny
	entries := make([]sparse.Coord, 0)
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			entries = append(entries, sparse.Coord{Row: i, Col: j, Val: vals[k]})
			entries = append(entries, sparse.Coord{Row: i + n, Col: j + n, Val: vals[k]})
		}
	}
	g := FromMatrix(sparse.FromCoords(2*n, 2*n, entries))
	p := KWay(g, 3, 5)
	sizes := p.Sizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 2*n {
		t.Fatalf("sizes %v do not cover %d vertices", sizes, 2*n)
	}
}

func TestRecursiveBisection(t *testing.T) {
	g := FromMatrix(grid2D(16, 16))
	for _, k := range []int{2, 3, 4} {
		p := RecursiveBisection(g, k, 3)
		sizes := p.Sizes()
		for d, s := range sizes {
			if s == 0 {
				t.Fatalf("k=%d: part %d empty", k, d)
			}
		}
		if imb := p.Imbalance(); imb > 1.4 {
			t.Fatalf("k=%d: imbalance %v", k, imb)
		}
	}
}

func TestPartitionOrder(t *testing.T) {
	p := &Partition{K: 2, Part: []int{1, 0, 1, 0, 0}}
	perm, bounds := p.Order()
	if !IsPermutation(perm, 5) {
		t.Fatalf("perm = %v", perm)
	}
	if bounds[0] != 0 || bounds[1] != 3 || bounds[2] != 5 {
		t.Fatalf("bounds = %v", bounds)
	}
	// first 3 entries are part-0 vertices in order
	want := []int{1, 3, 4, 0, 2}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
}

func TestPartitionOrderQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		k := 1 + rng.Intn(4)
		p := &Partition{K: k, Part: make([]int, n)}
		for i := range p.Part {
			p.Part[i] = rng.Intn(k)
		}
		perm, bounds := p.Order()
		if !IsPermutation(perm, n) {
			return false
		}
		// every vertex inside bounds[d]:bounds[d+1] belongs to part d
		for d := 0; d < k; d++ {
			for i := bounds[d]; i < bounds[d+1]; i++ {
				if p.Part[perm[i]] != d {
					return false
				}
			}
		}
		return bounds[k] == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeCutPath(t *testing.T) {
	g := FromMatrix(pathMatrix(10))
	p := Natural(10, 2)
	if cut := EdgeCut(g, p); cut != 1 {
		t.Fatalf("path cut = %d, want 1", cut)
	}
}

func TestImbalancePerfect(t *testing.T) {
	p := Natural(9, 3)
	if imb := p.Imbalance(); imb != 1 {
		t.Fatalf("imbalance = %v", imb)
	}
}
