package graph

import (
	"math/rand"
	"testing"

	"cagmres/internal/sparse"
)

func TestColumnNetHypergraphStructure(t *testing.T) {
	// 3x3 matrix: column 0 touched by rows {0,1}, column 1 by {1},
	// column 2 by {0,2}.
	a := sparse.FromCoords(3, 3, []sparse.Coord{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 2, Val: 1},
		{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1},
		{Row: 2, Col: 2, Val: 1},
	})
	h := ColumnNetHypergraph(a)
	if h.N != 3 || h.Nets != 3 {
		t.Fatalf("shape %d/%d", h.N, h.Nets)
	}
	net0 := h.NetVert[h.NetPtr[0]:h.NetPtr[1]]
	if len(net0) != 2 || net0[0] != 0 || net0[1] != 1 {
		t.Fatalf("net 0 = %v", net0)
	}
	net1 := h.NetVert[h.NetPtr[1]:h.NetPtr[2]]
	if len(net1) != 1 || net1[0] != 1 {
		t.Fatalf("net 1 = %v", net1)
	}
	// Transpose is exactly the row pattern.
	if h.VertNet[h.VertPtr[2]] != 2 {
		t.Fatal("vertex-net transpose wrong")
	}
}

func TestConnectivityMetricExact(t *testing.T) {
	// Path matrix over 2 parts split in the middle: columns 4 and 5 (the
	// boundary columns of an n=10 tridiagonal split 5|5) each span both
	// parts -> metric 2. Matches the exact SpMV volume: each side ships
	// one element.
	a := pathMatrix(10)
	h := ColumnNetHypergraph(a)
	p := Natural(10, 2)
	if got := h.Connectivity(p); got != 2 {
		t.Fatalf("connectivity = %d, want 2", got)
	}
	// One part: no communication.
	if got := h.Connectivity(Natural(10, 1)); got != 0 {
		t.Fatalf("k=1 connectivity = %d", got)
	}
}

// exactSpMVVolume counts, for every part, the distinct remote columns its
// rows reference — the true number of vector elements a distributed SpMV
// must ship. This is the quantity the hypergraph connectivity metric is
// supposed to equal (and the graph edge cut only approximates).
func exactSpMVVolume(a *sparse.CSR, p *Partition) int {
	total := 0
	for d := 0; d < p.K; d++ {
		needed := map[int]bool{}
		for i := 0; i < a.Rows; i++ {
			if p.Part[i] != d {
				continue
			}
			cols, _ := a.Row(i)
			for _, j := range cols {
				if p.Part[j] != d {
					needed[j] = true
				}
			}
		}
		total += len(needed)
	}
	return total
}

func TestConnectivityEqualsExactVolume(t *testing.T) {
	// A star: center row couples with all leaves, leaves split across
	// two parts. The hypergraph metric equals the exact SpMV volume (6)
	// where the edge cut (5) does not — the known miscounting of the
	// graph model that motivates hypergraph partitioning.
	n := 10
	entries := []sparse.Coord{{Row: 0, Col: 0, Val: 1}}
	for i := 1; i < n; i++ {
		entries = append(entries,
			sparse.Coord{Row: 0, Col: i, Val: 1},
			sparse.Coord{Row: i, Col: 0, Val: 1},
			sparse.Coord{Row: i, Col: i, Val: 1})
	}
	a := sparse.FromCoords(n, n, entries)
	p := &Partition{K: 2, Part: make([]int, n)}
	for i := n / 2; i < n; i++ {
		p.Part[i] = 1
	}
	h := ColumnNetHypergraph(a)
	conn := h.Connectivity(p)
	if exact := exactSpMVVolume(a, p); conn != exact {
		t.Fatalf("connectivity %d != exact volume %d", conn, exact)
	}
	if cut := EdgeCut(FromMatrix(a), p); cut == conn {
		t.Fatalf("edge cut %d should miscount the star's volume %d", cut, conn)
	}
}

func TestConnectivityEqualsExactVolumeRandomized(t *testing.T) {
	// Property: on arbitrary matrices and partitions the metric equals
	// the exact volume.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(60)
		entries := make([]sparse.Coord, 0, n*4)
		for i := 0; i < n; i++ {
			entries = append(entries, sparse.Coord{Row: i, Col: i, Val: 1})
			for d := 0; d < 3; d++ {
				entries = append(entries, sparse.Coord{Row: i, Col: rng.Intn(n), Val: 1})
			}
		}
		a := sparse.FromCoords(n, n, entries)
		k := 2 + rng.Intn(3)
		p := &Partition{K: k, Part: make([]int, n)}
		for i := range p.Part {
			p.Part[i] = rng.Intn(k)
		}
		h := ColumnNetHypergraph(a)
		if got, want := h.Connectivity(p), exactSpMVVolume(a, p); got != want {
			t.Fatalf("trial %d: connectivity %d != exact %d", trial, got, want)
		}
	}
}

func TestPartitionHypergraphImprovesConnectivity(t *testing.T) {
	a := grid2D(24, 24)
	k := 3
	g := FromMatrix(a)
	graphPart := KWay(g, k, 7)
	h := ColumnNetHypergraph(a)
	before := h.Connectivity(graphPart)

	hp := PartitionHypergraph(a, k, 7)
	after := h.Connectivity(hp)
	if after > before {
		t.Fatalf("hypergraph refinement worsened connectivity: %d -> %d", before, after)
	}
	// Balance still respected.
	if imb := hp.Imbalance(); imb > 1.15 {
		t.Fatalf("imbalance %v", imb)
	}
	// Covers all vertices.
	sizes := hp.Sizes()
	total := 0
	for _, s := range sizes {
		if s == 0 {
			t.Fatal("empty part")
		}
		total += s
	}
	if total != a.Rows {
		t.Fatalf("cover %d of %d", total, a.Rows)
	}
}

func TestPartitionHypergraphBeatsRandom(t *testing.T) {
	a := grid2D(20, 20)
	h := ColumnNetHypergraph(a)
	hp := PartitionHypergraph(a, 3, 1)
	rng := rand.New(rand.NewSource(9))
	randP := &Partition{K: 3, Part: make([]int, a.Rows)}
	for i := range randP.Part {
		randP.Part[i] = rng.Intn(3)
	}
	if h.Connectivity(hp)*4 > h.Connectivity(randP) {
		t.Fatalf("hypergraph partition %d not clearly below random %d",
			h.Connectivity(hp), h.Connectivity(randP))
	}
}

func TestPartitionHypergraphSinglePart(t *testing.T) {
	a := grid2D(6, 6)
	p := PartitionHypergraph(a, 1, 0)
	for _, d := range p.Part {
		if d != 0 {
			t.Fatal("k=1 must be all part 0")
		}
	}
}
