// Package graph provides the combinatorial machinery of the reproduction:
// the adjacency-graph view of a sparse matrix, breadth-first searches,
// reverse Cuthill-McKee ordering (the paper uses HSL MC60), a k-way
// partitioner with boundary refinement standing in for METIS, and the
// s-level reachability sets that define the matrix powers kernel's
// boundary index sets delta^(d,k).
package graph

import (
	"fmt"
	"sort"

	"cagmres/internal/sparse"
)

// Graph is an undirected adjacency structure in CSR-like form. For a
// structurally nonsymmetric matrix the graph of A + A' is used, which is
// the dependency graph relevant to both reordering and the matrix powers
// kernel.
type Graph struct {
	N   int
	Ptr []int
	Adj []int
}

// FromMatrix builds the symmetrized adjacency graph of a square sparse
// matrix. Self-loops (diagonal entries) are dropped.
func FromMatrix(a *sparse.CSR) *Graph {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("graph: FromMatrix needs square matrix, got %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	// Count degree of the symmetrized structure. Use a two-pass counting
	// scheme over A and A' without materializing A'.
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j == i {
				continue
			}
			deg[i]++
			deg[j]++
		}
	}
	ptr := make([]int, n+1)
	for i := 0; i < n; i++ {
		ptr[i+1] = ptr[i] + deg[i]
	}
	adj := make([]int, ptr[n])
	next := make([]int, n)
	copy(next, ptr[:n])
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j == i {
				continue
			}
			adj[next[i]] = j
			next[i]++
			adj[next[j]] = i
			next[j]++
		}
	}
	g := &Graph{N: n, Ptr: ptr, Adj: adj}
	g.dedupe()
	return g
}

// dedupe sorts each adjacency list and removes duplicate edges (which
// arise when both a_ij and a_ji are stored).
func (g *Graph) dedupe() {
	newPtr := make([]int, g.N+1)
	newAdj := g.Adj[:0]
	write := 0
	start := 0
	for i := 0; i < g.N; i++ {
		end := g.Ptr[i+1]
		lst := g.Adj[start:end]
		sort.Ints(lst)
		rowStart := write
		for k, v := range lst {
			if k > 0 && lst[k-1] == v {
				continue
			}
			newAdj = newAdj[:write+1]
			newAdj[write] = v
			write++
		}
		start = end
		newPtr[i+1] = write
		_ = rowStart
	}
	g.Ptr = newPtr
	g.Adj = newAdj[:write]
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return g.Ptr[v+1] - g.Ptr[v] }

// Neighbors returns the adjacency list of v as a view.
func (g *Graph) Neighbors(v int) []int { return g.Adj[g.Ptr[v]:g.Ptr[v+1]] }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Adj) / 2 }

// BFSLevels runs a breadth-first search from the given roots and returns
// the level of every vertex (-1 if unreachable) plus the number of levels.
func (g *Graph) BFSLevels(roots ...int) (level []int, nlevels int) {
	level = make([]int, g.N)
	for i := range level {
		level[i] = -1
	}
	queue := make([]int, 0, g.N)
	for _, r := range roots {
		if level[r] == -1 {
			level[r] = 0
			queue = append(queue, r)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.Neighbors(v) {
			if level[w] == -1 {
				level[w] = level[v] + 1
				queue = append(queue, w)
			}
		}
	}
	for _, l := range level {
		if l+1 > nlevels {
			nlevels = l + 1
		}
	}
	return level, nlevels
}

// PseudoPeripheral finds an approximate peripheral vertex starting from
// start using the George-Liu iteration: repeatedly move to a
// minimum-degree vertex in the last BFS level until the eccentricity
// stops growing. Good RCM orderings start from such vertices.
func (g *Graph) PseudoPeripheral(start int) int {
	v := start
	level, nl := g.BFSLevels(v)
	for {
		// minimum-degree vertex in the last level
		best, bestDeg := -1, g.N+1
		for u := 0; u < g.N; u++ {
			if level[u] == nl-1 && g.Degree(u) < bestDeg {
				best, bestDeg = u, g.Degree(u)
			}
		}
		if best < 0 {
			return v
		}
		l2, nl2 := g.BFSLevels(best)
		if nl2 <= nl {
			return v
		}
		v, level, nl = best, l2, nl2
	}
}

// Components returns the connected components as a vertex->component map
// and the component count.
func (g *Graph) Components() ([]int, int) {
	comp := make([]int, g.N)
	for i := range comp {
		comp[i] = -1
	}
	nc := 0
	queue := make([]int, 0, g.N)
	for s := 0; s < g.N; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = nc
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Neighbors(v) {
				if comp[w] == -1 {
					comp[w] = nc
					queue = append(queue, w)
				}
			}
		}
		nc++
	}
	return comp, nc
}
