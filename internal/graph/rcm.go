package graph

import "sort"

// RCM computes the reverse Cuthill-McKee ordering of the graph. The
// returned slice perm satisfies perm[new] = old: relabeling the matrix
// with sparse.Permute(perm) concentrates nonzeros near the diagonal,
// which is what keeps the matrix powers kernel's boundary sets small for
// banded problems (the paper's "cant" case).
//
// Each connected component is ordered from a pseudo-peripheral start
// vertex; within a BFS level, vertices are visited in order of increasing
// degree (the Cuthill-McKee tie-break), and the whole ordering is
// reversed at the end.
func RCM(g *Graph) []int {
	perm := make([]int, 0, g.N)
	visited := make([]bool, g.N)
	// scratch for sorting neighbors by degree
	for s := 0; s < g.N; s++ {
		if visited[s] {
			continue
		}
		root := g.PseudoPeripheral(s)
		if visited[root] {
			root = s
		}
		visited[root] = true
		queue := []int{root}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			perm = append(perm, v)
			nbrs := make([]int, 0, g.Degree(v))
			for _, w := range g.Neighbors(v) {
				if !visited[w] {
					visited[w] = true
					nbrs = append(nbrs, w)
				}
			}
			sort.Slice(nbrs, func(a, b int) bool {
				da, db := g.Degree(nbrs[a]), g.Degree(nbrs[b])
				if da != db {
					return da < db
				}
				return nbrs[a] < nbrs[b]
			})
			queue = append(queue, nbrs...)
		}
	}
	// Reverse.
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// Bandwidth returns the half-bandwidth of the matrix structure under the
// identity ordering: max |i - j| over edges.
func Bandwidth(g *Graph) int {
	bw := 0
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			d := v - w
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// PermutedBandwidth returns the half-bandwidth after applying perm
// (perm[new] = old) without materializing the permuted graph.
func PermutedBandwidth(g *Graph, perm []int) int {
	inv := make([]int, g.N)
	for newIdx, old := range perm {
		inv[old] = newIdx
	}
	bw := 0
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			d := inv[v] - inv[w]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// IsPermutation reports whether perm is a valid permutation of 0..n-1.
func IsPermutation(perm []int, n int) bool {
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
