package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Partition assigns each vertex to one of K parts. It is the stand-in for
// METIS k-way partitioning in the paper's "KWY" configurations: the goal
// is to minimize the edge cut (which becomes inter-GPU communication
// volume) while balancing part sizes (which balances SpMV load).
type Partition struct {
	K    int
	Part []int // vertex -> part
}

// Natural returns the block partition of n vertices into k contiguous
// blocks of nearly equal size — the distribution used with the natural or
// RCM orderings, where each GPU simply takes an equal slab of rows.
func Natural(n, k int) *Partition {
	p := &Partition{K: k, Part: make([]int, n)}
	base, rem := n/k, n%k
	v := 0
	for d := 0; d < k; d++ {
		sz := base
		if d < rem {
			sz++
		}
		for i := 0; i < sz; i++ {
			p.Part[v] = d
			v++
		}
	}
	return p
}

// KWay computes a k-way partition by greedy graph growing from spread
// seeds followed by Fiduccia-Mattheyses-style boundary refinement. seed
// controls the deterministic pseudo-random tie-breaking.
func KWay(g *Graph, k int, seed int64) *Partition {
	if k < 1 {
		panic(fmt.Sprintf("graph: KWay with k=%d", k))
	}
	n := g.N
	p := &Partition{K: k, Part: make([]int, n)}
	if k == 1 || n == 0 {
		return p
	}
	rng := rand.New(rand.NewSource(seed))

	// --- Phase 1: greedy growing. Pick k seeds far apart (BFS sampling),
	// then grow all parts simultaneously, always extending the currently
	// smallest part from its frontier.
	for i := range p.Part {
		p.Part[i] = -1
	}
	seeds := spreadSeeds(g, k, rng)
	size := make([]int, k)
	frontiers := make([][]int, k) // FIFO queues
	heads := make([]int, k)
	for d, s := range seeds {
		p.Part[s] = d
		size[d] = 1
		frontiers[d] = append(frontiers[d], s)
	}
	assigned := k
	for assigned < n {
		// smallest growable part (FIFO growth keeps regions compact)
		d := -1
		for c := 0; c < k; c++ {
			if heads[c] >= len(frontiers[c]) {
				continue
			}
			if d == -1 || size[c] < size[d] {
				d = c
			}
		}
		if d == -1 {
			// all frontiers exhausted (disconnected leftovers): assign
			// remaining vertices to the smallest parts round-robin.
			for v := 0; v < n; v++ {
				if p.Part[v] != -1 {
					continue
				}
				dMin := 0
				for c := 1; c < k; c++ {
					if size[c] < size[dMin] {
						dMin = c
					}
				}
				p.Part[v] = dMin
				size[dMin]++
				frontiers[dMin] = append(frontiers[dMin], v)
				assigned++
			}
			continue
		}
		// claim one unassigned neighbor of the frontier head
		claimed := false
		for heads[d] < len(frontiers[d]) && !claimed {
			f := frontiers[d][heads[d]]
			for _, w := range g.Neighbors(f) {
				if p.Part[w] == -1 {
					p.Part[w] = d
					size[d]++
					assigned++
					frontiers[d] = append(frontiers[d], w)
					claimed = true
					break
				}
			}
			if !claimed {
				heads[d]++ // f exhausted
			}
		}
	}

	// --- Phase 2: boundary refinement. A few passes of greedy moves that
	// reduce the edge cut without violating a balance cap, preceded by a
	// forced rebalancing of any oversized part.
	balanceParts(g, p)
	refine(g, p, 8)
	return p
}

// spreadSeeds picks k seed vertices that are far apart: the first is a
// pseudo-peripheral vertex, each next seed maximizes its BFS distance to
// all previous seeds.
func spreadSeeds(g *Graph, k int, rng *rand.Rand) []int {
	n := g.N
	seeds := make([]int, 0, k)
	first := g.PseudoPeripheral(rng.Intn(n))
	seeds = append(seeds, first)
	for len(seeds) < k {
		level, _ := g.BFSLevels(seeds...)
		best, bestLvl := -1, -1
		for v := 0; v < n; v++ {
			if level[v] > bestLvl {
				best, bestLvl = v, level[v]
			}
		}
		if best < 0 || containsInt(seeds, best) {
			// graph smaller than k or disconnected remainder: fall back
			// to any unused vertex
			best = -1
			for v := 0; v < n; v++ {
				if !containsInt(seeds, v) {
					best = v
					break
				}
			}
			if best < 0 {
				best = rng.Intn(n)
			}
		}
		seeds = append(seeds, best)
	}
	return seeds
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// refine performs greedy boundary-vertex moves (an FM-lite heuristic):
// for each boundary vertex, compute the gain of moving it to the
// neighboring part with most connections; apply positive-gain moves that
// keep all part sizes within maxImb of the average. Passes repeat until
// no move applies or the pass budget is exhausted.
func refine(g *Graph, p *Partition, passes int) {
	n := g.N
	k := p.K
	size := make([]int, k)
	for _, d := range p.Part {
		size[d]++
	}
	maxSize := (n*105)/(100*k) + 1 // 5% imbalance cap
	minSize := n / (k * 2)         // never empty a part below half-average
	conn := make([]int, k)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < n; v++ {
			home := p.Part[v]
			if size[home] <= minSize {
				continue
			}
			// connections per part
			for c := range conn {
				conn[c] = 0
			}
			boundary := false
			for _, w := range g.Neighbors(v) {
				conn[p.Part[w]]++
				if p.Part[w] != home {
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			best, bestGain := home, 0
			for c := 0; c < k; c++ {
				if c == home || size[c] >= maxSize {
					continue
				}
				gain := conn[c] - conn[home]
				if gain > bestGain || (gain == bestGain && gain > 0 && size[c] < size[best]) {
					best, bestGain = c, gain
				}
			}
			if best != home && bestGain > 0 {
				p.Part[v] = best
				size[home]--
				size[best]++
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// balanceParts forcibly moves boundary vertices out of oversized parts
// into adjacent under-capacity parts until every part is within 5% of the
// average, preferring moves with the least cut damage. It is the
// balance-enforcement half of FM refinement.
func balanceParts(g *Graph, p *Partition) {
	n := g.N
	k := p.K
	size := make([]int, k)
	for _, d := range p.Part {
		size[d]++
	}
	maxSize := (n*105)/(100*k) + 1
	conn := make([]int, k)
	for iter := 0; iter < n; iter++ {
		// most oversized part
		over := -1
		for c := 0; c < k; c++ {
			if size[c] > maxSize && (over == -1 || size[c] > size[over]) {
				over = c
			}
		}
		if over == -1 {
			return
		}
		// best boundary vertex of `over` to evict: maximize
		// conn(dest) - conn(over) over destinations with room.
		bestV, bestD, bestGain := -1, -1, -(1 << 30)
		for v := 0; v < n; v++ {
			if p.Part[v] != over {
				continue
			}
			for c := range conn {
				conn[c] = 0
			}
			boundary := false
			for _, w := range g.Neighbors(v) {
				conn[p.Part[w]]++
				if p.Part[w] != over {
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			for c := 0; c < k; c++ {
				if c == over || size[c] >= maxSize || conn[c] == 0 {
					continue
				}
				gain := conn[c] - conn[over]
				if gain > bestGain || (gain == bestGain && bestD >= 0 && size[c] < size[bestD]) {
					bestV, bestD, bestGain = v, c, gain
				}
			}
		}
		if bestV == -1 {
			// no adjacent destination with room: move any boundary vertex
			// to the globally smallest part to guarantee progress.
			small := 0
			for c := 1; c < k; c++ {
				if size[c] < size[small] {
					small = c
				}
			}
			for v := 0; v < n && bestV == -1; v++ {
				if p.Part[v] == over {
					bestV, bestD = v, small
				}
			}
			if bestV == -1 {
				return
			}
		}
		p.Part[bestV] = bestD
		size[over]--
		size[bestD]++
	}
}

// RecursiveBisection partitions by recursively splitting the vertex set
// in half along BFS level structures. The paper notes k-way usually beats
// it; both are provided so that comparison can be reproduced.
func RecursiveBisection(g *Graph, k int, seed int64) *Partition {
	p := &Partition{K: k, Part: make([]int, g.N)}
	verts := make([]int, g.N)
	for i := range verts {
		verts[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	bisect(g, verts, 0, k, p, rng)
	refine(g, p, 4)
	return p
}

func bisect(g *Graph, verts []int, firstPart, nparts int, p *Partition, rng *rand.Rand) {
	if nparts == 1 {
		for _, v := range verts {
			p.Part[v] = firstPart
		}
		return
	}
	left := nparts / 2
	right := nparts - left
	wantLeft := len(verts) * left / nparts
	// BFS order restricted to verts from a pseudo-peripheral start.
	inSet := make(map[int]bool, len(verts))
	for _, v := range verts {
		inSet[v] = true
	}
	start := verts[rng.Intn(len(verts))]
	order := make([]int, 0, len(verts))
	seen := map[int]bool{start: true}
	queue := []int{start}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		order = append(order, v)
		for _, w := range g.Neighbors(v) {
			if inSet[w] && !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	// Disconnected leftovers appended in index order.
	if len(order) < len(verts) {
		rest := make([]int, 0, len(verts)-len(order))
		for _, v := range verts {
			if !seen[v] {
				rest = append(rest, v)
			}
		}
		sort.Ints(rest)
		order = append(order, rest...)
	}
	bisect(g, order[:wantLeft], firstPart, left, p, rng)
	bisect(g, order[wantLeft:], firstPart+left, right, p, rng)
}

// EdgeCut returns the number of graph edges whose endpoints lie in
// different parts — the communication proxy METIS minimizes.
func EdgeCut(g *Graph, p *Partition) int {
	cut := 0
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if w > v && p.Part[v] != p.Part[w] {
				cut++
			}
		}
	}
	return cut
}

// Imbalance returns max part size divided by the average part size.
func (p *Partition) Imbalance() float64 {
	if len(p.Part) == 0 {
		return 1
	}
	size := make([]int, p.K)
	for _, d := range p.Part {
		size[d]++
	}
	max := 0
	for _, s := range size {
		if s > max {
			max = s
		}
	}
	avg := float64(len(p.Part)) / float64(p.K)
	return float64(max) / avg
}

// Sizes returns the number of vertices in each part.
func (p *Partition) Sizes() []int {
	size := make([]int, p.K)
	for _, d := range p.Part {
		size[d]++
	}
	return size
}

// Order returns a permutation (perm[new] = old) that groups each part's
// vertices contiguously, preserving relative order inside a part, plus
// the resulting part boundaries (k+1 offsets). Applying this permutation
// to the matrix yields the block-row layout the distributed runtime
// wants: device d owns rows bounds[d]:bounds[d+1].
func (p *Partition) Order() (perm []int, bounds []int) {
	n := len(p.Part)
	perm = make([]int, 0, n)
	bounds = make([]int, p.K+1)
	for d := 0; d < p.K; d++ {
		for v := 0; v < n; v++ {
			if p.Part[v] == d {
				perm = append(perm, v)
			}
		}
		bounds[d+1] = len(perm)
	}
	return perm, bounds
}
