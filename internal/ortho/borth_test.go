package ortho

import (
	"math"
	"math/rand"
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/la"
)

// orthoPanel builds an orthonormal n x pc panel split over ng devices.
func orthoPanel(rng *rand.Rand, n, pc, ng int) []*la.Dense {
	q := la.HouseholderQR(randTall(rng, n, pc)).FormQ()
	return splitRows(q, ng)
}

func TestBOrthVariantsProject(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	n, pc, wc, ng := 240, 6, 4, 3
	for _, variant := range []BOrth{BOrthCGS{}, BOrthMGS{}} {
		ctx := gpu.NewContext(ng, gpu.M2090())
		p := orthoPanel(rng, n, pc, ng)
		wHost := randTall(rng, n, wc)
		w := splitRows(wHost.Clone(), ng)
		c := variant.Project(ctx, p, w, "borth")
		if c.Rows != pc || c.Cols != wc {
			t.Fatalf("%s: C shape %dx%d", variant.Name(), c.Rows, c.Cols)
		}
		// Result must be orthogonal to every column of P.
		pHost := joinRows(p)
		wNew := joinRows(w)
		for l := 0; l < pc; l++ {
			for j := 0; j < wc; j++ {
				d := la.Dot(pHost.Col(l), wNew.Col(j))
				if math.Abs(d) > 1e-10 {
					t.Fatalf("%s: residual projection %v at (%d,%d)", variant.Name(), d, l, j)
				}
			}
		}
		// C must be P' W_original.
		want := la.NewDense(pc, wc)
		la.GemmTN(1, pHost, wHost, 0, want)
		if !c.Equalish(want, 1e-10*(1+want.MaxAbs())) {
			t.Fatalf("%s: C mismatch", variant.Name())
		}
		// And W_new + P*C must reconstruct W_original.
		rec := wNew.Clone()
		la.GemmNN(1, pHost, c, 1, rec)
		if !rec.Equalish(wHost, 1e-10*(1+wHost.MaxAbs())) {
			t.Fatalf("%s: reconstruction failed", variant.Name())
		}
	}
}

func TestBOrthCommunicationCounts(t *testing.T) {
	// BOrth-CGS: 2 transfers regardless of the panel width.
	// BOrth-MGS: 2 transfers per previous column.
	rng := rand.New(rand.NewSource(201))
	n, pc, wc, ng := 150, 5, 3, 2

	ctx := gpu.NewContext(ng, gpu.M2090())
	p := orthoPanel(rng, n, pc, ng)
	w := splitRows(randTall(rng, n, wc), ng)
	ctx.ResetStats()
	BOrthCGS{}.Project(ctx, p, w, "borth")
	if got := ctx.Stats().Phase("borth").Rounds; got != 2 {
		t.Fatalf("BOrth-CGS rounds = %d, want 2", got)
	}

	ctx.ResetStats()
	BOrthMGS{}.Project(ctx, p, w, "borth")
	if got := ctx.Stats().Phase("borth").Rounds; got != 2*pc {
		t.Fatalf("BOrth-MGS rounds = %d, want %d", got, 2*pc)
	}
}

func TestBOrthAgreeAcrossVariants(t *testing.T) {
	// With an exactly orthonormal P the two variants compute the same
	// projection up to roundoff.
	rng := rand.New(rand.NewSource(202))
	n, pc, wc, ng := 180, 4, 3, 2
	ctx := gpu.NewContext(ng, gpu.M2090())
	p := orthoPanel(rng, n, pc, ng)
	wHost := randTall(rng, n, wc)

	w1 := splitRows(wHost.Clone(), ng)
	c1 := BOrthCGS{}.Project(ctx, p, w1, "b")
	w2 := splitRows(wHost.Clone(), ng)
	c2 := BOrthMGS{}.Project(ctx, p, w2, "b")
	if !c1.Equalish(c2, 1e-9*(1+c1.MaxAbs())) {
		t.Fatal("coefficient matrices disagree")
	}
	if !joinRows(w1).Equalish(joinRows(w2), 1e-9) {
		t.Fatal("projected windows disagree")
	}
}

func TestBOrthByName(t *testing.T) {
	v, err := BOrthByName("CGS")
	if err != nil || v.Name() != "BOrth-CGS" {
		t.Fatalf("BOrthByName CGS = %v, %v", v, err)
	}
	v, err = BOrthByName("MGS")
	if err != nil || v.Name() != "BOrth-MGS" {
		t.Fatalf("BOrthByName MGS = %v, %v", v, err)
	}
	if _, err := BOrthByName("x"); err == nil {
		t.Fatal("expected error")
	}
}

func TestBOrthThenTSQRFullPipeline(t *testing.T) {
	// The CA-GMRES inner step: project the new window against the
	// previous panel, then TSQR it. Afterwards [P W] must be orthonormal.
	rng := rand.New(rand.NewSource(203))
	n, pc, wc, ng := 300, 6, 5, 3
	ctx := gpu.NewContext(ng, gpu.M2090())
	p := orthoPanel(rng, n, pc, ng)
	w := splitRows(randTall(rng, n, wc), ng)
	BOrthCGS{}.Project(ctx, p, w, "borth")
	if _, err := (CholQR{}).Factor(ctx, w, "tsqr"); err != nil {
		t.Fatal(err)
	}
	// Assemble [P W] and check global orthonormality.
	pH, wH := joinRows(p), joinRows(w)
	all := la.NewDense(n, pc+wc)
	for j := 0; j < pc; j++ {
		copy(all.Col(j), pH.Col(j))
	}
	for j := 0; j < wc; j++ {
		copy(all.Col(pc+j), wH.Col(j))
	}
	g := la.NewDense(pc+wc, pc+wc)
	la.GemmTN(1, all, all, 0, g)
	if !g.Equalish(la.Eye(pc+wc), 1e-9) {
		t.Fatal("[P W] not orthonormal after BOrth+TSQR")
	}
}
