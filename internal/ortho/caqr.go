package ortho

import (
	"cagmres/internal/gpu"
	"cagmres/internal/la"
)

// CAQR is the communication-avoiding QR of Demmel et al.: each device
// computes a Householder QR of its local panel, the small R factors are
// gathered and stacked on the host, a second QR of the stack yields the
// global R, and each device multiplies its local Q by its block of the
// stack's Q. Two GPU-CPU transfers per window and unconditional O(eps)
// stability — but the local factorizations are BLAS-1/2 bound, so on
// devices CAQR runs at a fraction of CholQR's BLAS-3 rate, and forming Q
// explicitly (as the paper's implementation does) doubles the flops to
// 4ns^2 (Figure 10).
type CAQR struct {
	// BlockSize > 0 switches the local factorizations to the compact-WY
	// blocked algorithm (la.BlockedQR) with that panel width — the
	// "effects of blocking" experiment of the paper's footnote 6. Zero
	// keeps the unblocked Householder sweep.
	BlockSize int
}

// Name implements TSQR.
func (CAQR) Name() string { return "CAQR" }

// Factor implements TSQR.
func (q CAQR) Factor(ctx *gpu.Context, w []*la.Dense, phase string) (*la.Dense, error) {
	c := cols(w)
	ng := len(w)
	localQ := make([]*la.Dense, ng)
	localR := make([]*la.Dense, ng)
	k := deviceWorkOn(ctx, phase, ng, func(d int) gpu.Work {
		if w[d].Rows < c {
			// Short-wide panel (a device owning fewer rows than the window
			// is wide): generalized TSQR. Factor the leading square block,
			// keep the full orthonormal Q (rows x rows) and the
			// upper-trapezoidal R := Q'W (rows x c); stacking trapezoidal
			// factors still reconstructs W_d = Q_d (Q_stack,d R).
			localQ[d], localR[d] = wideLocalQR(w[d])
		} else {
			var f *la.QRFactor
			if q.BlockSize > 0 {
				f = la.BlockedQR(w[d], q.BlockSize)
			} else {
				f = la.HouseholderQR(w[d])
			}
			localQ[d] = f.FormQ()
			localR[d] = f.R()
		}
		rows := float64(w[d].Rows)
		// 2ns^2 flops for the factorization + 2ns^2 to form Q explicitly.
		// Unlike the one-pass BLAS-3 Gram kernel, Householder QR sweeps
		// the trailing panel once per reflector (BLAS-1/2), so its memory
		// traffic scales with n*c^2 — this is why CAQR runs at a fraction
		// of CholQR's rate on devices (Figure 11c).
		cc := float64(c) * float64(c)
		return gpu.Work{Flops: 4 * rows * cc, Bytes: 8 * rows * cc}
	})
	// Gather the R factors (min(rows, c) x c each).
	ctx.ReduceRoundOn(phase, scalarBytesAll(ng, c*c*gpu.ScalarBytes), k)

	// Host: QR of the stacked R factors. The row offset of device d's
	// block inside the stack (blocks are square except short panels').
	off := make([]int, ng+1)
	for d := 0; d < ng; d++ {
		off[d+1] = off[d] + localR[d].Rows
	}
	if off[ng] < c {
		return la.NewDense(c, c), ErrRankDeficient
	}
	stack := la.NewDense(off[ng], c)
	for d := 0; d < ng; d++ {
		for j := 0; j < c; j++ {
			copy(stack.Col(j)[off[d]:off[d+1]], localR[d].Col(j))
		}
	}
	f := la.HouseholderQR(stack)
	qStack := f.FormQ()
	r := f.R()
	la.FixRSigns(qStack, r)
	// The host tree-reduction starts when the stacked R factors arrive;
	// qStack is host-computed, so the scatter explicitly depends on it.
	hqr := ctx.HostComputeOn(phase, 4*float64(ng*c)*float64(c)*float64(c))

	// Scatter the Q blocks; each device forms its final panel
	// Q_d := localQ_d * qStack_d.
	bc := ctx.BroadcastRoundOn(phase, scalarBytesAll(ng, c*c*gpu.ScalarBytes), hqr)
	deviceWorkOn(ctx, phase, ng, func(d int) gpu.Work {
		qd := qStack.RowView(off[d], off[d+1])
		out := la.NewDense(w[d].Rows, c)
		la.ParallelGemmNN(1, localQ[d], qd, 0, out)
		w[d].CopyFrom(out)
		rows := float64(w[d].Rows)
		return gpu.Work{Flops: 2 * rows * float64(c) * float64(c), Bytes: 24 * rows * float64(c)}
	}, bc)
	// Zero columns produce zero diagonals in R; surface as rank
	// deficiency for parity with the other strategies.
	for i := 0; i < c; i++ {
		if r.At(i, i) == 0 {
			return r, ErrRankDeficient
		}
	}
	return r, nil
}

// wideLocalQR factors a short-wide panel W (rows < cols) as W = Q*R with
// Q (rows x rows) orthonormal and R (rows x cols) upper-trapezoidal: a
// Householder QR of the leading square block supplies Q and the leading
// triangle, the trailing columns are Q'W. Previously such panels made
// the local factorization panic, which a device owning fewer rows than
// the CA window is wide could trigger on tiny problems.
func wideLocalQR(w *la.Dense) (qOut, rOut *la.Dense) {
	rows, c := w.Rows, w.Cols
	f := la.HouseholderQR(w.ColView(0, rows))
	qOut = f.FormQ()
	rOut = la.NewDense(rows, c)
	for j := 0; j < rows; j++ {
		copy(rOut.Col(j), f.R().Col(j))
	}
	tail := w.ColView(rows, c)
	la.GemmTN(1, qOut, tail, 0, rOut.ColView(rows, c))
	return qOut, rOut
}
