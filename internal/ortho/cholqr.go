package ortho

import (
	"fmt"
	"math"

	"cagmres/internal/gpu"
	"cagmres/internal/la"
)

// CholQR orthonormalizes the whole window at once through its Gram
// matrix: B = V'V (one BLAS-3 kernel per device, the paper's batched
// DGEMM), R = chol(B) on the host, V := V R^{-1} on the devices. Exactly
// two GPU-CPU transfers per window — the communication-optimal strategy —
// but the Gram matrix squares the condition number, so the orthogonality
// error is O(eps*kappa^2) and the Cholesky factorization can fail outright
// on the ill-conditioned bases the matrix powers kernel produces
// (ErrNotPositiveDefinite surfaces as ErrRankDeficient here).
type CholQR struct {
	// GramElem, when not Elem64, accumulates and ships the Gram matrix
	// in single precision (the MixedCholQR kernel behind the
	// Options.Precision policy): half the BLAS-3 traffic and half the
	// reduce volume, while the Cholesky factorization and the
	// triangular solve stay double precision. Any sub-FP64 width maps
	// to fp32 — the Gram matrix is never accumulated in bfloat16.
	GramElem gpu.Elem
}

// Name implements TSQR.
func (CholQR) Name() string { return "CholQR" }

// Factor implements TSQR.
func (q CholQR) Factor(ctx *gpu.Context, w []*la.Dense, phase string) (*la.Dense, error) {
	b, err := gramReduce(ctx, w, phase, q.GramElem)
	if err != nil {
		return nil, err
	}
	// The host factorization starts once the reduced Gram matrix has
	// arrived (hostData ordering); the devices are free in the meantime.
	c := b.Rows
	r, err := la.Cholesky(b)
	chol := ctx.HostComputeOn(phase, float64(c*c*c)/3)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRankDeficient, err)
	}
	applyInvR(ctx, w, r, phase, chol)
	return r, nil
}

// SVQR replaces the Cholesky factorization of the Gram matrix with an
// eigendecomposition (the SVD of B): B = U S U', R = qr(S^(1/2) U'). It
// has the same 2-transfer communication profile and BLAS-3 device profile
// as CholQR but survives Gram matrices that are numerically semidefinite.
// Following the paper (Section V-D), the Gram matrix is scaled so its
// diagonal is one before the decomposition, which repairs most of SVQR's
// element-wise error. Singular values below eps*max are clamped, so a
// rank-deficient window yields a usable (if inaccurate) basis instead of
// a hard failure; exact zero columns still error.
type SVQR struct{}

// Name implements TSQR.
func (SVQR) Name() string { return "SVQR" }

// Factor implements TSQR.
func (SVQR) Factor(ctx *gpu.Context, w []*la.Dense, phase string) (*la.Dense, error) {
	b, err := gramReduce(ctx, w, phase, gpu.Elem64)
	if err != nil {
		return nil, err
	}
	c := b.Rows
	// Diagonal scaling: Bs = D^{-1/2} B D^{-1/2}.
	dscale := make([]float64, c)
	for i := 0; i < c; i++ {
		d := b.At(i, i)
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: non-positive Gram diagonal %g at %d", ErrRankDeficient, d, i)
		}
		dscale[i] = math.Sqrt(d)
	}
	bs := la.NewDense(c, c)
	for j := 0; j < c; j++ {
		for i := 0; i < c; i++ {
			bs.Set(i, j, b.At(i, j)/(dscale[i]*dscale[j]))
		}
	}
	// Eigendecomposition of the scaled Gram matrix.
	eig, u := la.JacobiEig(bs)
	ctx.HostComputeOn(phase, 9*float64(c*c*c)) // Jacobi sweeps
	smax := eig[0]
	if smax <= 0 {
		return nil, fmt.Errorf("%w: Gram matrix has no positive eigenvalues", ErrRankDeficient)
	}
	const clampRel = 1e-15
	for i := range eig {
		if eig[i] < clampRel*smax {
			eig[i] = clampRel * smax
		}
	}
	// M = S^{1/2} U' D^{1/2}; R = triangular factor of qr(M).
	m := la.NewDense(c, c)
	for i := 0; i < c; i++ {
		si := math.Sqrt(eig[i])
		for j := 0; j < c; j++ {
			m.Set(i, j, si*u.At(j, i)*dscale[j])
		}
	}
	f := la.HouseholderQR(m)
	rfac := f.R()
	la.FixRSigns(nil, rfac)
	hqr := ctx.HostComputeOn(phase, 2*float64(c*c*c))
	applyInvR(ctx, w, rfac, phase, hqr)
	return rfac, nil
}

// gramReduce computes the global Gram matrix of the window: per-device
// batched BLAS-3 Gram kernels, one reduce round, host sum. A sub-FP64
// elem switches to the single-precision Gram kernel: float32
// accumulation on device, a half-width reduce tagged in the precision
// ledger, and a float32-granular host sum.
func gramReduce(ctx *gpu.Context, w []*la.Dense, phase string, elem gpu.Elem) (*la.Dense, error) {
	c := cols(w)
	ng := len(w)
	fp32 := elem != gpu.Elem64
	partial := make([]*la.Dense, ng)
	k := deviceWorkOn(ctx, phase, ng, func(d int) gpu.Work {
		g := la.NewDense(c, c)
		if fp32 {
			la.GramF32(w[d], g)
		} else {
			la.BatchedGram(w[d], g)
		}
		partial[d] = g
		rows := float64(w[d].Rows)
		if fp32 {
			return gpu.Work{Flops: rows * float64(c) * float64(c), Bytes: 4 * rows * float64(c), Elem: gpu.Elem32}
		}
		return gpu.Work{Flops: rows * float64(c) * float64(c), Bytes: 8 * rows * float64(c)}
	})
	if fp32 {
		ctx.ReduceRoundElemOn(phase, scalarBytesAll(ng, c*c*4), gpu.Elem32, k)
	} else {
		ctx.ReduceRoundOn(phase, scalarBytesAll(ng, c*c*gpu.ScalarBytes), k)
	}
	b := la.NewDense(c, c)
	for _, p := range partial {
		for j := 0; j < c; j++ {
			la.Axpy(1, p.Col(j), b.Col(j))
		}
	}
	if fp32 {
		roundF32Matrix(b)
	}
	for j := 0; j < c; j++ {
		for i := 0; i < c; i++ {
			if math.IsNaN(b.At(i, j)) || math.IsInf(b.At(i, j), 0) {
				return nil, fmt.Errorf("%w: non-finite Gram entry at (%d,%d)", ErrRankDeficient, i, j)
			}
		}
	}
	return b, nil
}

// applyInvR broadcasts R (once the host has produced it — the after
// events) and runs the device-side triangular solve V := V R^{-1} (MAGMA
// DTRSM in the paper).
func applyInvR(ctx *gpu.Context, w []*la.Dense, r *la.Dense, phase string, after ...gpu.StreamEvent) {
	c := r.Rows
	ng := len(w)
	bc := ctx.BroadcastRoundOn(phase, scalarBytesAll(ng, c*c*gpu.ScalarBytes), after...)
	deviceWorkOn(ctx, phase, ng, func(d int) gpu.Work {
		la.TrsmRightUpper(w[d], r)
		rows := float64(w[d].Rows)
		return gpu.Work{Flops: rows * float64(c) * float64(c), Bytes: 16 * rows * float64(c)}
	}, bc)
}
