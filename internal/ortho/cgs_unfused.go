package ortho

import (
	"math"

	"cagmres/internal/gpu"
	"cagmres/internal/la"
)

// CGSUnfused is classical Gram-Schmidt exactly as the paper's Figure 9
// pseudocode writes it: per column, one reduce+broadcast pair for the
// projection coefficients and a second pair for the post-update norm —
// 4(s+1) transfers per window. The default CGS strategy implements the
// fused variant of the paper's footnote 5 (norm reduced together with
// the projections, post-update norm via the Pythagorean identity), which
// halves that to 2(s+1); this type exists so the fusion's worth can be
// measured (see bench.AblationFusedCGS) and its stability compared.
type CGSUnfused struct{}

// Name implements TSQR.
func (CGSUnfused) Name() string { return "CGS-unfused" }

// Factor implements TSQR.
func (CGSUnfused) Factor(ctx *gpu.Context, w []*la.Dense, phase string) (*la.Dense, error) {
	c := cols(w)
	ng := len(w)
	r := la.NewDense(c, c)
	projPart := make([]*la.Dense, ng)
	normPart := make([]float64, ng)
	for k := 0; k < c; k++ {
		if k > 0 {
			// r_{1:k-1,k} := V' v_k (reduce + broadcast).
			deviceWork(ctx, phase, ng, func(d int) gpu.Work {
				vk := w[d].Col(k)
				buf := la.NewDense(k, 1)
				prev := w[d].ColView(0, k)
				la.ParallelGemvT(prev, vk, buf.Col(0))
				projPart[d] = buf
				rows := float64(len(vk))
				return gpu.Work{Flops: 2 * rows * float64(k), Bytes: 8 * rows * float64(k+1)}
			})
			ctx.ReduceRound(phase, scalarBytesAll(ng, k*gpu.ScalarBytes))
			proj := make([]float64, k)
			for _, p := range projPart {
				la.Axpy(1, p.Col(0), proj)
			}
			for l := 0; l < k; l++ {
				r.Set(l, k, proj[l])
			}
			ctx.BroadcastRound(phase, scalarBytesAll(ng, k*gpu.ScalarBytes))
			deviceWork(ctx, phase, ng, func(d int) gpu.Work {
				vk := w[d].Col(k)
				prev := w[d].ColView(0, k)
				la.Gemv(-1, prev, proj, 1, vk)
				rows := float64(len(vk))
				return gpu.Work{Flops: 2 * rows * float64(k), Bytes: 8 * rows * float64(k+2)}
			})
		}
		// r_kk := ||v_k|| recomputed honestly (reduce + broadcast).
		deviceWork(ctx, phase, ng, func(d int) gpu.Work {
			vk := w[d].Col(k)
			normPart[d] = la.Dot(vk, vk)
			return gpu.Work{Flops: 2 * float64(len(vk)), Bytes: 8 * float64(len(vk))}
		})
		ctx.ReduceRound(phase, scalarBytesAll(ng, gpu.ScalarBytes))
		ssq := 0.0
		for _, p := range normPart {
			ssq += p
		}
		rkk := math.Sqrt(ssq)
		r.Set(k, k, rkk)
		if k > 0 && rkk <= 1e-14*la.Nrm2(r.Col(k)[:k]) || rkk == 0 {
			return nil, ErrRankDeficient
		}
		ctx.BroadcastRound(phase, scalarBytesAll(ng, gpu.ScalarBytes))
		deviceWork(ctx, phase, ng, func(d int) gpu.Work {
			vk := w[d].Col(k)
			la.Scal(1/rkk, vk)
			return gpu.Work{Flops: float64(len(vk)), Bytes: 16 * float64(len(vk))}
		})
	}
	return r, nil
}
