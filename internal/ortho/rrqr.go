package ortho

import (
	"cagmres/internal/gpu"
	"cagmres/internal/la"
)

// CARRQR is the communication-avoiding rank-revealing QR the paper lists
// as future work (its reference [10]): a CAQR sweep produces the global
// R factor with the usual two transfers, and a column-pivoted QR of that
// small R on the host — free of communication, since rank(V) = rank(R) —
// reveals the numerical rank and the pivot order. Unlike the plain
// strategies, a rank-deficient window is not an error: Factor
// orthonormalizes the full window (CAQR never divides by a pivot) and
// FactorRankRevealing additionally reports the rank and permutation so a
// caller can truncate the basis.
type CARRQR struct {
	// Tol is the relative rank threshold passed to la.QRCPFactor.Rank
	// (<= 0 selects the default n*eps).
	Tol float64
}

// Name implements TSQR.
func (CARRQR) Name() string { return "CARRQR" }

// Factor implements TSQR: identical to CAQR but tolerant of rank
// deficiency (the rank information is simply discarded).
func (c CARRQR) Factor(ctx *gpu.Context, w []*la.Dense, phase string) (*la.Dense, error) {
	r, _, _, err := c.FactorRankRevealing(ctx, w, phase)
	return r, err
}

// FactorRankRevealing orthonormalizes the window and returns the R
// factor, the numerical rank, and the pivot permutation (perm[j] is the
// original index of the j-th most independent column). The window itself
// holds the unpivoted Q, so V_original = Q R still holds column for
// column.
func (c CARRQR) FactorRankRevealing(ctx *gpu.Context, w []*la.Dense, phase string) (r *la.Dense, rank int, perm []int, err error) {
	r, err = (CAQR{}).Factor(ctx, w, phase)
	if err == ErrRankDeficient {
		// CAQR flags exactly-zero diagonals but still produced a valid
		// orthonormal extension; the rank analysis below quantifies it.
		err = nil
	}
	if err != nil {
		return nil, 0, nil, err
	}
	cp := la.QRCP(r)
	ctx.HostCompute(phase, 4*float64(r.Rows)*float64(r.Rows)*float64(r.Rows)/3)
	rank = cp.Rank(c.Tol)
	return r, rank, cp.Perm, nil
}
