// Package ortho implements the five orthogonalization strategies the
// paper studies for the TSQR kernel of CA-GMRES — modified Gram-Schmidt
// (MGS), classical Gram-Schmidt (CGS), Cholesky QR (CholQR), singular
// value QR (SVQR) and communication-avoiding QR (CAQR) — together with
// the block orthogonalization (BOrth) kernels, reorthogonalization
// wrappers, and the error metrics of Figure 13.
//
// All kernels operate on a distributed tall-skinny window: a slice of
// per-device la.Dense panels (one panel per simulated GPU, produced by
// dist.Vectors.Window) whose vertical concatenation is the matrix V being
// factored. Communication follows the paper's host-staged protocol —
// every global reduction is one device-to-host round plus, when results
// return to the devices, one host-to-device round — and is charged to the
// gpu.Context ledger, which is how the reproduction recovers Figure 10's
// communication counts.
package ortho

import (
	"errors"
	"fmt"

	"cagmres/internal/gpu"
	"cagmres/internal/la"
)

// ErrRankDeficient is returned when a strategy detects that the window's
// columns are (numerically) linearly dependent and cannot produce an
// invertible R factor.
var ErrRankDeficient = errors.New("ortho: window is numerically rank deficient")

// TSQR orthonormalizes a distributed tall-skinny window in place and
// returns the upper-triangular R with V_original = Q R.
type TSQR interface {
	// Name identifies the strategy in tables ("MGS", "CholQR", ...).
	Name() string
	// Factor overwrites the window with Q and returns R. An error leaves
	// the window in an unspecified state.
	Factor(ctx *gpu.Context, w []*la.Dense, phase string) (*la.Dense, error)
}

// cols returns the column count of a window, panicking on raggedness.
func cols(w []*la.Dense) int {
	if len(w) == 0 {
		panic("ortho: empty window")
	}
	c := w[0].Cols
	for _, p := range w {
		if p.Cols != c {
			panic(fmt.Sprintf("ortho: ragged window: %d vs %d cols", p.Cols, c))
		}
	}
	return c
}

// totalRows returns the global row count of a window.
func totalRows(w []*la.Dense) int {
	n := 0
	for _, p := range w {
		n += p.Rows
	}
	return n
}

// scalarBytesAll returns a per-device byte vector of b bytes each.
func scalarBytesAll(ng, b int) []int {
	v := make([]int, ng)
	for d := range v {
		v[d] = b
	}
	return v
}

// deviceWork runs f on every device, collecting per-device Work, and
// charges it as one parallel kernel.
func deviceWork(ctx *gpu.Context, phase string, ndev int, f func(d int) gpu.Work) {
	deviceWorkOn(ctx, phase, ndev, f)
}

// deviceWorkOn is deviceWork as a stream operation: the launch waits for
// the given events and the returned event fires when the slowest device
// finishes.
func deviceWorkOn(ctx *gpu.Context, phase string, ndev int, f func(d int) gpu.Work, after ...gpu.StreamEvent) gpu.StreamEvent {
	work := make([]gpu.Work, ndev)
	ctx.RunAll(func(d int) {
		work[d] = f(d)
	})
	return ctx.DeviceKernelOn(phase, work, after...)
}

// Reorth wraps a strategy with one reorthogonalization pass (the "2x"
// rows of Figure 14): the window is factored twice and the R factors are
// combined, R = R2 * R1. Classical Gram-Schmidt in particular often needs
// this to converge inside CA-GMRES.
type Reorth struct {
	Inner TSQR
}

// Name returns "2xName" to match the paper's table notation.
func (r Reorth) Name() string { return "2x" + r.Inner.Name() }

// Factor runs the inner strategy twice.
func (r Reorth) Factor(ctx *gpu.Context, w []*la.Dense, phase string) (*la.Dense, error) {
	r1, err := r.Inner.Factor(ctx, w, phase)
	if err != nil {
		return nil, err
	}
	r2, err := r.Inner.Factor(ctx, w, phase)
	if err != nil {
		return nil, err
	}
	// R = R2 * R1 (both upper triangular, host-side small product).
	// The small triangular product runs on the host while the devices
	// continue past the second factorization.
	c := r1.Rows
	out := la.NewDense(c, c)
	la.GemmNN(1, r2, r1, 0, out)
	ctx.HostComputeOn(phase, float64(c*c*c)/3)
	return out, nil
}

// ByName returns the strategy named by the CLI flags: MGS, CGS, CholQR,
// SVQR, CAQR, optionally prefixed with "2x" for reorthogonalization.
func ByName(name string) (TSQR, error) {
	reorth := false
	if len(name) > 2 && name[:2] == "2x" {
		reorth = true
		name = name[2:]
	}
	var t TSQR
	switch name {
	case "MGS", "mgs":
		t = MGS{}
	case "CGS", "cgs":
		t = CGS{}
	case "CholQR", "cholqr":
		t = CholQR{}
	case "SVQR", "svqr":
		t = SVQR{}
	case "CAQR", "caqr":
		t = CAQR{}
	case "MixedCholQR", "mixedcholqr":
		t = MixedCholQR{}
	case "MixedCholQR2", "mixedcholqr2":
		t = MixedCholQR{Refine: true}
	default:
		return nil, fmt.Errorf("ortho: unknown strategy %q", name)
	}
	if reorth {
		return Reorth{Inner: t}, nil
	}
	return t, nil
}

// All returns one instance of every base strategy, in the paper's order.
func All() []TSQR {
	return []TSQR{MGS{}, CGS{}, CholQR{}, SVQR{}, CAQR{}}
}
