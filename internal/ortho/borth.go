package ortho

import (
	"fmt"

	"cagmres/internal/gpu"
	"cagmres/internal/la"
)

// BOrth orthogonalizes a new window of basis vectors against the
// previously orthonormalized columns: W := W - P (P' W). It returns the
// coefficient matrix C = P' W (pcols x wcols), which CA-GMRES needs to
// rebuild the Hessenberg matrix.
type BOrth interface {
	// Name identifies the variant ("BOrth-MGS", "BOrth-CGS").
	Name() string
	// Project updates W in place against the panel P and returns C.
	Project(ctx *gpu.Context, p, w []*la.Dense, phase string) *la.Dense
}

// BOrthCGS projects the whole window against all previous columns with a
// single pair of BLAS-3 products: one reduce round for C = P'W, one
// broadcast, one local update W -= P C. With j previous columns this is 2
// transfers instead of BOrthMGS's 2j — the block analogue of the
// CGS-vs-MGS trade, and the variant the paper uses in its CA-GMRES runs
// (Figure 14 note: "BOrth is based on CGS").
type BOrthCGS struct {
	// Elem, when not Elem64, runs the projection in single precision:
	// float32 BLAS-3 kernels, half-width coefficient transfers (tagged
	// in the precision ledger), and a float32-granular host combine.
	// Coefficients never drop below fp32 — bfloat16 is reserved for
	// basis storage and halo payloads.
	Elem gpu.Elem
}

// Name implements BOrth.
func (BOrthCGS) Name() string { return "BOrth-CGS" }

// Project implements BOrth.
func (o BOrthCGS) Project(ctx *gpu.Context, p, w []*la.Dense, phase string) *la.Dense {
	if len(p) != len(w) {
		panic(fmt.Sprintf("ortho: BOrth device mismatch %d vs %d", len(p), len(w)))
	}
	fp32 := o.Elem != gpu.Elem64
	pc, wc := cols(p), cols(w)
	ng := len(w)
	partial := make([]*la.Dense, ng)
	k := deviceWorkOn(ctx, phase, ng, func(d int) gpu.Work {
		cpart := la.NewDense(pc, wc)
		rows := float64(p[d].Rows)
		if fp32 {
			la.GemmTNF32(1, p[d], w[d], 0, cpart)
			partial[d] = cpart
			return gpu.Work{Flops: 2 * rows * float64(pc) * float64(wc), Bytes: 4 * rows * float64(pc+wc), Elem: gpu.Elem32}
		}
		la.BatchedGemmTN(p[d], w[d], cpart)
		partial[d] = cpart
		return gpu.Work{Flops: 2 * rows * float64(pc) * float64(wc), Bytes: 8 * rows * float64(pc+wc)}
	})
	coefBytes := pc * wc * gpu.ScalarBytes
	if fp32 {
		coefBytes = pc * wc * 4
		ctx.ReduceRoundElemOn(phase, scalarBytesAll(ng, coefBytes), gpu.Elem32, k)
	} else {
		ctx.ReduceRoundOn(phase, scalarBytesAll(ng, coefBytes), k)
	}
	c := la.NewDense(pc, wc)
	for _, part := range partial {
		for j := 0; j < wc; j++ {
			la.Axpy(1, part.Col(j), c.Col(j))
		}
	}
	if fp32 {
		roundF32Matrix(c)
	}
	// The broadcast relays the reduced C (implicit host-arrival ordering);
	// the rank-update waits only for it, leaving the host free.
	var bc gpu.StreamEvent
	if fp32 {
		bc = ctx.BroadcastRoundElemOn(phase, scalarBytesAll(ng, coefBytes), gpu.Elem32)
	} else {
		bc = ctx.BroadcastRoundOn(phase, scalarBytesAll(ng, coefBytes))
	}
	deviceWorkOn(ctx, phase, ng, func(d int) gpu.Work {
		rows := float64(p[d].Rows)
		if fp32 {
			la.GemmNNF32(-1, p[d], c, 1, w[d])
			return gpu.Work{Flops: 2 * rows * float64(pc) * float64(wc), Bytes: 4 * rows * float64(pc+2*wc), Elem: gpu.Elem32}
		}
		la.ParallelGemmNN(-1, p[d], c, 1, w[d])
		return gpu.Work{Flops: 2 * rows * float64(pc) * float64(wc), Bytes: 8 * rows * float64(pc+2*wc)}
	}, bc)
	return c
}

// BOrthMGS projects the window against the previous columns one column
// of P at a time: for each previous column, a BLAS-2 product row of
// C and a rank-1 update. Communicates 2j times for j previous columns
// but touches each previous column only once per pass, the modified
// Gram-Schmidt ordering.
type BOrthMGS struct{}

// Name implements BOrth.
func (BOrthMGS) Name() string { return "BOrth-MGS" }

// Project implements BOrth.
func (BOrthMGS) Project(ctx *gpu.Context, p, w []*la.Dense, phase string) *la.Dense {
	if len(p) != len(w) {
		panic(fmt.Sprintf("ortho: BOrth device mismatch %d vs %d", len(p), len(w)))
	}
	pc, wc := cols(p), cols(w)
	ng := len(w)
	c := la.NewDense(pc, wc)
	partial := make([][]float64, ng)
	for l := 0; l < pc; l++ {
		// row l of C: c_l = p_l' W
		k := deviceWorkOn(ctx, phase, ng, func(d int) gpu.Work {
			pl := p[d].Col(l)
			row := make([]float64, wc)
			la.GemvT(1, w[d], pl, 0, row)
			partial[d] = row
			rows := float64(len(pl))
			return gpu.Work{Flops: 2 * rows * float64(wc), Bytes: 8 * rows * float64(wc+1)}
		})
		ctx.ReduceRoundOn(phase, scalarBytesAll(ng, wc*gpu.ScalarBytes), k)
		row := make([]float64, wc)
		for _, part := range partial {
			la.Axpy(1, part, row)
		}
		for j := 0; j < wc; j++ {
			c.Set(l, j, row[j])
		}
		bc := ctx.BroadcastRoundOn(phase, scalarBytesAll(ng, wc*gpu.ScalarBytes))
		// rank-1 update W -= p_l c_l
		deviceWorkOn(ctx, phase, ng, func(d int) gpu.Work {
			pl := p[d].Col(l)
			for j := 0; j < wc; j++ {
				la.Axpy(-row[j], pl, w[d].Col(j))
			}
			rows := float64(len(pl))
			return gpu.Work{Flops: 2 * rows * float64(wc), Bytes: 8 * rows * float64(2*wc+1)}
		}, bc)
	}
	return c
}

// BOrthByName maps a flag value to a block-orthogonalization variant.
func BOrthByName(name string) (BOrth, error) {
	switch name {
	case "CGS", "cgs", "BOrth-CGS":
		return BOrthCGS{}, nil
	case "MGS", "mgs", "BOrth-MGS":
		return BOrthMGS{}, nil
	}
	return nil, fmt.Errorf("ortho: unknown BOrth variant %q", name)
}
