package ortho

import (
	"math/rand"
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/la"
)

// Micro-benchmarks: wall-clock cost of each TSQR strategy and BOrth
// variant on a distributed tall-skinny window (3 simulated devices).

func benchWindow(n, c, ng int) []*la.Dense {
	rng := rand.New(rand.NewSource(1))
	return splitRows(randTall(rng, n, c), ng)
}

func benchmarkStrategy(b *testing.B, strat TSQR) {
	ctx := gpu.NewContext(3, gpu.M2090())
	src := benchWindow(1<<15, 16, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w := CloneWindow(src)
		b.StartTimer()
		if _, err := strat.Factor(ctx, w, "tsqr"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTSQRMGS(b *testing.B)    { benchmarkStrategy(b, MGS{}) }
func BenchmarkTSQRCGS(b *testing.B)    { benchmarkStrategy(b, CGS{}) }
func BenchmarkTSQRCholQR(b *testing.B) { benchmarkStrategy(b, CholQR{}) }
func BenchmarkTSQRSVQR(b *testing.B)   { benchmarkStrategy(b, SVQR{}) }
func BenchmarkTSQRCAQR(b *testing.B)   { benchmarkStrategy(b, CAQR{}) }

func benchmarkBOrth(b *testing.B, variant BOrth) {
	ctx := gpu.NewContext(3, gpu.M2090())
	rng := rand.New(rand.NewSource(2))
	p := splitRows(la.HouseholderQR(randTall(rng, 1<<15, 20)).FormQ(), 3)
	src := benchWindow(1<<15, 10, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w := CloneWindow(src)
		b.StartTimer()
		variant.Project(ctx, p, w, "borth")
	}
}

func BenchmarkBOrthCGS(b *testing.B) { benchmarkBOrth(b, BOrthCGS{}) }
func BenchmarkBOrthMGS(b *testing.B) { benchmarkBOrth(b, BOrthMGS{}) }
