package ortho

import (
	"math/rand"
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/la"
)

func TestCARRQRFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	v := randTall(rng, 200, 7)
	ctx := gpu.NewContext(3, gpu.M2090())
	w := splitRows(v.Clone(), 3)
	orig := CloneWindow(w)
	r, rank, perm, err := (CARRQR{}).FactorRankRevealing(ctx, w, "tsqr")
	if err != nil {
		t.Fatal(err)
	}
	if rank != 7 {
		t.Fatalf("rank = %d, want 7", rank)
	}
	if len(perm) != 7 {
		t.Fatalf("perm = %v", perm)
	}
	e := Measure(w, orig, r)
	if e.Orthogonality > 1e-12 || e.Factorization > 1e-12 {
		t.Fatalf("errors %+v", e)
	}
}

func TestCARRQRDetectsDeficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	// 6 columns spanning a 4-dimensional space.
	base := randTall(rng, 150, 4)
	coeff := randTall(rng, 4, 6)
	v := la.NewDense(150, 6)
	la.GemmNN(1, base, coeff, 0, v)

	ctx := gpu.NewContext(2, gpu.M2090())
	w := splitRows(v, 2)
	_, rank, _, err := (CARRQR{Tol: 1e-10}).FactorRankRevealing(ctx, w, "tsqr")
	if err != nil {
		t.Fatal(err)
	}
	if rank != 4 {
		t.Fatalf("rank = %d, want 4", rank)
	}
}

func TestCARRQRCommunicationStaysAtTwo(t *testing.T) {
	// The rank analysis happens on the host R factor: no extra rounds
	// over CAQR.
	rng := rand.New(rand.NewSource(502))
	v := randTall(rng, 120, 5)
	ctx := gpu.NewContext(3, gpu.M2090())
	w := splitRows(v, 3)
	ctx.ResetStats()
	if _, _, _, err := (CARRQR{}).FactorRankRevealing(ctx, w, "tsqr"); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Stats().Phase("tsqr").Rounds; got != 2 {
		t.Fatalf("rounds = %d, want 2", got)
	}
}

func TestCARRQRAsPlainTSQR(t *testing.T) {
	// Through the TSQR interface it behaves like a stable factorizer.
	rng := rand.New(rand.NewSource(503))
	v := condTall(rng, 300, 8, 1e10)
	ctx := gpu.NewContext(2, gpu.M2090())
	w := splitRows(v.Clone(), 2)
	orig := CloneWindow(w)
	r, err := (CARRQR{}).Factor(ctx, w, "tsqr")
	if err != nil {
		t.Fatal(err)
	}
	e := Measure(w, orig, r)
	if e.Orthogonality > 1e-10 {
		t.Fatalf("orthogonality %v on kappa=1e10", e.Orthogonality)
	}
}

func TestCAQRBlockedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	v := randTall(rng, 180, 12)
	ctx := gpu.NewContext(2, gpu.M2090())

	w1 := splitRows(v.Clone(), 2)
	r1, err := (CAQR{}).Factor(ctx, w1, "tsqr")
	if err != nil {
		t.Fatal(err)
	}
	w2 := splitRows(v.Clone(), 2)
	r2, err := (CAQR{BlockSize: 4}).Factor(ctx, w2, "tsqr")
	if err != nil {
		t.Fatal(err)
	}
	la.FixRSigns(nil, r1)
	la.FixRSigns(nil, r2)
	if !r1.Equalish(r2, 1e-9*(1+r1.MaxAbs())) {
		t.Fatal("blocked CAQR R disagrees with unblocked")
	}
	// Orthogonality identical quality.
	orig := splitRows(v.Clone(), 2)
	e := Measure(w2, orig, r2)
	if e.Orthogonality > 1e-12 {
		t.Fatalf("blocked CAQR orthogonality %v", e.Orthogonality)
	}
}
