package ortho

import (
	"math"

	"cagmres/internal/la"
)

// Errors holds the three TSQR error norms Figure 13 reports for a
// factorization QR = V: the orthogonality error ||I - Q'Q||_F, the
// relative factorization error ||V - QR||_F / ||V||_F, and the maximum
// element-wise error max |(V - QR)_ij / V_ij| over the entries of V that
// are not negligibly small.
type Errors struct {
	Orthogonality float64
	Factorization float64
	ElementWise   float64
}

// Measure computes the error norms of a distributed factorization:
// q is the window after Factor (per-device panels of Q), orig holds
// copies of the original window taken before Factor, and r is the
// returned factor. Runs host-side; diagnostics only, never charged to the
// ledger.
func Measure(q, orig []*la.Dense, r *la.Dense) Errors {
	c := cols(q)
	// Global Gram of Q.
	g := la.NewDense(c, c)
	tmp := la.NewDense(c, c)
	for _, p := range q {
		la.GemmTN(1, p, p, 0, tmp)
		for j := 0; j < c; j++ {
			la.Axpy(1, tmp.Col(j), g.Col(j))
		}
	}
	var orth float64
	for j := 0; j < c; j++ {
		for i := 0; i < c; i++ {
			d := g.At(i, j)
			if i == j {
				d -= 1
			}
			orth += d * d
		}
	}
	orth = math.Sqrt(orth)

	// Residual QR - V panel by panel.
	var resSq, vSq, elem float64
	for d := range q {
		qr := la.NewDense(q[d].Rows, c)
		la.GemmNN(1, q[d], r, 0, qr)
		for j := 0; j < c; j++ {
			qc, oc := qr.Col(j), orig[d].Col(j)
			for i := range qc {
				diff := qc[i] - oc[i]
				resSq += diff * diff
				vSq += oc[i] * oc[i]
			}
		}
	}
	vNorm := math.Sqrt(vSq)
	fact := 0.0
	if vNorm > 0 {
		fact = math.Sqrt(resSq) / vNorm
	}

	// Element-wise error, skipping entries below the noise floor
	// (|v_ij| <= eps * ||V||_F) where the ratio is meaningless.
	floor := 1e-15 * vNorm
	for d := range q {
		qr := la.NewDense(q[d].Rows, c)
		la.GemmNN(1, q[d], r, 0, qr)
		for j := 0; j < c; j++ {
			qc, oc := qr.Col(j), orig[d].Col(j)
			for i := range qc {
				if math.Abs(oc[i]) <= floor {
					continue
				}
				e := math.Abs((qc[i] - oc[i]) / oc[i])
				if e > elem {
					elem = e
				}
			}
		}
	}
	return Errors{Orthogonality: orth, Factorization: fact, ElementWise: elem}
}

// CloneWindow deep-copies a distributed window (to keep the original for
// Measure).
func CloneWindow(w []*la.Dense) []*la.Dense {
	c := make([]*la.Dense, len(w))
	for d := range w {
		c[d] = w[d].Clone()
	}
	return c
}

// Property summarizes one row of Figure 10: the analytic error bound,
// flop count and communication count of a TSQR strategy on an n x (s+1)
// window.
type Property struct {
	Name       string
	ErrorBound string // O(eps kappa^p) exponent description
	Flops      float64
	CommCount  int // individual GPU-CPU transfers per window
	BLASLevel  string
}

// PropertyTable returns the analytic table of Figure 10 for an n-row
// window of s+1 columns.
func PropertyTable(n, s int) []Property {
	ns2 := 2 * float64(n) * float64(s) * float64(s)
	return []Property{
		{Name: "MGS", ErrorBound: "O(eps*kappa)", Flops: ns2, CommCount: (s + 1) * (s + 2), BLASLevel: "BLAS-1 xDOT"},
		{Name: "CGS", ErrorBound: "O(eps*kappa^s)", Flops: ns2, CommCount: 2 * (s + 1), BLASLevel: "BLAS-2 xGEMV"},
		{Name: "CholQR", ErrorBound: "O(eps*kappa^2)", Flops: ns2, CommCount: 2, BLASLevel: "BLAS-3 xGEMM"},
		{Name: "SVQR", ErrorBound: "O(eps*kappa^2)", Flops: ns2, CommCount: 2, BLASLevel: "BLAS-3 xGEMM"},
		{Name: "CAQR", ErrorBound: "O(eps)", Flops: 2 * ns2, CommCount: 2, BLASLevel: "BLAS-1,2 xGEQR2"},
	}
}
