package ortho

import (
	"math"

	"cagmres/internal/gpu"
	"cagmres/internal/la"
)

// MGS is modified Gram-Schmidt: each column is orthogonalized against the
// previous columns one dot product at a time. Numerically the most stable
// Gram-Schmidt variant (error O(eps*kappa)) but each dot product is a
// global reduction, so a window of s+1 columns costs (s+1)(s+2) GPU-CPU
// transfers (Figure 10) — the latency-bound worst case on devices.
type MGS struct{}

// Name implements TSQR.
func (MGS) Name() string { return "MGS" }

// Factor implements TSQR.
func (MGS) Factor(ctx *gpu.Context, w []*la.Dense, phase string) (*la.Dense, error) {
	c := cols(w)
	ng := len(w)
	r := la.NewDense(c, c)
	partial := make([]float64, ng)
	for k := 0; k < c; k++ {
		projSq := 0.0 // accumulated ||r_{1:k-1,k}||^2, for breakdown detection
		for l := 0; l < k; l++ {
			// r_lk = v_l' v_k: local dots, one reduce round.
			kd := deviceWorkOn(ctx, phase, ng, func(d int) gpu.Work {
				vl, vk := w[d].Col(l), w[d].Col(k)
				partial[d] = la.Dot(vl, vk)
				return gpu.Work{Flops: 2 * float64(len(vl)), Bytes: 16 * float64(len(vl))}
			})
			ctx.ReduceRoundOn(phase, scalarBytesAll(ng, gpu.ScalarBytes), kd)
			rlk := 0.0
			for _, p := range partial {
				rlk += p
			}
			r.Set(l, k, rlk)
			projSq += rlk * rlk
			// broadcast r_lk, local axpy v_k -= r_lk v_l
			bc := ctx.BroadcastRoundOn(phase, scalarBytesAll(ng, gpu.ScalarBytes))
			deviceWorkOn(ctx, phase, ng, func(d int) gpu.Work {
				vl, vk := w[d].Col(l), w[d].Col(k)
				la.Axpy(-rlk, vl, vk)
				return gpu.Work{Flops: 2 * float64(len(vl)), Bytes: 24 * float64(len(vl))}
			}, bc)
		}
		// r_kk = ||v_k||: reduce, then broadcast for the scale.
		kd := deviceWorkOn(ctx, phase, ng, func(d int) gpu.Work {
			vk := w[d].Col(k)
			partial[d] = la.Dot(vk, vk)
			return gpu.Work{Flops: 2 * float64(len(vk)), Bytes: 8 * float64(len(vk))}
		})
		ctx.ReduceRoundOn(phase, scalarBytesAll(ng, gpu.ScalarBytes), kd)
		ssq := 0.0
		for _, p := range partial {
			ssq += p
		}
		rkk := math.Sqrt(ssq)
		r.Set(k, k, rkk)
		// Breakdown check relative to the original column norm
		// (Pythagoras: ||v_orig||^2 = ||r_{1:k-1,k}||^2 + r_kk^2).
		if rkk <= 1e-14*math.Sqrt(projSq+ssq) {
			return nil, ErrRankDeficient
		}
		bc := ctx.BroadcastRoundOn(phase, scalarBytesAll(ng, gpu.ScalarBytes))
		deviceWorkOn(ctx, phase, ng, func(d int) gpu.Work {
			vk := w[d].Col(k)
			la.Scal(1/rkk, vk)
			return gpu.Work{Flops: float64(len(vk)), Bytes: 16 * float64(len(vk))}
		}, bc)
	}
	return r, nil
}

// CGS is classical Gram-Schmidt with the fused norm: the projection
// coefficients r = V' v and the squared norm of v are reduced in the same
// round, and the post-update norm comes from the Pythagorean identity
// ||v - Vr||^2 = ||v||^2 - ||r||^2 (Stathopoulos & Wu; the paper's fused
// CGS footnote). That brings the count to 2 transfers per column,
// 2(s+1) per window — Figure 10's entry. When cancellation makes the
// identity untrustworthy the norm is recomputed with one extra round.
//
// The BLAS-2 projection gives CGS much better device efficiency than MGS,
// at the price of error O(eps*kappa^s): inside CA-GMRES it frequently
// needs reorthogonalization (the paper's "2xCGS" rows).
type CGS struct{}

// Name implements TSQR.
func (CGS) Name() string { return "CGS" }

// Factor implements TSQR.
func (CGS) Factor(ctx *gpu.Context, w []*la.Dense, phase string) (*la.Dense, error) {
	c := cols(w)
	ng := len(w)
	r := la.NewDense(c, c)
	partial := make([]*la.Dense, ng) // (k+1)-vector per device: [V'v; ||v||^2]
	for k := 0; k < c; k++ {
		// Local fused projection+norm, one reduce round.
		kd := deviceWorkOn(ctx, phase, ng, func(d int) gpu.Work {
			vk := w[d].Col(k)
			buf := la.NewDense(k+1, 1)
			if k > 0 {
				prev := w[d].ColView(0, k)
				la.ParallelGemvT(prev, vk, buf.Col(0)[:k])
			}
			buf.Set(k, 0, la.Dot(vk, vk))
			partial[d] = buf
			rows := float64(len(vk))
			return gpu.Work{Flops: 2 * rows * float64(k+1), Bytes: 8 * rows * float64(k+2)}
		})
		ctx.ReduceRoundOn(phase, scalarBytesAll(ng, (k+1)*gpu.ScalarBytes), kd)
		sum := make([]float64, k+1)
		for _, p := range partial {
			la.Axpy(1, p.Col(0), sum)
		}
		proj := sum[:k]
		vnorm2 := sum[k]
		for l := 0; l < k; l++ {
			r.Set(l, k, proj[l])
		}
		// Pythagorean post-update norm with a cancellation guard.
		rnorm2 := la.Dot(proj, proj)
		newNorm2 := vnorm2 - rnorm2
		needRecompute := newNorm2 <= 0.5*vnorm2*1e-8 || newNorm2 < 0

		// Broadcast coefficients, local update. The host-side Pythagorean
		// bookkeeping above overlaps with the device-side update.
		bc := ctx.BroadcastRoundOn(phase, scalarBytesAll(ng, (k+1)*gpu.ScalarBytes))
		deviceWorkOn(ctx, phase, ng, func(d int) gpu.Work {
			vk := w[d].Col(k)
			if k > 0 {
				prev := w[d].ColView(0, k)
				la.Gemv(-1, prev, proj, 1, vk)
			}
			rows := float64(len(vk))
			return gpu.Work{Flops: 2 * rows * float64(k), Bytes: 8 * rows * float64(k+2)}
		}, bc)

		var rkk float64
		if needRecompute {
			// Cancellation: one extra reduce for the true norm.
			part := make([]float64, ng)
			kd2 := deviceWorkOn(ctx, phase, ng, func(d int) gpu.Work {
				vk := w[d].Col(k)
				part[d] = la.Dot(vk, vk)
				return gpu.Work{Flops: 2 * float64(len(vk)), Bytes: 8 * float64(len(vk))}
			})
			ctx.ReduceRoundOn(phase, scalarBytesAll(ng, gpu.ScalarBytes), kd2)
			ssq := 0.0
			for _, p := range part {
				ssq += p
			}
			rkk = math.Sqrt(ssq)
			// The scale still rides on the already-counted broadcast of
			// the next column in spirit; charge one explicit round to
			// stay honest.
			bc = ctx.BroadcastRoundOn(phase, scalarBytesAll(ng, gpu.ScalarBytes))
		} else {
			rkk = math.Sqrt(newNorm2)
			// rkk was derived host-side from already-communicated data
			// and travels with the coefficient broadcast above; no extra
			// round.
		}
		r.Set(k, k, rkk)
		if rkk <= 1e-14*math.Sqrt(vnorm2) || math.IsNaN(rkk) {
			return nil, ErrRankDeficient
		}
		deviceWorkOn(ctx, phase, ng, func(d int) gpu.Work {
			vk := w[d].Col(k)
			la.Scal(1/rkk, vk)
			return gpu.Work{Flops: float64(len(vk)), Bytes: 16 * float64(len(vk))}
		}, bc)
	}
	return r, nil
}
