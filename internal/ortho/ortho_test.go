package ortho

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/la"
)

// splitRows scatters an n x c host matrix into ng per-device panels.
func splitRows(v *la.Dense, ng int) []*la.Dense {
	n := v.Rows
	base, rem := n/ng, n%ng
	out := make([]*la.Dense, ng)
	r0 := 0
	for d := 0; d < ng; d++ {
		rows := base
		if d < rem {
			rows++
		}
		p := la.NewDense(rows, v.Cols)
		for j := 0; j < v.Cols; j++ {
			copy(p.Col(j), v.Col(j)[r0:r0+rows])
		}
		out[d] = p
		r0 += rows
	}
	return out
}

// joinRows reassembles the panels into one host matrix.
func joinRows(w []*la.Dense) *la.Dense {
	n := totalRows(w)
	c := cols(w)
	v := la.NewDense(n, c)
	r0 := 0
	for _, p := range w {
		for j := 0; j < c; j++ {
			copy(v.Col(j)[r0:r0+p.Rows], p.Col(j))
		}
		r0 += p.Rows
	}
	return v
}

// randTall returns a random well-conditioned n x c matrix.
func randTall(rng *rand.Rand, n, c int) *la.Dense {
	v := la.NewDense(n, c)
	for j := 0; j < c; j++ {
		col := v.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	return v
}

// condTall builds an n x c matrix with prescribed 2-norm condition
// number: Q1 * diag(geometric decay) * Q2'.
func condTall(rng *rand.Rand, n, c int, cond float64) *la.Dense {
	q1 := la.HouseholderQR(randTall(rng, n, c)).FormQ()
	q2 := la.HouseholderQR(randTall(rng, c, c)).FormQ()
	s := la.NewDense(c, c)
	for i := 0; i < c; i++ {
		expo := float64(i) / float64(c-1)
		s.Set(i, i, math.Pow(cond, -expo))
	}
	tmp := la.NewDense(n, c)
	la.GemmNN(1, q1, s, 0, tmp)
	out := la.NewDense(n, c)
	q2t := q2.Transpose()
	la.GemmNN(1, tmp, q2t, 0, out)
	return out
}

func upperTriangular(r *la.Dense) bool {
	for j := 0; j < r.Cols; j++ {
		for i := j + 1; i < r.Rows; i++ {
			if r.At(i, j) != 0 {
				return false
			}
		}
	}
	return true
}

func TestAllStrategiesFactorCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for _, strat := range All() {
		for _, ng := range []int{1, 2, 3} {
			ctx := gpu.NewContext(ng, gpu.M2090())
			v := randTall(rng, 200, 7)
			w := splitRows(v, ng)
			orig := CloneWindow(w)
			r, err := strat.Factor(ctx, w, "tsqr")
			if err != nil {
				t.Fatalf("%s ng=%d: %v", strat.Name(), ng, err)
			}
			if !upperTriangular(r) {
				t.Fatalf("%s ng=%d: R not upper triangular", strat.Name(), ng)
			}
			e := Measure(w, orig, r)
			if e.Orthogonality > 1e-10 {
				t.Fatalf("%s ng=%d: orthogonality %v", strat.Name(), ng, e.Orthogonality)
			}
			if e.Factorization > 1e-12 {
				t.Fatalf("%s ng=%d: factorization %v", strat.Name(), ng, e.Factorization)
			}
		}
	}
}

func TestStrategiesAgreeAcrossDeviceCounts(t *testing.T) {
	// The Q and R factors (after sign normalization) must not depend on
	// how many devices the rows are split over.
	rng := rand.New(rand.NewSource(101))
	v := randTall(rng, 150, 5)
	for _, strat := range All() {
		var ref *la.Dense
		for _, ng := range []int{1, 3} {
			ctx := gpu.NewContext(ng, gpu.M2090())
			w := splitRows(v.Clone(), ng)
			r, err := strat.Factor(ctx, w, "tsqr")
			if err != nil {
				t.Fatalf("%s: %v", strat.Name(), err)
			}
			q := joinRows(w)
			la.FixRSigns(q, r)
			if ref == nil {
				ref = q
			} else if !q.Equalish(ref, 1e-8) {
				t.Fatalf("%s: Q differs between 1 and 3 devices", strat.Name())
			}
		}
	}
}

func TestRMatchesHouseholderReference(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	v := randTall(rng, 90, 4)
	fref := la.HouseholderQR(v)
	rref := fref.R()
	la.FixRSigns(nil, rref)
	for _, strat := range All() {
		ctx := gpu.NewContext(2, gpu.M2090())
		w := splitRows(v.Clone(), 2)
		r, err := strat.Factor(ctx, w, "tsqr")
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		la.FixRSigns(nil, r)
		if !r.Equalish(rref, 1e-9*(1+rref.MaxAbs())) {
			t.Fatalf("%s: R mismatch with Householder reference", strat.Name())
		}
	}
}

func TestCommunicationCountsMatchFigure10(t *testing.T) {
	// Figure 10: per window of s+1 columns, MGS uses (s+1)(s+2)
	// transfers, CGS 2(s+1), CholQR/SVQR/CAQR 2.
	rng := rand.New(rand.NewSource(103))
	s := 6
	c := s + 1
	v := randTall(rng, 300, c)
	want := map[string]int{
		"MGS":    (s + 1) * (s + 2),
		"CGS":    2 * (s + 1),
		"CholQR": 2,
		"SVQR":   2,
		"CAQR":   2,
	}
	for _, strat := range All() {
		ctx := gpu.NewContext(3, gpu.M2090())
		w := splitRows(v.Clone(), 3)
		ctx.ResetStats()
		if _, err := strat.Factor(ctx, w, "tsqr"); err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		got := ctx.Stats().Phase("tsqr").Rounds
		if got != want[strat.Name()] {
			t.Fatalf("%s: %d transfers, want %d", strat.Name(), got, want[strat.Name()])
		}
	}
}

func TestCholQRFailsOnIllConditioned(t *testing.T) {
	// kappa ~ 1e9 squares to 1e18 > 1/eps: Cholesky must fail, CAQR and
	// MGS must survive with small orthogonality error.
	rng := rand.New(rand.NewSource(104))
	v := condTall(rng, 400, 10, 1e9)

	ctx := gpu.NewContext(2, gpu.M2090())
	w := splitRows(v.Clone(), 2)
	_, err := CholQR{}.Factor(ctx, w, "tsqr")
	if !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("CholQR err = %v, want rank deficiency", err)
	}

	for _, strat := range []TSQR{CAQR{}, MGS{}} {
		w := splitRows(v.Clone(), 2)
		orig := CloneWindow(w)
		r, err := strat.Factor(ctx, w, "tsqr")
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		e := Measure(w, orig, r)
		if e.Orthogonality > 1e-6 {
			t.Fatalf("%s: orthogonality %v on kappa=1e9", strat.Name(), e.Orthogonality)
		}
	}
}

func TestSVQRSurvivesWhereCholQRFails(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	v := condTall(rng, 300, 8, 1e9)
	ctx := gpu.NewContext(2, gpu.M2090())

	w := splitRows(v.Clone(), 2)
	if _, err := (CholQR{}).Factor(ctx, w, "tsqr"); err == nil {
		t.Skip("CholQR unexpectedly survived; conditioning too mild on this seed")
	}
	w = splitRows(v.Clone(), 2)
	orig := CloneWindow(w)
	r, err := SVQR{}.Factor(ctx, w, "tsqr")
	if err != nil {
		t.Fatalf("SVQR failed: %v", err)
	}
	e := Measure(w, orig, r)
	// SVQR error is O(eps kappa^2) — it survives, not that it is great.
	if math.IsNaN(e.Orthogonality) || e.Orthogonality > 10 {
		t.Fatalf("SVQR orthogonality %v", e.Orthogonality)
	}
	if e.Factorization > 1e-6 {
		t.Fatalf("SVQR factorization error %v", e.Factorization)
	}
}

func TestOrthogonalityErrorOrdering(t *testing.T) {
	// On a moderately ill-conditioned window (kappa ~ 1e5), Figure 13's
	// ordering must hold: CAQR <= MGS <= CholQR/SVQR in orthogonality
	// error, with the Gram-based methods visibly worse.
	rng := rand.New(rand.NewSource(106))
	v := condTall(rng, 500, 12, 1e5)
	errsBy := map[string]float64{}
	for _, strat := range All() {
		ctx := gpu.NewContext(2, gpu.M2090())
		w := splitRows(v.Clone(), 2)
		orig := CloneWindow(w)
		r, err := strat.Factor(ctx, w, "tsqr")
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		errsBy[strat.Name()] = Measure(w, orig, r).Orthogonality
	}
	if errsBy["CAQR"] > 1e-12 {
		t.Fatalf("CAQR orthogonality %v, want O(eps)", errsBy["CAQR"])
	}
	if errsBy["CholQR"] < 10*errsBy["MGS"] {
		t.Fatalf("CholQR (%v) should be clearly worse than MGS (%v) at kappa=1e5",
			errsBy["CholQR"], errsBy["MGS"])
	}
	if errsBy["MGS"] > 1e-8 {
		t.Fatalf("MGS orthogonality %v too large", errsBy["MGS"])
	}
}

func TestReorthImprovesCGS(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	v := condTall(rng, 400, 10, 1e6)

	ctx := gpu.NewContext(2, gpu.M2090())
	w1 := splitRows(v.Clone(), 2)
	o1 := CloneWindow(w1)
	r1, err := CGS{}.Factor(ctx, w1, "tsqr")
	if err != nil {
		t.Fatal(err)
	}
	e1 := Measure(w1, o1, r1)

	w2 := splitRows(v.Clone(), 2)
	o2 := CloneWindow(w2)
	r2, err := (Reorth{Inner: CGS{}}).Factor(ctx, w2, "tsqr")
	if err != nil {
		t.Fatal(err)
	}
	e2 := Measure(w2, o2, r2)
	if e2.Orthogonality > e1.Orthogonality/10 {
		t.Fatalf("reorth did not improve CGS: %v -> %v", e1.Orthogonality, e2.Orthogonality)
	}
	// The combined R must still factor the original window.
	if e2.Factorization > 1e-10 {
		t.Fatalf("2xCGS factorization error %v", e2.Factorization)
	}
}

func TestRankDeficientWindowErrors(t *testing.T) {
	// Duplicate columns: the Gram-Schmidt strategies detect the
	// deficiency through their relative breakdown checks. CholQR sits at
	// the numerical boundary (an exactly singular Gram matrix rounds to
	// a pivot of either sign), mirroring the paper's observation that
	// CholQR's failure mode on kappa ~ 1/eps windows is data-dependent:
	// it must either error or visibly lose orthogonality — never
	// silently claim an orthonormal basis.
	rng := rand.New(rand.NewSource(108))
	v := randTall(rng, 100, 4)
	copy(v.Col(3), v.Col(1)) // exact duplicate
	for _, strat := range []TSQR{MGS{}, CGS{}} {
		ctx := gpu.NewContext(2, gpu.M2090())
		w := splitRows(v.Clone(), 2)
		_, err := strat.Factor(ctx, w, "tsqr")
		if !errors.Is(err, ErrRankDeficient) {
			t.Fatalf("%s: err = %v, want ErrRankDeficient", strat.Name(), err)
		}
	}
	ctx := gpu.NewContext(2, gpu.M2090())
	w := splitRows(v.Clone(), 2)
	orig := CloneWindow(w)
	r, err := (CholQR{}).Factor(ctx, w, "tsqr")
	if err == nil {
		e := Measure(w, orig, r)
		if e.Orthogonality < 1e-4 {
			t.Fatalf("CholQR silently produced an 'orthonormal' basis from a singular window (err %v)", e.Orthogonality)
		}
	}
}

func TestZeroColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	v := randTall(rng, 80, 3)
	la.Zero(v.Col(1))
	for _, strat := range []TSQR{MGS{}, CGS{}, CholQR{}, SVQR{}} {
		ctx := gpu.NewContext(2, gpu.M2090())
		w := splitRows(v.Clone(), 2)
		if _, err := strat.Factor(ctx, w, "tsqr"); err == nil {
			t.Fatalf("%s: expected error on zero column", strat.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"MGS", "CGS", "CholQR", "SVQR", "CAQR"} {
		s, err := ByName(name)
		if err != nil || s.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, s, err)
		}
	}
	s, err := ByName("2xCholQR")
	if err != nil || s.Name() != "2xCholQR" {
		t.Fatalf("ByName 2x = %v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestPropertyTable(t *testing.T) {
	props := PropertyTable(1000, 9)
	if len(props) != 5 {
		t.Fatalf("got %d rows", len(props))
	}
	byName := map[string]Property{}
	for _, p := range props {
		byName[p.Name] = p
	}
	if byName["MGS"].CommCount != 110 { // (9+1)(9+2)
		t.Fatalf("MGS comm = %d", byName["MGS"].CommCount)
	}
	if byName["CGS"].CommCount != 20 {
		t.Fatalf("CGS comm = %d", byName["CGS"].CommCount)
	}
	if byName["CholQR"].CommCount != 2 || byName["CAQR"].CommCount != 2 {
		t.Fatal("BLAS-3 strategies must have 2 transfers")
	}
	if byName["CAQR"].Flops != 2*byName["CholQR"].Flops {
		t.Fatal("CAQR flops must double (explicit Q)")
	}
}

func TestMeasurePerfectFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	v := randTall(rng, 60, 3)
	f := la.HouseholderQR(v)
	q, r := f.FormQ(), f.R()
	e := Measure(splitRows(q, 2), splitRows(v, 2), r)
	if e.Orthogonality > 1e-13 || e.Factorization > 1e-13 {
		t.Fatalf("errors on exact factorization: %+v", e)
	}
}
