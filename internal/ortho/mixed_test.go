package ortho

import (
	"math/rand"
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/la"
)

func TestMixedCholQRFactorsCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	v := randTall(rng, 300, 8)
	for _, strat := range []TSQR{MixedCholQR{}, MixedCholQR{Refine: true}} {
		ctx := gpu.NewContext(2, gpu.M2090())
		w := splitRows(v.Clone(), 2)
		orig := CloneWindow(w)
		r, err := strat.Factor(ctx, w, "tsqr")
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		e := Measure(w, orig, r)
		// Single-precision Gram: orthogonality floor ~ eps_32.
		if e.Orthogonality > 1e-5 {
			t.Fatalf("%s: orthogonality %v", strat.Name(), e.Orthogonality)
		}
		// The factorization identity must hold to the f32 floor for
		// the single pass and far better with refinement.
		if e.Factorization > 1e-5 {
			t.Fatalf("%s: factorization %v", strat.Name(), e.Factorization)
		}
	}
}

func TestMixedCholQRRefinementRestoresAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	v := randTall(rng, 500, 10)

	ctx := gpu.NewContext(2, gpu.M2090())
	w1 := splitRows(v.Clone(), 2)
	o1 := CloneWindow(w1)
	r1, err := (MixedCholQR{}).Factor(ctx, w1, "tsqr")
	if err != nil {
		t.Fatal(err)
	}
	single := Measure(w1, o1, r1)

	w2 := splitRows(v.Clone(), 2)
	o2 := CloneWindow(w2)
	r2, err := (MixedCholQR{Refine: true}).Factor(ctx, w2, "tsqr")
	if err != nil {
		t.Fatal(err)
	}
	refined := Measure(w2, o2, r2)

	// The single pass bottoms out near eps_32...
	if single.Orthogonality < 1e-9 {
		t.Fatalf("single-pass orthogonality suspiciously good: %v", single.Orthogonality)
	}
	// ...and the refined pass recovers double-precision orthogonality.
	if refined.Orthogonality > 1e-12 {
		t.Fatalf("refined orthogonality %v, want ~eps_64", refined.Orthogonality)
	}
	if refined.Orthogonality*100 > single.Orthogonality {
		t.Fatalf("refinement did not clearly improve: %v -> %v",
			single.Orthogonality, refined.Orthogonality)
	}
}

func TestMixedCholQRHalvesGramVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	v := randTall(rng, 200, 6)

	ctxD := gpu.NewContext(3, gpu.M2090())
	wd := splitRows(v.Clone(), 3)
	ctxD.ResetStats()
	if _, err := (CholQR{}).Factor(ctxD, wd, "tsqr"); err != nil {
		t.Fatal(err)
	}
	doubleBytes := ctxD.Stats().Phase("tsqr").BytesD2H

	ctxS := gpu.NewContext(3, gpu.M2090())
	ws := splitRows(v.Clone(), 3)
	ctxS.ResetStats()
	if _, err := (MixedCholQR{}).Factor(ctxS, ws, "tsqr"); err != nil {
		t.Fatal(err)
	}
	singleBytes := ctxS.Stats().Phase("tsqr").BytesD2H

	if singleBytes*2 != doubleBytes {
		t.Fatalf("f32 Gram reduce %d bytes, f64 %d: expected exactly half", singleBytes, doubleBytes)
	}
	// Round count unchanged: still the 2-transfer profile.
	if ctxS.Stats().Phase("tsqr").Rounds != 2 {
		t.Fatalf("rounds = %d", ctxS.Stats().Phase("tsqr").Rounds)
	}
}

func TestGramF32MatchesF64WithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for _, rows := range []int{50, la.PanelRows + 100} {
		v := randTall(rng, rows, 5)
		g32 := la.NewDense(5, 5)
		g64 := la.NewDense(5, 5)
		la.GramF32(v, g32)
		la.Syrk(v, g64)
		if !g32.Equalish(g64, 1e-4*(1+g64.MaxAbs())) {
			t.Fatalf("rows=%d: f32 Gram too far from f64", rows)
		}
		// But not bit-identical (it really ran in single precision).
		if rows > 100 && g32.Equalish(g64, 1e-14) {
			t.Fatalf("rows=%d: f32 Gram suspiciously exact", rows)
		}
	}
}

func TestCGSUnfusedFactorsCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(310))
	v := randTall(rng, 250, 9)
	ctx := gpu.NewContext(3, gpu.M2090())
	w := splitRows(v.Clone(), 3)
	orig := CloneWindow(w)
	r, err := (CGSUnfused{}).Factor(ctx, w, "tsqr")
	if err != nil {
		t.Fatal(err)
	}
	e := Measure(w, orig, r)
	if e.Orthogonality > 1e-11 || e.Factorization > 1e-12 {
		t.Fatalf("errors %+v", e)
	}
	// Must agree with fused CGS on the same data.
	w2 := splitRows(v.Clone(), 3)
	r2, err := (CGS{}).Factor(ctx, w2, "tsqr")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equalish(r2, 1e-9*(1+r2.MaxAbs())) {
		t.Fatal("fused and unfused CGS disagree")
	}
}

func TestCGSUnfusedRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	v := randTall(rng, 100, 4)
	copy(v.Col(2), v.Col(0))
	ctx := gpu.NewContext(2, gpu.M2090())
	w := splitRows(v, 2)
	if _, err := (CGSUnfused{}).Factor(ctx, w, "tsqr"); err == nil {
		t.Fatal("expected rank deficiency")
	}
}

func TestMixedCholQRInSolverNames(t *testing.T) {
	if (MixedCholQR{}).Name() != "MixedCholQR" {
		t.Fatal("name")
	}
	if (MixedCholQR{Refine: true}).Name() != "MixedCholQR2" {
		t.Fatal("refined name")
	}
}
