package ortho

import (
	"fmt"
	"math"

	"cagmres/internal/gpu"
	"cagmres/internal/la"
)

// MixedCholQR implements the mixed-precision orthogonalization scheme
// the paper's conclusion points to (its reference [23], Yamazaki, Tomov,
// Dong, Dongarra): the Gram matrix is accumulated and shipped in single
// precision — halving both the BLAS-3 kernel's memory traffic and the
// device-to-host volume — while the Cholesky factorization and the
// triangular solve stay in double precision. One optional
// double-precision reorthogonalization pass (Refine) restores full
// accuracy; without it the orthogonality error floor is O(eps_32 kappa^2)
// instead of O(eps_64 kappa^2).
type MixedCholQR struct {
	// Refine adds a second, double-precision CholQR pass (the scheme's
	// "CholQR2" configuration). The R factors are combined.
	Refine bool
}

// Name implements TSQR.
func (m MixedCholQR) Name() string {
	if m.Refine {
		return "MixedCholQR2"
	}
	return "MixedCholQR"
}

// Factor implements TSQR.
func (m MixedCholQR) Factor(ctx *gpu.Context, w []*la.Dense, phase string) (*la.Dense, error) {
	r1, err := m.pass(ctx, w, phase)
	if err != nil {
		return nil, err
	}
	if !m.Refine {
		return r1, nil
	}
	r2, err := (CholQR{}).Factor(ctx, w, phase)
	if err != nil {
		return nil, err
	}
	c := r1.Rows
	out := la.NewDense(c, c)
	la.GemmNN(1, r2, r1, 0, out)
	ctx.HostCompute(phase, float64(c*c*c)/3)
	return out, nil
}

// pass runs one single-precision-Gram CholQR sweep.
func (m MixedCholQR) pass(ctx *gpu.Context, w []*la.Dense, phase string) (*la.Dense, error) {
	c := cols(w)
	ng := len(w)
	partial := make([]*la.Dense, ng)
	deviceWork(ctx, phase, ng, func(d int) gpu.Work {
		g := la.NewDense(c, c)
		la.GramF32(w[d], g)
		partial[d] = g
		rows := float64(w[d].Rows)
		// Single precision halves the kernel's memory traffic.
		return gpu.Work{Flops: rows * float64(c) * float64(c), Bytes: 4 * rows * float64(c), Elem: gpu.Elem32}
	})
	// Reduce in single precision: half the wire volume of CholQR, tagged
	// in the precision ledger.
	ctx.ReduceRoundElem(phase, scalarBytesAll(ng, c*c*4), gpu.Elem32)
	b := la.NewDense(c, c)
	for _, p := range partial {
		for j := 0; j < c; j++ {
			la.Axpy(1, p.Col(j), b.Col(j))
		}
	}
	// Host-side sum happens in float32 granularity too.
	roundF32Matrix(b)
	for j := 0; j < c; j++ {
		for i := 0; i < c; i++ {
			if math.IsNaN(b.At(i, j)) || math.IsInf(b.At(i, j), 0) {
				return nil, fmt.Errorf("%w: non-finite Gram entry", ErrRankDeficient)
			}
		}
	}
	r, err := la.Cholesky(b)
	ctx.HostCompute(phase, float64(c*c*c)/3)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRankDeficient, err)
	}
	applyInvR(ctx, w, r, phase)
	return r, nil
}

func roundF32Matrix(b *la.Dense) {
	for j := 0; j < b.Cols; j++ {
		col := b.Col(j)
		for i := range col {
			col[i] = float64(float32(col[i]))
		}
	}
}
