package gpu

import (
	"runtime"
	"testing"
	"time"
)

// TestContextReuseNoGoroutineLeak is the pooled-reuse regression at the
// gpu layer: a long-lived Context cycled through many RunAll/ResetStats
// rounds — the lifecycle the sched.Pool imposes — must neither
// accumulate goroutines nor carry ledger state across resets.
func TestContextReuseNoGoroutineLeak(t *testing.T) {
	ctx := NewContext(3, M2090())
	runtime.GC()
	before := runtime.NumGoroutine()

	for lease := 0; lease < 50; lease++ {
		if got := ctx.Stats().TotalTime(); got != 0 {
			t.Fatalf("lease %d inherited %v modeled seconds from the previous user", lease, got)
		}
		// A representative lease: a few kernel+communication rounds with
		// real per-device goroutines.
		for round := 0; round < 4; round++ {
			work := make([]float64, ctx.NumDevices)
			ctx.RunAll(func(d int) {
				sum := 0.0
				for i := 0; i < 1000; i++ {
					sum += float64(i ^ d)
				}
				work[d] = sum
			})
			for d, w := range work {
				if w == 0 {
					t.Fatalf("device %d did no work", d)
				}
			}
			ctx.UniformKernel("spmv", Work{Flops: 1e6, Bytes: 8e6})
			ctx.ReduceRound("dot", []int{8, 8, 8})
		}
		if ctx.Stats().TotalTime() <= 0 {
			t.Fatalf("lease %d charged no modeled time", lease)
		}
		ctx.ResetStats()
	}

	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines accumulated across context reuse: %d before, %d after",
		before, runtime.NumGoroutine())
}

// TestResetStatsPreservesTracing asserts the reuse contract the pool
// relies on: ResetStats clears the ledger but keeps trace recording
// enabled at the same capacity.
func TestResetStatsPreservesTracing(t *testing.T) {
	ctx := NewContext(2, M2090())
	ctx.Stats().EnableTrace(16)
	ctx.UniformKernel("warm", Work{Flops: 1e6})
	if len(ctx.Stats().Trace()) == 0 {
		t.Fatalf("tracing enabled but no events recorded")
	}
	ctx.ResetStats()
	if got := ctx.Stats().TotalTime(); got != 0 {
		t.Fatalf("ledger survived reset: %v seconds", got)
	}
	if len(ctx.Stats().Trace()) != 0 {
		t.Fatalf("trace events survived reset")
	}
	ctx.UniformKernel("after", Work{Flops: 1e6})
	if len(ctx.Stats().Trace()) == 0 {
		t.Fatalf("reset disabled trace recording")
	}
}
