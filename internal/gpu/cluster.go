package gpu

import "fmt"

// This file adds the second network tier the paper's conclusion asks
// for: a cluster of simulated nodes, each holding DevicesPerNode devices
// joined by the profile's node-local Topology, with the nodes themselves
// joined by an inter-node Fabric (InfiniBand- or Ethernet-class α/β).
// Exchange rounds route node-local traffic over the peer tier and
// cross-node traffic over the fabric, charged to a dedicated
// bytesInterNode ledger column; host rounds pay an extra fabric leg for
// the shares contributed by remote nodes. Like every profile knob, the
// cluster tier reorders *time*, never arithmetic — iterates are
// bit-identical whether the devices live in one box or sixty-four.
//
// A profile without a Cluster (the zero value) keeps every charge
// byte-identical to the single-node simulator: all cluster routing is
// gated on Cluster.Enabled().

// FabricKind names an inter-node interconnect generation.
type FabricKind string

// The shipped fabric kinds. The constants live in internal/profile;
// the kind here is a free-form label carried into reports.
const (
	// FabricIBHDR is an InfiniBand HDR-class RDMA fabric.
	FabricIBHDR FabricKind = "ib-hdr"
	// FabricIBEDR is the previous InfiniBand generation.
	FabricIBEDR FabricKind = "ib-edr"
	// FabricEthernet100G is RoCE-style 100G Ethernet.
	FabricEthernet100G FabricKind = "ethernet-100g"
	// FabricEthernet25G is plain 25G Ethernet with a kernel TCP stack —
	// the high-latency end of the study.
	FabricEthernet25G FabricKind = "ethernet-25g"
)

// Fabric is the inter-node tier of a two-tier interconnect: the α/β
// constants of one node's uplink into the cluster network.
type Fabric struct {
	Kind FabricKind
	// Latency is the per-round inter-node latency (MPI pt2pt + NIC), the
	// fabric's alpha term.
	Latency float64
	// Bandwidth is one node uplink's bandwidth in bytes/second, the
	// fabric's beta term.
	Bandwidth float64
}

// Cluster groups a profile's devices into simulated compute nodes.
// DevicesPerNode == 0 (the zero value) disables the tier: the profile
// describes one node and nothing in the charging paths changes.
type Cluster struct {
	// DevicesPerNode is the device count of one node; context devices
	// are grouped by physical id (devices 0..G-1 are node 0, and so on).
	DevicesPerNode int
	// Fabric is the inter-node interconnect joining the nodes.
	Fabric Fabric
}

// Enabled reports whether the cluster tier is armed.
func (cl Cluster) Enabled() bool { return cl.DevicesPerNode > 0 }

// clustered reports whether this context charges over a two-tier
// interconnect.
func (c *Context) clustered() bool { return c.prof.Cluster.Enabled() }

// NodeOf returns the simulated node of logical device d. Node
// membership follows physical ids, so a Survivors view keeps each
// surviving device on its original node.
func (c *Context) NodeOf(d int) int {
	if !c.clustered() {
		return 0
	}
	return c.physOf(d) / c.prof.Cluster.DevicesPerNode
}

// NumNodes returns the simulated node count of this context's physical
// device range (1 on single-node profiles).
func (c *Context) NumNodes() int {
	if !c.clustered() {
		return 1
	}
	g := c.prof.Cluster.DevicesPerNode
	return (c.physDevices() + g - 1) / g
}

// nodeOfLogical materializes NodeOf for the first n logical devices.
func (c *Context) nodeOfLogical(n int) []int {
	out := make([]int, n)
	for d := range out {
		out[d] = c.NodeOf(d)
	}
	return out
}

// routeLocal converts one intra-node exchange round into modeled
// seconds under the node-local topology: traffic is an npos×npos matrix
// in node-local positions (physical id modulo DevicesPerNode), so dead
// or absent positions simply carry zero rows. The arithmetic mirrors
// routePeer per kind; the host-hub kind bounces through the node's own
// host at the profile's host-link constants (a reduce leg plus a
// broadcast leg, like PeerExchange's fallback).
func (c *Context) routeLocal(npos int, traffic [][]int) float64 {
	topo := c.prof.Topo
	switch topo.Kind {
	case TopoNVLinkRing:
		cw := make([]int, npos)
		ccw := make([]int, npos)
		maxHops := 0
		for s, row := range traffic {
			for d, b := range row {
				if b <= 0 || s == d {
					continue
				}
				fwd := (d - s + npos) % npos
				hops := fwd
				if fwd <= npos-fwd {
					for k := 0; k < fwd; k++ {
						cw[(s+k)%npos] += b
					}
				} else {
					hops = npos - fwd
					for k := 0; k < hops; k++ {
						ccw[(s-k+npos)%npos] += b
					}
				}
				if hops > maxHops {
					maxHops = hops
				}
			}
		}
		maxLoad := 0
		for i := 0; i < npos; i++ {
			if cw[i] > maxLoad {
				maxLoad = cw[i]
			}
			if ccw[i] > maxLoad {
				maxLoad = ccw[i]
			}
		}
		if maxHops == 0 {
			maxHops = 1
		}
		return topo.PeerLatency*float64(maxHops) + float64(maxLoad)/topo.PeerBandwidth
	case TopoAllToAll:
		maxPair := 0
		for s, row := range traffic {
			for d, b := range row {
				if s != d && b > maxPair {
					maxPair = b
				}
			}
		}
		return topo.PeerLatency + float64(maxPair)/topo.PeerBandwidth
	case TopoPCIeSwitch:
		out := make([]int, npos)
		in := make([]int, npos)
		for s, row := range traffic {
			for d, b := range row {
				if b <= 0 || s == d {
					continue
				}
				out[s] += b
				in[d] += b
			}
		}
		maxLink := 0
		for i := 0; i < npos; i++ {
			if out[i] > maxLink {
				maxLink = out[i]
			}
			if in[i] > maxLink {
				maxLink = in[i]
			}
		}
		return topo.PeerLatency + float64(maxLink)/topo.PeerBandwidth
	default: // host-hub (and the zero kind): bounce through the node host
		total := 0
		for s, row := range traffic {
			for d, b := range row {
				if s != d && b > 0 {
					total += b
				}
			}
		}
		// One reduce round and one broadcast round over the node's host
		// link; every exchanged byte crosses it twice.
		return 2*c.Model.Latency + 2*float64(total)/c.Model.Bandwidth
	}
}

// routeCluster converts one exchange round into modeled seconds under
// the two-tier interconnect, and reports the cross-node byte volume.
// Node-local pairs route within their node over the peer tier (every
// node's segment works concurrently, so the intra leg costs the slowest
// node); cross-node pairs load their endpoint nodes' fabric uplinks,
// and the fabric round costs one fabric latency plus the most loaded
// uplink direction (a non-blocking switch over node uplinks — the
// standard fat-tree abstraction). The two legs are sequential: boundary
// values hop the local tier before they can cross the fabric.
func (c *Context) routeCluster(traffic [][]int) (t float64, interBytes int) {
	g := c.prof.Cluster.DevicesPerNode
	fab := c.prof.Cluster.Fabric
	nNodes := c.NumNodes()

	intra := make(map[int][][]int) // node -> G×G node-local traffic
	outUp := make([]int, nNodes)
	inUp := make([]int, nNodes)
	intraAny := false
	for ls, row := range traffic {
		ps := c.physOf(ls)
		ns, posS := ps/g, ps%g
		for ld, b := range row {
			if b <= 0 || ls == ld {
				continue
			}
			pd := c.physOf(ld)
			nd, posD := pd/g, pd%g
			if ns == nd {
				m, ok := intra[ns]
				if !ok {
					m = make([][]int, g)
					for i := range m {
						m[i] = make([]int, g)
					}
					intra[ns] = m
				}
				m[posS][posD] += b
				intraAny = true
				continue
			}
			interBytes += b
			outUp[ns] += b
			inUp[nd] += b
		}
	}

	if intraAny {
		for _, m := range intra {
			if lt := c.routeLocal(g, m); lt > t {
				t = lt
			}
		}
	}
	if interBytes > 0 {
		maxUp := 0
		for n := 0; n < nNodes; n++ {
			if outUp[n] > maxUp {
				maxUp = outUp[n]
			}
			if inUp[n] > maxUp {
				maxUp = inUp[n]
			}
		}
		t += fab.Latency + float64(maxUp)/fab.Bandwidth
	}
	if t == 0 {
		t = c.prof.Topo.PeerLatency // an empty round still pays one launch
	}
	return t, interBytes
}

// clusterRoundTime models one host round (reduce/broadcast) on a
// clustered profile: every device's share crosses its own node's host
// link (segments concurrent, so the local leg costs the most loaded
// node), then the remote nodes' aggregates cross the fabric to the root
// node's host (uplinks concurrent). The legs are sequential. With one
// node this degenerates exactly to the single-node round time.
func (c *Context) clusterRoundTime(bytes []int) (t float64, interBytes int) {
	g := c.prof.Cluster.DevicesPerNode
	fab := c.prof.Cluster.Fabric
	nNodes := c.NumNodes()
	vol := make([]int, nNodes)
	for d, b := range bytes {
		vol[c.physOf(d)/g] += b
	}
	maxVol, maxRemote := 0, 0
	for n, v := range vol {
		if v > maxVol {
			maxVol = v
		}
		if n != 0 {
			interBytes += v
			if v > maxRemote {
				maxRemote = v
			}
		}
	}
	t = c.Model.Latency + float64(maxVol)/c.Model.Bandwidth
	if interBytes > 0 {
		t += fab.Latency + float64(maxRemote)/fab.Bandwidth
	}
	return t, interBytes
}

// Valid reports whether the fabric constants are physically meaningful
// for an armed cluster: non-negative finite latency, positive finite
// bandwidth.
func (f Fabric) Valid() bool {
	return f.Latency >= 0 && f.Latency <= 1e30 && f.Bandwidth > 0 && f.Bandwidth <= 1e30
}

// String renders the fabric for reports ("ib-hdr 5us/25GB/s").
func (f Fabric) String() string {
	return fmt.Sprintf("%s %.3gus/%.3gGB/s", f.Kind, f.Latency*1e6, f.Bandwidth/1e9)
}
