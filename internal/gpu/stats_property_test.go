package gpu

import (
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// dyadic returns a random multiple of 2^-20 in [0, 1): a time value whose
// sums (up to ~2^27 terms) are exact in float64 regardless of addition
// order — the right substrate for exactness properties of the ledger.
func dyadic(rng *rand.Rand) float64 {
	return float64(rng.Intn(1<<20)) / (1 << 20)
}

// fillLedger charges a random but reproducible workload to the ledger,
// feeding the internal accounting entry points with dyadic times so
// every float counter is an exact sum.
func fillLedger(rng *rand.Rand, s *Stats, phases []string) {
	for i, n := 0, 5+rng.Intn(20); i < n; i++ {
		phase := phases[rng.Intn(len(phases))]
		switch rng.Intn(4) {
		case 0:
			s.addComm(phase, dirD2H, []int{0, 1, 2}, []int{rng.Intn(1 << 12), rng.Intn(1 << 12), rng.Intn(1 << 12)}, dyadic(rng), Elem(rng.Intn(3)))
		case 1:
			s.addComm(phase, dirH2D, []int{0, 1}, []int{rng.Intn(1 << 12), rng.Intn(1 << 12)}, dyadic(rng), Elem(rng.Intn(3)))
		case 2:
			s.addCompute(phase, []int{0, 1}, []float64{dyadic(rng), dyadic(rng)}, []Work{
				{Flops: float64(rng.Intn(1 << 20)), Bytes: float64(rng.Intn(1 << 20))},
				{Flops: float64(rng.Intn(1 << 20)), Bytes: float64(rng.Intn(1 << 20))},
			})
		default:
			s.addHost(phase, dyadic(rng), float64(rng.Intn(1<<20)))
		}
	}
}

func phaseEqual(t *testing.T, label string, a, b PhaseStats) {
	t.Helper()
	if a != b {
		t.Fatalf("%s: phase stats differ:\n%+v\n%+v", label, a, b)
	}
}

func TestMergeOrderIndependentProperty(t *testing.T) {
	// Merging the same set of ledgers in any order yields identical
	// counters, exactly: integer counters are order-free by construction
	// and the dyadic event times make the float sums exact too.
	phases := []string{"spmv", "mpk", "tsqr", "lsq"}
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		ledgers := make([]*Stats, 4)
		for i := range ledgers {
			ledgers[i] = NewStats()
			fillLedger(rng, ledgers[i], phases)
		}
		perm := rng.Perm(len(ledgers))
		fwd, bwd := NewStats(), NewStats()
		for _, i := range perm {
			fwd.Merge(ledgers[i])
		}
		for k := len(perm) - 1; k >= 0; k-- {
			bwd.Merge(ledgers[perm[k]])
		}
		for _, ph := range phases {
			phaseEqual(t, ph, fwd.Phase(ph), bwd.Phase(ph))
			for d := 0; d < 3; d++ {
				phaseEqual(t, ph, fwd.DevicePhase(d, ph), bwd.DevicePhase(d, ph))
			}
		}
		if fwd.TotalTime() != bwd.TotalTime() {
			t.Fatalf("trial %d: totals differ: %v vs %v", trial, fwd.TotalTime(), bwd.TotalTime())
		}
	}
}

func TestMergeSumsCountersExactly(t *testing.T) {
	// The merged ledger equals the ledger that charged both workloads
	// directly — Merge loses nothing and double-counts nothing.
	phases := []string{"spmv", "tsqr"}
	sa, sb := NewStats(), NewStats()
	fillLedger(rand.New(rand.NewSource(7)), sa, phases)
	fillLedger(rand.New(rand.NewSource(11)), sb, phases)
	merged := NewStats()
	merged.Merge(sa)
	merged.Merge(sb)
	for _, ph := range phases {
		a, b, m := sa.Phase(ph), sb.Phase(ph), merged.Phase(ph)
		want := PhaseStats{
			Rounds:          a.Rounds + b.Rounds,
			Messages:        a.Messages + b.Messages,
			BytesD2H:        a.BytesD2H + b.BytesD2H,
			BytesH2D:        a.BytesH2D + b.BytesH2D,
			BytesFP32:       a.BytesFP32 + b.BytesFP32,
			BytesCompressed: a.BytesCompressed + b.BytesCompressed,
			CommTime:        a.CommTime + b.CommTime,
			DeviceTime:      a.DeviceTime + b.DeviceTime,
			DeviceFlops:     a.DeviceFlops + b.DeviceFlops,
			HostTime:        a.HostTime + b.HostTime,
			HostFlops:       a.HostFlops + b.HostFlops,
			Kernels:         a.Kernels + b.Kernels,
		}
		phaseEqual(t, ph, m, want)
		for d := 0; d < 3; d++ {
			da, db, dm := sa.DevicePhase(d, ph), sb.DevicePhase(d, ph), merged.DevicePhase(d, ph)
			dw := PhaseStats{}
			addInto(&dw, &da)
			addInto(&dw, &db)
			phaseEqual(t, ph, dm, dw)
		}
	}
}

func TestEnableTraceRearmMidTrace(t *testing.T) {
	// Regression: EnableTrace used to reset the ring but not the sequence
	// counter, and record indexed the ring by Seq%cap — so after a mid-run
	// re-arm the wrap slot no longer pointed at the oldest entry and the
	// ring dropped the wrong events. The dedicated ring cursor keeps the
	// last min(cap, count) events regardless of where Seq stands.
	ctx := NewContext(1, M2090())
	ctx.Stats().EnableTrace(5)
	for i := 0; i < 7; i++ { // wrap once: Seq is now past the capacity
		ctx.ReduceRound("warm", []int{i})
	}
	ctx.Stats().EnableTrace(5) // re-arm mid-trace
	for i := 0; i < 6; i++ {   // one past capacity again
		ctx.ReduceRound("p", []int{100 + i})
	}
	ev := ctx.Stats().Trace()
	if len(ev) != 5 {
		t.Fatalf("re-armed ring kept %d events, want 5", len(ev))
	}
	for i, e := range ev {
		// The last 5 of the 6 post-re-arm events, contiguous and in order.
		if e.Phase != "p" || e.Bytes != 100+1+i {
			t.Fatalf("event %d after re-arm: %+v (want phase p, bytes %d)", i, e, 100+1+i)
		}
		if i > 0 && e.Seq != ev[i-1].Seq+1 {
			t.Fatalf("non-contiguous Seq after re-arm: %+v", ev)
		}
	}
}

func TestPerDeviceAttribution(t *testing.T) {
	// DeviceKernel charges each device its own modeled time; the phase
	// aggregate advances by the maximum. Comm rounds charge every
	// participating device the full round time and its own byte share.
	model := M2090()
	ctx := NewContext(3, model)
	work := []Work{
		{Flops: 1e9, Bytes: 0}, // compute bound
		{Flops: 4e9, Bytes: 0}, // 4x slower: the straggler
		{Flops: 2e9, Bytes: 0},
	}
	ctx.DeviceKernel("tsqr", work)
	for d, w := range work {
		want := w.Flops/(model.DeviceGflops*1e9) + model.KernelLaunch
		got := ctx.Stats().DevicePhase(d, "tsqr")
		if got.DeviceTime != want {
			t.Fatalf("device %d time %v, want %v", d, got.DeviceTime, want)
		}
		if got.DeviceFlops != w.Flops || got.Kernels != 1 {
			t.Fatalf("device %d stats %+v", d, got)
		}
	}
	agg := ctx.Stats().Phase("tsqr")
	straggler := ctx.Stats().DevicePhase(1, "tsqr").DeviceTime
	if agg.DeviceTime != straggler {
		t.Fatalf("aggregate %v, want straggler %v", agg.DeviceTime, straggler)
	}

	bytes := []int{100, 200, 300}
	ctx.ReduceRound("mpk", bytes)
	_, roundT := ctx.roundTime(bytes)
	for d, b := range bytes {
		got := ctx.Stats().DevicePhase(d, "mpk")
		if got.BytesD2H != b || got.CommTime != roundT || got.Rounds != 1 || got.Messages != 1 {
			t.Fatalf("device %d comm stats %+v", d, got)
		}
	}
	if n := ctx.Stats().TrackedDevices(); n != 3 {
		t.Fatalf("TrackedDevices = %d, want 3", n)
	}
}

func TestTraceRingWraparoundProperty(t *testing.T) {
	// For any capacity and event count, the ring keeps exactly the last
	// min(cap, count) events, returned in ascending contiguous Seq order.
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		capacity := 1 + rng.Intn(8)
		count := rng.Intn(40)
		ctx := NewContext(1, M2090())
		ctx.Stats().EnableTrace(capacity)
		for i := 0; i < count; i++ {
			ctx.ReduceRound("p", []int{i})
		}
		ev := ctx.Stats().Trace()
		wantLen := count
		if wantLen > capacity {
			wantLen = capacity
		}
		if len(ev) != wantLen {
			t.Fatalf("cap=%d count=%d: got %d events", capacity, count, len(ev))
		}
		for i, e := range ev {
			wantSeq := count - wantLen + i
			if e.Seq != wantSeq {
				t.Fatalf("cap=%d count=%d: event %d has seq %d, want %d", capacity, count, i, e.Seq, wantSeq)
			}
			if e.Bytes != wantSeq {
				t.Fatalf("cap=%d count=%d: event %d payload %d, want %d", capacity, count, i, e.Bytes, wantSeq)
			}
		}
	}
}

func TestRoundTimeMultiNodeMaxProperty(t *testing.T) {
	// The multi-node branch of roundTime charges the maximum of the PCIe
	// path (local share) and the interconnect path (remote share), for
	// any byte distribution — including the regimes where each side
	// dominates.
	model := MultiNode(M2090(), 2, 25e-6, 3e9)
	ctx := NewContext(4, model)
	rng := rand.New(rand.NewSource(42))
	cases := [][]int{
		{1 << 24, 1 << 24, 8, 8}, // huge local, tiny remote: PCIe dominates
		{8, 8, 1 << 24, 1 << 24}, // tiny local, huge remote: interconnect dominates
		{0, 0, 0, 0},             // pure latency
		{1 << 20, 0, 0, 1 << 20}, // split
		{0, 0, 1 << 10, 0},       // remote only
	}
	for trial := 0; trial < 200; trial++ {
		cases = append(cases, []int{rng.Intn(1 << 22), rng.Intn(1 << 22), rng.Intn(1 << 22), rng.Intn(1 << 22)})
	}
	for _, bytes := range cases {
		local := bytes[0] + bytes[1]
		remote := bytes[2] + bytes[3]
		total, got := ctx.roundTime(bytes)
		if total != local+remote {
			t.Fatalf("%v: total %d, want %d", bytes, total, local+remote)
		}
		pcie := model.Latency + float64(local)/model.Bandwidth
		inter := model.InterLatency + float64(remote)/model.InterBandwidth
		want := pcie
		if inter > want {
			want = inter
		}
		if got != want {
			t.Fatalf("%v: round time %v, want max(pcie %v, inter %v)", bytes, got, pcie, inter)
		}
	}
}

func TestRoundTimeSingleNodeIgnoresInterconnect(t *testing.T) {
	// Without DevicesPerNode the remote path never engages, even when
	// interconnect constants are set.
	model := M2090()
	model.InterLatency = 1 // absurd, must be ignored
	model.InterBandwidth = 1
	ctx := NewContext(4, model)
	bytes := []int{100, 200, 300, 400}
	_, got := ctx.roundTime(bytes)
	want := model.Latency + 1000/model.Bandwidth
	if got != want {
		t.Fatalf("single-node round time %v, want %v", got, want)
	}
}

func TestRoundTimeAllDevicesWithinNode(t *testing.T) {
	// DevicesPerNode >= len(bytes): everything is local, the interconnect
	// branch must not fire even though the model is multi-node.
	model := MultiNode(M2090(), 8, 25e-6, 3e9)
	ctx := NewContext(4, model)
	_, got := ctx.roundTime([]int{10, 20, 30, 40})
	want := model.Latency + 100/model.Bandwidth
	if got != want {
		t.Fatalf("intra-node round time %v, want %v", got, want)
	}
}

func TestResetStatsPreservesTraceCapacity(t *testing.T) {
	ctx := NewContext(1, M2090())
	ctx.Stats().EnableTrace(3)
	for i := 0; i < 5; i++ {
		ctx.ReduceRound("before", []int{i})
	}
	ctx.ResetStats()
	if got := len(ctx.Stats().Trace()); got != 0 {
		t.Fatalf("reset kept %d events", got)
	}
	// Recording still works and still wraps at the same capacity.
	for i := 0; i < 7; i++ {
		ctx.ReduceRound("after", []int{i})
	}
	ev := ctx.Stats().Trace()
	if len(ev) != 3 {
		t.Fatalf("post-reset capacity changed: %d events", len(ev))
	}
	for i, e := range ev {
		if e.Seq != 4+i || e.Phase != "after" {
			t.Fatalf("post-reset trace wrong: %+v", ev)
		}
	}
	if ctx.Stats().Phase("before").Rounds != 0 {
		t.Fatal("reset kept counters")
	}
}

func TestResetStatsWithoutTraceStaysDisabled(t *testing.T) {
	ctx := NewContext(1, M2090())
	ctx.ResetStats()
	ctx.ReduceRound("p", []int{1})
	if len(ctx.Stats().Trace()) != 0 {
		t.Fatal("reset enabled tracing out of nowhere")
	}
}

func TestRunAllPanicDoesNotLeakGoroutines(t *testing.T) {
	ctx := NewContext(4, M2090())
	before := runtime.NumGoroutine()
	for trial := 0; trial < 10; trial++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("panic not propagated")
				}
			}()
			ctx.RunAll(func(d int) {
				if d%2 == 1 {
					panic("device failure")
				}
			})
		}()
	}
	// Every device goroutine must have exited; allow the runtime a moment
	// to reap them.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunAllPanicRunsEveryDevice(t *testing.T) {
	// A panicking device must not prevent the others from completing
	// (RunAll waits for all devices before re-raising).
	ctx := NewContext(3, M2090())
	ran := make([]bool, 3)
	func() {
		defer func() { recover() }()
		ctx.RunAll(func(d int) {
			ran[d] = true
			if d == 0 {
				panic("first device fails fast")
			}
		})
	}()
	for d, ok := range ran {
		if !ok {
			t.Fatalf("device %d never ran", d)
		}
	}
}

func TestRunAllMultiplePanicsPickFirstDevice(t *testing.T) {
	// With several failing devices the re-raised panic is the lowest
	// device's, deterministically.
	ctx := NewContext(3, M2090())
	defer func() {
		r := recover()
		if r != "device 1" {
			t.Fatalf("recovered %v, want device 1", r)
		}
	}()
	ctx.RunAll(func(d int) {
		if d >= 1 {
			panic("device " + string(rune('0'+d)))
		}
	})
}
