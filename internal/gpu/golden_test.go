package gpu

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the current output")

// goldenCompare checks got against the named golden file, rewriting it
// under -update.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestStatsStringGolden(t *testing.T) {
	// A fixed workload on the fixed M2090 model: the rendered table is
	// fully deterministic, so any drift in the report format (or in the
	// cost constants it summarizes) must be a conscious golden update.
	ctx := NewContext(3, M2090())
	ctx.ReduceRound("mpk", []int{4096, 4096, 4096})
	ctx.BroadcastRound("mpk", []int{8192, 8192, 8192})
	ctx.UniformKernel("spmv", Work{Flops: 2e8, Bytes: 1.5e9})
	ctx.ReduceRound("tsqr", []int{7440, 7440, 7440})
	ctx.UniformKernel("tsqr", Work{Flops: 5.4e8, Bytes: 2.4e8})
	ctx.HostCompute("lsq", 1.86e6)
	goldenCompare(t, "stats_string.golden", ctx.Stats().String())
}
