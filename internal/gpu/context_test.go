package gpu

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-300) }

func TestNewContextValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 devices")
		}
	}()
	NewContext(0, M2090())
}

func TestRunAllExecutesEveryDevice(t *testing.T) {
	ctx := NewContext(3, M2090())
	var mask int64
	ctx.RunAll(func(d int) {
		atomic.AddInt64(&mask, 1<<uint(d))
	})
	if mask != 0b111 {
		t.Fatalf("mask = %b", mask)
	}
}

func TestRunAllParallel(t *testing.T) {
	// All devices must be in flight at once: use a barrier that only
	// releases when every device has arrived.
	ng := 4
	ctx := NewContext(ng, M2090())
	arrived := make(chan struct{}, ng)
	release := make(chan struct{})
	ctx.RunAll(func(d int) {
		arrived <- struct{}{}
		if d == 0 {
			for i := 0; i < ng; i++ {
				<-arrived
			}
			close(release)
		}
		<-release
	})
}

func TestRunAllPropagatesPanic(t *testing.T) {
	ctx := NewContext(2, M2090())
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	ctx.RunAll(func(d int) {
		if d == 1 {
			panic("device 1 failed")
		}
	})
}

func TestReduceRoundAccounting(t *testing.T) {
	m := M2090()
	ctx := NewContext(3, m)
	ctx.ReduceRound("tsqr", []int{100, 200, 300})
	p := ctx.Stats().Phase("tsqr")
	if p.Rounds != 1 || p.Messages != 3 {
		t.Fatalf("rounds=%d msgs=%d", p.Rounds, p.Messages)
	}
	if p.BytesD2H != 600 || p.BytesH2D != 0 {
		t.Fatalf("bytes %d/%d", p.BytesD2H, p.BytesH2D)
	}
	want := m.Latency + 600/m.Bandwidth
	if !approx(p.CommTime, want, 1e-12) {
		t.Fatalf("comm time %v, want %v", p.CommTime, want)
	}
}

func TestBroadcastRoundAccounting(t *testing.T) {
	ctx := NewContext(2, M2090())
	ctx.BroadcastRound("borth", []int{50, 50})
	p := ctx.Stats().Phase("borth")
	if p.BytesH2D != 100 || p.BytesD2H != 0 || p.Rounds != 1 {
		t.Fatalf("stats %+v", p)
	}
}

func TestLatencyPaidPerRoundNotPerMessage(t *testing.T) {
	// Two rounds of 3 messages each must cost 2 latencies, not 6 — the
	// property that gives MPK its factor-of-s latency win.
	m := M2090()
	ctx := NewContext(3, m)
	ctx.ReduceRound("x", []int{0, 0, 0})
	ctx.ReduceRound("x", []int{0, 0, 0})
	p := ctx.Stats().Phase("x")
	if !approx(p.CommTime, 2*m.Latency, 1e-12) {
		t.Fatalf("comm time %v, want %v", p.CommTime, 2*m.Latency)
	}
}

func TestDeviceKernelTakesMax(t *testing.T) {
	m := M2090()
	ctx := NewContext(2, m)
	w := []Work{{Flops: 3e9}, {Flops: 6e9}}
	ctx.DeviceKernel("gemm", w)
	p := ctx.Stats().Phase("gemm")
	want := 6e9/(m.DeviceGflops*1e9) + m.KernelLaunch
	if !approx(p.DeviceTime, want, 1e-12) {
		t.Fatalf("device time %v, want %v", p.DeviceTime, want)
	}
	if p.DeviceFlops != 9e9 {
		t.Fatalf("flops %v", p.DeviceFlops)
	}
	if p.Kernels != 1 {
		t.Fatalf("kernels %d", p.Kernels)
	}
}

func TestMemoryBoundKernel(t *testing.T) {
	// A kernel with tiny flops but huge memory traffic must be charged by
	// bandwidth, the SpMV regime.
	m := M2090()
	ctx := NewContext(1, m)
	ctx.UniformKernel("spmv", Work{Flops: 1e6, Bytes: 1.2e9})
	p := ctx.Stats().Phase("spmv")
	want := 1.2e9/m.DeviceMemBW + m.KernelLaunch
	if !approx(p.DeviceTime, want, 1e-12) {
		t.Fatalf("device time %v, want %v", p.DeviceTime, want)
	}
}

func TestHostCompute(t *testing.T) {
	m := M2090()
	ctx := NewContext(1, m)
	ctx.HostCompute("lsq", 2e9)
	p := ctx.Stats().Phase("lsq")
	if !approx(p.HostTime, 2e9/(m.HostGflops*1e9), 1e-12) {
		t.Fatalf("host time %v", p.HostTime)
	}
}

func TestStatsMerge(t *testing.T) {
	a := NewStats()
	b := NewStats()
	ctx := &Context{NumDevices: 1, Model: M2090(), stats: a, timeline: newTimeline(false)}
	ctx.ReduceRound("p", []int{8})
	ctx2 := &Context{NumDevices: 1, Model: M2090(), stats: b, timeline: newTimeline(false)}
	ctx2.ReduceRound("p", []int{8})
	ctx2.HostCompute("q", 1e9)
	a.Merge(b)
	if a.Phase("p").Rounds != 2 {
		t.Fatalf("merged rounds = %d", a.Phase("p").Rounds)
	}
	if a.Phase("q").HostFlops != 1e9 {
		t.Fatal("merge lost host flops")
	}
}

func TestStatsTotalAndString(t *testing.T) {
	ctx := NewContext(2, M2090())
	ctx.ReduceRound("tsqr", []int{100, 100})
	ctx.UniformKernel("tsqr", Work{Flops: 1e9})
	ctx.HostCompute("lsq", 1e8)
	total := ctx.Stats().TotalTime()
	want := ctx.Stats().Phase("tsqr").Total() + ctx.Stats().Phase("lsq").Total()
	if !approx(total, want, 1e-12) {
		t.Fatalf("total %v want %v", total, want)
	}
	s := ctx.Stats().String()
	if !strings.Contains(s, "tsqr") || !strings.Contains(s, "lsq") {
		t.Fatalf("String missing phases:\n%s", s)
	}
}

func TestResetStats(t *testing.T) {
	ctx := NewContext(1, M2090())
	ctx.ReduceRound("p", []int{8})
	ctx.ResetStats()
	if ctx.Stats().Phase("p").Rounds != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestPhasesSorted(t *testing.T) {
	ctx := NewContext(1, M2090())
	ctx.HostCompute("zeta", 1)
	ctx.HostCompute("alpha", 1)
	names := ctx.Stats().Phases()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("phases = %v", names)
	}
}

func TestM2090Sanity(t *testing.T) {
	m := M2090()
	if m.Latency <= 0 || m.Bandwidth <= 0 || m.DeviceGflops <= 0 ||
		m.DeviceMemBW <= 0 || m.HostGflops <= 0 || m.KernelLaunch <= 0 {
		t.Fatalf("cost model has non-positive entries: %+v", m)
	}
	// GPU must beat CPU on throughput, PCIe must be far slower than
	// device memory — the premise of the whole paper.
	if m.DeviceGflops <= m.HostGflops {
		t.Fatal("device should out-compute host")
	}
	if m.Bandwidth >= m.DeviceMemBW {
		t.Fatal("PCIe must be slower than device memory")
	}
}

func TestTraceRecordsEvents(t *testing.T) {
	ctx := NewContext(2, M2090())
	ctx.Stats().EnableTrace(100)
	ctx.ReduceRound("tsqr", []int{8, 8})
	ctx.BroadcastRound("tsqr", []int{4, 4})
	ctx.UniformKernel("spmv", Work{Flops: 1e6})
	ctx.HostCompute("lsq", 1e3)
	ev := ctx.Stats().Trace()
	// The kernel launch fans out into one event per device, sharing a Step.
	if len(ev) != 5 {
		t.Fatalf("got %d events", len(ev))
	}
	wantKinds := []string{"reduce", "broadcast", "kernel", "kernel", "host"}
	wantDevs := []int{HostDevice, HostDevice, 0, 1, HostDevice}
	for i, e := range ev {
		if e.Kind != wantKinds[i] {
			t.Fatalf("event %d kind %q, want %q", i, e.Kind, wantKinds[i])
		}
		if e.Device != wantDevs[i] {
			t.Fatalf("event %d device %d, want %d", i, e.Device, wantDevs[i])
		}
		if e.Seq != i {
			t.Fatalf("event %d seq %d", i, e.Seq)
		}
	}
	if ev[2].Step != ev[3].Step {
		t.Fatal("per-device kernel events must share a launch step")
	}
	if ev[1].Step == ev[2].Step || ev[3].Step == ev[4].Step {
		t.Fatal("distinct launches must not share a step")
	}
	if ev[0].Phase != "tsqr" || ev[0].Bytes != 16 {
		t.Fatalf("event 0 = %+v", ev[0])
	}
}

func TestTraceRingBufferKeepsTail(t *testing.T) {
	ctx := NewContext(1, M2090())
	ctx.Stats().EnableTrace(3)
	for i := 0; i < 10; i++ {
		ctx.ReduceRound("p", []int{i})
	}
	ev := ctx.Stats().Trace()
	if len(ev) != 3 {
		t.Fatalf("got %d events", len(ev))
	}
	// The last three rounds are seq 7, 8, 9.
	for i, e := range ev {
		if e.Seq != 7+i {
			t.Fatalf("trace = %+v", ev)
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	ctx := NewContext(1, M2090())
	ctx.ReduceRound("p", []int{8})
	if len(ctx.Stats().Trace()) != 0 {
		t.Fatal("trace recorded without EnableTrace")
	}
}
