package gpu

// Elem is the wire/storage width of one matrix or vector element. The
// zero value is full double precision, so every pre-existing Work
// literal and transfer charge keeps its historical meaning; sub-FP64
// widths are opt-in per transfer (ReduceRoundElemOn, HaloExchangeElemOn)
// and per kernel (Work.Elem).
//
// Widths reorder modeled *time* and tag the new precision ledger
// columns; the numerical narrowing itself (round-to-nearest float32 /
// bfloat16) is applied by the layers that own the data (internal/la,
// internal/dist), so an all-FP64 run charges and computes exactly what
// it always has.
type Elem int

// The shipped element widths.
const (
	// Elem64 is IEEE double precision, the historical default.
	Elem64 Elem = iota
	// Elem32 is IEEE single precision: 4 bytes on the wire, FP32 kernel
	// throughput when the cost model declares an FP32Speedup.
	Elem32
	// ElemBF16 is bfloat16 storage/transfer compression: 2 bytes on the
	// wire with float32's exponent range. Compute never happens at this
	// width — it is a pure transfer/storage format (values are widened
	// before arithmetic), so kernels charge it like Elem32.
	ElemBF16
)

// Bytes returns the wire size of one element at this width.
func (e Elem) Bytes() int {
	switch e {
	case Elem32:
		return 4
	case ElemBF16:
		return 2
	}
	return 8
}

// String names the width for reports and telemetry.
func (e Elem) String() string {
	switch e {
	case Elem32:
		return "fp32"
	case ElemBF16:
		return "bf16"
	}
	return "fp64"
}

// Valid reports whether e is one of the shipped widths.
func (e Elem) Valid() bool {
	return e == Elem64 || e == Elem32 || e == ElemBF16
}
