package gpu

import (
	"math"
	"reflect"
	"testing"
)

// chargeRound pushes one small reduce round through the context,
// reporting any fault panic as a typed error.
func chargeRound(c *Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case *DeviceLostError, *TransferError:
				err = e.(error)
			default:
				panic(r)
			}
		}
	}()
	bytes := make([]int, c.NumDevices)
	for d := range bytes {
		bytes[d] = 1024
	}
	c.ReduceRound("test", bytes)
	return nil
}

func TestEmptyPlanChangesNothing(t *testing.T) {
	run := func(arm bool) *Stats {
		c := NewContext(3, M2090())
		if arm {
			c.InjectFaults(FaultPlan{})
		}
		for i := 0; i < 10; i++ {
			if err := chargeRound(c); err != nil {
				t.Fatal(err)
			}
			c.UniformKernel("k", Work{Flops: 1e6, Bytes: 1e6})
		}
		return c.Stats()
	}
	plain, armed := run(false), run(true)
	if plain.String() != armed.String() {
		t.Fatalf("empty plan perturbed the ledger:\n%s\nvs\n%s", plain.String(), armed.String())
	}
	c := NewContext(3, M2090())
	c.InjectFaults(FaultPlan{})
	if c.FaultsArmed() {
		t.Fatal("empty plan reports armed")
	}
	if c.FaultCounts() != (FaultCounts{}) {
		t.Fatal("empty plan tallied faults")
	}
}

func TestDeviceDeathFiresOnVirtualClock(t *testing.T) {
	c := NewContext(3, M2090())
	c.Stats().EnableTrace(256)
	c.InjectFaults(FaultPlan{Deaths: []DeviceDeath{{Device: 1, At: 40e-6}}})

	// First round: clock still below At — must pass.
	if err := chargeRound(c); err != nil {
		t.Fatalf("death fired early: %v", err)
	}
	// Keep charging until the clock crosses 40us; then the next charge
	// must raise the loss.
	var got *DeviceLostError
	for i := 0; i < 100 && got == nil; i++ {
		if err := chargeRound(c); err != nil {
			var ok bool
			if got, ok = err.(*DeviceLostError); !ok {
				t.Fatalf("unexpected error type: %v", err)
			}
		}
	}
	if got == nil {
		t.Fatal("scheduled death never fired")
	}
	if got.Device != 1 {
		t.Fatalf("wrong device lost: %d", got.Device)
	}
	if got.At < 40e-6 {
		t.Fatalf("death fired before its time: t=%v", got.At)
	}
	if dd := c.DeadDevices(); !reflect.DeepEqual(dd, []int{1}) {
		t.Fatalf("DeadDevices = %v", dd)
	}
	if fc := c.FaultCounts(); fc.DeviceDeaths != 1 {
		t.Fatalf("DeviceDeaths = %d", fc.DeviceDeaths)
	}
	// The death is on the ledger: a "fault" phase row and a trace event.
	if c.Stats().Phase(PhaseFault).Rounds == 0 {
		t.Fatal("no fault phase row recorded")
	}
	found := false
	for _, e := range c.Stats().Trace() {
		if e.Kind == "fault-death" && e.Device == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("no fault-death trace event")
	}
}

func TestSurvivorsViewRemapsCharges(t *testing.T) {
	c := NewContext(3, M2090())
	c.InjectFaults(FaultPlan{Deaths: []DeviceDeath{{Device: 1, At: 0}}})
	if err := chargeRound(c); err == nil {
		t.Fatal("expected immediate death")
	}
	surv, err := c.Survivors()
	if err != nil {
		t.Fatal(err)
	}
	if surv.NumDevices != 2 {
		t.Fatalf("survivors = %d devices", surv.NumDevices)
	}
	if alive := surv.AliveDevices(); !reflect.DeepEqual(alive, []int{0, 2}) {
		t.Fatalf("alive = %v", alive)
	}
	// Charges through the view are attributed to physical ids 0 and 2;
	// the dead device 1 accumulates nothing further.
	before := c.Stats().DevicePhase(1, "test")
	surv.UniformKernel("test", Work{Flops: 1e6, Bytes: 1e6})
	if err := chargeRound(surv); err != nil {
		t.Fatalf("survivor charge failed: %v", err)
	}
	if got := c.Stats().DevicePhase(1, "test"); got != before {
		t.Fatal("dead device accumulated charges through the survivors view")
	}
	if c.Stats().DevicePhase(2, "test").Kernels == 0 {
		t.Fatal("survivor device 2 not charged under its physical id")
	}
	// The view shares the tally and the root keeps the plan state.
	surv.UniformKernel("test", Work{Flops: 1, Bytes: 1})
	if c.FaultCounts() != surv.FaultCounts() {
		t.Fatal("view does not share fault state")
	}
}

func TestTransferFaultsDeterministicAndCharged(t *testing.T) {
	run := func() (*Stats, FaultCounts) {
		c := NewContext(2, M2090())
		c.InjectFaults(FaultPlan{Seed: 7, TransferFaultProb: 0.3})
		for i := 0; i < 50; i++ {
			if err := chargeRound(c); err != nil {
				t.Fatalf("round %d: %v", i, err)
			}
		}
		return c.Stats(), c.FaultCounts()
	}
	s1, f1 := run()
	s2, f2 := run()
	if f1 != f2 {
		t.Fatalf("fault stream not deterministic: %+v vs %+v", f1, f2)
	}
	if f1.TransferFaults == 0 {
		t.Fatal("no transfer faults drawn at prob 0.3 over 50 rounds")
	}
	if f1.TransferRetries == 0 || f1.BackoffSeconds <= 0 {
		t.Fatalf("retries not tallied: %+v", f1)
	}
	if s1.TotalTime() != s2.TotalTime() {
		t.Fatalf("virtual clocks diverge: %v vs %v", s1.TotalTime(), s2.TotalTime())
	}
	// Recovery overhead is on the ledger's fault phase, and the run is
	// strictly slower than a fault-free one.
	if s1.Phase(PhaseFault).CommTime <= 0 {
		t.Fatal("no fault-phase time charged")
	}
	clean := NewContext(2, M2090())
	for i := 0; i < 50; i++ {
		_ = chargeRound(clean)
	}
	if s1.TotalTime() <= clean.Stats().TotalTime() {
		t.Fatal("faulted run not slower than fault-free run")
	}
}

func TestTransferErrorAfterRetryExhaustion(t *testing.T) {
	c := NewContext(2, M2090())
	c.InjectFaults(FaultPlan{Seed: 1, TransferFaultProb: 1})
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})
	err := chargeRound(c)
	te, ok := err.(*TransferError)
	if !ok {
		t.Fatalf("want *TransferError, got %v", err)
	}
	if te.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", te.Attempts)
	}
	if fc := c.FaultCounts(); fc.TransferRetries != 2 {
		t.Fatalf("retries = %d, want 2 (two backoffs before giving up)", fc.TransferRetries)
	}
}

func TestMaxTransferFaultsCapsInjection(t *testing.T) {
	c := NewContext(2, M2090())
	c.InjectFaults(FaultPlan{Seed: 3, TransferFaultProb: 1, MaxTransferFaults: 2})
	for i := 0; i < 20; i++ {
		if err := chargeRound(c); err != nil {
			t.Fatalf("capped plan still escalated: %v", err)
		}
	}
	if fc := c.FaultCounts(); fc.TransferFaults != 2 {
		t.Fatalf("TransferFaults = %d, want cap 2", fc.TransferFaults)
	}
}

func TestStragglerSlowsItsDeviceOnly(t *testing.T) {
	base := NewContext(3, M2090())
	base.UniformKernel("k", Work{Flops: 1e9})
	baseTime := base.Stats().Phase("k").DeviceTime

	c := NewContext(3, M2090())
	c.InjectFaults(FaultPlan{Stragglers: []Straggler{{Device: 2, Factor: 3}}})
	c.UniformKernel("k", Work{Flops: 1e9})
	slowed := c.Stats().Phase("k").DeviceTime
	// The phase aggregates at the max over devices: one straggler at 3x
	// drags the whole launch to ~3x.
	if slowed < 2.5*baseTime {
		t.Fatalf("straggler did not slow the phase: %v vs base %v", slowed, baseTime)
	}
	fast := c.Stats().DevicePhase(0, "k").DeviceTime
	slow := c.Stats().DevicePhase(2, "k").DeviceTime
	if math.Abs(slow-3*fast) > 1e-12 {
		t.Fatalf("per-device attribution wrong: fast %v slow %v", fast, slow)
	}
	if c.FaultCounts().StragglerKernels == 0 {
		t.Fatal("straggler kernels not tallied")
	}
}

func TestRepairClearsDeadAndConsumedDeathsStayConsumed(t *testing.T) {
	c := NewContext(2, M2090())
	c.InjectFaults(FaultPlan{Deaths: []DeviceDeath{{Device: 0, At: 0}}, Stragglers: []Straggler{{Device: 1, Factor: 2}}})
	if err := chargeRound(c); err == nil {
		t.Fatal("expected death")
	}
	c.Repair()
	if len(c.DeadDevices()) != 0 {
		t.Fatal("Repair left dead devices")
	}
	for i := 0; i < 10; i++ {
		if err := chargeRound(c); err != nil {
			t.Fatalf("consumed death re-fired: %v", err)
		}
	}
	// Stragglers are cleared too.
	before := c.Stats().Phase("k").DeviceTime
	c.UniformKernel("k", Work{Flops: 1e9})
	clean := NewContext(2, M2090())
	clean.UniformKernel("k", Work{Flops: 1e9})
	if got, want := c.Stats().Phase("k").DeviceTime-before, clean.Stats().Phase("k").DeviceTime; math.Abs(got-want) > 1e-12 {
		t.Fatalf("straggler survived Repair: %v vs %v", got, want)
	}
	// The monotone tally is preserved across Repair.
	if c.FaultCounts().DeviceDeaths != 1 {
		t.Fatal("Repair erased the fault tally")
	}
}
