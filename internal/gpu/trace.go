package gpu

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace is a named event sequence — the unit of trace export. Name
// labels the simulated context the events came from (e.g. "fig11c" or
// "solve"); Events are in Seq order.
type Trace struct {
	Name   string  `json:"name"`
	Events []Event `json:"events"`
}

// TraceOf snapshots this ledger's recorded events under the given name.
func (s *Stats) TraceOf(name string) Trace {
	return Trace{Name: name, Events: s.Trace()}
}

// WriteTraceJSON writes the traces as plain indented JSON (an array of
// {name, events} objects) for programmatic consumption.
func WriteTraceJSON(w io.Writer, traces []Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traces)
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// a complete event ("ph":"X") with microsecond timestamps, renderable by
// chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the top-level JSON object of the trace_event format.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Lane tids of the Chrome export: the shared bus and the host CPU come
// first, then one lane per simulated device.
const (
	commLane       = 0
	hostLane       = 1
	deviceLaneBase = 2
)

// laneFor maps an event to a stable thread lane: communication and host
// compute each get one shared row, and every simulated device gets its
// own row (deviceLaneBase + id) so load imbalance across devices is
// visible on the timeline.
func laneFor(e Event) (tid int, lane string) {
	switch e.Kind {
	case "reduce", "broadcast", "fault-transfer":
		return commLane, "comm (PCIe/interconnect)"
	case "kernel", "fault-death":
		if e.Device >= 0 {
			return deviceLaneBase + e.Device, fmt.Sprintf("device %d compute", e.Device)
		}
		return deviceLaneBase, "device compute"
	default:
		return hostLane, "host compute"
	}
}

// EventLane maps an event to its stable Chrome-trace thread lane: id 0 is
// the shared communication row, 1 the host CPU, and 2+d device d. External
// exporters (the request-trace stitching in internal/obs) use this so a
// job's device lanes match the standalone ledger export slice for slice.
func EventLane(e Event) (tid int, name string) {
	return laneFor(e)
}

// WriteChromeTrace renders the traces in Chrome trace_event format: each
// Trace becomes one process (pid), each event a complete-duration slice
// on its lane — one lane per device plus shared comm and host lanes.
// Timestamps are the cumulative modeled clock: launch groups (events
// sharing a Step — e.g. the per-device slices of one kernel launch) start
// together and the clock advances by the group's maximum duration, so
// concurrent device work renders side by side and the x-axis is
// deterministic modeled time, not wall time. If a ring buffer wrapped,
// the clock starts at zero from the oldest retained event.
func WriteChromeTrace(w io.Writer, traces []Trace) error {
	file := chromeTraceFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for pid, tr := range traces {
		name := tr.Name
		if name == "" {
			name = fmt.Sprintf("ctx-%d", pid)
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
		lanes := map[int]bool{}
		clock := 0.0 // modeled seconds since the first retained event
		for i := 0; i < len(tr.Events); {
			// One launch group: consecutive events sharing a Step.
			j := i
			var groupDur float64
			for j < len(tr.Events) && tr.Events[j].Step == tr.Events[i].Step {
				if t := tr.Events[j].Time; t > groupDur {
					groupDur = t
				}
				j++
			}
			for _, e := range tr.Events[i:j] {
				tid, lane := laneFor(e)
				if !lanes[tid] {
					lanes[tid] = true
					file.TraceEvents = append(file.TraceEvents, chromeEvent{
						Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
						Args: map[string]any{"name": lane},
					})
				}
				args := map[string]any{"seq": e.Seq, "bytes": e.Bytes}
				if e.Device >= 0 {
					args["device"] = e.Device
				}
				file.TraceEvents = append(file.TraceEvents, chromeEvent{
					Name: e.Phase,
					Cat:  e.Kind,
					Ph:   "X",
					Ts:   clock * 1e6, // microseconds
					Dur:  e.Time * 1e6,
					Pid:  pid,
					Tid:  tid,
					Args: args,
				})
			}
			clock += groupDur
			i = j
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}
