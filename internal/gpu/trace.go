package gpu

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace is a named event sequence — the unit of trace export. Name
// labels the simulated context the events came from (e.g. "fig11c" or
// "solve"); Events are in Seq order.
type Trace struct {
	Name   string  `json:"name"`
	Events []Event `json:"events"`
}

// TraceOf snapshots this ledger's recorded events under the given name.
func (s *Stats) TraceOf(name string) Trace {
	return Trace{Name: name, Events: s.Trace()}
}

// WriteTraceJSON writes the traces as plain indented JSON (an array of
// {name, events} objects) for programmatic consumption.
func WriteTraceJSON(w io.Writer, traces []Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traces)
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// a complete event ("ph":"X") with microsecond timestamps, renderable by
// chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the top-level JSON object of the trace_event format.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// laneFor maps an event kind to a stable thread lane so communication,
// device compute and host compute render as separate rows per process.
func laneFor(kind string) (tid int, lane string) {
	switch kind {
	case "reduce", "broadcast":
		return 0, "comm (PCIe/interconnect)"
	case "kernel":
		return 1, "device compute"
	default:
		return 2, "host compute"
	}
}

// WriteChromeTrace renders the traces in Chrome trace_event format: each
// Trace becomes one process (pid), each event kind one named thread lane,
// and every ledger event a complete-duration slice. Timestamps are the
// cumulative modeled clock: events are laid end to end in Seq order, so
// the x-axis is deterministic modeled time, not wall time. If a ring
// buffer wrapped, the clock starts at zero from the oldest retained event.
func WriteChromeTrace(w io.Writer, traces []Trace) error {
	file := chromeTraceFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for pid, tr := range traces {
		name := tr.Name
		if name == "" {
			name = fmt.Sprintf("ctx-%d", pid)
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
		lanes := map[int]bool{}
		clock := 0.0 // modeled seconds since the first retained event
		for _, e := range tr.Events {
			tid, lane := laneFor(e.Kind)
			if !lanes[tid] {
				lanes[tid] = true
				file.TraceEvents = append(file.TraceEvents, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": lane},
				})
			}
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: e.Phase,
				Cat:  e.Kind,
				Ph:   "X",
				Ts:   clock * 1e6, // microseconds
				Dur:  e.Time * 1e6,
				Pid:  pid,
				Tid:  tid,
				Args: map[string]any{"seq": e.Seq, "bytes": e.Bytes},
			})
			clock += e.Time
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}
