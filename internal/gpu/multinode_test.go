package gpu

import (
	"testing"
)

func TestMultiNodeRoundCost(t *testing.T) {
	base := M2090()
	m := MultiNode(base, 2, 25e-6, 3e9) // 2 GPUs per node, IB-ish network

	// 4 devices = 2 nodes: devices 2,3 are remote.
	ctx := NewContext(4, m)
	ctx.ReduceRound("p", []int{1000, 1000, 1000, 1000})
	p := ctx.Stats().Phase("p")
	local := base.Latency + 2000/base.Bandwidth
	inter := 25e-6 + 2000/3e9
	want := local
	if inter > want {
		want = inter
	}
	if !approx(p.CommTime, want, 1e-12) {
		t.Fatalf("comm time %v, want %v", p.CommTime, want)
	}
	if p.BytesD2H != 4000 {
		t.Fatalf("bytes %d", p.BytesD2H)
	}
}

func TestMultiNodeSingleNodeUnchanged(t *testing.T) {
	// Devices all within one node: identical to the base model.
	base := M2090()
	m := MultiNode(base, 3, 25e-6, 3e9)

	ctxBase := NewContext(3, base)
	ctxBase.ReduceRound("p", []int{10, 20, 30})
	ctxMulti := NewContext(3, m)
	ctxMulti.ReduceRound("p", []int{10, 20, 30})
	if ctxBase.Stats().Phase("p").CommTime != ctxMulti.Stats().Phase("p").CommTime {
		t.Fatal("single-node multi-node model must match base")
	}
}

func TestMultiNodeLatencyDominates(t *testing.T) {
	// Tiny messages across nodes: the network latency sets the floor.
	m := MultiNode(M2090(), 1, 25e-6, 3e9)
	ctx := NewContext(3, m)
	ctx.ReduceRound("p", []int{8, 8, 8})
	got := ctx.Stats().Phase("p").CommTime
	if got < 25e-6 {
		t.Fatalf("comm time %v below network latency", got)
	}
}

func TestMultiNodeAmplifiesCAAdvantage(t *testing.T) {
	// The motivating property: the latency penalty of scattering the
	// devices over nodes hits the many-round strategies (MGS-like
	// patterns) far harder than the 2-round strategies. Simulate the
	// round patterns directly.
	single := M2090()
	multi := MultiNode(single, 1, 100e-6, 3e9)

	cost := func(model CostModel, rounds int) float64 {
		ctx := NewContext(3, model)
		for i := 0; i < rounds; i++ {
			ctx.ReduceRound("p", []int{8, 8, 8})
		}
		return ctx.Stats().Phase("p").CommTime
	}
	// 110 rounds (MGS at s=9) vs 2 rounds (CholQR): the absolute time
	// the communication-avoiding strategy saves per window must grow
	// with the per-round cost (here ~6.7x, the 100us/15us latency gap).
	gapSingle := cost(single, 110) - cost(single, 2)
	gapMulti := cost(multi, 110) - cost(multi, 2)
	if gapMulti < 5*gapSingle {
		t.Fatalf("multi-node gap %v not clearly above single-node %v", gapMulti, gapSingle)
	}
}
