package gpu

import "fmt"

// This file makes the machine description a first-class, swappable
// value. Historically the simulator was hard-wired to the paper's 2014
// testbed (M2090 GPUs sharing one PCIe 2.0 hub through the host); a
// Profile bundles the per-device compute constants (CostModel) with an
// explicit interconnect Topology, so the same solver program can be
// costed on a modern PCIe-switch or NVLink-ring box — and so
// device-to-device halo exchange can route peer-to-peer instead of
// bouncing through the host, the MGSim/MGMark observation that topology,
// not device count, bounds multi-GPU scaling.
//
// Profiles reorder *time*, never arithmetic: every kernel still executes
// exactly, so iterates and convergence histories are bit-identical
// across profiles. Only the ledger charges change.

// TopoKind names an interconnect topology.
type TopoKind string

// The shipped topology kinds.
const (
	// TopoHostHub is the paper's machine: every device hangs off one
	// shared PCIe segment behind the host, and device-to-device traffic
	// bounces through host memory (a D2H round then an H2D round). The
	// default — and the only kind the pre-profile simulator could model.
	TopoHostHub TopoKind = "host-hub"
	// TopoPCIeSwitch gives each device a private full-duplex link to a
	// non-blocking PCIe switch: peer traffic crosses the switch without
	// touching the host, and a round costs one peer latency plus the most
	// loaded device link.
	TopoPCIeSwitch TopoKind = "pcie-switch"
	// TopoNVLinkRing joins the devices in a physical ring of NVLink-class
	// links. Peer traffic takes the shortest arc (ties go clockwise),
	// loading every link it crosses; a round costs the hop count times
	// the peer latency plus the most loaded directed link.
	TopoNVLinkRing TopoKind = "nvlink-ring"
	// TopoAllToAll gives every device pair a dedicated link (NVSwitch-like
	// full fabric): one peer latency plus the largest single pair volume.
	TopoAllToAll TopoKind = "all-to-all"
)

// Topology describes the device-to-device interconnect of a profile: the
// wiring kind plus the alpha/beta constants of one peer link.
type Topology struct {
	Kind TopoKind
	// PeerLatency is the per-round (per-hop, on a ring) latency of a peer
	// transfer, the alpha term.
	PeerLatency float64
	// PeerBandwidth is the bandwidth of one peer link in bytes/second,
	// the beta term.
	PeerBandwidth float64
}

// PeerToPeer reports whether the topology routes device-to-device
// traffic directly, without bouncing through the host. The zero value
// (and TopoHostHub) keep the paper's host-mediated routing.
func (t Topology) PeerToPeer() bool {
	switch t.Kind {
	case TopoPCIeSwitch, TopoNVLinkRing, TopoAllToAll:
		return true
	}
	return false
}

// Valid reports whether the kind is one of the shipped topologies.
func (t Topology) Valid() bool {
	switch t.Kind {
	case "", TopoHostHub, TopoPCIeSwitch, TopoNVLinkRing, TopoAllToAll:
		return true
	}
	return false
}

// Profile is a complete, swappable machine description: a name for
// reports and the HTTP API, the compute/host-link cost model, the peer
// interconnect topology of one node, and (optionally) the cluster tier
// grouping the devices into nodes joined by an inter-node fabric.
type Profile struct {
	Name  string
	Model CostModel
	Topo  Topology
	// Cluster, when enabled, makes the profile a two-tier machine: the
	// zero value keeps the single-node charging paths byte-identical.
	Cluster Cluster
	// BF16Transfer declares that the machine's interconnect can ship
	// bfloat16-compressed payloads (peer copy engines / RDMA fabrics
	// with 2-byte element support). The precision policy in
	// internal/core only narrows transfers to ElemBF16 when the profile
	// claims this; internal/profile's validator rejects the claim on
	// host-hub topologies and non-RDMA cluster fabrics. False (the zero
	// value) caps transfer compression at FP32.
	BF16Transfer bool
}

// Clustered reports whether the profile describes a multi-node machine.
func (p Profile) Clustered() bool { return p.Cluster.Enabled() }

// DefaultProfile wraps a bare cost model the way NewContext always has:
// host-mediated routing, peer constants mirroring the host link.
func DefaultProfile(model CostModel) Profile { return defaultProfile(model) }

// defaultProfile wraps a bare cost model the way NewContext always has:
// host-mediated routing, peer constants mirroring the host link.
func defaultProfile(model CostModel) Profile {
	name := "custom"
	if model == M2090() {
		name = "m2090"
	}
	return Profile{
		Name:  name,
		Model: model,
		Topo:  Topology{Kind: TopoHostHub, PeerLatency: model.Latency, PeerBandwidth: model.Bandwidth},
	}
}

// NewContextWithProfile creates a context with ng simulated devices
// described by the profile.
func NewContextWithProfile(ng int, p Profile) *Context {
	c := NewContext(ng, p.Model)
	c.prof = p
	return c
}

// Profile returns the context's machine description.
func (c *Context) Profile() Profile { return c.prof }

// Topology returns the context's interconnect topology.
func (c *Context) Topology() Topology { return c.prof.Topo }

// SetProfile re-targets the context at a different machine description:
// cost model and topology swap together. Call it between solves (the
// scheduler does, per lease); charges already on the ledger keep the
// costs they were charged at. Survivors views capture the profile at
// derivation time, so set the profile on the root before deriving views.
func (c *Context) SetProfile(p Profile) {
	c.Model = p.Model
	c.prof = p
}

// --- Peer-to-peer routing --------------------------------------------------

// routePeer converts one peer exchange round into modeled seconds under
// the profile's topology. traffic[s][d] is the byte volume LOGICAL
// device s ships to logical device d; routing happens on PHYSICAL device
// ids (c.physOf), so a Survivors view of a ring charges the hops of the
// surviving devices' real positions — traffic between ring neighbors of
// the view may cross a dead device's links.
func (c *Context) routePeer(traffic [][]int) float64 {
	topo := c.prof.Topo
	nphys := c.physDevices()
	switch topo.Kind {
	case TopoNVLinkRing:
		// Directed link loads around the physical ring: cw[i] carries
		// i -> i+1 (mod n), ccw[i] carries i -> i-1.
		cw := make([]int, nphys)
		ccw := make([]int, nphys)
		maxHops := 0
		for ls, row := range traffic {
			s := c.physOf(ls)
			for ld, b := range row {
				if b <= 0 || ls == ld {
					continue
				}
				d := c.physOf(ld)
				fwd := (d - s + nphys) % nphys
				hops := fwd
				if fwd <= nphys-fwd {
					for k := 0; k < fwd; k++ {
						cw[(s+k)%nphys] += b
					}
				} else {
					hops = nphys - fwd
					for k := 0; k < hops; k++ {
						ccw[(s-k+nphys)%nphys] += b
					}
				}
				if hops > maxHops {
					maxHops = hops
				}
			}
		}
		maxLoad := 0
		for i := 0; i < nphys; i++ {
			if cw[i] > maxLoad {
				maxLoad = cw[i]
			}
			if ccw[i] > maxLoad {
				maxLoad = ccw[i]
			}
		}
		if maxHops == 0 {
			maxHops = 1 // an empty round still pays one launch
		}
		return topo.PeerLatency*float64(maxHops) + float64(maxLoad)/topo.PeerBandwidth
	case TopoAllToAll:
		// Dedicated link per ordered pair: the slowest pair bounds the round.
		maxPair := 0
		for ls, row := range traffic {
			for ld, b := range row {
				if ls != ld && b > maxPair {
					maxPair = b
				}
			}
		}
		return topo.PeerLatency + float64(maxPair)/topo.PeerBandwidth
	default: // TopoPCIeSwitch and anything unnamed that claims peer routing
		// Full-duplex per-device up-links into a non-blocking switch: the
		// most loaded direction of the most loaded link bounds the round.
		out := make([]int, nphys)
		in := make([]int, nphys)
		for ls, row := range traffic {
			s := c.physOf(ls)
			for ld, b := range row {
				if b <= 0 || ls == ld {
					continue
				}
				out[s] += b
				in[c.physOf(ld)] += b
			}
		}
		maxLink := 0
		for i := 0; i < nphys; i++ {
			if out[i] > maxLink {
				maxLink = out[i]
			}
			if in[i] > maxLink {
				maxLink = in[i]
			}
		}
		return topo.PeerLatency + float64(maxLink)/topo.PeerBandwidth
	}
}

// peerMessages counts the nonzero ordered pairs of a traffic matrix.
func peerMessages(traffic [][]int) int {
	n := 0
	for s, row := range traffic {
		for d, b := range row {
			if s != d && b > 0 {
				n++
			}
		}
	}
	return n
}

// peerRound is the shared implementation of the peer exchange charges:
// death check, routing, fault injection, ledger, timeline. On a
// clustered profile the round routes over the two-tier interconnect and
// splits the ledger charge between the node-local and fabric columns.
func (c *Context) peerRound(phase string, traffic [][]int, elem Elem, barrier bool, after []StreamEvent) StreamEvent {
	if len(traffic) != c.NumDevices {
		panic(fmt.Sprintf("gpu: peer traffic for %d devices on a %d-device context", len(traffic), c.NumDevices))
	}
	c.checkDeaths(phase)
	if c.clustered() {
		t, _ := c.routeCluster(traffic)
		stall := c.injectTransferFaults(phase, t)
		c.stats.addPeerTiered(phase, c.devIDs(len(traffic)), traffic, c.nodeOfLogical(len(traffic)), t, elem)
		return c.timeline.peer(phase, c.devIDs(len(traffic)), t, stall, barrier, after)
	}
	t := c.routePeer(traffic)
	stall := c.injectTransferFaults(phase, t)
	c.stats.addPeer(phase, c.devIDs(len(traffic)), traffic, t, elem)
	return c.timeline.peer(phase, c.devIDs(len(traffic)), t, stall, barrier, after)
}

// PeerExchange records one device-to-device exchange round routed over
// the profile's topology: traffic[s][d] bytes travel from logical device
// s to logical device d, all pairs concurrently, and the round costs the
// topology's bottleneck path. On a host-hub topology the exchange
// bounces through the host: a reduce round of the per-device send totals
// followed by a broadcast round of the receive totals. A full barrier,
// like the other synchronous charges.
func (c *Context) PeerExchange(phase string, traffic [][]int) {
	if !c.prof.Topo.PeerToPeer() && !c.clustered() {
		c.commRound(phase, dirD2H, rowTotals(traffic), Elem64, true, nil)
		c.commRound(phase, dirH2D, colTotals(traffic), Elem64, true, nil)
		return
	}
	c.peerRound(phase, traffic, Elem64, true, nil)
}

// PeerExchangeOn is PeerExchange as a stream operation: the round
// occupies the transfer streams of every participating device after its
// dependencies. Ledger charges are identical to PeerExchange.
func (c *Context) PeerExchangeOn(phase string, traffic [][]int, after ...StreamEvent) StreamEvent {
	if !c.prof.Topo.PeerToPeer() && !c.clustered() {
		red := c.commRound(phase, dirD2H, rowTotals(traffic), Elem64, false, after)
		return c.commRound(phase, dirH2D, colTotals(traffic), Elem64, false, []StreamEvent{red})
	}
	return c.peerRound(phase, traffic, Elem64, false, after)
}

// HaloExchangeOn charges one halo exchange the way the profile routes
// it. Host-mediated topologies replay the paper's protocol byte for
// byte: a device-to-host reduce of sendBytes (each device's compressed
// boundary, every value once) followed by a host-to-device broadcast of
// recvBytes (each device's halo), the second leg depending on the first.
// Peer-to-peer topologies ship traffic[s][d] directly (a value consumed
// by two peers is sent twice — the price of skipping the host's
// deduplicating staging buffer) in a single routed round. A nil traffic
// matrix forces the host path regardless of topology.
func (c *Context) HaloExchangeOn(phase string, sendBytes, recvBytes []int, traffic [][]int, after ...StreamEvent) StreamEvent {
	return c.HaloExchangeElemOn(phase, sendBytes, recvBytes, traffic, Elem64, after...)
}

// HaloExchangeElemOn is HaloExchangeOn with an explicit element width:
// the caller has already scaled sendBytes/recvBytes/traffic to the
// narrow wire size, and elem tags the round in the precision ledger.
// Elem64 replays HaloExchangeOn byte for byte.
func (c *Context) HaloExchangeElemOn(phase string, sendBytes, recvBytes []int, traffic [][]int, elem Elem, after ...StreamEvent) StreamEvent {
	// A clustered profile always routes the traffic matrix: node-local
	// pairs over the peer tier, cross-node pairs over the fabric.
	if traffic != nil && (c.prof.Topo.PeerToPeer() || c.clustered()) {
		return c.peerRound(phase, traffic, elem, false, after)
	}
	red := c.commRound(phase, dirD2H, sendBytes, elem, false, after)
	return c.commRound(phase, dirH2D, recvBytes, elem, false, []StreamEvent{red})
}

func rowTotals(traffic [][]int) []int {
	out := make([]int, len(traffic))
	for s, row := range traffic {
		for d, b := range row {
			if s != d {
				out[s] += b
			}
		}
	}
	return out
}

func colTotals(traffic [][]int) []int {
	out := make([]int, len(traffic))
	for s, row := range traffic {
		for d, b := range row {
			if s != d {
				out[d] += b
			}
		}
	}
	return out
}
