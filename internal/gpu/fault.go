package gpu

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// This file is the deterministic fault-injection layer of the simulated
// runtime. Real multi-GPU nodes lose devices (ECC double-bit errors, bus
// drops, driver resets), suffer transient PCIe transfer failures, and
// develop stragglers; the cost model alone reproduces none of that, so
// the layers above it — the solvers' re-partitioning recovery, the
// scheduler's retry/eviction machinery — could never be exercised. A
// FaultPlan injects those failures *on the virtual clock*: device deaths
// fire when the ledger's modeled time crosses a threshold, transfer
// faults are drawn from a seeded RNG in ledger-charge order (which is the
// solvers' deterministic program order), and retry backoff is charged to
// the ledger as modeled time. The same plan over the same workload
// therefore produces bit-identical failure schedules on every machine —
// every chaos scenario is an ordinary deterministic test.

// DeviceDeath schedules the permanent loss of one device: the first
// ledger charge at or after virtual time At that involves the device
// raises a *DeviceLostError.
type DeviceDeath struct {
	Device int     // physical device id
	At     float64 // virtual (modeled) seconds since the plan was armed / the ledger was last reset
}

// Straggler slows one device: its kernel times are multiplied by Factor
// (> 1), modeling thermal throttling or a contended PCIe lane. Straggler
// slowdown is charged through the normal cost model, so the phase
// aggregates (max over devices) show the collapse-to-slowest effect.
type Straggler struct {
	Device int
	Factor float64
}

// FaultPlan is a seeded, deterministic failure schedule for one context.
type FaultPlan struct {
	// Seed drives the transfer-fault RNG. Two runs of the same workload
	// with the same seed draw identical fault sequences.
	Seed int64
	// Deaths lists scheduled device losses.
	Deaths []DeviceDeath
	// TransferFaultProb is the per-communication-round probability of a
	// transient transfer failure (0 disables). Each retry attempt draws
	// independently.
	TransferFaultProb float64
	// MaxTransferFaults caps the total number of injected transfer
	// faults (0 = unlimited), so long runs cannot drown in retries.
	MaxTransferFaults int
	// Stragglers lists slowed devices.
	Stragglers []Straggler
}

// Empty reports whether the plan injects nothing.
func (p FaultPlan) Empty() bool {
	return len(p.Deaths) == 0 && p.TransferFaultProb == 0 && len(p.Stragglers) == 0
}

// RetryPolicy bounds the transparent retry of faulted transfer rounds:
// capped exponential backoff on the virtual clock. Every failed attempt
// charges the round's modeled time plus the current backoff to the
// ledger's "fault" phase, so recovery is visible in the same accounting
// as regular work.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per round (first attempt
	// included). Exhausting it raises a *TransferError.
	MaxAttempts int
	// Backoff is the virtual-time delay after the first failed attempt.
	Backoff float64
	// Factor multiplies the backoff after each failure.
	Factor float64
	// MaxBackoff caps the delay.
	MaxBackoff float64
}

// DefaultRetryPolicy mirrors a driver-level retry loop: 4 attempts,
// 50 us initial backoff doubling to at most 1 ms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, Backoff: 50e-6, Factor: 2, MaxBackoff: 1e-3}
}

func (p RetryPolicy) defaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.Backoff <= 0 {
		p.Backoff = d.Backoff
	}
	if p.Factor <= 1 {
		p.Factor = d.Factor
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	return p
}

// DeviceLostError reports a ledger charge that involved a dead device.
// It is raised as a panic from the charging call and is meant to be
// recovered at a solver checkpoint boundary (core does); At is the
// virtual time of detection.
type DeviceLostError struct {
	Device int
	Phase  string
	At     float64
}

func (e *DeviceLostError) Error() string {
	return fmt.Sprintf("gpu: device %d lost (phase %q, t=%.6fs)", e.Device, e.Phase, e.At)
}

// TransferError reports a communication round whose transient faults
// exhausted the retry policy. Raised as a panic from the charging call;
// the scheduler treats it as lease-fatal and re-queues the job.
type TransferError struct {
	Phase    string
	Attempts int
}

func (e *TransferError) Error() string {
	return fmt.Sprintf("gpu: transfer failed after %d attempts (phase %q)", e.Attempts, e.Phase)
}

// FaultCounts is the monotone tally of injected faults and recovery
// actions on one context (shared by its Survivors views).
type FaultCounts struct {
	DeviceDeaths     int     // deaths triggered
	TransferFaults   int     // transfer-round failures injected
	TransferRetries  int     // successful retry attempts after a failure
	StragglerKernels int     // kernel launches slowed by a straggler
	BackoffSeconds   float64 // virtual seconds charged as retry backoff
}

// faultState is the mutable injection state, shared between a root
// context and every Survivors view derived from it. All fields are
// guarded by mu; ledger charges are serialized by the orchestrating
// goroutine, so contention is nil in practice.
type faultState struct {
	mu       sync.Mutex
	plan     FaultPlan
	policy   RetryPolicy
	rng      *rand.Rand
	devices  int       // physical device count of the root context
	dead     []bool    // per physical device
	consumed []bool    // per plan death entry
	slow     []float64 // per physical device straggler factor (0 = none)
	counts   FaultCounts
}

// InjectFaults arms the plan on this context (and any Survivors views
// later derived from it). Death times are relative to the ledger clock
// at future charges — arm immediately after ResetStats so they are
// relative to the run's start. Re-arming replaces the previous plan and
// clears dead devices; it is how a pool readmits a repaired context with
// a fresh schedule.
func (c *Context) InjectFaults(plan FaultPlan) {
	f := &faultState{
		plan:     plan,
		policy:   DefaultRetryPolicy(),
		rng:      rand.New(rand.NewSource(plan.Seed)),
		devices:  c.physDevices(),
		dead:     make([]bool, c.physDevices()),
		consumed: make([]bool, len(plan.Deaths)),
		slow:     make([]float64, c.physDevices()),
	}
	if c.faults != nil {
		f.policy = c.faults.policy
	}
	for _, s := range plan.Stragglers {
		if s.Device >= 0 && s.Device < len(f.slow) && s.Factor > 1 {
			f.slow[s.Device] = s.Factor
		}
	}
	c.faults = f
}

// SetRetryPolicy configures the transfer-retry behavior; it arms an
// empty plan if none is armed (so a fault-free context can still model
// retries if a plan arrives later).
func (c *Context) SetRetryPolicy(p RetryPolicy) {
	if c.faults == nil {
		c.InjectFaults(FaultPlan{})
	}
	c.faults.mu.Lock()
	c.faults.policy = p.defaults()
	c.faults.mu.Unlock()
}

// FaultsArmed reports whether a fault plan is active. The solvers use it
// to decide whether checkpoint maintenance is worth paying for.
func (c *Context) FaultsArmed() bool {
	return c.faults != nil && !c.faults.plan.Empty()
}

// FaultCounts returns the monotone fault tally (zero value when no plan
// is armed).
func (c *Context) FaultCounts() FaultCounts {
	if c.faults == nil {
		return FaultCounts{}
	}
	c.faults.mu.Lock()
	defer c.faults.mu.Unlock()
	return c.faults.counts
}

// DeadDevices returns the physical ids of devices that have died, in
// ascending order.
func (c *Context) DeadDevices() []int {
	if c.faults == nil {
		return nil
	}
	c.faults.mu.Lock()
	defer c.faults.mu.Unlock()
	var out []int
	for d, dead := range c.faults.dead {
		if dead {
			out = append(out, d)
		}
	}
	return out
}

// AliveDevices returns the physical ids of this context's view that are
// still alive, ascending.
func (c *Context) AliveDevices() []int {
	var out []int
	for d := 0; d < c.NumDevices; d++ {
		p := c.physOf(d)
		if c.faults == nil || !c.faults.deadPhys(p) {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// Survivors returns a context view over the alive devices: it shares the
// stats ledger, cost model and fault state of this context, but RunAll
// and the charging calls address only the survivors (logical device i is
// physical device Survivors()[i] on the ledger). It errors when no
// device survives. Do not ResetStats a view — reset the root.
func (c *Context) Survivors() (*Context, error) {
	alive := c.AliveDevices()
	if len(alive) == 0 {
		return nil, fmt.Errorf("gpu: no surviving devices")
	}
	return &Context{
		NumDevices: len(alive),
		Model:      c.Model,
		prof:       c.prof,
		stats:      c.stats,
		faults:     c.faults,
		timeline:   c.timeline,
		phys:       alive,
	}, nil
}

// Repair clears the dead set and the straggler assignments, modeling a
// driver reset / device replacement between leases. Scheduled deaths
// that already fired stay consumed (they do not fire again); pending
// deaths and the transfer-fault stream stay armed. The fault tally is
// preserved (it is monotone).
func (c *Context) Repair() {
	if c.faults == nil {
		return
	}
	c.faults.mu.Lock()
	defer c.faults.mu.Unlock()
	for d := range c.faults.dead {
		c.faults.dead[d] = false
	}
	for d := range c.faults.slow {
		c.faults.slow[d] = 0
	}
}

// physOf maps a logical device index of this view to its physical id.
func (c *Context) physOf(d int) int {
	if c.phys == nil {
		return d
	}
	return c.phys[d]
}

// physDevices returns the physical device count backing this view.
func (c *Context) physDevices() int {
	if c.faults != nil {
		return c.faults.devices
	}
	if c.phys == nil {
		return c.NumDevices
	}
	max := 0
	for _, p := range c.phys {
		if p+1 > max {
			max = p + 1
		}
	}
	return max
}

// devIDs returns the physical ids of the first n logical devices — the
// ledger attribution of a charge made through this view.
func (c *Context) devIDs(n int) []int {
	ids := make([]int, n)
	for d := range ids {
		ids[d] = c.physOf(d)
	}
	return ids
}

func (f *faultState) deadPhys(p int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return p < len(f.dead) && f.dead[p]
}

// checkDeaths triggers any scheduled deaths whose time has come and, if
// a device of this view is dead, records a fault event and panics with
// *DeviceLostError. Called before every device-involving ledger charge;
// a nil fault state costs one pointer test.
func (c *Context) checkDeaths(phase string) {
	f := c.faults
	if f == nil || len(f.plan.Deaths) == 0 {
		return
	}
	// Deaths fire on the modeled clock. Under the synchronous schedule
	// that is the ledger's TotalTime (unchanged, so every existing fault
	// schedule replays byte-identically); under overlapped scheduling the
	// physical clock is the stream timeline's horizon — the same plan
	// fires at the times the overlapped execution actually reaches.
	now := c.stats.TotalTime()
	if c.timeline.overlapEnabled() {
		now = c.timeline.horizon()
	}
	f.mu.Lock()
	for i, d := range f.plan.Deaths {
		if !f.consumed[i] && now >= d.At && d.Device >= 0 && d.Device < len(f.dead) {
			f.consumed[i] = true
			if !f.dead[d.Device] {
				f.dead[d.Device] = true
				f.counts.DeviceDeaths++
				c.stats.addFault(phase, d.Device, "death", 0)
			}
		}
	}
	var lost = -1
	for d := 0; d < c.NumDevices && lost < 0; d++ {
		if p := c.physOf(d); p < len(f.dead) && f.dead[p] {
			lost = p
		}
	}
	f.mu.Unlock()
	if lost >= 0 {
		panic(&DeviceLostError{Device: lost, Phase: phase, At: now})
	}
}

// injectTransferFaults draws the seeded transfer-fault stream for one
// communication round of modeled duration t. Every failed attempt
// charges the wasted round plus the current backoff to the ledger's
// "fault" phase (virtual-time exponential backoff, capped) and to the
// stream timeline's fault lane; exhausting the policy panics with
// *TransferError. Returns the total stall (the retries' modeled time,
// which extends the round on its transfer streams) once an attempt
// succeeds.
func (c *Context) injectTransferFaults(phase string, t float64) float64 {
	f := c.faults
	if f == nil {
		return 0
	}
	f.mu.Lock()
	prob := f.plan.TransferFaultProb
	if prob <= 0 ||
		(f.plan.MaxTransferFaults > 0 && f.counts.TransferFaults >= f.plan.MaxTransferFaults) {
		f.mu.Unlock()
		return 0
	}
	policy := f.policy.defaults()
	attempt := 1
	backoff := policy.Backoff
	stall := 0.0
	for f.rng.Float64() < prob {
		f.counts.TransferFaults++
		if attempt >= policy.MaxAttempts {
			f.mu.Unlock()
			panic(&TransferError{Phase: phase, Attempts: attempt})
		}
		// The failed attempt wasted the round's time; the retry waits out
		// the backoff. Both are modeled time on the "fault" phase.
		f.counts.TransferRetries++
		f.counts.BackoffSeconds += backoff
		c.stats.addFault(phase, HostDevice, "transfer", t+backoff)
		c.timeline.chargeFault(t + backoff)
		stall += t + backoff
		attempt++
		backoff *= policy.Factor
		if backoff > policy.MaxBackoff {
			backoff = policy.MaxBackoff
		}
		if f.plan.MaxTransferFaults > 0 && f.counts.TransferFaults >= f.plan.MaxTransferFaults {
			break
		}
	}
	f.mu.Unlock()
	return stall
}

// stragglerFactor returns the slowdown of a physical device (1 when
// none) and tallies slowed kernels.
func (f *faultState) stragglerFactor(p int) float64 {
	if f == nil {
		return 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if p < len(f.slow) && f.slow[p] > 1 {
		f.counts.StragglerKernels++
		return f.slow[p]
	}
	return 1
}
