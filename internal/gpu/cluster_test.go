package gpu

import (
	"strings"
	"testing"
)

// clusterProfile is a 2-node × 2-device machine: PCIe-switch peer links
// inside each node, an easy-arithmetic fabric between them.
func clusterProfile() Profile {
	return Profile{
		Name:  "test-cluster",
		Model: M2090(),
		Topo:  Topology{Kind: TopoPCIeSwitch, PeerLatency: 5e-6, PeerBandwidth: 20e9},
		Cluster: Cluster{
			DevicesPerNode: 2,
			Fabric:         Fabric{Kind: FabricIBHDR, Latency: 10e-6, Bandwidth: 10e9},
		},
	}
}

func TestNodeOfAndNumNodes(t *testing.T) {
	c := NewContextWithProfile(4, clusterProfile())
	if got := c.NumNodes(); got != 2 {
		t.Fatalf("NumNodes = %d, want 2", got)
	}
	wantNode := []int{0, 0, 1, 1}
	for d, want := range wantNode {
		if got := c.NodeOf(d); got != want {
			t.Errorf("NodeOf(%d) = %d, want %d", d, got, want)
		}
	}
	// Single-node contexts report one node and device 0's node for all.
	s := NewContext(3, M2090())
	if s.NumNodes() != 1 || s.NodeOf(2) != 0 {
		t.Errorf("single-node: NumNodes=%d NodeOf(2)=%d, want 1/0", s.NumNodes(), s.NodeOf(2))
	}
}

// TestClusterPeerTiering: a same-node pair lands on BytesPeer at switch
// cost; a cross-node pair lands on BytesInterNode and pays the fabric.
func TestClusterPeerTiering(t *testing.T) {
	p := clusterProfile()
	const B = 1 << 20
	c := NewContextWithProfile(4, p)

	// Same node (0 -> 1): pure node-local switch round.
	before := c.Stats().TotalTime()
	c.PeerExchange("local", pair(4, 0, 1, B))
	got := c.Stats().TotalTime() - before
	want := p.Topo.PeerLatency + float64(B)/p.Topo.PeerBandwidth
	if !almostEq(got, want) {
		t.Errorf("same-node pair: got %g want %g", got, want)
	}
	ps := c.Stats().Phase("local")
	if ps.BytesPeer != B || ps.BytesInterNode != 0 {
		t.Errorf("same-node ledger: peer %d inter %d, want %d/0", ps.BytesPeer, ps.BytesInterNode, B)
	}

	// Cross node (0 -> 2): fabric leg only, no intra traffic.
	before = c.Stats().TotalTime()
	c.PeerExchange("cross", pair(4, 0, 2, B))
	got = c.Stats().TotalTime() - before
	fab := p.Cluster.Fabric
	want = fab.Latency + float64(B)/fab.Bandwidth
	if !almostEq(got, want) {
		t.Errorf("cross-node pair: got %g want %g", got, want)
	}
	ps = c.Stats().Phase("cross")
	if ps.BytesPeer != 0 || ps.BytesInterNode != B {
		t.Errorf("cross-node ledger: peer %d inter %d, want 0/%d", ps.BytesPeer, ps.BytesInterNode, B)
	}

	// Mixed round: the intra leg (slowest node) and the fabric leg are
	// sequential.
	tr := pair(4, 0, 1, B)
	tr[2][0] = B
	before = c.Stats().TotalTime()
	c.PeerExchange("mixed", tr)
	got = c.Stats().TotalTime() - before
	want = (p.Topo.PeerLatency + float64(B)/p.Topo.PeerBandwidth) +
		(fab.Latency + float64(B)/fab.Bandwidth)
	if !almostEq(got, want) {
		t.Errorf("mixed round: got %g want %g", got, want)
	}
	ps = c.Stats().Phase("mixed")
	if ps.BytesPeer != B || ps.BytesInterNode != B {
		t.Errorf("mixed ledger: peer %d inter %d, want %d/%d", ps.BytesPeer, ps.BytesInterNode, B, B)
	}
}

// TestClusterHostRound: a reduce round charges every byte on the host
// column and additionally charges remote nodes' shares to the fabric.
func TestClusterHostRound(t *testing.T) {
	p := clusterProfile()
	c := NewContextWithProfile(4, p)
	bytes := []int{100, 200, 300, 400}
	before := c.Stats().TotalTime()
	c.ReduceRound("red", bytes)
	got := c.Stats().TotalTime() - before
	// Node volumes: node0=300, node1=700. Local leg pays the most loaded
	// node link; the remote node's aggregate then crosses the fabric.
	fab := p.Cluster.Fabric
	want := (p.Model.Latency + 700/p.Model.Bandwidth) + (fab.Latency + 700/fab.Bandwidth)
	if !almostEq(got, want) {
		t.Errorf("clustered reduce: got %g want %g", got, want)
	}
	ps := c.Stats().Phase("red")
	if ps.BytesD2H != 1000 {
		t.Errorf("BytesD2H = %d, want 1000", ps.BytesD2H)
	}
	if ps.BytesInterNode != 700 {
		t.Errorf("BytesInterNode = %d, want 700 (node 1's share)", ps.BytesInterNode)
	}
	// Per-device: only the remote node's devices carry fabric bytes.
	for d, wantInter := range []int{0, 0, 300, 400} {
		dp := c.Stats().DevicePhase(d, "red")
		if dp.BytesInterNode != wantInter {
			t.Errorf("device %d BytesInterNode = %d, want %d", d, dp.BytesInterNode, wantInter)
		}
	}
}

// TestClusterSingleNodeDegenerate: a cluster whose devices all fit one
// node charges host rounds exactly like the flat model.
func TestClusterSingleNodeDegenerate(t *testing.T) {
	p := clusterProfile()
	p.Cluster.DevicesPerNode = 4 // all four devices on node 0
	c := NewContextWithProfile(4, p)
	flat := NewContext(4, p.Model)
	bytes := []int{100, 200, 300, 400}
	c.ReduceRound("x", bytes)
	flat.ReduceRound("x", bytes)
	a, b := c.Stats().Phase("x"), flat.Stats().Phase("x")
	if a.CommTime != b.CommTime || a.BytesD2H != b.BytesD2H {
		t.Errorf("one-node cluster reduce differs from flat: %v vs %v", a, b)
	}
	if a.BytesInterNode != 0 {
		t.Errorf("one-node cluster charged %d fabric bytes", a.BytesInterNode)
	}
}

// TestClusterRouteSymmetry: transposing the traffic matrix must not
// change the round cost (out/in swaps are max-invariant on both tiers).
func TestClusterRouteSymmetry(t *testing.T) {
	c := NewContextWithProfile(4, clusterProfile())
	tr := pair(4, 0, 1, 1000)
	tr[0][3] = 5000
	tr[2][1] = 700
	tt := make([][]int, 4)
	for i := range tt {
		tt[i] = make([]int, 4)
		for j := range tt[i] {
			tt[i][j] = tr[j][i]
		}
	}
	fwd, _ := c.routeCluster(tr)
	rev, _ := c.routeCluster(tt)
	if !almostEq(fwd, rev) {
		t.Errorf("cluster route asymmetric: fwd %g rev %g", fwd, rev)
	}
}

// TestClusterSurvivorsKeepNodes: after a device death, the Survivors
// view routes on physical node membership — physical device 2 stays on
// node 1 even though it is logical device 1 of the view.
func TestClusterSurvivorsKeepNodes(t *testing.T) {
	p := clusterProfile()
	const B = 1 << 20
	c := NewContextWithProfile(4, p)
	c.InjectFaults(FaultPlan{Seed: 1, Deaths: []DeviceDeath{{Device: 1, At: 0}}})
	func() {
		defer func() { recover() }()
		c.ReduceRound("x", []int{8, 8, 8, 8})
	}()
	surv, err := c.Survivors()
	if err != nil {
		t.Fatal(err)
	}
	if surv.NumDevices != 3 {
		t.Fatalf("survivors: %d devices, want 3", surv.NumDevices)
	}
	// View logical 0,1,2 = physical 0,2,3 = nodes 0,1,1.
	for d, want := range []int{0, 1, 1} {
		if got := surv.NodeOf(d); got != want {
			t.Errorf("survivor NodeOf(%d) = %d, want %d", d, got, want)
		}
	}
	// Logical 0 -> 1 is physical 0 -> 2: cross-node, must pay the fabric.
	before := surv.Stats().TotalTime()
	surv.PeerExchange("surv", pair(3, 0, 1, B))
	got := surv.Stats().TotalTime() - before
	fab := p.Cluster.Fabric
	want := fab.Latency + float64(B)/fab.Bandwidth
	if !almostEq(got, want) {
		t.Errorf("survivor cross-node pair: got %g want %g", got, want)
	}
	if ps := surv.Stats().Phase("surv"); ps.BytesInterNode != B {
		t.Errorf("survivor fabric bytes = %d, want %d", ps.BytesInterNode, B)
	}
}

// TestInterNodeColumnGating: the bytesInter report column appears only
// on ledgers that actually crossed the fabric.
func TestInterNodeColumnGating(t *testing.T) {
	flat := NewContext(2, M2090())
	flat.ReduceRound("x", []int{8, 8})
	if strings.Contains(flat.Stats().String(), "bytesInter") {
		t.Error("single-node ledger rendered a bytesInter column")
	}
	cl := NewContextWithProfile(4, clusterProfile())
	cl.ReduceRound("x", []int{8, 8, 8, 8})
	if !strings.Contains(cl.Stats().String(), "bytesInter") {
		t.Error("clustered ledger missing the bytesInter column")
	}
	if !strings.Contains(cl.Stats().DeviceString(), "bytesInter") {
		t.Error("clustered device breakdown missing the bytesInter column")
	}
}

// TestClusterMonotoneInBytes: doubling any pair's volume must not reduce
// the round cost on either tier.
func TestClusterMonotoneInBytes(t *testing.T) {
	c := NewContextWithProfile(4, clusterProfile())
	base := pair(4, 0, 1, 1000)
	base[0][2] = 2000
	base[3][1] = 500
	t0, _ := c.routeCluster(base)
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			if s == d {
				continue
			}
			tr := pair(4, 0, 1, 1000)
			tr[0][2] = 2000
			tr[3][1] = 500
			tr[s][d] += 4000
			t1, _ := c.routeCluster(tr)
			if t1 < t0-1e-18 {
				t.Errorf("adding bytes on %d->%d reduced cost: %g -> %g", s, d, t0, t1)
			}
		}
	}
}

func TestFabricValidAndString(t *testing.T) {
	f := Fabric{Kind: FabricIBHDR, Latency: 5e-6, Bandwidth: 25e9}
	if !f.Valid() {
		t.Error("valid fabric rejected")
	}
	for _, bad := range []Fabric{
		{Latency: -1, Bandwidth: 1e9},
		{Latency: 0, Bandwidth: 0},
		{Latency: 0, Bandwidth: -5},
	} {
		if bad.Valid() {
			t.Errorf("invalid fabric accepted: %+v", bad)
		}
	}
	if s := f.String(); !strings.Contains(s, "ib-hdr") {
		t.Errorf("Fabric.String() = %q, want kind in it", s)
	}
}
