package gpu

import (
	"math"
	"testing"
)

// ringProfile is a 4-device NVLink-ring machine with easy constants for
// hand-computing expected round times.
func ringProfile() Profile {
	return Profile{
		Name:  "test-ring",
		Model: M2090(),
		Topo:  Topology{Kind: TopoNVLinkRing, PeerLatency: 2e-6, PeerBandwidth: 100e9},
	}
}

func switchProfile() Profile {
	return Profile{
		Name:  "test-switch",
		Model: M2090(),
		Topo:  Topology{Kind: TopoPCIeSwitch, PeerLatency: 5e-6, PeerBandwidth: 20e9},
	}
}

func allToAllProfile() Profile {
	return Profile{
		Name:  "test-a2a",
		Model: M2090(),
		Topo:  Topology{Kind: TopoAllToAll, PeerLatency: 3e-6, PeerBandwidth: 200e9},
	}
}

// pair builds an ng x ng traffic matrix with b bytes on s->d.
func pair(ng, s, d, b int) [][]int {
	tr := make([][]int, ng)
	for i := range tr {
		tr[i] = make([]int, ng)
	}
	tr[s][d] = b
	return tr
}

func peerCost(c *Context, traffic [][]int) float64 {
	before := c.Stats().TotalTime()
	c.PeerExchange("x", traffic)
	return c.Stats().TotalTime() - before
}

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-15*(1+math.Abs(a)+math.Abs(b)) }

// TestRingRouting checks the ring formula against hand computations:
// hops of the shortest arc times the peer latency, plus the most loaded
// directed link.
func TestRingRouting(t *testing.T) {
	p := ringProfile()
	const B = 1 << 20
	c := NewContextWithProfile(4, p)

	// Neighbors: 1 hop.
	want := p.Topo.PeerLatency + float64(B)/p.Topo.PeerBandwidth
	if got := peerCost(c, pair(4, 0, 1, B)); !almostEq(got, want) {
		t.Errorf("0->1: got %g want %g", got, want)
	}
	// Across the ring: 2 hops, same link load.
	want = 2*p.Topo.PeerLatency + float64(B)/p.Topo.PeerBandwidth
	if got := peerCost(c, pair(4, 0, 2, B)); !almostEq(got, want) {
		t.Errorf("0->2: got %g want %g", got, want)
	}
	// 3->0 is 1 hop clockwise (wrap).
	want = p.Topo.PeerLatency + float64(B)/p.Topo.PeerBandwidth
	if got := peerCost(c, pair(4, 3, 0, B)); !almostEq(got, want) {
		t.Errorf("3->0: got %g want %g", got, want)
	}
	// All four devices send B to their clockwise neighbor concurrently:
	// every link carries B, one hop.
	tr := make([][]int, 4)
	for s := range tr {
		tr[s] = make([]int, 4)
		tr[s][(s+1)%4] = B
	}
	want = p.Topo.PeerLatency + float64(B)/p.Topo.PeerBandwidth
	if got := peerCost(c, tr); !almostEq(got, want) {
		t.Errorf("cw shift: got %g want %g", got, want)
	}
}

func TestSwitchRouting(t *testing.T) {
	p := switchProfile()
	const B = 1 << 20
	c := NewContextWithProfile(4, p)
	// Two disjoint pairs cross the switch concurrently: each link sees B
	// in one direction, so the round costs one latency plus B over one
	// link — not 2B.
	tr := pair(4, 0, 1, B)
	tr[2][3] = B
	want := p.Topo.PeerLatency + float64(B)/p.Topo.PeerBandwidth
	if got := peerCost(c, tr); !almostEq(got, want) {
		t.Errorf("disjoint pairs: got %g want %g", got, want)
	}
	// Two senders into one receiver: the receiver's in-link carries 2B.
	tr = pair(4, 0, 1, B)
	tr[2][1] = B
	want = p.Topo.PeerLatency + float64(2*B)/p.Topo.PeerBandwidth
	if got := peerCost(c, tr); !almostEq(got, want) {
		t.Errorf("fan-in: got %g want %g", got, want)
	}
}

func TestAllToAllRouting(t *testing.T) {
	p := allToAllProfile()
	const B = 1 << 20
	c := NewContextWithProfile(4, p)
	// Every ordered pair ships B concurrently on its own link: the round
	// costs one pair, regardless of how many pairs talk.
	tr := make([][]int, 4)
	for s := range tr {
		tr[s] = make([]int, 4)
		for d := range tr[s] {
			if s != d {
				tr[s][d] = B
			}
		}
	}
	want := p.Topo.PeerLatency + float64(B)/p.Topo.PeerBandwidth
	if got := peerCost(c, tr); !almostEq(got, want) {
		t.Errorf("full exchange: got %g want %g", got, want)
	}
}

// TestHostHubPeerFallback: on the paper's host-hub machine a peer
// exchange bounces through the host — two rounds, reduce then
// broadcast, charged at the host-link constants.
func TestHostHubPeerFallback(t *testing.T) {
	c := NewContext(3, M2090())
	const B = 1 << 20
	before := c.Stats().Phase("x")
	c.PeerExchange("x", pair(3, 0, 2, B))
	ps := c.Stats().Phase("x")
	if got := ps.Rounds - before.Rounds; got != 2 {
		t.Errorf("host-hub peer exchange charged %d rounds, want 2", got)
	}
	if ps.BytesPeer != 0 {
		t.Errorf("host-hub routed %d bytes peer-to-peer", ps.BytesPeer)
	}
	if ps.BytesD2H != B || ps.BytesH2D != B {
		t.Errorf("host bounce volumes: D2H %d H2D %d, want %d each", ps.BytesD2H, ps.BytesH2D, B)
	}
}

// TestRingRerouteAfterDeath is the regression test for the remapped-view
// routing fix: a Survivors view must route over the surviving devices'
// PHYSICAL ring positions, so logical neighbors separated by a dead
// device pay the real hop count — and Repair restores the short route.
func TestRingRerouteAfterDeath(t *testing.T) {
	p := ringProfile()
	const B = 1 << 20
	c := NewContextWithProfile(4, p)
	c.InjectFaults(FaultPlan{Seed: 1, Deaths: []DeviceDeath{{Device: 1, At: 0}}})

	// Trip the scheduled death (the charge panics with DeviceLostError).
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("death at t=0 did not fire")
			} else if _, ok := r.(*DeviceLostError); !ok {
				panic(r)
			}
		}()
		c.ReduceRound("x", []int{8, 8, 8, 8})
	}()

	surv, err := c.Survivors()
	if err != nil {
		t.Fatal(err)
	}
	if surv.NumDevices != 3 {
		t.Fatalf("survivors: %d devices, want 3", surv.NumDevices)
	}

	// Logical 0 and 1 of the view are physical 0 and 2: still 2 hops on
	// the 4-ring even though they are adjacent in the view. The buggy
	// host-shaped remap charged this as a 1-hop neighbor transfer.
	want := 2*p.Topo.PeerLatency + float64(B)/p.Topo.PeerBandwidth
	if got := peerCost(surv, pair(3, 0, 1, B)); !almostEq(got, want) {
		t.Errorf("survivor 0->1 (phys 0->2): got %g want %g (2 hops)", got, want)
	}
	// Logical 1->2 is physical 2->3: genuine neighbors, 1 hop.
	want = p.Topo.PeerLatency + float64(B)/p.Topo.PeerBandwidth
	if got := peerCost(surv, pair(3, 1, 2, B)); !almostEq(got, want) {
		t.Errorf("survivor 1->2 (phys 2->3): got %g want %g (1 hop)", got, want)
	}

	// After repair the full machine routes 0->1 as neighbors again.
	c.Repair()
	if got := peerCost(c, pair(4, 0, 1, B)); !almostEq(got, want) {
		t.Errorf("post-repair 0->1: got %g want %g (1 hop)", got, want)
	}
}

// TestSurvivorsKeepProfile: deriving a view must carry the profile, not
// fall back to the host-hub default.
func TestSurvivorsKeepProfile(t *testing.T) {
	c := NewContextWithProfile(4, ringProfile())
	c.InjectFaults(FaultPlan{Seed: 1, Deaths: []DeviceDeath{{Device: 3, At: 0}}})
	func() {
		defer func() { recover() }()
		c.ReduceRound("x", []int{8, 8, 8, 8})
	}()
	surv, err := c.Survivors()
	if err != nil {
		t.Fatal(err)
	}
	if got := surv.Profile().Name; got != "test-ring" {
		t.Errorf("survivors profile %q, want test-ring", got)
	}
	if !surv.Topology().PeerToPeer() {
		t.Error("survivors lost the peer-to-peer topology")
	}
}
