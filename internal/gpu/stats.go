package gpu

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

type direction int

const (
	dirD2H direction = iota
	dirH2D
)

// PhaseStats aggregates everything charged to one named phase (e.g.
// "spmv", "mpk", "borth", "tsqr", "lsq").
type PhaseStats struct {
	Rounds    int // communication rounds (latency events)
	Messages  int // individual device messages
	BytesD2H  int // device-to-host volume
	BytesH2D  int // host-to-device volume
	BytesPeer int // device-to-device volume routed peer-to-peer
	// BytesInterNode is the volume that crossed the inter-node fabric of
	// a clustered profile: cross-node pairs of a routed exchange, plus
	// the aggregated remote share of host rounds (those bytes also appear
	// in BytesD2H/H2D — they really do travel twice, once over the node's
	// local tier and once over the fabric). Zero on single-node profiles.
	BytesInterNode int
	// BytesFP32 and BytesCompressed classify wire volume by element
	// width: the share of the path columns above that traveled as FP32
	// (4-byte) or compressed bfloat16 (2-byte) elements. They are tags,
	// not extra paths — a reduced-width byte is counted once in its path
	// column (D2H/H2D/Peer/InterNode, already at the narrow size) and
	// once here. Both stay zero for all-FP64 runs, so pre-precision
	// ledgers and report tables are byte-identical.
	BytesFP32       int
	BytesCompressed int
	CommTime        float64 // modeled seconds of communication
	DeviceTime  float64 // modeled seconds of device compute (max over devices per kernel)
	DeviceFlops float64 // total flops summed over devices
	HostTime    float64 // modeled seconds of host compute
	HostFlops   float64
	Kernels     int // device kernel launches
}

// Total returns the modeled wall time of the phase.
func (p PhaseStats) Total() float64 { return p.CommTime + p.DeviceTime + p.HostTime }

// Bytes returns the total wire volume over every path: both host
// directions, peer-to-peer, and the inter-node fabric. A byte that hops
// two tiers (node-local then fabric) counts once per wire it crossed.
func (p PhaseStats) Bytes() int {
	return p.BytesD2H + p.BytesH2D + p.BytesPeer + p.BytesInterNode
}

// DeviceGflops returns the achieved device compute rate of the phase in
// Gflop/s (zero when no device time was charged).
func (p PhaseStats) DeviceGflops() float64 {
	if p.DeviceTime <= 0 {
		return 0
	}
	return p.DeviceFlops / p.DeviceTime / 1e9
}

// PhaseFault is the ledger phase charged with fault-recovery overhead:
// the wasted time of faulted transfer rounds and their retry backoff.
// Fault-free runs never create it, so existing phase tables are
// unchanged unless a fault plan actually fired.
const PhaseFault = "fault"

// Event is one traced ledger entry, in program order. Kind is "reduce",
// "broadcast", "kernel", "host", or a fault marker ("fault-death",
// "fault-transfer") recorded by the injection layer; fault events keep
// the phase of the operation that faulted.
//
// Device attributes the event to one simulated device: kernel events
// carry the device that executed them, while communication rounds and
// host compute use HostDevice (the shared bus / CPU is not a device).
// Step groups the events charged by a single ledger call (one kernel
// launch fans out into one event per device, all sharing a Step), so
// exporters can lay concurrent per-device slices side by side instead of
// serializing them.
type Event struct {
	Seq    int
	Step   int
	Device int
	Phase  string
	Kind   string
	Bytes  int
	Time   float64
}

// HostDevice is the Event.Device value of entries that do not belong to a
// particular device: communication rounds and host compute.
const HostDevice = -1

// Stats is a thread-safe ledger of per-phase modeled costs, optionally
// recording an event trace (a bounded ring buffer) for debugging and the
// CLI's -trace flag. Alongside the per-phase aggregates it keeps a
// per-device breakdown (DevicePhase) so load imbalance across the
// simulated GPUs is observable, not just the critical-path maximum.
type Stats struct {
	mu        sync.Mutex
	phases    map[string]*PhaseStats
	devPhases []map[string]*PhaseStats

	traceCap  int
	traceSeq  int // next event id, monotone across EnableTrace re-arms
	traceStep int // next launch-group id
	traceHead int // ring overwrite cursor (index of the oldest entry once full)
	traceRing []Event
}

// NewStats returns an empty ledger.
func NewStats() *Stats {
	return &Stats{phases: make(map[string]*PhaseStats)}
}

// EnableTrace starts recording events into a ring buffer holding the
// last limit entries. Re-arming mid-trace discards the recorded events
// and resets the ring cursor; event Seq numbers keep counting.
func (s *Stats) EnableTrace(limit int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if limit < 1 {
		limit = 1
	}
	s.traceCap = limit
	s.traceRing = s.traceRing[:0]
	s.traceHead = 0
}

// Trace returns the recorded events in order (oldest first).
func (s *Stats) Trace() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.traceRing))
	copy(out, s.traceRing)
	sortEventsBySeq(out)
	return out
}

func sortEventsBySeq(ev []Event) {
	sort.Slice(ev, func(a, b int) bool { return ev[a].Seq < ev[b].Seq })
}

// record appends an event to the ring buffer (caller holds the lock).
// The ring position comes from a dedicated cursor, not from Seq, so the
// oldest entry is always the one overwritten even after EnableTrace
// re-armed the ring mid-run.
func (s *Stats) record(e Event) {
	if s.traceCap == 0 {
		return
	}
	e.Seq = s.traceSeq
	s.traceSeq++
	if len(s.traceRing) < s.traceCap {
		s.traceRing = append(s.traceRing, e)
		return
	}
	s.traceRing[s.traceHead] = e
	s.traceHead = (s.traceHead + 1) % s.traceCap
}

// nextStep allocates a launch-group id (caller holds the lock).
func (s *Stats) nextStep() int {
	step := s.traceStep
	s.traceStep++
	return step
}

func (s *Stats) get(phase string) *PhaseStats {
	p, ok := s.phases[phase]
	if !ok {
		p = &PhaseStats{}
		s.phases[phase] = p
	}
	return p
}

// devGet returns device d's stats for a phase (caller holds the lock).
func (s *Stats) devGet(d int, phase string) *PhaseStats {
	for len(s.devPhases) <= d {
		s.devPhases = append(s.devPhases, make(map[string]*PhaseStats))
	}
	p, ok := s.devPhases[d][phase]
	if !ok {
		p = &PhaseStats{}
		s.devPhases[d][phase] = p
	}
	return p
}

// tagElem classifies one charge's byte volume by element width (see
// PhaseStats.BytesFP32/BytesCompressed). Elem64 — every historical
// charge — is a no-op.
func tagElem(p *PhaseStats, elem Elem, bytes int) {
	switch elem {
	case Elem32:
		p.BytesFP32 += bytes
	case ElemBF16:
		p.BytesCompressed += bytes
	}
}

// addComm charges one communication round: bytes[d] is logical device
// d's share, devs[d] its physical id on the ledger, t the modeled time
// of the whole round. Every participating device is occupied for the
// full round, so each per-device ledger is charged t. elem tags the
// round's element width on the precision columns.
func (s *Stats) addComm(phase string, dir direction, devs, bytes []int, t float64, elem Elem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.get(phase)
	p.Rounds++
	p.Messages += len(bytes)
	var total int
	for _, b := range bytes {
		total += b
	}
	kind := "reduce"
	if dir == dirD2H {
		p.BytesD2H += total
	} else {
		p.BytesH2D += total
		kind = "broadcast"
	}
	tagElem(p, elem, total)
	p.CommTime += t
	for d, b := range bytes {
		dp := s.devGet(devs[d], phase)
		dp.Rounds++
		dp.Messages++
		if dir == dirD2H {
			dp.BytesD2H += b
		} else {
			dp.BytesH2D += b
		}
		tagElem(dp, elem, b)
		dp.CommTime += t
	}
	s.record(Event{Step: s.nextStep(), Device: HostDevice, Phase: phase, Kind: kind, Bytes: total, Time: t})
}

// addCompute charges one parallel kernel launch: ts[d] and work[d] are
// logical device d's modeled time and cost shape, devs[d] its physical
// id. The phase aggregate advances by the slowest device (the devices
// run concurrently); the per-device ledgers record each device's own
// time, which is what makes load imbalance visible. One trace event is
// recorded per device, all sharing a launch Step.
func (s *Stats) addCompute(phase string, devs []int, ts []float64, work []Work) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.get(phase)
	var max float64
	for _, t := range ts {
		if t > max {
			max = t
		}
	}
	p.DeviceTime += max
	p.Kernels++
	for _, w := range work {
		p.DeviceFlops += w.Flops
	}
	step := s.nextStep()
	for d := range work {
		dp := s.devGet(devs[d], phase)
		dp.DeviceTime += ts[d]
		dp.DeviceFlops += work[d].Flops
		dp.Kernels++
		s.record(Event{Step: step, Device: devs[d], Phase: phase, Kind: "kernel", Bytes: int(work[d].Bytes), Time: ts[d]})
	}
}

// addPeer charges one peer-to-peer exchange round: traffic[s][d] is the
// volume logical device s shipped to logical device d, devs the physical
// ids, t the routed time of the whole round. Every participating device
// is occupied for the full round; each device's ledger is charged the
// bytes it sent plus the bytes it received.
func (s *Stats) addPeer(phase string, devs []int, traffic [][]int, t float64, elem Elem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.get(phase)
	p.Rounds++
	p.CommTime += t
	total := 0
	sent := make([]int, len(traffic))
	recv := make([]int, len(traffic))
	for a, row := range traffic {
		for b, v := range row {
			if a == b || v <= 0 {
				continue
			}
			p.Messages++
			total += v
			sent[a] += v
			recv[b] += v
		}
	}
	p.BytesPeer += total
	tagElem(p, elem, total)
	for d := range traffic {
		dp := s.devGet(devs[d], phase)
		dp.Rounds++
		dp.Messages++
		dp.BytesPeer += sent[d] + recv[d]
		tagElem(dp, elem, sent[d]+recv[d])
		dp.CommTime += t
	}
	s.record(Event{Step: s.nextStep(), Device: HostDevice, Phase: phase, Kind: "peer", Bytes: total, Time: t})
}

// addPeerTiered charges one exchange round routed over a two-tier
// cluster interconnect: same-node pairs of the traffic matrix land in
// BytesPeer (the node-local tier), cross-node pairs in BytesInterNode
// (the fabric). nodeOf[d] is logical device d's node. One trace event is
// recorded for the whole round, like addPeer.
func (s *Stats) addPeerTiered(phase string, devs []int, traffic [][]int, nodeOf []int, t float64, elem Elem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.get(phase)
	p.Rounds++
	p.CommTime += t
	total := 0
	sentLocal := make([]int, len(traffic))
	recvLocal := make([]int, len(traffic))
	sentInter := make([]int, len(traffic))
	recvInter := make([]int, len(traffic))
	for a, row := range traffic {
		for b, v := range row {
			if a == b || v <= 0 {
				continue
			}
			p.Messages++
			total += v
			if nodeOf[a] == nodeOf[b] {
				p.BytesPeer += v
				sentLocal[a] += v
				recvLocal[b] += v
			} else {
				p.BytesInterNode += v
				sentInter[a] += v
				recvInter[b] += v
			}
		}
	}
	tagElem(p, elem, total)
	for d := range traffic {
		dp := s.devGet(devs[d], phase)
		dp.Rounds++
		dp.Messages++
		dp.BytesPeer += sentLocal[d] + recvLocal[d]
		dp.BytesInterNode += sentInter[d] + recvInter[d]
		tagElem(dp, elem, sentLocal[d]+recvLocal[d]+sentInter[d]+recvInter[d])
		dp.CommTime += t
	}
	s.record(Event{Step: s.nextStep(), Device: HostDevice, Phase: phase, Kind: "peer", Bytes: total, Time: t})
}

// addCommTiered is addComm for a clustered context: the host round's
// full volume stays on the D2H/H2D column (every byte crosses its own
// node's local tier), while each remote-node device's share is
// additionally charged to BytesInterNode — the second hop those bytes
// take over the fabric to reach the root node's host.
func (s *Stats) addCommTiered(phase string, dir direction, devs, bytes []int, nodeOf []int, t float64, elem Elem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.get(phase)
	p.Rounds++
	p.Messages += len(bytes)
	var total, inter int
	for d, b := range bytes {
		total += b
		if nodeOf[d] != 0 {
			inter += b
		}
	}
	kind := "reduce"
	if dir == dirD2H {
		p.BytesD2H += total
	} else {
		p.BytesH2D += total
		kind = "broadcast"
	}
	p.BytesInterNode += inter
	tagElem(p, elem, total)
	p.CommTime += t
	for d, b := range bytes {
		dp := s.devGet(devs[d], phase)
		dp.Rounds++
		dp.Messages++
		if dir == dirD2H {
			dp.BytesD2H += b
		} else {
			dp.BytesH2D += b
		}
		if nodeOf[d] != 0 {
			dp.BytesInterNode += b
		}
		tagElem(dp, elem, b)
		dp.CommTime += t
	}
	s.record(Event{Step: s.nextStep(), Device: HostDevice, Phase: phase, Kind: kind, Bytes: total, Time: t})
}

// addFault charges fault-recovery overhead: t modeled seconds on the
// PhaseFault ledger row (zero for a death marker) and one trace event
// that keeps the faulted operation's phase. detail is "death" or
// "transfer".
func (s *Stats) addFault(phase string, device int, detail string, t float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.get(PhaseFault)
	p.Rounds++
	p.CommTime += t
	if device >= 0 {
		dp := s.devGet(device, PhaseFault)
		dp.Rounds++
		dp.CommTime += t
	}
	s.record(Event{Step: s.nextStep(), Device: device, Phase: phase, Kind: "fault-" + detail, Time: t})
}

func (s *Stats) addHost(phase string, t, flops float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.get(phase)
	p.HostTime += t
	p.HostFlops += flops
	s.record(Event{Step: s.nextStep(), Device: HostDevice, Phase: phase, Kind: "host", Bytes: 0, Time: t})
}

// Phase returns a copy of the named phase's stats (zero value if the
// phase never ran).
func (s *Stats) Phase(name string) PhaseStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.phases[name]; ok {
		return *p
	}
	return PhaseStats{}
}

// DevicePhase returns a copy of device d's share of the named phase
// (zero value if the device never touched the phase). DeviceTime is the
// device's own busy time, not the launch maximum, so summing DevicePhase
// over devices can exceed Phase(name).DeviceTime — that surplus is
// exactly the parallelism.
func (s *Stats) DevicePhase(d int, name string) PhaseStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d >= 0 && d < len(s.devPhases) {
		if p, ok := s.devPhases[d][name]; ok {
			return *p
		}
	}
	return PhaseStats{}
}

// TrackedDevices returns the number of devices that have per-device
// entries (the highest charged device id plus one).
func (s *Stats) TrackedDevices() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.devPhases)
}

// Phases returns the phase names in sorted order.
func (s *Stats) Phases() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.phases))
	for n := range s.phases {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalTime returns the modeled time summed over all phases. The sum
// runs in sorted phase order so repeated calls on the same ledger return
// bit-identical values (map iteration order would perturb the last ULP,
// breaking the telemetry stream's monotone-clock guarantee).
func (s *Stats) TotalTime() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.phases))
	for n := range s.phases {
		names = append(names, n)
	}
	sort.Strings(names)
	var t float64
	for _, n := range names {
		p := s.phases[n]
		t += p.CommTime + p.DeviceTime + p.HostTime
	}
	return t
}

func addInto(p, op *PhaseStats) {
	p.Rounds += op.Rounds
	p.Messages += op.Messages
	p.BytesD2H += op.BytesD2H
	p.BytesH2D += op.BytesH2D
	p.BytesPeer += op.BytesPeer
	p.BytesInterNode += op.BytesInterNode
	p.BytesFP32 += op.BytesFP32
	p.BytesCompressed += op.BytesCompressed
	p.CommTime += op.CommTime
	p.DeviceTime += op.DeviceTime
	p.DeviceFlops += op.DeviceFlops
	p.HostTime += op.HostTime
	p.HostFlops += op.HostFlops
	p.Kernels += op.Kernels
}

// Merge adds other's counters into s (used to combine per-restart
// ledgers), including the per-device breakdowns.
func (s *Stats) Merge(other *Stats) {
	other.mu.Lock()
	defer other.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, op := range other.phases {
		addInto(s.get(name), op)
	}
	for d, phases := range other.devPhases {
		for name, op := range phases {
			addInto(s.devGet(d, name), op)
		}
	}
}

// hasPeerTraffic reports whether any phase routed bytes peer-to-peer.
// It gates the extra bytesP2P report column, so host-routed profiles
// (the paper's machine, and every pre-profile golden) render exactly the
// historical table.
func (s *Stats) hasPeerTraffic() bool {
	for _, name := range s.Phases() {
		if s.Phase(name).BytesPeer > 0 {
			return true
		}
	}
	return false
}

// hasInterNodeTraffic reports whether any phase crossed the inter-node
// fabric; it gates the bytesInter column the way hasPeerTraffic gates
// bytesP2P, so single-node ledgers render the historical table.
func (s *Stats) hasInterNodeTraffic() bool {
	for _, name := range s.Phases() {
		if s.Phase(name).BytesInterNode > 0 {
			return true
		}
	}
	return false
}

// hasFP32Traffic reports whether any phase moved FP32-width wire
// volume; like hasPeerTraffic it gates the bytesFP32 report column, so
// all-FP64 ledgers render exactly the historical table.
func (s *Stats) hasFP32Traffic() bool {
	for _, name := range s.Phases() {
		if s.Phase(name).BytesFP32 > 0 {
			return true
		}
	}
	return false
}

// hasCompressedTraffic gates the bytesComp column the same way for
// bfloat16-compressed transfers.
func (s *Stats) hasCompressedTraffic() bool {
	for _, name := range s.Phases() {
		if s.Phase(name).BytesCompressed > 0 {
			return true
		}
	}
	return false
}

// String renders a compact per-phase table. A bytesP2P column appears
// only when some phase actually moved peer-to-peer traffic, a
// bytesInter column only when some phase crossed the inter-node fabric,
// and bytesFP32/bytesComp columns only when some transfer ran at a
// reduced element width.
func (s *Stats) String() string {
	var b strings.Builder
	peer := s.hasPeerTraffic()
	inter := s.hasInterNodeTraffic()
	fp32 := s.hasFP32Traffic()
	comp := s.hasCompressedTraffic()
	peerHdr, peerCell := "", ""
	interHdr, interCell := "", ""
	fp32Hdr, fp32Cell := "", ""
	compHdr, compCell := "", ""
	if peer {
		peerHdr = fmt.Sprintf(" %12s", "bytesP2P")
	}
	if inter {
		interHdr = fmt.Sprintf(" %12s", "bytesInter")
	}
	if fp32 {
		fp32Hdr = fmt.Sprintf(" %12s", "bytesFP32")
	}
	if comp {
		compHdr = fmt.Sprintf(" %12s", "bytesComp")
	}
	fmt.Fprintf(&b, "%-10s %8s %8s %12s %12s%s%s%s%s %10s %10s %10s %8s %12s %10s\n",
		"phase", "rounds", "msgs", "bytesD2H", "bytesH2D", peerHdr, interHdr, fp32Hdr, compHdr, "comm(ms)", "dev(ms)", "host(ms)",
		"kernels", "devflops", "Gflop/s")
	for _, name := range s.Phases() {
		p := s.Phase(name)
		if peer {
			peerCell = fmt.Sprintf(" %12d", p.BytesPeer)
		}
		if inter {
			interCell = fmt.Sprintf(" %12d", p.BytesInterNode)
		}
		if fp32 {
			fp32Cell = fmt.Sprintf(" %12d", p.BytesFP32)
		}
		if comp {
			compCell = fmt.Sprintf(" %12d", p.BytesCompressed)
		}
		fmt.Fprintf(&b, "%-10s %8d %8d %12d %12d%s%s%s%s %10.3f %10.3f %10.3f %8d %12.3e %10.2f\n",
			name, p.Rounds, p.Messages, p.BytesD2H, p.BytesH2D, peerCell, interCell, fp32Cell, compCell,
			p.CommTime*1e3, p.DeviceTime*1e3, p.HostTime*1e3,
			p.Kernels, p.DeviceFlops, p.DeviceGflops())
	}
	return b.String()
}

// DeviceString renders the per-device breakdown of every phase: one block
// per device that did work, showing where each device's busy time went.
// Devices run concurrently, so a device whose dev(ms) column trails the
// others was idle for the difference — the load-imbalance view of
// Figures 6-8.
func (s *Stats) DeviceString() string {
	var b strings.Builder
	peer := s.hasPeerTraffic()
	inter := s.hasInterNodeTraffic()
	fp32 := s.hasFP32Traffic()
	comp := s.hasCompressedTraffic()
	peerHdr, peerCell := "", ""
	interHdr, interCell := "", ""
	fp32Hdr, fp32Cell := "", ""
	compHdr, compCell := "", ""
	if peer {
		peerHdr = fmt.Sprintf(" %12s", "bytesP2P")
	}
	if inter {
		interHdr = fmt.Sprintf(" %12s", "bytesInter")
	}
	if fp32 {
		fp32Hdr = fmt.Sprintf(" %12s", "bytesFP32")
	}
	if comp {
		compHdr = fmt.Sprintf(" %12s", "bytesComp")
	}
	nd := s.TrackedDevices()
	for d := 0; d < nd; d++ {
		fmt.Fprintf(&b, "device %d:\n", d)
		fmt.Fprintf(&b, "  %-10s %8s %12s %12s%s%s%s%s %10s %10s %8s %10s\n",
			"phase", "rounds", "bytesD2H", "bytesH2D", peerHdr, interHdr, fp32Hdr, compHdr, "comm(ms)", "dev(ms)", "kernels", "Gflop/s")
		for _, name := range s.Phases() {
			p := s.DevicePhase(d, name)
			if p == (PhaseStats{}) {
				continue
			}
			if peer {
				peerCell = fmt.Sprintf(" %12d", p.BytesPeer)
			}
			if inter {
				interCell = fmt.Sprintf(" %12d", p.BytesInterNode)
			}
			if fp32 {
				fp32Cell = fmt.Sprintf(" %12d", p.BytesFP32)
			}
			if comp {
				compCell = fmt.Sprintf(" %12d", p.BytesCompressed)
			}
			fmt.Fprintf(&b, "  %-10s %8d %12d %12d%s%s%s%s %10.3f %10.3f %8d %10.2f\n",
				name, p.Rounds, p.BytesD2H, p.BytesH2D, peerCell, interCell, fp32Cell, compCell,
				p.CommTime*1e3, p.DeviceTime*1e3, p.Kernels, p.DeviceGflops())
		}
	}
	return b.String()
}
