package gpu

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

type direction int

const (
	dirD2H direction = iota
	dirH2D
)

// PhaseStats aggregates everything charged to one named phase (e.g.
// "spmv", "mpk", "borth", "tsqr", "lsq").
type PhaseStats struct {
	Rounds      int     // communication rounds (latency events)
	Messages    int     // individual device messages
	BytesD2H    int     // device-to-host volume
	BytesH2D    int     // host-to-device volume
	CommTime    float64 // modeled seconds of communication
	DeviceTime  float64 // modeled seconds of device compute (max over devices per kernel)
	DeviceFlops float64 // total flops summed over devices
	HostTime    float64 // modeled seconds of host compute
	HostFlops   float64
	Kernels     int // device kernel launches
}

// Total returns the modeled wall time of the phase.
func (p PhaseStats) Total() float64 { return p.CommTime + p.DeviceTime + p.HostTime }

// Bytes returns the total transferred volume in both directions.
func (p PhaseStats) Bytes() int { return p.BytesD2H + p.BytesH2D }

// Event is one traced ledger entry, in program order. Kind is "reduce",
// "broadcast", "kernel", or "host".
type Event struct {
	Seq   int
	Phase string
	Kind  string
	Bytes int
	Time  float64
}

// Stats is a thread-safe ledger of per-phase modeled costs, optionally
// recording an event trace (a bounded ring buffer) for debugging and the
// CLI's -trace flag.
type Stats struct {
	mu     sync.Mutex
	phases map[string]*PhaseStats

	traceCap  int
	traceSeq  int
	traceRing []Event
}

// NewStats returns an empty ledger.
func NewStats() *Stats {
	return &Stats{phases: make(map[string]*PhaseStats)}
}

// EnableTrace starts recording events into a ring buffer holding the
// last limit entries.
func (s *Stats) EnableTrace(limit int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if limit < 1 {
		limit = 1
	}
	s.traceCap = limit
	s.traceRing = s.traceRing[:0]
}

// Trace returns the recorded events in order (oldest first).
func (s *Stats) Trace() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.traceRing))
	copy(out, s.traceRing)
	sortEventsBySeq(out)
	return out
}

func sortEventsBySeq(ev []Event) {
	sort.Slice(ev, func(a, b int) bool { return ev[a].Seq < ev[b].Seq })
}

// record appends an event to the ring buffer (caller holds the lock).
func (s *Stats) record(phase, kind string, bytes int, t float64) {
	if s.traceCap == 0 {
		return
	}
	e := Event{Seq: s.traceSeq, Phase: phase, Kind: kind, Bytes: bytes, Time: t}
	s.traceSeq++
	if len(s.traceRing) < s.traceCap {
		s.traceRing = append(s.traceRing, e)
		return
	}
	s.traceRing[e.Seq%s.traceCap] = e
}

func (s *Stats) get(phase string) *PhaseStats {
	p, ok := s.phases[phase]
	if !ok {
		p = &PhaseStats{}
		s.phases[phase] = p
	}
	return p
}

func (s *Stats) addComm(phase string, dir direction, msgs, bytes int, t float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.get(phase)
	p.Rounds++
	p.Messages += msgs
	kind := "reduce"
	if dir == dirD2H {
		p.BytesD2H += bytes
	} else {
		p.BytesH2D += bytes
		kind = "broadcast"
	}
	p.CommTime += t
	s.record(phase, kind, bytes, t)
}

func (s *Stats) addCompute(phase string, t float64, work []Work) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.get(phase)
	p.DeviceTime += t
	p.Kernels++
	var bytes float64
	for _, w := range work {
		p.DeviceFlops += w.Flops
		bytes += w.Bytes
	}
	s.record(phase, "kernel", int(bytes), t)
}

func (s *Stats) addHost(phase string, t, flops float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.get(phase)
	p.HostTime += t
	p.HostFlops += flops
	s.record(phase, "host", 0, t)
}

// Phase returns a copy of the named phase's stats (zero value if the
// phase never ran).
func (s *Stats) Phase(name string) PhaseStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.phases[name]; ok {
		return *p
	}
	return PhaseStats{}
}

// Phases returns the phase names in sorted order.
func (s *Stats) Phases() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.phases))
	for n := range s.phases {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalTime returns the modeled time summed over all phases.
func (s *Stats) TotalTime() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t float64
	for _, p := range s.phases {
		t += p.CommTime + p.DeviceTime + p.HostTime
	}
	return t
}

// Merge adds other's counters into s (used to combine per-restart ledgers).
func (s *Stats) Merge(other *Stats) {
	other.mu.Lock()
	defer other.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, op := range other.phases {
		p := s.get(name)
		p.Rounds += op.Rounds
		p.Messages += op.Messages
		p.BytesD2H += op.BytesD2H
		p.BytesH2D += op.BytesH2D
		p.CommTime += op.CommTime
		p.DeviceTime += op.DeviceTime
		p.DeviceFlops += op.DeviceFlops
		p.HostTime += op.HostTime
		p.HostFlops += op.HostFlops
		p.Kernels += op.Kernels
	}
}

// String renders a compact per-phase table.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %8s %12s %12s %10s %10s %10s\n",
		"phase", "rounds", "msgs", "bytesD2H", "bytesH2D", "comm(ms)", "dev(ms)", "host(ms)")
	for _, name := range s.Phases() {
		p := s.Phase(name)
		fmt.Fprintf(&b, "%-10s %8d %8d %12d %12d %10.3f %10.3f %10.3f\n",
			name, p.Rounds, p.Messages, p.BytesD2H, p.BytesH2D,
			p.CommTime*1e3, p.DeviceTime*1e3, p.HostTime*1e3)
	}
	return b.String()
}
