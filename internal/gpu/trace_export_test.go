package gpu

import (
	"bytes"
	"encoding/json"
	"testing"
)

// traceFixture runs a small deterministic workload with tracing enabled.
func traceFixture() *Context {
	ctx := NewContext(2, M2090())
	ctx.Stats().EnableTrace(64)
	ctx.ReduceRound("tsqr", []int{800, 800})
	ctx.UniformKernel("tsqr", Work{Flops: 3e9, Bytes: 1e6})
	ctx.BroadcastRound("mpk", []int{400, 400})
	ctx.HostCompute("lsq", 2e8)
	return ctx
}

func TestWriteTraceJSONRoundTrips(t *testing.T) {
	ctx := traceFixture()
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, []Trace{ctx.Stats().TraceOf("run")}); err != nil {
		t.Fatal(err)
	}
	var got []Trace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 1 || got[0].Name != "run" {
		t.Fatalf("round trip lost the trace name: %+v", got)
	}
	want := ctx.Stats().Trace()
	if len(got[0].Events) != len(want) {
		t.Fatalf("round trip lost events: %d vs %d", len(got[0].Events), len(want))
	}
	for i := range want {
		if got[0].Events[i] != want[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, got[0].Events[i], want[i])
		}
	}
}

func TestWriteChromeTraceFormat(t *testing.T) {
	ctx := traceFixture()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []Trace{ctx.Stats().TraceOf("solve")}); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("not a valid trace_event file: %v\n%s", err, buf.String())
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	// One process_name metadata event naming the trace.
	foundProc := false
	var slices []int
	for i, e := range file.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" && e.Args["name"] == "solve" {
				foundProc = true
			}
		case "X":
			slices = append(slices, i)
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if !foundProc {
		t.Fatal("missing process_name metadata")
	}
	if len(slices) != 4 {
		t.Fatalf("got %d duration slices, want 4", len(slices))
	}
	// The modeled clock lays events end to end: each slice starts where
	// the previous one ended, and durations are positive.
	clock := 0.0
	for _, i := range slices {
		e := file.TraceEvents[i]
		if e.Ts != clock {
			t.Fatalf("slice %d starts at %v, want %v", i, e.Ts, clock)
		}
		if e.Dur <= 0 {
			t.Fatalf("slice %d has non-positive duration", i)
		}
		clock += e.Dur
	}
	// Lanes: comm and compute kinds map to distinct tids.
	kindTid := map[string]int{}
	for _, i := range slices {
		e := file.TraceEvents[i]
		kindTid[e.Cat] = e.Tid
	}
	if kindTid["reduce"] != kindTid["broadcast"] {
		t.Fatal("reduce and broadcast should share the comm lane")
	}
	if kindTid["kernel"] == kindTid["reduce"] || kindTid["host"] == kindTid["kernel"] {
		t.Fatalf("kinds not separated into lanes: %v", kindTid)
	}
}

func TestWriteChromeTraceUnnamed(t *testing.T) {
	ctx := traceFixture()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []Trace{{Events: ctx.Stats().Trace()}}); err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	if _, ok := file["traceEvents"]; !ok {
		t.Fatal("missing traceEvents key")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	if file.TraceEvents == nil {
		t.Fatal("traceEvents must be an empty array, not null")
	}
}
