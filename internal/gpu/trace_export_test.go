package gpu

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// traceFixture runs a small deterministic workload with tracing enabled.
func traceFixture() *Context {
	ctx := NewContext(2, M2090())
	ctx.Stats().EnableTrace(64)
	ctx.ReduceRound("tsqr", []int{800, 800})
	ctx.UniformKernel("tsqr", Work{Flops: 3e9, Bytes: 1e6})
	ctx.BroadcastRound("mpk", []int{400, 400})
	ctx.HostCompute("lsq", 2e8)
	return ctx
}

// chromeFile is the subset of the trace_event format the tests inspect.
type chromeFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func decodeChrome(t *testing.T, traces []Trace) chromeFile {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, traces); err != nil {
		t.Fatal(err)
	}
	var file chromeFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("not a valid trace_event file: %v\n%s", err, buf.String())
	}
	return file
}

func TestWriteTraceJSONRoundTrips(t *testing.T) {
	ctx := traceFixture()
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, []Trace{ctx.Stats().TraceOf("run")}); err != nil {
		t.Fatal(err)
	}
	var got []Trace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 1 || got[0].Name != "run" {
		t.Fatalf("round trip lost the trace name: %+v", got)
	}
	want := ctx.Stats().Trace()
	if len(got[0].Events) != len(want) {
		t.Fatalf("round trip lost events: %d vs %d", len(got[0].Events), len(want))
	}
	for i := range want {
		if got[0].Events[i] != want[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, got[0].Events[i], want[i])
		}
	}
}

func TestWriteChromeTraceFormat(t *testing.T) {
	ctx := traceFixture()
	file := decodeChrome(t, []Trace{ctx.Stats().TraceOf("solve")})
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	// One process_name metadata event naming the trace.
	foundProc := false
	var slices []int
	for i, e := range file.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" && e.Args["name"] == "solve" {
				foundProc = true
			}
		case "X":
			slices = append(slices, i)
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if !foundProc {
		t.Fatal("missing process_name metadata")
	}
	// 5 slices: reduce, one kernel per device (2 devices), broadcast, host.
	if len(slices) != 5 {
		t.Fatalf("got %d duration slices, want 5", len(slices))
	}
	// The modeled clock lays launch groups end to end: every group starts
	// where the slowest member of the previous group ended, members of one
	// group start together, and durations are positive.
	events := ctx.Stats().Trace()
	clock := 0.0
	k := 0
	for i := 0; i < len(events); {
		j := i
		var groupDur float64
		for j < len(events) && events[j].Step == events[i].Step {
			if events[j].Time > groupDur {
				groupDur = events[j].Time
			}
			j++
		}
		for ; i < j; i++ {
			e := file.TraceEvents[slices[k]]
			k++
			if e.Ts != clock*1e6 {
				t.Fatalf("slice %d starts at %v, want %v", k, e.Ts, clock*1e6)
			}
			if e.Dur <= 0 {
				t.Fatalf("slice %d has non-positive duration", k)
			}
		}
		clock += groupDur
	}
	// Lanes: comm kinds share the bus lane; host and each device get their
	// own rows.
	kindTid := map[string]int{}
	devTid := map[int]bool{}
	for _, i := range slices {
		e := file.TraceEvents[i]
		kindTid[e.Cat] = e.Tid
		if e.Cat == "kernel" {
			devTid[e.Tid] = true
		}
	}
	if kindTid["reduce"] != kindTid["broadcast"] {
		t.Fatal("reduce and broadcast should share the comm lane")
	}
	if kindTid["kernel"] == kindTid["reduce"] || kindTid["host"] == kindTid["kernel"] {
		t.Fatalf("kinds not separated into lanes: %v", kindTid)
	}
	if len(devTid) != 2 {
		t.Fatalf("2-device kernel should occupy 2 lanes, got %v", devTid)
	}
}

func TestWriteChromeTraceUnnamed(t *testing.T) {
	ctx := traceFixture()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []Trace{{Events: ctx.Stats().Trace()}}); err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	if _, ok := file["traceEvents"]; !ok {
		t.Fatal("missing traceEvents key")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	if file.TraceEvents == nil {
		t.Fatal("traceEvents must be an empty array, not null")
	}
}

func TestWriteChromeTraceEmptyTraceEntry(t *testing.T) {
	// A Trace with a name but no events still yields a valid file with
	// just the process metadata.
	file := decodeChrome(t, []Trace{{Name: "idle"}})
	if len(file.TraceEvents) != 1 || file.TraceEvents[0].Ph != "M" {
		t.Fatalf("empty trace should emit only process metadata: %+v", file.TraceEvents)
	}
}

func TestWriteChromeTraceSingleEvent(t *testing.T) {
	ctx := NewContext(1, M2090())
	ctx.Stats().EnableTrace(8)
	ctx.HostCompute("lsq", 1e6)
	file := decodeChrome(t, []Trace{ctx.Stats().TraceOf("one")})
	var slices int
	for _, e := range file.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		slices++
		if e.Ts != 0 {
			t.Fatalf("single event must start at 0, got %v", e.Ts)
		}
		if e.Dur <= 0 {
			t.Fatal("single event must have positive duration")
		}
	}
	if slices != 1 {
		t.Fatalf("got %d slices, want 1", slices)
	}
}

func TestChromeTraceDeviceLanes(t *testing.T) {
	// A multi-device trace renders one lane per device; within each lane
	// slices never overlap, and the summed kernel duration of each lane
	// equals the device's ledger total (DevicePhase) exactly.
	ctx := NewContext(3, M2090())
	ctx.Stats().EnableTrace(1 << 10)
	for i := 0; i < 5; i++ {
		ctx.DeviceKernel("tsqr", []Work{
			{Flops: 1e9 * float64(i+1)},
			{Flops: 2e9},
			{Flops: 5e8 * float64(i+1), Bytes: 3e8},
		})
		ctx.ReduceRound("tsqr", []int{240, 240, 240})
		ctx.UniformKernel("spmv", Work{Flops: 7e8, Bytes: 1e9})
	}
	file := decodeChrome(t, []Trace{ctx.Stats().TraceOf("multi")})

	type span struct{ ts, dur float64 }
	lanes := map[int][]span{}   // tid -> slices
	laneDevice := map[int]int{} // tid -> device id from args
	laneKernelUs := map[int]float64{}
	for _, e := range file.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		lanes[e.Tid] = append(lanes[e.Tid], span{e.Ts, e.Dur})
		if e.Cat == "kernel" {
			d, ok := e.Args["device"].(float64)
			if !ok {
				t.Fatalf("kernel slice without device arg: %+v", e)
			}
			if prev, seen := laneDevice[e.Tid]; seen && prev != int(d) {
				t.Fatalf("lane %d mixes devices %d and %d", e.Tid, prev, int(d))
			}
			laneDevice[e.Tid] = int(d)
			laneKernelUs[e.Tid] += e.Dur
		}
	}
	if len(laneDevice) != 3 {
		t.Fatalf("want 3 device lanes, got %v", laneDevice)
	}
	// Per-lane slices must not overlap (they are emitted in clock order).
	for tid, spans := range lanes {
		end := 0.0
		for i, s := range spans {
			if s.ts < end {
				t.Fatalf("lane %d slice %d starts at %v before previous end %v", tid, i, s.ts, end)
			}
			end = s.ts + s.dur
		}
	}
	// Summed per-lane kernel time == DevicePhase totals, to float64
	// round-off (the slices are the same numbers the ledger summed).
	for tid, d := range laneDevice {
		var want float64
		for _, ph := range ctx.Stats().Phases() {
			want += ctx.Stats().DevicePhase(d, ph).DeviceTime
		}
		got := laneKernelUs[tid] / 1e6
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("device %d lane kernel time %v, ledger %v", d, got, want)
		}
	}
}
