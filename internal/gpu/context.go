// Package gpu simulates the multi-GPU execution environment of the paper
// (two 8-core Sandy Bridge CPUs driving three NVIDIA M2090 GPUs over
// PCI Express) on a plain multicore machine.
//
// Each simulated device is backed by real parallel execution: Context.RunAll
// runs one goroutine per device, so device-local kernels genuinely execute
// concurrently and all numerical results are exact. What is *modeled* is
// the cost of the hardware the host machine does not have: every CPU<->GPU
// communication round and every device kernel reports its shape (messages,
// bytes, flops) to a Stats ledger, which converts it to modeled time using
// a CostModel calibrated to the paper's testbed. The performance *shape*
// results of the paper (latency-vs-bandwidth crossovers in the matrix
// powers kernel, reduction counts of the orthogonalization strategies,
// multi-GPU scaling) are therefore reproduced from first principles:
// identical communication structure, calibrated constants.
package gpu

import (
	"fmt"
	"sync"
)

// CostModel holds the hardware constants used to convert communication and
// computation events into modeled seconds.
type CostModel struct {
	// Latency is the fixed per-round cost of a CPU<->GPU transfer phase
	// (driver launch + DMA setup), the alpha of the alpha-beta model.
	// Messages to distinct GPUs in the same round are asynchronous and
	// overlap, so a round pays Latency once.
	Latency float64 // seconds
	// Bandwidth is the aggregate PCIe bandwidth in bytes/second shared by
	// the devices (the beta term).
	Bandwidth float64
	// DeviceGflops is the sustained double-precision rate of one device
	// for compute-bound kernels (GEMM), in Gflop/s.
	DeviceGflops float64
	// DeviceMemBW is the sustained device memory bandwidth in bytes/s;
	// memory-bound kernels (SpMV, BLAS-1/2) are charged against it.
	DeviceMemBW float64
	// HostGflops and HostMemBW describe the CPU side (threaded MKL in the
	// paper), used for the small Cholesky/QR/least-squares work and the
	// CPU reference solver.
	HostGflops float64
	HostMemBW  float64
	// KernelLaunch is the fixed overhead of launching one device kernel;
	// it is what makes many tiny BLAS-1 calls (MGS) expensive on GPUs
	// even before communication.
	KernelLaunch float64
	// FP32Speedup is the device throughput ratio of single- over
	// double-precision arithmetic for compute-bound kernels: a kernel
	// whose Work.Elem is sub-FP64 divides its flop time by this factor.
	// Zero (the historical zero value) means no speedup — FP32 work is
	// charged at the FP64 rate — so every pre-precision model and golden
	// is unchanged. Memory-bound kernels are unaffected: their advantage
	// comes from Work.Bytes, which the caller already halves.
	FP32Speedup float64

	// Multi-node extension (the paper's conclusion asks how CA-GMRES
	// behaves when the GPUs are spread across compute nodes, where
	// communication is more expensive). DevicesPerNode == 0 keeps the
	// single-node model; otherwise devices are grouped into nodes of
	// that size, and the share of a communication round that crosses
	// node boundaries is charged at the interconnect constants below
	// (overlapping with the intra-node PCIe share).
	DevicesPerNode int
	// InterLatency is the per-round network latency (e.g. ~25 us for
	// InfiniBand QDR with MPI in the Keeneland era).
	InterLatency float64
	// InterBandwidth is the network bandwidth in bytes/second.
	InterBandwidth float64
}

// MultiNode derives a clustered variant of a cost model: devicesPerNode
// GPUs per node, joined by the given network constants.
func MultiNode(base CostModel, devicesPerNode int, interLatency, interBandwidth float64) CostModel {
	base.DevicesPerNode = devicesPerNode
	base.InterLatency = interLatency
	base.InterBandwidth = interBandwidth
	return base
}

// M2090 returns a cost model calibrated to the paper's testbed: NVIDIA
// Tesla M2090 (Fermi) GPUs on PCIe 2.0 x16 with two 8-core Sandy Bridge
// CPUs. Values are sustained (not peak) figures from the published
// hardware documentation and the paper's own kernel measurements.
func M2090() CostModel {
	return CostModel{
		Latency:      15e-6, // ~15 us per transfer round
		Bandwidth:    6e9,   // ~6 GB/s effective PCIe 2.0 x16
		DeviceGflops: 300,   // sustained DGEMM (665 peak)
		DeviceMemBW:  120e9, // sustained of 177 GB/s peak
		HostGflops:   100,   // 16-core SNB threaded MKL DGEMM
		HostMemBW:    40e9,  // two-socket sustained stream
		KernelLaunch: 5e-6,  // CUDA kernel launch overhead
	}
}

// Context is a simulated multi-GPU node: NumDevices devices, a cost
// model, and a stats ledger. It is safe for concurrent use by the device
// goroutines it spawns.
//
// A context may carry an armed fault plan (InjectFaults) and may be a
// Survivors view of a larger context: phys maps the view's logical
// device indices to the physical device ids of the root context, so the
// ledger attribution and the death checks always speak physical ids
// while the layers above address a dense 0..NumDevices-1 range.
type Context struct {
	NumDevices int
	Model      CostModel
	prof       Profile
	stats      *Stats
	faults     *faultState
	timeline   *Timeline
	phys       []int // logical -> physical device id; nil = identity
}

// NewContext creates a context with ng simulated devices and a bare cost
// model (host-mediated routing — the paper's machine shape). Use
// NewContextWithProfile to select an interconnect topology too.
func NewContext(ng int, model CostModel) *Context {
	if ng < 1 {
		panic(fmt.Sprintf("gpu: NewContext with %d devices", ng))
	}
	return &Context{NumDevices: ng, Model: model, prof: defaultProfile(model),
		stats: NewStats(), timeline: newTimeline(false)}
}

// Stats returns the ledger for inspection.
func (c *Context) Stats() *Stats { return c.stats }

// ResetStats clears the ledger (benchmarks and solvers call this at the
// start of a run). Trace recording, if enabled, stays enabled with the
// same capacity; so does the overlap setting of the stream timeline,
// which resets to time zero alongside the ledger.
func (c *Context) ResetStats() {
	traceCap := c.stats.traceCap
	c.stats = NewStats()
	if traceCap > 0 {
		c.stats.EnableTrace(traceCap)
	}
	c.timeline = newTimeline(c.timeline.overlapEnabled())
}

// RunAll executes f(d) for every device d on its own goroutine and waits
// for all of them — the execution model of a host thread launching work on
// every GPU and synchronizing. Panics inside device code are collected and
// re-raised on the caller after all devices finish, so a failing device
// does not leak goroutines.
func (c *Context) RunAll(f func(d int)) {
	var wg sync.WaitGroup
	panics := make([]any, c.NumDevices)
	for d := 0; d < c.NumDevices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[d] = r
				}
			}()
			f(d)
		}(d)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// --- Accounting -----------------------------------------------------------

// Work describes one device kernel's cost shape. Elem is the element
// width the kernel's vector operands use: the zero value (Elem64) keeps
// the historical FP64 charging, while sub-FP64 widths earn the cost
// model's FP32Speedup on the compute-bound estimate. Callers scale
// Bytes themselves — the width of each operand is theirs to know.
type Work struct {
	Flops float64 // floating-point operations
	Bytes float64 // memory traffic (reads+writes)
	Elem  Elem    // operand element width (zero value = FP64)
}

// Time converts the work to modeled seconds on the device: the larger of
// the compute-bound and memory-bound estimates plus the launch overhead.
func (m CostModel) deviceTime(w Work) float64 {
	gflops := m.DeviceGflops
	if w.Elem != Elem64 && m.FP32Speedup > 0 {
		gflops *= m.FP32Speedup
	}
	t := w.Flops / (gflops * 1e9)
	if mt := w.Bytes / m.DeviceMemBW; mt > t {
		t = mt
	}
	return t + m.KernelLaunch
}

// roundTime models one communication round: on a single node, one PCIe
// latency plus the serialized bus time of the total volume. When the
// model is multi-node, the local share still travels over PCIe while the
// remote share crosses the interconnect; the two proceed concurrently,
// so the round costs the maximum of the two paths.
func (c *Context) roundTime(bytes []int) (total int, t float64) {
	local, remote := 0, 0
	for d, b := range bytes {
		if c.Model.DevicesPerNode > 0 && d >= c.Model.DevicesPerNode {
			remote += b
		} else {
			local += b
		}
	}
	total = local + remote
	t = c.Model.Latency + float64(local)/c.Model.Bandwidth
	if c.Model.DevicesPerNode > 0 && len(bytes) > c.Model.DevicesPerNode {
		inter := c.Model.InterLatency + float64(remote)/c.Model.InterBandwidth
		if inter > t {
			t = inter
		}
	}
	return total, t
}

// ReduceRound records one device->host communication round in which every
// device concurrently sends bytes[d] bytes (bytes may have fewer entries
// than devices; missing entries are zero). The round is charged one
// latency plus the serialized bus time of the total volume (per path in
// the multi-node model). With a fault plan armed, the round first checks
// scheduled device deaths and then draws the seeded transfer-fault
// stream, transparently retrying with capped exponential virtual-time
// backoff.
func (c *Context) ReduceRound(phase string, bytes []int) {
	c.commRound(phase, dirD2H, bytes, Elem64, true, nil)
}

// BroadcastRound records one host->device round (scatter/broadcast),
// symmetric to ReduceRound.
func (c *Context) BroadcastRound(phase string, bytes []int) {
	c.commRound(phase, dirH2D, bytes, Elem64, true, nil)
}

// ReduceRoundElem is ReduceRound with an explicit element width: bytes
// already reflect the narrow wire size; elem tags the volume on the
// precision ledger columns. ReduceRound == ReduceRoundElem(..., Elem64).
func (c *Context) ReduceRoundElem(phase string, bytes []int, elem Elem) {
	c.commRound(phase, dirD2H, bytes, elem, true, nil)
}

// BroadcastRoundElem is BroadcastRound with an explicit element width.
func (c *Context) BroadcastRoundElem(phase string, bytes []int, elem Elem) {
	c.commRound(phase, dirH2D, bytes, elem, true, nil)
}

// commRound is the shared implementation behind the synchronous rounds
// (barrier=true: a full barrier on every stream) and the *On stream
// variants (barrier=false: the round occupies only the participating
// transfer streams when overlap is enabled). The ledger charge is
// identical in both modes; elem tags the round's element width on the
// precision columns (bytes are already at that width).
func (c *Context) commRound(phase string, dir direction, bytes []int, elem Elem, barrier bool, after []StreamEvent) StreamEvent {
	c.checkDeaths(phase)
	if c.clustered() {
		// Two-tier machine: each node's share crosses its own host link,
		// then remote nodes' aggregates cross the fabric to the root host.
		t, _ := c.clusterRoundTime(bytes)
		stall := c.injectTransferFaults(phase, t)
		c.stats.addCommTiered(phase, dir, c.devIDs(len(bytes)), bytes, c.nodeOfLogical(len(bytes)), t, elem)
		return c.timeline.comm(phase, dir == dirH2D, c.devIDs(len(bytes)), t, stall, barrier, after)
	}
	_, t := c.roundTime(bytes)
	stall := c.injectTransferFaults(phase, t)
	c.stats.addComm(phase, dir, c.devIDs(len(bytes)), bytes, t, elem)
	return c.timeline.comm(phase, dir == dirH2D, c.devIDs(len(bytes)), t, stall, barrier, after)
}

// DeviceKernel records a parallel device kernel: every device executes
// its own work item concurrently, so the phase advances by the maximum
// device time while each device's own ledger is charged its own time
// (work[d] is device d's share — the index is the device id within this
// context's view; straggler devices are slowed by their configured
// factor).
func (c *Context) DeviceKernel(phase string, work []Work) {
	c.deviceKernel(phase, work, true, nil)
}

func (c *Context) deviceKernel(phase string, work []Work, barrier bool, after []StreamEvent) StreamEvent {
	c.checkDeaths(phase)
	ts := make([]float64, len(work))
	for d, w := range work {
		ts[d] = c.Model.deviceTime(w) * c.faults.stragglerFactor(c.physOf(d))
	}
	c.stats.addCompute(phase, c.devIDs(len(work)), ts, work)
	return c.timeline.kernel(phase, c.devIDs(len(work)), ts, barrier, after)
}

// UniformKernel is DeviceKernel for identical per-device work.
func (c *Context) UniformKernel(phase string, w Work) {
	c.checkDeaths(phase)
	t := c.Model.deviceTime(w)
	work := make([]Work, c.NumDevices)
	ts := make([]float64, c.NumDevices)
	for d := range work {
		work[d] = w
		ts[d] = t * c.faults.stragglerFactor(c.physOf(d))
	}
	c.stats.addCompute(phase, c.devIDs(len(work)), ts, work)
	c.timeline.kernel(phase, c.devIDs(len(work)), ts, true, nil)
}

// HostCompute records flops executed on the CPU (the Cholesky, small QR,
// eigenvalue and least-squares work the paper leaves on the host).
func (c *Context) HostCompute(phase string, flops float64) {
	c.hostCompute(phase, flops, true, nil)
}

func (c *Context) hostCompute(phase string, flops float64, barrier bool, after []StreamEvent) StreamEvent {
	t := flops / (c.Model.HostGflops * 1e9)
	c.stats.addHost(phase, t, flops)
	return c.timeline.hostOp(phase, t, barrier, after)
}

// ScalarBytes is the wire size of one float64.
const ScalarBytes = 8
