package gpu

import (
	"math"
	"testing"
)

// streamWorkload drives a representative mix of stream operations with
// explicit dependencies through a context: kernels feeding reduces,
// broadcasts feeding kernels, host compute between rounds, and fences.
// It is deterministic, so two contexts driven through it see identical
// charge sequences.
func streamWorkload(ctx *Context) {
	ng := ctx.NumDevices
	work := func(f, b float64) []Work {
		w := make([]Work, ng)
		for d := range w {
			w[d] = Work{Flops: f * float64(d+1), Bytes: b}
		}
		return w
	}
	bytes := func(n int) []int {
		bs := make([]int, ng)
		for d := range bs {
			bs[d] = n
		}
		return bs
	}
	for i := 0; i < 4; i++ {
		k := ctx.DeviceKernelOn("spmv", work(2e6, 3e6))
		red := ctx.ReduceRoundOn("orth", bytes(256), k)
		// The broadcast relays the reduce's payload (implicit hostData
		// ordering); the host's small update then overlaps the device-side
		// broadcast + kernel — the paper's CPU/GPU overlap.
		bc := ctx.BroadcastRoundOn("orth", bytes(128), red)
		ctx.DeviceKernelOn("orth", work(1e6, 8e6), bc)
		ctx.HostComputeOn("lsq", 1e6)
		if i%2 == 1 {
			prod := ctx.ComputeFence()
			ctx.ReduceRoundOn("tsqr", bytes(512), prod)
			ctx.HostComputeOn("tsqr", 3e6)
			ctx.BroadcastRoundOn("tsqr", bytes(512), ctx.HostFence())
			ctx.DeviceKernelOn("tsqr", work(4e6, 2e6), ctx.TransferFence())
		}
	}
	// A legacy synchronous op in the middle must stay a correct barrier
	// even with overlap enabled.
	ctx.UniformKernel("vec", Work{Flops: 1e6, Bytes: 4e6})
	ctx.HostCompute("lsq", 2e6)
}

// syncWorkload is streamWorkload expressed through the legacy
// synchronous API (no events, no fences — every call a barrier).
func syncWorkload(ctx *Context) {
	ng := ctx.NumDevices
	work := func(f, b float64) []Work {
		w := make([]Work, ng)
		for d := range w {
			w[d] = Work{Flops: f * float64(d+1), Bytes: b}
		}
		return w
	}
	bytes := func(n int) []int {
		bs := make([]int, ng)
		for d := range bs {
			bs[d] = n
		}
		return bs
	}
	for i := 0; i < 4; i++ {
		ctx.DeviceKernel("spmv", work(2e6, 3e6))
		ctx.ReduceRound("orth", bytes(256))
		ctx.BroadcastRound("orth", bytes(128))
		ctx.DeviceKernel("orth", work(1e6, 8e6))
		ctx.HostCompute("lsq", 1e6)
		if i%2 == 1 {
			ctx.ReduceRound("tsqr", bytes(512))
			ctx.HostCompute("tsqr", 3e6)
			ctx.BroadcastRound("tsqr", bytes(512))
			ctx.DeviceKernel("tsqr", work(4e6, 2e6))
		}
	}
	ctx.UniformKernel("vec", Work{Flops: 1e6, Bytes: 4e6})
	ctx.HostCompute("lsq", 2e6)
}

// Property (a): with overlap disabled (the default), the stream API is
// the synchronous schedule bit-for-bit — the ledger is byte-identical to
// the one the legacy API produces, and the timeline's horizon equals its
// own serial accumulator exactly.
func TestStreamDegeneratesToSynchronous(t *testing.T) {
	for _, ng := range []int{1, 2, 3} {
		onCtx := NewContext(ng, M2090())
		syncCtx := NewContext(ng, M2090())
		streamWorkload(onCtx)
		syncWorkload(syncCtx)
		if got, want := onCtx.Stats().String(), syncCtx.Stats().String(); got != want {
			t.Fatalf("ng=%d: stream-API ledger differs from synchronous ledger:\n%s\n--- vs ---\n%s", ng, got, want)
		}
		if got, want := onCtx.Stats().TotalTime(), syncCtx.Stats().TotalTime(); got != want {
			t.Fatalf("ng=%d: TotalTime %v != %v", ng, got, want)
		}
		if h, s := onCtx.OverlappedTime(), onCtx.SerialTime(); h != s {
			t.Fatalf("ng=%d: overlap off but Horizon %v != SerialTime %v", ng, h, s)
		}
		if h1, h2 := onCtx.OverlappedTime(), syncCtx.OverlappedTime(); h1 != h2 {
			t.Fatalf("ng=%d: stream horizon %v != sync horizon %v", ng, h1, h2)
		}
	}
}

// Property (a) continued: the ledger is invariant under the overlap
// flag — enabling overlap changes scheduling, never charges.
func TestOverlapLeavesLedgerUntouched(t *testing.T) {
	off := NewContext(3, M2090())
	on := NewContext(3, M2090())
	on.SetOverlap(true)
	streamWorkload(off)
	streamWorkload(on)
	if got, want := on.Stats().String(), off.Stats().String(); got != want {
		t.Fatalf("overlap changed the ledger:\n%s\n--- vs ---\n%s", got, want)
	}
	if got, want := on.SerialTime(), off.SerialTime(); got != want {
		t.Fatalf("overlap changed SerialTime: %v != %v", got, want)
	}
}

// Property (b): per-stream lane sums reconcile exactly with the ledger's
// per-device phase totals.
func TestLanesReconcileWithDevicePhases(t *testing.T) {
	ctx := NewContext(3, M2090())
	ctx.SetOverlap(true)
	streamWorkload(ctx)
	st := ctx.Stats()
	for d := 0; d < ctx.NumDevices; d++ {
		for _, phase := range []string{"spmv", "orth", "tsqr", "vec"} {
			dp := st.DevicePhase(d, phase)
			if got := ctx.LaneTime(LaneCompute, d, phase); got != dp.DeviceTime {
				t.Fatalf("compute lane (d=%d, %s) = %v, ledger DeviceTime = %v", d, phase, got, dp.DeviceTime)
			}
			if got := ctx.LaneTime(LaneTransfer, d, phase); got != dp.CommTime {
				t.Fatalf("transfer lane (d=%d, %s) = %v, ledger CommTime = %v", d, phase, got, dp.CommTime)
			}
		}
	}
	for _, phase := range []string{"lsq", "tsqr"} {
		if got, want := ctx.LaneTime(LaneHost, HostDevice, phase), st.Phase(phase).HostTime; got != want {
			t.Fatalf("host lane (%s) = %v, ledger HostTime = %v", phase, got, want)
		}
	}
}

// Property (b) continued: the fault lane reconciles with the ledger's
// fault phase when a transfer-fault plan is armed, in every mode.
func TestFaultLaneReconciles(t *testing.T) {
	for _, overlap := range []bool{false, true} {
		ctx := NewContext(3, M2090())
		ctx.SetOverlap(overlap)
		ctx.InjectFaults(FaultPlan{Seed: 11, TransferFaultProb: 0.3, MaxTransferFaults: 50})
		streamWorkload(ctx)
		if ctx.FaultCounts().TransferFaults == 0 {
			t.Fatalf("overlap=%v: plan injected no faults — test is vacuous", overlap)
		}
		got := ctx.LaneTime(LaneFault, HostDevice, PhaseFault)
		want := ctx.Stats().Phase(PhaseFault).CommTime
		if got != want {
			t.Fatalf("overlap=%v: fault lane %v != ledger fault CommTime %v", overlap, got, want)
		}
	}
}

// Property (c): overlapped modeled time never exceeds the synchronous
// schedule — exactly, in floating point, not just approximately.
func TestOverlapNeverExceedsSerial(t *testing.T) {
	for _, ng := range []int{1, 2, 3, 4} {
		ctx := NewContext(ng, M2090())
		ctx.SetOverlap(true)
		streamWorkload(ctx)
		h, s := ctx.OverlappedTime(), ctx.SerialTime()
		if h > s {
			t.Fatalf("ng=%d: overlapped horizon %v > serial %v", ng, h, s)
		}
		if ng >= 2 && h >= s {
			t.Fatalf("ng=%d: workload has real overlap but horizon %v >= serial %v", ng, h, s)
		}
	}
}

// The overlapped schedule is deterministic: the same program replays to
// the bit-identical horizon.
func TestOverlapDeterministicReplay(t *testing.T) {
	run := func() (float64, float64, string) {
		ctx := NewContext(3, M2090())
		ctx.SetOverlap(true)
		ctx.InjectFaults(FaultPlan{Seed: 7, TransferFaultProb: 0.2, MaxTransferFaults: 20})
		streamWorkload(ctx)
		return ctx.OverlappedTime(), ctx.SerialTime(), ctx.Stats().String()
	}
	h1, s1, l1 := run()
	h2, s2, l2 := run()
	if h1 != h2 || s1 != s2 || l1 != l2 {
		t.Fatalf("overlapped replay diverged: horizon %v vs %v, serial %v vs %v", h1, h2, s1, s2)
	}
}

// ResetStats rewinds the timeline to zero but keeps the overlap setting,
// mirroring how it preserves trace capacity.
func TestResetStatsPreservesOverlap(t *testing.T) {
	ctx := NewContext(2, M2090())
	ctx.SetOverlap(true)
	streamWorkload(ctx)
	if ctx.OverlappedTime() == 0 {
		t.Fatal("workload advanced no time")
	}
	ctx.ResetStats()
	if !ctx.OverlapEnabled() {
		t.Fatal("ResetStats dropped the overlap setting")
	}
	if ctx.OverlappedTime() != 0 || ctx.SerialTime() != 0 {
		t.Fatal("ResetStats did not rewind the timeline")
	}
}

// Survivors views share the root's timeline: charges through the view
// land on the same streams (at the physical device ids), and the view
// sees the root's horizon.
func TestSurvivorsShareTimeline(t *testing.T) {
	ctx := NewContext(3, M2090())
	ctx.SetOverlap(true)
	ctx.InjectFaults(FaultPlan{Seed: 1, Deaths: []DeviceDeath{{Device: 1, At: 0}}})
	func() {
		defer func() { _ = recover() }()
		ctx.DeviceKernelOn("spmv", []Work{{Flops: 1e6}, {Flops: 1e6}, {Flops: 1e6}})
	}()
	view, err := ctx.Survivors()
	if err != nil {
		t.Fatal(err)
	}
	view.DeviceKernelOn("spmv", []Work{{Flops: 1e6}, {Flops: 1e6}})
	if got, want := view.OverlappedTime(), ctx.OverlappedTime(); got != want {
		t.Fatalf("view horizon %v != root horizon %v", got, want)
	}
	// The view's logical devices 0,1 are physical 0,2 — the lane charges
	// must land on the physical ids.
	if ctx.LaneTime(LaneCompute, 2, "spmv") == 0 {
		t.Fatal("view charge did not land on physical device 2's lane")
	}
}

// With overlap enabled, scheduled deaths fire on the stream horizon; the
// same plan on the same program still replays deterministically.
func TestDeathsFireOnStreamClock(t *testing.T) {
	run := func() (float64, bool) {
		ctx := NewContext(2, M2090())
		ctx.SetOverlap(true)
		ctx.InjectFaults(FaultPlan{Seed: 3, Deaths: []DeviceDeath{{Device: 0, At: 1e-4}}})
		died := false
		var at float64
		func() {
			defer func() {
				if r := recover(); r != nil {
					e := r.(*DeviceLostError)
					died = true
					at = e.At
				}
			}()
			streamWorkload(ctx)
		}()
		return at, died
	}
	at1, died1 := run()
	at2, died2 := run()
	if !died1 || !died2 {
		t.Fatal("scheduled death did not fire under overlap")
	}
	if at1 != at2 {
		t.Fatalf("death times diverged across replays: %v vs %v", at1, at2)
	}
	if math.IsNaN(at1) || at1 < 1e-4 {
		t.Fatalf("death fired before its scheduled time: %v", at1)
	}
}

// Join and the zero StreamEvent behave as documented.
func TestStreamEventJoin(t *testing.T) {
	var zero StreamEvent
	if zero.Seconds() != 0 {
		t.Fatal("zero event not at time 0")
	}
	e := Join(StreamEvent{at: 2}, zero, StreamEvent{at: 5}, StreamEvent{at: 3})
	if e.Seconds() != 5 {
		t.Fatalf("Join = %v, want 5", e.Seconds())
	}
}
