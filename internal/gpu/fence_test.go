package gpu

import (
	"fmt"
	"strings"
	"testing"
)

// This file is the golden regression fence around the machine-profile
// refactor: the workload below was captured under the pre-refactor
// hard-wired M2090 cost model, and the default profile must keep
// reproducing every byte of it — ledger table, per-device breakdown,
// event trace, clocks and fault tallies. Any drift means the refactor
// changed behavior, not just structure.

// fenceWorkload drives one fixed mixed workload through a context: the
// synchronous rounds, non-uniform and uniform kernels, host compute, the
// overlapped *On stream operations, a seeded transfer-fault plan, a
// scheduled device death, and a Survivors re-route — every charging path
// the ledger has.
func fenceWorkload(ctx *Context) {
	ctx.InjectFaults(FaultPlan{
		Seed:              42,
		TransferFaultProb: 0.35,
		MaxTransferFaults: 3,
		Deaths:            []DeviceDeath{{Device: 1, At: 0.09}},
		Stragglers:        []Straggler{{Device: 2, Factor: 1.5}},
	})
	ctx.ReduceRound("mpk", []int{4096, 2048, 1024})
	ctx.BroadcastRound("mpk", []int{8192, 8192, 8192})
	ctx.DeviceKernel("spmv", []Work{
		{Flops: 2e8, Bytes: 1.5e9},
		{Flops: 1e8, Bytes: 0.8e9},
		{Flops: 3e8, Bytes: 2.1e9},
	})
	ctx.UniformKernel("tsqr", Work{Flops: 5.4e8, Bytes: 2.4e8})
	ctx.HostCompute("lsq", 1.86e6)
	ev := ctx.ReduceRoundOn("borth", []int{7440, 7440, 7440})
	ev = ctx.DeviceKernelOn("borth", []Work{
		{Flops: 1e7, Bytes: 4e7},
		{Flops: 1e7, Bytes: 4e7},
		{Flops: 1e7, Bytes: 4e7},
	}, ev)
	ctx.HostComputeOn("lsq", 9.3e5, ev)
	// Push the clock past the scheduled death, recover the panic, then
	// keep charging through the Survivors view.
	ctx.UniformKernel("spmv", Work{Flops: 9e8, Bytes: 6e9})
	func() {
		defer func() {
			if r := recover(); r == nil {
				panic("fence: expected DeviceLostError")
			}
		}()
		ctx.ReduceRound("mpk", []int{512, 512, 512})
	}()
	view, err := ctx.Survivors()
	if err != nil {
		panic(err)
	}
	view.ReduceRound("mpk", []int{512, 512})
	view.DeviceKernel("spmv", []Work{
		{Flops: 5e7, Bytes: 4e8},
		{Flops: 5e7, Bytes: 4e8},
	})
}

// fenceReport renders everything the fence asserts on.
func fenceReport(ctx *Context) string {
	var b strings.Builder
	b.WriteString("== stats ==\n")
	b.WriteString(ctx.Stats().String())
	b.WriteString("== devices ==\n")
	b.WriteString(ctx.Stats().DeviceString())
	b.WriteString("== trace ==\n")
	for _, e := range ctx.Stats().Trace() {
		fmt.Fprintf(&b, "%4d %4d %3d %-8s %-14s %10d %.9e\n",
			e.Seq, e.Step, e.Device, e.Phase, e.Kind, e.Bytes, e.Time)
	}
	fc := ctx.FaultCounts()
	fmt.Fprintf(&b, "== clocks ==\ntotal %.12e\nserial %.12e\nhorizon %.12e\n",
		ctx.Stats().TotalTime(), ctx.SerialTime(), ctx.OverlappedTime())
	fmt.Fprintf(&b, "== faults ==\ndeaths %d xfer %d retries %d straggled %d backoff %.9e\n",
		fc.DeviceDeaths, fc.TransferFaults, fc.TransferRetries, fc.StragglerKernels, fc.BackoffSeconds)
	return b.String()
}

// TestM2090FenceSync pins the synchronous barrier schedule of the fence
// workload under the default M2090 machine description.
func TestM2090FenceSync(t *testing.T) {
	ctx := NewContext(3, M2090())
	ctx.Stats().EnableTrace(256)
	fenceWorkload(ctx)
	goldenCompare(t, "fence_sync.golden", fenceReport(ctx))
}

// TestM2090FenceOverlap pins the overlapped stream schedule: the ledger
// charges must be identical to the synchronous run (only the clocks
// differ), so the golden shares everything but the horizon line.
func TestM2090FenceOverlap(t *testing.T) {
	ctx := NewContext(3, M2090())
	ctx.Stats().EnableTrace(256)
	ctx.SetOverlap(true)
	fenceWorkload(ctx)
	goldenCompare(t, "fence_overlap.golden", fenceReport(ctx))
}
