package gpu

import "sync"

// This file is the asynchronous stream/event execution engine on top of
// the synchronous ledger. The paper's implementation hides cost by
// pipelining: halo transfers overlap local SpMV inside the matrix powers
// kernel, and the CPU's small Hessenberg/Givens work overlaps device
// GEMMs. The barrier model of context.go cannot express that — every
// round is a full synchronization, so modeled time is the *sum* of phase
// maxima.
//
// The Timeline gives each simulated device two ordered streams (compute
// and transfer) plus one host stream, exactly the CUDA stream model the
// paper programs against. Every charging call becomes an operation
// submitted to its streams: it starts no earlier than (a) the current
// cursor of each stream it occupies, (b) its explicit StreamEvent
// dependencies, and (c) for host-to-device rounds and host compute, the
// time the host last *received* data (hostData — a device-to-host round
// delivers its payload at its finish, and the host cannot forward or
// consume values that have not arrived). The modeled makespan is then
// the critical path through the dependency DAG (Horizon), not the sum
// of barrier maxima (SerialTime).
//
// Two invariants make the engine safe to adopt incrementally:
//
//  1. The ledger (Stats) is charged identically in every mode. Overlap
//     changes *when* operations are scheduled, never *what* they cost,
//     so every existing golden table, CSV and property test is
//     untouched.
//
//  2. With overlap disabled (the default), every operation — including
//     the *On variants — degrades to a full barrier: all cursors advance
//     in lockstep and Horizon() == SerialTime() bit-for-bit. The
//     synchronous API is literally the single-stream case of the engine.
//
// Horizon() can never exceed SerialTime(): each operation starts at a
// maximum of cursors and event times that are themselves bounded by the
// serial accumulator, and float addition is monotone, so the bound holds
// exactly in floating point, not just in exact arithmetic.

// StreamEvent marks the completion time of a submitted operation on the
// timeline. The zero value is an event at time zero (no constraint).
// Events are values — they can be stored, passed across package
// boundaries and used as dependencies of any later operation.
type StreamEvent struct {
	at float64
}

// Seconds returns the event's completion time on the modeled clock.
func (e StreamEvent) Seconds() float64 { return e.at }

// Join returns an event at the latest of the given events (a barrier on
// just that set).
func Join(evs ...StreamEvent) StreamEvent {
	var at float64
	for _, e := range evs {
		if e.at > at {
			at = e.at
		}
	}
	return StreamEvent{at: at}
}

// LaneKind identifies one per-stream accounting lane of the timeline.
type LaneKind int

// Lanes: each device's compute stream and transfer stream, the host
// compute stream, and the shared bus lane fault retries are charged to.
const (
	LaneCompute LaneKind = iota
	LaneTransfer
	LaneHost
	LaneFault
)

type laneKey struct {
	kind   LaneKind
	device int
	phase  string
}

// Timeline is the per-stream clock state of one context tree (a root
// context and all Survivors views derived from it share one timeline,
// just like they share one Stats ledger). All methods are safe for
// concurrent use, though charges are serialized by the orchestrating
// goroutine in practice.
type Timeline struct {
	mu       sync.Mutex
	overlap  bool
	compute  []float64 // per physical device compute-stream cursor
	transfer []float64 // per physical device transfer-stream cursor
	host     float64   // host compute-stream cursor
	hostData float64   // latest time the host received data (last D2H finish)
	serial   float64   // what the barrier schedule would have accumulated
	lanes    map[laneKey]float64
}

func newTimeline(overlap bool) *Timeline {
	return &Timeline{overlap: overlap, lanes: make(map[laneKey]float64)}
}

func depMax(after []StreamEvent) float64 {
	var at float64
	for _, e := range after {
		if e.at > at {
			at = e.at
		}
	}
	return at
}

// cursorAt reads a per-device cursor, growing the slice on demand so
// Survivors views addressing sparse physical ids stay in bounds.
func cursorAt(s *[]float64, d int) float64 {
	for len(*s) <= d {
		*s = append(*s, 0)
	}
	return (*s)[d]
}

func setCursor(s *[]float64, d int, v float64) {
	for len(*s) <= d {
		*s = append(*s, 0)
	}
	(*s)[d] = v
}

// maxAllLocked returns the latest cursor across every stream.
func (tl *Timeline) maxAllLocked() float64 {
	m := tl.host
	if tl.hostData > m {
		m = tl.hostData
	}
	for _, v := range tl.compute {
		if v > m {
			m = v
		}
	}
	for _, v := range tl.transfer {
		if v > m {
			m = v
		}
	}
	return m
}

// advanceAllLocked moves every cursor to t — a full barrier.
func (tl *Timeline) advanceAllLocked(t float64) {
	for i := range tl.compute {
		if tl.compute[i] < t {
			tl.compute[i] = t
		}
	}
	for i := range tl.transfer {
		if tl.transfer[i] < t {
			tl.transfer[i] = t
		}
	}
	if tl.host < t {
		tl.host = t
	}
	if tl.hostData < t {
		tl.hostData = t
	}
}

// kernel submits one parallel device-kernel launch: device devs[i] is
// busy for ts[i] on its compute stream. Barrier launches (the
// synchronous API, or any launch with overlap disabled) start at the
// global maximum and drag every cursor to the slowest device's finish.
func (tl *Timeline) kernel(phase string, devs []int, ts []float64, barrier bool, after []StreamEvent) StreamEvent {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var maxT float64
	for _, t := range ts {
		if t > maxT {
			maxT = t
		}
	}
	start := depMax(after)
	var ev float64
	if barrier || !tl.overlap {
		if m := tl.maxAllLocked(); m > start {
			start = m
		}
		ev = start + maxT
		for _, d := range devs {
			setCursor(&tl.compute, d, ev)
		}
		tl.advanceAllLocked(ev)
	} else {
		for i, d := range devs {
			st := start
			if c := cursorAt(&tl.compute, d); c > st {
				st = c
			}
			fin := st + ts[i]
			setCursor(&tl.compute, d, fin)
			if fin > ev {
				ev = fin
			}
		}
	}
	for i, d := range devs {
		tl.lanes[laneKey{LaneCompute, d, phase}] += ts[i]
	}
	tl.serial += maxT
	return StreamEvent{at: ev}
}

// comm submits one communication round of duration t (+stall of faulted
// retries) occupying the transfer streams of the participating devices.
// A device-to-host round delivers its payload to the host at its finish
// (advancing hostData); a host-to-device round cannot start before the
// host holds the data it relays (start >= hostData).
func (tl *Timeline) comm(phase string, h2d bool, devs []int, t, stall float64, barrier bool, after []StreamEvent) StreamEvent {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	dur := t + stall
	start := depMax(after)
	if barrier || !tl.overlap {
		if m := tl.maxAllLocked(); m > start {
			start = m
		}
	} else {
		for _, d := range devs {
			if c := cursorAt(&tl.transfer, d); c > start {
				start = c
			}
		}
		if h2d && tl.hostData > start {
			start = tl.hostData
		}
	}
	fin := start + dur
	for _, d := range devs {
		setCursor(&tl.transfer, d, fin)
		tl.lanes[laneKey{LaneTransfer, d, phase}] += t
	}
	if barrier || !tl.overlap {
		tl.advanceAllLocked(fin)
	} else if !h2d && fin > tl.hostData {
		tl.hostData = fin
	}
	tl.serial += dur
	return StreamEvent{at: fin}
}

// peer submits one peer-to-peer exchange round of duration t (+stall of
// faulted retries) occupying the transfer streams of every participating
// device. Unlike comm, the host is not on the path: the round neither
// waits for hostData nor advances it — the whole point of peer routing.
func (tl *Timeline) peer(phase string, devs []int, t, stall float64, barrier bool, after []StreamEvent) StreamEvent {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	dur := t + stall
	start := depMax(after)
	if barrier || !tl.overlap {
		if m := tl.maxAllLocked(); m > start {
			start = m
		}
	} else {
		for _, d := range devs {
			if c := cursorAt(&tl.transfer, d); c > start {
				start = c
			}
		}
	}
	fin := start + dur
	for _, d := range devs {
		setCursor(&tl.transfer, d, fin)
		tl.lanes[laneKey{LaneTransfer, d, phase}] += t
	}
	if barrier || !tl.overlap {
		tl.advanceAllLocked(fin)
	}
	tl.serial += dur
	return StreamEvent{at: fin}
}

// hostOp submits host compute of duration t on the host stream. The
// host cannot start work on data that has not arrived (start >=
// hostData).
func (tl *Timeline) hostOp(phase string, t float64, barrier bool, after []StreamEvent) StreamEvent {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	start := depMax(after)
	if barrier || !tl.overlap {
		if m := tl.maxAllLocked(); m > start {
			start = m
		}
	} else {
		if tl.host > start {
			start = tl.host
		}
		if tl.hostData > start {
			start = tl.hostData
		}
	}
	fin := start + t
	tl.host = fin
	if barrier || !tl.overlap {
		tl.advanceAllLocked(fin)
	}
	tl.lanes[laneKey{LaneHost, HostDevice, phase}] += t
	tl.serial += t
	return StreamEvent{at: fin}
}

// chargeFault records one faulted-transfer retry (wasted round + backoff)
// on the shared bus lane, mirroring the ledger's "fault" phase charge in
// the same order so the two reconcile exactly.
func (tl *Timeline) chargeFault(t float64) {
	tl.mu.Lock()
	tl.lanes[laneKey{LaneFault, HostDevice, PhaseFault}] += t
	tl.mu.Unlock()
}

func (tl *Timeline) horizon() float64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.maxAllLocked()
}

func (tl *Timeline) serialTime() float64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.serial
}

func (tl *Timeline) overlapEnabled() bool {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.overlap
}

func (tl *Timeline) lane(kind LaneKind, device int, phase string) float64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.lanes[laneKey{kind, device, phase}]
}

func (tl *Timeline) fence(kind LaneKind) StreamEvent {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var m float64
	switch kind {
	case LaneCompute:
		for _, v := range tl.compute {
			if v > m {
				m = v
			}
		}
	case LaneTransfer:
		for _, v := range tl.transfer {
			if v > m {
				m = v
			}
		}
	case LaneHost:
		m = tl.host
		if tl.hostData > m {
			m = tl.hostData
		}
	}
	return StreamEvent{at: m}
}

// --- Context surface -------------------------------------------------------

// SetOverlap enables (true) or disables (false) overlapped scheduling on
// this context tree. With overlap off — the default — every operation,
// including the *On variants, is a full barrier and the engine reproduces
// the synchronous schedule exactly. Set it on the root context before a
// run; Survivors views share the root's timeline.
func (c *Context) SetOverlap(on bool) {
	c.timeline.mu.Lock()
	c.timeline.overlap = on
	c.timeline.mu.Unlock()
}

// OverlapEnabled reports whether overlapped scheduling is on.
func (c *Context) OverlapEnabled() bool { return c.timeline.overlapEnabled() }

// OverlappedTime returns the modeled makespan of the executed schedule:
// the latest cursor over every stream (the critical path through the
// dependency DAG). With overlap disabled it equals SerialTime exactly.
func (c *Context) OverlappedTime() float64 { return c.timeline.horizon() }

// SerialTime returns the modeled time the fully synchronous (barrier)
// schedule would have taken for the same sequence of operations — the
// baseline the overlap speedup is measured against.
func (c *Context) SerialTime() float64 { return c.timeline.serialTime() }

// LaneTime returns the accumulated busy time of one accounting lane:
// (LaneCompute, d, phase) is device d's kernel time in the phase and
// reconciles exactly with Stats.DevicePhase(d, phase).DeviceTime;
// (LaneTransfer, d, phase) reconciles with .CommTime; (LaneHost,
// HostDevice, phase) with Stats.Phase(phase).HostTime; and (LaneFault,
// HostDevice, PhaseFault) with the ledger's fault-phase CommTime.
func (c *Context) LaneTime(kind LaneKind, device int, phase string) float64 {
	return c.timeline.lane(kind, device, phase)
}

// ComputeFence returns an event at the latest compute-stream cursor — a
// conservative dependency on "every device kernel submitted so far".
func (c *Context) ComputeFence() StreamEvent { return c.timeline.fence(LaneCompute) }

// TransferFence returns an event at the latest transfer-stream cursor.
func (c *Context) TransferFence() StreamEvent { return c.timeline.fence(LaneTransfer) }

// HostFence returns an event at the host stream's cursor (including the
// last time data arrived from the devices) — a conservative dependency
// on "everything the host has computed or received so far".
func (c *Context) HostFence() StreamEvent { return c.timeline.fence(LaneHost) }

// ReduceRoundOn is ReduceRound as a stream operation: the round occupies
// the participating transfer streams after its dependencies and delivers
// its payload to the host at the returned event. Ledger charges are
// identical to ReduceRound; with overlap disabled it is a full barrier.
func (c *Context) ReduceRoundOn(phase string, bytes []int, after ...StreamEvent) StreamEvent {
	return c.commRound(phase, dirD2H, bytes, Elem64, false, after)
}

// BroadcastRoundOn is BroadcastRound as a stream operation. It starts no
// earlier than the host holds data to send (the last reduce's arrival);
// pass an explicit event when the payload comes from host *compute*.
func (c *Context) BroadcastRoundOn(phase string, bytes []int, after ...StreamEvent) StreamEvent {
	return c.commRound(phase, dirH2D, bytes, Elem64, false, after)
}

// ReduceRoundElemOn is ReduceRoundOn with an explicit element width:
// bytes already reflect the narrow wire size; elem tags the volume on
// the precision ledger columns (bytesFP32/bytesComp).
func (c *Context) ReduceRoundElemOn(phase string, bytes []int, elem Elem, after ...StreamEvent) StreamEvent {
	return c.commRound(phase, dirD2H, bytes, elem, false, after)
}

// BroadcastRoundElemOn is BroadcastRoundOn with an explicit element
// width.
func (c *Context) BroadcastRoundElemOn(phase string, bytes []int, elem Elem, after ...StreamEvent) StreamEvent {
	return c.commRound(phase, dirH2D, bytes, elem, false, after)
}

// DeviceKernelOn is DeviceKernel as a stream operation: each device's
// share runs on its own compute stream after the dependencies, and the
// returned event fires when the slowest device finishes.
func (c *Context) DeviceKernelOn(phase string, work []Work, after ...StreamEvent) StreamEvent {
	return c.deviceKernel(phase, work, false, after)
}

// HostComputeOn is HostCompute as a stream operation on the host stream.
func (c *Context) HostComputeOn(phase string, flops float64, after ...StreamEvent) StreamEvent {
	return c.hostCompute(phase, flops, false, after)
}
