package measure

// Observer receives every timed kernel sample. The obs package's metrics
// registry implements it (Registry.ObserveKernel), feeding per-kernel
// duration histograms and sample counters without this package knowing
// about metrics at all.
type Observer interface {
	// ObserveKernel reports one sample: the kernel's name, the selected
	// per-invocation seconds, and whether the clock was modeled.
	ObserveKernel(name string, seconds float64, modeled bool)
}

// Instrument wraps a Timer so every sample is also reported to o. A nil
// observer returns t unchanged; determinism of the underlying timer is
// preserved (observation never perturbs the clock).
func Instrument(t Timer, o Observer) Timer {
	if o == nil {
		return t
	}
	return instrumented{t: t, o: o}
}

type instrumented struct {
	t Timer
	o Observer
}

func (i instrumented) Time(k Kernel, f func()) Sample {
	s := i.t.Time(k, f)
	i.o.ObserveKernel(k.Name, s.Seconds, s.Modeled)
	return s
}

func (i instrumented) Deterministic() bool { return i.t.Deterministic() }
