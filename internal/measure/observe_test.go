package measure

import (
	"testing"

	"cagmres/internal/gpu"
)

type recordedSample struct {
	name    string
	seconds float64
	modeled bool
}

type recorder struct{ samples []recordedSample }

func (r *recorder) ObserveKernel(name string, seconds float64, modeled bool) {
	r.samples = append(r.samples, recordedSample{name, seconds, modeled})
}

func TestInstrumentReportsSamples(t *testing.T) {
	rec := &recorder{}
	base := NewModelTimer(gpu.M2090())
	timer := Instrument(base, rec)
	if !timer.Deterministic() {
		t.Fatal("instrumentation broke determinism")
	}
	k := Kernel{Name: "tsqr", Flops: 1e6, Bytes: 1e5, Parallelism: 4}
	ran := false
	s := timer.Time(k, func() { ran = true })
	if !ran {
		t.Fatal("kernel body not executed")
	}
	if s != base.Time(k, nil) {
		t.Fatal("instrumentation changed the sample")
	}
	if len(rec.samples) != 1 {
		t.Fatalf("observed %d samples", len(rec.samples))
	}
	got := rec.samples[0]
	if got.name != "tsqr" || got.seconds != s.Seconds || !got.modeled {
		t.Fatalf("observed %+v, want {tsqr %v true}", got, s.Seconds)
	}
}

func TestInstrumentNilObserver(t *testing.T) {
	base := NewModelTimer(gpu.M2090())
	if Instrument(base, nil) != Timer(base) {
		t.Fatal("nil observer should return the timer unchanged")
	}
}
