// Package measure gives every benchmark and test a deterministic clock.
//
// The paper's results are statements about modeled communication and
// computation structure, yet a naive reproduction times real Go kernels
// with time.Now() — which turns every perf assertion into a wall-clock
// coin flip on a loaded CI host. This package separates the two concerns
// behind one interface:
//
//   - ModelTimer charges each host kernel's cost shape (flops, bytes,
//     parallelism, dispatch count) through the gpu.CostModel host
//     constants. The result is a pure function of the model, so figure
//     generators report byte-identical Gflop/s on every machine and every
//     run. The kernel body is still executed once, so the code path stays
//     exercised; only the clock is synthetic.
//
//   - WallTimer wraps real timing with warmup, N repetitions and
//     min/median selection — the statistics-aware fallback for the
//     opt-in "measured" mode (cmd/experiments -measured).
//
// Benchmark drivers take a Timer and do not care which one they get;
// Timer.Deterministic reports whether exact assertions are safe.
package measure

import (
	"time"

	"cagmres/internal/gpu"
)

// Kernel describes the cost shape of one host-kernel invocation: the
// structural facts a cost model needs, independent of the machine the
// benchmark happens to run on.
type Kernel struct {
	// Name identifies the kernel in tables and traces.
	Name string
	// Flops is the floating-point operation count of one invocation.
	Flops float64
	// Bytes is the memory traffic (reads + writes) of one invocation.
	Bytes float64
	// Parallelism is the number of concurrent workers the kernel schedule
	// uses: 1 for the serial/one-pass kernels, the panel count for the
	// batched tall-skinny kernels. Values above the model's core count
	// are capped there.
	Parallelism int
	// Dispatches is the number of per-invocation scheduling events
	// (goroutine spawns / kernel launches / reduction joins), each charged
	// a fixed dispatch overhead. It is what makes many tiny launches
	// expensive even before any data moves.
	Dispatches int
}

// Sample is the result of timing one kernel.
type Sample struct {
	// Seconds is the selected per-invocation time.
	Seconds float64
	// Reps is how many timed repetitions contributed (1 for modeled time).
	Reps int
	// Modeled reports whether Seconds came from a cost model rather than
	// a clock.
	Modeled bool
}

// Gflops converts the sample to a rate for the given flop count.
func (s Sample) Gflops(flops float64) float64 {
	if s.Seconds <= 0 {
		return 0
	}
	return flops / s.Seconds / 1e9
}

// Duration returns the per-invocation time as a time.Duration.
func (s Sample) Duration() time.Duration {
	return time.Duration(s.Seconds * float64(time.Second))
}

// Timer converts one kernel invocation into seconds. Implementations
// decide whether f is timed (WallTimer) or merely executed for its side
// effects while the clock comes from a model (ModelTimer). f may be nil
// when the caller only wants the cost estimate.
type Timer interface {
	// Time measures one invocation of f described by k.
	Time(k Kernel, f func()) Sample
	// Deterministic reports whether repeated calls return identical
	// samples, i.e. whether exact equality assertions are safe.
	Deterministic() bool
}

// HostCores is the core count of the modeled host: the paper's testbed
// has two 8-core Sandy Bridge sockets. CostModel.HostGflops and
// HostMemBW are aggregate figures over these cores.
const HostCores = 16

// serialBWShare is the fraction of the aggregate two-socket memory
// bandwidth a single core can sustain (typical STREAM scaling: one core
// saturates roughly a quarter of the socket-pair bandwidth).
const serialBWShare = 0.25

// defaultDispatch is the modeled cost of one host scheduling event
// (goroutine spawn + channel synchronization), ~1 microsecond.
const defaultDispatch = 1e-6

// ModelTimer charges kernels against the host side of a gpu.CostModel.
// The zero value is not useful; construct with NewModelTimer.
type ModelTimer struct {
	// Model supplies HostGflops and HostMemBW.
	Model gpu.CostModel
	// Cores is the modeled core count (default HostCores).
	Cores int
	// Dispatch is the per-dispatch overhead in seconds (default 1us).
	Dispatch float64
	// SkipExec disables the single correctness execution of f, for
	// callers that only want the cost estimate.
	SkipExec bool
}

// NewModelTimer returns a deterministic timer over the given cost model.
func NewModelTimer(m gpu.CostModel) *ModelTimer {
	return &ModelTimer{Model: m}
}

// Seconds returns the modeled per-invocation time of k: the larger of
// the compute-bound and memory-bound estimates at k's parallelism, plus
// the dispatch overhead. Pure function of (Model, k).
func (t *ModelTimer) Seconds(k Kernel) float64 {
	cores := t.Cores
	if cores <= 0 {
		cores = HostCores
	}
	p := k.Parallelism
	if p < 1 {
		p = 1
	}
	if p > cores {
		p = cores
	}
	// Compute rate scales linearly with the engaged cores.
	rate := t.Model.HostGflops * 1e9 * float64(p) / float64(cores)
	sec := k.Flops / rate
	// Bandwidth saturates once enough cores issue streams: one core
	// sustains serialBWShare of the aggregate, p cores sustain
	// min(1, p*serialBWShare).
	share := float64(p) * serialBWShare
	if share > 1 {
		share = 1
	}
	if mt := k.Bytes / (t.Model.HostMemBW * share); mt > sec {
		sec = mt
	}
	dispatch := t.Dispatch
	if dispatch == 0 {
		dispatch = defaultDispatch
	}
	d := k.Dispatches
	if d < 1 {
		d = 1
	}
	return sec + float64(d)*dispatch
}

// Time executes f once (unless SkipExec) and returns the modeled time.
func (t *ModelTimer) Time(k Kernel, f func()) Sample {
	if f != nil && !t.SkipExec {
		f()
	}
	return Sample{Seconds: t.Seconds(k), Reps: 1, Modeled: true}
}

// Deterministic reports true: modeled time is a pure function of the model.
func (t *ModelTimer) Deterministic() bool { return true }

// Selection picks the representative sample from a set of repetitions.
type Selection int

const (
	// SelectMin reports the fastest repetition — the standard estimator
	// for "the cost of the kernel absent interference".
	SelectMin Selection = iota
	// SelectMedian reports the middle repetition — robust when the system
	// is persistently noisy in both directions.
	SelectMedian
)

// WallTimer measures real elapsed time with warmup and repetition. The
// zero value is usable: 1 warmup, 5 repetitions, min selection, 20ms
// minimum timed batch.
type WallTimer struct {
	// Warmup is the number of untimed calls before measurement (default 1).
	Warmup int
	// Reps is the number of timed repetitions (default 5, "best of 5").
	Reps int
	// Select picks the representative repetition (default SelectMin).
	Select Selection
	// MinBatch is the minimum elapsed time of one repetition batch; f is
	// called in a doubling inner loop until the batch takes at least this
	// long, so sub-microsecond kernels still get stable readings
	// (default 20ms).
	MinBatch time.Duration
	// MaxInner caps the inner doubling loop (default 1024).
	MaxInner int
}

// Time measures f with warmup + repetitions and returns the selected
// per-invocation time. k is used only for documentation; the clock is real.
func (t *WallTimer) Time(k Kernel, f func()) Sample {
	warm := t.Warmup
	if warm <= 0 {
		warm = 1
	}
	reps := t.Reps
	if reps <= 0 {
		reps = 5
	}
	minBatch := t.MinBatch
	if minBatch <= 0 {
		minBatch = 20 * time.Millisecond
	}
	maxInner := t.MaxInner
	if maxInner <= 0 {
		maxInner = 1024
	}
	for i := 0; i < warm; i++ {
		f()
	}
	// Calibrate the inner repetition count once so each timed batch
	// runs at least MinBatch.
	inner := 1
	start := time.Now()
	f()
	el := time.Since(start)
	for el < minBatch && inner < maxInner {
		inner *= 2
		start = time.Now()
		for i := 0; i < inner; i++ {
			f()
		}
		el = time.Since(start)
	}
	times := make([]float64, 0, reps)
	times = append(times, el.Seconds()/float64(inner))
	for r := 1; r < reps; r++ {
		start = time.Now()
		for i := 0; i < inner; i++ {
			f()
		}
		times = append(times, time.Since(start).Seconds()/float64(inner))
	}
	return Sample{Seconds: pick(times, t.Select), Reps: reps}
}

// Deterministic reports false: wall-clock readings vary run to run.
func (t *WallTimer) Deterministic() bool { return false }

// pick returns the selected statistic of times (which it sorts in place).
func pick(times []float64, sel Selection) float64 {
	// Insertion sort: reps is tiny.
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	if sel == SelectMedian {
		return times[len(times)/2]
	}
	return times[0]
}
