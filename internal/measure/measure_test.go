package measure

import (
	"testing"
	"time"

	"cagmres/internal/gpu"
)

func TestModelTimerDeterministic(t *testing.T) {
	tm := NewModelTimer(gpu.M2090())
	k := Kernel{Name: "gemm", Flops: 1.2e8, Bytes: 3e7, Parallelism: 16, Dispatches: 33}
	a := tm.Time(k, nil)
	b := tm.Time(k, nil)
	if a != b {
		t.Fatalf("modeled samples differ: %+v vs %+v", a, b)
	}
	if !a.Modeled || a.Reps != 1 {
		t.Fatalf("sample not marked modeled: %+v", a)
	}
	if !tm.Deterministic() {
		t.Fatal("ModelTimer must report deterministic")
	}
}

func TestModelTimerParallelBeatsSerial(t *testing.T) {
	// The Figure 11(a,b) property as a model invariant: the batched
	// (panel-parallel) schedule of the same work is strictly faster than
	// the serial one-pass schedule for tall inputs.
	tm := NewModelTimer(gpu.M2090())
	n, c := 1<<17, 30
	flops := float64(n) * float64(c) * float64(c)
	bytes := 8 * float64(n) * float64(c)
	serial := tm.Seconds(Kernel{Flops: flops, Bytes: bytes, Parallelism: 1, Dispatches: 1})
	batched := tm.Seconds(Kernel{Flops: flops, Bytes: bytes, Parallelism: 32, Dispatches: 33})
	if batched >= serial {
		t.Fatalf("batched %v not below serial %v", batched, serial)
	}
}

func TestModelTimerComputeVsMemoryBound(t *testing.T) {
	m := gpu.M2090()
	tm := NewModelTimer(m)
	// Pure compute at full parallelism: flops / aggregate rate + dispatch.
	k := Kernel{Flops: 1e9, Parallelism: HostCores, Dispatches: 1}
	want := 1e9/(m.HostGflops*1e9) + defaultDispatch
	if got := tm.Seconds(k); !close(got, want) {
		t.Fatalf("compute-bound time %v, want %v", got, want)
	}
	// Huge traffic, no flops: charged against the bandwidth share.
	k = Kernel{Bytes: 4e9, Parallelism: HostCores, Dispatches: 1}
	want = 4e9/m.HostMemBW + defaultDispatch
	if got := tm.Seconds(k); !close(got, want) {
		t.Fatalf("memory-bound time %v, want %v", got, want)
	}
	// A single core only gets serialBWShare of the bus.
	k.Parallelism = 1
	want = 4e9/(m.HostMemBW*serialBWShare) + defaultDispatch
	if got := tm.Seconds(k); !close(got, want) {
		t.Fatalf("serial memory-bound time %v, want %v", got, want)
	}
}

func TestModelTimerClampsParallelism(t *testing.T) {
	tm := NewModelTimer(gpu.M2090())
	k := Kernel{Flops: 1e9, Parallelism: 10_000, Dispatches: 1}
	atCores := k
	atCores.Parallelism = HostCores
	if tm.Seconds(k) != tm.Seconds(atCores) {
		t.Fatal("parallelism above the core count must cap at the core count")
	}
	k.Parallelism = 0
	serial := k
	serial.Parallelism = 1
	if tm.Seconds(k) != tm.Seconds(serial) {
		t.Fatal("zero parallelism must mean serial")
	}
}

func TestModelTimerDispatchFloor(t *testing.T) {
	// Many tiny dispatches dominate: the property that makes BLAS-1 MGS
	// expensive before any data moves.
	tm := NewModelTimer(gpu.M2090())
	tiny := Kernel{Flops: 10, Dispatches: 1000}
	if got := tm.Seconds(tiny); got < 1000*defaultDispatch {
		t.Fatalf("dispatch floor not charged: %v", got)
	}
}

func TestModelTimerExecutesOnce(t *testing.T) {
	tm := NewModelTimer(gpu.M2090())
	calls := 0
	tm.Time(Kernel{Flops: 1}, func() { calls++ })
	if calls != 1 {
		t.Fatalf("f called %d times, want 1", calls)
	}
	tm.SkipExec = true
	tm.Time(Kernel{Flops: 1}, func() { calls++ })
	if calls != 1 {
		t.Fatalf("SkipExec still called f (%d calls)", calls)
	}
}

func TestWallTimerRepetitions(t *testing.T) {
	wt := &WallTimer{Warmup: 2, Reps: 3, MinBatch: time.Microsecond, MaxInner: 1}
	calls := 0
	s := wt.Time(Kernel{Name: "x"}, func() { calls++ })
	// 2 warmup + 1 calibration + 2 further reps (inner loop stays 1 only
	// if the first call already exceeds MinBatch; it may double, so just
	// check the floor and the sample shape).
	if calls < 5 {
		t.Fatalf("f called %d times, want >= 5", calls)
	}
	if s.Modeled {
		t.Fatal("wall sample marked modeled")
	}
	if s.Reps != 3 {
		t.Fatalf("reps = %d", s.Reps)
	}
	if s.Seconds < 0 {
		t.Fatalf("negative time %v", s.Seconds)
	}
	if (&WallTimer{}).Deterministic() {
		t.Fatal("WallTimer must not report deterministic")
	}
}

func TestPickSelection(t *testing.T) {
	if got := pick([]float64{5, 1, 3}, SelectMin); got != 1 {
		t.Fatalf("min = %v", got)
	}
	if got := pick([]float64{5, 1, 3}, SelectMedian); got != 3 {
		t.Fatalf("median = %v", got)
	}
}

func TestSampleGflops(t *testing.T) {
	s := Sample{Seconds: 0.5}
	if got := s.Gflops(1e9); got != 2 {
		t.Fatalf("gflops = %v", got)
	}
	if (Sample{}).Gflops(1e9) != 0 {
		t.Fatal("zero-time sample must report 0 Gflop/s")
	}
	if d := (Sample{Seconds: 1.5}).Duration(); d != 1500*time.Millisecond {
		t.Fatalf("duration = %v", d)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-12*(a+b)
}
