package profile

import (
	"fmt"
	"sort"
	"strings"

	"cagmres/internal/gpu"
)

// This file ships the inter-node fabric catalog and the helpers that arm
// the cluster tier on a profile. A fabric is one node uplink's α/β into
// the cluster network; constants are sustained figures for the usual
// datacenter interconnect generations, calibrated to published MPI
// pt2pt/osu-benchmark numbers rather than NIC line rates.

// fabrics maps canonical fabric names to their link constants.
var fabrics = map[string]gpu.Fabric{
	// HDR InfiniBand with RDMA: ~2 us NIC-to-NIC plus MPI overhead,
	// ~25 GB/s sustained of a 200 Gb/s link.
	"ib-hdr": {Kind: gpu.FabricIBHDR, Latency: 5e-6, Bandwidth: 25e9},
	// EDR InfiniBand (100 Gb/s): the Summit-era baseline.
	"ib-edr": {Kind: gpu.FabricIBEDR, Latency: 6e-6, Bandwidth: 12e9},
	// 100G Ethernet with RoCE: near-IB bandwidth, more protocol latency.
	"ethernet-100g": {Kind: gpu.FabricEthernet100G, Latency: 10e-6, Bandwidth: 12e9},
	// Plain 25G Ethernet through a kernel TCP stack — the high-latency,
	// thin-pipe end of the scaling study.
	"ethernet-25g": {Kind: gpu.FabricEthernet25G, Latency: 30e-6, Bandwidth: 3e9},
}

// DefaultFabricName is the fabric the flag and spec layers assume when a
// cluster is armed without naming one.
const DefaultFabricName = "ib-hdr"

// FabricNames returns the shipped fabric names, sorted.
func FabricNames() []string {
	names := make([]string, 0, len(fabrics))
	for n := range fabrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FabricByName resolves a shipped fabric by its canonical name
// (case-insensitive).
func FabricByName(name string) (gpu.Fabric, error) {
	f, ok := fabrics[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return gpu.Fabric{}, fmt.Errorf("profile: unknown fabric %q (have %s)", name, strings.Join(FabricNames(), ", "))
	}
	return f, nil
}

// WithCluster returns a copy of p with the cluster tier armed: the
// devices grouped into simulated nodes of devicesPerNode, joined by the
// fabric. Like WithTopology it is the counterfactual knob of the
// cluster study: the node-local machine stays fixed while the node
// count and fabric generation vary.
func WithCluster(p gpu.Profile, devicesPerNode int, fab gpu.Fabric) (gpu.Profile, error) {
	if devicesPerNode < 1 {
		return gpu.Profile{}, fmt.Errorf("profile: devices per node must be >= 1, got %d", devicesPerNode)
	}
	if !fab.Valid() {
		return gpu.Profile{}, fmt.Errorf("profile: invalid fabric constants %+v", fab)
	}
	p.Cluster = gpu.Cluster{DevicesPerNode: devicesPerNode, Fabric: fab}
	if fab.Kind != "" {
		p.Name = fmt.Sprintf("%s+%dx%s", p.Name, devicesPerNode, fab.Kind)
	}
	if p.BF16Transfer && !bf16Supported(p) {
		// A non-RDMA fabric re-frames inter-node payloads at full width:
		// the node-local bf16 claim does not extend to the cluster tier.
		p.BF16Transfer = false
	}
	return p, nil
}

// ClusterFromFlags applies the -devices-per-node/-fabric flag pair to an
// already-resolved profile selection (the result of FromFlags; nil means
// "keep the built-in default"). Both zero keeps the selection unchanged.
// Arming a fabric requires a node size; an unnamed fabric defaults to
// ib-hdr.
func ClusterFromFlags(base *gpu.Profile, devicesPerNode int, fabric string) (*gpu.Profile, error) {
	if devicesPerNode == 0 && fabric == "" {
		return base, nil
	}
	if devicesPerNode < 1 {
		return nil, fmt.Errorf("profile: -fabric needs -devices-per-node >= 1, got %d", devicesPerNode)
	}
	p := M2090()
	if base != nil {
		p = *base
	}
	fab := fabrics[DefaultFabricName]
	if fabric != "" {
		f, err := FabricByName(fabric)
		if err != nil {
			return nil, err
		}
		fab = f
	}
	q, err := WithCluster(p, devicesPerNode, fab)
	if err != nil {
		return nil, err
	}
	return &q, nil
}
