package profiletest

import (
	"testing"

	"cagmres/internal/gpu"
)

// RunCluster asserts the full conformance suite plus the two-tier
// invariants against a clustered profile: the base suite already covers
// finite times, monotone costs, route symmetry (including cross-node
// pairs) and lane/ledger reconciliation; the cluster checks add the
// fabric-tier ledger split, the single-node degeneracy of host rounds,
// and bit-identical replay of a cross-node device death.
func RunCluster(t *testing.T, p gpu.Profile) {
	t.Helper()
	if !p.Clustered() {
		t.Fatalf("RunCluster on non-clustered profile %q", p.Name)
	}
	Run(t, p)
	t.Run("cluster-tier-split", func(t *testing.T) { checkClusterTierSplit(t, p) })
	t.Run("cluster-degenerate", func(t *testing.T) { checkClusterDegenerate(t, p) })
	t.Run("cluster-fault-replay", func(t *testing.T) { checkClusterFaultReplay(t, p) })
}

// checkClusterTierSplit asserts the ledger routes exchange bytes to the
// right tier: a same-node pair lands on the node-local column, a
// cross-node pair on bytesInterNode, and the fabric tier is strictly
// slower than free.
func checkClusterTierSplit(t *testing.T, p gpu.Profile) {
	t.Helper()
	g := p.Cluster.DevicesPerNode
	ng := 2 * g // two full nodes
	const B = 1 << 18

	c := gpu.NewContextWithProfile(ng, p)
	c.PeerExchange("cross", pairTraffic(ng, 0, g, B)) // node 0 -> node 1
	ps := c.Stats().Phase("cross")
	if ps.BytesInterNode != B {
		t.Errorf("cross-node pair: bytesInterNode %d, want %d", ps.BytesInterNode, B)
	}
	if ps.BytesPeer != 0 {
		t.Errorf("cross-node pair leaked %d bytes onto the node-local column", ps.BytesPeer)
	}

	if g > 1 {
		c2 := gpu.NewContextWithProfile(ng, p)
		c2.PeerExchange("local", pairTraffic(ng, 0, 1, B)) // both on node 0
		ps2 := c2.Stats().Phase("local")
		if ps2.BytesInterNode != 0 {
			t.Errorf("same-node pair crossed the fabric: %d bytes", ps2.BytesInterNode)
		}
		if ps2.BytesPeer != B {
			t.Errorf("same-node pair: node-local bytes %d, want %d", ps2.BytesPeer, B)
		}
	}

	// A host round charges remote nodes' shares to the fabric too.
	c3 := gpu.NewContextWithProfile(ng, p)
	bytes := make([]int, ng)
	for d := range bytes {
		bytes[d] = B
	}
	c3.ReduceRound("red", bytes)
	ps3 := c3.Stats().Phase("red")
	if ps3.BytesD2H != ng*B {
		t.Errorf("clustered reduce BytesD2H %d, want %d", ps3.BytesD2H, ng*B)
	}
	if ps3.BytesInterNode != g*B {
		t.Errorf("clustered reduce bytesInterNode %d, want %d (node 1's share)", ps3.BytesInterNode, g*B)
	}
}

// checkClusterDegenerate asserts that when every device fits one node,
// the clustered charging paths reproduce the flat single-node ledger
// (the byte-identity guarantee behind the pre-cluster goldens).
func checkClusterDegenerate(t *testing.T, p gpu.Profile) {
	t.Helper()
	one := p
	one.Cluster.DevicesPerNode = devCount // all devices on node 0
	c := gpu.NewContextWithProfile(devCount, one)
	bytes := []int{100, 200, 300, 400}
	c.ReduceRound("x", bytes)
	ps := c.Stats().Phase("x")
	if ps.BytesInterNode != 0 {
		t.Errorf("one-node cluster crossed the fabric: %d bytes", ps.BytesInterNode)
	}
	flatP := p
	flatP.Cluster = gpu.Cluster{}
	flat := gpu.NewContextWithProfile(devCount, flatP)
	flat.ReduceRound("x", bytes)
	fs := flat.Stats().Phase("x")
	if ps.CommTime != fs.CommTime || ps.BytesD2H != fs.BytesD2H {
		t.Errorf("one-node cluster reduce differs from flat machine: %+v vs %+v", ps, fs)
	}
}

// checkClusterFaultReplay kills the last device — on the last node — at
// virtual time zero-plus, re-derives a Survivors view, keeps charging,
// and asserts two seeded runs render bit-identical ledgers: cross-node
// death recovery must be exactly replayable.
func checkClusterFaultReplay(t *testing.T, p gpu.Profile) {
	t.Helper()
	run := func() (string, gpu.FaultCounts) {
		c := gpu.NewContextWithProfile(devCount, p)
		c.InjectFaults(gpu.FaultPlan{
			Seed:              11,
			TransferFaultProb: 0.3,
			MaxTransferFaults: 4,
			Deaths:            []gpu.DeviceDeath{{Device: devCount - 1, At: 1e-9}},
		})
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(*gpu.DeviceLostError); !ok {
						panic(r)
					}
				}
			}()
			workload(c)
		}()
		surv, err := c.Survivors()
		if err != nil {
			t.Fatal(err)
		}
		workload(surv)
		return c.Stats().String() + "\n" + c.Stats().DeviceString(), c.FaultCounts()
	}
	s1, f1 := run()
	s2, f2 := run()
	if s1 != s2 {
		t.Errorf("cross-node fault replay diverged:\n--- first ---\n%s\n--- second ---\n%s", s1, s2)
	}
	if f1 != f2 {
		t.Errorf("fault counts diverged: %+v vs %+v", f1, f2)
	}
	if f1.DeviceDeaths != 1 {
		t.Errorf("scheduled cross-node death did not fire exactly once: %+v", f1)
	}
}
