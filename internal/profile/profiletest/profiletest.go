// Package profiletest is a reusable conformance suite for machine
// profiles: any gpu.Profile handed to Run must satisfy the invariants
// the solver stack assumes of a machine description — sane times,
// monotone costs, symmetric routing, a ledger that reconciles with the
// stream timeline, and charge/replay determinism. New profiles get
// fenced by instantiating Run in a one-line test; the suite is what
// lets the simulator accept user-supplied profiles (HTTP API, config
// files) without auditing each one by hand.
package profiletest

import (
	"math"
	"strings"
	"testing"

	"cagmres/internal/gpu"
)

// devCount is the device count the suite exercises: enough for a ring
// with a non-trivial shortest arc and distinct switch links.
const devCount = 4

// Run asserts the full conformance suite against one profile.
func Run(t *testing.T, p gpu.Profile) {
	t.Helper()
	t.Run("finite-times", func(t *testing.T) { checkFiniteTimes(t, p) })
	t.Run("monotone-comm", func(t *testing.T) { checkMonotoneComm(t, p) })
	t.Run("monotone-compute", func(t *testing.T) { checkMonotoneCompute(t, p) })
	t.Run("route-symmetry", func(t *testing.T) { checkRouteSymmetry(t, p) })
	t.Run("lane-ledger", func(t *testing.T) { checkLaneLedger(t, p) })
	t.Run("overlap-identity", func(t *testing.T) { checkOverlapIdentity(t, p) })
	t.Run("fault-replay", func(t *testing.T) { checkFaultReplay(t, p) })
	t.Run("fp32-speedup", func(t *testing.T) { checkFP32Speedup(t, p) })
	t.Run("bf16-transfer", func(t *testing.T) { checkBF16Transfer(t, p) })
	t.Run("precision-ledger", func(t *testing.T) { checkPrecisionLedger(t, p) })
}

// workload drives every charging path of the runtime with deterministic
// shapes: host-mediated rounds, per-device and uniform kernels, host
// compute, a peer exchange, and the stream (*On) variants with a
// dependency chain.
func workload(c *gpu.Context) {
	ng := c.NumDevices
	uniform := func(b int) []int {
		out := make([]int, ng)
		for d := range out {
			out[d] = b
		}
		return out
	}
	c.ReduceRound("setup", uniform(4096))
	c.BroadcastRound("setup", uniform(8192))

	work := make([]gpu.Work, ng)
	for d := range work {
		work[d] = gpu.Work{Flops: float64(1+d) * 2e6, Bytes: float64(1+d) * 1.5e6}
	}
	c.DeviceKernel("spmv", work)
	c.UniformKernel("tsqr", gpu.Work{Flops: 3e6, Bytes: 2e6})
	c.HostCompute("lsq", 5e5)

	c.PeerExchange("mpk", ringTraffic(ng, 4096))

	ev := c.ReduceRoundOn("orth", uniform(2048), c.ComputeFence())
	c.DeviceKernelOn("orth", work, ev)
	c.HostComputeOn("lsq", 1e5)
	c.HaloExchangeOn("mpk", uniform(1024), uniform(3072), ringTraffic(ng, 1024))
}

// ringTraffic builds a neighbor-exchange traffic matrix: every device
// ships b bytes to each ring neighbor.
func ringTraffic(ng, b int) [][]int {
	tr := make([][]int, ng)
	for s := range tr {
		tr[s] = make([]int, ng)
		if ng > 1 {
			tr[s][(s+1)%ng] += b
			tr[s][(s+ng-1)%ng] += b
		}
	}
	return tr
}

// pairTraffic puts b bytes on the single ordered pair s->d.
func pairTraffic(ng, s, d, b int) [][]int {
	tr := make([][]int, ng)
	for i := range tr {
		tr[i] = make([]int, ng)
	}
	tr[s][d] = b
	return tr
}

func checkFiniteTimes(t *testing.T, p gpu.Profile) {
	t.Helper()
	c := gpu.NewContextWithProfile(devCount, p)
	workload(c)
	st := c.Stats()
	if tt := st.TotalTime(); !(tt > 0) || math.IsInf(tt, 0) || math.IsNaN(tt) {
		t.Fatalf("total time not positive finite: %g", tt)
	}
	for _, phase := range st.Phases() {
		ps := st.Phase(phase)
		for name, v := range map[string]float64{
			"comm": ps.CommTime, "device": ps.DeviceTime, "host": ps.HostTime,
		} {
			if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
				t.Errorf("phase %s: %s time %g not finite and non-negative", phase, name, v)
			}
		}
		if ps.Bytes() < 0 || ps.Rounds < 0 || ps.Messages < 0 {
			t.Errorf("phase %s: negative counters %+v", phase, ps)
		}
	}
}

// checkMonotoneComm asserts the round cost never decreases as the byte
// volume grows, for both the host-mediated and the peer-routed path.
func checkMonotoneComm(t *testing.T, p gpu.Profile) {
	t.Helper()
	hostCost := func(b int) float64 {
		c := gpu.NewContextWithProfile(devCount, p)
		bytes := make([]int, devCount)
		for d := range bytes {
			bytes[d] = b
		}
		c.ReduceRound("x", bytes)
		return c.Stats().TotalTime()
	}
	peerCost := func(b int) float64 {
		c := gpu.NewContextWithProfile(devCount, p)
		c.PeerExchange("x", ringTraffic(devCount, b))
		return c.Stats().TotalTime()
	}
	sizes := []int{0, 64, 4096, 1 << 20, 64 << 20}
	for name, cost := range map[string]func(int) float64{"host": hostCost, "peer": peerCost} {
		prev := -1.0
		for _, b := range sizes {
			got := cost(b)
			if got < prev {
				t.Errorf("%s path: cost decreased from %g to %g at %d bytes", name, prev, got, b)
			}
			prev = got
		}
	}
}

// checkMonotoneCompute asserts kernel cost never decreases in flops or
// bytes, on the device and on the host.
func checkMonotoneCompute(t *testing.T, p gpu.Profile) {
	t.Helper()
	devCost := func(flops, bytes float64) float64 {
		c := gpu.NewContextWithProfile(devCount, p)
		c.UniformKernel("x", gpu.Work{Flops: flops, Bytes: bytes})
		return c.Stats().TotalTime()
	}
	hostCost := func(flops float64) float64 {
		c := gpu.NewContextWithProfile(devCount, p)
		c.HostCompute("x", flops)
		return c.Stats().TotalTime()
	}
	prev := -1.0
	for _, f := range []float64{0, 1e3, 1e6, 1e9, 1e12} {
		if got := devCost(f, 0); got < prev {
			t.Errorf("device cost decreased to %g at %g flops", got, f)
		} else {
			prev = got
		}
	}
	prev = -1.0
	for _, b := range []float64{0, 1e3, 1e6, 1e9} {
		if got := devCost(0, b); got < prev {
			t.Errorf("device cost decreased to %g at %g bytes", got, b)
		} else {
			prev = got
		}
	}
	prev = -1.0
	for _, f := range []float64{0, 1e3, 1e6, 1e9} {
		if got := hostCost(f); got < prev {
			t.Errorf("host cost decreased to %g at %g flops", got, f)
		} else {
			prev = got
		}
	}
}

// checkRouteSymmetry asserts a unit transfer s->d costs exactly what
// d->s costs, for every ordered device pair — no topology the simulator
// ships has asymmetric links.
func checkRouteSymmetry(t *testing.T, p gpu.Profile) {
	t.Helper()
	cost := func(s, d int) float64 {
		c := gpu.NewContextWithProfile(devCount, p)
		c.PeerExchange("x", pairTraffic(devCount, s, d, 1<<16))
		return c.Stats().TotalTime()
	}
	for s := 0; s < devCount; s++ {
		for d := s + 1; d < devCount; d++ {
			fwd, rev := cost(s, d), cost(d, s)
			if fwd != rev {
				t.Errorf("asymmetric route: %d->%d costs %g, %d->%d costs %g", s, d, fwd, d, s, rev)
			}
		}
	}
}

// checkLaneLedger reconciles the overlap timeline's accounting lanes
// with the Stats ledger: per phase, every device's transfer lane equals
// the phase's CommTime (all rounds here involve all devices), each
// device's compute lane equals its own DevicePhase kernel time, and the
// host lane equals HostTime.
func checkLaneLedger(t *testing.T, p gpu.Profile) {
	t.Helper()
	c := gpu.NewContextWithProfile(devCount, p)
	c.SetOverlap(true)
	workload(c)
	st := c.Stats()
	const tol = 1e-12
	for _, phase := range st.Phases() {
		ps := st.Phase(phase)
		for d := 0; d < devCount; d++ {
			if lane := c.LaneTime(gpu.LaneTransfer, d, phase); math.Abs(lane-ps.CommTime) > tol*(1+ps.CommTime) {
				t.Errorf("phase %s device %d: transfer lane %g != ledger comm %g", phase, d, lane, ps.CommTime)
			}
			dev := st.DevicePhase(d, phase)
			if lane := c.LaneTime(gpu.LaneCompute, d, phase); math.Abs(lane-dev.DeviceTime) > tol*(1+dev.DeviceTime) {
				t.Errorf("phase %s device %d: compute lane %g != ledger device %g", phase, d, lane, dev.DeviceTime)
			}
		}
		if lane := c.LaneTime(gpu.LaneHost, gpu.HostDevice, phase); math.Abs(lane-ps.HostTime) > tol*(1+ps.HostTime) {
			t.Errorf("phase %s: host lane %g != ledger host %g", phase, lane, ps.HostTime)
		}
	}
	if h, s := c.OverlappedTime(), c.SerialTime(); h > s*(1+tol) {
		t.Errorf("overlapped horizon %g exceeds serial time %g", h, s)
	}
}

// checkOverlapIdentity asserts the ledger charges are bit-identical
// with and without overlapped scheduling — overlap reorders time, it
// never changes what is charged.
func checkOverlapIdentity(t *testing.T, p gpu.Profile) {
	t.Helper()
	render := func(overlap bool) string {
		c := gpu.NewContextWithProfile(devCount, p)
		c.SetOverlap(overlap)
		workload(c)
		return c.Stats().String() + "\n" + c.Stats().DeviceString()
	}
	sync, over := render(false), render(true)
	if sync != over {
		t.Errorf("ledger differs between sync and overlap schedules:\n--- sync ---\n%s\n--- overlap ---\n%s", sync, over)
	}
}

// checkFP32Speedup asserts a declared single-precision throughput ratio
// is physically plausible ([1, 8]) and actually buys time: an Elem32
// kernel never costs more than the identical Elem64 kernel, strictly
// less on a compute-bound shape when the ratio exceeds 1, and exactly
// the same when no ratio is declared.
func checkFP32Speedup(t *testing.T, p gpu.Profile) {
	t.Helper()
	sp := p.Model.FP32Speedup
	if sp != 0 && (!(sp >= 1) || sp > 8) {
		t.Fatalf("fp32_speedup %g outside [1, 8]", sp)
	}
	cost := func(e gpu.Elem) float64 {
		c := gpu.NewContextWithProfile(devCount, p)
		c.UniformKernel("x", gpu.Work{Flops: 1e10, Elem: e})
		return c.Stats().TotalTime()
	}
	f64, f32 := cost(gpu.Elem64), cost(gpu.Elem32)
	switch {
	case f32 > f64:
		t.Errorf("fp32 kernel costs %g > fp64 kernel %g", f32, f64)
	case sp > 1 && !(f32 < f64):
		t.Errorf("fp32_speedup %g declared but compute-bound fp32 kernel not cheaper (%g vs %g)", sp, f32, f64)
	case sp == 0 && f32 != f64:
		t.Errorf("no fp32_speedup declared but fp32 kernel costs %g != fp64 %g", f32, f64)
	}
}

// checkBF16Transfer asserts a bfloat16-transfer claim is consistent
// with the interconnect (peer-to-peer links, RDMA fabric when
// clustered) and that a bf16 halo exchange is strictly cheaper than the
// same exchange at full width — the claim must buy β, not just exist.
func checkBF16Transfer(t *testing.T, p gpu.Profile) {
	t.Helper()
	if !p.BF16Transfer {
		return
	}
	if !p.Topo.PeerToPeer() {
		t.Fatalf("profile claims bf16 transfer on non-peer topology %q", p.Topo.Kind)
	}
	uniform := func(b int) []int {
		out := make([]int, devCount)
		for d := range out {
			out[d] = b
		}
		return out
	}
	// Callers ship payloads already at the narrow width (the elem
	// argument tags the ledger; it does not rescale bytes), so the
	// exchange is costed at scaled volumes exactly as the MPK does.
	const scalars = 1 << 19
	cost := func(e gpu.Elem) (float64, *gpu.Stats) {
		b := scalars * e.Bytes()
		c := gpu.NewContextWithProfile(devCount, p)
		c.HaloExchangeElemOn("x", uniform(b), uniform(b), ringTraffic(devCount, b), e)
		return c.Stats().TotalTime(), c.Stats()
	}
	f64, _ := cost(gpu.Elem64)
	bf, st := cost(gpu.ElemBF16)
	if !(bf < f64) {
		t.Errorf("bf16 halo exchange not cheaper than fp64: %g vs %g", bf, f64)
	}
	if st.Phase("x").BytesCompressed == 0 {
		t.Errorf("bf16 exchange left the compressed ledger column empty: %+v", st.Phase("x"))
	}
}

// checkPrecisionLedger asserts the conditional-column promise on every
// profile: an all-FP64 workload renders a ledger without the precision
// columns, while tagged narrow traffic makes them appear.
func checkPrecisionLedger(t *testing.T, p gpu.Profile) {
	t.Helper()
	c := gpu.NewContextWithProfile(devCount, p)
	workload(c)
	table := c.Stats().String() + c.Stats().DeviceString()
	for _, col := range []string{"bytesFP32", "bytesComp"} {
		if strings.Contains(table, col) {
			t.Errorf("fp64 workload grew a %s column:\n%s", col, table)
		}
	}
	bytes := make([]int, devCount)
	for d := range bytes {
		bytes[d] = 4096
	}
	c.ReduceRoundElem("x", bytes, gpu.Elem32)
	if !strings.Contains(c.Stats().String(), "bytesFP32") {
		t.Errorf("fp32-tagged round missing bytesFP32 column:\n%s", c.Stats().String())
	}
}

// checkFaultReplay asserts a seeded fault plan replays bit-identically:
// same plan, same workload, same ledger and fault tallies.
func checkFaultReplay(t *testing.T, p gpu.Profile) {
	t.Helper()
	run := func() (string, gpu.FaultCounts) {
		c := gpu.NewContextWithProfile(devCount, p)
		c.InjectFaults(gpu.FaultPlan{Seed: 7, TransferFaultProb: 0.4, MaxTransferFaults: 5})
		workload(c)
		return c.Stats().String() + "\n" + c.Stats().DeviceString(), c.FaultCounts()
	}
	s1, f1 := run()
	s2, f2 := run()
	if s1 != s2 {
		t.Errorf("fault replay diverged:\n--- first ---\n%s\n--- second ---\n%s", s1, s2)
	}
	if f1 != f2 {
		t.Errorf("fault counts diverged: %+v vs %+v", f1, f2)
	}
	if f1.TransferFaults == 0 {
		t.Errorf("fault plan injected nothing: counts %+v", f1)
	}
}
