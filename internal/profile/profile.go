// Package profile ships the calibrated machine profiles the simulator
// can be pointed at: the paper's 2014 testbed (M2090 GPUs behind one
// host PCIe hub) and two modern references (A100 boxes joined by a PCIe
// switch, H100 boxes joined by an NVLink ring). A profile bundles the
// per-device compute constants with an explicit interconnect topology
// (gpu.Profile); the solver program is identical under every profile —
// only the modeled time changes, which is exactly what lets the
// topology study ask how the paper's CA-vs-standard trade-off shifts as
// device-to-device links get fatter.
//
// All constants are sustained (not peak) figures from vendor
// documentation and published STREAM/DGEMM measurements, in the same
// spirit as the M2090 calibration in internal/gpu.
package profile

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"cagmres/internal/gpu"
)

// M2090 is the paper-faithful default: the testbed of the source paper
// (three Tesla M2090 Fermi GPUs on a shared PCIe 2.0 x16 segment behind
// two 8-core Sandy Bridge CPUs). Host-hub topology — device-to-device
// traffic bounces through host memory, so its ledger is byte-identical
// to the pre-profile simulator.
func M2090() gpu.Profile {
	return gpu.Profile{
		Name:  "m2090",
		Model: gpu.M2090(),
		Topo: gpu.Topology{
			Kind:          gpu.TopoHostHub,
			PeerLatency:   15e-6, // a peer "hop" is still a host hop here
			PeerBandwidth: 6e9,
		},
	}
}

// A100PCIe models a contemporary PCIe server: A100-80GB (PCIe) devices,
// each with a private Gen4 x16 up-link into a non-blocking PCIe switch,
// driven by a two-socket Ice Lake host. Peer traffic crosses the switch
// without touching the host.
func A100PCIe() gpu.Profile {
	return gpu.Profile{
		Name: "a100-pcie",
		Model: gpu.CostModel{
			Latency:      10e-6,  // host<->device round (driver + DMA setup)
			Bandwidth:    24e9,   // sustained PCIe 4.0 x16
			DeviceGflops: 8500,   // sustained FP64 DGEMM (9.7 Tflop/s peak w/o TC)
			DeviceMemBW:  1.4e12, // sustained of 1.9 TB/s HBM2e
			HostGflops:   1500,   // 2x Ice Lake 32-core threaded MKL
			HostMemBW:    300e9,  // two-socket sustained stream
			KernelLaunch: 3e-6,
			FP32Speedup:  2, // FP32 CUDA cores run 2x the FP64 rate
		},
		Topo: gpu.Topology{
			Kind:          gpu.TopoPCIeSwitch,
			PeerLatency:   5e-6, // P2P DMA through the switch, no host IRQ
			PeerBandwidth: 22e9, // per-link, slightly under the host link
		},
		// Ampere copy engines move bf16 payloads natively over P2P DMA.
		BF16Transfer: true,
	}
}

// H100NVLink models an NVLink-class node: H100-SXM devices joined in an
// NVLink ring (the DGX wiring reduced to its ring backbone), PCIe 5.0
// to the host, Sapphire Rapids CPUs. Peer traffic takes the shortest
// arc around the ring at NVLink bandwidth — the "fat links" end of the
// topology study.
func H100NVLink() gpu.Profile {
	return gpu.Profile{
		Name: "h100-nvlink",
		Model: gpu.CostModel{
			Latency:      8e-6,
			Bandwidth:    40e9,   // sustained PCIe 5.0 x16
			DeviceGflops: 26000,  // sustained FP64 DGEMM (34 Tflop/s peak)
			DeviceMemBW:  3.0e12, // sustained of 3.35 TB/s HBM3
			HostGflops:   2000,   // 2x Sapphire Rapids threaded MKL
			HostMemBW:    400e9,
			KernelLaunch: 2e-6,
			FP32Speedup:  2, // FP32 vector throughput over FP64 (no TC)
		},
		Topo: gpu.Topology{
			Kind:          gpu.TopoNVLinkRing,
			PeerLatency:   2e-6,  // NVLink hop latency
			PeerBandwidth: 150e9, // per-direction sustained of one ring link
		},
		// NVLink SHARP-era copy engines ship bf16 halves natively.
		BF16Transfer: true,
	}
}

// builders maps canonical profile names to constructors. Construction
// on every lookup keeps the returned values independent — callers may
// mutate their copy freely.
var builders = map[string]func() gpu.Profile{
	"m2090":       M2090,
	"a100-pcie":   A100PCIe,
	"h100-nvlink": H100NVLink,
}

// Names returns the shipped profile names, sorted.
func Names() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every shipped profile, ordered by name.
func All() []gpu.Profile {
	names := Names()
	out := make([]gpu.Profile, len(names))
	for i, n := range names {
		out[i] = builders[n]()
	}
	return out
}

// ByName resolves a profile by its canonical name (case-insensitive).
func ByName(name string) (gpu.Profile, error) {
	b, ok := builders[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return gpu.Profile{}, fmt.Errorf("profile: unknown profile %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return b(), nil
}

// WithTopology returns a copy of p rewired with the named topology
// kind, keeping p's peer link constants. Use it to ask counterfactuals
// like "the A100 box, but with its devices rung together": the compute
// model stays fixed while the interconnect shape varies — the knob the
// topology study (bench.FigTopology) turns.
func WithTopology(p gpu.Profile, kind gpu.TopoKind) (gpu.Profile, error) {
	t := gpu.Topology{Kind: kind, PeerLatency: p.Topo.PeerLatency, PeerBandwidth: p.Topo.PeerBandwidth}
	if !t.Valid() {
		return gpu.Profile{}, fmt.Errorf("profile: unknown topology kind %q", kind)
	}
	p.Topo = t
	if kind != "" {
		p.Name = p.Name + "+" + string(kind)
	}
	if p.BF16Transfer && !bf16Supported(p) {
		// Rewiring took the narrow transfer path away (host-hub bounces
		// halos through pageable host memory): drop the inherited claim.
		p.BF16Transfer = false
	}
	return p, nil
}

// FromFlags resolves the -profile/-topology flag pair every command-line
// front end exposes. Both empty means "keep the built-in default" (nil).
// A -topology override on its own rewires the default m2090 machine.
func FromFlags(name, topo string) (*gpu.Profile, error) {
	if name == "" && topo == "" {
		return nil, nil
	}
	p := M2090()
	if name != "" {
		var err error
		if p, err = ByName(name); err != nil {
			return nil, err
		}
	}
	if topo != "" {
		var err error
		if p, err = WithTopology(p, gpu.TopoKind(strings.ToLower(strings.TrimSpace(topo)))); err != nil {
			return nil, err
		}
	}
	return &p, nil
}

// Spec is the JSON wire form of a profile selection: a shipped base
// profile plus optional overrides. Every override field is optional;
// zero/empty means "keep the base value". It is what the HTTP solve API
// and the config decoder accept.
type Spec struct {
	// Base names a shipped profile ("m2090", "a100-pcie", "h100-nvlink").
	// Empty selects m2090, the paper's machine.
	Base string `json:"base,omitempty"`
	// Topology overrides the base profile's topology kind ("host-hub",
	// "pcie-switch", "nvlink-ring", "all-to-all").
	Topology string `json:"topology,omitempty"`
	// PeerLatencyUS / PeerBandwidthGBs override the peer link constants
	// (microseconds / GB/s — wire-friendly units).
	PeerLatencyUS    float64 `json:"peer_latency_us,omitempty"`
	PeerBandwidthGBs float64 `json:"peer_bandwidth_gbs,omitempty"`
	// Model overrides individual cost-model constants; nil keeps the
	// base model.
	Model *ModelSpec `json:"model,omitempty"`
	// FP32Speedup overrides the device throughput ratio of single- over
	// double-precision kernels (1 = no speedup). Must lie in [1, 8] —
	// anything outside that band is a typo, not a GPU.
	FP32Speedup float64 `json:"fp32_speedup,omitempty"`
	// BF16TransferOK overrides the bfloat16-transfer capability claim.
	// Claiming it requires a peer-to-peer topology (host-hub machines
	// bounce halos through pageable host memory, which has no narrow
	// path) and, on a clustered profile, an InfiniBand fabric (RDMA ships
	// untranslated device payloads; the Ethernet stacks re-frame).
	BF16TransferOK *bool `json:"bf16_transfer_ok,omitempty"`
	// DevicesPerNode groups the devices into simulated compute nodes of
	// this size, arming the two-tier cluster interconnect; 0 keeps the
	// single-node machine.
	DevicesPerNode int `json:"devices_per_node,omitempty"`
	// Fabric names a shipped inter-node fabric ("ib-hdr", "ib-edr",
	// "ethernet-100g", "ethernet-25g"); empty with a node size selects
	// ib-hdr. Requires devices_per_node.
	Fabric string `json:"fabric,omitempty"`
	// FabricLatencyUS / FabricBandwidthGBs override the fabric link
	// constants (microseconds / GB/s).
	FabricLatencyUS    float64 `json:"fabric_latency_us,omitempty"`
	FabricBandwidthGBs float64 `json:"fabric_bandwidth_gbs,omitempty"`
}

// ModelSpec carries optional cost-model overrides in wire-friendly
// units. Zero fields keep the base profile's value.
type ModelSpec struct {
	LatencyUS      float64 `json:"latency_us,omitempty"`
	BandwidthGBs   float64 `json:"bandwidth_gbs,omitempty"`
	DeviceGflops   float64 `json:"device_gflops,omitempty"`
	DeviceMemBWGBs float64 `json:"device_mem_bw_gbs,omitempty"`
	HostGflops     float64 `json:"host_gflops,omitempty"`
	HostMemBWGBs   float64 `json:"host_mem_bw_gbs,omitempty"`
	KernelLaunchUS float64 `json:"kernel_launch_us,omitempty"`
}

// Resolve materializes the spec into a profile: base lookup, then
// overrides, then validation. It never panics on hostile input — every
// failure is an error, which is what makes it safe to fuzz and to wire
// straight to the HTTP API.
func (s Spec) Resolve() (gpu.Profile, error) {
	base := s.Base
	if strings.TrimSpace(base) == "" {
		base = "m2090"
	}
	p, err := ByName(base)
	if err != nil {
		return gpu.Profile{}, err
	}
	if s.Topology != "" {
		kind := gpu.TopoKind(strings.ToLower(strings.TrimSpace(s.Topology)))
		q, err := WithTopology(p, kind)
		if err != nil {
			return gpu.Profile{}, err
		}
		p = q
	}
	if s.PeerLatencyUS != 0 {
		p.Topo.PeerLatency = s.PeerLatencyUS * 1e-6
	}
	if s.PeerBandwidthGBs != 0 {
		p.Topo.PeerBandwidth = s.PeerBandwidthGBs * 1e9
	}
	if m := s.Model; m != nil {
		if m.LatencyUS != 0 {
			p.Model.Latency = m.LatencyUS * 1e-6
		}
		if m.BandwidthGBs != 0 {
			p.Model.Bandwidth = m.BandwidthGBs * 1e9
		}
		if m.DeviceGflops != 0 {
			p.Model.DeviceGflops = m.DeviceGflops
		}
		if m.DeviceMemBWGBs != 0 {
			p.Model.DeviceMemBW = m.DeviceMemBWGBs * 1e9
		}
		if m.HostGflops != 0 {
			p.Model.HostGflops = m.HostGflops
		}
		if m.HostMemBWGBs != 0 {
			p.Model.HostMemBW = m.HostMemBWGBs * 1e9
		}
		if m.KernelLaunchUS != 0 {
			p.Model.KernelLaunch = m.KernelLaunchUS * 1e-6
		}
	}
	if s.FP32Speedup != 0 {
		p.Model.FP32Speedup = s.FP32Speedup
	}
	if s.DevicesPerNode != 0 || s.Fabric != "" || s.FabricLatencyUS != 0 || s.FabricBandwidthGBs != 0 {
		if s.DevicesPerNode < 1 {
			return gpu.Profile{}, fmt.Errorf("profile: fabric settings need devices_per_node >= 1, got %d", s.DevicesPerNode)
		}
		fab := fabrics[DefaultFabricName]
		if s.Fabric != "" {
			f, err := FabricByName(s.Fabric)
			if err != nil {
				return gpu.Profile{}, err
			}
			fab = f
		}
		if s.FabricLatencyUS != 0 {
			fab.Latency = s.FabricLatencyUS * 1e-6
		}
		if s.FabricBandwidthGBs != 0 {
			fab.Bandwidth = s.FabricBandwidthGBs * 1e9
		}
		q, err := WithCluster(p, s.DevicesPerNode, fab)
		if err != nil {
			return gpu.Profile{}, err
		}
		p = q
	}
	if s.BF16TransferOK != nil {
		p.BF16Transfer = *s.BF16TransferOK
	} else if p.BF16Transfer && !bf16Supported(p) {
		// The base profile's capability didn't survive the overrides
		// (host-hub rewiring, non-RDMA fabric): downgrade the inherited
		// claim silently. Only an explicit bf16_transfer_ok claim on an
		// unsupporting machine is an error.
		p.BF16Transfer = false
	}
	if err := validate(p); err != nil {
		return gpu.Profile{}, err
	}
	return p, nil
}

// Decode parses a JSON profile spec and resolves it. Empty input (or
// JSON null) yields the default m2090 profile.
func Decode(data []byte) (gpu.Profile, error) {
	if len(strings.TrimSpace(string(data))) == 0 {
		return M2090(), nil
	}
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return gpu.Profile{}, fmt.Errorf("profile: bad spec: %w", err)
	}
	// Trailing garbage after the object is a malformed request, not an
	// extension point.
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil {
		return gpu.Profile{}, fmt.Errorf("profile: trailing data after spec")
	}
	return s.Resolve()
}

// validate rejects physically meaningless profiles: every rate must be
// positive and finite, every latency non-negative and finite.
func validate(p gpu.Profile) error {
	pos := func(name string, v float64) error {
		if !(v > 0) || v > 1e30 { // NaN fails the comparison too
			return fmt.Errorf("profile: %s must be positive and finite, got %g", name, v)
		}
		return nil
	}
	nonneg := func(name string, v float64) error {
		if !(v >= 0) || v > 1e30 {
			return fmt.Errorf("profile: %s must be non-negative and finite, got %g", name, v)
		}
		return nil
	}
	m := p.Model
	checks := []error{
		nonneg("latency", m.Latency),
		pos("bandwidth", m.Bandwidth),
		pos("device_gflops", m.DeviceGflops),
		pos("device_mem_bw", m.DeviceMemBW),
		pos("host_gflops", m.HostGflops),
		pos("host_mem_bw", m.HostMemBW),
		nonneg("kernel_launch", m.KernelLaunch),
		nonneg("peer_latency", p.Topo.PeerLatency),
		pos("peer_bandwidth", p.Topo.PeerBandwidth),
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	if !p.Topo.Valid() {
		return fmt.Errorf("profile: unknown topology kind %q", p.Topo.Kind)
	}
	if p.Clustered() {
		if err := nonneg("fabric_latency", p.Cluster.Fabric.Latency); err != nil {
			return err
		}
		if err := pos("fabric_bandwidth", p.Cluster.Fabric.Bandwidth); err != nil {
			return err
		}
	}
	if sp := m.FP32Speedup; sp != 0 && (!(sp >= 1) || sp > 8) {
		return fmt.Errorf("profile: fp32_speedup must lie in [1, 8], got %g", sp)
	}
	if p.BF16Transfer {
		if !p.Topo.PeerToPeer() {
			return fmt.Errorf("profile: bf16_transfer_ok needs a peer-to-peer topology, not %q", p.Topo.Kind)
		}
		if p.Clustered() {
			switch p.Cluster.Fabric.Kind {
			case gpu.FabricIBHDR, gpu.FabricIBEDR:
			default:
				return fmt.Errorf("profile: bf16_transfer_ok needs an RDMA fabric, not %q", p.Cluster.Fabric.Kind)
			}
		}
	}
	return nil
}

// bf16Supported reports whether the assembled machine can honor a
// bfloat16-transfer claim: peer-to-peer device links and, when the
// cluster tier is armed, an RDMA fabric.
func bf16Supported(p gpu.Profile) bool {
	if !p.Topo.PeerToPeer() {
		return false
	}
	if p.Clustered() {
		switch p.Cluster.Fabric.Kind {
		case gpu.FabricIBHDR, gpu.FabricIBEDR:
		default:
			return false
		}
	}
	return true
}
