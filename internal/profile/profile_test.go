package profile

import (
	"strings"
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/profile/profiletest"
)

// TestConformance instantiates the reusable conformance suite for every
// shipped profile — the fence behind which new machine descriptions
// land.
func TestConformance(t *testing.T) {
	for _, p := range All() {
		t.Run(p.Name, func(t *testing.T) { profiletest.Run(t, p) })
	}
}

// TestConformanceCounterfactuals runs the suite over the WithTopology
// rewirings the topology study uses, so the counterfactual machines are
// held to the same invariants as the shipped ones.
func TestConformanceCounterfactuals(t *testing.T) {
	kinds := []gpu.TopoKind{gpu.TopoHostHub, gpu.TopoPCIeSwitch, gpu.TopoNVLinkRing, gpu.TopoAllToAll}
	for _, kind := range kinds {
		p, err := WithTopology(A100PCIe(), kind)
		if err != nil {
			t.Fatalf("WithTopology(%s): %v", kind, err)
		}
		t.Run(p.Name, func(t *testing.T) { profiletest.Run(t, p) })
	}
}

// TestConformanceCluster holds the two-tier machines to the same fence:
// every shipped fabric over a peer-routed node and over the paper's
// host-hub node.
func TestConformanceCluster(t *testing.T) {
	for _, fabric := range FabricNames() {
		fab, err := FabricByName(fabric)
		if err != nil {
			t.Fatal(err)
		}
		for _, base := range []gpu.Profile{M2090(), A100PCIe()} {
			p, err := WithCluster(base, 2, fab)
			if err != nil {
				t.Fatalf("WithCluster(%s, %s): %v", base.Name, fabric, err)
			}
			t.Run(p.Name, func(t *testing.T) { profiletest.RunCluster(t, p) })
		}
	}
}

func TestFabricByName(t *testing.T) {
	for _, name := range FabricNames() {
		f, err := FabricByName(name)
		if err != nil {
			t.Fatalf("FabricByName(%s): %v", name, err)
		}
		if string(f.Kind) != name {
			t.Errorf("fabric %s carries kind %q", name, f.Kind)
		}
		if !f.Valid() {
			t.Errorf("shipped fabric %s fails Valid: %+v", name, f)
		}
	}
	if f, err := FabricByName(" IB-HDR "); err != nil || f.Kind != gpu.FabricIBHDR {
		t.Errorf("case/space-insensitive fabric lookup failed: %+v, %v", f, err)
	}
	if _, err := FabricByName("myrinet"); err == nil {
		t.Error("FabricByName(myrinet) should fail")
	}
}

func TestClusterFromFlags(t *testing.T) {
	if p, err := ClusterFromFlags(nil, 0, ""); err != nil || p != nil {
		t.Fatalf("no cluster flags: want nil,nil got %v,%v", p, err)
	}
	p, err := ClusterFromFlags(nil, 2, "")
	if err != nil || p == nil || !p.Clustered() || p.Cluster.Fabric.Kind != gpu.FabricIBHDR {
		t.Fatalf("default fabric: got %+v, %v", p, err)
	}
	base := A100PCIe()
	p, err = ClusterFromFlags(&base, 4, "Ethernet-25G")
	if err != nil || p == nil || p.Cluster.DevicesPerNode != 4 || p.Cluster.Fabric.Kind != gpu.FabricEthernet25G {
		t.Fatalf("named fabric: got %+v, %v", p, err)
	}
	if !strings.Contains(p.Name, "a100-pcie") || !strings.Contains(p.Name, "ethernet-25g") {
		t.Errorf("clustered profile name %q should carry base and fabric", p.Name)
	}
	if _, err := ClusterFromFlags(nil, 0, "ib-hdr"); err == nil {
		t.Error("fabric without node size accepted")
	}
	if _, err := ClusterFromFlags(nil, 2, "myrinet"); err == nil {
		t.Error("unknown fabric accepted")
	}
	if _, err := ClusterFromFlags(nil, -1, "ib-hdr"); err == nil {
		t.Error("negative node size accepted")
	}
}

func TestM2090MatchesBareModel(t *testing.T) {
	// The paper-faithful profile must carry exactly the cost model the
	// pre-profile simulator hard-wired, on a host-hub topology, so its
	// ledger is byte-identical to history.
	p := M2090()
	if p.Model != gpu.M2090() {
		t.Fatalf("m2090 profile model drifted: %+v vs %+v", p.Model, gpu.M2090())
	}
	if p.Topo.Kind != gpu.TopoHostHub || p.Topo.PeerToPeer() {
		t.Fatalf("m2090 profile must route through the host, got %+v", p.Topo)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("ByName(%s) returned profile named %q", name, p.Name)
		}
	}
	if p, err := ByName("  A100-PCIE "); err != nil || p.Name != "a100-pcie" {
		t.Errorf("case/space-insensitive lookup failed: %+v, %v", p, err)
	}
	if _, err := ByName("k80"); err == nil {
		t.Error("ByName(k80) should fail")
	}
}

func TestDecode(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		ok    bool
		check func(p gpu.Profile) bool
	}{
		{"empty", "", true, func(p gpu.Profile) bool { return p.Name == "m2090" }},
		{"base-only", `{"base":"h100-nvlink"}`, true, func(p gpu.Profile) bool { return p.Topo.Kind == gpu.TopoNVLinkRing }},
		{"topology-override", `{"base":"a100-pcie","topology":"all-to-all"}`, true,
			func(p gpu.Profile) bool { return p.Topo.Kind == gpu.TopoAllToAll }},
		{"peer-override", `{"peer_latency_us":3,"peer_bandwidth_gbs":50}`, true,
			func(p gpu.Profile) bool { return p.Topo.PeerLatency == 3e-6 && p.Topo.PeerBandwidth == 50e9 }},
		{"model-override", `{"model":{"device_gflops":1234}}`, true,
			func(p gpu.Profile) bool { return p.Model.DeviceGflops == 1234 }},
		{"cluster-default-fabric", `{"devices_per_node":2}`, true,
			func(p gpu.Profile) bool { return p.Clustered() && p.Cluster.Fabric.Kind == gpu.FabricIBHDR }},
		{"cluster-named-fabric", `{"base":"a100-pcie","devices_per_node":4,"fabric":"ethernet-25g"}`, true,
			func(p gpu.Profile) bool {
				return p.Cluster.DevicesPerNode == 4 && p.Cluster.Fabric.Kind == gpu.FabricEthernet25G
			}},
		{"cluster-constant-override", `{"devices_per_node":2,"fabric":"ib-edr","fabric_latency_us":9,"fabric_bandwidth_gbs":20}`, true,
			func(p gpu.Profile) bool {
				return p.Cluster.Fabric.Latency == 9e-6 && p.Cluster.Fabric.Bandwidth == 20e9
			}},
		{"fp32-speedup-override", `{"base":"m2090","fp32_speedup":1.8}`, true,
			func(p gpu.Profile) bool { return p.Model.FP32Speedup == 1.8 }},
		{"bf16-claim-on-capable", `{"base":"a100-pcie","bf16_transfer_ok":true}`, true,
			func(p gpu.Profile) bool { return p.BF16Transfer }},
		{"bf16-disclaim", `{"base":"a100-pcie","bf16_transfer_ok":false}`, true,
			func(p gpu.Profile) bool { return !p.BF16Transfer }},
		{"bf16-inherited-downgrades-on-hub", `{"base":"a100-pcie","topology":"host-hub"}`, true,
			func(p gpu.Profile) bool { return !p.BF16Transfer }},
		{"bf16-inherited-downgrades-on-ethernet", `{"base":"a100-pcie","devices_per_node":2,"fabric":"ethernet-100g"}`, true,
			func(p gpu.Profile) bool { return !p.BF16Transfer }},
		{"bf16-survives-rdma-fabric", `{"base":"a100-pcie","devices_per_node":2,"fabric":"ib-hdr"}`, true,
			func(p gpu.Profile) bool { return p.BF16Transfer }},
		{"bf16-claim-on-host-hub", `{"base":"m2090","bf16_transfer_ok":true}`, false, nil},
		{"bf16-claim-on-ethernet-fabric", `{"base":"a100-pcie","devices_per_node":2,"fabric":"ethernet-25g","bf16_transfer_ok":true}`, false, nil},
		{"fp32-speedup-too-small", `{"fp32_speedup":0.5}`, false, nil},
		{"fp32-speedup-too-large", `{"fp32_speedup":50}`, false, nil},
		{"fp32-speedup-nan", `{"fp32_speedup":1e999}`, false, nil},
		{"fabric-without-nodes", `{"fabric":"ib-hdr"}`, false, nil},
		{"unknown-fabric", `{"devices_per_node":2,"fabric":"myrinet"}`, false, nil},
		{"negative-node-size", `{"devices_per_node":-2,"fabric":"ib-hdr"}`, false, nil},
		{"negative-fabric-bandwidth", `{"devices_per_node":2,"fabric_bandwidth_gbs":-1}`, false, nil},
		{"unknown-base", `{"base":"k80"}`, false, nil},
		{"unknown-topology", `{"topology":"torus"}`, false, nil},
		{"unknown-field", `{"bandwidth":9}`, false, nil},
		{"negative-bandwidth", `{"peer_bandwidth_gbs":-1}`, false, nil},
		{"nan-smuggle", `{"peer_latency_us":1e400}`, false, nil},
		{"trailing-garbage", `{"base":"m2090"} {"base":"m2090"}`, false, nil},
		{"not-json", `machine: m2090`, false, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Decode([]byte(tc.in))
			if tc.ok && err != nil {
				t.Fatalf("Decode(%q): %v", tc.in, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("Decode(%q) should fail, got %+v", tc.in, p)
			}
			if tc.ok && tc.check != nil && !tc.check(p) {
				t.Errorf("Decode(%q) = %+v failed check", tc.in, p)
			}
		})
	}
}

// TestDecodedProfilesConform runs the conformance suite on a decoded
// spec with aggressive overrides — a user-supplied profile gets exactly
// the same fence as a shipped one.
func TestDecodedProfilesConform(t *testing.T) {
	p, err := Decode([]byte(`{"base":"a100-pcie","topology":"nvlink-ring","peer_latency_us":1,"peer_bandwidth_gbs":200,"model":{"device_gflops":20000}}`))
	if err != nil {
		t.Fatal(err)
	}
	profiletest.Run(t, p)
}

// FuzzDecode asserts the profile/topology config decoder never panics
// and never resolves to a profile that fails validation: any input
// either errors or yields a profile the simulator can cost safely.
func FuzzDecode(f *testing.F) {
	seeds := []string{
		"",
		`{}`,
		`{"base":"m2090"}`,
		`{"base":"a100-pcie","topology":"nvlink-ring"}`,
		`{"base":"h100-nvlink","peer_latency_us":2,"peer_bandwidth_gbs":150}`,
		`{"model":{"latency_us":10,"bandwidth_gbs":24,"device_gflops":8500,"device_mem_bw_gbs":1400,"host_gflops":1500,"host_mem_bw_gbs":300,"kernel_launch_us":3}}`,
		`{"topology":"all-to-all"}`,
		`{"devices_per_node":2,"fabric":"ib-hdr"}`,
		`{"base":"a100-pcie","devices_per_node":1,"fabric":"ethernet-25g","fabric_latency_us":50,"fabric_bandwidth_gbs":2}`,
		`{"fabric":"myrinet"}`,
		`{"devices_per_node":-3}`,
		`{"base":"k80"}`,
		`{"peer_bandwidth_gbs":-1}`,
		`{"peer_latency_us":1e308}`,
		`[1,2,3]`,
		`null`,
		"{\"base\":\"m2090\"}\x00",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		if err := validate(p); err != nil {
			t.Fatalf("Decode accepted invalid profile %+v from %q: %v", p, data, err)
		}
		// A decoded profile must be usable: context creation and a
		// small charge must not panic or produce a non-finite time.
		c := gpu.NewContextWithProfile(2, p)
		c.ReduceRound("fuzz", []int{128, 128})
		c.PeerExchange("fuzz", [][]int{{0, 64}, {64, 0}})
		if tt := c.Stats().TotalTime(); !(tt >= 0) {
			t.Fatalf("non-finite total time %g from %q", tt, data)
		}
	})
}

func TestWithTopologyRejectsUnknown(t *testing.T) {
	if _, err := WithTopology(M2090(), gpu.TopoKind("torus")); err == nil || !strings.Contains(err.Error(), "torus") {
		t.Fatalf("expected torus rejection, got %v", err)
	}
}

func TestFromFlags(t *testing.T) {
	if p, err := FromFlags("", ""); err != nil || p != nil {
		t.Fatalf("empty flags: want nil,nil got %v,%v", p, err)
	}
	p, err := FromFlags("H100-NVLink", "")
	if err != nil || p == nil || p.Name != "h100-nvlink" {
		t.Fatalf("named profile: got %+v, %v", p, err)
	}
	p, err = FromFlags("", "all-to-all")
	if err != nil || p == nil || p.Topo.Kind != gpu.TopoAllToAll {
		t.Fatalf("bare topology: got %+v, %v", p, err)
	}
	if p.Model != gpu.M2090() {
		t.Fatalf("bare topology must keep the m2090 model")
	}
	p, err = FromFlags("a100-pcie", "NVLink-Ring")
	if err != nil || p == nil || p.Topo.Kind != gpu.TopoNVLinkRing || p.Name != "a100-pcie+nvlink-ring" {
		t.Fatalf("profile+topology: got %+v, %v", p, err)
	}
	if _, err := FromFlags("k20", ""); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, err := FromFlags("", "torus"); err == nil {
		t.Fatal("unknown topology accepted")
	}
}
