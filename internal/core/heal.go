package core

import (
	"errors"
	"fmt"

	"cagmres/internal/gpu"
	"cagmres/internal/obs"
)

// This file is the solvers' self-healing layer over the fault-injecting
// runtime (internal/gpu). Device deaths surface as *gpu.DeviceLostError
// panics raised from ledger charges; the healing wrapper recovers them,
// re-partitions the problem's row blocks uniformly across the surviving
// devices, and re-enters the solver from the last restart boundary using
// a checkpoint of the iterate and the restart-loop state. Transfer
// faults that exhaust the retry policy (*gpu.TransferError) are not
// healed here — they are returned as ordinary errors so the scheduler
// can re-queue the whole job on a healthy context.

// FaultReport summarizes the faults a solve observed and the recovery
// actions it took. Attached to Result.Faults only when something
// actually happened, so fault-free solves carry a nil report.
type FaultReport struct {
	// DevicesLost lists the physical ids of devices that died during the
	// solve, ascending.
	DevicesLost []int
	// Repartitions counts how many times the row blocks were re-cut
	// across survivors (once per device-loss recovery).
	Repartitions int
	// CheckpointRestores counts recoveries that resumed from a restart
	// boundary with real progress (checkpointed restart > 0), as opposed
	// to starting the solve over.
	CheckpointRestores int
	// TransferFaults and TransferRetries mirror the runtime's tally of
	// injected transfer-round failures and successful retries.
	TransferFaults  int
	TransferRetries int
}

// checkpoint is the resume state captured at each restart boundary while
// a fault plan is armed: the current iterate (prepared coordinates) plus
// the restart-loop counters, and for CA-GMRES the shift schedule and
// adaptive-step state. Capturing uses the uncharged GatherCol helper, so
// checkpoint maintenance never perturbs the modeled ledger.
type checkpoint struct {
	captured bool
	x        []float64 // iterate at the boundary, prepared coordinates
	restart  int       // restart index to resume at
	restarts int       // Result counters at the boundary
	iters    int
	history  []float64

	// CA-GMRES restart-loop state.
	shiftBlocks   [][]complex128
	needShifts    bool
	sEff          int
	cleanRestarts int
	// precLevel is the precision policy's level at the boundary, so a
	// healed attempt resumes at the width the solve had already
	// tightened to (tighten-only survives device loss).
	precLevel int
}

// capture records the common (GMRES and CA-GMRES) boundary state.
func (ck *checkpoint) capture(x []float64, restart int, res *Result) {
	ck.x = x
	ck.restart = restart
	ck.restarts = res.Restarts
	ck.iters = res.Iters
	ck.history = append(ck.history[:0], res.History...)
	ck.captured = true
}

// attemptFunc runs one solve attempt on the given (possibly
// re-partitioned) problem, resuming from the checkpoint when it is
// captured and updating it at every restart boundary while faults are
// armed. It must not reset the ledger — the healing wrapper owns it.
type attemptFunc func(p *Problem, ck *checkpoint) (*Result, error)

// solveHealing owns the solve lifecycle shared by GMRES and CAGMRES:
// reset the ledger once, then run attempts until one finishes. A device
// loss shrinks the problem onto the survivors and retries from the
// checkpoint; losing the last device is unrecoverable. The loop is
// bounded by the device count — every heal removes at least one device.
func solveHealing(p *Problem, opts Options, solver string, run attemptFunc) (*Result, error) {
	if opts.Profile != nil {
		p.Ctx.SetProfile(*opts.Profile)
	}
	p.Ctx.ResetStats()
	p.Ctx.SetOverlap(opts.Overlap)
	em := newEmitter(opts.Telemetry, solver, p.Ctx)
	ck := &checkpoint{}
	var report *FaultReport
	cur := p
	for {
		res, err := runGuarded(cur, ck, run)
		var lost *gpu.DeviceLostError
		if errors.As(err, &lost) {
			surv, serr := cur.Ctx.Survivors()
			if serr != nil {
				return nil, fmt.Errorf("core: solve unrecoverable, no surviving devices: %w", lost)
			}
			if report == nil {
				report = &FaultReport{}
			}
			report.DevicesLost = cur.Ctx.DeadDevices()
			report.Repartitions++
			if ck.captured && ck.restart > 0 {
				report.CheckpointRestores++
			}
			em.emit(obs.Record{Kind: "repartition", Restart: ck.restart, Step: surv.NumDevices})
			cur = cur.Repartition(surv)
			continue
		}
		if res != nil {
			fc := cur.Ctx.FaultCounts()
			if report == nil && (fc.TransferFaults > 0 || fc.TransferRetries > 0) {
				report = &FaultReport{}
			}
			if report != nil {
				report.TransferFaults = fc.TransferFaults
				report.TransferRetries = fc.TransferRetries
				res.Faults = report
			}
		}
		return res, err
	}
}

// runGuarded executes one attempt, converting the runtime's fault panics
// into errors at this — and only this — recovery boundary. Any other
// panic is a genuine bug and propagates.
func runGuarded(p *Problem, ck *checkpoint, run attemptFunc) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case *gpu.DeviceLostError:
				res, err = nil, e
			case *gpu.TransferError:
				res, err = nil, e
			default:
				panic(r)
			}
		}
	}()
	return run(p, ck)
}
