package core

import (
	"math/cmplx"

	"cagmres/internal/la"
)

// newtonShifts derives the Newton-basis shift sequence from the Hessenberg
// matrix of the first restart cycle (Bai, Hu, Reichel; Hoemmen Ch. 7): the
// Ritz values of A are the eigenvalues of H, ordered by the modified Leja
// ordering so consecutive shifts are far apart, with complex-conjugate
// pairs kept adjacent (positive-imaginary first) for the real-arithmetic
// recurrence. The sequence is then cycled to length m.
func newtonShifts(h *la.Dense, m int) []complex128 {
	if h.Rows == 0 {
		return nil
	}
	ritz := la.HessenbergEigenvalues(h)
	leja := la.LejaOrder(ritz)
	if len(leja) == 0 {
		return nil
	}
	// Cycle to m entries, never splitting a pair across the wrap.
	out := make([]complex128, 0, m)
	for len(out) < m {
		for i := 0; i < len(leja) && len(out) < m; i++ {
			z := leja[i]
			if imag(z) > 0 {
				if len(out)+2 > m {
					// No room for the pair: substitute the real part.
					out = append(out, complex(real(z), 0))
					continue
				}
				out = append(out, z, cmplx.Conj(z))
				i++ // skip the stored conjugate
				continue
			}
			if imag(z) < 0 {
				// Dangling conjugate (shouldn't happen after LejaOrder);
				// realify defensively.
				out = append(out, complex(real(z), 0))
				continue
			}
			out = append(out, z)
		}
	}
	return out
}

// scheduleShifts cuts an m-long shift sequence into MPK windows of at
// most s steps each, never splitting a complex-conjugate pair across a
// window boundary: when a pair leader would land on the last slot of a
// window, the window is closed one step early. For s == 1 pairs cannot
// fit at all, so each member is replaced by its real part (a documented
// degradation — s = 1 CA-GMRES is a pathological configuration the paper
// also treats as such). A nil input yields nil blocks (monomial basis).
func scheduleShifts(shifts []complex128, m, s int) [][]complex128 {
	if shifts == nil {
		return nil
	}
	if len(shifts) != m {
		panic("core: scheduleShifts needs exactly m shifts")
	}
	if s == 1 {
		blocks := make([][]complex128, m)
		for i, z := range shifts {
			blocks[i] = []complex128{complex(real(z), 0)}
		}
		return blocks
	}
	var blocks [][]complex128
	i := 0
	for i < m {
		end := i + s
		if end > m {
			end = m
		}
		// Do not split a pair: if the last included shift is a pair
		// leader, stop before it.
		if imag(shifts[end-1]) > 0 && end < m {
			end--
		}
		if end == i {
			// A pair leader alone at the very end of the sequence (can
			// happen after truncation): realify it.
			blocks = append(blocks, []complex128{complex(real(shifts[i]), 0)})
			i++
			continue
		}
		block := append([]complex128(nil), shifts[i:end]...)
		// A pair leader at the absolute end of the sequence has no
		// conjugate: realify.
		if imag(block[len(block)-1]) > 0 {
			block[len(block)-1] = complex(real(block[len(block)-1]), 0)
		}
		blocks = append(blocks, block)
		i = end
	}
	return blocks
}

// monomialBlocks returns the window sizes for the monomial basis: full
// windows of s with a remainder window.
func monomialBlocks(m, s int) []int {
	var sizes []int
	for done := 0; done < m; {
		w := s
		if done+w > m {
			w = m - done
		}
		sizes = append(sizes, w)
		done += w
	}
	return sizes
}
