package core

import (
	"bytes"
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/obs"
)

// collectTelemetry runs a solve with an in-memory sink and returns the
// records alongside the result.
func collectTelemetry(t *testing.T, solver func(*Problem, Options) (*Result, error),
	opts Options) ([]obs.Record, *Result) {
	t.Helper()
	a := laplace2D(16, 16, 0.2)
	b := randomRHS(256, 21)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, err := NewProblem(ctx, a, b, Natural, false)
	if err != nil {
		t.Fatal(err)
	}
	var recs []obs.Record
	opts.Telemetry = obs.SinkFunc(func(r obs.Record) { recs = append(recs, r) })
	res, err := solver(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return recs, res
}

func checkStream(t *testing.T, recs []obs.Record, res *Result, solver string) {
	t.Helper()
	if len(recs) == 0 {
		t.Fatal("no telemetry emitted")
	}
	clock := 0.0
	for i, r := range recs {
		if r.Solver != solver {
			t.Fatalf("record %d: solver %q, want %q", i, r.Solver, solver)
		}
		if r.Clock < clock {
			t.Fatalf("record %d: clock went backwards (%v after %v)", i, r.Clock, clock)
		}
		clock = r.Clock
	}
	last := recs[len(recs)-1]
	if last.Kind != "done" {
		t.Fatalf("stream ends with %q, want done", last.Kind)
	}
	if last.RelRes != res.RelRes {
		t.Fatalf("done relres %v != Result.RelRes %v", last.RelRes, res.RelRes)
	}
	if last.Step != res.Iters || last.Restart != res.Restarts {
		t.Fatalf("done step/restart %d/%d != Result %d/%d",
			last.Step, last.Restart, res.Iters, res.Restarts)
	}
	if last.Clock != res.Stats.TotalTime() {
		t.Fatalf("done clock %v != ledger total %v", last.Clock, res.Stats.TotalTime())
	}
}

func countKind(recs []obs.Record, kind string) int {
	n := 0
	for _, r := range recs {
		if r.Kind == kind {
			n++
		}
	}
	return n
}

func TestGMRESTelemetry(t *testing.T) {
	recs, res := collectTelemetry(t, GMRES, Options{M: 20, Tol: 1e-8, Ortho: "CGS"})
	checkStream(t, recs, res, "gmres")
	if n := countKind(recs, "step"); n != res.Iters {
		t.Fatalf("step records %d != iterations %d", n, res.Iters)
	}
	if n := countKind(recs, "cycle"); n != res.Restarts {
		t.Fatalf("cycle records %d != restarts %d", n, res.Restarts)
	}
	// Every cycle record measured the basis orthogonality loss.
	for _, r := range recs {
		if r.Kind == "cycle" && (r.OrthoLoss <= 0 || r.OrthoLoss > 1e-8) {
			t.Fatalf("cycle ortho loss out of range: %v", r.OrthoLoss)
		}
	}
}

func TestCAGMRESTelemetry(t *testing.T) {
	recs, res := collectTelemetry(t, CAGMRES, Options{M: 20, S: 5, Tol: 1e-8, Ortho: "CholQR"})
	checkStream(t, recs, res, "cagmres")
	if countKind(recs, "window") == 0 {
		t.Fatal("no window records from CA cycles")
	}
	for _, r := range recs {
		if r.Kind == "window" && r.TSQR == "" {
			t.Fatalf("window record without TSQR name: %+v", r)
		}
	}
	if n := countKind(recs, "cycle"); n != res.Restarts {
		t.Fatalf("cycle records %d != restarts %d", n, res.Restarts)
	}
}

func TestTelemetryJSONLRoundTrip(t *testing.T) {
	a := laplace2D(14, 14, 0.1)
	b := randomRHS(196, 5)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, err := NewProblem(ctx, a, b, Natural, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	res, err := CAGMRES(p, Options{M: 18, S: 6, Tol: 1e-8, Ortho: "CholQR", Telemetry: sink})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.LintTelemetry(buf.Bytes())
	if err != nil {
		t.Fatalf("lint: %v\n%s", err, buf.String())
	}
	if sink.Records() != len(recs) {
		t.Fatalf("sink wrote %d, lint read %d", sink.Records(), len(recs))
	}
	if got := recs[len(recs)-1].RelRes; got != res.RelRes {
		t.Fatalf("final relres %v != Result %v", got, res.RelRes)
	}
}

func TestTelemetryDisabledIsFree(t *testing.T) {
	// Nil sink must not change the ledger: the modeled time of a solve
	// with and without telemetry has to be identical, or the telemetry
	// layer is charging diagnostic work to the model.
	a := laplace2D(12, 12, 0.2)
	b := randomRHS(144, 9)
	run := func(sink obs.Sink) float64 {
		ctx := gpu.NewContext(2, gpu.M2090())
		p, err := NewProblem(ctx, a, b, Natural, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := GMRES(p, Options{M: 15, Tol: 1e-8, Telemetry: sink})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.TotalTime()
	}
	plain := run(nil)
	traced := run(obs.SinkFunc(func(obs.Record) {}))
	if plain != traced {
		t.Fatalf("telemetry changed modeled time: %v != %v", traced, plain)
	}
}
