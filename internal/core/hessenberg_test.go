package core

import (
	"math"
	"math/rand"
	"testing"

	"cagmres/internal/dist"
	"cagmres/internal/gpu"
	"cagmres/internal/la"
	"cagmres/internal/ortho"
	"cagmres/internal/sparse"
)

// TestHessenbergRecoveryIdentity drives the CA pipeline by hand — MPK,
// BOrth, TSQR, updateHessenberg — over several blocks and verifies the
// fundamental Arnoldi relation the recovered matrix must satisfy:
//
//	A * Q[:, 0:k] == Q[:, 0:k+1] * H[0:k+1, 0:k]
//
// for every prefix k, on both the monomial and Newton bases. This is the
// direct unit test of the change-of-basis algebra that the solver-level
// "CA-GMRES matches GMRES" tests only exercise indirectly.
func TestHessenbergRecoveryIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	n := 80
	// Well-conditioned nonsymmetric sparse matrix.
	entries := make([]sparse.Coord, 0, n*5)
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{Row: i, Col: i, Val: 5 + rng.Float64()})
		for d := 0; d < 3; d++ {
			entries = append(entries, sparse.Coord{Row: i, Col: rng.Intn(n), Val: rng.NormFloat64()})
		}
	}
	a := sparse.FromCoords(n, n, entries)

	for _, tc := range []struct {
		name   string
		shifts []complex128
	}{
		{"monomial", nil},
		{"newton-real", []complex128{5.5, 4.8, 5.1, 6.0, 4.5, 5.9, 5.3, 4.9}},
		{"newton-pair", []complex128{5.5, complex(5, 0.5), complex(5, -0.5), 4.9, 5.8, complex(5.2, 0.3), complex(5.2, -0.3), 5.0}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ng := 2
			s, m := 4, 8
			ctx := gpu.NewContext(ng, gpu.M2090())
			layout := dist.Uniform(n, ng)
			A := dist.Distribute(ctx, a, layout, s)
			mpk := dist.NewMPK(A)
			v := dist.NewVectors(ctx, layout, m+1)

			// Normalized starting vector.
			v0 := make([]float64, n)
			for i := range v0 {
				v0[i] = rng.NormFloat64()
			}
			la.Scal(1/la.Nrm2(v0), v0)
			v.SetColFromHost(0, v0)

			h := la.NewDense(m+1, m)
			borth := ortho.BOrthCGS{}
			tsqr := ortho.CholQR{}
			done := 0
			for done < m {
				steps := s
				if done+steps > m {
					steps = m - done
				}
				var blockShifts []complex128
				if tc.shifts != nil {
					blockShifts = tc.shifts[done : done+steps]
				}
				bhat := mpk.Generate(v, done, steps, blockShifts, "mpk")
				q := done + 1
				prev := v.Window(0, q)
				win := v.Window(q, q+steps)
				c := borth.Project(ctx, prev, win, "borth")
				r, err := tsqr.Factor(ctx, win, "tsqr")
				if err != nil {
					t.Fatal(err)
				}
				updateHessenberg(h, bhat, c, r, q, steps)
				done += steps
			}

			// Host-side verification of the Arnoldi relation.
			qcols := make([][]float64, m+1)
			for j := 0; j <= m; j++ {
				qcols[j] = v.GatherCol(j)
			}
			// Basis must be orthonormal.
			for i := 0; i <= m; i++ {
				for j := 0; j <= m; j++ {
					d := la.Dot(qcols[i], qcols[j])
					want := 0.0
					if i == j {
						want = 1
					}
					if math.Abs(d-want) > 1e-8 {
						t.Fatalf("basis not orthonormal at (%d,%d): %v", i, j, d)
					}
				}
			}
			for k := 0; k < m; k++ {
				aq := make([]float64, n)
				a.MulVec(aq, qcols[k])
				rec := make([]float64, n)
				for i := 0; i <= k+1; i++ {
					la.Axpy(h.At(i, k), qcols[i], rec)
				}
				diff := 0.0
				norm := la.Nrm2(aq)
				for i := range aq {
					d := aq[i] - rec[i]
					diff += d * d
				}
				if math.Sqrt(diff) > 1e-8*(1+norm) {
					t.Fatalf("Arnoldi relation violated at column %d: residual %v", k, math.Sqrt(diff))
				}
			}
			// H must be upper Hessenberg with positive subdiagonal.
			for j := 0; j < m; j++ {
				for i := j + 2; i <= m; i++ {
					if h.At(i, j) != 0 {
						t.Fatalf("H not Hessenberg at (%d,%d)", i, j)
					}
				}
			}
		})
	}
}

// TestHessenbergRecoveryMatchesExplicitArnoldi compares the recovered H
// against the H produced by running classical Arnoldi directly on the
// same starting vector (monomial basis, exact arithmetic up to roundoff).
func TestHessenbergRecoveryMatchesExplicitArnoldi(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	n := 60
	entries := make([]sparse.Coord, 0, n*4)
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{Row: i, Col: i, Val: 6})
		entries = append(entries, sparse.Coord{Row: i, Col: (i + 1) % n, Val: rng.NormFloat64()})
		entries = append(entries, sparse.Coord{Row: i, Col: (i + 7) % n, Val: rng.NormFloat64()})
	}
	a := sparse.FromCoords(n, n, entries)
	v0 := make([]float64, n)
	for i := range v0 {
		v0[i] = rng.NormFloat64()
	}
	la.Scal(1/la.Nrm2(v0), v0)

	s, m := 3, 6

	// CA pipeline.
	ctx := gpu.NewContext(1, gpu.M2090())
	layout := dist.Uniform(n, 1)
	A := dist.Distribute(ctx, a, layout, s)
	mpk := dist.NewMPK(A)
	v := dist.NewVectors(ctx, layout, m+1)
	v.SetColFromHost(0, v0)
	h := la.NewDense(m+1, m)
	done := 0
	for done < m {
		steps := s
		if done+steps > m {
			steps = m - done
		}
		bhat := mpk.Generate(v, done, steps, nil, "mpk")
		q := done + 1
		c := ortho.BOrthCGS{}.Project(ctx, v.Window(0, q), v.Window(q, q+steps), "borth")
		r, err := ortho.CAQR{}.Factor(ctx, v.Window(q, q+steps), "tsqr")
		if err != nil {
			t.Fatal(err)
		}
		updateHessenberg(h, bhat, c, r, q, steps)
		done += steps
	}

	// Explicit Arnoldi on the host.
	href := la.NewDense(m+1, m)
	basis := [][]float64{append([]float64(nil), v0...)}
	for k := 0; k < m; k++ {
		w := make([]float64, n)
		a.MulVec(w, basis[k])
		for l := 0; l <= k; l++ {
			hlk := la.Dot(basis[l], w)
			href.Set(l, k, hlk)
			la.Axpy(-hlk, basis[l], w)
		}
		// Reorthogonalize for a clean reference.
		for l := 0; l <= k; l++ {
			d := la.Dot(basis[l], w)
			href.Set(l, k, href.At(l, k)+d)
			la.Axpy(-d, basis[l], w)
		}
		nrm := la.Nrm2(w)
		href.Set(k+1, k, nrm)
		la.Scal(1/nrm, w)
		basis = append(basis, w)
	}

	// The two H matrices agree up to the sign convention of each basis
	// vector. Fix signs by comparing basis vectors directly.
	signs := make([]float64, m+1)
	for j := 0; j <= m; j++ {
		got := v.GatherCol(j)
		d := la.Dot(got, basis[j])
		if d >= 0 {
			signs[j] = 1
		} else {
			signs[j] = -1
		}
		// The vectors themselves must agree up to sign.
		for i := range got {
			if math.Abs(got[i]-signs[j]*basis[j][i]) > 1e-7 {
				t.Fatalf("basis vector %d differs from Arnoldi (beyond sign)", j)
			}
		}
	}
	for k := 0; k < m; k++ {
		for i := 0; i <= k+1; i++ {
			want := signs[i] * signs[k] * href.At(i, k)
			if math.Abs(h.At(i, k)-want) > 1e-7*(1+math.Abs(want)) {
				t.Fatalf("H(%d,%d) = %v, Arnoldi reference %v", i, k, h.At(i, k), want)
			}
		}
	}
}
