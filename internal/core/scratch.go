package core

import (
	"sync"

	"cagmres/internal/la"
)

// cycleScratch pools the per-restart work buffers of the solvers' hot
// loops: the current Hessenberg column, the host-side reduction combine
// buffer, the per-device partials of the fused CGS kernel, the byte
// vectors of the communication rounds and the incremental Givens solver.
// Before pooling, every restart cycle reallocated all of these (one
// Hessenberg column and one combine buffer per inner iteration, a Givens
// solver per restart) — on a leased context solving many small systems
// the garbage added up. A scratch is fetched once per solve attempt and
// returned when it finishes.
type cycleScratch struct {
	m, ng int
	hcol  []float64   // m+2 entries: the Hessenberg column being built
	sum   []float64   // m+2 entries: host-side combine of device partials
	bytes []int       // per-device byte vector for comm rounds
	dev   [][]float64 // per-device fused-kernel partials, m+2 entries each
	giv   *la.GivensQR
}

var scratchPool sync.Pool

// getScratch fetches a scratch able to serve restart length m on ng
// devices, allocating only when the pool has nothing big enough.
func getScratch(m, ng int) *cycleScratch {
	if v := scratchPool.Get(); v != nil {
		sc := v.(*cycleScratch)
		if sc.m >= m && sc.ng >= ng {
			return sc
		}
		// Too small for this solve; drop it and build a bigger one.
	}
	sc := &cycleScratch{
		m:     m,
		ng:    ng,
		hcol:  make([]float64, m+2),
		sum:   make([]float64, m+2),
		bytes: make([]int, ng),
		dev:   make([][]float64, ng),
	}
	for d := range sc.dev {
		sc.dev[d] = make([]float64, m+2)
	}
	return sc
}

func putScratch(sc *cycleScratch) {
	if sc != nil {
		scratchPool.Put(sc)
	}
}

// givens returns the pooled incremental Givens solver, reset for a new
// restart cycle with initial residual beta.
func (sc *cycleScratch) givens(m int, beta float64) *la.GivensQR {
	if sc.giv == nil || sc.giv.Size() < m {
		sc.giv = la.NewGivensQR(m, beta)
		return sc.giv
	}
	sc.giv.Reset(beta)
	return sc.giv
}
