package core

import (
	"fmt"

	"cagmres/internal/dist"
	"cagmres/internal/la"
	"cagmres/internal/obs"
	"cagmres/internal/ortho"
)

// CAGMRES solves the prepared problem with communication-avoiding
// GMRES(s, m): each restart cycle generates its m basis vectors in
// ceil(m/s) matrix-powers windows, orthogonalizing each window against
// the previous basis with BOrth and internally with the chosen TSQR
// strategy, then recovers the Hessenberg matrix from the change-of-basis
// and R factors and solves the usual small least-squares problem on the
// host (Figure 2 of the paper).
//
// With Basis == "newton" the first restart runs as standard GMRES (no
// shifts exist yet — exactly what the paper does); its Hessenberg matrix
// supplies the Ritz values that become Leja-ordered Newton shifts for all
// later restarts.
func CAGMRES(p *Problem, opts Options) (*Result, error) {
	opts.defaults()
	tsqr, err := ortho.ByName(opts.Ortho)
	if err != nil {
		return nil, err
	}
	if opts.OrthoImpl != nil {
		tsqr = opts.OrthoImpl
	}
	borth, err := ortho.BOrthByName(opts.BOrth)
	if err != nil {
		return nil, err
	}
	if opts.Basis != "newton" && opts.Basis != "monomial" {
		return nil, fmt.Errorf("core: unknown basis %q", opts.Basis)
	}
	if opts.M < 1 || opts.M > p.Layout.N {
		return nil, fmt.Errorf("core: restart length %d out of range for n=%d", opts.M, p.Layout.N)
	}
	if opts.S < 1 || opts.S > opts.M {
		return nil, fmt.Errorf("core: step size s=%d out of range for m=%d", opts.S, opts.M)
	}
	prec, err := NormalizePrecision(opts.Precision)
	if err != nil {
		return nil, err
	}
	opts.Precision = prec
	return solveHealing(p, opts, "cagmres", func(p *Problem, ck *checkpoint) (*Result, error) {
		return runCAGMRES(p, opts, tsqr, borth, ck)
	})
}

// runCAGMRES is one CA-GMRES solve attempt on the current device
// context, resuming from the checkpoint when one is captured (iterate,
// Newton shift schedule and adaptive-step state). solveHealing owns the
// ledger reset and device-loss recovery around it.
func runCAGMRES(p *Problem, opts Options, tsqr ortho.TSQR, borth ortho.BOrth, ck *checkpoint) (*Result, error) {
	ctx := p.Ctx
	n := p.Layout.N
	m, s := opts.M, opts.S

	// Two distributions: depth-s for the matrix powers kernel, depth-1
	// for residual SpMVs (and the first GMRES cycle).
	As := dist.Distribute(ctx, p.A, p.Layout, s)
	mpkS := dist.NewMPK(As)
	A1 := dist.Distribute(ctx, p.A, p.Layout, 1)
	mpk1 := dist.NewMPK(A1)

	V := dist.NewVectors(ctx, p.Layout, m+1)
	W := dist.NewVectors(ctx, p.Layout, 3) // x, b, r
	W.SetColFromHost(1, p.B)

	sc := getScratch(m, ctx.NumDevices)
	defer putScratch(sc)

	em := newEmitter(opts.Telemetry, "cagmres", ctx)
	bNorm := la.Nrm2(p.B)
	if bNorm == 0 {
		em.emit(obs.Record{Kind: "done"})
		return &Result{X: p.Unmap(make([]float64, n)), Converged: true, RelRes: 0, Stats: ctx.Stats()}, nil
	}
	if nonFinite(bNorm) {
		return &Result{Stats: ctx.Stats()}, &BreakdownError{Iter: 0, Stage: "residual"}
	}

	res := &Result{Stats: ctx.Stats()}
	var shiftBlocks [][]complex128 // nil => monomial
	needShifts := opts.Basis == "newton"

	// The precision policy owns the per-restart width decisions. It is
	// rebuilt on every attempt (healing re-enters here after a device
	// loss) and rewound to the checkpointed level below.
	pol := newPrecisionPolicy(opts.Precision, ctx.Profile().BF16Transfer)

	// Adaptive step size (future-work extension): sEff is the step the
	// CA cycles currently use; it shrinks when windows fail and recovers
	// geometrically on clean restarts.
	sEff := s
	cleanRestarts := 0

	startRestart := 0
	if ck.captured {
		// Resume from the last restart boundary: restore the iterate, the
		// outer-loop counters, the harvested shift schedule and the
		// adaptive-step state captured before the device loss.
		W.SetColFromHost(0, ck.x)
		res.Restarts, res.Iters = ck.restarts, ck.iters
		res.History = append([]float64(nil), ck.history...)
		shiftBlocks = ck.shiftBlocks
		needShifts = ck.needShifts
		sEff = ck.sEff
		cleanRestarts = ck.cleanRestarts
		startRestart = ck.restart
		pol.restore(ck.precLevel)
	}

	h := la.NewDense(m+1, m)
	retryBoundary := false
	for restart := startRestart; restart < opts.MaxRestarts; restart++ {
		if ctx.FaultsArmed() {
			ck.capture(W.GatherCol(0), restart, res)
			ck.shiftBlocks = shiftBlocks
			ck.needShifts = needShifts
			ck.sEff = sEff
			ck.cleanRestarts = cleanRestarts
			ck.precLevel = pol.level
			em.emit(obs.Record{Kind: "checkpoint", Restart: restart, Step: res.Iters})
		}
		if opts.canceled() {
			res.Canceled = true
			break
		}
		// r = b - A x, beta, v0.
		mpk1.SpMV(W, 0, W, 2, PhaseSpMV)
		negateInto(W, 2, 1)
		beta := W.NormCol(2, PhaseVec)
		relres := beta / bNorm
		if nonFinite(relres) {
			// Non-finite residual at the restart boundary: stop instead
			// of iterating on garbage.
			return res, &BreakdownError{Iter: res.Iters, Stage: "residual"}
		}
		if restart > 0 {
			// This boundary's FP64 SpMV + norm and the FP64 iterate update
			// that preceded it are the refinement step of the narrowed
			// pipeline; the policy tightens (never loosens) on its
			// evidence. A retried restart revisits the same boundary with
			// the same residual — no new evidence, so the policy does not
			// observe it again (the stall guard would misread the retry as
			// a stalled narrowed cycle).
			if !retryBoundary {
				pol.observeRefinement()
			}
			res.History = append(res.History, relres)
			em.emit(obs.Record{Kind: "restart", Restart: restart, Step: res.Iters, RelRes: relres,
				Precision: pol.tag()})
			if !retryBoundary {
				pol.observeRestart(relres, opts.Tol)
			}
		}
		retryBoundary = false
		if relres <= opts.Tol {
			res.Converged = true
			res.RelRes = relres
			break
		}
		res.Restarts++
		copyScaled(W, 2, V, 0, 1/beta)
		h.Zero()

		if needShifts {
			// First cycle: standard GMRES iterations, harvesting H.
			k := gmresCycle(mpk1, V, h, m, beta, bNorm*opts.Tol, sc)
			res.Iters += k
			if em.enabled() {
				em.emit(obs.Record{Kind: "cycle", Restart: restart, Step: k, RelRes: relres,
					OrthoLoss: orthoLoss(V.Window(0, k+1))})
			}
			giv := solveSmall(h, k, beta)
			ctx.HostComputeOn(PhaseLSQ, 3*float64(m+1)*float64(m+1))
			W.UpdateWithBasis(0, V, 0, giv[:k], PhaseVec)
			// Ritz values from the square part of H.
			hk := la.NewDense(k, k)
			for j := 0; j < k; j++ {
				for i := 0; i <= j+1 && i < k; i++ {
					x := h.At(i, j)
					if nonFinite(x) {
						// A non-finite Hessenberg means the seed cycle's
						// basis already overflowed; deriving Newton shifts
						// from it would feed NaN Ritz values into the Leja
						// ordering. Stop here.
						return res, &BreakdownError{Iter: res.Iters, Stage: "basis"}
					}
					hk.Set(i, j, x)
				}
			}
			shifts := newtonShifts(hk, m)
			shiftBlocks = scheduleShifts(shifts, m, s)
			ctx.HostComputeOn(PhaseLSQ, 20*float64(k*k*k))
			needShifts = false
			continue
		}

		// --- CA cycle: MPK + BOrth + TSQR per window. ---
		// Configure the pipeline for this restart's precision level: MPK
		// storage/transfer widths plus narrow Gram/projection kernels
		// where the chosen strategies support them.
		tsqrR, borthR := pol.apply(mpkS, tsqr, borth)
		if opts.AdaptiveS && sEff < s {
			// Recover the step size after two clean restarts.
			cleanRestarts++
			if cleanRestarts >= 2 {
				sEff = min(2*sEff, s)
				cleanRestarts = 0
			}
		}
		if shiftBlocks != nil && sEff != s {
			// Re-cut the shift schedule for the reduced window size.
			flat := make([]complex128, 0, m)
			for _, blk := range shiftBlocks {
				flat = append(flat, blk...)
			}
			if len(flat) == m {
				shiftBlocks = scheduleShifts(flat, m, sEff)
			}
		}
		done := 0
		block := 0
		converged := false
		windowFailed := false
		for done < m && !converged {
			if opts.canceled() {
				// Stop between windows: keep the vectors generated so
				// far (the update below salvages them) and exit.
				res.Canceled = true
				break
			}
			var steps int
			var blockShifts []complex128
			if shiftBlocks != nil {
				if block >= len(shiftBlocks) {
					break // shift schedule exhausted (convergence checks passed us here)
				}
				blockShifts = shiftBlocks[block]
				steps = len(blockShifts)
			} else {
				steps = sEff
				if done+steps > m {
					steps = m - done
				}
			}
			bhat := mpkS.Generate(V, done, steps, blockShifts, PhaseMPK)

			q := done + 1
			prev := V.Window(0, q)
			win := V.Window(q, q+steps)
			c := borthR.Project(ctx, prev, win, PhaseBOrth)
			r, err := tsqrR.Factor(ctx, win, PhaseTSQR)
			if err != nil {
				if opts.AdaptiveS && sEff > 1 {
					// Adaptive step size: the window was too deep for
					// this basis. Halve s and redo the whole restart
					// cycle (the basis vectors after `done` are garbage,
					// and the shift schedule changes).
					sEff = (sEff + 1) / 2
					windowFailed = true
					break
				}
				if done > 0 {
					// The window is numerically rank deficient — the
					// usual cause is a nearly invariant Krylov subspace
					// (the solve has effectively converged inside the
					// window). Discard the window, solve with the basis
					// accumulated so far, and let the restart's true
					// residual decide.
					break
				}
				if windowHasNonFinite(win) {
					// The generated basis itself overflowed (the TSQR
					// failure is a symptom): a numerical breakdown, not a
					// rank-deficiency corner case.
					return res, &BreakdownError{Iter: res.Iters + done, Stage: "basis"}
				}
				if pol.tightenOnFailure() {
					// The narrowed width — not the window depth — destroyed
					// the Gram conditioning: retry the restart one level
					// closer to full double.
					windowFailed = true
					break
				}
				return res, fmt.Errorf("core: CA-GMRES restart %d window at %d (%s): %w",
					restart, done, tsqr.Name(), err)
			}
			// Store the orthonormalized window at the basis storage width
			// before anything measures or consumes it.
			pol.roundWindow(win)
			var winLoss float64
			if em.enabled() || pol.active() {
				winLoss = orthoLoss(win)
			}
			pol.observeWindow(winLoss)
			// The change-of-basis algebra is host work; under overlap it
			// runs while the devices start the next window's exchange.
			updateHessenberg(h, bhat, c, r, q, steps)
			ctx.HostComputeOn(PhaseLSQ, 2*float64(q+steps)*float64(steps)*float64(q+steps))

			done += steps
			block++
			// Residual estimate from the growing Hessenberg system.
			_, rn := la.HessenbergLS(subHessenberg(h, done), e1(done+1, beta))
			ctx.HostComputeOn(PhaseLSQ, 3*float64(done+1)*float64(done+1))
			relres = rn / bNorm
			if nonFinite(relres) {
				return res, &BreakdownError{Iter: res.Iters + done, Stage: "window"}
			}
			em.emit(obs.Record{Kind: "window", Restart: restart, Step: done, RelRes: relres,
				OrthoLoss: winLoss, TSQR: tsqrR.Name(), Precision: pol.tag()})
			if rn/bNorm <= opts.Tol {
				converged = true
			}
		}
		if res.Canceled && done == 0 {
			// Canceled before the first window produced anything: x is
			// unchanged, stop with the previous restart's iterate.
			break
		}
		if windowFailed {
			cleanRestarts = 0
			if done == 0 {
				// Nothing salvageable this cycle: x is unchanged, retry
				// the restart with the smaller step (or tighter width).
				res.Restarts--
				retryBoundary = true
				continue
			}
		}
		res.Iters += done
		if em.enabled() {
			em.emit(obs.Record{Kind: "cycle", Restart: restart, Step: done, RelRes: relres,
				OrthoLoss: orthoLoss(V.Window(0, done+1))})
		}

		y, _ := la.HessenbergLS(subHessenberg(h, done), e1(done+1, beta))
		ctx.HostComputeOn(PhaseLSQ, 3*float64(done+1)*float64(done+1))
		W.UpdateWithBasis(0, V, 0, y, PhaseVec)
		if res.Canceled {
			break
		}
	}

	if !res.Converged {
		mpk1.SpMV(W, 0, W, 2, PhaseSpMV)
		negateInto(W, 2, 1)
		res.RelRes = W.NormCol(2, PhaseVec) / bNorm
		if nonFinite(res.RelRes) {
			return res, &BreakdownError{Iter: res.Iters, Stage: "residual"}
		}
	}
	res.Precision = pol.finish()
	em.emit(obs.Record{Kind: "done", Restart: res.Restarts, Step: res.Iters, RelRes: res.RelRes,
		Precision: pol.tag()})
	res.X = p.Unmap(W.GatherCol(0))
	return res, nil
}

// gmresCycle runs one standard GMRES restart cycle (CGS Arnoldi) on an
// already-normalized V[:,0], filling h, and returns the number of
// iterations performed. Used for the shift-harvesting first cycle of
// Newton-basis CA-GMRES.
func gmresCycle(mpk *dist.MPK, v *dist.Vectors, h *la.Dense, m int, beta, absTol float64, sc *cycleScratch) int {
	giv := sc.givens(m, beta)
	k := 0
	for ; k < m; k++ {
		mpk.SpMV(v, k, v, k+1, PhaseSpMV)
		hcol := sc.hcol[:k+2]
		err := arnoldiCGS(v, k, hcol, sc)
		for i := 0; i <= k+1; i++ {
			h.Set(i, k, hcol[i])
		}
		stop := giv.Append(hcol) <= absTol
		if err != nil || stop {
			k++
			break
		}
	}
	return k
}

// solveSmall solves the least-squares problem for the first k columns of
// h with rhs beta*e1.
func solveSmall(h *la.Dense, k int, beta float64) []float64 {
	y, _ := la.HessenbergLS(subHessenberg(h, k), e1(k+1, beta))
	return y
}

// subHessenberg views the leading (k+1) x k block of h.
func subHessenberg(h *la.Dense, k int) *la.Dense {
	return h.RowView(0, k+1).ColView(0, k)
}

func e1(n int, beta float64) []float64 {
	c := make([]float64, n)
	c[0] = beta
	return c
}

// updateHessenberg recovers the new Hessenberg columns from one CA window
// (Hoemmen's change-of-basis algebra). Inputs: bhat is the MPK
// change-of-basis ((steps+1) x steps) with A*W_{0:steps-1} = W * bhat,
// where W = [q_{q-1}, w_1..w_steps]; c = Qprev' W_{1:steps} (q x steps)
// from BOrth; r (steps x steps) from TSQR, so w_i = Qprev c_i + Qnew r_i.
//
// In the orthonormal basis Q = [Qprev | Qnew] the window is W = Q*G with
// G = [e_{q-1} | [C; R]]. Then:
//
//	column q-1 of H  (A q_{q-1} = A w_0):        H[:,q-1] = (G bhat)[:,0]
//	columns q..q+steps-2 (A Qnew_{0:steps-2}):
//	    A Qnew = (A W_{1:steps-1} - A Qprev C_{:,0:steps-2}) Rsub^{-1}
//	           = (G bhat[:,1:] - H[:,0:q] C[:,0:steps-2]) Rsub^{-1}
//
// where Rsub = R[0:steps-1, 0:steps-1]. All small host-side products.
func updateHessenberg(h, bhat, c, r *la.Dense, q, steps int) {
	rows := q + steps
	// G ((q+steps) x (steps+1)).
	g := la.NewDense(rows, steps+1)
	g.Set(q-1, 0, 1)
	for j := 0; j < steps; j++ {
		for i := 0; i < q; i++ {
			g.Set(i, j+1, c.At(i, j))
		}
		for i := 0; i < steps; i++ {
			g.Set(q+i, j+1, r.At(i, j))
		}
	}
	// AW = G * bhat ((q+steps) x steps).
	aw := la.NewDense(rows, steps)
	la.GemmNN(1, g, bhat, 0, aw)

	// Column q-1 of H.
	for i := 0; i < rows && i < h.Rows; i++ {
		h.Set(i, q-1, aw.At(i, 0))
	}

	if steps == 1 {
		return
	}
	// M = AW[:,1:steps] - H[:,0:q] * C[:,0:steps-1].
	msub := la.NewDense(rows, steps-1)
	for j := 1; j < steps; j++ {
		copy(msub.Col(j-1), aw.Col(j))
	}
	hq := h.RowView(0, rows).ColView(0, q)
	csub := c.ColView(0, steps-1)
	la.GemmNN(-1, hq, csub, 1, msub)
	// Right-solve against Rsub: columns of Hnew = M * Rsub^{-1}.
	rsub := r.RowView(0, steps-1).ColView(0, steps-1)
	la.TrsmRightUpper(msub, rsub)
	for j := 0; j < steps-1; j++ {
		for i := 0; i < rows && i < h.Rows; i++ {
			h.Set(i, q+j, msub.At(i, j))
		}
	}
	// Clean sub-subdiagonal noise so H is exactly Hessenberg.
	for j := 0; j < steps; j++ {
		col := q - 1 + j
		for i := col + 2; i < h.Rows; i++ {
			h.Set(i, col, 0)
		}
	}
}
