package core

import (
	"math"
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/sparse"
)

// skewedSystem builds a column-scaled nonsymmetric system (column scales
// spanning six orders of magnitude, A = T*D): exactly the unbalance a
// RIGHT preconditioner undoes, since A*D^{-1} recovers the well-behaved
// tridiagonal T.
func skewedSystem(n int) *sparse.CSR {
	scale := func(j int) float64 { return math.Pow(10, float64(j%7)-3) }
	entries := make([]sparse.Coord, 0, 4*n)
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{Row: i, Col: i, Val: 4 * scale(i)})
		if i > 0 {
			entries = append(entries, sparse.Coord{Row: i, Col: i - 1, Val: -0.9 * scale(i-1)})
		}
		if i+1 < n {
			entries = append(entries, sparse.Coord{Row: i, Col: i + 1, Val: -1.1 * scale(i+1)})
		}
	}
	return sparse.FromCoords(n, n, entries)
}

func TestJacobiPreconditioningCorrectness(t *testing.T) {
	// The unmapped solution must solve the ORIGINAL system regardless of
	// the preconditioner/balancing/permutation stack.
	a := skewedSystem(300)
	b := randomRHS(300, 70)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, err := NewProblem(ctx, a, b, KWay, false)
	if err != nil {
		t.Fatal(err)
	}
	p.ApplyJacobi()
	res, err := GMRES(p, Options{M: 40, Tol: 1e-10, MaxRestarts: 2000, Ortho: "CGS"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence: %v", res.RelRes)
	}
	if rn := ResidualNorm(a, b, res.X); rn > 1e-6 {
		t.Fatalf("true residual %v", rn)
	}
}

func TestJacobiImprovesConvergence(t *testing.T) {
	a := skewedSystem(400)
	b := randomRHS(400, 71)
	iters := map[bool]int{}
	for _, jacobi := range []bool{false, true} {
		ctx := gpu.NewContext(2, gpu.M2090())
		p, err := NewProblem(ctx, a, b, Natural, false)
		if err != nil {
			t.Fatal(err)
		}
		if jacobi {
			p.ApplyJacobi()
		}
		res, err := GMRES(p, Options{M: 30, Tol: 1e-8, MaxRestarts: 3000, Ortho: "CGS"})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("jacobi=%v: no convergence", jacobi)
		}
		iters[jacobi] = res.Iters
	}
	if iters[true] >= iters[false] {
		t.Fatalf("Jacobi did not help: %d vs %d iterations", iters[true], iters[false])
	}
}

func TestJacobiWithCAGMRES(t *testing.T) {
	// The preconditioned operator must flow through MPK unchanged
	// (identical sparsity graph), so CA-GMRES works on it as-is.
	a := skewedSystem(350)
	b := randomRHS(350, 72)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, err := NewProblem(ctx, a, b, Natural, false)
	if err != nil {
		t.Fatal(err)
	}
	p.ApplyJacobi()
	res, err := CAGMRES(p, Options{M: 30, S: 6, Tol: 1e-8, MaxRestarts: 2000, Ortho: "CholQR"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence: %v", res.RelRes)
	}
	if rn := ResidualNorm(a, b, res.X); rn > 1e-6 {
		t.Fatalf("true residual %v", rn)
	}
}

func TestApplyJacobiTwicePanics(t *testing.T) {
	a := skewedSystem(10)
	ctx := gpu.NewContext(1, gpu.M2090())
	p, _ := NewProblem(ctx, a, make([]float64, 10), Natural, false)
	p.ApplyJacobi()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.ApplyJacobi()
}

func TestApplyJacobiZeroDiagonal(t *testing.T) {
	// Rows with zero diagonal are left unscaled, no division by zero.
	a := sparse.FromCoords(3, 3, []sparse.Coord{
		{Row: 0, Col: 1, Val: 2}, {Row: 1, Col: 1, Val: 5}, {Row: 2, Col: 2, Val: 3},
		{Row: 1, Col: 0, Val: 1}, {Row: 0, Col: 2, Val: 1}, {Row: 2, Col: 0, Val: 1},
	})
	ctx := gpu.NewContext(1, gpu.M2090())
	p, _ := NewProblem(ctx, a, []float64{1, 1, 1}, Natural, false)
	p.ApplyJacobi()
	for _, v := range p.A.Val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite entry after Jacobi with zero diagonal")
		}
	}
}

func TestHypergraphOrderingSolves(t *testing.T) {
	a := skewedSystem(200)
	b := randomRHS(200, 73)
	ctx := gpu.NewContext(3, gpu.M2090())
	p, err := NewProblem(ctx, a, b, Hypergraph, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CAGMRES(p, Options{M: 20, S: 5, Tol: 1e-8, MaxRestarts: 2000, Ortho: "CholQR"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence: %v", res.RelRes)
	}
	if rn := ResidualNorm(a, b, res.X); rn > 1e-4 {
		t.Fatalf("true residual %v", rn)
	}
}
