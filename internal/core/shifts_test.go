package core

import (
	"math/cmplx"
	"testing"

	"cagmres/internal/la"
)

func TestNewtonShiftsFromDiagonalH(t *testing.T) {
	h := la.NewDense(3, 3)
	h.Set(0, 0, 3)
	h.Set(1, 1, 1)
	h.Set(2, 2, 2)
	shifts := newtonShifts(h, 6)
	if len(shifts) != 6 {
		t.Fatalf("len = %d", len(shifts))
	}
	// First shift must be the largest-modulus Ritz value.
	if shifts[0] != 3 {
		t.Fatalf("first shift = %v", shifts[0])
	}
	// Cycled: values repeat from the Leja sequence.
	seen := map[float64]int{}
	for _, z := range shifts {
		if imag(z) != 0 {
			t.Fatalf("unexpected complex shift %v", z)
		}
		seen[real(z)]++
	}
	if seen[3] != 2 || seen[1] != 2 || seen[2] != 2 {
		t.Fatalf("cycling wrong: %v", seen)
	}
}

func TestNewtonShiftsKeepsPairs(t *testing.T) {
	// H = rotation-like matrix with complex eigenvalues.
	h := la.NewDense(2, 2)
	h.Set(0, 1, -4)
	h.Set(1, 0, 1)
	shifts := newtonShifts(h, 4)
	if len(shifts) != 4 {
		t.Fatalf("len = %d", len(shifts))
	}
	for i := 0; i < 4; i += 2 {
		if imag(shifts[i]) <= 0 {
			t.Fatalf("pair leader at %d has imag %v", i, imag(shifts[i]))
		}
		if cmplx.Abs(shifts[i+1]-cmplx.Conj(shifts[i])) > 1e-12 {
			t.Fatalf("pair at %d not conjugate", i)
		}
	}
}

func TestNewtonShiftsOddTruncation(t *testing.T) {
	// m odd with only complex pairs: the last slot cannot hold a pair and
	// must be realified.
	h := la.NewDense(2, 2)
	h.Set(0, 1, -4)
	h.Set(1, 0, 1)
	shifts := newtonShifts(h, 3)
	if len(shifts) != 3 {
		t.Fatalf("len = %d", len(shifts))
	}
	if imag(shifts[2]) != 0 {
		t.Fatalf("last shift should be realified, got %v", shifts[2])
	}
	validateNoSplitPairs(t, [][]complex128{shifts})
}

func validateNoSplitPairs(t *testing.T, blocks [][]complex128) {
	t.Helper()
	for bi, b := range blocks {
		for i := 0; i < len(b); i++ {
			if imag(b[i]) > 0 {
				if i+1 >= len(b) || cmplx.Abs(b[i+1]-cmplx.Conj(b[i])) > 1e-12 {
					t.Fatalf("block %d: pair split at %d: %v", bi, i, b)
				}
				i++
			} else if imag(b[i]) < 0 {
				t.Fatalf("block %d: dangling conjugate at %d: %v", bi, i, b)
			}
		}
	}
}

func TestScheduleShiftsRealOnly(t *testing.T) {
	shifts := []complex128{1, 2, 3, 4, 5, 6, 7}
	blocks := scheduleShifts(shifts, 7, 3)
	if len(blocks) != 3 {
		t.Fatalf("blocks = %v", blocks)
	}
	total := 0
	for _, b := range blocks {
		total += len(b)
	}
	if total != 7 {
		t.Fatalf("total = %d", total)
	}
	if len(blocks[0]) != 3 || len(blocks[1]) != 3 || len(blocks[2]) != 1 {
		t.Fatalf("sizes wrong: %v", blocks)
	}
}

func TestScheduleShiftsPairAtBoundary(t *testing.T) {
	// Pair leader would land on the last slot of the first window: the
	// window must close early.
	shifts := []complex128{1, 2, complex(3, 1), complex(3, -1), 5}
	blocks := scheduleShifts(shifts, 5, 3)
	validateNoSplitPairs(t, blocks)
	if len(blocks[0]) != 2 {
		t.Fatalf("first block should shrink to 2: %v", blocks)
	}
	total := 0
	for _, b := range blocks {
		total += len(b)
	}
	if total != 5 {
		t.Fatalf("total = %d", total)
	}
}

func TestScheduleShiftsS1RealifiesPairs(t *testing.T) {
	shifts := []complex128{complex(1, 2), complex(1, -2)}
	blocks := scheduleShifts(shifts, 2, 1)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %v", blocks)
	}
	for _, b := range blocks {
		if len(b) != 1 || imag(b[0]) != 0 {
			t.Fatalf("s=1 block = %v", b)
		}
	}
}

func TestScheduleShiftsNil(t *testing.T) {
	if scheduleShifts(nil, 10, 3) != nil {
		t.Fatal("nil shifts must yield nil blocks")
	}
}

func TestMonomialBlocks(t *testing.T) {
	sizes := monomialBlocks(10, 4)
	want := []int{4, 4, 2}
	if len(sizes) != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v", sizes)
		}
	}
}
