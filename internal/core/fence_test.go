package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cagmres/internal/gpu"
)

var updateFence = flag.Bool("update", false, "rewrite golden files with the current output")

func fenceCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateFence {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestSolverLedgerFence pins a whole solve's ledger under the default
// machine description: the per-phase table, the convergence history and
// the modeled clock of a fixed CA-GMRES run were captured before the
// machine-profile refactor, and the M2090 profile must keep reproducing
// them byte-for-byte. This is the end-to-end arm of the golden fence —
// any cost-model or routing drift that survives the unit fence shows up
// here.
func TestSolverLedgerFence(t *testing.T) {
	a := laplace2D(20, 20, 0.3)
	b := randomRHS(400, 7)
	ctx := gpu.NewContext(3, gpu.M2090())
	p, err := NewProblem(ctx, a, b, KWay, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CAGMRES(p, Options{M: 20, S: 5, Tol: 1e-8, Ortho: "CholQR"})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(res.Stats.String())
	fmt.Fprintf(&sb, "converged %v restarts %d iters %d relres %.15e\n",
		res.Converged, res.Restarts, res.Iters, res.RelRes)
	for i, h := range res.History {
		fmt.Fprintf(&sb, "history[%d] %.15e\n", i, h)
	}
	fmt.Fprintf(&sb, "total %.15e\n", res.Stats.TotalTime())
	fenceCompare(t, "solver_ledger.golden", sb.String())
}
