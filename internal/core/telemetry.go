package core

import (
	"math"

	"cagmres/internal/gpu"
	"cagmres/internal/la"
	"cagmres/internal/obs"
)

// emitter stamps solver telemetry records with the solver name and the
// ledger's modeled clock before handing them to the configured sink. A
// nil emitter (telemetry disabled) makes every call a no-op, so the
// solvers emit unconditionally and pay nothing when no sink is set.
type emitter struct {
	sink   obs.Sink
	solver string
	ctx    *gpu.Context
}

// newEmitter returns nil when sink is nil, which disables telemetry.
func newEmitter(sink obs.Sink, solver string, ctx *gpu.Context) *emitter {
	if sink == nil {
		return nil
	}
	return &emitter{sink: sink, solver: solver, ctx: ctx}
}

// enabled reports whether telemetry consumers exist; the solvers use it
// to skip diagnostic-only work (orthogonality measurements) that would
// otherwise burn host cycles for nobody.
func (e *emitter) enabled() bool { return e != nil }

// emit fills Solver and Clock and forwards the record. Clock is the
// ledger's TotalTime at emission — it only ever accumulates, so the
// stream's clock is monotone by construction.
func (e *emitter) emit(r obs.Record) {
	if e == nil {
		return
	}
	r.Solver = e.solver
	r.Clock = e.ctx.Stats().TotalTime()
	e.sink.Emit(r)
}

// orthoLoss computes ||I - Q'Q||_F of a distributed window (per-device
// row panels of Q). Host-side diagnostic for telemetry only — it is
// never charged to the ledger, and the solvers only call it when a sink
// is attached.
func orthoLoss(w []*la.Dense) float64 {
	if len(w) == 0 || w[0].Cols == 0 {
		return 0
	}
	c := w[0].Cols
	g := la.NewDense(c, c)
	tmp := la.NewDense(c, c)
	for _, p := range w {
		la.GemmTN(1, p, p, 0, tmp)
		for j := 0; j < c; j++ {
			la.Axpy(1, tmp.Col(j), g.Col(j))
		}
	}
	var sum float64
	for j := 0; j < c; j++ {
		for i := 0; i < c; i++ {
			d := g.At(i, j)
			if i == j {
				d--
			}
			sum += d * d
		}
	}
	return math.Sqrt(sum)
}
