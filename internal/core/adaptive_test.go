package core

import (
	"math"
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/matgen"
)

// hardMatrix builds a small cant-analogue system on which plain
// CA-GMRES(15, 60)/CholQR is known to hit a rank-deficient Newton window
// (the small-matrix regime where the first restart's Ritz values resolve
// most of the spectrum and the basis degenerates quickly).
func hardMatrix(t *testing.T) (*gpu.Context, *Problem) {
	t.Helper()
	m := matgen.Cant(0.05)
	b := make([]float64, m.A.Rows)
	for i := range b {
		b[i] = 1
	}
	ctx := gpu.NewContext(2, gpu.M2090())
	p, err := NewProblem(ctx, m.A, b, Natural, true)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, p
}

func TestAdaptiveSRescuesCholQR(t *testing.T) {
	// Without adaptivity the solve fails...
	_, p := hardMatrix(t)
	opts := Options{M: 60, S: 15, Tol: 1e-4, MaxRestarts: 40, Ortho: "CholQR"}
	if _, err := CAGMRES(p, opts); err == nil {
		t.Skip("CholQR unexpectedly survived; matrix too benign on this build")
	}
	// ...with adaptivity the step size shrinks and the solve completes.
	_, p = hardMatrix(t)
	opts.AdaptiveS = true
	res, err := CAGMRES(p, opts)
	if err != nil {
		t.Fatalf("adaptive solve failed: %v", err)
	}
	if !res.Converged {
		t.Fatalf("adaptive solve did not converge: relres %v", res.RelRes)
	}
	if math.IsNaN(res.RelRes) {
		t.Fatal("NaN residual")
	}
}

func TestAdaptiveSHarmlessOnEasyProblem(t *testing.T) {
	// On a well-behaved system the adaptive path must not change the
	// outcome (windows never fail, s never shrinks).
	a := laplace2D(18, 18, 0.2)
	b := randomRHS(324, 30)
	for _, adaptive := range []bool{false, true} {
		ctx := gpu.NewContext(2, gpu.M2090())
		p, _ := NewProblem(ctx, a, b, Natural, false)
		res, err := CAGMRES(p, Options{
			M: 24, S: 6, Tol: 1e-6, Ortho: "CholQR", AdaptiveS: adaptive,
		})
		if err != nil {
			t.Fatalf("adaptive=%v: %v", adaptive, err)
		}
		solveCheck(t, a, b, res, err, 1e-5)
	}
}

func TestAdaptiveSMonomialLargeS(t *testing.T) {
	// Monomial basis with s = m is the most fragile configuration in the
	// paper's stability discussion; adaptivity must still land a
	// converged solve by shrinking the windows.
	a := laplace2D(22, 22, 0.4)
	b := randomRHS(484, 31)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, _ := NewProblem(ctx, a, b, Natural, true)
	res, err := CAGMRES(p, Options{
		M: 30, S: 30, Tol: 1e-6, MaxRestarts: 400,
		Ortho: "CholQR", Basis: "monomial", AdaptiveS: true,
	})
	if err != nil {
		t.Fatalf("adaptive monomial solve failed: %v", err)
	}
	if !res.Converged {
		t.Fatalf("no convergence: relres %v", res.RelRes)
	}
}
