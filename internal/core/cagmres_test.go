package core

import (
	"math"
	"testing"

	"cagmres/internal/gpu"
)

func TestCAGMRESSolvesLaplaceAllTSQR(t *testing.T) {
	a := laplace2D(20, 20, 0.3)
	b := randomRHS(400, 10)
	for _, ortho := range []string{"MGS", "CGS", "CholQR", "SVQR", "CAQR", "2xCGS", "2xCholQR", "MixedCholQR2"} {
		ctx := gpu.NewContext(2, gpu.M2090())
		p, err := NewProblem(ctx, a, b, Natural, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CAGMRES(p, Options{M: 30, S: 5, Tol: 1e-6, Ortho: ortho})
		if err != nil {
			t.Fatalf("%s: %v", ortho, err)
		}
		solveCheck(t, a, b, res, err, 1e-5)
	}
}

func TestCAGMRESDeviceCounts(t *testing.T) {
	a := laplace2D(18, 18, 0.2)
	b := randomRHS(324, 11)
	for _, ng := range []int{1, 2, 3} {
		ctx := gpu.NewContext(ng, gpu.M2090())
		p, _ := NewProblem(ctx, a, b, Natural, false)
		res, err := CAGMRES(p, Options{M: 24, S: 6, Tol: 1e-6, Ortho: "CholQR"})
		if err != nil {
			t.Fatalf("ng=%d: %v", ng, err)
		}
		solveCheck(t, a, b, res, err, 1e-5)
	}
}

func TestCAGMRESMonomialBasis(t *testing.T) {
	a := laplace2D(16, 16, 0.1)
	b := randomRHS(256, 12)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, _ := NewProblem(ctx, a, b, Natural, true)
	res, err := CAGMRES(p, Options{M: 20, S: 5, Tol: 1e-6, Ortho: "CholQR", Basis: "monomial"})
	if err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a, b, res, err, 1e-4)
}

func TestCAGMRESNewtonSurvivesWhereMonomialBreaksCholQR(t *testing.T) {
	// The paper's stability story: with a large s the monomial basis
	// condition number explodes (kappa grows like |lambda1/lambda2|^s),
	// the Gram matrix goes numerically indefinite and CholQR fails. The
	// Newton basis with Leja-ordered Ritz shifts keeps the same
	// configuration solvable.
	a := laplace2D(24, 24, 0.4)
	b := randomRHS(576, 13)

	ctxM := gpu.NewContext(2, gpu.M2090())
	pm, _ := NewProblem(ctxM, a, b, Natural, true)
	_, errMono := CAGMRES(pm, Options{M: 30, S: 15, Tol: 1e-6, Ortho: "2xCholQR", Basis: "monomial", MaxRestarts: 300})

	ctxN := gpu.NewContext(2, gpu.M2090())
	pn, _ := NewProblem(ctxN, a, b, Natural, true)
	resNewt, errNewt := CAGMRES(pn, Options{M: 30, S: 15, Tol: 1e-6, Ortho: "2xCholQR", Basis: "newton", MaxRestarts: 300})

	if errNewt != nil {
		t.Fatalf("newton basis failed: %v", errNewt)
	}
	if !resNewt.Converged {
		t.Fatalf("newton basis did not converge: relres %v", resNewt.RelRes)
	}
	if errMono == nil {
		t.Log("monomial basis survived CholQR at s=15 on this problem (milder than the paper's cases)")
	}
}

func TestCAGMRESMatchesGMRESIterationCounts(t *testing.T) {
	// In exact arithmetic CA-GMRES is GMRES: on a well-conditioned
	// problem the restart counts must agree closely.
	a := laplace2D(20, 20, 0.2)
	b := randomRHS(400, 14)

	ctxG := gpu.NewContext(2, gpu.M2090())
	pg, _ := NewProblem(ctxG, a, b, Natural, false)
	rg, err := GMRES(pg, Options{M: 20, Tol: 1e-6, Ortho: "CGS"})
	if err != nil {
		t.Fatal(err)
	}

	ctxC := gpu.NewContext(2, gpu.M2090())
	pc, _ := NewProblem(ctxC, a, b, Natural, false)
	rc, err := CAGMRES(pc, Options{M: 20, S: 5, Tol: 1e-6, Ortho: "CholQR"})
	if err != nil {
		t.Fatal(err)
	}
	if !rg.Converged || !rc.Converged {
		t.Fatalf("convergence: gmres=%v ca=%v", rg.Converged, rc.Converged)
	}
	diff := rg.Restarts - rc.Restarts
	if diff < 0 {
		diff = -diff
	}
	if diff > 2 {
		t.Fatalf("restart counts diverge: GMRES %d vs CA-GMRES %d", rg.Restarts, rc.Restarts)
	}
}

func TestCAGMRESS1Works(t *testing.T) {
	// The degenerate CA-GMRES(1, m) configuration of Figure 14.
	a := laplace2D(12, 12, 0.2)
	b := randomRHS(144, 15)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, _ := NewProblem(ctx, a, b, Natural, false)
	res, err := CAGMRES(p, Options{M: 15, S: 1, Tol: 1e-6, Ortho: "CGS"})
	if err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a, b, res, err, 1e-5)
}

func TestCAGMRESSEqualsM(t *testing.T) {
	// One window per restart: s = m.
	a := laplace2D(14, 14, 0.2)
	b := randomRHS(196, 16)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, _ := NewProblem(ctx, a, b, Natural, true)
	res, err := CAGMRES(p, Options{M: 12, S: 12, Tol: 1e-6, Ortho: "2xCholQR"})
	if err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a, b, res, err, 1e-4)
}

func TestCAGMRESBOrthMGSVariant(t *testing.T) {
	a := laplace2D(14, 14, 0.3)
	b := randomRHS(196, 17)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, _ := NewProblem(ctx, a, b, Natural, false)
	res, err := CAGMRES(p, Options{M: 20, S: 5, Tol: 1e-6, Ortho: "CholQR", BOrth: "MGS"})
	if err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a, b, res, err, 1e-5)
}

func TestCAGMRESCommunicationAdvantage(t *testing.T) {
	// The headline claim: per basis vector, CA-GMRES(s>1) needs far fewer
	// communication rounds than GMRES in the orthogonalization+basis
	// phases.
	a := laplace2D(30, 30, 0.2)
	b := randomRHS(900, 18)

	ctxG := gpu.NewContext(3, gpu.M2090())
	pg, _ := NewProblem(ctxG, a, b, Natural, false)
	rg, err := GMRES(pg, Options{M: 30, Tol: 1e-6, Ortho: "MGS", MaxRestarts: 60})
	if err != nil {
		t.Fatal(err)
	}

	ctxC := gpu.NewContext(3, gpu.M2090())
	pc, _ := NewProblem(ctxC, a, b, Natural, false)
	rc, err := CAGMRES(pc, Options{M: 30, S: 10, Tol: 1e-6, Ortho: "CholQR", MaxRestarts: 60})
	if err != nil {
		t.Fatal(err)
	}

	gOrth := rg.Stats.Phase(PhaseOrth)
	cOrth := rc.Stats.Phase(PhaseBOrth)
	cTSQR := rc.Stats.Phase(PhaseTSQR)
	gRoundsPerIter := float64(gOrth.Rounds) / float64(rg.Iters)
	cRoundsPerIter := float64(cOrth.Rounds+cTSQR.Rounds) / float64(rc.Iters)
	if cRoundsPerIter*2 > gRoundsPerIter {
		t.Fatalf("CA rounds/iter %.2f not clearly below GMRES %.2f", cRoundsPerIter, gRoundsPerIter)
	}
}

func TestCAGMRESInvalidOptions(t *testing.T) {
	a := laplace2D(6, 6, 0)
	b := randomRHS(36, 19)
	ctx := gpu.NewContext(1, gpu.M2090())
	p, _ := NewProblem(ctx, a, b, Natural, false)
	if _, err := CAGMRES(p, Options{M: 10, S: 20}); err == nil {
		t.Fatal("s > m must be rejected")
	}
	if _, err := CAGMRES(p, Options{M: 10, S: 5, Ortho: "bogus"}); err == nil {
		t.Fatal("unknown ortho must be rejected")
	}
	if _, err := CAGMRES(p, Options{M: 10, S: 5, Basis: "bogus"}); err == nil {
		t.Fatal("unknown basis must be rejected")
	}
	if _, err := CAGMRES(p, Options{M: 10, S: 5, BOrth: "bogus"}); err == nil {
		t.Fatal("unknown borth must be rejected")
	}
}

func TestCAGMRESHistoryMonotoneOnEasyProblem(t *testing.T) {
	a := laplace2D(16, 16, 0.1)
	b := randomRHS(256, 20)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, _ := NewProblem(ctx, a, b, Natural, false)
	res, err := CAGMRES(p, Options{M: 8, S: 4, Tol: 1e-8, Ortho: "2xCholQR", MaxRestarts: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence: %v", res.RelRes)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]*(1+1e-6) {
			t.Fatalf("restart residual increased at %d: %v", i, res.History)
		}
	}
}

func TestCAGMRESTrueResidualMatchesEstimate(t *testing.T) {
	// RelRes (from the Hessenberg least-squares machinery) must agree
	// with the true residual computed from X.
	a := laplace2D(18, 18, 0.25)
	b := randomRHS(324, 21)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, _ := NewProblem(ctx, a, b, Natural, false)
	res, err := CAGMRES(p, Options{M: 25, S: 5, Tol: 1e-7, Ortho: "CholQR"})
	if err != nil {
		t.Fatal(err)
	}
	truth := ResidualNorm(a, b, res.X)
	if math.Abs(math.Log10(truth+1e-300)-math.Log10(res.RelRes+1e-300)) > 1 {
		t.Fatalf("estimate %v vs truth %v", res.RelRes, truth)
	}
}
