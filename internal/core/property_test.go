package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cagmres/internal/gpu"
	"cagmres/internal/la"
	"cagmres/internal/sparse"
)

// denseSolve solves a small system exactly with Householder QR, the
// cross-validation oracle for the iterative solvers.
func denseSolve(a *sparse.CSR, b []float64) []float64 {
	n := a.Rows
	dense := la.NewDense(n, n)
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			dense.Set(i, j, vals[k])
		}
	}
	return la.QRLeastSquares(dense, b)
}

// TestSolversMatchDenseOracle cross-validates both solvers against exact
// dense solves on random small well-conditioned systems with random
// configurations (device counts, orderings, step sizes, strategies).
func TestSolversMatchDenseOracle(t *testing.T) {
	orthos := []string{"CGS", "CholQR", "SVQR", "CAQR", "2xCGS", "MixedCholQR2"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(60)
		// Diagonally dominant random system: GMRES-friendly.
		entries := make([]sparse.Coord, 0, 5*n)
		for i := 0; i < n; i++ {
			var sum float64
			for d := 0; d < 3; d++ {
				j := rng.Intn(n)
				if j == i {
					continue
				}
				v := rng.NormFloat64()
				entries = append(entries, sparse.Coord{Row: i, Col: j, Val: v})
				sum += math.Abs(v)
			}
			entries = append(entries, sparse.Coord{Row: i, Col: i, Val: sum + 1 + rng.Float64()})
		}
		a := sparse.FromCoords(n, n, entries)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := denseSolve(a, b)

		ng := 1 + rng.Intn(3)
		ordering := []Ordering{Natural, RCM, KWay}[rng.Intn(3)]
		balance := rng.Intn(2) == 0
		m := 8 + rng.Intn(10)
		if m > n {
			m = n
		}
		ctx := gpu.NewContext(ng, gpu.M2090())
		p, err := NewProblem(ctx, a, b, ordering, balance)
		if err != nil {
			t.Logf("seed %d: NewProblem: %v", seed, err)
			return false
		}
		var res *Result
		if rng.Intn(2) == 0 {
			res, err = GMRES(p, Options{M: m, Tol: 1e-10, MaxRestarts: 3000,
				Ortho: []string{"MGS", "CGS"}[rng.Intn(2)]})
		} else {
			s := 1 + rng.Intn(m)
			res, err = CAGMRES(p, Options{M: m, S: s, Tol: 1e-10, MaxRestarts: 3000,
				Ortho: orthos[rng.Intn(len(orthos))], AdaptiveS: true})
		}
		if err != nil {
			t.Logf("seed %d: solver: %v", seed, err)
			return false
		}
		if !res.Converged {
			t.Logf("seed %d: no convergence (relres %v)", seed, res.RelRes)
			return false
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
				t.Logf("seed %d: x[%d] = %v, oracle %v", seed, i, res.X[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCAGMRESDeterministicAcrossRuns ensures the solver is bitwise
// reproducible for a fixed configuration (device parallelism must not
// introduce nondeterminism: reductions are summed on the host in device
// order).
func TestCAGMRESDeterministicAcrossRuns(t *testing.T) {
	a := laplace2D(15, 15, 0.3)
	b := randomRHS(225, 80)
	run := func() []float64 {
		ctx := gpu.NewContext(3, gpu.M2090())
		p, _ := NewProblem(ctx, a, b, KWay, true)
		res, err := CAGMRES(p, Options{M: 20, S: 5, Tol: 1e-8, Ortho: "CholQR"})
		if err != nil {
			t.Fatal(err)
		}
		return res.X
	}
	x1, x2 := run(), run()
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("nondeterministic solution at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

// TestSolutionIndependentOfDeviceCount verifies the distributed execution
// is transparent: the same problem solved on 1, 2 and 3 devices yields
// the same solution to tight tolerance.
func TestSolutionIndependentOfDeviceCount(t *testing.T) {
	a := laplace2D(16, 16, 0.25)
	b := randomRHS(256, 81)
	var ref []float64
	for _, ng := range []int{1, 2, 3} {
		ctx := gpu.NewContext(ng, gpu.M2090())
		p, _ := NewProblem(ctx, a, b, Natural, false)
		res, err := CAGMRES(p, Options{M: 24, S: 6, Tol: 1e-10, Ortho: "CAQR", MaxRestarts: 2000})
		if err != nil {
			t.Fatalf("ng=%d: %v", ng, err)
		}
		if ref == nil {
			ref = res.X
			continue
		}
		for i := range ref {
			if math.Abs(res.X[i]-ref[i]) > 1e-7*(1+math.Abs(ref[i])) {
				t.Fatalf("ng=%d: solution differs at %d", ng, i)
			}
		}
	}
}
