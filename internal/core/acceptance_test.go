package core

import (
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/matgen"
)

// Acceptance suite: every paper workload solved end-to-end with its
// Figure-14/15 configuration (scaled down), through the full pipeline —
// generator, ordering, balancing, Newton shifts, MPK, BOrth, TSQR,
// Hessenberg recovery, restarts — with the solution verified against the
// original system on the host.
func TestAcceptancePaperWorkloads(t *testing.T) {
	cases := []struct {
		name     string
		scale    float64
		ordering Ordering
		m, s     int
		ortho    string
	}{
		{"cant", 0.2, Natural, 60, 15, "2xCAQR"},
		{"G3_circuit", 0.005, KWay, 30, 15, "CholQR"},
		{"dielFilterV2real", 0.008, KWay, 90, 15, "CholQR"},
		{"nlpkkt120", 0.002, KWay, 60, 10, "CholQR"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mat, err := matgen.ByName(tc.name, tc.scale)
			if err != nil {
				t.Fatal(err)
			}
			b := make([]float64, mat.A.Rows)
			for i := range b {
				b[i] = 1
			}
			ctx := gpu.NewContext(3, gpu.M2090())
			p, err := NewProblem(ctx, mat.A, b, tc.ordering, true)
			if err != nil {
				t.Fatal(err)
			}
			res, err := CAGMRES(p, Options{
				M: tc.m, S: tc.s, Tol: 1e-4, MaxRestarts: 400,
				Ortho: tc.ortho, AdaptiveS: true,
			})
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			if !res.Converged {
				t.Fatalf("no convergence after %d restarts: relres %v", res.Restarts, res.RelRes)
			}
			// The paper's convergence target is a 1e-4 reduction on the
			// balanced system; verify the unmapped solution is a real
			// solution of the original system to a compatible tolerance.
			if rn := ResidualNorm(mat.A, b, res.X); rn > 1e-2 {
				t.Fatalf("true residual %v too large", rn)
			}
			// Every phase of the pipeline must have run.
			for _, phase := range []string{PhaseMPK, PhaseBOrth, PhaseTSQR, PhaseSpMV, PhaseVec} {
				if res.Stats.Phase(phase).Kernels == 0 && res.Stats.Phase(phase).Rounds == 0 {
					t.Fatalf("phase %q never ran", phase)
				}
			}
			t.Logf("%s: n=%d restarts=%d iters=%d relres=%.2e modeled=%.2fms",
				tc.name, mat.A.Rows, res.Restarts, res.Iters, res.RelRes,
				res.Stats.TotalTime()*1e3)
		})
	}
}
