package core

import (
	"math"
	"testing"

	"cagmres/internal/gpu"
)

// solveOn runs a CA-GMRES solve on a fresh context and returns the
// result plus the context for ledger inspection.
func solveOn(t *testing.T, ng int, opts Options) (*Result, *gpu.Context) {
	t.Helper()
	a := laplace2D(20, 20, 0.3)
	b := randomRHS(400, 7)
	ctx := gpu.NewContext(ng, gpu.M2090())
	p, err := NewProblem(ctx, a, b, KWay, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CAGMRES(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, ctx
}

// TestOverlapPreservesNumericsAndWins: the overlapped schedule must not
// change a single arithmetic operation — identical iterates and
// residuals — while its modeled completion time beats the synchronous
// schedule strictly on multiple devices (transfers hidden behind interior
// SpMV, host algebra hidden behind device GEMMs).
func TestOverlapPreservesNumericsAndWins(t *testing.T) {
	base := Options{M: 20, S: 5, Tol: 1e-8, Ortho: "CholQR"}
	over := base
	over.Overlap = true

	syncRes, syncCtx := solveOn(t, 3, base)
	overRes, overCtx := solveOn(t, 3, over)

	if !syncRes.Converged || !overRes.Converged {
		t.Fatalf("convergence: sync %v overlap %v", syncRes.Converged, overRes.Converged)
	}
	for i := range syncRes.X {
		if syncRes.X[i] != overRes.X[i] {
			t.Fatalf("overlap changed x[%d]: %v vs %v", i, overRes.X[i], syncRes.X[i])
		}
	}
	if syncRes.Restarts != overRes.Restarts || syncRes.RelRes != overRes.RelRes {
		t.Fatalf("overlap changed convergence history: %+v vs %+v", overRes, syncRes)
	}
	// The ledgers are NOT asserted identical: the interior/boundary MPK
	// split runs two kernels per step under overlap (extra launch
	// charges), so the overlapped run pays for its own restructuring.
	// Despite that, its critical path must strictly beat the synchronous
	// schedule, and its serial replay must reconcile with its own ledger.
	syncTime := syncCtx.Stats().TotalTime()
	overTime := overCtx.OverlappedTime()
	if overTime >= syncTime {
		t.Fatalf("overlap %.6g s did not beat synchronous %.6g s", overTime, syncTime)
	}
	// Submission-order vs per-phase summation: equal up to rounding.
	if got, want := overCtx.SerialTime(), overCtx.Stats().TotalTime(); math.Abs(got-want) > 1e-12*want {
		t.Fatalf("serial time %v != own ledger total %v", got, want)
	}
}

// TestOverlapSingleDeviceNoWorse: with one device there is still CPU/GPU
// and transfer/compute overlap, so the horizon may improve, but it must
// never exceed the synchronous schedule.
func TestOverlapSingleDeviceNoWorse(t *testing.T) {
	opts := Options{M: 20, S: 5, Tol: 1e-8, Ortho: "CholQR", Overlap: true}
	res, ctx := solveOn(t, 1, opts)
	if !res.Converged {
		t.Fatal("no convergence")
	}
	if h, s := ctx.OverlappedTime(), ctx.SerialTime(); h > s {
		t.Fatalf("single-device horizon %v exceeds serial %v", h, s)
	}
}

// TestOverlapFaultedReplayIdentical: under an armed fault plan the
// overlapped engine must stay deterministic — two identical runs produce
// bit-identical solutions, fault reports and stream horizons (faults
// fire on the stream clock, which is itself deterministic).
func TestOverlapFaultedReplayIdentical(t *testing.T) {
	run := func() (*Result, float64) {
		a := laplace2D(20, 20, 0.3)
		b := randomRHS(400, 11)
		ctx := gpu.NewContext(3, gpu.M2090())
		ctx.InjectFaults(gpu.FaultPlan{
			Seed:              42,
			TransferFaultProb: 0.05,
			MaxTransferFaults: 20,
		})
		p, err := NewProblem(ctx, a, b, KWay, true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CAGMRES(p, Options{M: 20, S: 5, Tol: 1e-8, Ortho: "CholQR", Overlap: true})
		if err != nil {
			t.Fatal(err)
		}
		return res, ctx.OverlappedTime()
	}
	r1, h1 := run()
	r2, h2 := run()
	if h1 != h2 {
		t.Fatalf("horizons differ: %v vs %v", h1, h2)
	}
	for i := range r1.X {
		if r1.X[i] != r2.X[i] {
			t.Fatalf("faulted overlap replay diverged at x[%d]", i)
		}
	}
	if (r1.Faults == nil) != (r2.Faults == nil) {
		t.Fatal("fault reports differ in presence")
	}
	if r1.Faults != nil {
		if r1.Faults.TransferFaults != r2.Faults.TransferFaults ||
			r1.Faults.TransferRetries != r2.Faults.TransferRetries {
			t.Fatalf("fault reports differ: %+v vs %+v", *r1.Faults, *r2.Faults)
		}
	}
}

// TestOverlapGMRESPath: the standard GMRES driver honors the option too.
func TestOverlapGMRESPath(t *testing.T) {
	base := Options{M: 25, Tol: 1e-8, Ortho: "CGS"}
	over := base
	over.Overlap = true
	a := laplace2D(18, 18, 0.2)
	b := randomRHS(324, 3)
	solve := func(opts Options) (*Result, *gpu.Context) {
		ctx := gpu.NewContext(2, gpu.M2090())
		p, err := NewProblem(ctx, a, b, KWay, true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := GMRES(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res, ctx
	}
	sr, sctx := solve(base)
	or, octx := solve(over)
	if !sr.Converged || !or.Converged {
		t.Fatal("no convergence")
	}
	for i := range sr.X {
		if sr.X[i] != or.X[i] {
			t.Fatalf("overlap changed GMRES x[%d]", i)
		}
	}
	if h, s := octx.OverlappedTime(), sctx.Stats().TotalTime(); h >= s {
		t.Fatalf("GMRES overlap %v did not beat synchronous %v", h, s)
	}
}
