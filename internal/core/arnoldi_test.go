package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/sparse"
)

// diagMatrix builds a diagonal matrix with the given spectrum plus weak
// couplings so the Krylov space explores all directions.
func spectrumMatrix(eigs []float64, coupling float64, seed int64) *sparse.CSR {
	n := len(eigs)
	rng := rand.New(rand.NewSource(seed))
	entries := make([]sparse.Coord, 0, 3*n)
	for i, l := range eigs {
		entries = append(entries, sparse.Coord{Row: i, Col: i, Val: l})
		j := rng.Intn(n)
		if j != i {
			entries = append(entries, sparse.Coord{Row: i, Col: j, Val: coupling * rng.NormFloat64()})
		}
	}
	return sparse.FromCoords(n, n, entries)
}

func TestRitzValuesFindExtremes(t *testing.T) {
	// Spectrum 1..100 with an outlier at 500: Arnoldi must lock onto the
	// dominant eigenvalue quickly.
	n := 100
	eigs := make([]float64, n)
	for i := range eigs {
		eigs[i] = float64(i + 1)
	}
	eigs[n-1] = 500
	a := spectrumMatrix(eigs, 1e-3, 1)

	rng := rand.New(rand.NewSource(2))
	start := make([]float64, n)
	for i := range start {
		start[i] = rng.NormFloat64()
	}

	for _, s := range []int{1, 5} {
		ctx := gpu.NewContext(2, gpu.M2090())
		p, err := NewProblem(ctx, a, make([]float64, n), Natural, false)
		if err != nil {
			t.Fatal(err)
		}
		ritz, err := RitzValues(p, Options{M: 30, S: s, Ortho: "CholQR"}, start)
		if err != nil {
			t.Fatalf("s=%d: %v", s, err)
		}
		if len(ritz) != 30 {
			t.Fatalf("s=%d: got %d ritz values", s, len(ritz))
		}
		if math.Abs(real(ritz[0])-500) > 1 || math.Abs(imag(ritz[0])) > 1 {
			t.Fatalf("s=%d: dominant Ritz value %v, want ~500", s, ritz[0])
		}
	}
}

func TestRitzValuesCAMatchesStandard(t *testing.T) {
	// Same starting vector: standard and CA-Arnoldi span the same Krylov
	// space, so the Ritz values must agree to roundoff.
	n := 80
	eigs := make([]float64, n)
	for i := range eigs {
		eigs[i] = 1 + 0.2*float64(i)
	}
	a := spectrumMatrix(eigs, 1e-2, 3)
	rng := rand.New(rand.NewSource(4))
	start := make([]float64, n)
	for i := range start {
		start[i] = rng.NormFloat64()
	}

	get := func(s int) []complex128 {
		ctx := gpu.NewContext(2, gpu.M2090())
		p, _ := NewProblem(ctx, a, make([]float64, n), Natural, false)
		ritz, err := RitzValues(p, Options{M: 12, S: s, Ortho: "CAQR"}, start)
		if err != nil {
			t.Fatalf("s=%d: %v", s, err)
		}
		return ritz
	}
	std := get(1)
	ca := get(4)
	if len(std) != len(ca) {
		t.Fatalf("lengths %d vs %d", len(std), len(ca))
	}
	for i := range std {
		if cmplx.Abs(std[i]-ca[i]) > 1e-6*(1+cmplx.Abs(std[i])) {
			t.Fatalf("ritz[%d]: standard %v vs CA %v", i, std[i], ca[i])
		}
	}
}

func TestRitzValuesCommunicationAdvantage(t *testing.T) {
	// The point of CA-Arnoldi: far fewer rounds for the same subspace.
	n := 400
	a := laplace2D(20, 20, 0.3)
	rng := rand.New(rand.NewSource(5))
	start := make([]float64, n)
	for i := range start {
		start[i] = rng.NormFloat64()
	}
	rounds := func(s int) int {
		ctx := gpu.NewContext(3, gpu.M2090())
		p, _ := NewProblem(ctx, a, make([]float64, n), Natural, false)
		if _, err := RitzValues(p, Options{M: 30, S: s, Ortho: "CholQR"}, start); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, ph := range ctx.Stats().Phases() {
			total += ctx.Stats().Phase(ph).Rounds
		}
		return total
	}
	if r1, r10 := rounds(1), rounds(10); r10*3 > r1 {
		t.Fatalf("CA-Arnoldi rounds %d not clearly below standard %d", r10, r1)
	}
}

func TestRitzValuesErrors(t *testing.T) {
	a := laplace2D(5, 5, 0)
	ctx := gpu.NewContext(1, gpu.M2090())
	p, _ := NewProblem(ctx, a, make([]float64, 25), Natural, false)
	if _, err := RitzValues(p, Options{M: 100}, nil); err == nil {
		t.Fatal("m > n must be rejected")
	}
	if _, err := RitzValues(p, Options{M: 5}, make([]float64, 3)); err == nil {
		t.Fatal("bad start length must be rejected")
	}
	if _, err := RitzValues(p, Options{M: 5}, make([]float64, 25)); err == nil {
		t.Fatal("zero start must be rejected")
	}
}
