package core

import (
	"errors"
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/obs"
)

// chaosOpts is the solver configuration every healing test uses, so the
// fault-free and faulted runs are directly comparable.
func chaosOpts() Options {
	return Options{M: 20, S: 5, Tol: 1e-6, Ortho: "CholQR"}
}

// midSolveDeath runs the workload fault-free on ng devices and returns a
// death time landing mid-solve (half the fault-free virtual duration) —
// late enough that real restarts have completed, early enough that real
// work remains.
func midSolveDeath(t *testing.T, ng int, solve func(*Problem, Options) (*Result, error), opts Options) float64 {
	t.Helper()
	a := laplace2D(20, 20, 0.3)
	b := randomRHS(400, 10)
	ctx := gpu.NewContext(ng, gpu.M2090())
	p, err := NewProblem(ctx, a, b, Natural, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := solve(p, opts)
	if err != nil || !res.Converged {
		t.Fatalf("fault-free reference did not converge: %v %+v", err, res)
	}
	return res.Stats.TotalTime() / 2
}

// TestCAGMRESSurvivesDeviceLossMidSolve is the acceptance scenario of
// the fault-injection PR: a seeded chaos plan kills 1 of 3 devices
// mid-CA-GMRES; the solve must re-partition onto the 2 survivors, resume
// from the last restart checkpoint, and still converge to the same
// tolerance as the fault-free run — deterministically, because all of it
// happens on the virtual clock.
func TestCAGMRESSurvivesDeviceLossMidSolve(t *testing.T) {
	at := midSolveDeath(t, 3, CAGMRES, chaosOpts())
	a := laplace2D(20, 20, 0.3)
	b := randomRHS(400, 10)

	var reparts []obs.Record
	run := func() *Result {
		ctx := gpu.NewContext(3, gpu.M2090())
		ctx.InjectFaults(gpu.FaultPlan{Seed: 42, Deaths: []gpu.DeviceDeath{{Device: 1, At: at}}})
		p, err := NewProblem(ctx, a, b, Natural, false)
		if err != nil {
			t.Fatal(err)
		}
		opts := chaosOpts()
		reparts = reparts[:0]
		opts.Telemetry = obs.SinkFunc(func(r obs.Record) {
			if r.Kind == "repartition" {
				reparts = append(reparts, r)
			}
		})
		res, err := CAGMRES(p, opts)
		if err != nil {
			t.Fatalf("solve did not survive the death: %v", err)
		}
		return res
	}

	res := run()
	if !res.Converged {
		t.Fatalf("faulted solve did not converge: relres %v", res.RelRes)
	}
	solveCheck(t, a, b, res, nil, 1e-5)
	if res.Faults == nil {
		t.Fatal("no fault report on a faulted solve")
	}
	if got := res.Faults.DevicesLost; len(got) != 1 || got[0] != 1 {
		t.Fatalf("DevicesLost = %v, want [1]", got)
	}
	if res.Faults.Repartitions < 1 {
		t.Fatal("no repartition recorded")
	}
	if res.Faults.CheckpointRestores < 1 {
		t.Fatal("recovery did not resume from a checkpoint with progress")
	}
	if len(reparts) != res.Faults.Repartitions {
		t.Fatalf("telemetry saw %d repartitions, report says %d", len(reparts), res.Faults.Repartitions)
	}
	if reparts[0].Step != 2 {
		t.Fatalf("repartition record reports %d survivors, want 2", reparts[0].Step)
	}

	// Determinism: the whole scenario — death time, recovery, final
	// clock — replays bit-identically.
	res2 := run()
	if res.Stats.TotalTime() != res2.Stats.TotalTime() {
		t.Fatalf("chaos runs diverge: %v vs %v", res.Stats.TotalTime(), res2.Stats.TotalTime())
	}
	if res.Iters != res2.Iters || res.Restarts != res2.Restarts || res.RelRes != res2.RelRes {
		t.Fatalf("chaos runs diverge: %+v vs %+v", res, res2)
	}
}

func TestGMRESSurvivesDeviceLossMidSolve(t *testing.T) {
	opts := Options{M: 20, Tol: 1e-6, Ortho: "CGS"}
	at := midSolveDeath(t, 3, GMRES, opts)
	a := laplace2D(20, 20, 0.3)
	b := randomRHS(400, 10)

	ctx := gpu.NewContext(3, gpu.M2090())
	ctx.InjectFaults(gpu.FaultPlan{Deaths: []gpu.DeviceDeath{{Device: 0, At: at}}})
	p, err := NewProblem(ctx, a, b, Natural, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GMRES(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a, b, res, err, 1e-5)
	if res.Faults == nil || res.Faults.Repartitions < 1 {
		t.Fatalf("fault report missing or empty: %+v", res.Faults)
	}
}

func TestSolveUnrecoverableWhenLastDeviceDies(t *testing.T) {
	a := laplace2D(10, 10, 0)
	b := randomRHS(100, 3)
	ctx := gpu.NewContext(1, gpu.M2090())
	ctx.InjectFaults(gpu.FaultPlan{Deaths: []gpu.DeviceDeath{{Device: 0, At: 0}}})
	p, _ := NewProblem(ctx, a, b, Natural, false)
	_, err := CAGMRES(p, chaosOpts())
	var lost *gpu.DeviceLostError
	if err == nil || !errors.As(err, &lost) {
		t.Fatalf("want wrapped DeviceLostError, got %v", err)
	}
}

func TestTransferExhaustionSurfacesAsError(t *testing.T) {
	// Transfer faults that exhaust the retry policy are NOT healed in
	// core — they bubble up as errors for the scheduler to re-queue.
	a := laplace2D(10, 10, 0)
	b := randomRHS(100, 4)
	ctx := gpu.NewContext(2, gpu.M2090())
	ctx.InjectFaults(gpu.FaultPlan{Seed: 5, TransferFaultProb: 1})
	p, _ := NewProblem(ctx, a, b, Natural, false)
	_, err := CAGMRES(p, chaosOpts())
	var te *gpu.TransferError
	if err == nil || !errors.As(err, &te) {
		t.Fatalf("want TransferError, got %v", err)
	}
}

func TestTransferRetriesReportedOnSuccess(t *testing.T) {
	a := laplace2D(16, 16, 0.2)
	b := randomRHS(256, 5)
	ctx := gpu.NewContext(2, gpu.M2090())
	ctx.InjectFaults(gpu.FaultPlan{Seed: 9, TransferFaultProb: 0.05})
	p, _ := NewProblem(ctx, a, b, Natural, false)
	res, err := CAGMRES(p, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a, b, res, err, 1e-5)
	if res.Faults == nil || res.Faults.TransferRetries == 0 {
		t.Fatalf("retries not reported: %+v", res.Faults)
	}
	if res.Faults.Repartitions != 0 {
		t.Fatalf("no device died, yet %d repartitions", res.Faults.Repartitions)
	}
}

func TestFaultFreeSolveCarriesNoReport(t *testing.T) {
	a := laplace2D(12, 12, 0.1)
	b := randomRHS(144, 6)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, _ := NewProblem(ctx, a, b, Natural, false)
	res, err := CAGMRES(p, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != nil {
		t.Fatalf("fault-free solve carries a report: %+v", res.Faults)
	}
}
