package core

import (
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/profile"
)

// These tests pin the central contract of the machine-profile layer:
// profiles reorder modeled time, never arithmetic. A solve under any
// profile — any topology, overlap on or off, faults armed or not — must
// produce bit-identical iterates, convergence histories and iteration
// counts; only the ledger's seconds may differ.

// invariantProfiles is the cross-product the invariance tests sweep:
// every shipped profile plus the counterfactual rewirings of the
// topology study.
func invariantProfiles(t *testing.T) []gpu.Profile {
	t.Helper()
	ps := profile.All()
	for _, kind := range []gpu.TopoKind{gpu.TopoPCIeSwitch, gpu.TopoNVLinkRing, gpu.TopoAllToAll} {
		p, err := profile.WithTopology(profile.A100PCIe(), kind)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	return ps
}

type invariantRun struct {
	x, history []float64
	iters      int
	restarts   int
	converged  bool
}

func runUnderProfile(t *testing.T, p gpu.Profile, overlap bool, fp *gpu.FaultPlan) invariantRun {
	t.Helper()
	a := laplace2D(24, 24, 0.4)
	b := randomRHS(576, 3)
	ctx := gpu.NewContextWithProfile(3, p)
	prob, err := NewProblem(ctx, a, b, KWay, true)
	if err != nil {
		t.Fatal(err)
	}
	if fp != nil {
		ctx.InjectFaults(*fp)
	}
	res, err := CAGMRES(prob, Options{M: 20, S: 5, Tol: 1e-8, Ortho: "CholQR", Overlap: overlap})
	if err != nil {
		t.Fatalf("profile %s: %v", p.Name, err)
	}
	return invariantRun{x: res.X, history: res.History, iters: res.Iters,
		restarts: res.Restarts, converged: res.Converged}
}

func assertIdentical(t *testing.T, name string, want, got invariantRun) {
	t.Helper()
	if got.iters != want.iters || got.restarts != want.restarts || got.converged != want.converged {
		t.Errorf("%s: counters diverged: iters %d/%d restarts %d/%d converged %v/%v",
			name, got.iters, want.iters, got.restarts, want.restarts, got.converged, want.converged)
	}
	if len(got.history) != len(want.history) {
		t.Fatalf("%s: history length %d != %d", name, len(got.history), len(want.history))
	}
	for i := range want.history {
		if got.history[i] != want.history[i] {
			t.Fatalf("%s: history[%d] = %x != %x — profiles changed arithmetic", name, i, got.history[i], want.history[i])
		}
	}
	for i := range want.x {
		if got.x[i] != want.x[i] {
			t.Fatalf("%s: x[%d] = %x != %x — profiles changed arithmetic", name, i, got.x[i], want.x[i])
		}
	}
}

func TestProfileInvariance(t *testing.T) {
	base := runUnderProfile(t, profile.M2090(), false, nil)
	if !base.converged {
		t.Fatal("baseline solve did not converge")
	}
	for _, p := range invariantProfiles(t) {
		assertIdentical(t, p.Name, base, runUnderProfile(t, p, false, nil))
	}
}

func TestProfileInvarianceOverlap(t *testing.T) {
	base := runUnderProfile(t, profile.M2090(), true, nil)
	for _, p := range invariantProfiles(t) {
		assertIdentical(t, p.Name+"/overlap", base, runUnderProfile(t, p, true, nil))
	}
	// Overlap itself must not change arithmetic either.
	assertIdentical(t, "sync-vs-overlap", runUnderProfile(t, profile.M2090(), false, nil), base)
}

// TestProfileInvarianceFaults arms the same seeded fault plan under
// every profile: a device death at virtual time zero (which trips at
// the first ledger charge — the same program point regardless of the
// profile's clock) plus program-order transfer faults and a straggler.
// The healed solves must agree bit-for-bit.
func TestProfileInvarianceFaults(t *testing.T) {
	plan := &gpu.FaultPlan{
		Seed:              11,
		Deaths:            []gpu.DeviceDeath{{Device: 1, At: 0}},
		TransferFaultProb: 0.05,
		MaxTransferFaults: 4,
		Stragglers:        []gpu.Straggler{{Device: 0, Factor: 1.5}},
	}
	base := runUnderProfile(t, profile.M2090(), false, plan)
	for _, p := range invariantProfiles(t) {
		assertIdentical(t, p.Name+"/faults", base, runUnderProfile(t, p, false, plan))
	}
	for _, p := range invariantProfiles(t) {
		assertIdentical(t, p.Name+"/faults+overlap", base, runUnderProfile(t, p, true, plan))
	}
}

// TestOptionsProfilePlumbing: selecting a profile through core.Options
// re-targets the context and still changes no arithmetic.
func TestOptionsProfilePlumbing(t *testing.T) {
	a := laplace2D(24, 24, 0.4)
	b := randomRHS(576, 3)
	ctx := gpu.NewContext(3, gpu.M2090())
	prob, err := NewProblem(ctx, a, b, KWay, true)
	if err != nil {
		t.Fatal(err)
	}
	h100 := profile.H100NVLink()
	res, err := CAGMRES(prob, Options{M: 20, S: 5, Tol: 1e-8, Ortho: "CholQR", Profile: &h100})
	if err != nil {
		t.Fatal(err)
	}
	if got := ctx.Profile().Name; got != "h100-nvlink" {
		t.Errorf("Options.Profile not applied: context carries %q", got)
	}
	if ctx.Stats().Phase("mpk").BytesPeer == 0 {
		t.Error("peer-to-peer topology shipped no peer bytes in the mpk phase")
	}
	base := runUnderProfile(t, profile.M2090(), false, nil)
	assertIdentical(t, "options-profile", base, invariantRun{x: res.X, history: res.History,
		iters: res.Iters, restarts: res.Restarts, converged: res.Converged})
}
