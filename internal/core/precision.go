package core

import (
	"fmt"
	"math"

	"cagmres/internal/dist"
	"cagmres/internal/gpu"
	"cagmres/internal/la"
	"cagmres/internal/ortho"
)

// The precision modes Options.Precision accepts.
const (
	// PrecisionFP64 is the historical full-double pipeline (the default;
	// an empty Options.Precision means fp64). Bit-identical to every
	// release before the precision policy existed.
	PrecisionFP64 = "fp64"
	// PrecisionMixed generates the CA basis in single precision — fp32
	// matrix-powers storage, fp32 Gram/projection kernels, half-width
	// coefficient transfers, and bfloat16-compressed halos when the
	// machine profile claims BF16Transfer — while the Givens/LSQ path,
	// the small host factorizations, and the solution update stay
	// double. Every restart boundary recomputes the true residual in
	// FP64 and corrects x in FP64: classic iterative refinement with a
	// low-precision inner solver.
	PrecisionMixed = "mixed"
	// PrecisionAdaptive starts at the narrowest width the machine
	// supports and tightens — never loosens — at restart boundaries:
	// toward fp32 transfers midway to the tolerance, and to full fp64
	// for the final approach. Stalled restarts and per-window
	// orthogonality-loss telemetry force early tightening.
	PrecisionAdaptive = "adaptive"
)

// NormalizePrecision canonicalizes a precision mode: the empty string is
// fp64, known names pass through, anything else errors.
func NormalizePrecision(p string) (string, error) {
	switch p {
	case "", PrecisionFP64:
		return PrecisionFP64, nil
	case PrecisionMixed, PrecisionAdaptive:
		return p, nil
	}
	return "", fmt.Errorf("core: unknown precision %q (want fp64, mixed or adaptive)", p)
}

// PrecisionReport summarizes what the precision policy actually did
// during a solve. Result.Precision carries one for mixed/adaptive runs
// (nil for fp64).
type PrecisionReport struct {
	// Mode is the normalized Options.Precision.
	Mode string `json:"mode"`
	// WindowsFP64 and WindowsFP32 count matrix-powers windows generated
	// at each basis storage width.
	WindowsFP64 int `json:"windows_fp64"`
	WindowsFP32 int `json:"windows_fp32"`
	// CompressedTransfers counts halo exchanges shipped bfloat16-
	// compressed.
	CompressedTransfers int `json:"compressed_transfers"`
	// Refinements counts restart boundaries that recomputed the true
	// residual and corrected the iterate in FP64 while the basis
	// pipeline ran narrowed — the iterative-refinement steps.
	Refinements int `json:"refinements"`
	// FinalLevel names the width the pipeline ended at ("fp64", "fp32",
	// "fp32+bf16").
	FinalLevel string `json:"final_level"`
}

// Precision levels, narrowest first in tightening order: level 2 is fp32
// basis storage with bf16-compressed halos, level 1 fp32 storage and
// fp32 halos, level 0 the full-double pipeline.
const (
	precLevelFP64 = 0
	precLevelFP32 = 1
	precLevelBF16 = 2
)

// Adaptive tightening thresholds. The policy anchors the log-residual
// journey at the first restart boundary it observes (after the FP64 seed
// cycle, so the anchor reflects where the CA pipeline actually starts)
// and tightens by the fraction of that journey still remaining: halo
// compression is dropped once less than fracFP32 of the log-distance to
// the tolerance is left, and the pipeline returns to full double for the
// final fracFP64 of the approach. Fractions — not absolute multiples of
// Tol — keep the schedule scale-invariant: a problem whose seed cycle
// lands two decades from the tolerance narrows just as long,
// proportionally, as one that starts six decades out. stallRatio is the
// minimum per-restart residual reduction a narrowed level must deliver
// to keep its width, and orthoLossTighten is the per-window
// orthogonality loss that forces tightening regardless of residual
// progress (fp32's roundoff floor amplified by kappa^2 has overtaken the
// basis).
const (
	fracFP32         = 0.5
	fracFP64         = 0.25
	stallRatio       = 0.9
	orthoLossTighten = 1e-3
)

// precisionPolicy drives the per-restart width decisions of one solve
// attempt. The zero value is not useful; build with newPrecisionPolicy.
type precisionPolicy struct {
	mode   string
	bf16OK bool
	level  int
	// maxWinLoss is the largest per-window orthogonality loss observed
	// since the last restart boundary.
	maxWinLoss float64
	prevRelres float64
	// logDist0 is log(relres/tol) at the first boundary the adaptive
	// schedule observed — the anchor the remaining-journey fractions are
	// measured against. Zero until anchored.
	logDist0 float64
	report   *PrecisionReport
}

// newPrecisionPolicy builds the policy for a normalized mode. bf16OK
// states whether the machine profile claims bfloat16-capable transfer
// engines; without it the narrowest level is fp32/fp32.
func newPrecisionPolicy(mode string, bf16OK bool) *precisionPolicy {
	pol := &precisionPolicy{mode: mode, bf16OK: bf16OK}
	switch mode {
	case PrecisionMixed, PrecisionAdaptive:
		pol.level = precLevelBF16
		if !bf16OK {
			pol.level = precLevelFP32
		}
		pol.report = &PrecisionReport{Mode: mode}
	default:
		pol.level = precLevelFP64
	}
	return pol
}

// active reports whether the pipeline is currently narrowed.
func (pol *precisionPolicy) active() bool { return pol.level != precLevelFP64 }

// widths returns the storage and transfer element widths of the current
// level.
func (pol *precisionPolicy) widths() (storage, transfer gpu.Elem) {
	switch pol.level {
	case precLevelBF16:
		return gpu.Elem32, gpu.ElemBF16
	case precLevelFP32:
		return gpu.Elem32, gpu.Elem32
	}
	return gpu.Elem64, gpu.Elem64
}

// levelName names the current level for telemetry and the report.
func (pol *precisionPolicy) levelName() string {
	switch pol.level {
	case precLevelBF16:
		return "fp32+bf16"
	case precLevelFP32:
		return "fp32"
	}
	return "fp64"
}

// tag is the telemetry label of the current level: empty in fp64 mode,
// so full-double record streams stay byte-identical to releases that
// predate the policy.
func (pol *precisionPolicy) tag() string {
	if pol.report == nil {
		return ""
	}
	return pol.levelName()
}

// restore rewinds the policy to a checkpointed level (tighten-only:
// a checkpoint can never widen the pipeline past the mode's start).
func (pol *precisionPolicy) restore(level int) {
	if level < pol.level {
		pol.level = level
	}
}

// observeRestart runs the tighten-only transition at a restart boundary,
// fed with the FP64 true relative residual just computed there. Mixed
// keeps its fixed width; adaptive tightens when the remaining fraction
// of the log-residual journey shrinks, when a narrowed restart stalled,
// or when window orthogonality loss shows the narrow basis has degraded.
func (pol *precisionPolicy) observeRestart(relres, tol float64) {
	if pol.mode != PrecisionAdaptive || !pol.active() {
		pol.prevRelres = relres
		pol.maxWinLoss = 0
		return
	}
	if pol.logDist0 == 0 {
		// First boundary: anchor the journey. The anchor restart itself
		// runs at the mode's starting width — correctness does not depend
		// on the width (convergence is only ever declared from the FP64
		// boundary residual), so the narrowest level gets at least one
		// cycle to prove itself even on nearly-converged problems.
		if relres > tol {
			pol.logDist0 = math.Log(relres / tol)
		}
		pol.prevRelres = relres
		pol.maxWinLoss = 0
		return
	}
	remaining := 0.0
	if relres > tol {
		remaining = math.Log(relres/tol) / pol.logDist0
	}
	target := pol.level
	switch {
	case remaining <= fracFP64:
		target = precLevelFP64
	case remaining <= fracFP32 && target > precLevelFP32:
		target = precLevelFP32
	}
	if pol.prevRelres > 0 && relres > stallRatio*pol.prevRelres && target == pol.level {
		// The narrowed pipeline is no longer reducing the residual:
		// its roundoff floor is in the way. Tighten one notch.
		target = pol.level - 1
	}
	if pol.maxWinLoss > orthoLossTighten && target == pol.level {
		target = pol.level - 1
	}
	if target < pol.level {
		pol.level = target
	}
	pol.prevRelres = relres
	pol.maxWinLoss = 0
}

// apply configures the CA pipeline for the current level: the matrix
// powers kernel's storage/transfer widths and, where the chosen
// strategies support it, single-precision Gram and projection kernels.
// Strategies without a narrow variant (MGS, CAQR, explicit OrthoImpl
// wrappers) run unchanged — the basis they consume is still narrowed.
func (pol *precisionPolicy) apply(mpk *dist.MPK, tsqr ortho.TSQR, borth ortho.BOrth) (ortho.TSQR, ortho.BOrth) {
	storage, transfer := pol.widths()
	mpk.SetPrecision(storage, transfer)
	if !pol.active() {
		return tsqr, borth
	}
	if _, ok := tsqr.(ortho.CholQR); ok {
		tsqr = ortho.CholQR{GramElem: gpu.Elem32}
	}
	if _, ok := borth.(ortho.BOrthCGS); ok {
		borth = ortho.BOrthCGS{Elem: gpu.Elem32}
	}
	return tsqr, borth
}

// tightenOnFailure responds to a rank-deficient window factorization
// while the pipeline runs narrowed: when the window depth is already
// minimal, the width is what destroyed the Gram conditioning, so step
// one level toward full double and let the caller retry the restart.
// This applies to mixed as well as adaptive — a fixed-width pipeline
// that cannot factor its windows has no useful answer at that width,
// and the report's FinalLevel records the forced tightening. Reports
// whether it tightened.
func (pol *precisionPolicy) tightenOnFailure() bool {
	if !pol.active() {
		return false
	}
	pol.level--
	return true
}

// observeWindow records one generated window: storage-width accounting
// for the report and the orthogonality-loss guard for the next restart
// boundary.
func (pol *precisionPolicy) observeWindow(winLoss float64) {
	if pol.report == nil {
		return
	}
	if pol.active() {
		pol.report.WindowsFP32++
		if pol.level == precLevelBF16 {
			pol.report.CompressedTransfers++
		}
	} else {
		pol.report.WindowsFP64++
	}
	if winLoss > pol.maxWinLoss {
		pol.maxWinLoss = winLoss
	}
}

// observeRefinement records one FP64 restart-boundary correction taken
// while the pipeline ran narrowed.
func (pol *precisionPolicy) observeRefinement() {
	if pol.report != nil && pol.active() {
		pol.report.Refinements++
	}
}

// roundWindow narrows an orthonormalized window to the basis storage
// width, so the stored basis never carries more information than a
// narrow device buffer would hold.
func (pol *precisionPolicy) roundWindow(win []*la.Dense) {
	storage, _ := pol.widths()
	if storage == gpu.Elem64 {
		return
	}
	for _, w := range win {
		for j := 0; j < w.Cols; j++ {
			if storage == gpu.ElemBF16 {
				la.RoundBF16(w.Col(j))
			} else {
				la.RoundF32(w.Col(j))
			}
		}
	}
}

// finish stamps the report with the level the solve ended at and
// returns it (nil for fp64 mode).
func (pol *precisionPolicy) finish() *PrecisionReport {
	if pol.report != nil {
		pol.report.FinalLevel = pol.levelName()
	}
	return pol.report
}
