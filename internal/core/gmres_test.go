package core

import (
	"math"
	"math/rand"
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/sparse"
)

// laplace2D builds the 5-point Laplacian on an nx x ny grid plus a small
// nonsymmetric convection term, a standard well-conditioned GMRES test.
func laplace2D(nx, ny int, convection float64) *sparse.CSR {
	n := nx * ny
	id := func(x, y int) int { return y*nx + x }
	entries := make([]sparse.Coord, 0, 5*n)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			entries = append(entries, sparse.Coord{Row: i, Col: i, Val: 4})
			if x > 0 {
				entries = append(entries, sparse.Coord{Row: i, Col: id(x-1, y), Val: -1 - convection})
			}
			if x+1 < nx {
				entries = append(entries, sparse.Coord{Row: i, Col: id(x+1, y), Val: -1 + convection})
			}
			if y > 0 {
				entries = append(entries, sparse.Coord{Row: i, Col: id(x, y-1), Val: -1})
			}
			if y+1 < ny {
				entries = append(entries, sparse.Coord{Row: i, Col: id(x, y+1), Val: -1})
			}
		}
	}
	return sparse.FromCoords(n, n, entries)
}

// randomRHS builds a deterministic right-hand side.
func randomRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

func solveCheck(t *testing.T, a *sparse.CSR, b []float64, res *Result, err error, tol float64) {
	t.Helper()
	if err != nil {
		t.Fatalf("solver error: %v", err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: relres %v after %d restarts", res.RelRes, res.Restarts)
	}
	// Verify in the original coordinates with a host-side residual.
	if rn := ResidualNorm(a, b, res.X); rn > tol {
		t.Fatalf("true residual %v > %v", rn, tol)
	}
}

func TestGMRESSolvesLaplace(t *testing.T) {
	a := laplace2D(20, 20, 0.3)
	b := randomRHS(400, 1)
	for _, ortho := range []string{"MGS", "CGS"} {
		for _, ng := range []int{1, 3} {
			ctx := gpu.NewContext(ng, gpu.M2090())
			p, err := NewProblem(ctx, a, b, Natural, false)
			if err != nil {
				t.Fatal(err)
			}
			res, err := GMRES(p, Options{M: 30, Tol: 1e-6, Ortho: ortho})
			solveCheck(t, a, b, res, err, 1e-5)
			if res.Iters == 0 || res.Restarts == 0 {
				t.Fatalf("%s ng=%d: suspicious counters %+v", ortho, ng, res)
			}
		}
	}
}

func TestGMRESWithBalanceAndOrderings(t *testing.T) {
	a := laplace2D(16, 16, 0.2)
	// Skew the scales so balancing matters.
	for i := 0; i < a.Rows; i++ {
		s := math.Pow(10, float64(i%5)-2)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			a.Val[k] *= s
		}
	}
	b := randomRHS(256, 2)
	for _, ord := range []Ordering{Natural, RCM, KWay} {
		ctx := gpu.NewContext(2, gpu.M2090())
		p, err := NewProblem(ctx, a, b, ord, true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := GMRES(p, Options{M: 40, Tol: 1e-10, MaxRestarts: 3000, Ortho: "CGS"})
		if err != nil {
			t.Fatalf("%s: %v", ord, err)
		}
		if !res.Converged {
			t.Fatalf("%s: no convergence, relres=%v", ord, res.RelRes)
		}
		// The convergence test runs on the balanced system; mapping back
		// to the original coordinates loses a factor bounded by the
		// scaling spread, so only a looser bound holds here.
		if rn := ResidualNorm(a, b, res.X); rn > 1e-4 {
			t.Fatalf("%s: true residual %v", ord, rn)
		}
	}
}

func TestGMRESResidualHistoryDecreases(t *testing.T) {
	a := laplace2D(15, 15, 0.1)
	b := randomRHS(225, 3)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, _ := NewProblem(ctx, a, b, Natural, false)
	res, err := GMRES(p, Options{M: 10, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) < 2 {
		t.Skip("converged too fast for a history check")
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]*1.0001 {
			t.Fatalf("restart residuals increased: %v", res.History)
		}
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	a := laplace2D(5, 5, 0)
	ctx := gpu.NewContext(1, gpu.M2090())
	p, _ := NewProblem(ctx, a, make([]float64, 25), Natural, false)
	res, err := GMRES(p, Options{M: 5})
	if err != nil || !res.Converged {
		t.Fatalf("zero rhs: %v %+v", err, res)
	}
	for _, x := range res.X {
		if x != 0 {
			t.Fatal("solution should be zero")
		}
	}
}

func TestGMRESHappyBreakdown(t *testing.T) {
	// b an eigenvector: Krylov space is 1-dimensional; GMRES must solve
	// exactly at the first step instead of dividing by zero.
	n := 30
	entries := make([]sparse.Coord, 0, n)
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{Row: i, Col: i, Val: 2.5})
	}
	a := sparse.FromCoords(n, n, entries) // A = 2.5 I
	b := randomRHS(n, 4)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, _ := NewProblem(ctx, a, b, Natural, false)
	res, err := GMRES(p, Options{M: 10, Tol: 1e-10})
	solveCheck(t, a, b, res, err, 1e-9)
	if res.Iters > 2 {
		t.Fatalf("diagonal system took %d iters", res.Iters)
	}
}

func TestGMRESInvalidOptions(t *testing.T) {
	a := laplace2D(5, 5, 0)
	b := randomRHS(25, 5)
	ctx := gpu.NewContext(1, gpu.M2090())
	p, _ := NewProblem(ctx, a, b, Natural, false)
	if _, err := GMRES(p, Options{M: 10, Ortho: "CholQR"}); err == nil {
		t.Fatal("GMRES must reject TSQR-only strategies")
	}
	if _, err := GMRES(p, Options{M: 100}); err == nil {
		t.Fatal("GMRES must reject m > n")
	}
}

func TestGMRESStatsPopulated(t *testing.T) {
	a := laplace2D(12, 12, 0.2)
	b := randomRHS(144, 6)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, _ := NewProblem(ctx, a, b, Natural, false)
	res, err := GMRES(p, Options{M: 20, Tol: 1e-6, Ortho: "MGS"})
	if err != nil {
		t.Fatal(err)
	}
	spmv := res.Stats.Phase(PhaseSpMV)
	orth := res.Stats.Phase(PhaseOrth)
	if spmv.Rounds == 0 || orth.Rounds == 0 {
		t.Fatal("ledger not populated")
	}
	// MGS must communicate far more often than SpMV per iteration.
	if orth.Rounds <= spmv.Rounds {
		t.Fatalf("MGS rounds %d should exceed SpMV rounds %d", orth.Rounds, spmv.Rounds)
	}
}

func TestGMRESCGSFewerRoundsThanMGS(t *testing.T) {
	a := laplace2D(12, 12, 0.2)
	b := randomRHS(144, 7)
	rounds := map[string]int{}
	for _, o := range []string{"MGS", "CGS"} {
		ctx := gpu.NewContext(2, gpu.M2090())
		p, _ := NewProblem(ctx, a, b, Natural, false)
		res, err := GMRES(p, Options{M: 20, Tol: 1e-6, Ortho: o})
		if err != nil {
			t.Fatal(err)
		}
		rounds[o] = res.Stats.Phase(PhaseOrth).Rounds
	}
	if rounds["CGS"]*2 > rounds["MGS"] {
		t.Fatalf("CGS rounds %d not clearly below MGS %d", rounds["CGS"], rounds["MGS"])
	}
}

func TestProblemUnmapRoundTrip(t *testing.T) {
	a := laplace2D(8, 8, 0.1)
	b := randomRHS(64, 8)
	ctx := gpu.NewContext(2, gpu.M2090())
	// With KWay + balance, solving and unmapping must give the original
	// system's solution.
	p, err := NewProblem(ctx, a, b, KWay, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GMRES(p, Options{M: 30, Tol: 1e-9, MaxRestarts: 500})
	if err != nil {
		t.Fatal(err)
	}
	if rn := ResidualNorm(a, b, res.X); rn > 1e-7 {
		t.Fatalf("unmapped residual %v", rn)
	}
}

func TestResidualNorm(t *testing.T) {
	a := laplace2D(4, 4, 0)
	x := randomRHS(16, 9)
	b := make([]float64, 16)
	a.MulVec(b, x)
	if rn := ResidualNorm(a, b, x); rn > 1e-14 {
		t.Fatalf("exact solution residual %v", rn)
	}
	if rn := ResidualNorm(a, b, make([]float64, 16)); math.Abs(rn-1) > 1e-12 {
		t.Fatalf("zero solution relres %v, want 1", rn)
	}
}
