package core

import (
	"testing"

	"cagmres/internal/gpu"
)

// TestScratchPoolRoundTrip: a returned scratch big enough for the next
// request must be reused, and an undersized one replaced by a larger
// allocation.
func TestScratchPoolRoundTrip(t *testing.T) {
	sc := getScratch(20, 3)
	// A pooled scratch from an earlier solve may be larger; never smaller.
	if len(sc.hcol) < 22 || len(sc.sum) < 22 || len(sc.bytes) < 3 || len(sc.dev) < 3 {
		t.Fatalf("scratch sizes: hcol %d sum %d bytes %d dev %d",
			len(sc.hcol), len(sc.sum), len(sc.bytes), len(sc.dev))
	}
	sc.hcol[0] = 99 // marker
	putScratch(sc)
	// Drain the pool until our marked scratch comes back (the pool may
	// hold scratches from other tests in the package).
	var got *cycleScratch
	for i := 0; i < 64; i++ {
		s2 := getScratch(10, 2)
		if s2.hcol[0] == 99 {
			got = s2
			break
		}
	}
	if got == nil {
		t.Skip("pool dropped the scratch (allowed by sync.Pool semantics)")
	}
	if &got.hcol[0] != &sc.hcol[0] {
		t.Fatal("reused scratch does not share storage")
	}
	// An oversized request must allocate fresh buffers.
	putScratch(got)
	big := getScratch(100, 4)
	if len(big.hcol) < 102 || len(big.bytes) < 4 {
		t.Fatalf("oversized request got hcol %d bytes %d", len(big.hcol), len(big.bytes))
	}
	putScratch(big)
}

// TestScratchGivensReuse: the pooled Givens solver must reset cleanly —
// a second cycle through the same scratch reproduces a fresh solver's
// results exactly.
func TestScratchGivensReuse(t *testing.T) {
	sc := getScratch(8, 1)
	defer putScratch(sc)
	col0 := []float64{2, 1}
	col1 := []float64{0.5, -1, 3}
	g1 := sc.givens(8, 1.5)
	r1a := g1.Append(col0)
	r1b := g1.Append(append([]float64(nil), col1...))
	y1 := g1.Solve()
	g2 := sc.givens(8, 1.5)
	if g2 != g1 {
		t.Fatal("givens not reused from scratch")
	}
	r2a := g2.Append(col0)
	r2b := g2.Append(append([]float64(nil), col1...))
	y2 := g2.Solve()
	if r1a != r2a || r1b != r2b {
		t.Fatalf("residuals differ after reset: (%v,%v) vs (%v,%v)", r2a, r2b, r1a, r1b)
	}
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("solution differs after reset at %d: %v vs %v", i, y2[i], y1[i])
		}
	}
}

// TestScratchReuseAllocFree: fetching a pooled scratch and its Givens
// solver must not allocate on the reuse path.
func TestScratchReuseAllocFree(t *testing.T) {
	putScratch(getScratch(30, 3)) // prime the pool
	allocs := testing.AllocsPerRun(100, func() {
		sc := getScratch(30, 3)
		sc.givens(30, 1)
		putScratch(sc)
	})
	// Allow a stray allocation for pool bookkeeping under the race
	// detector, but the buffers themselves must not be reallocated.
	if allocs > 1 {
		t.Fatalf("scratch reuse allocates %.1f times per run", allocs)
	}
}

// BenchmarkRestartAllocs reports allocs/op for one full extra restart of
// the CA solver, the figure the scratch pool shrinks: work vectors no
// longer scale with the restart count.
func BenchmarkRestartAllocs(b *testing.B) {
	a := laplace2D(20, 20, 0.3)
	rhs := randomRHS(400, 7)
	ctx := gpu.NewContext(3, gpu.M2090())
	p, err := NewProblem(ctx, a, rhs, KWay, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CAGMRES(p, Options{M: 20, S: 5, Tol: 1e-8, Ortho: "CholQR"}); err != nil {
			b.Fatal(err)
		}
	}
}
