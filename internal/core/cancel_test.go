package core

import (
	"context"
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/obs"
)

// cancelAfter returns a telemetry sink that cancels the context after n
// records of the given kind — a deterministic way to interrupt a solve
// mid-flight, independent of wall-clock timing.
func cancelAfter(cancel context.CancelFunc, kind string, n int) obs.Sink {
	seen := 0
	return obs.SinkFunc(func(r obs.Record) {
		if r.Kind == kind {
			seen++
			if seen == n {
				cancel()
			}
		}
	})
}

func TestGMRESCanceledContextReturnsBestSoFar(t *testing.T) {
	a := laplace2D(24, 24, 0.3)
	b := randomRHS(a.Rows, 3)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, err := NewProblem(ctx, a, b, KWay, true)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel at the first restart-boundary record: the solver must stop
	// at the next restart and report the iterate it has.
	opts := Options{M: 10, Tol: 1e-12, MaxRestarts: 200, Ctx: cctx,
		Telemetry: cancelAfter(cancel, "restart", 1)}
	res, err := GMRES(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled {
		t.Fatalf("expected Canceled result, got %+v", res)
	}
	if res.Converged {
		t.Fatalf("canceled solve reported Converged")
	}
	if res.Restarts < 1 {
		t.Fatalf("expected at least one restart before cancellation, got %d", res.Restarts)
	}
	if len(res.X) != a.Rows {
		t.Fatalf("best-so-far X has length %d, want %d", len(res.X), a.Rows)
	}
	// The partial iterate must still be better than the zero vector.
	if rn := ResidualNorm(a, b, res.X); rn >= 1 {
		t.Fatalf("best-so-far residual %v not better than zero iterate", rn)
	}
	if res.RelRes <= 0 {
		t.Fatalf("canceled result must carry its true residual, got %v", res.RelRes)
	}
}

func TestCAGMRESCanceledBetweenWindows(t *testing.T) {
	a := laplace2D(24, 24, 0.3)
	b := randomRHS(a.Rows, 4)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, err := NewProblem(ctx, a, b, KWay, true)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel after the second CA window: the solver finishes none past
	// it, applies the partial basis, and stops.
	opts := Options{M: 20, S: 5, Tol: 1e-12, MaxRestarts: 200, Ortho: "CholQR",
		Ctx: cctx, Telemetry: cancelAfter(cancel, "window", 2)}
	res, err := CAGMRES(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled || res.Converged {
		t.Fatalf("expected canceled, unconverged result, got %+v", res)
	}
	if rn := ResidualNorm(a, b, res.X); rn >= 1 {
		t.Fatalf("best-so-far residual %v not better than zero iterate", rn)
	}
}

func TestPreCanceledContextStopsImmediately(t *testing.T) {
	a := laplace2D(12, 12, 0.2)
	b := randomRHS(a.Rows, 5)
	cctx, cancel := context.WithCancel(context.Background())
	cancel() // already done before the solve starts
	for _, solver := range []string{"gmres", "ca"} {
		ctx := gpu.NewContext(2, gpu.M2090())
		p, err := NewProblem(ctx, a, b, Natural, false)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{M: 10, S: 5, Tol: 1e-10, Ctx: cctx}
		var res *Result
		if solver == "gmres" {
			res, err = GMRES(p, opts)
		} else {
			opts.Ortho = "CholQR"
			res, err = CAGMRES(p, opts)
		}
		if err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		if !res.Canceled || res.Restarts != 0 || res.Iters != 0 {
			t.Fatalf("%s: pre-canceled solve ran anyway: %+v", solver, res)
		}
		if len(res.X) != a.Rows {
			t.Fatalf("%s: want zero iterate of length %d, got %d", solver, a.Rows, len(res.X))
		}
	}
}

func TestNilContextSolvesToConvergence(t *testing.T) {
	a := laplace2D(16, 16, 0.2)
	b := randomRHS(a.Rows, 6)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, err := NewProblem(ctx, a, b, KWay, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CAGMRES(p, Options{M: 30, S: 5, Tol: 1e-8, Ortho: "CholQR"})
	solveCheck(t, a, b, res, err, 1e-6)
	if res.Canceled {
		t.Fatalf("nil-context solve reported Canceled")
	}
}

func TestSetBReusesPreparation(t *testing.T) {
	a := laplace2D(16, 16, 0.3)
	b1 := randomRHS(a.Rows, 7)
	b2 := randomRHS(a.Rows, 8)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, err := NewProblem(ctx, a, b1, KWay, true)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{M: 30, S: 5, Tol: 1e-8, Ortho: "CholQR"}
	res1, err := CAGMRES(p, opts)
	solveCheck(t, a, b1, res1, err, 1e-6)

	// Swap the RHS on the same prepared problem: the solve must target
	// the new system in original coordinates.
	if err := p.SetB(b2); err != nil {
		t.Fatal(err)
	}
	res2, err := CAGMRES(p, opts)
	solveCheck(t, a, b2, res2, err, 1e-6)

	// Against a freshly prepared problem the results must agree exactly:
	// same ordering, same balance, same arithmetic.
	ctx2 := gpu.NewContext(2, gpu.M2090())
	pf, err := NewProblem(ctx2, a, b2, KWay, true)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := CAGMRES(pf, opts)
	solveCheck(t, a, b2, ref, err, 1e-6)
	if len(ref.X) != len(res2.X) {
		t.Fatalf("length mismatch")
	}
	for i := range ref.X {
		if ref.X[i] != res2.X[i] {
			t.Fatalf("SetB solve diverged from fresh preparation at %d: %v vs %v",
				i, res2.X[i], ref.X[i])
		}
	}
	if err := p.SetB(make([]float64, 3)); err == nil {
		t.Fatalf("SetB accepted a wrong-length rhs")
	}
}
