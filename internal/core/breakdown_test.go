package core

import (
	"errors"
	"math"
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/sparse"
)

// extremeDiag builds the ill-conditioned regression generator: a
// diagonal matrix whose entries sweep geometrically from 1 up to top,
// so the condition number is top itself. With top near MaxFloat64 the
// very first Krylov vector overflows (||A v0|| has no finite value) and
// every downstream quantity is Inf or NaN — the scenario the breakdown
// guardrail exists for.
func extremeDiag(n int, top float64) *sparse.CSR {
	a := sparse.NewCSR(n, n, n)
	for i := 0; i < n; i++ {
		a.ColIdx = append(a.ColIdx, i)
		a.Val = append(a.Val, math.Pow(top, float64(i)/float64(n-1)))
		a.RowPtr[i+1] = len(a.Val)
	}
	return a
}

func onesB(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	return b
}

func TestGMRESBreakdownOnExtremeConditioning(t *testing.T) {
	n := 32
	a := extremeDiag(n, 1e308)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, err := NewProblem(ctx, a, onesB(n), Natural, false)
	if err != nil {
		t.Fatal(err)
	}
	_, err = GMRES(p, Options{M: 10, Tol: 1e-8, MaxRestarts: 20, Ortho: "CGS"})
	var be *BreakdownError
	if !errors.As(err, &be) {
		t.Fatalf("want BreakdownError, got %v", err)
	}
	if be.Stage == "" {
		t.Fatal("BreakdownError without a stage")
	}
	if be.Iter > 2*10 {
		t.Fatalf("breakdown detected only after %d iterations; boundary checks must catch it within a restart", be.Iter)
	}
}

func TestCAGMRESBreakdownOnExtremeConditioning(t *testing.T) {
	n := 32
	a := extremeDiag(n, 1e308)
	for _, basis := range []string{"newton", "monomial"} {
		ctx := gpu.NewContext(2, gpu.M2090())
		p, err := NewProblem(ctx, a, onesB(n), Natural, false)
		if err != nil {
			t.Fatal(err)
		}
		_, err = CAGMRES(p, Options{M: 10, S: 5, Tol: 1e-8, MaxRestarts: 20,
			Ortho: "CholQR", Basis: basis})
		var be *BreakdownError
		if !errors.As(err, &be) {
			t.Fatalf("basis %s: want BreakdownError, got %v", basis, err)
		}
		if be.Stage == "" {
			t.Fatalf("basis %s: BreakdownError without a stage", basis)
		}
	}
}

func TestBreakdownOnNonFiniteRHS(t *testing.T) {
	// A right-hand side whose norm overflows is caught before any device
	// work is spent.
	n := 16
	a := extremeDiag(n, 1e2)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1e200
	}
	ctx := gpu.NewContext(2, gpu.M2090())
	p, err := NewProblem(ctx, a, b, Natural, false)
	if err != nil {
		t.Fatal(err)
	}
	_, err = GMRES(p, Options{M: 5, MaxRestarts: 3})
	var be *BreakdownError
	if !errors.As(err, &be) {
		t.Fatalf("want BreakdownError, got %v", err)
	}
	if be.Stage != "residual" || be.Iter != 0 {
		t.Fatalf("want residual breakdown at iter 0, got stage %q iter %d", be.Stage, be.Iter)
	}
}

func TestHealthyProblemUnaffectedByGuardrail(t *testing.T) {
	// The guardrail must not perturb a well-behaved solve.
	a := laplace2D(14, 14, 0.2)
	b := randomRHS(196, 7)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, err := NewProblem(ctx, a, b, Natural, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CAGMRES(p, Options{M: 20, S: 5, Tol: 1e-6, Ortho: "CholQR"})
	solveCheck(t, a, b, res, err, 1e-5)
}
