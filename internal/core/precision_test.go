package core

import (
	"strings"
	"testing"

	"cagmres/internal/gpu"
	"cagmres/internal/la"
	"cagmres/internal/matgen"
)

func TestNormalizePrecision(t *testing.T) {
	for in, want := range map[string]string{
		"": PrecisionFP64, "fp64": PrecisionFP64,
		"mixed": PrecisionMixed, "adaptive": PrecisionAdaptive,
	} {
		got, err := NormalizePrecision(in)
		if err != nil || got != want {
			t.Fatalf("NormalizePrecision(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"fp32", "bf16", "MIXED", "half"} {
		if _, err := NormalizePrecision(bad); err == nil {
			t.Fatalf("NormalizePrecision(%q) accepted", bad)
		}
	}
}

func TestGMRESRejectsNarrowPrecision(t *testing.T) {
	a := laplace2D(10, 10, 0.3)
	ctx := gpu.NewContext(2, gpu.M2090())
	p, err := NewProblem(ctx, a, randomRHS(100, 3), Natural, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, prec := range []string{"mixed", "adaptive"} {
		if _, err := GMRES(p, Options{M: 20, Precision: prec}); err == nil {
			t.Fatalf("GMRES accepted precision %q", prec)
		}
	}
	if _, err := CAGMRES(p, Options{M: 20, S: 5, Precision: "half"}); err == nil {
		t.Fatal("CAGMRES accepted precision \"half\"")
	}
}

// bf16Profile is an NVLink-class single-node profile that claims
// bfloat16-capable transfer engines, so the policy's narrowest level is
// exercised in-core without the profile registry.
func bf16Profile() gpu.Profile {
	return gpu.Profile{
		Name:         "bf16-test",
		Model:        gpu.M2090(),
		Topo:         gpu.Topology{Kind: gpu.TopoPCIeSwitch, PeerLatency: 5e-6, PeerBandwidth: 2e10},
		BF16Transfer: true,
	}
}

// TestPrecisionModesConvergeOnPaperMatrices is the tentpole acceptance
// check: mixed and adaptive reach the FP64 tolerance on all four paper
// workloads, report what they did, and tag the precision ledger.
func TestPrecisionModesConvergeOnPaperMatrices(t *testing.T) {
	cases := []struct {
		name  string
		scale float64
		m, s  int
	}{
		{"cant", 0.1, 60, 10},
		{"G3_circuit", 0.004, 30, 10},
		{"dielFilterV2real", 0.006, 60, 15},
		{"nlpkkt120", 0.0015, 60, 10},
	}
	for _, tc := range cases {
		for _, prec := range []string{PrecisionMixed, PrecisionAdaptive} {
			t.Run(tc.name+"/"+prec, func(t *testing.T) {
				mat, err := matgen.ByName(tc.name, tc.scale)
				if err != nil {
					t.Fatal(err)
				}
				b := make([]float64, mat.A.Rows)
				for i := range b {
					b[i] = 1
				}
				ctx := gpu.NewContextWithProfile(3, bf16Profile())
				p, err := NewProblem(ctx, mat.A, b, KWay, true)
				if err != nil {
					t.Fatal(err)
				}
				res, err := CAGMRES(p, Options{
					M: tc.m, S: tc.s, Tol: 1e-4, MaxRestarts: 400,
					Ortho: "CholQR", AdaptiveS: true, Precision: prec,
				})
				if err != nil {
					t.Fatalf("solve: %v", err)
				}
				if !res.Converged {
					t.Fatalf("%s did not converge: relres %v after %d restarts", prec, res.RelRes, res.Restarts)
				}
				if rn := ResidualNorm(mat.A, b, res.X); rn > 1e-2 {
					t.Fatalf("true residual %v too large", rn)
				}
				rep := res.Precision
				if rep == nil || rep.Mode != prec {
					t.Fatalf("missing/incorrect precision report: %+v", rep)
				}
				if rep.WindowsFP32 == 0 {
					t.Fatalf("no fp32 windows recorded: %+v", rep)
				}
				if rep.FinalLevel == "" {
					t.Fatalf("no final level: %+v", rep)
				}
				if rep.CompressedTransfers == 0 {
					t.Fatalf("bf16-capable profile shipped no compressed halos: %+v", rep)
				}
				mpk := res.Stats.Phase(PhaseMPK)
				if mpk.BytesFP32 == 0 && mpk.BytesCompressed == 0 {
					t.Fatalf("precision ledger empty in mpk phase: %+v", mpk)
				}
				t.Logf("%s/%s: restarts=%d iters=%d relres=%.2e report=%+v",
					tc.name, prec, res.Restarts, res.Iters, res.RelRes, *rep)
			})
		}
	}
}

// TestAdaptiveConvergenceIsFP64True is the adaptive safety-rail property
// (ISSUE satellite): whenever adaptive reports convergence — on any of
// the four paper matrices, with and without a seeded fault plan — the
// independently FP64-recomputed true residual of the solved system meets
// the tolerance. Problems are prepared without balancing so the original
// system's residual is exactly the quantity the solver's convergence
// test used (row/column permutations preserve norms).
func TestAdaptiveConvergenceIsFP64True(t *testing.T) {
	const tol = 1e-4
	matrices := []struct {
		name  string
		scale float64
	}{
		{"cant", 0.08},
		{"G3_circuit", 0.003},
		{"dielFilterV2real", 0.005},
		{"nlpkkt120", 0.001},
	}
	for _, mc := range matrices {
		for _, faults := range []bool{false, true} {
			name := mc.name
			if faults {
				name += "/faulted"
			}
			t.Run(name, func(t *testing.T) {
				mat, err := matgen.ByName(mc.name, mc.scale)
				if err != nil {
					t.Fatal(err)
				}
				b := make([]float64, mat.A.Rows)
				for i := range b {
					b[i] = 1
				}
				ctx := gpu.NewContextWithProfile(3, bf16Profile())
				if faults {
					ctx.InjectFaults(gpu.FaultPlan{
						Seed:              1234,
						Deaths:            []gpu.DeviceDeath{{Device: 1, At: 1e-3}},
						TransferFaultProb: 0.01,
					})
				}
				p, err := NewProblem(ctx, mat.A, b, KWay, false)
				if err != nil {
					t.Fatal(err)
				}
				res, err := CAGMRES(p, Options{
					M: 30, S: 10, Tol: tol, MaxRestarts: 300,
					Ortho: "CholQR", AdaptiveS: true, Precision: PrecisionAdaptive,
				})
				if err != nil {
					// A fault that exhausts recovery is a legitimate failure,
					// not a false convergence claim.
					t.Logf("solve error (acceptable under faults): %v", err)
					return
				}
				if !res.Converged {
					t.Logf("did not converge (acceptable): relres %v", res.RelRes)
					return
				}
				// FP64 recomputation from scratch on the host: the property
				// under test must not trust any solver state.
				bn := la.Nrm2(b)
				if rn := ResidualNorm(mat.A, b, res.X); rn/bn > tol*1.01 {
					t.Fatalf("adaptive reported convergence at true relres %v > %v", rn/bn, tol)
				}
			})
		}
	}
}

// TestFP64ModeLedgerHasNoPrecisionColumns pins the conditional-column
// promise: a pure-FP64 solve renders the exact historical Stats table,
// while a mixed solve gains the precision columns.
func TestFP64ModeLedgerHasNoPrecisionColumns(t *testing.T) {
	a := laplace2D(16, 16, 0.3)
	b := randomRHS(256, 5)
	solve := func(prec string) (*Result, string) {
		ctx := gpu.NewContext(3, gpu.M2090())
		p, err := NewProblem(ctx, a, b, Natural, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CAGMRES(p, Options{M: 20, S: 5, Tol: 1e-8, MaxRestarts: 50, Ortho: "CholQR", Precision: prec})
		if err != nil {
			t.Fatal(err)
		}
		return res, res.Stats.String()
	}
	res64, table64 := solve("fp64")
	if strings.Contains(table64, "bytesFP32") || strings.Contains(table64, "bytesComp") {
		t.Fatalf("fp64 ledger grew precision columns:\n%s", table64)
	}
	if res64.Precision != nil {
		t.Fatalf("fp64 solve carries a precision report: %+v", res64.Precision)
	}
	resMixed, tableMixed := solve("mixed")
	if !strings.Contains(tableMixed, "bytesFP32") {
		t.Fatalf("mixed ledger missing bytesFP32 column:\n%s", tableMixed)
	}
	if resMixed.Precision == nil || resMixed.Precision.WindowsFP32 == 0 {
		t.Fatalf("mixed solve reported nothing: %+v", resMixed.Precision)
	}
	// Default and explicit fp64 are the same mode.
	resDefault, tableDefault := solve("")
	if tableDefault != table64 {
		t.Fatal("default and fp64 ledgers differ")
	}
	for i := range res64.X {
		if res64.X[i] != resDefault.X[i] {
			t.Fatalf("default and fp64 solutions differ at %d", i)
		}
	}
}
