package core

import (
	"fmt"
	"math"

	"cagmres/internal/la"
)

// BreakdownError reports a numerical breakdown: a NaN or ±Inf residual
// norm or basis quantity detected at a restart or matrix-powers window
// boundary. Once a non-finite value enters the recurrence every later
// iterate is garbage, so the solvers stop at the first boundary that
// sees one instead of spinning through MaxRestarts on NaNs. The error
// is terminal for the job — unlike a device fault, retrying the same
// system on a healthy context reproduces it bit-identically — which is
// why the scheduler must not requeue it and the server maps it to a
// client error (422 numerical_breakdown), not a retryable 5xx.
type BreakdownError struct {
	// Iter is the number of inner iterations completed when the
	// breakdown was detected.
	Iter int
	// Stage names the boundary that caught it: "residual" (restart
	// boundary), "window" (CA-GMRES Hessenberg estimate after a
	// matrix-powers window), or "basis" (the window's generated basis
	// vectors themselves overflowed).
	Stage string
}

func (e *BreakdownError) Error() string {
	return fmt.Sprintf("core: numerical breakdown (non-finite %s) after %d iterations", e.Stage, e.Iter)
}

// nonFinite reports NaN or ±Inf.
func nonFinite(x float64) bool { return math.IsNaN(x) || math.IsInf(x, 0) }

// windowHasNonFinite scans a basis window's per-device panels for
// non-finite entries. It only runs on TSQR failure paths, so the scan
// costs the happy path nothing.
func windowHasNonFinite(w []*la.Dense) bool {
	for _, p := range w {
		for j := 0; j < p.Cols; j++ {
			for _, x := range p.Col(j) {
				if nonFinite(x) {
					return true
				}
			}
		}
	}
	return false
}
