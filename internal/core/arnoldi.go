package core

import (
	"fmt"
	"math/cmplx"
	"sort"

	"cagmres/internal/dist"
	"cagmres/internal/la"
	"cagmres/internal/ortho"
)

// RitzValues computes approximations to the extreme eigenvalues of the
// prepared problem's matrix by an m-step Arnoldi process — the paper's
// concluding claim that the SpMV/MPK and Orth/BOrth/TSQR kernels "may
// have greater impact beyond GMRES" (subspace projection eigensolvers),
// made concrete.
//
// With opts.S <= 1 the basis is built one SpMV + orthogonalization at a
// time (standard Arnoldi, the communication profile of GMRES); with
// opts.S > 1 it is built in matrix-powers windows with BOrth and the
// opts.Ortho TSQR strategy (CA-Arnoldi, the communication profile of
// CA-GMRES). The monomial basis is used since no Ritz shifts exist before
// the first pass. start is the starting vector (nil for e_1).
//
// Returns the m Ritz values sorted by decreasing modulus, and the ledger
// of modeled costs.
func RitzValues(p *Problem, opts Options, start []float64) ([]complex128, error) {
	opts.defaults()
	ctx := p.Ctx
	ctx.ResetStats()
	n := p.Layout.N
	m := opts.M
	if m < 1 || m > n {
		return nil, fmt.Errorf("core: Arnoldi steps %d out of range for n=%d", m, n)
	}
	s := opts.S
	if s < 1 {
		s = 1
	}
	if s > m {
		s = m
	}

	V := dist.NewVectors(ctx, p.Layout, m+1)
	v0 := make([]float64, n)
	if start != nil {
		if len(start) != n {
			return nil, fmt.Errorf("core: start vector length %d, want %d", len(start), n)
		}
		copy(v0, start)
	} else {
		v0[0] = 1
	}
	nrm := la.Nrm2(v0)
	if nrm == 0 {
		return nil, fmt.Errorf("core: zero starting vector")
	}
	la.Scal(1/nrm, v0)
	V.SetColFromHost(0, v0)

	h := la.NewDense(m+1, m)
	sc := getScratch(m, ctx.NumDevices)
	defer putScratch(sc)
	var steps int
	if s <= 1 {
		A1 := dist.Distribute(ctx, p.A, p.Layout, 1)
		mpk := dist.NewMPK(A1)
		steps = gmresCycle(mpk, V, h, m, 1, 0, sc)
	} else {
		As := dist.Distribute(ctx, p.A, p.Layout, s)
		mpk := dist.NewMPK(As)
		tsqr, err := ortho.ByName(opts.Ortho)
		if err != nil {
			return nil, err
		}
		if opts.OrthoImpl != nil {
			tsqr = opts.OrthoImpl
		}
		borth, err := ortho.BOrthByName(opts.BOrth)
		if err != nil {
			return nil, err
		}
		done := 0
		for done < m {
			w := s
			if done+w > m {
				w = m - done
			}
			bhat := mpk.Generate(V, done, w, nil, PhaseMPK)
			q := done + 1
			c := borth.Project(ctx, V.Window(0, q), V.Window(q, q+w), PhaseBOrth)
			r, err := tsqr.Factor(ctx, V.Window(q, q+w), PhaseTSQR)
			if err != nil {
				if done == 0 {
					return nil, fmt.Errorf("core: CA-Arnoldi window at 0 (%s): %w", tsqr.Name(), err)
				}
				break // invariant subspace: use what we have
			}
			updateHessenberg(h, bhat, c, r, q, w)
			ctx.HostCompute(PhaseLSQ, 2*float64(q+w)*float64(w)*float64(q+w))
			done += w
		}
		steps = done
	}
	if steps == 0 {
		return nil, fmt.Errorf("core: Arnoldi made no progress")
	}

	hk := la.NewDense(steps, steps)
	for j := 0; j < steps; j++ {
		for i := 0; i <= j+1 && i < steps; i++ {
			hk.Set(i, j, h.At(i, j))
		}
	}
	ritz := la.HessenbergEigenvalues(hk)
	ctx.HostCompute(PhaseLSQ, 20*float64(steps*steps*steps))
	sort.Slice(ritz, func(a, b int) bool { return cmplx.Abs(ritz[a]) > cmplx.Abs(ritz[b]) })
	return ritz, nil
}
