package core

import (
	"context"
	"fmt"
	"math"

	"cagmres/internal/dist"
	"cagmres/internal/gpu"
	"cagmres/internal/la"
	"cagmres/internal/obs"
	"cagmres/internal/ortho"
)

// Options configures the solvers.
type Options struct {
	// M is the restart length (the paper sweeps 30..180).
	M int
	// S is the CA-GMRES step/block size (ignored by GMRES).
	S int
	// Tol is the relative residual reduction target; the paper declares
	// convergence at 1e-4.
	Tol float64
	// MaxRestarts bounds the outer loop.
	MaxRestarts int
	// Ortho selects the orthogonalization: for GMRES, "MGS" or "CGS"
	// (the Arnoldi variants of Figure 14); for CA-GMRES, a TSQR strategy
	// name, optionally "2x"-prefixed ("MGS", "CGS", "CholQR", "SVQR",
	// "CAQR", "2xCGS", "2xCholQR", ...).
	Ortho string
	// BOrth selects the block-orthogonalization variant for CA-GMRES:
	// "CGS" (paper default) or "MGS".
	BOrth string
	// Basis selects the CA-GMRES Krylov basis: "newton" (default, with
	// Leja-ordered Ritz shifts harvested from the first restart) or
	// "monomial".
	Basis string
	// OrthoImpl, when non-nil, overrides Ortho with an explicit TSQR
	// implementation (the benchmark harness uses it to wrap strategies
	// with error instrumentation for Figure 13).
	OrthoImpl ortho.TSQR
	// AdaptiveS enables the adaptive step-size scheme the paper lists as
	// future work (its reference [23]): when a basis window turns out
	// numerically rank deficient — the monomial/Newton basis grew too
	// ill-conditioned for the chosen s — CA-GMRES halves the step size
	// and retries instead of discarding the window or failing, restoring
	// s on later restarts when windows factor at first attempt again.
	AdaptiveS bool
	// Telemetry, when non-nil, receives a convergence-telemetry record
	// stream: per inner step (GMRES) or matrix-powers window (CA-GMRES),
	// per restart cycle, and a final "done" record whose RelRes matches
	// the returned Result. Every record carries the ledger's modeled
	// clock at emission. A nil sink disables telemetry at zero cost.
	Telemetry obs.Sink
	// Overlap enables the overlapped stream schedule on the device
	// context for this solve: halo transfers overlap local SpMV in the
	// matrix powers kernel, host-side Hessenberg/Givens work overlaps
	// device GEMMs, and modeled time becomes the critical path through
	// the stream dependency DAG (Context.OverlappedTime). Off by default:
	// the synchronous barrier schedule, identical to previous behavior.
	Overlap bool
	// Profile, when non-nil, re-targets the device context at this
	// machine profile for the solve: cost model and interconnect topology
	// swap together before the ledger resets (see gpu.Profile). Profiles
	// reorder modeled time, never arithmetic — iterates and convergence
	// histories are bit-identical across profiles. Nil keeps whatever
	// profile the context already carries (the paper's M2090 host-hub by
	// default).
	Profile *gpu.Profile
	// Ctx, when non-nil, makes the solve cancelable: the solvers check it
	// at every restart boundary (and CA-GMRES additionally between
	// matrix-powers windows) and, once it is canceled or past its
	// deadline, stop early and return the best-so-far Result with
	// Canceled set. A nil Ctx solves to convergence or MaxRestarts, as
	// before. This is what lets the internal/sched scheduler enforce
	// per-job deadlines without tearing down the device context.
	Ctx context.Context
	// Precision selects the element-width policy of the CA basis
	// pipeline: "fp64" (default, the historical full-double solver,
	// bit-identical to before this option existed), "mixed" (fp32 basis
	// generation with FP64 correction at every restart boundary —
	// iterative refinement with a narrow inner solver), or "adaptive"
	// (start narrow while the residual is large, tighten toward fp64
	// near convergence, driven by the restart-boundary true residual
	// and per-window orthogonality-loss telemetry). Whatever the mode,
	// convergence is only ever declared from the FP64-recomputed true
	// residual. GMRES supports only "fp64". See NormalizePrecision.
	Precision string
}

// canceled reports whether the solve's optional context has been
// canceled or has exceeded its deadline.
func (o *Options) canceled() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

func (o *Options) defaults() {
	if o.M == 0 {
		o.M = 30
	}
	if o.S == 0 {
		o.S = 10
	}
	if o.Tol == 0 {
		o.Tol = 1e-4
	}
	if o.MaxRestarts == 0 {
		o.MaxRestarts = 500
	}
	if o.Ortho == "" {
		o.Ortho = "CGS"
	}
	if o.BOrth == "" {
		o.BOrth = "CGS"
	}
	if o.Basis == "" {
		o.Basis = "newton"
	}
	if o.Precision == "" {
		o.Precision = PrecisionFP64
	}
}

// Result reports a solve.
type Result struct {
	// X is the computed solution in the ORIGINAL coordinates.
	X []float64
	// Converged reports whether the relative residual reached Tol.
	Converged bool
	// Restarts is the number of restart cycles executed.
	Restarts int
	// Iters is the total number of inner iterations (basis vectors
	// generated past the initial residual).
	Iters int
	// RelRes is the final relative residual of the prepared (balanced,
	// permuted) system, the quantity the convergence test uses.
	RelRes float64
	// History records the relative residual after every restart.
	History []float64
	// Stats is the ledger of modeled communication/computation, covering
	// the whole solve.
	Stats *gpu.Stats
	// Canceled reports that Options.Ctx was canceled (or its deadline
	// expired) before the solve finished; X holds the best iterate
	// reached and RelRes its true relative residual.
	Canceled bool
	// Faults, when non-nil, reports the injected faults this solve
	// observed and the recovery actions taken (device re-partitions,
	// checkpoint restores, transfer retries). Nil for fault-free runs.
	Faults *FaultReport
	// Precision, when non-nil, reports what the mixed/adaptive precision
	// policy did: window counts per width, compressed transfers, and
	// FP64 refinement steps. Nil for fp64 solves.
	Precision *PrecisionReport
}

// Phase names used by the solvers on the ledger.
const (
	PhaseSpMV  = "spmv"
	PhaseMPK   = "mpk"
	PhaseOrth  = "orth"
	PhaseBOrth = "borth"
	PhaseTSQR  = "tsqr"
	PhaseLSQ   = "lsq"
	PhaseVec   = "vec"
)

// GMRES solves the prepared problem with restarted GMRES(m), generating
// one Krylov vector per iteration with the distributed SpMV and
// orthogonalizing it against all previous vectors with MGS (BLAS-1, one
// reduction per dot product) or CGS (BLAS-2, fused projection) — the
// baseline of every comparison in the paper.
func GMRES(p *Problem, opts Options) (*Result, error) {
	opts.defaults()
	if opts.Ortho != "MGS" && opts.Ortho != "CGS" {
		return nil, fmt.Errorf("core: GMRES supports Ortho MGS or CGS, got %q", opts.Ortho)
	}
	if prec, err := NormalizePrecision(opts.Precision); err != nil {
		return nil, err
	} else if prec != PrecisionFP64 {
		// The precision policy narrows the CA basis pipeline; plain GMRES
		// has no window structure to refine over, so it stays fp64.
		return nil, fmt.Errorf("core: GMRES supports only fp64 precision, got %q", prec)
	}
	if opts.M < 1 || opts.M > p.Layout.N {
		return nil, fmt.Errorf("core: restart length %d out of range for n=%d", opts.M, p.Layout.N)
	}
	return solveHealing(p, opts, "gmres", func(p *Problem, ck *checkpoint) (*Result, error) {
		return runGMRES(p, opts, ck)
	})
}

// runGMRES is one GMRES solve attempt on the current device context,
// resuming from the checkpoint when one is captured. solveHealing owns
// the ledger reset and device-loss recovery around it.
func runGMRES(p *Problem, opts Options, ck *checkpoint) (*Result, error) {
	ctx := p.Ctx
	n := p.Layout.N
	m := opts.M

	A := dist.Distribute(ctx, p.A, p.Layout, 1)
	mpk := dist.NewMPK(A)
	V := dist.NewVectors(ctx, p.Layout, m+1)
	// Workspace: x (0), b (1), r (2).
	W := dist.NewVectors(ctx, p.Layout, 3)
	W.SetColFromHost(1, p.B)

	sc := getScratch(m, ctx.NumDevices)
	defer putScratch(sc)

	em := newEmitter(opts.Telemetry, "gmres", ctx)
	bNorm := la.Nrm2(p.B)
	if bNorm == 0 {
		// Trivial system: x = 0.
		em.emit(obs.Record{Kind: "done"})
		return &Result{X: p.Unmap(make([]float64, n)), Converged: true, RelRes: 0, Stats: ctx.Stats()}, nil
	}
	if nonFinite(bNorm) {
		return &Result{Stats: ctx.Stats()}, &BreakdownError{Iter: 0, Stage: "residual"}
	}

	res := &Result{Stats: ctx.Stats()}
	startRestart := 0
	if ck.captured {
		// Resume from the last restart boundary: restore the iterate and
		// the outer-loop counters captured before the device loss.
		W.SetColFromHost(0, ck.x)
		res.Restarts, res.Iters = ck.restarts, ck.iters
		res.History = append([]float64(nil), ck.history...)
		startRestart = ck.restart
	}
	h := la.NewDense(m+1, m)
	for restart := startRestart; restart < opts.MaxRestarts; restart++ {
		if ctx.FaultsArmed() {
			ck.capture(W.GatherCol(0), restart, res)
			em.emit(obs.Record{Kind: "checkpoint", Restart: restart, Step: res.Iters})
		}
		if opts.canceled() {
			res.Canceled = true
			break
		}
		// r = b - A x
		mpk.SpMV(W, 0, W, 2, PhaseSpMV)
		negateInto(W, 2, 1) // r := b - r
		beta := W.NormCol(2, PhaseVec)
		relres := beta / bNorm
		if nonFinite(relres) {
			// Non-finite residual at the restart boundary: stop instead
			// of iterating on garbage.
			return res, &BreakdownError{Iter: res.Iters, Stage: "residual"}
		}
		if restart > 0 {
			res.History = append(res.History, relres)
			em.emit(obs.Record{Kind: "restart", Restart: restart, Step: res.Iters, RelRes: relres})
		}
		if relres <= opts.Tol {
			res.Converged = true
			res.RelRes = relres
			break
		}
		res.Restarts++

		// v_0 = r / beta
		copyScaled(W, 2, V, 0, 1/beta)

		giv := sc.givens(m, beta)
		k := 0
		rel := relres
		for ; k < m; k++ {
			mpk.SpMV(V, k, V, k+1, PhaseSpMV)
			hcol := sc.hcol[:k+2]
			var err error
			if opts.Ortho == "MGS" {
				err = arnoldiMGS(V, k, hcol)
			} else {
				err = arnoldiCGS(V, k, hcol, sc)
			}
			for i := 0; i <= k+1; i++ {
				h.Set(i, k, hcol[i])
			}
			// The Givens update is tiny host work; under overlap it rides
			// the host stream while the devices run the next SpMV.
			rel = giv.Append(hcol) / bNorm
			ctx.HostComputeOn(PhaseLSQ, float64(6*(k+1)))
			em.emit(obs.Record{Kind: "step", Restart: restart, Step: k + 1, RelRes: rel})
			if err != nil {
				// Happy breakdown: the Krylov space is invariant; the
				// projection column is still valid (its subdiagonal entry
				// is numerically zero), so solve with what we have.
				k++
				break
			}
			if rel <= opts.Tol {
				k++
				break
			}
		}
		res.Iters += k
		if em.enabled() {
			em.emit(obs.Record{Kind: "cycle", Restart: restart, Step: k, RelRes: rel,
				OrthoLoss: orthoLoss(V.Window(0, k+1))})
		}

		// Solve the small least-squares problem and update x. The update's
		// broadcast depends on the host stream, so the solve's cost is on
		// the critical path only when the devices catch up first.
		y := giv.Solve()
		ctx.HostComputeOn(PhaseLSQ, 3*float64(m+1)*float64(m+1))
		W.UpdateWithBasis(0, V, 0, y[:k], PhaseVec)
	}

	if !res.Converged {
		mpk.SpMV(W, 0, W, 2, PhaseSpMV)
		negateInto(W, 2, 1)
		res.RelRes = W.NormCol(2, PhaseVec) / bNorm
		if nonFinite(res.RelRes) {
			return res, &BreakdownError{Iter: res.Iters, Stage: "residual"}
		}
	}
	em.emit(obs.Record{Kind: "done", Restart: res.Restarts, Step: res.Iters, RelRes: res.RelRes})
	res.X = p.Unmap(W.GatherCol(0))
	return res, nil
}

// negateInto sets column jr := column jb - column jr on every device
// (used to turn A*x into the residual b - A*x).
func negateInto(w *dist.Vectors, jr, jb int) {
	ng := len(w.Local)
	work := make([]gpu.Work, ng)
	w.Ctx.RunAll(func(d int) {
		r := w.Local[d].Col(jr)
		b := w.Local[d].Col(jb)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		work[d] = gpu.Work{Flops: float64(len(r)), Bytes: 24 * float64(len(r))}
	})
	w.Ctx.DeviceKernelOn(PhaseVec, work)
}

// copyScaled sets dst column jd := alpha * src column js across devices.
func copyScaled(src *dist.Vectors, js int, dst *dist.Vectors, jd int, alpha float64) {
	ng := len(src.Local)
	work := make([]gpu.Work, ng)
	src.Ctx.RunAll(func(d int) {
		s := src.Local[d].Col(js)
		t := dst.Local[d].Col(jd)
		for i := range s {
			t[i] = alpha * s[i]
		}
		work[d] = gpu.Work{Flops: float64(len(s)), Bytes: 16 * float64(len(s))}
	})
	src.Ctx.DeviceKernelOn(PhaseVec, work)
}

// arnoldiMGS orthogonalizes V[:,k+1] against V[:,0..k] by modified
// Gram-Schmidt: one global reduction per previous vector plus the norm,
// exactly the Orth kernel whose latency dominates GMRES in Figure 14's
// MGS rows. hcol receives [h_0k ... h_kk, h_{k+1,k}].
func arnoldiMGS(v *dist.Vectors, k int, hcol []float64) error {
	for l := 0; l <= k; l++ {
		r := v.DotCols(l, k+1, PhaseOrth)
		hcol[l] = r
		v.AxpyCol(-r, l, k+1, PhaseOrth)
	}
	nrm := v.NormCol(k+1, PhaseOrth)
	hcol[k+1] = nrm
	if nrm <= 1e-14*la.Nrm2(hcol[:k+1]) {
		return fmt.Errorf("core: happy breakdown at Arnoldi step %d", k)
	}
	v.ScaleCol(1/nrm, k+1, PhaseOrth)
	return nil
}

// arnoldiCGS orthogonalizes with classical Gram-Schmidt: a single fused
// device kernel computes all projections and the norm, one reduce and one
// broadcast round total (the paper's optimized DGEMV kernel), then the
// Pythagorean identity provides the post-update norm. Work buffers come
// from the pooled scratch; the kernel/round chain is submitted through
// the stream API so the host-side combine overlaps the device update.
func arnoldiCGS(v *dist.Vectors, k int, hcol []float64, sc *cycleScratch) error {
	ctx := v.Ctx
	ng := len(v.Local)
	work := make([]gpu.Work, ng)
	ctx.RunAll(func(d int) {
		vk := v.Local[d].Col(k + 1)
		buf := sc.dev[d][:k+2]
		prev := v.Local[d].ColView(0, k+1)
		la.ParallelGemvT(prev, vk, buf[:k+1])
		buf[k+1] = la.Dot(vk, vk)
		rows := float64(len(vk))
		work[d] = gpu.Work{Flops: 2 * rows * float64(k+2), Bytes: 8 * rows * float64(k+3)}
	})
	kd := ctx.DeviceKernelOn(PhaseOrth, work)
	bytes := sc.bytes[:ng]
	for d := range bytes {
		bytes[d] = (k + 2) * gpu.ScalarBytes
	}
	ctx.ReduceRoundOn(PhaseOrth, bytes, kd)
	sum := sc.sum[:k+2]
	for i := range sum {
		sum[i] = 0
	}
	for d := 0; d < ng; d++ {
		la.Axpy(1, sc.dev[d][:k+2], sum)
	}
	proj := sum[:k+1]
	vnorm2 := sum[k+1]
	copy(hcol[:k+1], proj)

	bc := ctx.BroadcastRoundOn(PhaseOrth, bytes)
	ctx.RunAll(func(d int) {
		vk := v.Local[d].Col(k + 1)
		prev := v.Local[d].ColView(0, k+1)
		la.Gemv(-1, prev, proj, 1, vk)
		work[d] = gpu.Work{Flops: 2 * float64(len(vk)) * float64(k+1), Bytes: 8 * float64(len(vk)) * float64(k+3)}
	})
	ctx.DeviceKernelOn(PhaseOrth, work, bc)

	newNorm2 := vnorm2 - la.Dot(proj, proj)
	var nrm float64
	if newNorm2 <= 1e-8*vnorm2 {
		// Cancellation: recompute honestly (extra round), the fused-CGS
		// stability check of the paper's footnote 5.
		nrm = v.NormCol(k+1, PhaseOrth)
	} else {
		nrm = math.Sqrt(newNorm2)
	}
	hcol[k+1] = nrm
	if nrm <= 1e-14*math.Sqrt(vnorm2) {
		return fmt.Errorf("core: happy breakdown at Arnoldi step %d", k)
	}
	v.ScaleCol(1/nrm, k+1, PhaseOrth)
	return nil
}
