// Package core implements the paper's solvers: restarted GMRES(m) with
// MGS or CGS Arnoldi orthogonalization, and CA-GMRES(s, m) built from the
// matrix powers kernel (monomial or Newton basis with Leja-ordered
// shifts), block orthogonalization, and a pluggable TSQR strategy — all on
// the simulated multi-GPU runtime with full communication accounting.
package core

import (
	"fmt"
	"math"

	"cagmres/internal/dist"
	"cagmres/internal/gpu"
	"cagmres/internal/graph"
	"cagmres/internal/sparse"
)

// Ordering selects how the matrix is permuted before block-row
// distribution, the paper's NAT / RCM / KWY configurations.
type Ordering string

// Ordering values. Hypergraph is the conclusion's future-work
// partitioner: it minimizes the exact SpMV communication volume (the
// column-net connectivity metric) instead of the edge-cut approximation.
const (
	Natural    Ordering = "natural"
	RCM        Ordering = "rcm"
	KWay       Ordering = "kway"
	Hypergraph Ordering = "hypergraph"
)

// Problem is a linear system prepared for the distributed solvers: the
// (optionally balanced and reordered) matrix, its layout over the
// simulated devices, and the right-hand side in the permuted/balanced
// coordinates. Solve results are mapped back to the original coordinates.
type Problem struct {
	Ctx    *gpu.Context
	A      *sparse.CSR // permuted (and balanced) matrix
	Layout *dist.Layout
	B      []float64 // permuted (and balanced) right-hand side

	perm     []int     // perm[new] = old; nil for identity
	rowScale []float64 // nil if not balanced
	colScale []float64
	jacobi   []float64 // right-preconditioner diagonal; nil if unused
}

// NewProblem prepares a linear system: applies the requested ordering,
// builds a balanced block-row layout over ng devices, and (optionally)
// balances the matrix the way the paper does (rows then columns scaled by
// their norms, Section VI).
func NewProblem(ctx *gpu.Context, a *sparse.CSR, b []float64, ordering Ordering, balance bool) (*Problem, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("core: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("core: rhs length %d for n=%d", len(b), a.Rows)
	}
	ng := ctx.NumDevices
	n := a.Rows

	p := &Problem{Ctx: ctx}
	var work *sparse.CSR
	var layout *dist.Layout
	switch ordering {
	case Natural, "":
		work = a.Clone()
		layout = dist.Uniform(n, ng)
	case RCM:
		g := graph.FromMatrix(a)
		perm := graph.RCM(g)
		work = a.Permute(perm)
		layout = dist.Uniform(n, ng)
		p.perm = perm
	case KWay:
		g := graph.FromMatrix(a)
		part := graph.KWay(g, ng, 1)
		perm, bounds := part.Order()
		work = a.Permute(perm)
		layout = dist.NewLayout(n, bounds)
		p.perm = perm
	case Hypergraph:
		part := graph.PartitionHypergraph(a, ng, 1)
		perm, bounds := part.Order()
		work = a.Permute(perm)
		layout = dist.NewLayout(n, bounds)
		p.perm = perm
	default:
		return nil, fmt.Errorf("core: unknown ordering %q", ordering)
	}

	bp := make([]float64, n)
	if p.perm != nil {
		for newIdx, old := range p.perm {
			bp[newIdx] = b[old]
		}
	} else {
		copy(bp, b)
	}

	if balance {
		rs, cs := sparse.Balance(work)
		sparse.ApplyRowScale(rs, bp)
		p.rowScale, p.colScale = rs, cs
	}

	p.A = work
	p.Layout = layout
	p.B = bp
	return p, nil
}

// SetB replaces the right-hand side with b, given in ORIGINAL
// coordinates, re-applying the problem's permutation and row scaling.
// It is what lets a pooled server reuse one prepared Problem — the
// ordering, partition and balance work — across many right-hand sides:
// the batching path of internal/sched solves a whole batch of
// compatible requests against a single preparation.
func (p *Problem) SetB(b []float64) error {
	if len(b) != p.A.Rows {
		return fmt.Errorf("core: rhs length %d for n=%d", len(b), p.A.Rows)
	}
	bp := make([]float64, len(b))
	if p.perm != nil {
		for newIdx, old := range p.perm {
			bp[newIdx] = b[old]
		}
	} else {
		copy(bp, b)
	}
	if p.rowScale != nil {
		sparse.ApplyRowScale(p.rowScale, bp)
	}
	p.B = bp
	return nil
}

// Repartition re-targets the prepared problem at a different (typically
// smaller) device context — the self-healing path after a device loss.
// The permutation, balance and preconditioning stay as they are (they
// are properties of the matrix, not of the devices); only the block-row
// layout is re-cut, uniformly across the new context's devices.
// Partition-derived layouts (kway, hypergraph) degrade to uniform cuts
// of the same permuted matrix, which keeps the solve correct at the cost
// of some extra halo volume — the price of surviving.
func (p *Problem) Repartition(ctx *gpu.Context) *Problem {
	np := *p
	np.Ctx = ctx
	np.Layout = dist.Uniform(p.A.Rows, ctx.NumDevices)
	return &np
}

// ApplyJacobi right-preconditions the prepared system with the inverse
// diagonal: the solvers then iterate on A*D^{-1} y = b and Unmap returns
// x = D^{-1} y. Diagonal (Jacobi) preconditioning is the one classical
// preconditioner that composes transparently with the matrix powers
// kernel — A*D^{-1} has exactly A's sparsity graph, so the halo sets,
// boundary submatrices and communication structure are unchanged
// (Hoemmen's thesis discusses preconditioned MPK; general preconditioners
// break the communication-avoiding property). Zero diagonal entries are
// left unscaled. Call at most once, before solving.
func (p *Problem) ApplyJacobi() {
	if p.jacobi != nil {
		panic("core: ApplyJacobi called twice")
	}
	n := p.A.Rows
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		v := p.A.At(i, i)
		if v == 0 {
			d[i] = 1
		} else {
			d[i] = v
		}
	}
	// Column-scale in place: (A D^{-1})_ij = a_ij / d_j.
	for k, c := range p.A.ColIdx {
		p.A.Val[k] /= d[c]
	}
	p.jacobi = d
}

// Unmap converts a solution of the prepared (permuted, balanced,
// possibly preconditioned) system back to the original coordinates.
func (p *Problem) Unmap(x []float64) []float64 {
	work := append([]float64(nil), x...)
	if p.jacobi != nil {
		for i := range work {
			work[i] /= p.jacobi[i]
		}
	}
	if p.colScale != nil {
		sparse.UnscaleSolution(p.colScale, work)
	}
	if p.perm == nil {
		return work
	}
	out := make([]float64, len(work))
	for newIdx, old := range p.perm {
		out[old] = work[newIdx]
	}
	return out
}

// ResidualNorm computes ||b - A x|| / ||b|| in the ORIGINAL coordinates
// for a solution in original coordinates (host-side verification).
func ResidualNorm(a *sparse.CSR, b, x []float64) float64 {
	r := make([]float64, len(b))
	a.MulVec(r, x)
	var rn, bn float64
	for i := range r {
		d := b[i] - r[i]
		rn += d * d
		bn += b[i] * b[i]
	}
	if bn == 0 {
		return math.Sqrt(rn)
	}
	return math.Sqrt(rn / bn)
}
