package cluster

import (
	"encoding/json"
	"testing"

	"cagmres/internal/server"
)

// FuzzRouterDecode hammers the two decoders on the router's hostile
// surface: the solve-body route view (shard-key derivation) and the
// shard-map config. Whatever the bytes, both must return structured
// errors, never panic, and the shard key must be deterministic.
func FuzzRouterDecode(f *testing.F) {
	// Solve bodies.
	f.Add([]byte(`{"matrix":{"name":"laplace3d","scale":0.01},"wait":true}`))
	f.Add([]byte(`{"matrix":{"matrixmarket":"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1.0\n"}}`))
	f.Add([]byte(`{"matrix":{}}`))
	f.Add([]byte(`{"matrix":{"name":"g3","scale":-1},"m":30,"s":5}`))
	// Shard maps.
	f.Add([]byte(`{"assign":{"gen:laplace3d@0.01":"node2"},"weights":{"node0":2.5}}`))
	f.Add([]byte(`{"weights":{"a":1e308}}`))
	f.Add([]byte(`{"routes":{}}`))
	f.Add([]byte(`{} {}`))
	f.Add([]byte(``))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var view routeView
		if err := json.Unmarshal(data, &view); err == nil {
			key, err := ShardKey(view.Matrix)
			if err == nil {
				if key == "" {
					t.Fatalf("ShardKey accepted %+v but returned an empty key", view.Matrix)
				}
				key2, err2 := ShardKey(view.Matrix)
				if err2 != nil || key2 != key {
					t.Fatalf("ShardKey not deterministic: %q then %q (%v)", key, key2, err2)
				}
			}
		}
		m, err := DecodeShardMap(data)
		if err == nil {
			if m == nil {
				t.Fatal("DecodeShardMap returned nil map without error")
			}
			// An accepted map must be usable: weights resolve, assignments
			// survive a re-encode round trip.
			for key := range m.Assign {
				if _, ok := m.assigned(key); !ok {
					t.Fatalf("accepted assignment %q not retrievable", key)
				}
			}
			for name := range m.Weights {
				if w := m.weight(name); !(w > 0) {
					t.Fatalf("accepted weight for %q resolves to %g", name, w)
				}
			}
			reenc, encErr := json.Marshal(m)
			if encErr != nil {
				t.Fatalf("accepted shard map does not re-encode: %v", encErr)
			}
			if _, err := DecodeShardMap(reenc); err != nil {
				t.Fatalf("accepted shard map does not round-trip: %v", err)
			}
		}
	})
}

// FuzzShardKeyStability pins the key derivation against the server's
// matrix-cache identity: same spec, same key, and the two spec forms
// never collide in prefix.
func FuzzShardKeyStability(f *testing.F) {
	f.Add("laplace3d", 0.01, "")
	f.Add("", 0.0, "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1.0\n")
	f.Add("g3", -2.5, "body")
	f.Fuzz(func(t *testing.T, name string, scale float64, mm string) {
		spec := server.MatrixSpec{Name: name, Scale: scale, MatrixMarket: mm}
		key, err := ShardKey(spec)
		if err != nil {
			return
		}
		key2, err2 := ShardKey(spec)
		if err2 != nil || key2 != key {
			t.Fatalf("unstable key: %q then %q (%v)", key, key2, err2)
		}
		switch {
		case mm != "":
			if key[:3] != "mm:" {
				t.Fatalf("matrixmarket spec keyed %q", key)
			}
		default:
			if key[:4] != "gen:" {
				t.Fatalf("generator spec keyed %q", key)
			}
		}
	})
}
