package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"

	"cagmres/internal/obs"
	"cagmres/internal/server"
)

// BackendHealth is one backend's slice of the cluster health view.
type BackendHealth struct {
	Name      string `json:"name"`
	Reachable bool   `json:"reachable"`
	// Down reports the router-side kill switch (administrative death);
	// an up backend can still be unreachable over a real network.
	Down    bool            `json:"down,omitempty"`
	Error   string          `json:"error,omitempty"`
	Healthz *server.Healthz `json:"healthz,omitempty"`
	// Breaker is the router-side circuit breaker state for this
	// backend: "closed", "open", or "half-open".
	Breaker string `json:"breaker,omitempty"`
}

// ClusterHealthz is the aggregated GET /healthz body: the federation is
// OK while at least one backend can take work, degraded as soon as any
// backend is dead, draining, degraded, or SLO-burning.
type ClusterHealthz struct {
	OK         bool `json:"ok"`
	Degraded   bool `json:"degraded"`
	Backends   int  `json:"backends"`
	Healthy    int  `json:"healthy"`
	PoolSize   int  `json:"pool_size"`
	PoolInUse  int  `json:"pool_in_use"`
	QueueDepth int  `json:"queue_depth"`
	// Routing tallies of this router instance.
	RoutedSolves uint64 `json:"routed_solves"`
	Reroutes     uint64 `json:"reroutes"`
	Rejects      uint64 `json:"rejects"`
	SLODegraded  bool   `json:"slo_degraded"`
	// Resilience is the containment layer's snapshot: retry budget,
	// breakers, hedges, and deadline rejections.
	Resilience Resilience      `json:"resilience"`
	PerBackend []BackendHealth `json:"per_backend"`
}

// ClusterSLO is the aggregated GET /slo body.
type ClusterSLO struct {
	Degraded bool                      `json:"degraded"`
	Backends map[string]*obs.SLOReport `json:"backends"`
}

// fanGet issues GET path on every backend concurrently and returns the
// decoded bodies (nil entry on any failure, with the error string).
func fanGet[T any](backends []*Backend, path string) ([]*T, []string) {
	out := make([]*T, len(backends))
	errs := make([]string, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			resp, err := b.do(http.MethodGet, path, "", nil, nil)
			if err != nil {
				errs[i] = err.Error()
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err.Error()
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = "HTTP " + resp.Status
				return
			}
			var v T
			if err := json.Unmarshal(body, &v); err != nil {
				errs[i] = err.Error()
				return
			}
			out[i] = &v
		}(i, b)
	}
	wg.Wait()
	return out, errs
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.reject(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "GET only")
		return
	}
	healths, errs := fanGet[server.Healthz](r.backends, "/healthz")
	solves, reroutes, rejects := r.Counts()
	r.refreshBreakerGauges()
	out := ClusterHealthz{
		Backends:     len(r.backends),
		RoutedSolves: solves,
		Reroutes:     reroutes,
		Rejects:      rejects,
		Resilience:   r.ResilienceSnapshot(),
	}
	for i, b := range r.backends {
		bh := BackendHealth{Name: b.Name(), Down: b.Down(), Breaker: r.breakers[b.Name()].State()}
		if h := healths[i]; h != nil {
			bh.Reachable = true
			bh.Healthz = h
			out.PoolSize += h.PoolSize
			out.PoolInUse += h.PoolInUse
			out.QueueDepth += h.QueueDepth
			if h.OK && !h.Degraded {
				out.Healthy++
			}
			if h.OK {
				out.OK = true
			}
			if !h.OK || h.Degraded || h.Draining {
				out.Degraded = true
			}
			if h.SLODegraded {
				out.SLODegraded = true
				out.Degraded = true
			}
		} else {
			bh.Error = errs[i]
			out.Degraded = true
		}
		out.PerBackend = append(out.PerBackend, bh)
	}
	writeJSON(w, http.StatusOK, out)
}

func (r *Router) handleSLO(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.reject(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "GET only")
		return
	}
	reports, _ := fanGet[obs.SLOReport](r.backends, "/slo")
	out := ClusterSLO{Backends: make(map[string]*obs.SLOReport, len(r.backends))}
	for i, b := range r.backends {
		out.Backends[b.Name()] = reports[i]
		if reports[i] != nil && reports[i].Degraded {
			out.Degraded = true
		}
	}
	writeJSON(w, http.StatusOK, out)
}
