package cluster

import "sync"

// Breaker states. String values surface verbatim in /healthz and the
// router_breaker_state metric.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// BreakerConfig parameterizes a circuit breaker. The clock is
// injectable (same convention as obs.SLOConfig.Now) so chaos replays
// drive breakers on deterministic virtual time.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker. <= 0 defaults to 5.
	Threshold int
	// Cooldown is how long (in clock seconds) an open breaker waits
	// before admitting a half-open probe. <= 0 defaults to 5s.
	Cooldown float64
	// Now supplies the clock; nil means the breaker never re-probes on
	// its own and must be driven via Tick (not used in practice — the
	// router always injects a clock).
	Now func() float64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5
	}
	return c
}

// Breaker is a per-backend circuit breaker: closed (traffic flows),
// open (all traffic skipped until Cooldown elapses), half-open (one
// probe in flight; its outcome closes or re-opens the circuit). It
// stops the router from hammering a dead or 5xx-ing node between
// health polls: failures there are pure waste that the hop budget
// would otherwise spend eagerly.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    string
	fails    int     // consecutive failures while closed
	openedAt float64 // clock time the breaker last opened
	probing  bool    // a half-open probe is in flight
	opens    uint64  // cumulative open transitions
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), state: BreakerClosed}
}

// Allow reports whether a request may be sent to this backend now.
// An open breaker admits exactly one probe once Cooldown has elapsed
// (transitioning to half-open); further requests are skipped until the
// probe resolves.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now != nil && b.cfg.Now()-b.openedAt >= b.cfg.Cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return true
		}
		return false
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// Peek reports whether Allow would admit a request right now, without
// transitioning state or consuming the half-open probe slot. Hedge
// candidate selection uses this so that merely being *considered* as a
// hedge target never burns the probe.
func (b *Breaker) Peek() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return b.cfg.Now != nil && b.cfg.Now()-b.openedAt >= b.cfg.Cooldown
	case BreakerHalfOpen:
		return !b.probing
	}
	return true
}

// Release abandons an Allow-admitted request whose outcome will never
// be observed (e.g. a hedge that lost the race and was canceled before
// responding). It frees the half-open probe slot without recording a
// success or failure, so the breaker can probe again instead of
// wedging with probing set forever.
func (b *Breaker) Release() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// Success records a successful response. In half-open it closes the
// circuit; in closed it resets the consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	b.state = BreakerClosed
}

// Failure records a failed response. Threshold consecutive failures
// open a closed circuit; a failed half-open probe re-opens immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.open()
		}
	}
}

// open transitions to the open state. Callers hold b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.fails = 0
	b.probing = false
	b.opens++
	if b.cfg.Now != nil {
		b.openedAt = b.cfg.Now()
	}
}

// Trip force-opens the breaker (admin kill uses this so a killed
// backend is skipped immediately rather than after Threshold wasted
// attempts).
func (b *Breaker) Trip() {
	b.mu.Lock()
	b.open()
	b.mu.Unlock()
}

// Reset force-closes the breaker (admin revive).
func (b *Breaker) Reset() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// State returns "closed", "open", or "half-open".
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns the cumulative number of open transitions.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
