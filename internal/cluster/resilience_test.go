package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cagmres/internal/server"
)

// doneHandler answers every solve with a minimal completed job.
func doneHandler(id string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"id":%q,"state":"done","converged":true}`, id)
	})
}

// statusHandler answers every request with a fixed structured status.
func statusHandler(status int, code string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		fmt.Fprintf(w, `{"code":%q,"error":"synthetic"}`, code)
	})
}

// pinned builds a shard map pinning the test spec's key to name.
func pinned(t *testing.T, name string) *ShardMap {
	t.Helper()
	key, err := ShardKey(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	return &ShardMap{Assign: map[string]string{key: name}}
}

// TestRouterRetryBudgetExhausted: with every backend shedding, the
// router forwards only while the token bucket holds out, then answers a
// structured retry_budget_exhausted with a Retry-After hint instead of
// hammering the remaining candidates.
func TestRouterRetryBudgetExhausted(t *testing.T) {
	mk := func(name string) *Backend {
		return NewLocalBackend(name, statusHandler(http.StatusTooManyRequests, "queue_full"))
	}
	r := New(Config{
		Backends:         []*Backend{mk("a"), mk("b"), mk("c")},
		MaxHops:          3,
		RetryBudgetRatio: 0.1,
		RetryBudgetBurst: 1, // one token: first forward allowed, second denied
	})
	code, _, hdr := post(t, r, solveBody(t, tinySpec()))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d, want 503", code)
	}
	var e errorJSON
	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(solveBody(t, tinySpec())))
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, req)
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("rejection body: %v", err)
	}
	if e.Code != codeRetryBudgetExhausted {
		t.Errorf("code %q, want %q", e.Code, codeRetryBudgetExhausted)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("retry_budget_exhausted rejection without a Retry-After hint")
	}
	res := r.ResilienceSnapshot()
	if res.RetryBudgetDenied == 0 {
		t.Errorf("budget denials not accounted: %+v", res)
	}
	if res.RetryBudgetSpent == 0 {
		t.Errorf("budget spends not accounted: %+v", res)
	}
	_, mbody := get(t, r, "/metrics")
	if !bytes.Contains(mbody, []byte("router_retry_budget_exhausted_total")) {
		t.Error("router_retry_budget_exhausted_total family missing from /metrics")
	}
}

// TestRouterBreakerSkipsOpenBackend: consecutive failures open the
// failing backend's breaker, after which the router routes around it
// without wasting an attempt; the cooldown admits a half-open probe
// whose failure re-opens the circuit. All on virtual time.
func TestRouterBreakerSkipsOpenBackend(t *testing.T) {
	clock := 0.0
	failing := NewLocalBackend("failing", statusHandler(http.StatusInternalServerError, "boom"))
	healthy := NewLocalNode(LocalNodeConfig{Name: "healthy", Devices: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = healthy.Drain(ctx)
	})
	r := New(Config{
		Backends: []*Backend{failing, healthy.Backend()},
		MaxHops:  2,
		ShardMap: pinned(t, "failing"),
		Breaker:  BreakerConfig{Threshold: 2, Cooldown: 5},
		Now:      func() float64 { return clock },
	})

	// Two solves burn one failing attempt each; the second opens the
	// breaker. Both still complete on the healthy backend.
	for i := 0; i < 2; i++ {
		code, job, _ := post(t, r, solveBody(t, tinySpec()))
		if code != http.StatusOK || job.Backend != "healthy" || job.Hops != 2 {
			t.Fatalf("solve %d: HTTP %d backend %q hops %d", i, code, job.Backend, job.Hops)
		}
	}
	if st := r.ResilienceSnapshot().Breakers["failing"]; st != BreakerOpen {
		t.Fatalf("breaker after %d failures: %q, want open", 2, st)
	}

	// Open breaker: the failing backend is skipped without an attempt, so
	// the solve lands on the survivor in a single hop.
	code, job, _ := post(t, r, solveBody(t, tinySpec()))
	if code != http.StatusOK || job.Backend != "healthy" {
		t.Fatalf("solve with open breaker: HTTP %d backend %q", code, job.Backend)
	}
	if job.Hops != 1 {
		t.Errorf("open breaker still burned a hop: hops=%d, want 1", job.Hops)
	}
	res := r.ResilienceSnapshot()
	if res.BreakerSkips == 0 {
		t.Errorf("breaker skip not accounted: %+v", res)
	}

	// Cooldown elapsed: exactly one half-open probe reaches the failing
	// backend; its 500 re-opens the circuit immediately.
	clock = 6
	code, job, _ = post(t, r, solveBody(t, tinySpec()))
	if code != http.StatusOK || job.Backend != "healthy" || job.Hops != 2 {
		t.Fatalf("half-open probe solve: HTTP %d backend %q hops %d", code, job.Backend, job.Hops)
	}
	if st := r.ResilienceSnapshot().Breakers["failing"]; st != BreakerOpen {
		t.Errorf("failed probe should re-open the breaker, state %q", st)
	}

	// The per-backend breaker state surfaces in /healthz.
	_, body := get(t, r, "/healthz")
	var h ClusterHealthz
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	states := map[string]string{}
	for _, bh := range h.PerBackend {
		states[bh.Name] = bh.Breaker
	}
	if states["failing"] != BreakerOpen || states["healthy"] != BreakerClosed {
		t.Errorf("healthz breaker states %v", states)
	}
}

// TestRouterDeadlineExhausted: a client deadline that runs out at the
// router yields a 504 deadline_exhausted without reaching any backend.
func TestRouterDeadlineExhausted(t *testing.T) {
	clock := 0.0
	touched := false
	b := NewLocalBackend("slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		touched = true
	}))
	r := New(Config{
		Backends: []*Backend{b},
		// Every clock read advances 200ms, so a 100ms budget is already
		// spent by the first per-attempt check.
		Now: func() float64 { clock += 0.2; return clock },
	})
	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(solveBody(t, tinySpec())))
	req.Header.Set(server.SolveControlHeader, "deadline-ms=100")
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("HTTP %d, want 504: %s", rec.Code, rec.Body.String())
	}
	var e errorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != codeDeadlineExhausted {
		t.Errorf("rejection %q (%v), want %q", e.Code, err, codeDeadlineExhausted)
	}
	if touched {
		t.Error("expired-deadline solve still reached a backend")
	}
	if res := r.ResilienceSnapshot(); res.DeadlineExpired != 1 {
		t.Errorf("deadline expiry not accounted: %+v", res)
	}
}

// TestRouterDeadlinePropagation: the router decrements the client
// deadline by its own elapsed time and forwards the remainder in both
// the Solve-Control header and the job body.
func TestRouterDeadlinePropagation(t *testing.T) {
	clock := 0.0
	var gotHeader string
	var gotBody map[string]any
	capture := NewLocalBackend("cap", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader = r.Header.Get(server.SolveControlHeader)
		var m map[string]any
		_ = json.NewDecoder(r.Body).Decode(&m)
		gotBody = m
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"1","state":"done","converged":true}`)
	}))
	r := New(Config{
		Backends: []*Backend{capture},
		// 50ms pass between the request arriving and the forward.
		Now: func() float64 { clock += 0.05; return clock },
	})
	body, err := json.Marshal(map[string]any{
		"matrix": tinySpec(),
		"m":      20, "s": 4, "tol": 1e-6,
		"deadline_ms": 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	code, job, _ := post(t, r, body)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if job.ID != "cap/1" {
		t.Errorf("job id %q, want cap/1", job.ID)
	}
	ctl, err := server.ParseSolveControl(gotHeader)
	if err != nil {
		t.Fatalf("forwarded Solve-Control %q: %v", gotHeader, err)
	}
	if ctl.DeadlineMS != 4950 {
		t.Errorf("forwarded deadline %dms, want 4950 (5000 minus 50ms router time)", ctl.DeadlineMS)
	}
	if got, ok := gotBody["deadline_ms"].(float64); !ok || int64(got) != 4950 {
		t.Errorf("forwarded body deadline_ms %v, want 4950", gotBody["deadline_ms"])
	}
}

// TestRouterHedgedSolve: a stalled first-choice backend triggers a
// hedged second attempt after the hedge delay; the fast backend's
// response wins and the accounting records the hedge.
func TestRouterHedgedSolve(t *testing.T) {
	slow := NewLocalBackend("slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"s","state":"done","converged":true}`)
	}))
	fast := NewLocalBackend("fast", doneHandler("f"))
	r := New(Config{
		Backends:   []*Backend{slow, fast},
		MaxHops:    2,
		ShardMap:   pinned(t, "slow"),
		HedgeAfter: 0.02,
	})
	body, err := json.Marshal(map[string]any{
		"matrix": tinySpec(), "m": 20, "s": 4, "tol": 1e-6, "wait": true,
	})
	if err != nil {
		t.Fatal(err)
	}
	code, job, _ := post(t, r, body)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if !job.Hedged || job.Backend != "fast" {
		t.Fatalf("hedge did not win: hedged=%t backend=%q", job.Hedged, job.Backend)
	}
	res := r.ResilienceSnapshot()
	if res.Hedges != 1 || res.HedgeWins != 1 {
		t.Errorf("hedge accounting %+v, want 1 hedge, 1 win", res)
	}
	// A hedge is a forward past the first choice: it drew from the budget.
	if res.RetryBudgetSpent != 1 {
		t.Errorf("hedge did not draw from the retry budget: %+v", res)
	}
}

// TestRouterHedgeDisabledByControlHeader: Solve-Control hedge=off wins
// over the router's HedgeAfter default.
func TestRouterHedgeDisabledByControlHeader(t *testing.T) {
	slow := NewLocalBackend("slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(80 * time.Millisecond)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"s","state":"done","converged":true}`)
	}))
	fast := NewLocalBackend("fast", doneHandler("f"))
	r := New(Config{
		Backends:   []*Backend{slow, fast},
		MaxHops:    2,
		ShardMap:   pinned(t, "slow"),
		HedgeAfter: 0.01,
	})
	body, err := json.Marshal(map[string]any{
		"matrix": tinySpec(), "m": 20, "s": 4, "tol": 1e-6, "wait": true,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body))
	req.Header.Set(server.SolveControlHeader, "hedge=off")
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, req)
	var job RoutedJob
	_ = json.Unmarshal(rec.Body.Bytes(), &job)
	if rec.Code != http.StatusOK || job.Backend != "slow" || job.Hedged {
		t.Fatalf("hedge=off ignored: HTTP %d backend %q hedged=%t", rec.Code, job.Backend, job.Hedged)
	}
	if res := r.ResilienceSnapshot(); res.Hedges != 0 {
		t.Errorf("hedges launched despite hedge=off: %+v", res)
	}
}

// TestBreakerPeekIsSideEffectFree: Peek answers what Allow would say
// without transitioning state or consuming the half-open probe slot,
// and Release frees an abandoned probe.
func TestBreakerPeekIsSideEffectFree(t *testing.T) {
	clock := 0.0
	br := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 5, Now: func() float64 { return clock }})
	if !br.Peek() {
		t.Fatal("closed breaker should peek true")
	}
	br.Failure() // threshold 1: opens
	if br.Peek() {
		t.Error("open breaker before cooldown should peek false")
	}
	clock = 6
	for i := 0; i < 3; i++ {
		if !br.Peek() {
			t.Fatalf("peek %d consumed the probe slot", i)
		}
	}
	if st := br.State(); st != BreakerOpen {
		t.Errorf("peek transitioned state to %q", st)
	}
	if !br.Allow() {
		t.Fatal("cooldown elapsed: Allow should admit the probe")
	}
	if br.Peek() {
		t.Error("probe in flight: peek should deny a second probe")
	}
	br.Release()
	if !br.Peek() {
		t.Error("Release did not free the abandoned probe slot")
	}
}

// TestHedgeSelectionDoesNotConsumeProbe: an open-past-cooldown backend
// that is repeatedly *considered* as a hedge target — but never
// dispatched to, because the primary answers within the hedge delay —
// must keep its probe slot, so it can still rejoin rotation. (The bug:
// candidate selection called Allow, moved the breaker to half-open
// with the probe held, and no outcome was ever recorded, excluding the
// backend from routing forever.)
func TestHedgeSelectionDoesNotConsumeProbe(t *testing.T) {
	clock := 0.0
	fast := NewLocalBackend("fast", doneHandler("f"))
	other := NewLocalBackend("other", doneHandler("o"))
	r := New(Config{
		Backends:   []*Backend{fast, other},
		MaxHops:    2,
		ShardMap:   pinned(t, "fast"),
		HedgeAfter: 0.5, // primary answers long before the hedge fires
		Breaker:    BreakerConfig{Threshold: 1, Cooldown: 5},
		Now:        func() float64 { return clock },
	})
	r.breakers["other"].Trip()
	clock = 10 // past cooldown: one probe is available
	body, err := json.Marshal(map[string]any{
		"matrix": tinySpec(), "m": 20, "s": 4, "tol": 1e-6, "wait": true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		code, job, _ := post(t, r, body)
		if code != http.StatusOK || job.Backend != "fast" || job.Hedged {
			t.Fatalf("solve %d: HTTP %d backend %q hedged=%t", i, code, job.Backend, job.Hedged)
		}
	}
	if st := r.breakers["other"].State(); st != BreakerOpen {
		t.Fatalf("hedge selection mutated the breaker: state %q, want open", st)
	}
	if !r.breakers["other"].Peek() {
		t.Fatal("hedge selection consumed the probe slot")
	}
	// The recovered node can actually rejoin rotation: with the primary
	// killed, the probe reaches it and its success closes the circuit.
	req := httptest.NewRequest(http.MethodPost, "/admin/kill/fast", nil)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, req)
	code, job, _ := post(t, r, body)
	if code != http.StatusOK || job.Backend != "other" {
		t.Fatalf("probe solve: HTTP %d backend %q", code, job.Backend)
	}
	if st := r.breakers["other"].State(); st != BreakerClosed {
		t.Errorf("successful probe left breaker %q, want closed", st)
	}
}

// TestReapLoserRecordsBreakerOutcome: the hedged race's loser must
// leave its breaker in a sane state — a canceled loser releases the
// probe slot, a real response counts as the failure or success it is.
func TestReapLoserRecordsBreakerOutcome(t *testing.T) {
	clock := 0.0
	br := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 1, Now: func() float64 { return clock }})
	var r Router

	// Canceled loser: no health signal, probe slot freed.
	br.Trip()
	clock = 2
	if !br.Allow() {
		t.Fatal("probe not admitted")
	}
	r.reapLoser(attempt{err: context.Canceled}, br)
	if st := br.State(); st != BreakerHalfOpen || !br.Peek() {
		t.Fatalf("canceled loser: state %q peek %t, want half-open with a free probe", st, br.Peek())
	}

	// 5xx loser: counts as a failed probe, re-opens.
	if !br.Allow() {
		t.Fatal("freed probe not admitted")
	}
	r.reapLoser(attempt{status: http.StatusInternalServerError}, br)
	if st := br.State(); st != BreakerOpen {
		t.Fatalf("5xx loser: state %q, want open", st)
	}

	// 2xx loser: counts as a success, closes.
	clock = 4
	if !br.Allow() {
		t.Fatal("probe after reopen not admitted")
	}
	r.reapLoser(attempt{status: http.StatusOK}, br)
	if st := br.State(); st != BreakerClosed {
		t.Fatalf("2xx loser: state %q, want closed", st)
	}
}

// TestExpiredDeadlineDoesNotDrainRetryBudget: a reroute whose deadline
// has already expired is rejected before a budget token is taken, so
// dead-on-arrival traffic cannot starve the budget for live solves.
func TestExpiredDeadlineDoesNotDrainRetryBudget(t *testing.T) {
	clock := 0.0
	shed := NewLocalBackend("shed", statusHandler(http.StatusTooManyRequests, "queue_full"))
	spare := NewLocalBackend("spare", doneHandler("s"))
	r := New(Config{
		Backends:         []*Backend{shed, spare},
		MaxHops:          2,
		ShardMap:         pinned(t, "shed"),
		RetryBudgetRatio: 0.1,
		RetryBudgetBurst: 5,
		// Every clock read advances 200ms: the first attempt fits a 300ms
		// deadline, the reroute check does not.
		Now: func() float64 { clock += 0.2; return clock },
	})
	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(solveBody(t, tinySpec())))
	req.Header.Set(server.SolveControlHeader, "deadline-ms=300")
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("HTTP %d, want 504: %s", rec.Code, rec.Body.String())
	}
	var e errorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != codeDeadlineExhausted {
		t.Errorf("rejection %q (%v), want %q", e.Code, err, codeDeadlineExhausted)
	}
	res := r.ResilienceSnapshot()
	if res.RetryBudgetSpent != 0 {
		t.Errorf("expired-deadline reroute drained the budget: %+v", res)
	}
	if res.RetryBudgetTokens != 5 {
		t.Errorf("budget tokens %v, want the full burst of 5", res.RetryBudgetTokens)
	}
	if res.DeadlineExpired != 1 {
		t.Errorf("deadline expiry not accounted: %+v", res)
	}
}

// TestRewriteDeadlinePreservesOpaqueFields: only deadline_ms changes;
// every other field — including integers beyond float64's 2^53 exact
// range — stays byte-identical.
func TestRewriteDeadlinePreservesOpaqueFields(t *testing.T) {
	body := []byte(`{"big":9007199254740993,"deadline_ms":5000,"tiny":1e-320}`)
	out := rewriteDeadline(body, 1234)
	var m map[string]json.RawMessage
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatalf("rewritten body: %v", err)
	}
	if got := string(m["deadline_ms"]); got != "1234" {
		t.Errorf("deadline_ms %s, want 1234", got)
	}
	if got := string(m["big"]); got != "9007199254740993" {
		t.Errorf("opaque integer corrupted: %s, want 9007199254740993", got)
	}
	if got := string(m["tiny"]); got != "1e-320" {
		t.Errorf("opaque float re-encoded: %s, want 1e-320", got)
	}
}

// TestHedgeBudgetDenialCountsInMetric: a hedge refused by an empty
// retry budget shows up both in the resilience snapshot and in the
// router_retry_budget_exhausted_total metric family.
func TestHedgeBudgetDenialCountsInMetric(t *testing.T) {
	slow := NewLocalBackend("slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(100 * time.Millisecond):
		case <-r.Context().Done():
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"s","state":"done","converged":true}`)
	}))
	fast := NewLocalBackend("fast", doneHandler("f"))
	r := New(Config{
		Backends:         []*Backend{slow, fast},
		MaxHops:          2,
		ShardMap:         pinned(t, "slow"),
		HedgeAfter:       0.02,
		RetryBudgetRatio: 0.1,
		RetryBudgetBurst: 1,
	})
	if !r.budget.Take() {
		t.Fatal("could not pre-drain the budget")
	}
	body, err := json.Marshal(map[string]any{
		"matrix": tinySpec(), "m": 20, "s": 4, "tol": 1e-6, "wait": true,
	})
	if err != nil {
		t.Fatal(err)
	}
	code, job, _ := post(t, r, body)
	if code != http.StatusOK || job.Backend != "slow" || job.Hedged {
		t.Fatalf("HTTP %d backend %q hedged=%t, want the un-hedged primary", code, job.Backend, job.Hedged)
	}
	res := r.ResilienceSnapshot()
	if res.Hedges != 0 {
		t.Errorf("hedge launched with an empty budget: %+v", res)
	}
	if res.RetryBudgetDenied != 1 {
		t.Errorf("hedge denial missing from snapshot: %+v", res)
	}
	_, mbody := get(t, r, "/metrics")
	if !bytes.Contains(mbody, []byte("router_retry_budget_exhausted_total 1")) {
		t.Errorf("hedge denial missing from metrics:\n%s", mbody)
	}
}

// TestRouterReforwardReplayWithBreakersArmed: the forced re-forward of
// a real solve off an overloaded first choice is bit-identical across
// two fresh federations with the containment layer armed — the budget,
// breakers and virtual clock add no nondeterminism to routing.
func TestRouterReforwardReplayWithBreakersArmed(t *testing.T) {
	runOnce := func() RoutedJob {
		overloaded := NewLocalBackend("full", statusHandler(http.StatusTooManyRequests, "queue_full"))
		node := NewLocalNode(LocalNodeConfig{Name: "spare", Devices: 2})
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = node.Drain(ctx)
		}()
		r := New(Config{
			Backends:         []*Backend{overloaded, node.Backend()},
			MaxHops:          2,
			ShardMap:         pinned(t, "full"),
			RetryBudgetRatio: 0.1,
			RetryBudgetBurst: 10,
			Breaker:          BreakerConfig{Threshold: 5, Cooldown: 5},
			Now:              func() float64 { return 0 },
		})
		code, job, _ := post(t, r, solveBody(t, tinySpec()))
		if code != http.StatusOK || job.Backend != "spare" || job.Hops != 2 {
			t.Fatalf("forced re-forward: HTTP %d backend %q hops %d", code, job.Backend, job.Hops)
		}
		return job
	}
	a := runOnce()
	b := runOnce()
	if a.ModeledSeconds != b.ModeledSeconds || a.Iters != b.Iters ||
		a.RelRes != b.RelRes || a.Backend != b.Backend || a.Hops != b.Hops {
		t.Errorf("re-forward replay diverged:\n  run 1: %+v\n  run 2: %+v", a, b)
	}
}

// TestRouterKillReviveBreakerRace hammers the admin kill/revive surface
// concurrently with solves, health checks and metric scrapes. It exists
// for the race detector: breaker transitions, budget accounting and
// gauge refreshes must be safe under concurrent admin flips.
func TestRouterKillReviveBreakerRace(t *testing.T) {
	backends := []*Backend{
		NewLocalBackend("n0", doneHandler("a")),
		NewLocalBackend("n1", doneHandler("b")),
		NewLocalBackend("n2", doneHandler("c")),
	}
	r := New(Config{Backends: backends, MaxHops: 3, HedgeAfter: 0.001})
	body, err := json.Marshal(map[string]any{
		"matrix": tinySpec(), "m": 20, "s": 4, "tol": 1e-6, "wait": true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const iters = 40
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				r.ServeHTTP(rec, req) // any status: shed is legal mid-kill
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			action := "kill"
			if i%2 == 1 {
				action = "revive"
			}
			req := httptest.NewRequest(http.MethodPost, "/admin/"+action+"/n1", nil)
			rec := httptest.NewRecorder()
			r.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("admin %s: HTTP %d", action, rec.Code)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			get(t, r, "/healthz")
			get(t, r, "/metrics")
		}
	}()
	wg.Wait()

	// Settle: revive everything, then a solve must succeed.
	req := httptest.NewRequest(http.MethodPost, "/admin/revive/n1", nil)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, req)
	code, job, _ := post(t, r, body)
	if code != http.StatusOK {
		t.Fatalf("solve after settling: HTTP %d (%+v)", code, job)
	}
	if st := r.ResilienceSnapshot().Breakers["n1"]; st != BreakerClosed {
		t.Errorf("revived backend's breaker %q, want closed", st)
	}
}
