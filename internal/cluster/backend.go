// Package cluster federates multiple cagmresd-style solver backends
// behind one router: jobs shard across backends by matrix key with
// rendezvous hashing, overloaded or dead backends are skipped with
// bounded forwarding hops, traceparent headers propagate end to end,
// and the per-backend health/SLO surfaces aggregate into cluster-level
// views. Backends are either in-process (a server.Server handler —
// what the tier-1 tests and the router's -local mode use) or remote
// HTTP daemons; the router speaks to both through the same client
// path, so every routing decision is exercised identically in tests
// and in production.
package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
)

// Backend is one solver shard the router can forward to: a name (the
// shard identity rendezvous hashing scores against), a transport, and
// an administrative kill switch that simulates whole-node death or a
// network partition deterministically.
type Backend struct {
	name   string
	base   string // URL base for HTTP backends, "" for in-process
	client *http.Client
	down   atomic.Bool
}

// NewHTTPBackend wires a backend reached over the network, e.g. a
// cagmresd daemon at http://host:8080.
func NewHTTPBackend(name, baseURL string) (*Backend, error) {
	name = strings.TrimSpace(name)
	if name == "" || strings.ContainsAny(name, "/ \t\n") {
		return nil, fmt.Errorf("cluster: backend name %q must be non-empty without slashes or spaces", name)
	}
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("cluster: backend %s: bad base URL %q", name, baseURL)
	}
	return &Backend{
		name:   name,
		base:   strings.TrimRight(u.String(), "/"),
		client: &http.Client{},
	}, nil
}

// NewLocalBackend wires an in-process backend: requests dispatch
// straight into the handler (normally a server.Server) with no network
// in between. The routing, error mapping and header propagation paths
// are byte-identical to the HTTP case.
func NewLocalBackend(name string, h http.Handler) *Backend {
	return &Backend{
		name:   strings.TrimSpace(name),
		client: &http.Client{Transport: handlerTransport{h: h}},
	}
}

// Name returns the backend's shard identity.
func (b *Backend) Name() string { return b.name }

// Down reports whether the backend is administratively dead.
func (b *Backend) Down() bool { return b.down.Load() }

// Kill marks the backend dead: every forward fails like an unreachable
// host until Revive. This is the deterministic stand-in for whole-node
// death the chaos harness and the cluster smoke test lean on.
func (b *Backend) Kill() { b.down.Store(true) }

// Revive clears the kill switch.
func (b *Backend) Revive() { b.down.Store(false) }

// do forwards one request. path must begin with "/"; header entries are
// copied onto the outgoing request (traceparent propagation).
func (b *Backend) do(method, path, rawQuery string, header http.Header, body []byte) (*http.Response, error) {
	return b.doCtx(context.Background(), method, path, rawQuery, header, body)
}

// doCtx is do with a caller-supplied context, so a hedged attempt that
// loses the race can be canceled instead of running to completion (the
// backend's wait path watches the request context and cancels the job).
func (b *Backend) doCtx(ctx context.Context, method, path, rawQuery string, header http.Header, body []byte) (*http.Response, error) {
	if b.down.Load() {
		return nil, fmt.Errorf("cluster: backend %s is down", b.name)
	}
	base := b.base
	if base == "" {
		base = "http://" + b.name + ".local" // in-process: host is cosmetic
	}
	u := base + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	return b.client.Do(req)
}

// fetch runs doCtx and drains the response into memory, so the caller
// may cancel ctx immediately after fetch returns without corrupting a
// half-read body (hedging relies on this).
func (b *Backend) fetch(ctx context.Context, method, path, rawQuery string, header http.Header, body []byte) (int, http.Header, []byte, error) {
	resp, err := b.doCtx(ctx, method, path, rawQuery, header, body)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("backend %s: %w", b.name, err)
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

// handlerTransport adapts an http.Handler into a RoundTripper so an
// in-process backend is addressed exactly like a remote one.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := &memResponse{header: make(http.Header), code: http.StatusOK}
	t.h.ServeHTTP(rec, req)
	return &http.Response{
		Status:        http.StatusText(rec.code),
		StatusCode:    rec.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

// memResponse is the minimal in-memory http.ResponseWriter behind
// handlerTransport.
type memResponse struct {
	header http.Header
	body   bytes.Buffer
	code   int
	wrote  bool
}

func (m *memResponse) Header() http.Header { return m.header }

func (m *memResponse) WriteHeader(code int) {
	if !m.wrote {
		m.code = code
		m.wrote = true
	}
}

func (m *memResponse) Write(p []byte) (int, error) {
	m.wrote = true
	return m.body.Write(p)
}
